# regvirt build/verify entry points. `make verify` is the gate every
# change must pass: build, vet, and the full test suite under the race
# detector (the jobs subsystem is concurrent; -race is not optional).

GO ?= go

.PHONY: all build vet test race verify sched chaos recovery cluster nemesis fuzz bench bench-gpu modes obs

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

# Per-backend register-file suite under the race detector: the mode
# grammar, both wrapper backends' unit tests, the five-way determinism
# matrix (sequential vs parallel device engine), checkpoint/resume
# byte-identity per mode, the emulator differential per backend, the
# jobs cache-key separation of modes, and the head-to-head figure.
# CI runs this as its own job.
modes:
	$(GO) test -race -count=1 \
		-run 'Mode|Backend|ParseMode|RegCache|SMemSpill|ResumeMatches|ResumeGPU|ParallelMatches|Emulator' \
		./internal/rename ./internal/sim ./internal/workloads \
		./internal/jobs ./internal/experiments ./cmd/regvsim ./cmd/regvd

# Multi-tenant scheduling proofs, twice, under the race detector:
# stride fairness and the starvation bound, quota and admission
# refusals, checkpoint preemption with byte-identical resume, and the
# tenant config/HTTP/client surface. CI runs this as its own job.
sched:
	$(GO) test -race -count=2 \
		-run 'Stride|FairShare|Quota|Admission|MaxRunning|Preempt|Tenant|FIFO|BadCheckpoint|Sched' \
		./internal/jobs/... ./cmd/regvd

# Fault-injection and resilience drills, twice, under the race
# detector: chaos load, shedding, panic containment, invariant 500s,
# graceful shutdown. CI runs this as its own job.
chaos:
	$(GO) test -race -count=2 \
		-run 'Chaos|Fault|Shed|Overload|Shutdown|Panic|Invariant|Resilien|Eviction|CloseDuring|Retr' \
		./internal/faultinject ./internal/jobs/... ./internal/sim ./cmd/regvd

# Crash-recovery proof: a real regvd subprocess is SIGKILLed mid-batch
# (and SIGTERMed, and SIGKILLed under injected latency), restarted on
# the same -data-dir, and every accepted job must finish byte-identical
# to a never-killed control run. CI runs this as its own job.
recovery:
	$(GO) test -race -count=1 -run 'CrashRecovery|RecoveryDataDir' ./cmd/regvd

# Cluster failover proof under the race detector: the in-process
# router/shipping/standby suite, then four real regvd binaries (three
# shards journal-shipping to a warm-standby hub) behind a real regvd
# router; the shard owning a long job is SIGKILLed mid-batch under
# injected faults and every accepted job must still complete through
# the router, byte-identical to a never-killed control. CI runs this
# as its own job.
cluster:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -count=1 -run 'ClusterFailover|ParsePeers|ValidateCluster' ./cmd/regvd

# Observability proofs under the race detector: the obs package's
# tracer/log/prom/chrome units, the shard-level trace and Prometheus
# endpoints, tenant-label overflow folding, and the cluster-level
# proofs — a trace stitched across router and shards over real TCP,
# and the router's shard-labelled Prometheus aggregation passing the
# exposition-format linter. Profile-off purity (a profiled run is
# byte-identical to an unprofiled one) rides along from internal/sim.
# CI runs this as its own job.
obs:
	$(GO) test -race -count=1 ./internal/obs
	$(GO) test -race -count=1 \
		-run 'Trace|Prom|Overflow|Profile|RetriesExhausted' \
		./internal/jobs ./internal/jobs/client ./internal/sim
	$(GO) test -race -count=1 \
		-run 'TestClusterTraceStitch|TestRouterPromAggregation' ./internal/cluster

# Nemesis suite under the race detector: the fencing wire contract and
# shipper latch/rejoin in-process, the standby fence/resync races, the
# nemesis primitives, then the full Jepsen-style drill — five real
# regvd binaries under a seeded schedule of SIGKILL, asymmetric
# partition (adoption fences the deposed primary out), at-rest bit-flip
# (the scrubber heals it), and SIGSTOP, with every acked job completing
# byte-identical to a never-faulted control and at most one writer per
# (keyspace, epoch). CI runs this as its own job.
nemesis:
	$(GO) test -race -count=1 -run 'Fenc|StandbyFence|StandbyResync' ./internal/cluster ./internal/jobs/store
	$(GO) test -race -count=1 ./internal/faultinject ./internal/integrity
	$(GO) test -race -count=1 -run 'TestNemesis' -v ./cmd/regvd

# Short fuzz smoke: the journal-replay parser (never panics, accepts
# exactly the longest valid prefix), the three ISA surface parsers, and
# the integrity-envelope decoders behind every result/checkpoint read
# (differential against an independent open+decode; corrupt bytes are
# misses, never wrong answers). ~30s per target; CI runs this as its
# own job.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzJournalReplay -fuzztime=30s ./internal/jobs/store
	$(GO) test -run=^$$ -fuzz=FuzzResultDecode -fuzztime=30s ./internal/jobs/store
	$(GO) test -run=^$$ -fuzz=FuzzCheckpointDecode -fuzztime=30s ./internal/jobs/store
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/isa
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBinary -fuzztime=30s ./internal/isa
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/isa

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Sequential vs parallel two-phase device engine; regenerates
# BENCH_gpu.json at the repo root.
bench-gpu:
	$(GO) test -bench=BenchmarkRunGPU -benchtime=2x -run=^$$ .
