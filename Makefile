# regvirt build/verify entry points. `make verify` is the gate every
# change must pass: build, vet, and the full test suite under the race
# detector (the jobs subsystem is concurrent; -race is not optional).

GO ?= go

.PHONY: all build vet test race verify bench bench-gpu

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Sequential vs parallel two-phase device engine; regenerates
# BENCH_gpu.json at the repo root.
bench-gpu:
	$(GO) test -bench=BenchmarkRunGPU -benchtime=2x -run=^$$ .
