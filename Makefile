# regvirt build/verify entry points. `make verify` is the gate every
# change must pass: build, vet, and the full test suite under the race
# detector (the jobs subsystem is concurrent; -race is not optional).

GO ?= go

.PHONY: all build vet test race verify chaos bench bench-gpu

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

# Fault-injection and resilience drills, twice, under the race
# detector: chaos load, shedding, panic containment, invariant 500s,
# graceful shutdown. CI runs this as its own job.
chaos:
	$(GO) test -race -count=2 \
		-run 'Chaos|Fault|Shed|Overload|Shutdown|Panic|Invariant|Resilien|Eviction|CloseDuring|Retr' \
		./internal/faultinject ./internal/jobs/... ./internal/sim ./cmd/regvd

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Sequential vs parallel two-phase device engine; regenerates
# BENCH_gpu.json at the repo root.
bench-gpu:
	$(GO) test -bench=BenchmarkRunGPU -benchtime=2x -run=^$$ .
