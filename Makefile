# regvirt build/verify entry points. `make verify` is the gate every
# change must pass: build, vet, and the full test suite under the race
# detector (the jobs subsystem is concurrent; -race is not optional).

GO ?= go

.PHONY: all build vet test race verify bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
