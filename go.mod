module regvirt

go 1.22
