package regvirt

import (
	"reflect"
	"testing"
)

const facadeKernel = `
.kernel facade
.reg 6
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r4, r3, c[1]
    ld.global r5, [r4+0]
    imul r5, r5, r5
    iadd r4, r3, c[2]
    st.global [r4+0], r5
    exit
`

func TestFacadeEndToEnd(t *testing.T) {
	p, err := ParseKernel(facadeKernel)
	if err != nil {
		t.Fatalf("ParseKernel: %v", err)
	}
	base, err := Compile(p, CompileOptions{NoFlags: true})
	if err != nil {
		t.Fatalf("Compile baseline: %v", err)
	}
	virt, err := Compile(p, CompileOptions{TableBytes: 1024, ResidentWarps: 8})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 0x2000},
	}
	spec.Kernel = base
	want, err := Run(Config{Mode: ModeBaseline}, spec)
	if err != nil {
		t.Fatalf("Run baseline: %v", err)
	}
	spec.Kernel = virt
	got, err := Run(Config{Mode: ModeCompiler, PhysRegs: 512, PowerGating: true, WakeupLatency: 1}, spec)
	if err != nil {
		t.Fatalf("Run virtualized: %v", err)
	}
	if !reflect.DeepEqual(want.Stores, got.Stores) {
		t.Error("virtualized results differ from baseline")
	}
	if got.AllocationReduction() <= 0 {
		t.Errorf("AllocationReduction = %v, want > 0", got.AllocationReduction())
	}
	e := EnergyOf(got, 1024)
	if e.TotalPJ() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 16 {
		t.Fatalf("Workloads() = %d, want 16", got)
	}
	w, err := WorkloadByName("MatrixMul")
	if err != nil {
		t.Fatal(err)
	}
	k, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Mode: ModeCompiler}, w.Spec(k))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || len(res.Stores) == 0 {
		t.Error("empty result")
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Error("WorkloadByName accepted bogus name")
	}
}

func TestFacadeSpill(t *testing.T) {
	p, _ := ParseKernel(facadeKernel)
	sp, err := SpillTo(p, 5)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	if len(sp.UsedRegs()) > 5 {
		t.Error("spilled program exceeds budget")
	}
}

func TestFacadeEnergyModel(t *testing.T) {
	params := DefaultEnergyParams()
	if params.BankAccessPJ != 4.68 || params.RenameAccessPJ != 1.14 {
		t.Error("Table 2 parameters wrong")
	}
	m := NewEnergyModel(params)
	pts := m.SizeCurve([]float64{0, 50})
	if len(pts) != 2 {
		t.Error("SizeCurve broken")
	}
}
