package regvirt_test

import (
	"fmt"
	"log"

	"regvirt"
)

// Compile a kernel with release metadata and inspect what the compiler
// found.
func ExampleCompile() {
	prog, err := regvirt.ParseKernel(`
.kernel axpy
.reg 6
    s2r  r0, %tid.x
    shl  r1, r0, 2
    iadd r2, r1, c[0]
    ld.global r3, [r2+0]
    imul r4, r3, c[1]
    iadd r5, r1, c[2]
    st.global [r5+0], r4
    exit
`)
	if err != nil {
		log.Fatal(err)
	}
	k, err := regvirt.Compile(prog, regvirt.CompileOptions{TableBytes: 1024, ResidentWarps: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instructions: %d (+%d metadata)\n", k.StaticInstrs, k.MetaInstrs())
	fmt.Printf("release points: %d, exempt registers: %d\n", k.ReleasePoints, k.Exempt)
	// Output:
	// instructions: 8 (+1 metadata)
	// release points: 6, exempt registers: 0
}

// Run a built-in workload under GPU-shrink and report the savings.
func ExampleRun() {
	w, err := regvirt.WorkloadByName("VectorAdd")
	if err != nil {
		log.Fatal(err)
	}
	k, err := w.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := regvirt.Run(regvirt.Config{
		Mode:     regvirt.ModeCompiler,
		PhysRegs: 512,
	}, w.Spec(k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation reduction: %.0f%%\n", res.AllocationReduction()*100)
	// Output:
	// allocation reduction: 25%
}

// Evaluate register-file energy with the Table 2 model.
func ExampleEnergyOf() {
	w, _ := regvirt.WorkloadByName("Gaussian")
	base, _ := w.CompileBaseline()
	ref, err := regvirt.Run(regvirt.Config{Mode: regvirt.ModeBaseline}, w.Spec(base))
	if err != nil {
		log.Fatal(err)
	}
	virt, _ := w.Compile()
	shrink, err := regvirt.Run(regvirt.Config{
		Mode: regvirt.ModeCompiler, PhysRegs: 512,
		PowerGating: true, WakeupLatency: 1,
	}, w.Spec(virt))
	if err != nil {
		log.Fatal(err)
	}
	eBase := regvirt.EnergyOf(ref, 0)
	eShrink := regvirt.EnergyOf(shrink, 1024)
	fmt.Printf("saved more than half: %v\n", eShrink.TotalPJ() < eBase.TotalPJ()/2)
	// Output:
	// saved more than half: true
}
