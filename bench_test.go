package regvirt

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§9). Run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFig*/BenchmarkTable* executes the full experiment once
// per iteration and reports the headline metric as a custom unit, so a
// bench run doubles as a results summary. The BenchmarkAblation* benches
// cover the design decisions called out in DESIGN.md §5.

import (
	"testing"

	"regvirt/internal/experiments"
	"regvirt/internal/isa"
	"regvirt/internal/throttle"
	"regvirt/internal/workloads"
)

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 16 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkFig1LiveRegisters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		apps, err := experiments.Fig1(r, 100)
		if err != nil {
			b.Fatal(err)
		}
		// Report the average live fraction across the six panels.
		sum, n := 0.0, 0
		for _, a := range apps {
			for _, s := range a.Samples {
				if s.AllocatedRegs > 0 {
					sum += float64(s.LiveRegs) / float64(s.AllocatedRegs)
					n++
				}
			}
		}
		b.ReportMetric(sum/float64(n)*100, "%live")
	}
}

func BenchmarkFig3Lifetimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		segs, err := experiments.Fig3([]isa.RegID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(segs)), "lifetimes")
	}
}

func BenchmarkFig7PowerCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig7()
		b.ReportMetric(pts[len(pts)-1].TotalPct, "%power@50")
	}
}

func BenchmarkFig9TechNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes := experiments.Fig9()
		b.ReportMetric(nodes[len(nodes)-1].Leakage, "lkg@10nmF")
	}
}

func BenchmarkFig10AllocationReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		rows, err := experiments.Fig10(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Value, "%avg-reduction")
	}
}

func BenchmarkFig11aGPUShrink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		rows, err := experiments.Fig11a(r)
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.GPUShrinkPct, "%shrink-overhead")
		b.ReportMetric(avg.CompilerSpill, "%spill-overhead")
	}
}

func BenchmarkFig11bWakeupLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		pts, err := experiments.Fig11b(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((pts[len(pts)-1].NormCycles-1)*100, "%overhead@10cyc")
	}
}

func BenchmarkFig12EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		rows, err := experiments.Fig12(r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.App == "AVG" && row.Config == experiments.Cfg64PG {
				b.ReportMetric((1-row.Total())*100, "%energy-saved")
			}
		}
	}
}

func BenchmarkFig13CodeIncrease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		rows, err := experiments.Fig13(r)
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.StaticPct, "%static")
		b.ReportMetric(avg.DynamicPct[0], "%dyn-0")
		b.ReportMetric(avg.DynamicPct[10], "%dyn-10")
	}
}

func BenchmarkFig14TableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		rows, err := experiments.Fig14(r)
		if err != nil {
			b.Fatal(err)
		}
		exceed := 0
		for _, row := range rows {
			if row.ExemptRegs > 0 {
				exceed++
			}
		}
		b.ReportMetric(float64(exceed), "apps-over-1KB")
	}
}

func BenchmarkFig15HWOnlyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		rows, err := experiments.Fig15(r)
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		b.ReportMetric(avg.AllocReductionRatio, "hw/ours-alloc")
		b.ReportMetric(avg.StaticPowerRatio, "hw/ours-static")
	}
}

// Per-workload simulation throughput benches: cycles simulated per second
// of wall time under the virtualized configuration.

func BenchmarkSim(b *testing.B) {
	for _, w := range Workloads() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			k, err := w.Compile()
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Mode: ModeCompiler}, w.Spec(k))
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkShrinkSweep runs the §9.2 GPU-shrink 30%/40%/50% sweep.
func BenchmarkShrinkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		pts, err := experiments.ShrinkSweep(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].AvgOverheadPct, "%overhead@50")
	}
}

// Ablations over the design decisions in DESIGN.md §5.

// BenchmarkAblationThrottlePolicy compares the paper's worst-case-balance
// throttle against the reservation refinement on the most
// register-pressured workloads under GPU-shrink.
func BenchmarkAblationThrottlePolicy(b *testing.B) {
	apps := []string{"Heartwall", "ScalarProd", "MUM"}
	for _, pol := range []struct {
		name string
		p    throttle.Policy
	}{{"reservation", throttle.PolicyReservation}, {"worst-case", throttle.PolicyWorstCase}} {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, name := range apps {
					w, err := workloads.ByName(name)
					if err != nil {
						b.Fatal(err)
					}
					k, err := w.Compile()
					if err != nil {
						b.Fatal(err)
					}
					res, err := Run(Config{Mode: ModeCompiler, PhysRegs: 512, ThrottlePolicy: pol.p}, w.Spec(k))
					if err != nil {
						b.Fatal(err)
					}
					total += res.Cycles
				}
			}
			b.ReportMetric(float64(total), "simcycles")
		})
	}
}

// BenchmarkAblationAllocPolicy compares subarray-first allocation (§8.2)
// against lowest-index allocation by the static energy left on the table.
func BenchmarkAblationAllocPolicy(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    AllocPolicy
	}{{"subarray-first", SubarrayFirst}, {"lowest-index", LowestIndex}, {"spread", Spread}} {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				sum, n := 0.0, 0
				for _, w := range Workloads() {
					k, err := w.Compile()
					if err != nil {
						b.Fatal(err)
					}
					res, err := Run(Config{
						Mode: ModeCompiler, PowerGating: true, WakeupLatency: 1, AllocPolicy: pol.p,
					}, w.Spec(k))
					if err != nil {
						b.Fatal(err)
					}
					sum += float64(res.RF.AwakeSubarrayCyc) / float64(res.RF.TotalSubarrayCyc)
					n++
				}
				frac = sum / float64(n)
			}
			b.ReportMetric(frac*100, "%awake-subarrays")
		})
	}
}

// BenchmarkAblationRenameLatency quantifies the paper's conservative
// +1-cycle renaming-stage assumption against the pipelined default.
func BenchmarkAblationRenameLatency(b *testing.B) {
	for _, lat := range []int{0, 1} {
		lat := lat
		b.Run(map[int]string{0: "pipelined", 1: "plus-1-cycle"}[lat], func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, w := range Workloads() {
					k, err := w.Compile()
					if err != nil {
						b.Fatal(err)
					}
					res, err := Run(Config{Mode: ModeCompiler, RenameLatency: lat}, w.Spec(k))
					if err != nil {
						b.Fatal(err)
					}
					total += res.Cycles
				}
			}
			b.ReportMetric(float64(total), "simcycles")
		})
	}
}

// BenchmarkAblationScheduler compares loose round-robin against
// greedy-then-oldest warp selection across the suite.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, sp := range []struct {
		name string
		p    SchedPolicy
	}{{"lrr", SchedLRR}, {"gto", SchedGTO}} {
		sp := sp
		b.Run(sp.name, func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, w := range Workloads() {
					k, err := w.Compile()
					if err != nil {
						b.Fatal(err)
					}
					res, err := Run(Config{Mode: ModeCompiler, Scheduler: sp.p}, w.Spec(k))
					if err != nil {
						b.Fatal(err)
					}
					total += res.Cycles
				}
			}
			b.ReportMetric(float64(total), "simcycles")
		})
	}
}

// BenchmarkAblationFlagCache sweeps the release-flag-cache size beyond
// Fig. 13's points to show where locality saturates.
func BenchmarkAblationFlagCache(b *testing.B) {
	w, err := WorkloadByName("MatrixMul")
	if err != nil {
		b.Fatal(err)
	}
	k, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, entries := range []int{-1, 2, 10, 32} {
		entries := entries
		name := map[int]string{-1: "none", 2: "2", 10: "10", 32: "32"}[entries]
		b.Run(name, func(b *testing.B) {
			var inc float64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Mode: ModeCompiler, FlagCacheEntries: entries}, w.Spec(k))
				if err != nil {
					b.Fatal(err)
				}
				inc = res.DynamicIncrease() * 100
			}
			b.ReportMetric(inc, "%dyn-increase")
		})
	}
}
