package regvirt

// BenchmarkRunGPU measures the two-phase whole-device engine: the
// sequential reference (gpu-par=1) against the pooled compute phase
// (gpu-par=8) across memory-diverse workloads under both register
// management families ("Dynamic" = hardware-only renaming, "Static" =
// compiler-assisted). Run via:
//
//	make bench-gpu
//
// Besides the standard bench output it writes BENCH_gpu.json — ns/op
// per configuration plus the parallel speedup and the host core count.
// The speedup is a wall-clock property only: the engine commits shared
// state in fixed SM order, so both settings produce byte-identical
// results (internal/sim's determinism matrix enforces this), and on a
// single-core host the parallel engine only adds barrier overhead.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
)

const benchGPUWorkers = 8

type gpuBenchEntry struct {
	Workload string  `json:"workload"`
	Mode     string  `json:"mode"`
	Workers  int     `json:"workers"`
	NsPerOp  float64 `json:"ns_per_op"`
}

type gpuBenchReport struct {
	Cores      int                `json:"cores"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Entries    []gpuBenchEntry    `json:"entries"`
	Speedup    map[string]float64 `json:"speedup"` // workload/mode -> seq/par
}

var gpuBench struct {
	mu      sync.Mutex
	entries []gpuBenchEntry
}

func BenchmarkRunGPU(b *testing.B) {
	apps := []string{"VectorAdd", "MatrixMul", "Reduction"}
	modes := []struct {
		name string
		mode Mode
	}{
		{"Dynamic", ModeHWOnly}, {"Static", ModeCompiler},
		// The wrapper backends: register-cache fronting (default 64 lines)
		// and shared-memory demotion (auto-fit to the 512-register file).
		{"RegCache", ModeRegCache}, {"SMemSpill", ModeSMemSpill},
	}
	for _, app := range apps {
		w, err := WorkloadByName(app)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range modes {
			k, err := w.Compile()
			if err != nil {
				b.Fatal(err)
			}
			if m.mode != ModeCompiler {
				opts := w.CompileOptions()
				opts.NoFlags = true
				if k, err = Compile(w.Program(), opts); err != nil {
					b.Fatal(err)
				}
			}
			spec := w.Spec(k)
			for _, workers := range []int{1, benchGPUWorkers} {
				name := fmt.Sprintf("%s/%s/par%d", app, m.name, workers)
				b.Run(name, func(b *testing.B) {
					cfg := Config{Mode: m.mode, PhysRegs: 512, GPUParallel: workers}
					for i := 0; i < b.N; i++ {
						if _, err := RunGPU(cfg, spec); err != nil {
							b.Fatal(err)
						}
					}
					gpuBench.mu.Lock()
					gpuBench.entries = append(gpuBench.entries, gpuBenchEntry{
						Workload: app, Mode: m.name, Workers: workers,
						NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
					})
					gpuBench.mu.Unlock()
				})
			}
		}
	}
	if err := writeGPUBenchReport(); err != nil {
		b.Fatal(err)
	}
}

// writeGPUBenchReport emits BENCH_gpu.json next to the package (the
// repo root). Entries accumulate across -count repetitions; the last
// measurement of each configuration wins.
func writeGPUBenchReport() error {
	gpuBench.mu.Lock()
	defer gpuBench.mu.Unlock()
	latest := map[string]gpuBenchEntry{}
	for _, e := range gpuBench.entries {
		latest[fmt.Sprintf("%s/%s/par%d", e.Workload, e.Mode, e.Workers)] = e
	}
	rep := gpuBenchReport{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    benchGPUWorkers,
		Speedup:    map[string]float64{},
	}
	for _, e := range gpuBench.entries {
		key := fmt.Sprintf("%s/%s/par%d", e.Workload, e.Mode, e.Workers)
		if latest[key] == e {
			rep.Entries = append(rep.Entries, e)
			delete(latest, key) // emit each configuration once
		}
	}
	for _, e := range rep.Entries {
		if e.Workers != 1 {
			continue
		}
		for _, p := range rep.Entries {
			if p.Workload == e.Workload && p.Mode == e.Mode && p.Workers == benchGPUWorkers && p.NsPerOp > 0 {
				rep.Speedup[e.Workload+"/"+e.Mode] = e.NsPerOp / p.NsPerOp
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_gpu.json", append(data, '\n'), 0o644)
}
