package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"regvirt/internal/jobs"
	"regvirt/internal/rename"
)

// TestServiceModeGrammar pins the daemon's register-file-mode grammar:
// every registered backend name is accepted over HTTP, and an unknown
// one is rejected with a 400 whose body enumerates the valid modes —
// the same error text rename.ParseMode produces for the CLI.
func TestServiceModeGrammar(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.NewPool(2)
	srv := &http.Server{Handler: jobs.NewServer(pool).Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})
	base := "http://" + ln.Addr().String()

	submit := func(mode string) (int, string) {
		t.Helper()
		body := fmt.Sprintf(`{"workload":"VectorAdd","mode":%q,"physregs":512}`, mode)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(data)
	}

	for _, mode := range rename.ModeNames() {
		status, body := submit(mode)
		if status != http.StatusOK {
			t.Errorf("mode %q: status %d, body %s", mode, status, body)
			continue
		}
		var res jobs.Result
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Errorf("mode %q: bad result JSON: %v", mode, err)
			continue
		}
		// Results echo the canonical String() spelling ("hw-only" keeps
		// its historical hyphen for result-byte stability).
		m, perr := rename.ParseMode(mode)
		if perr != nil {
			t.Fatal(perr)
		}
		if res.Config.Mode != m.String() {
			t.Errorf("mode %q: result echoes mode %q, want %q", mode, res.Config.Mode, m)
		}
	}

	status, body := submit("virtual")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d, want 400 (body %s)", status, body)
	}
	for _, name := range rename.ModeNames() {
		if !strings.Contains(body, name) {
			t.Errorf("400 body %q does not list valid mode %q", body, name)
		}
	}
	if !strings.Contains(body, "virtual") {
		t.Errorf("400 body %q does not echo the rejected mode", body)
	}
}
