package main

import (
	"strings"
	"testing"

	"regvirt/internal/cluster"
)

func TestParsePeers(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    []cluster.ShardInfo
		wantErr string
	}{
		{
			name: "two entries",
			spec: "s1=http://10.0.0.1:8080,s2=http://10.0.0.2:8080",
			want: []cluster.ShardInfo{
				{Name: "s1", URL: "http://10.0.0.1:8080"},
				{Name: "s2", URL: "http://10.0.0.2:8080"},
			},
		},
		{
			name: "whitespace and trailing comma tolerated",
			spec: " s1=http://a:1 , s2=https://b:2 ,",
			want: []cluster.ShardInfo{
				{Name: "s1", URL: "http://a:1"},
				{Name: "s2", URL: "https://b:2"},
			},
		},
		{
			name: "trailing slash stripped",
			spec: "s1=http://a:1/",
			want: []cluster.ShardInfo{{Name: "s1", URL: "http://a:1"}},
		},
		{name: "no equals", spec: "s1", wantErr: "want name=url"},
		{name: "empty name", spec: "=http://a:1", wantErr: "want name=url"},
		{name: "empty url", spec: "s1=", wantErr: "want name=url"},
		{name: "bad scheme", spec: "s1=ftp://a:1", wantErr: "http:// or https://"},
		{name: "duplicate name", spec: "s1=http://a:1,s1=http://b:2", wantErr: "twice"},
		{name: "only commas", spec: ",,", wantErr: "names no peers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parsePeers(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parsePeers(%q): %v", tc.spec, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("entry %d: got %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestValidateCluster(t *testing.T) {
	cases := []struct {
		name    string
		cfg     config
		wantErr string
	}{
		{name: "plain shard", cfg: config{shard: "regvd"}},
		{
			name: "router ok",
			cfg:  config{clusterMode: true, peers: "s1=http://a:1,s2=http://b:2"},
		},
		{
			name: "shard shipping to standby",
			cfg: config{
				shard: "s1", dataDir: "/tmp/x",
				standby: "sb", peers: "sb=http://sb:1",
			},
		},
		{
			name:    "router needs peers",
			cfg:     config{clusterMode: true},
			wantErr: "-cluster requires -peers",
		},
		{
			name:    "router cannot ship",
			cfg:     config{clusterMode: true, peers: "s1=http://a:1", standby: "s1"},
			wantErr: "does not ship",
		},
		{
			name:    "router keeps no journal",
			cfg:     config{clusterMode: true, peers: "s1=http://a:1", dataDir: "/tmp/x"},
			wantErr: "keeps no journal",
		},
		{
			name:    "standby needs data dir",
			cfg:     config{shard: "s1", standby: "sb", peers: "sb=http://sb:1"},
			wantErr: "-standby needs -data-dir",
		},
		{
			name:    "standby needs shard name",
			cfg:     config{shard: "", dataDir: "/tmp/x", standby: "sb", peers: "sb=http://sb:1"},
			wantErr: "non-empty -shard",
		},
		{
			name:    "standby cannot be self",
			cfg:     config{shard: "s1", dataDir: "/tmp/x", standby: "s1", peers: "s1=http://a:1"},
			wantErr: "this shard itself",
		},
		{
			name:    "standby must be a known peer",
			cfg:     config{shard: "s1", dataDir: "/tmp/x", standby: "sb", peers: "other=http://a:1"},
			wantErr: "not in -peers",
		},
		{
			name:    "bad peers grammar caught even without a role",
			cfg:     config{shard: "s1", peers: "garbage"},
			wantErr: "want name=url",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validateCluster()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}
