package main

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"regvirt/internal/jobs"
)

// TestGracefulShutdown drives the real daemon loop through SIGTERM:
// an in-flight sync job must complete with its result, new submissions
// after the signal must be refused, and serve must return well inside
// the drain window.
func TestGracefulShutdown(t *testing.T) {
	d, err := newDaemon(config{
		addr:    "127.0.0.1:0",
		workers: 2,
		drain:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.addr()

	stop := make(chan os.Signal, 1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.serve(stop) }()

	// A whole-GPU job is the slowest thing the service runs — plenty of
	// time to signal while its handler is still blocked on the result.
	var (
		wg       sync.WaitGroup
		inflight *http.Response
		body     jobs.Result
		postErr  error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"workload":"BackProp","gpu":true}`))
		if err != nil {
			postErr = err
			return
		}
		defer resp.Body.Close()
		inflight = resp
		postErr = json.NewDecoder(resp.Body).Decode(&body)
	}()

	// Wait until the job is actually executing on a worker.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("metrics poll: %v", err)
		}
		var m jobs.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a worker")
		}
		time.Sleep(2 * time.Millisecond)
	}

	stop <- syscall.SIGTERM

	// New submissions are refused promptly: the listener closes as part
	// of Shutdown, so fresh connections fail to dial (or, if a raced
	// connection sneaks through, get a non-200).
	refused := false
	refuseDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(refuseDeadline) {
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"workload":"VectorAdd"}`))
		if err != nil {
			refused = true
			break
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("new submissions still accepted 5s after SIGTERM")
	}

	// The in-flight job drains to a complete, valid result.
	wg.Wait()
	if postErr != nil {
		t.Fatalf("in-flight job: %v", postErr)
	}
	if inflight.StatusCode != http.StatusOK {
		t.Errorf("in-flight job: status %d, want 200", inflight.StatusCode)
	}
	if body.ID == "" || body.Cycles == 0 {
		t.Errorf("in-flight job: incomplete result %+v", body)
	}

	// serve returns inside the drain window (generous margin for -race).
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(d.cfg.drain + 10*time.Second):
		t.Fatal("serve did not return within the drain window")
	}
}
