package main

// The crash-recovery proof: a real regvd binary is SIGKILLed mid-batch
// — no drain, no checkpoint-on-cancel, the hardest case — restarted on
// the same data directory, and every job it had accepted must complete
// with a result byte-identical to a process that was never killed.
// A second leg SIGTERMs instead (the graceful path: the drain window
// is spent writing shutdown checkpoints), and a third kills while
// fault-injection latency has the pipeline wedged mid-simulation at an
// armed site. `make recovery` runs exactly this file; plain `go test`
// runs it too (skipped under -short).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"regvirt/internal/jobs"
	"regvirt/internal/jobs/client"
)

// recoverySpin loops long enough (~50k iterations per warp) that the
// kill reliably lands while it is running.
const recoverySpin = `
.kernel spin
.reg 8
    s2r  r0, %tid.x
    movi r4, 0
    movi r5, 0
body:
    iadd r5, r5, r0
    iadd r4, r4, 1
    isetp.lt p0, r4, 50000
@p0 bra body
    shl  r7, r0, 2
    st.global [r7+0], r5
    exit
`

// buildRegvd compiles the daemon binary under test once per test run.
func buildRegvd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "regvd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build regvd: %v\n%s", err, out)
	}
	return bin
}

// regvdProc is one daemon life under test.
type regvdProc struct {
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
}

// startRegvd launches the binary on an ephemeral port and waits for
// its startup log line (msg=listening url=http://...) to learn the
// address.
func startRegvd(t *testing.T, bin string, args ...string) *regvdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &regvdProc{cmd: cmd, logs: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.logs.WriteString(line + "\n")
			if i := strings.Index(line, "url=http://"); i >= 0 && strings.Contains(line, "listening") {
				addr := line[i+len("url=http://"):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				addr = strings.TrimRight(addr, `"`)
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("regvd never announced its address; logs:\n%s", p.logs.String())
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// kill delivers sig and waits for the process to die.
func (p *regvdProc) kill(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("regvd did not exit on %v; logs:\n%s", sig, p.logs.String())
	}
}

func daemonMetrics(t *testing.T, base string) jobs.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m jobs.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return m
}

// controlResults computes every job's result in-process, in a process
// that is never killed — the reference the recovered daemon must match
// byte for byte.
func controlResults(t *testing.T, specs []jobs.Job) map[string][]byte {
	t.Helper()
	control := map[string][]byte{}
	for _, j := range specs {
		res, err := jobs.Execute(context.Background(), j)
		if err != nil {
			t.Fatalf("control run %s: %v", j.Key(), err)
		}
		control[j.Key()] = res.JSON()
	}
	return control
}

// assertRecovered waits for every ID on a restarted daemon and demands
// byte-identical results.
func assertRecovered(t *testing.T, base string, ids []string, control map[string][]byte) {
	t.Helper()
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, id := range ids {
		res, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("job %s after restart: %v", id, err)
		}
		if !bytes.Equal(res.JSON(), control[id]) {
			t.Errorf("job %s: recovered result differs from never-killed control", id)
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills daemon subprocesses; skipped under -short")
	}
	bin := buildRegvd(t)

	spin := jobs.Job{Kernel: recoverySpin, GridCTAs: 2, ThreadsPerCTA: 64, ConcCTAs: 2}
	quick := []jobs.Job{
		{Workload: "VectorAdd"},
		{Workload: "VectorAdd", PhysRegs: 512},
		{Workload: "VectorAdd", Mode: "hwonly"},
	}
	control := controlResults(t, append([]jobs.Job{spin}, quick...))

	// --- Leg 1: SIGKILL mid-batch, with a checkpoint on disk. ---
	t.Run("sigkill", func(t *testing.T) {
		dataDir := t.TempDir()
		p1 := startRegvd(t, bin, "-data-dir", dataDir, "-checkpoint-every", "2000", "-j", "2")
		c := client.New(p1.base)
		ctx := context.Background()

		var ids []string
		for _, j := range append([]jobs.Job{spin}, quick...) {
			id, err := c.SubmitAsync(ctx, j)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			ids = append(ids, id)
		}
		// Pull the plug only after the long job has checkpointed at
		// least once, so the restart exercises resume, not just re-run.
		deadline := time.Now().Add(60 * time.Second)
		for daemonMetrics(t, p1.base).CheckpointsWritten == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("no checkpoint before kill; logs:\n%s", p1.logs.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		p1.kill(t, syscall.SIGKILL)

		p2 := startRegvd(t, bin, "-data-dir", dataDir, "-checkpoint-every", "2000", "-j", "2")
		if m := daemonMetrics(t, p2.base); m.JournalReplayed == 0 {
			t.Fatalf("restart replayed nothing (metrics %+v)", m)
		}
		assertRecovered(t, p2.base, ids, control)
		p2.kill(t, syscall.SIGTERM)
	})

	// --- Leg 2: graceful SIGTERM — the drain window writes shutdown
	// checkpoints; the restart resumes from them. ---
	t.Run("sigterm-drain", func(t *testing.T) {
		dataDir := t.TempDir()
		p1 := startRegvd(t, bin, "-data-dir", dataDir, "-checkpoint-every", "2000", "-j", "2", "-drain", "10s")
		c := client.New(p1.base)
		id, err := c.SubmitAsync(context.Background(), spin)
		if err != nil {
			t.Fatal(err)
		}
		// Let the simulation get going before asking for the drain.
		deadline := time.Now().Add(60 * time.Second)
		for daemonMetrics(t, p1.base).Running == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("job never started; logs:\n%s", p1.logs.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		p1.kill(t, syscall.SIGTERM)

		p2 := startRegvd(t, bin, "-data-dir", dataDir, "-checkpoint-every", "2000", "-j", "2")
		if m := daemonMetrics(t, p2.base); m.JournalReplayed == 0 {
			t.Fatalf("restart replayed nothing (metrics %+v)", m)
		}
		assertRecovered(t, p2.base, []string{id}, control)
		p2.kill(t, syscall.SIGTERM)
	})

	// --- Leg 3: SIGKILL while fault-injection latency holds the
	// pipeline inside an armed site mid-simulation. ---
	t.Run("sigkill-under-faults", func(t *testing.T) {
		dataDir := t.TempDir()
		p1 := startRegvd(t, bin, "-data-dir", dataDir, "-checkpoint-every", "2000", "-j", "2",
			"-faults", "sim.mem.accept:latency:500:2", "-fault-seed", "7")
		c := client.New(p1.base)
		ctx := context.Background()
		var ids []string
		for _, j := range append([]jobs.Job{spin}, quick...) {
			id, err := c.SubmitAsync(ctx, j)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		// Kill while work is in flight (no checkpoint wait: the injected
		// latency makes "mid-simulation" the overwhelmingly likely state).
		deadline := time.Now().Add(60 * time.Second)
		for daemonMetrics(t, p1.base).Running == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("no job running; logs:\n%s", p1.logs.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
		p1.kill(t, syscall.SIGKILL)

		// Restart clean (no faults): everything accepted must converge
		// to the control results.
		p2 := startRegvd(t, bin, "-data-dir", dataDir, "-checkpoint-every", "2000", "-j", "2")
		if m := daemonMetrics(t, p2.base); m.JournalReplayed == 0 {
			t.Fatalf("restart replayed nothing (metrics %+v)", m)
		}
		assertRecovered(t, p2.base, ids, control)
		p2.kill(t, syscall.SIGTERM)
	})
}

// TestRecoveryDataDirReuse double-checks the trivial invariant the
// legs above rely on: a daemon restarted on an empty -data-dir serves
// normally and reports zero replay.
func TestRecoveryDataDirReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("builds daemon subprocesses; skipped under -short")
	}
	bin := buildRegvd(t)
	dataDir := t.TempDir()
	p := startRegvd(t, bin, "-data-dir", dataDir)
	if m := daemonMetrics(t, p.base); m.JournalReplayed != 0 {
		t.Fatalf("fresh data dir replayed %d jobs", m.JournalReplayed)
	}
	c := client.New(p.base)
	job := jobs.Job{Workload: "VectorAdd"}
	res, err := c.Submit(context.Background(), job)
	if err != nil || res == nil {
		t.Fatalf("submit on durable daemon: %v", err)
	}
	p.kill(t, syscall.SIGTERM)
	if _, err := os.Stat(filepath.Join(dataDir, "results", job.Key()+".json")); err != nil {
		t.Fatalf("result not persisted: %v", err)
	}
}
