package main

// The nemesis suite: a Jepsen-style fault schedule driven against real
// regvd binaries — three shards shipping to a warm-standby hub behind
// a router, all armed with -nemesis and -scrub-every. The schedule
// SIGKILLs the shard owning a long job mid-batch, partitions the
// router away from a second shard (forcing an adoption the deposed —
// but still living — primary must be fenced out of), flips a bit in a
// third's at-rest result file for the scrubber to heal, and SIGSTOPs
// the remaining shard through a probe window. Afterward every job the
// cluster ever acked must complete through the router byte-identical
// to a never-faulted control, and the ownership ack headers must show
// at most one writer per (keyspace, epoch). `make nemesis` runs
// exactly this file under -race; plain `go test` runs it too (skipped
// under -short).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"regvirt/internal/cluster"
	"regvirt/internal/faultinject"
	"regvirt/internal/jobs"
	"regvirt/internal/jobs/client"
)

// ackRec is one ownership ack observed on a routed submit: the
// keyspace the job hashed to, the epoch the router believed current,
// and the backend that actually served the write.
type ackRec struct {
	keyspace string
	epoch    string
	servedBy string
}

// submitObserved submits through the router's raw HTTP surface so the
// ownership ack headers are visible (the client helper swallows them),
// and records the ack when one is stamped. Returns the HTTP status.
func submitObserved(t *testing.T, base string, j jobs.Job, acks *[]ackRec) int {
	t.Helper()
	body, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit %s: %v", j.Key(), err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if ks := resp.Header.Get(cluster.KeyspaceHeader); ks != "" {
		*acks = append(*acks, ackRec{
			keyspace: ks,
			epoch:    resp.Header.Get(cluster.EpochHeader),
			servedBy: resp.Header.Get(cluster.ServedByHeader),
		})
	}
	return resp.StatusCode
}

// waitNemesis polls cond until it holds or the timeout expires.
func waitNemesis(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// shardNodeStatus fetches a shard's own GET /v1/cluster view. A fresh
// struct per call: fenced/epoch are omitempty, so decoding into a
// reused struct would let stale values survive their omission.
func shardNodeStatus(t *testing.T, base string) cluster.NodeStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatalf("GET /v1/cluster: %v", err)
	}
	defer resp.Body.Close()
	var st cluster.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode node status: %v", err)
	}
	return st
}

// postPartition drives a -nemesis process's POST /v1/faults/partition.
func postPartition(t *testing.T, base, body string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/faults/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/faults/partition: %v", err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition update answered HTTP %d", resp.StatusCode)
	}
}

// routerShardRow returns one shard's row from the router's status.
func routerShardRow(t *testing.T, base, name string) cluster.RouterShardStatus {
	t.Helper()
	st := routerClusterStatus(t, base)
	for _, row := range st.Shards {
		if row.Name == name {
			return row
		}
	}
	return cluster.RouterShardStatus{}
}

// jobsOwnedBy sweeps the candidate space for n distinct jobs whose
// content addresses hash to the named keyspace.
func jobsOwnedBy(t *testing.T, ring *cluster.Ring, owner string, n int) []jobs.Job {
	t.Helper()
	var out []jobs.Job
	for r := 64; r <= 2048 && len(out) < n; r += 32 {
		cand := jobs.Job{Workload: "VectorAdd", PhysRegs: r, ConcCTAs: 2}
		if ring.Owner(cand.Key()) == owner {
			out = append(out, cand)
		}
	}
	if len(out) < n {
		t.Fatalf("only %d/%d candidate jobs hash to keyspace %s", len(out), n, owner)
	}
	return out
}

func TestNemesis(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and faults daemon subprocesses; skipped under -short")
	}
	bin := buildRegvd(t)

	// Hub standby: every shard ships here; adoptions land here.
	hub := startRegvd(t, bin, "-data-dir", t.TempDir(), "-shard", "standby",
		"-checkpoint-every", "2000", "-j", "2")

	shardNames := []string{"s1", "s2", "s3"}
	procs := map[string]*regvdProc{}
	dirs := map[string]string{}
	var peerSpec []string
	for _, name := range shardNames {
		dirs[name] = t.TempDir()
		p := startRegvd(t, bin, "-data-dir", dirs[name], "-shard", name,
			"-standby", "standby", "-peers", "standby="+hub.base,
			"-checkpoint-every", "2000", "-j", "2",
			"-scrub-every", "300ms", "-nemesis",
			"-faults", "sim.mem.accept:latency:500:2", "-fault-seed", "7")
		procs[name] = p
		peerSpec = append(peerSpec, name+"="+p.base)
	}
	router := startRegvd(t, bin, "-cluster", "-nemesis", "-peers", strings.Join(peerSpec, ","))

	ring, err := cluster.NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cast the schedule: the spin job's owner is the SIGKILL victim;
	// of the survivors (sorted, so the cast is deterministic), the
	// first is partitioned+fenced+bit-flipped, the second is paused.
	spin := jobs.Job{Kernel: recoverySpin, GridCTAs: 2, ThreadsPerCTA: 64, ConcCTAs: 2}
	victim := ring.Owner(spin.Key())
	var rest []string
	for _, name := range shardNames {
		if name != victim {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	partTarget, pauseTarget := rest[0], rest[1]
	t.Logf("schedule: kill=%s partition+flip=%s pause=%s", victim, partTarget, pauseTarget)

	ptJobs := jobsOwnedBy(t, ring, partTarget, 4)
	vJobs := jobsOwnedBy(t, ring, victim, 1)
	pzJobs := jobsOwnedBy(t, ring, pauseTarget, 1)

	batch := []jobs.Job{
		spin,
		{Workload: "VectorAdd"},
		{Workload: "VectorAdd", PhysRegs: 512},
		{Workload: "VectorAdd", Mode: "hwonly"},
	}
	everything := append(append([]jobs.Job{}, batch...), vJobs[0])
	everything = append(everything, ptJobs...)
	everything = append(everything, pzJobs[0])
	control := controlResults(t, everything)

	var acks []ackRec
	var ids []string

	// --- Phase 0: the batch lands through the router at epoch 1. ---
	for _, j := range batch {
		if code := submitObserved(t, router.base, j, &acks); code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("batch submit %s answered HTTP %d", j.Key(), code)
		}
		ids = append(ids, j.Key())
	}

	// --- Phase 1: SIGKILL the spin owner mid-simulation, after a
	// checkpoint has shipped, so the hub resumes rather than re-runs. ---
	vp := procs[victim]
	waitNemesis(t, "victim running+checkpointed", 60*time.Second, func() bool {
		m := daemonMetrics(t, vp.base)
		return m.Running > 0 && m.CheckpointsWritten > 0
	})
	time.Sleep(300 * time.Millisecond) // one shipper flush for the checkpoint
	vp.kill(t, syscall.SIGKILL)

	waitNemesis(t, "router to adopt the killed shard", 60*time.Second, func() bool {
		row := routerShardRow(t, router.base, victim)
		return !row.Healthy && row.Epoch >= 2
	})
	// Fresh work for the dead keyspace acks at the bumped epoch.
	if code := submitObserved(t, router.base, vJobs[0], &acks); code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("post-kill submit answered HTTP %d", code)
	}
	ids = append(ids, vJobs[0].Key())

	// --- Phase 2: partition the router away from partTarget. The shard
	// is alive and can still reach the hub — the classic asymmetric
	// split. The router must declare it down, adopt its keyspace at a
	// bumped epoch, and the deposed primary must fence itself out the
	// moment its shipping bounces off the adopter. ---
	ptHost := strings.TrimPrefix(procs[partTarget].base, "http://")
	postPartition(t, router.base, `{"block":["`+ptHost+`"]}`)

	waitNemesis(t, "router to adopt the partitioned shard", 60*time.Second, func() bool {
		row := routerShardRow(t, router.base, partTarget)
		return !row.Healthy && row.Epoch >= 2
	})
	// Through the router, the partitioned keyspace now lands on the
	// standby at the bumped epoch.
	if code := submitObserved(t, router.base, ptJobs[1], &acks); code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("during-partition submit answered HTTP %d", code)
	}
	ids = append(ids, ptJobs[1].Key())

	// A split-brain client writes directly to the deposed primary. The
	// write is accepted (local durability holds) — but its ship frame
	// bounces off the adopter's fence, and the shard latches fenced.
	if body, err := json.Marshal(ptJobs[0]); err == nil {
		resp, err := http.Post(procs[partTarget].base+"/v1/jobs?async=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("direct submit to deposed shard: %v", err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		// 202: accepted before the fence latched (the expected order).
		// 503: some earlier frame already latched it — equally fine.
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			ids = append(ids, ptJobs[0].Key())
		}
	}
	waitNemesis(t, "deposed shard to latch fenced", 60*time.Second, func() bool {
		return shardNodeStatus(t, procs[partTarget].base).Fenced
	})
	// Once latched, the deposed primary refuses every new write with a
	// typed, retryable refusal — no second writer in the old epoch.
	body, _ := json.Marshal(ptJobs[0])
	resp, err := http.Post(procs[partTarget].base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("probe of fenced shard: %v", err)
	}
	probeBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced shard answered HTTP %d, want 503; body %s", resp.StatusCode, probeBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("fenced 503 is missing Retry-After")
	}
	if !strings.Contains(string(probeBody), "fenced") {
		t.Errorf("fenced 503 body %q does not name the fence", probeBody)
	}

	// --- Phase 3: heal the partition. The router's probe sees a shard
	// reporting a stale epoch, grants a fresh higher one, and the shard
	// rejoins — resyncing its journal to the hub by snapshot. ---
	postPartition(t, router.base, `{"clear":true}`)
	waitNemesis(t, "rejoined shard to be granted a fresh epoch", 60*time.Second, func() bool {
		row := routerShardRow(t, router.base, partTarget)
		return row.Healthy && row.Epoch >= 3
	})
	waitNemesis(t, "rejoined shard to clear its fence", 60*time.Second, func() bool {
		st := shardNodeStatus(t, procs[partTarget].base)
		return !st.Fenced && st.Epoch >= 3
	})
	// New work for the keyspace acks at the granted epoch, served by
	// the rightful owner again.
	if code := submitObserved(t, router.base, ptJobs[2], &acks); code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("post-heal submit answered HTTP %d", code)
	}
	ids = append(ids, ptJobs[2].Key())

	// --- Phase 4: SIGSTOP the remaining shard through a probe window,
	// then resume. Short enough that the router usually rides it out;
	// if it does declare death, adoption+regrant must still converge —
	// either way the cluster serves the keyspace afterward. ---
	pz := procs[pauseTarget]
	if err := faultinject.PauseProcess(pz.cmd.Process.Pid); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := faultinject.ResumeProcess(pz.cmd.Process.Pid); err != nil {
		t.Fatal(err)
	}
	waitNemesis(t, "paused shard to be healthy again", 60*time.Second, func() bool {
		return routerShardRow(t, router.base, pauseTarget).Healthy
	})
	if code := submitObserved(t, router.base, pzJobs[0], &acks); code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("post-pause submit answered HTTP %d", code)
	}
	ids = append(ids, pzJobs[0].Key())

	// --- Phase 5: flip one payload bit of an at-rest result file on the
	// rejoined shard. The 300ms scrubber must detect the checksum break
	// and self-heal it (peer refetch or deterministic re-simulation —
	// the content address is the oracle), counting exactly as many
	// repairs as corruptions. ---
	scrubJob := ptJobs[3]
	sc := client.New(procs[partTarget].base)
	if _, err := sc.Submit(context.Background(), scrubJob); err != nil {
		t.Fatalf("scrub seed job: %v", err)
	}
	ids = append(ids, scrubJob.Key())
	resultPath := filepath.Join(dirs[partTarget], "results", scrubJob.Key()+".json")
	waitNemesis(t, "scrub seed result on disk", 30*time.Second, func() bool {
		_, err := os.Stat(resultPath)
		return err == nil
	})
	m0 := daemonMetrics(t, procs[partTarget].base)
	sealed, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(sealed, '\n')
	if nl < 0 || nl+2 >= len(sealed) {
		t.Fatalf("result file %s has no envelope header to corrupt", resultPath)
	}
	// Bit 3 of the payload's second byte: inside the checksummed body,
	// clear of the header (a broken header decodes as legacy) and of
	// the trailing spec section (the repair ladder's resim oracle).
	if err := faultinject.FlipBit(resultPath, uint64(nl+2)*8+3); err != nil {
		t.Fatal(err)
	}
	waitNemesis(t, "scrubber to heal the flipped bit", 60*time.Second, func() bool {
		m := daemonMetrics(t, procs[partTarget].base)
		return m.ScrubRepaired > m0.ScrubRepaired
	})
	m1 := daemonMetrics(t, procs[partTarget].base)
	corrupt, repaired := m1.ScrubCorrupt-m0.ScrubCorrupt, m1.ScrubRepaired-m0.ScrubRepaired
	if corrupt == 0 || repaired != corrupt {
		t.Errorf("scrub deltas corrupt=%d repaired=%d, want equal and nonzero", corrupt, repaired)
	}
	st, err := sc.Status(context.Background(), scrubJob.Key())
	if err != nil || st.State != "done" || st.Result == nil {
		t.Fatalf("healed result unreadable: state=%v err=%v", st.State, err)
	}
	if !bytes.Equal(st.Result.JSON(), control[scrubJob.Key()]) {
		t.Error("healed result differs from never-faulted control")
	}

	// --- The ledger: every job the cluster ever acked completes through
	// the router, byte-identical to the never-faulted control. ---
	assertRecovered(t, router.base, ids, control)

	// One shard stayed dead; the cluster is degraded, not down.
	hresp, err := http.Get(router.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), "degraded") {
		t.Errorf("/healthz: status %d body %q, want 200 degraded", hresp.StatusCode, hbody)
	}

	// --- The invariant: at most one writer ever acked per (keyspace,
	// epoch). Epochs may change hands — the same epoch may not. ---
	writers := map[string]map[string]bool{}
	epochsSeen := map[string]map[string]bool{}
	for _, a := range acks {
		key := a.keyspace + "@" + a.epoch
		if writers[key] == nil {
			writers[key] = map[string]bool{}
		}
		writers[key][a.servedBy] = true
		if epochsSeen[a.keyspace] == nil {
			epochsSeen[a.keyspace] = map[string]bool{}
		}
		epochsSeen[a.keyspace][a.epoch] = true
	}
	for key, set := range writers {
		if len(set) > 1 {
			var names []string
			for n := range set {
				names = append(names, n)
			}
			sort.Strings(names)
			t.Errorf("split brain: %s acked by %d writers %v", key, len(set), names)
		}
	}
	if len(epochsSeen[partTarget]) < 2 {
		t.Errorf("fencing never moved keyspace %s off its first epoch: acks %+v", partTarget, acks)
	}

	for _, name := range shardNames {
		if name != victim {
			procs[name].kill(t, syscall.SIGTERM)
		}
	}
	hub.kill(t, syscall.SIGTERM)
	router.kill(t, syscall.SIGTERM)
}
