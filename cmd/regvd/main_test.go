package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/jobs"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
	"regvirt/internal/workloads"
)

// TestServiceIntegration boots the daemon stack on a random port,
// submits 9 concurrent jobs across 3 distinct configurations over real
// HTTP, and verifies every response against a direct sim.Run plus the
// /metrics arithmetic.
func TestServiceIntegration(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.NewPool(4)
	srv := &http.Server{Handler: jobs.NewServer(pool).Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})
	base := "http://" + ln.Addr().String()

	type cfgCase struct {
		mode     string
		physregs int
		gating   bool
	}
	cfgs := []cfgCase{
		{mode: "baseline", physregs: 1024},
		{mode: "compiler", physregs: 512},
		{mode: "compiler", physregs: 1024, gating: true},
	}
	apps := []string{"VectorAdd", "Reduction", "BackProp"}

	type submission struct {
		app string
		cfg cfgCase
		res jobs.Result
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		got  []submission
		errs []error
	)
	for _, app := range apps {
		for _, c := range cfgs {
			wg.Add(1)
			go func(app string, c cfgCase) {
				defer wg.Done()
				body := fmt.Sprintf(`{"workload":%q,"mode":%q,"physregs":%d,"gating":%v}`,
					app, c.mode, c.physregs, c.gating)
				resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				defer resp.Body.Close()
				var res jobs.Result
				if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil || resp.StatusCode != http.StatusOK {
					mu.Lock()
					errs = append(errs, fmt.Errorf("%s %+v: status %d, decode %v", app, c, resp.StatusCode, derr))
					mu.Unlock()
					return
				}
				mu.Lock()
				got = append(got, submission{app, c, res})
				mu.Unlock()
			}(app, c)
		}
	}
	wg.Wait()
	for _, err := range errs {
		t.Error(err)
	}
	total := len(apps) * len(cfgs)
	if len(got) != total {
		t.Fatalf("%d successful jobs, want %d", len(got), total)
	}

	// Every service response must match a direct simulation bit for bit
	// (cycles and functional memory digest).
	for _, s := range got {
		var mode rename.Mode
		switch s.cfg.mode {
		case "baseline":
			mode = rename.ModeBaseline
		case "compiler":
			mode = rename.ModeCompiler
		}
		w, werr := workloads.ByName(s.app)
		if werr != nil {
			t.Fatal(werr)
		}
		opts := w.CompileOptions()
		opts.NoFlags = mode != rename.ModeCompiler
		k, cerr := compiler.Compile(w.Program(), opts)
		if cerr != nil {
			t.Fatal(cerr)
		}
		direct, rerr := sim.Run(sim.Config{
			Mode: mode, PhysRegs: s.cfg.physregs,
			PowerGating: s.cfg.gating, WakeupLatency: 1,
		}, w.Spec(k))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if s.res.Cycles != direct.Cycles {
			t.Errorf("%s %+v: service cycles %d != direct %d", s.app, s.cfg, s.res.Cycles, direct.Cycles)
		}
		if s.res.StoresDigest != jobs.DigestStores(direct.Stores) {
			t.Errorf("%s %+v: service stores digest differs from direct run", s.app, s.cfg)
		}
	}

	// The /metrics counters must add up.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m jobs.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Submitted != uint64(total) {
		t.Errorf("submitted = %d, want %d", m.Submitted, total)
	}
	if m.Completed+m.Failed != m.Submitted {
		t.Errorf("completed %d + failed %d != submitted %d", m.Completed, m.Failed, m.Submitted)
	}
	if m.Executed+m.Deduped+m.CacheHits != m.Submitted {
		t.Errorf("executed %d + deduped %d + hits %d != submitted %d",
			m.Executed, m.Deduped, m.CacheHits, m.Submitted)
	}
	if m.Executed != uint64(total) {
		t.Errorf("executed = %d, want %d distinct simulations", m.Executed, total)
	}
	if m.QueueDepth != 0 || m.Running != 0 {
		t.Errorf("idle pool reports queue depth %d, running %d", m.QueueDepth, m.Running)
	}
	if m.LatencyP99MS < m.LatencyP50MS {
		t.Errorf("p99 %.3fms < p50 %.3fms", m.LatencyP99MS, m.LatencyP50MS)
	}
}
