package main

import (
	"reflect"
	"strings"
	"testing"

	"regvirt/internal/jobs/sched"
)

func TestParseTenantsSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    map[string]sched.TenantConfig
		wantDef sched.TenantConfig
		wantErr string
	}{
		{name: "empty", spec: "", want: map[string]sched.TenantConfig{}},
		{name: "whitespace", spec: "   ", want: map[string]sched.TenantConfig{}},
		{
			name: "weights only",
			spec: "gold:4,silver:2",
			want: map[string]sched.TenantConfig{
				"gold":   {Weight: 4},
				"silver": {Weight: 2},
			},
		},
		{
			name: "full grammar",
			spec: "gold:4:64:8:10, bronze:1:8:1:0",
			want: map[string]sched.TenantConfig{
				"gold":   {Weight: 4, MaxQueued: 64, MaxRunning: 8, MaxPriority: 10},
				"bronze": {Weight: 1, MaxQueued: 8, MaxRunning: 1},
			},
		},
		{
			name:    "star names the default",
			spec:    "gold:4,*:1:16",
			want:    map[string]sched.TenantConfig{"gold": {Weight: 4}},
			wantDef: sched.TenantConfig{Weight: 1, MaxQueued: 16},
		},
		{name: "trailing comma ok", spec: "a:1,", want: map[string]sched.TenantConfig{"a": {Weight: 1}}},
		{name: "missing weight", spec: "gold", wantErr: "want name:weight"},
		{name: "too many fields", spec: "a:1:2:3:4:5", wantErr: "want name:weight"},
		{name: "empty name", spec: ":3", wantErr: "empty tenant name"},
		{name: "non-numeric", spec: "a:fast", wantErr: "field 2"},
		{name: "negative cap", spec: "a:1:-2", wantErr: "negative value"},
		{name: "zero weight", spec: "a:0", wantErr: "weight must be >= 1"},
		{name: "duplicate tenant", spec: "a:1,a:2", wantErr: "configured twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, def, err := parseTenantsSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("tenants = %+v, want %+v", got, tc.want)
			}
			if def != tc.wantDef {
				t.Errorf("default = %+v, want %+v", def, tc.wantDef)
			}
		})
	}
}

func TestSchedConfigFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-tenants", "gold:4:32,*:1", "-sched", "fifo", "-strict-tenants"})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cfg.schedConfig()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Policy != sched.PolicyFIFO || !sc.Strict {
		t.Errorf("policy=%v strict=%v, want fifo/true", sc.Policy, sc.Strict)
	}
	if sc.Tenants["gold"].Weight != 4 || sc.Tenants["gold"].MaxQueued != 32 {
		t.Errorf("gold = %+v", sc.Tenants["gold"])
	}
	if sc.Default.Weight != 1 {
		t.Errorf("default = %+v", sc.Default)
	}

	if cfg, err = parseFlags([]string{"-sched", "lottery"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.schedConfig(); err == nil || !strings.Contains(err.Error(), "-sched") {
		t.Errorf("bad policy: err = %v, want -sched complaint", err)
	}

	if cfg, err = parseFlags([]string{"-tenants", "a:0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.schedConfig(); err == nil || !strings.Contains(err.Error(), "-tenants") {
		t.Errorf("bad tenants: err = %v, want -tenants complaint", err)
	}
}
