// Command regvd is the simulation job service: it serves the
// internal/jobs worker pool over HTTP/JSON so register-file
// configuration sweeps can be submitted, deduplicated and cached
// centrally instead of re-run per invocation.
//
// Usage:
//
//	regvd [-addr host:port] [-j workers] [-shed-depth n] [-drain d]
//	      [-async-ttl d] [-async-max n] [-data-dir dir] [-checkpoint-every n]
//	      [-tenants spec] [-sched fair|fifo] [-strict-tenants] [-preempt=bool]
//	      [-faults spec] [-fault-seed n] [-scrub-every d] [-nemesis]
//	      [-log-format text|json] [-debug-addr host:port]
//	      [-shard name] [-peers name=url,...] [-standby name] [-cluster]
//
// Endpoints:
//
//	POST /v1/jobs       submit a job (sync; {"async":true} for async)
//	GET  /v1/jobs/{id}  status/result of a job
//	GET  /v1/queues     per-tenant scheduler state and counters
//	GET  /healthz       liveness ("ok", or "degraded" while shedding)
//	GET  /metrics       counters (JSON; ?format=prom for Prometheus text)
//	GET  /v1/trace/{id} one request's spans (?format=chrome for chrome://tracing)
//	GET  /v1/workloads  built-in workload names
//	GET  /v1/cluster    cluster role and replication/routing state
//
// Observability: every request carries a trace (join with the
// X-RegVD-Trace header, read the ID back from the response) whose
// spans — admission, queue wait, simulation, checkpoint writes, and in
// cluster mode the router hops — are served by GET /v1/trace/{id};
// through the router the trace is stitched across every shard it
// touched. /metrics?format=prom is a Prometheus scrape target (the
// router aggregates all shards, shard-labelled). Logs are structured
// (-log-format json for shipping) and stamped with trace_id, tenant,
// job and shard. -debug-addr serves net/http/pprof on a separate,
// operator-chosen listener.
//
// Example:
//
//	regvd -addr 127.0.0.1:8077 &
//	curl -s localhost:8077/v1/jobs -d '{"workload":"MatrixMul","physregs":512,"gating":true}'
//
// Whole-device jobs ({"gpu":true}) accept "gpu_par": the compute-phase
// worker count of the two-phase SM engine. It changes wall-clock time
// only — results are byte-identical at any setting — so it is excluded
// from the content hash and jobs differing only in gpu_par share one
// cached result.
//
// Failure behavior: when the job queue reaches -shed-depth the daemon
// refuses new unique work with 429 + Retry-After instead of letting
// latency grow without bound (cache hits and dedup joins still serve),
// and /healthz reports "degraded". Worker panics and simulator
// invariant violations are contained per job — the daemon keeps
// serving. -faults arms deterministic fault injection (chaos drills
// only; see internal/faultinject.ParseSpec for the site:kind:every
// grammar).
//
// Scheduling: jobs are dispatched by a multi-tenant fair-share
// scheduler (stride scheduling over the -tenants weights; priorities
// order jobs within a tenant's queue). Requests name their tenant in
// the job body ("tenant") or the X-RegVD-Tenant header; tenantless
// requests ride the shared "default" queue, so pre-tenancy clients
// keep working unchanged. -tenants takes comma-separated
// name:weight[:maxQueued[:maxRunning[:maxPriority]]] entries ("*" for
// the config unknown tenants get); -strict-tenants rejects tenants
// outside that set with 403. With -data-dir armed, a higher-priority
// arrival checkpoint-preempts the lowest-priority running job — the
// victim snapshots, re-queues, and later resumes byte-identically from
// its checkpoint (-preempt=false disables). GET /v1/queues shows every
// queue's weight, quotas, depth and per-tenant latency percentiles.
//
// Integrity: every result and checkpoint is written inside a
// checksummed envelope (internal/integrity); corrupt files read as
// misses, never as wrong answers. -scrub-every arms a background pass
// that verifies every envelope and self-heals corruption — refetch
// from the standby peer, deterministic re-simulation from the sealed
// job spec, quarantine as the last resort — surfacing scrub_* counters
// in /metrics. -nemesis (chaos drills only) adds POST
// /v1/faults/partition, which black-holes this process's outbound
// traffic to named host:port targets so partition behavior — fencing,
// resync, failover — can be driven from a test harness.
//
// Durability: -data-dir arms the write-ahead journal, on-disk result
// store and checkpoint store (internal/jobs/store). Accepted jobs are
// fsynced to the journal before they are acknowledged; on startup the
// journal is replayed — finished jobs serve from disk, unfinished jobs
// re-enqueue and resume from their latest checkpoint. A graceful
// shutdown (SIGINT/SIGTERM) interrupts in-flight simulations inside
// the -drain window so each writes a final checkpoint; even a SIGKILL
// loses nothing accepted (see `make recovery`). Without -data-dir the
// daemon is fully in-memory, as before.
//
// Clustering (internal/cluster): `-cluster -peers s1=url,s2=url,...`
// runs the daemon as a coordinator/router instead of a shard — one
// /v1/jobs surface consistent-hash-routed over the named shards, with
// health probing and automatic failover. A shard daemon names itself
// with -shard and, with `-standby <peer>` (the peer resolved through
// -peers), ships every journal frame to that peer so its accepted jobs
// survive its own death: the router tells the standby to adopt the
// dead shard's journal, pending jobs re-enqueue there (resuming from
// shipped checkpoints), and results come back byte-identical by the
// determinism contract. The router's /healthz aggregates shard health
// ("ok" / "degraded" with shards down / 503 with none reachable);
// GET /v1/cluster reports the topology from either role. See the
// README's cluster operations section for a 3-shard quickstart.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"strconv"
	"strings"

	"path/filepath"

	"regvirt/internal/cluster"
	"regvirt/internal/faultinject"
	"regvirt/internal/integrity"
	"regvirt/internal/jobs"
	"regvirt/internal/jobs/sched"
	"regvirt/internal/jobs/store"
	"regvirt/internal/obs"
)

// config is everything the daemon needs to boot, separated from flag
// parsing so tests can construct daemons directly.
type config struct {
	addr       string
	workers    int
	shedDepth  int
	asyncTTL   time.Duration
	asyncMax   int
	drain      time.Duration
	dataDir    string
	ckptEvery  uint64
	tenants    string
	schedPol   string
	strict     bool
	preempt    bool
	faults     string
	faultSeed  int64
	scrubEvery time.Duration
	nemesis    bool

	// Observability flags.
	logFormat string // "text" (human key=value) or "json" (machine-shipped)
	debugAddr string // pprof listener, separate from the service port

	// Cluster role flags (see internal/cluster).
	shard       string // this shard's name in the cluster
	peers       string // name=url address book: ring members (-cluster) or ship targets (-standby)
	standby     string // peer name to ship the journal to (needs -data-dir and -peers)
	clusterMode bool   // run as the coordinator/router instead of a shard
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("regvd", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8077", "listen address")
	fs.IntVar(&cfg.workers, "j", runtime.NumCPU(), "simulation worker goroutines")
	fs.IntVar(&cfg.shedDepth, "shed-depth", 0, "queue depth at which new unique work is shed with 429 (0 = default, negative = never shed)")
	fs.DurationVar(&cfg.asyncTTL, "async-ttl", 0, "how long finished async job records stay addressable (0 = default 10m)")
	fs.IntVar(&cfg.asyncMax, "async-max", 0, "max async job records kept (0 = default 4096, negative = unbounded)")
	fs.DurationVar(&cfg.drain, "drain", 30*time.Second, "graceful-shutdown drain window for in-flight requests")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "durability directory: journal accepted jobs, persist results, checkpoint and resume across restarts (empty = in-memory only)")
	fs.Uint64Var(&cfg.ckptEvery, "checkpoint-every", 100_000, "simulated cycles between durable checkpoints of in-flight jobs (needs -data-dir; 0 = only cancellation checkpoints)")
	fs.StringVar(&cfg.tenants, "tenants", "", "tenant table, comma-separated name:weight[:maxQueued[:maxRunning[:maxPriority]]] (\"*\" = config for unknown tenants)")
	fs.StringVar(&cfg.schedPol, "sched", "fair", "dispatch policy: fair (weighted stride + priorities) or fifo (legacy arrival order)")
	fs.BoolVar(&cfg.strict, "strict-tenants", false, "reject tenants outside -tenants with 403 (the default queue always admits)")
	fs.BoolVar(&cfg.preempt, "preempt", true, "let higher-priority arrivals checkpoint-preempt lower-priority running jobs (needs -data-dir)")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "structured log format: text (key=value) or json")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (separate listener; empty = off)")
	fs.StringVar(&cfg.faults, "faults", "", "fault injection spec, comma-separated site:kind:every[:arg] (chaos drills only)")
	fs.Int64Var(&cfg.faultSeed, "fault-seed", 0, "seed for fault-injection phase offsets")
	fs.DurationVar(&cfg.scrubEvery, "scrub-every", 0, "background integrity-scrub interval: verify every stored result/checkpoint envelope and self-heal corruption (0 = off; needs -data-dir)")
	fs.BoolVar(&cfg.nemesis, "nemesis", false, "arm the nemesis surface: POST /v1/faults/partition black-holes outbound traffic to named hosts (chaos drills only)")
	fs.StringVar(&cfg.shard, "shard", "regvd", "this shard's name in the cluster")
	fs.StringVar(&cfg.peers, "peers", "", "peer address book, comma-separated name=url: the ring shards under -cluster, the ship-target book under -standby")
	fs.StringVar(&cfg.standby, "standby", "", "peer name (from -peers) to ship the journal to for warm-standby failover (needs -data-dir)")
	fs.BoolVar(&cfg.clusterMode, "cluster", false, "run as the cluster coordinator/router over -peers instead of serving jobs directly")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if cfg.logFormat != "text" && cfg.logFormat != "json" {
		err := fmt.Errorf("regvd: -log-format %q (want text or json)", cfg.logFormat)
		fmt.Fprintln(fs.Output(), err)
		return config{}, err
	}
	if cfg.scrubEvery > 0 && cfg.dataDir == "" {
		err := fmt.Errorf("regvd: -scrub-every needs -data-dir (there is nothing at rest to scrub without one)")
		fmt.Fprintln(fs.Output(), err)
		return config{}, err
	}
	if err := cfg.validateCluster(); err != nil {
		fmt.Fprintln(fs.Output(), err)
		return config{}, err
	}
	return cfg, nil
}

// validateCluster cross-checks the cluster flags: the grammar errors a
// misconfigured node should die on at boot, not at first failover.
func (cfg config) validateCluster() error {
	if cfg.clusterMode {
		if cfg.peers == "" {
			return fmt.Errorf("regvd: -cluster requires -peers naming the ring shards")
		}
		if cfg.standby != "" {
			return fmt.Errorf("regvd: -standby is a shard flag; the -cluster router does not ship a journal")
		}
		if cfg.dataDir != "" {
			return fmt.Errorf("regvd: -data-dir is a shard flag; the -cluster router keeps no journal")
		}
	}
	if cfg.standby != "" {
		if cfg.dataDir == "" {
			return fmt.Errorf("regvd: -standby needs -data-dir (there is no journal to ship without one)")
		}
		if cfg.shard == "" {
			return fmt.Errorf("regvd: -standby needs a non-empty -shard name")
		}
		peers, err := parsePeers(cfg.peers)
		if err != nil {
			return err
		}
		if cfg.standby == cfg.shard {
			return fmt.Errorf("regvd: -standby %q is this shard itself", cfg.standby)
		}
		if _, ok := peerURL(peers, cfg.standby); !ok {
			return fmt.Errorf("regvd: -standby %q is not in -peers", cfg.standby)
		}
	}
	if cfg.peers != "" {
		if _, err := parsePeers(cfg.peers); err != nil {
			return err
		}
	}
	return nil
}

// parsePeers parses the -peers grammar: comma-separated name=url
// entries, names unique and non-empty, URLs http(s).
func parsePeers(spec string) ([]cluster.ShardInfo, error) {
	var out []cluster.ShardInfo
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, ok := strings.Cut(entry, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("regvd: -peers entry %q: want name=url", entry)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("regvd: -peers entry %q: URL must start with http:// or https://", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("regvd: -peers names %q twice", name)
		}
		seen[name] = true
		out = append(out, cluster.ShardInfo{Name: name, URL: strings.TrimRight(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("regvd: -peers spec %q names no peers", spec)
	}
	return out, nil
}

func peerURL(peers []cluster.ShardInfo, name string) (string, bool) {
	for _, p := range peers {
		if p.Name == name {
			return p.URL, true
		}
	}
	return "", false
}

// schedConfig assembles the scheduler settings from the parsed flags.
func (cfg config) schedConfig() (sched.Config, error) {
	sc := sched.Config{Strict: cfg.strict}
	switch cfg.schedPol {
	case "", "fair":
		sc.Policy = sched.PolicyFair
	case "fifo":
		sc.Policy = sched.PolicyFIFO
	default:
		return sched.Config{}, fmt.Errorf("regvd: -sched %q (want fair or fifo)", cfg.schedPol)
	}
	tenants, def, err := parseTenantsSpec(cfg.tenants)
	if err != nil {
		return sched.Config{}, fmt.Errorf("regvd: -tenants: %w", err)
	}
	sc.Tenants, sc.Default = tenants, def
	return sc, nil
}

// parseTenantsSpec parses the -tenants grammar: comma-separated
// entries of name:weight[:maxQueued[:maxRunning[:maxPriority]]], with
// "*" naming the config applied to tenants absent from the table.
// Omitted numeric fields mean "no cap"; an empty spec returns an empty
// table (every tenant gets weight 1, no quotas).
func parseTenantsSpec(spec string) (map[string]sched.TenantConfig, sched.TenantConfig, error) {
	tenants := map[string]sched.TenantConfig{}
	var def sched.TenantConfig
	if strings.TrimSpace(spec) == "" {
		return tenants, def, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 5 {
			return nil, def, fmt.Errorf("entry %q: want name:weight[:maxQueued[:maxRunning[:maxPriority]]]", entry)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, def, fmt.Errorf("entry %q: empty tenant name", entry)
		}
		nums := make([]int, 4) // weight, maxQueued, maxRunning, maxPriority
		for i, p := range parts[1:] {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, def, fmt.Errorf("entry %q: field %d: %v", entry, i+2, err)
			}
			if v < 0 {
				return nil, def, fmt.Errorf("entry %q: field %d: negative value %d", entry, i+2, v)
			}
			nums[i] = v
		}
		if nums[0] < 1 {
			return nil, def, fmt.Errorf("entry %q: weight must be >= 1", entry)
		}
		tc := sched.TenantConfig{Weight: nums[0], MaxQueued: nums[1], MaxRunning: nums[2], MaxPriority: nums[3]}
		if name == "*" {
			def = tc
			continue
		}
		if _, dup := tenants[name]; dup {
			return nil, def, fmt.Errorf("tenant %q configured twice", name)
		}
		tenants[name] = tc
	}
	return tenants, def, nil
}

// daemon is the assembled service: listener, pool, HTTP server and,
// with -data-dir, the durability store.
type daemon struct {
	cfg   config
	ln    net.Listener
	pool  *jobs.Pool // nil in router mode
	srv   *http.Server
	store *store.Store
	log   *slog.Logger

	// Cluster wiring (any may be nil depending on role/flags).
	standby *store.StandbyStore // shipped copies received from peers
	shipper *cluster.Shipper    // our journal's outbound replication
	router  *cluster.Router     // router mode only

	scrubber   *integrity.Scrubber       // -scrub-every background pass, nil when off
	partitions *faultinject.PartitionSet // -nemesis outbound partition set, nil when off
	debugSrv   *http.Server              // -debug-addr pprof listener, nil when off
}

// nemesisHandler mounts the chaos-drill fault surface in front of
// next: POST /v1/faults/partition adjusts which hosts this process's
// outbound traffic black-holes. Only wired under -nemesis.
func nemesisHandler(parts *faultinject.PartitionSet, log *slog.Logger, next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/faults/partition", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Block   []string `json:"block"`
			Unblock []string `json:"unblock"`
			Clear   bool     `json:"clear"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Clear {
			parts.Clear()
		}
		parts.Block(req.Block...)
		parts.Unblock(req.Unblock...)
		blocked := parts.Hosts()
		log.Warn("partition set updated", "blocked", blocked)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"blocked": blocked})
	})
	mux.Handle("/", next)
	return mux
}

// peerResultFetcher is the scrubber's first repair rung: ask a peer
// that may hold the same content-addressed result (this shard's
// standby) for its copy. The scrubber re-verifies whatever comes back,
// so a lying or corrupt peer can never poison the local store.
func peerResultFetcher(base string, rt http.RoundTripper) func(string) ([]byte, bool) {
	hc := &http.Client{Timeout: 5 * time.Second, Transport: rt}
	return func(id string) ([]byte, bool) {
		resp, err := hc.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, false
		}
		var st struct {
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&st) != nil ||
			st.State != "done" || len(st.Result) == 0 {
			return nil, false
		}
		return st.Result, true
	}
}

// armDebug binds the -debug-addr pprof listener. It is a separate
// listener on purpose: profiling endpoints leak internals (heap
// contents, symbol names), so they bind to an operator-chosen address
// — typically loopback — instead of riding the service port.
func (d *daemon) armDebug() error {
	if d.cfg.debugAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", d.cfg.debugAddr)
	if err != nil {
		return fmt.Errorf("regvd: -debug-addr: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.debugSrv = &http.Server{Handler: mux}
	go d.debugSrv.Serve(ln)
	d.log.Info("pprof debug listener armed", "addr", ln.Addr().String())
	return nil
}

// newDaemon binds the listener and builds the pool and server (or, in
// router mode, the cluster router). The caller owns shutdown via
// serve's stop channel.
func newDaemon(cfg config) (*daemon, error) {
	if cfg.clusterMode {
		return newRouterDaemon(cfg)
	}
	logger := obs.NewLogger(os.Stderr, cfg.logFormat, slog.String("shard", cfg.shard))
	var inj *faultinject.Injector
	if cfg.faults != "" {
		rules, err := faultinject.ParseSpec(cfg.faults)
		if err != nil {
			return nil, fmt.Errorf("regvd: -faults: %w", err)
		}
		inj = faultinject.New(cfg.faultSeed, rules...)
		logger.Warn("CHAOS MODE: fault injection armed — not for production traffic", "spec", cfg.faults, "seed", cfg.faultSeed)
	}
	var (
		st        *store.Store
		recovered []jobs.RecoveredJob
	)
	if cfg.dataDir != "" {
		var err error
		st, recovered, err = store.Open(cfg.dataDir)
		if err != nil {
			return nil, fmt.Errorf("regvd: %w", err)
		}
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, fmt.Errorf("regvd: %w", err)
	}
	sc, err := cfg.schedConfig()
	if err != nil {
		if st != nil {
			st.Close()
		}
		ln.Close()
		return nil, err
	}
	opts := jobs.Options{
		Workers:           cfg.workers,
		ShedDepth:         cfg.shedDepth,
		AsyncTTL:          cfg.asyncTTL,
		AsyncMax:          cfg.asyncMax,
		Sched:             sc,
		DisablePreemption: !cfg.preempt,
		Faults:            inj,
		Tracer:            obs.NewTracer(cfg.shard),
		Logger:            logger,
	}
	if st != nil {
		opts.Store = st
		opts.CheckpointEvery = cfg.ckptEvery
	}
	pool := jobs.NewPoolWith(opts)
	if st != nil {
		resumed := pool.Restore(recovered)
		if len(recovered) > 0 {
			logger.Info("journal replayed", "recovered", len(recovered), "resumed", resumed)
		}
	}

	// Cluster shard wiring: a disked shard can always receive peers'
	// shipments (standby store under <data-dir>/standby), and with
	// -standby it ships its own journal out. The shipper starts after
	// Restore so the initial resync covers recovered state too.
	var (
		standby *store.StandbyStore
		shipper *cluster.Shipper
		rec     jobs.Recorder
	)
	if st != nil {
		rec = st
		standby, err = store.OpenStandby(filepath.Join(cfg.dataDir, "standby"))
		if err != nil {
			pool.Close()
			st.Close()
			ln.Close()
			return nil, fmt.Errorf("regvd: %w", err)
		}
	}
	var parts *faultinject.PartitionSet
	if cfg.nemesis {
		parts = faultinject.NewPartitionSet()
		logger.Warn("NEMESIS MODE: partition fault surface armed — not for production traffic")
	}
	var standbyURL string
	if cfg.standby != "" {
		peers, perr := parsePeers(cfg.peers)
		if perr != nil {
			pool.Close()
			standby.Close()
			st.Close()
			ln.Close()
			return nil, perr
		}
		standbyURL, _ = peerURL(peers, cfg.standby) // presence validated at parse time
		shipper = cluster.NewShipper(cfg.shard, cfg.standby, standbyURL, st)
		shipper.SetLogger(logger)
		if parts != nil {
			shipper.SetTransport(parts.Transport(nil))
		}
		shipper.Start()
		logger.Info("shipping journal to standby", "standby", cfg.standby, "url", standbyURL)
	}

	// Background integrity scrub: walk the result and checkpoint stores
	// every -scrub-every, verifying envelopes and self-healing — peer
	// refetch from the standby when one is configured, deterministic
	// re-simulation from the embedded spec otherwise, quarantine as the
	// last resort. Tallies surface as scrub_* in /metrics.
	var scrubber *integrity.Scrubber
	if st != nil && cfg.scrubEvery > 0 {
		var fetch func(string) ([]byte, bool)
		if standbyURL != "" {
			var rt http.RoundTripper
			if parts != nil {
				rt = parts.Transport(nil)
			}
			fetch = peerResultFetcher(standbyURL, rt)
		}
		scrubber = &integrity.Scrubber{
			Every: cfg.scrubEvery,
			Log:   logger,
			Pass: func() integrity.Report {
				rep := st.Scrub(store.ScrubOptions{
					Fetch: fetch,
					Resim: func(j jobs.Job) (*jobs.Result, error) { return jobs.Execute(context.Background(), j) },
					Log:   logger,
				})
				pool.AddScrubStats(rep.Scanned, rep.Corrupt, rep.Repaired)
				return rep
			},
		}
		scrubber.Start()
		logger.Info("integrity scrubber armed", "every", cfg.scrubEvery)
	}

	shardSrv := cluster.NewShardServer(cfg.shard, pool, rec, standby, shipper)
	shardSrv.SetLogger(logger)
	handler := shardSrv.Handler(jobs.NewServer(pool).Handler())
	if parts != nil {
		handler = nemesisHandler(parts, logger, handler)
	}
	d := &daemon{
		cfg:        cfg,
		ln:         ln,
		pool:       pool,
		srv:        &http.Server{Handler: handler},
		store:      st,
		log:        logger,
		standby:    standby,
		shipper:    shipper,
		scrubber:   scrubber,
		partitions: parts,
	}
	if err := d.armDebug(); err != nil {
		d.closeBackends()
		ln.Close()
		return nil, err
	}
	return d, nil
}

// newRouterDaemon assembles the -cluster coordinator: no pool, no
// store — just the consistent-hash router over the -peers shards.
func newRouterDaemon(cfg config) (*daemon, error) {
	logger := obs.NewLogger(os.Stderr, cfg.logFormat, slog.String("role", "router"))
	peers, err := parsePeers(cfg.peers)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, fmt.Errorf("regvd: %w", err)
	}
	var parts *faultinject.PartitionSet
	ropts := cluster.RouterOptions{
		Tracer: obs.NewTracer("router"),
		Logger: logger,
	}
	if cfg.nemesis {
		parts = faultinject.NewPartitionSet()
		ropts.Transport = parts.Transport(nil)
		logger.Warn("NEMESIS MODE: partition fault surface armed — not for production traffic")
	}
	router, err := cluster.NewRouter(peers, ropts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	handler := http.Handler(router.Handler())
	if parts != nil {
		handler = nemesisHandler(parts, logger, handler)
	}
	d := &daemon{
		cfg:        cfg,
		ln:         ln,
		srv:        &http.Server{Handler: handler},
		log:        logger,
		router:     router,
		partitions: parts,
	}
	if err := d.armDebug(); err != nil {
		router.Close()
		ln.Close()
		return nil, err
	}
	return d, nil
}

// addr is the bound listen address (useful with ":0" in tests).
func (d *daemon) addr() string { return d.ln.Addr().String() }

// serve runs the HTTP server until a value arrives on stop, then
// drains: in-flight requests get the drain window to finish, new
// connections are refused, and only after Serve has fully returned is
// the pool closed — so no handler can race a submission against
// pool.Close.
func (d *daemon) serve(stop <-chan os.Signal) error {
	done := make(chan error, 1)
	go func() { done <- d.srv.Serve(d.ln) }()

	select {
	case err := <-done:
		// Serve failed before any shutdown was requested.
		d.closeBackends()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-stop:
	}

	d.log.Info("shutting down", "drain", d.cfg.drain)
	// Interrupt before draining: in-flight simulations abort onto a
	// cycle boundary and write their shutdown checkpoints inside the
	// drain window, instead of burning it simulating work a restart
	// would redo anyway.
	if d.pool != nil {
		d.pool.Interrupt()
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.drain)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		// Drain window expired with requests still in flight: cut them.
		d.log.Warn("drain window expired", "err", err)
		d.srv.Close()
	}
	<-done // Serve has returned; no handler is touching the pool.
	d.closeBackends()
	return nil
}

// closeBackends tears the daemon down in dependency order once no
// handler is running: pool first (drain checkpoints still journal and
// ship), then the shipper (final flush to the standby), then the
// stores, then the router's prober.
func (d *daemon) closeBackends() {
	if d.scrubber != nil {
		// Stop before the pool and store close: an in-flight pass still
		// reads result files and folds tallies into the pool's counters.
		d.scrubber.Stop()
	}
	if d.pool != nil {
		d.pool.Close()
	}
	if d.shipper != nil {
		d.shipper.Close()
	}
	if d.standby != nil {
		if err := d.standby.Close(); err != nil {
			d.log.Error("closing standby store", "err", err)
		}
	}
	if d.store != nil {
		if err := d.store.Close(); err != nil {
			d.log.Error("closing store", "err", err)
		}
	}
	if d.router != nil {
		d.router.Close()
	}
	if d.debugSrv != nil {
		d.debugSrv.Close()
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	d, err := newDaemon(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.clusterMode {
		d.log.Info("cluster router listening", "url", "http://"+d.addr(), "peers", cfg.peers)
	} else {
		d.log.Info("listening", "url", "http://"+d.addr(), "workers", cfg.workers)
	}

	// SIGINT/SIGTERM drain in-flight requests before exiting.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := d.serve(stop); err != nil {
		log.Fatalf("regvd: %v", err)
	}
}
