// Command regvd is the simulation job service: it serves the
// internal/jobs worker pool over HTTP/JSON so register-file
// configuration sweeps can be submitted, deduplicated and cached
// centrally instead of re-run per invocation.
//
// Usage:
//
//	regvd [-addr host:port] [-j workers]
//
// Endpoints:
//
//	POST /v1/jobs      submit a job (sync; {"async":true} for async)
//	GET  /v1/jobs/{id} status/result of a job
//	GET  /healthz      liveness
//	GET  /metrics      counters (expvar-style JSON)
//	GET  /v1/workloads built-in workload names
//
// Example:
//
//	regvd -addr 127.0.0.1:8077 &
//	curl -s localhost:8077/v1/jobs -d '{"workload":"MatrixMul","physregs":512,"gating":true}'
//
// Whole-device jobs ({"gpu":true}) accept "gpu_par": the compute-phase
// worker count of the two-phase SM engine. It changes wall-clock time
// only — results are byte-identical at any setting — so it is excluded
// from the content hash and jobs differing only in gpu_par share one
// cached result.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"regvirt/internal/jobs"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8077", "listen address")
		workers = flag.Int("j", runtime.NumCPU(), "simulation worker goroutines")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("regvd: %v", err)
	}
	pool := jobs.NewPool(*workers)
	srv := &http.Server{Handler: jobs.NewServer(pool).Handler()}
	log.Printf("regvd: listening on http://%s with %d workers", ln.Addr(), *workers)

	// SIGINT/SIGTERM drain in-flight requests before exiting.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("regvd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("regvd: shutdown: %v", err)
		}
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("regvd: %v", err)
	}
	pool.Close()
}
