package main

// The cluster failover proof: four real regvd binaries — three shards
// shipping their journals to a warm-standby hub — behind a real regvd
// router. The shard that owns a long-running job is SIGKILLed mid-batch
// while fault-injection latency has its pipeline wedged mid-simulation,
// and every job the cluster accepted must still complete through the
// single router URL with results byte-identical to a process that was
// never killed. `make cluster` runs exactly this file under -race;
// plain `go test` runs it too (skipped under -short).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"regvirt/internal/cluster"
	"regvirt/internal/jobs"
	"regvirt/internal/jobs/client"
)

// routerClusterStatus fetches the router's GET /v1/cluster view.
func routerClusterStatus(t *testing.T, base string) cluster.RouterStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatalf("GET /v1/cluster: %v", err)
	}
	defer resp.Body.Close()
	var st cluster.RouterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /v1/cluster: %v", err)
	}
	return st
}

func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills daemon subprocesses; skipped under -short")
	}
	bin := buildRegvd(t)

	// Hub standby first: every shard ships its journal here, and the
	// router sends adoption orders here when a shard dies.
	hub := startRegvd(t, bin, "-data-dir", t.TempDir(), "-shard", "standby",
		"-checkpoint-every", "2000", "-j", "2")

	// Three shards, each under injected latency faults so the kill lands
	// mid-simulation at an armed site. Latency-only faults do not change
	// result bytes, so the in-process control stays the reference.
	shardNames := []string{"s1", "s2", "s3"}
	procs := map[string]*regvdProc{}
	var peerSpec []string
	for _, name := range shardNames {
		p := startRegvd(t, bin, "-data-dir", t.TempDir(), "-shard", name,
			"-standby", "standby", "-peers", "standby="+hub.base,
			"-checkpoint-every", "2000", "-j", "2",
			"-faults", "sim.mem.accept:latency:500:2", "-fault-seed", "7")
		procs[name] = p
		peerSpec = append(peerSpec, name+"="+p.base)
	}
	router := startRegvd(t, bin, "-cluster", "-peers", strings.Join(peerSpec, ","))

	// The same ring the router builds, so the test knows which shard
	// owns the long job — that shard is the SIGKILL victim.
	ring, err := cluster.NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}

	spin := jobs.Job{Kernel: recoverySpin, GridCTAs: 2, ThreadsPerCTA: 64, ConcCTAs: 2}
	quick := []jobs.Job{
		{Workload: "VectorAdd"},
		{Workload: "VectorAdd", PhysRegs: 512},
		{Workload: "VectorAdd", Mode: "hwonly"},
	}
	batch := append([]jobs.Job{spin}, quick...)
	control := controlResults(t, batch)

	victim := ring.Owner(spin.Key())
	t.Logf("spin job %s owned by shard %s", spin.Key(), victim)

	c := client.New(router.base)
	ctx := context.Background()
	var ids []string
	for _, j := range batch {
		id, err := c.SubmitAsync(ctx, j)
		if err != nil {
			t.Fatalf("submit through router: %v", err)
		}
		ids = append(ids, id)
	}

	// Pull the plug only after the owning shard is mid-simulation and
	// has cut at least one checkpoint, so the standby resumes from a
	// shipped checkpoint rather than only re-running from scratch.
	vp := procs[victim]
	deadline := time.Now().Add(60 * time.Second)
	for {
		m := daemonMetrics(t, vp.base)
		if m.Running > 0 && m.CheckpointsWritten > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s never reached running+checkpointed; metrics %+v; logs:\n%s",
				victim, m, vp.logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Give the async shipper a flush interval to move the checkpoint.
	time.Sleep(300 * time.Millisecond)
	vp.kill(t, syscall.SIGKILL)

	// Every accepted job must complete through the router, byte-identical
	// to the never-killed control — including the ones marooned on the
	// dead shard, which the hub re-runs from the shipped journal.
	assertRecovered(t, router.base, ids, control)

	// The router saw the failure and rerouted around it.
	st := routerClusterStatus(t, router.base)
	var vrow *cluster.RouterShardStatus
	for i := range st.Shards {
		if st.Shards[i].Name == victim {
			vrow = &st.Shards[i]
		}
	}
	if vrow == nil {
		t.Fatalf("victim %s missing from router status %+v", victim, st)
	}
	if vrow.Healthy {
		t.Errorf("router still reports killed shard %s healthy", victim)
	}
	if vrow.Replayed == 0 {
		t.Errorf("router reports no jobs replayed for dead shard %s: %+v", victim, st)
	}
	if st.Failovers == 0 {
		t.Errorf("router reports zero failovers after a shard died: %+v", st)
	}

	// One dead shard degrades — but does not fail — the cluster.
	resp, err := http.Get(router.base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Errorf("/healthz with one shard down: status %d body %q, want 200 degraded",
			resp.StatusCode, body)
	}

	// New work whose keyspace belongs to the dead shard still lands:
	// the router fails it over and the result matches a clean run.
	fresh := jobs.Job{}
	found := false
	for r := 64; r <= 2048; r += 64 {
		cand := jobs.Job{Workload: "VectorAdd", PhysRegs: r, ConcCTAs: 2}
		if ring.Owner(cand.Key()) == victim {
			fresh, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no candidate job hashed to the dead shard's keyspace")
	}
	want, err := jobs.Execute(ctx, fresh)
	if err != nil {
		t.Fatalf("control run for fresh job: %v", err)
	}
	got, err := c.Submit(ctx, fresh)
	if err != nil {
		t.Fatalf("submit to dead keyspace through router: %v", err)
	}
	if gj, wj := string(got.JSON()), string(want.JSON()); gj != wj {
		t.Errorf("failed-over fresh job differs from control:\n got %s\nwant %s", gj, wj)
	}

	for _, name := range shardNames {
		if name != victim {
			procs[name].kill(t, syscall.SIGTERM)
		}
	}
	hub.kill(t, syscall.SIGTERM)
	router.kill(t, syscall.SIGTERM)
}
