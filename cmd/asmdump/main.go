// Command asmdump assembles a kernel and prints its control-flow graph,
// SIMT liveness, per-register lifetime estimates (the Fig. 3 analysis),
// and the compiled output with pir/pbr release metadata.
//
// Usage:
//
//	asmdump [-table bytes] [-warps n] <kernel.asm>
//	asmdump -workload MatrixMul
package main

import (
	"flag"
	"fmt"
	"os"

	"regvirt/internal/arch"
	"regvirt/internal/cfg"
	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/liveness"
	"regvirt/internal/workloads"
)

func main() {
	var (
		table    = flag.Int("table", arch.RenameTableBudgetBytes, "renaming table budget bytes (0 = unconstrained)")
		warps    = flag.Int("warps", arch.MaxWarpsPerSM, "resident warps (table sizing)")
		workload = flag.String("workload", "", "dump a built-in workload instead of a file")
	)
	flag.Parse()
	if err := run(*table, *warps, *workload, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "asmdump:", err)
		os.Exit(1)
	}
}

func run(table, warps int, workload string, args []string) error {
	var p *isa.Program
	switch {
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return err
		}
		p = w.Program()
		warps = w.ResidentWarps()
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		p, err = isa.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide a kernel file or -workload")
	}

	fmt.Println("== source ==")
	fmt.Print(p.String())

	if issues, lerr := compiler.Lint(p); lerr == nil && len(issues) > 0 {
		fmt.Println("\n== lint ==")
		for _, i := range issues {
			fmt.Printf("  %v\n", i)
		}
	}

	g, err := cfg.Build(p)
	if err != nil {
		return err
	}
	fmt.Println("\n== control flow ==")
	fmt.Print(g.String())
	for i, l := range g.Loops {
		fmt.Printf("  loop %d: head B%d blocks %v exits %v\n", i, l.Head, l.Blocks, l.ExitBlocks)
	}

	li := liveness.Analyze(g)
	fmt.Println("\n== liveness (SIMT-corrected) ==")
	for _, b := range g.Blocks {
		fmt.Printf("  B%d live-in %s live-out %s divergent=%v\n",
			b.ID, li.LiveIn[b.ID], li.LiveOut[b.ID], li.Divergent[b.ID])
	}

	k, err := compiler.Compile(p, compiler.Options{TableBytes: table, ResidentWarps: warps})
	if err != nil {
		return err
	}
	fmt.Println("\n== register lifetime estimates (Fig. 3 analysis) ==")
	fmt.Printf("  %-5s %6s %12s %10s\n", "reg", "defs", "avg-lifetime", "long-lived")
	for _, st := range k.Stats {
		fmt.Printf("  %-5s %6d %12.1f %10v\n", st.Reg, st.Defs, st.AvgLifetime, st.LongLived)
	}
	fmt.Printf("\n  exempt under %dB table with %d warps: %d (%v)\n",
		table, warps, k.Exempt, k.ExemptRegs)
	fmt.Printf("  unconstrained table: %d bytes\n", k.UnconstrainedTableBytes)

	fmt.Println("\n== compiled with release metadata ==")
	fmt.Print(k.Prog.String())
	if listing, lerr := isa.Listing(k.Prog); lerr == nil {
		fmt.Println("\n== binary listing ==")
		fmt.Print(listing)
	}
	fmt.Printf("\n  %d instructions (+%d pir, +%d pbr; static increase %.1f%%)\n",
		len(k.Prog.Instrs), k.PirCount, k.PbrCount, k.StaticIncrease()*100)
	fmt.Printf("  %d release points; avg %.1f regs per pbr\n", k.ReleasePoints, k.AvgPbrRegs)
	fmt.Println("\n  per-instruction release flags (pir bits):")
	for _, in := range k.Prog.Instrs {
		for i := 0; i < in.NSrc; i++ {
			if in.Rel[i] {
				fmt.Printf("    pc %3d: release %-4s after %s\n", in.PC, in.Srcs[i].Reg, in)
				break
			}
		}
	}
	return nil
}
