package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWorkloadDump(t *testing.T) {
	if err := run(1024, 48, "MatrixMul", nil); err != nil {
		t.Errorf("workload dump: %v", err)
	}
}

func TestRunFileDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.asm")
	src := ".kernel d\n movi r1, 5\n iadd r2, r1, 1\n st.global [r3+0], r2\n exit\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(1024, 8, "", []string{path}); err != nil {
		t.Errorf("file dump: %v", err)
	}
}

func TestRunDumpErrors(t *testing.T) {
	if err := run(1024, 8, "", nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run(1024, 8, "NoSuch", nil); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(1024, 8, "", []string{"/nonexistent.asm"}); err == nil {
		t.Error("missing file accepted")
	}
}
