// Command regvsim runs one workload (or a kernel assembly file) on the
// simulated SM under a chosen register-management configuration and
// prints the timing, register and energy statistics.
//
// Examples:
//
//	regvsim -workload MatrixMul
//	regvsim -workload MUM -mode compiler -physregs 512 -gating
//	regvsim -kernel my.asm -ctas 16 -threads 128 -conc 4 -mode baseline
//	regvsim -workload BFS -json        # machine-readable (same JSON as regvd)
//	regvsim -workload MatrixMul -gpu -gpu-par 8   # whole device, parallel engine
//	regvsim -workload MUM -remote http://127.0.0.1:8077   # run on a regvd service
//
// With -remote the simulation runs on a regvd daemon instead of in
// process: the flags are packed into a job, submitted through the
// retrying client (REGVD_RETRY_* environment tunes its backoff), and
// the service's result JSON is printed. Overload 429s and contained
// panics are retried automatically; jobs are content-addressed, so a
// re-run of the same configuration is a cache hit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/jobs"
	"regvirt/internal/jobs/client"
	"regvirt/internal/obs"
	"regvirt/internal/power"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
	"regvirt/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "built-in workload name (see -list)")
		list      = flag.Bool("list", false, "list built-in workloads")
		kernel    = flag.String("kernel", "", "kernel assembly file (alternative to -workload)")
		ctas      = flag.Int("ctas", 16, "grid CTAs (with -kernel)")
		threads   = flag.Int("threads", 128, "threads per CTA (with -kernel)")
		conc      = flag.Int("conc", 4, "concurrent CTAs per SM (with -kernel)")
		mode      = flag.String("mode", "compiler", "register-file backend: "+strings.Join(rename.ModeNames(), "|"))
		physRegs  = flag.Int("physregs", arch.NumPhysRegs, "physical registers (1024 baseline, 512 GPU-shrink)")
		gating    = flag.Bool("gating", false, "enable subarray power gating")
		wakeup    = flag.Int("wakeup", 1, "subarray wakeup latency (cycles)")
		flagCache = flag.Int("flagcache", arch.FlagCacheEntries, "release flag cache entries (-1 disables)")
		table     = flag.Int("table", arch.RenameTableBudgetBytes, "renaming table budget in bytes (0 = unconstrained)")
		rfCache   = flag.Int("rfcache", 0, "with -mode regcache: register cache lines (0 = arch default)")
		rfCacheWT = flag.Bool("rfcache-wt", false, "with -mode regcache: write-through instead of write-back")
		spillRegs = flag.Int("spill-regs", 0, "with -mode smemspill: registers demoted to shared memory (0 = auto-fit)")
		wholeGPU  = flag.Bool("gpu", false, "simulate all 16 SMs (whole grid) instead of one SM's share")
		gpuPar    = flag.Int("gpu-par", 1, "with -gpu: SM compute-phase worker goroutines (1 = sequential; results identical at any setting)")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable result JSON the regvd service returns")
		remote    = flag.String("remote", "", "regvd base URL: run the job on the service instead of in process (implies -json)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "with -remote: overall deadline for the job including retries")
		profile   = flag.Bool("profile", false, "attribute every simulated cycle to a pipeline phase (issue/operand/memory/hazard/commit/idle); results stay byte-identical")
		profTrace = flag.String("profile-trace", "", "with -profile: write the warp-state timeline to this file as Chrome trace_event JSON (chrome://tracing, Perfetto)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workloads.Names(), "\n"))
		return
	}
	if *profTrace != "" && !*profile {
		fmt.Fprintln(os.Stderr, "regvsim: -profile-trace requires -profile")
		os.Exit(2)
	}
	backend := backendFlags{entries: *rfCache, writeThrough: *rfCacheWT, spillRegs: *spillRegs}
	var err error
	if *remote != "" {
		if *profTrace != "" {
			fmt.Fprintln(os.Stderr, "regvsim: -profile-trace is in-process only (the service result carries the timeline as JSON)")
			os.Exit(2)
		}
		err = runRemote(*remote, *timeout, *workload, *kernel, *ctas, *threads, *conc, *mode, *physRegs, *gating, *wakeup, *flagCache, *table, backend, *wholeGPU, *gpuPar, *profile)
	} else {
		err = run(*workload, *kernel, *ctas, *threads, *conc, *mode, *physRegs, *gating, *wakeup, *flagCache, *table, backend, *wholeGPU, *gpuPar, *jsonOut, *profile, *profTrace)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "regvsim:", err)
		os.Exit(1)
	}
}

// backendFlags bundles the backend-specific CLI knobs.
type backendFlags struct {
	entries      int
	writeThrough bool
	spillRegs    int
}

// runRemote packs the CLI flags into a jobs.Job and submits it to a
// regvd service through the retrying client, printing the service's
// result JSON.
func runRemote(base string, timeout time.Duration, workload, kernelPath string,
	ctas, threads, conc int, mode string, physRegs int, gating bool,
	wakeup, flagCache, tableBytes int, backend backendFlags, wholeGPU bool, gpuPar int,
	profile bool) error {

	job := jobs.Job{
		Workload:            workload,
		Mode:                mode,
		PhysRegs:            physRegs,
		PowerGating:         gating,
		WakeupLatency:       wakeup,
		FlagCacheEntries:    flagCache,
		TableBytes:          tableBytes,
		RFCacheEntries:      backend.entries,
		RFCacheWriteThrough: backend.writeThrough,
		SpillRegs:           backend.spillRegs,
		WholeGPU:            wholeGPU,
		GPUParallel:         gpuPar,
		Profile:             profile,
	}
	if kernelPath != "" {
		src, err := os.ReadFile(kernelPath)
		if err != nil {
			return err
		}
		job.Kernel = string(src)
		job.GridCTAs, job.ThreadsPerCTA, job.ConcCTAs = ctas, threads, conc
	}
	if err := job.Validate(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c := client.New(base, client.WithPolicy(client.PolicyFromEnv()))
	res, err := c.Submit(ctx, job)
	if err != nil {
		return err
	}
	_, werr := os.Stdout.Write(res.JSON())
	return werr
}

func run(workload, kernelPath string, ctas, threads, conc int, mode string,
	physRegs int, gating bool, wakeup, flagCache, tableBytes int, backend backendFlags,
	wholeGPU bool, gpuPar int, jsonOut bool, profile bool, profTrace string) error {

	m, err := rename.ParseMode(mode)
	if err != nil {
		return err
	}

	var (
		spec sim.LaunchSpec
		k    *compiler.Kernel
	)
	switch {
	case workload != "":
		w, werr := workloads.ByName(workload)
		if werr != nil {
			return werr
		}
		opts := w.CompileOptions()
		opts.TableBytes = tableBytes
		opts.NoFlags = m != rename.ModeCompiler
		k, err = compiler.Compile(w.Program(), opts)
		if err != nil {
			return err
		}
		spec = w.Spec(k)
	case kernelPath != "":
		src, rerr := os.ReadFile(kernelPath)
		if rerr != nil {
			return rerr
		}
		p, perr := isa.Parse(string(src))
		if perr != nil {
			return perr
		}
		k, err = compiler.Compile(p, compiler.Options{
			TableBytes:    tableBytes,
			ResidentWarps: (threads + 31) / 32 * conc,
			NoFlags:       m != rename.ModeCompiler,
		})
		if err != nil {
			return err
		}
		spec = sim.LaunchSpec{Kernel: k, GridCTAs: ctas, ThreadsPerCTA: threads, ConcCTAs: conc}
	default:
		return fmt.Errorf("one of -workload or -kernel is required")
	}

	cfg := sim.Config{
		Mode: m, PhysRegs: physRegs, PowerGating: gating,
		WakeupLatency: wakeup, FlagCacheEntries: flagCache,
		RFCacheEntries: backend.entries, RFCacheWriteThrough: backend.writeThrough,
		SpillRegs: backend.spillRegs,
		GPUParallel: gpuPar,
		Profile:     profile,
	}
	var res *sim.Result
	var devProfile *sim.Profile // whole-GPU aggregate when profiling
	if wholeGPU {
		g, gerr := sim.RunGPU(cfg, spec)
		if gerr != nil {
			return gerr
		}
		if jsonOut {
			_, err := os.Stdout.Write(jobs.ResultFromGPU(k, cfg, tableBytes, g).JSON())
			return err
		}
		fmt.Printf("whole GPU        %d SMs, %d device cycles, %d instructions, reduction %.1f%%\n",
			len(g.PerSM), g.Cycles, g.Instrs, g.AllocationReduction()*100)
		devProfile = g.Profile
		// Report the busiest SM below.
		res = g.PerSM[0]
		for _, r := range g.PerSM {
			if r.Instrs > res.Instrs {
				res = r
			}
		}
	} else {
		var err error
		res, err = sim.Run(cfg, spec)
		if err != nil {
			return err
		}
		if jsonOut {
			_, werr := os.Stdout.Write(jobs.ResultFromSim(k, cfg, tableBytes, res).JSON())
			return werr
		}
	}

	fmt.Printf("kernel           %s (%d architected regs, %d exempt)\n",
		k.Prog.Name, k.Prog.RegCount, k.Exempt)
	fmt.Printf("config           mode=%s physregs=%d gating=%v wakeup=%d flagcache=%d\n",
		m, physRegs, gating, wakeup, flagCache)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("instructions     %d (IPC %.3f, occupancy %.1f warps)\n",
		res.Instrs, float64(res.Instrs)/float64(res.Cycles), res.AvgResidentWarps)
	fmt.Printf("memory requests  %d\n", res.MemRequests)
	fmt.Printf("peak live regs   %d / %d allocated (reduction %.1f%%)\n",
		res.PeakLiveRegs, res.CompilerAllocatedRegs, res.AllocationReduction()*100)
	fmt.Printf("metadata         %d pir + %d pbr decoded (dynamic increase %.2f%%)\n",
		res.DecodedPirs, res.DecodedPbrs, res.DynamicIncrease()*100)
	fmt.Printf("flag cache       %.1f%% hit rate (%d probes)\n",
		res.Flag.HitRate()*100, res.Flag.Probes)
	fmt.Printf("throttling       %d decisions, %d warps blocked, %d spills\n",
		res.Throttle.Throttles, res.Throttle.Blocked, res.Spills)
	awake := 0.0
	if res.RF.TotalSubarrayCyc > 0 {
		awake = float64(res.RF.AwakeSubarrayCyc) / float64(res.RF.TotalSubarrayCyc) * 100
	}
	fmt.Printf("subarrays awake  %.1f%%\n", awake)
	fmt.Printf("stall attempts   hazard=%d throttle=%d bank=%d memport=%d\n",
		res.Stalls.Hazard, res.Stalls.Throttle, res.Stalls.Bank, res.Stalls.MemPort)
	fmt.Printf("branches         %d divergent / %d uniform (max SIMT depth %d)\n",
		res.DivergentBranches, res.UniformBranches, res.MaxStackDepth)

	model := power.NewModel(power.DefaultParams())
	tb := 0
	if m.Renames() {
		tb = tableBytes
	}
	e := model.Breakdown(power.Counters{
		Cycles: res.Cycles, RF: res.RF, Rename: res.Rename, Flag: res.Flag,
		DecodedPirs: res.DecodedPirs, DecodedPbrs: res.DecodedPbrs,
		PhysRegs: res.PhysRegs, RenameTableBytes: tb,
	})
	fmt.Printf("energy           %s\n", e)

	if profile {
		prof := devProfile
		if prof == nil {
			prof = res.Profile
		}
		printProfile(prof)
		if profTrace != "" {
			// The timeline is per-SM; in whole-GPU mode it comes from the
			// busiest SM reported above.
			if err := writeProfileTrace(profTrace, res.Profile); err != nil {
				return err
			}
			fmt.Printf("profile trace    %s (load in chrome://tracing or Perfetto)\n", profTrace)
		}
	}
	return nil
}

// printProfile renders the cycle attribution as a phase breakdown.
// The six classes partition every simulated cycle, so the percentages
// sum to 100.
func printProfile(p *sim.Profile) {
	if p == nil {
		return
	}
	total := p.TotalCycles()
	if total == 0 {
		return
	}
	pct := func(v uint64) float64 { return float64(v) / float64(total) * 100 }
	fmt.Printf("cycle breakdown  issue %.1f%% | operand %.1f%% | memory %.1f%% | hazard %.1f%% | commit %.1f%% | idle %.1f%%\n",
		pct(p.IssueCycles), pct(p.OperandStallCycles), pct(p.MemStallCycles),
		pct(p.HazardStallCycles), pct(p.CommitStallCycles), pct(p.IdleCycles))
	if p.SamplesDropped > 0 {
		fmt.Printf("profile samples  %d kept, %d dropped past the cap\n", len(p.Samples), p.SamplesDropped)
	}
}

// writeProfileTrace exports the warp-state timeline as Chrome
// trace_event JSON: one thread row per warp slot, one complete event
// per contiguous run of the same state, timestamps in simulated cycles
// (rendered as microseconds — the units are cycles, not wall time).
func writeProfileTrace(path string, p *sim.Profile) error {
	if p == nil || len(p.Samples) == 0 {
		return fmt.Errorf("profile has no timeline samples to export")
	}
	slots := len(p.Samples[0].States)
	var events []obs.ChromeEvent
	events = append(events, obs.ChromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "warp timeline (ts = cycles)"},
	})
	for slot := 0; slot < slots; slot++ {
		runStart := 0
		for i := 1; i <= len(p.Samples); i++ {
			if i < len(p.Samples) && p.Samples[i].States[slot] == p.Samples[runStart].States[slot] {
				continue
			}
			state := p.Samples[runStart].States[slot]
			if state != sim.ProfileAbsent {
				start := p.Samples[runStart].Cycle
				var end uint64
				if i < len(p.Samples) {
					end = p.Samples[i].Cycle
				} else {
					end = p.Samples[len(p.Samples)-1].Cycle + 1
				}
				events = append(events, obs.ChromeEvent{
					Name: sim.ProfileStateName(state),
					Cat:  "warp",
					Ph:   "X",
					TS:   float64(start),
					Dur:  float64(end - start),
					PID:  1,
					TID:  slot,
					Args: map[string]any{"slot": slot, "issued": p.WarpIssued[slot]},
				})
			}
			runStart = i
		}
	}
	data, err := obs.EncodeChrome(events)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
