package main

import (
	"os"
	"path/filepath"
	"testing"

	"regvirt/internal/arch"
)

func TestRunWorkload(t *testing.T) {
	for _, mode := range []string{"baseline", "hwonly", "compiler"} {
		if err := run("VectorAdd", "", 0, 0, 0, mode, arch.NumPhysRegs, true, 1, 10, 1024, false); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunWholeGPU(t *testing.T) {
	if err := run("Gaussian", "", 0, 0, 0, "compiler", 512, false, 1, 10, 1024, true); err != nil {
		t.Errorf("whole-GPU run: %v", err)
	}
}

func TestRunKernelFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.asm")
	src := `
.kernel filetest
.reg 4
    s2r  r0, %tid.x
    shl  r1, r0, 2
    imul r2, r0, 3
    iadd r3, r1, c[0]
    st.global [r3+0], r2
    exit
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 8, 64, 2, "compiler", 1024, false, 1, 10, 1024, false); err != nil {
		t.Errorf("kernel file run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 0, 0, 0, "compiler", 1024, false, 1, 10, 1024, false); err == nil {
		t.Error("missing workload/kernel accepted")
	}
	if err := run("VectorAdd", "", 0, 0, 0, "bogus", 1024, false, 1, 10, 1024, false); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run("NoSuchWorkload", "", 0, 0, 0, "compiler", 1024, false, 1, 10, 1024, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("", "/nonexistent.asm", 8, 64, 2, "compiler", 1024, false, 1, 10, 1024, false); err == nil {
		t.Error("missing kernel file accepted")
	}
}
