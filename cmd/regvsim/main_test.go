package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/jobs"
	"regvirt/internal/rename"
)

func TestRunWorkload(t *testing.T) {
	for _, mode := range rename.ModeNames() {
		if err := run("VectorAdd", "", 0, 0, 0, mode, arch.NumPhysRegs, true, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunBackendKnobs(t *testing.T) {
	if err := run("VectorAdd", "", 0, 0, 0, "regcache", 512, false, 1, 10, 1024,
		backendFlags{entries: 16, writeThrough: true}, false, 1, false, false, ""); err != nil {
		t.Errorf("regcache with knobs: %v", err)
	}
	if err := run("VectorAdd", "", 0, 0, 0, "smemspill", 512, false, 1, 10, 1024,
		backendFlags{spillRegs: 2}, false, 1, false, false, ""); err != nil {
		t.Errorf("smemspill with knobs: %v", err)
	}
}

func TestRunWholeGPU(t *testing.T) {
	if err := run("Gaussian", "", 0, 0, 0, "compiler", 512, false, 1, 10, 1024, backendFlags{}, true, 4, false, false, ""); err != nil {
		t.Errorf("whole-GPU run: %v", err)
	}
}

func TestRunKernelFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.asm")
	src := `
.kernel filetest
.reg 4
    s2r  r0, %tid.x
    shl  r1, r0, 2
    imul r2, r0, 3
    iadd r3, r1, c[0]
    st.global [r3+0], r2
    exit
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 8, 64, 2, "compiler", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err != nil {
		t.Errorf("kernel file run: %v", err)
	}
}

// TestJSONOutput captures -json output and checks it parses as the
// shared jobs.Result encoding and agrees with the jobs.Execute path —
// the satellite guarantee that CLI and daemon outputs are
// interchangeable.
func TestJSONOutput(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "json")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = tmp
	runErr := run("VectorAdd", "", 0, 0, 0, "compiler", 512, true, 1, 10, 1024, backendFlags{}, false, 1, true, false, "")
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	var res jobs.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("-json output is not a jobs.Result: %v\n%s", err, data)
	}
	if res.Kernel == "" || res.Cycles == 0 || res.StoresDigest == "" {
		t.Errorf("incomplete JSON result: %s", data)
	}
	want, err := jobs.Execute(context.Background(), jobs.Job{
		Workload: "VectorAdd", Mode: "compiler", PhysRegs: 512, PowerGating: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != want.Cycles || res.StoresDigest != want.StoresDigest {
		t.Errorf("CLI and service encodings disagree: cycles %d vs %d", res.Cycles, want.Cycles)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 0, 0, 0, "compiler", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err == nil {
		t.Error("missing workload/kernel accepted")
	}
	if err := run("VectorAdd", "", 0, 0, 0, "bogus", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run("NoSuchWorkload", "", 0, 0, 0, "compiler", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("", "/nonexistent.asm", 8, 64, 2, "compiler", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err == nil {
		t.Error("missing kernel file accepted")
	}
}

// TestModeGrammar pins the CLI mode grammar: every registered spelling
// parses, and an unknown spelling produces an error that enumerates all
// valid modes — so a user who typos a backend name learns the full menu.
func TestModeGrammar(t *testing.T) {
	err := run("VectorAdd", "", 0, 0, 0, "virtual", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, "")
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	for _, name := range rename.ModeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-mode error %q does not list %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"virtual"`) {
		t.Errorf("unknown-mode error %q does not echo the bad input", err)
	}
	// The legacy alias still parses.
	if err := run("VectorAdd", "", 0, 0, 0, "hw-only", 1024, false, 1, 10, 1024, backendFlags{}, false, 1, false, false, ""); err != nil {
		t.Errorf("alias hw-only rejected: %v", err)
	}
}
