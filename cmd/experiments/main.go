// Command experiments regenerates the tables and figures of "GPU
// Register File Virtualization" (MICRO-48, 2015) on the simulator.
//
// Usage:
//
//	experiments [-csv dir] <table1|table2|fig1|fig3|fig7|fig9|fig10|fig11a|fig11b|fig12|fig13|fig14|fig15|shrink|all>
//
// With -csv, each experiment also writes a plot-ready CSV into dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"regvirt/internal/experiments"
	"regvirt/internal/isa"
)

var csvDir = flag.String("csv", "", "directory to write plot-ready CSV files into")

var order = []string{
	"table1", "table2", "fig1", "fig3", "fig7", "fig9",
	"fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15",
	"shrink", "sharing", "report",
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [-csv dir] <%s|all>\n", os.Args[0], join(order))
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	runner := experiments.NewRunner()
	which := flag.Arg(0)
	if which == "report" {
		doc, err := experiments.Report(runner)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(doc)
		return
	}
	if which == "all" {
		for _, name := range order {
			if err := run(runner, name); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(runner, which); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}

func run(r *experiments.Runner, which string) error {
	switch which {
	case "table1":
		header("Table 1: workloads")
		rows := experiments.Table1()
		fmt.Print(experiments.RenderTable1(rows))
		if err := writeCSV("table1", experiments.CSVTable1(rows)); err != nil {
			return err
		}
	case "table2":
		header("Table 2: renaming table and register bank energy (40nm)")
		fmt.Print(experiments.RenderTable2(experiments.Table2()))
	case "fig1":
		header("Fig. 1: fraction of live registers among compiler-reserved registers")
		apps, err := experiments.Fig1(r, 200)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig1(apps))
		if err := writeCSV("fig1", experiments.CSVFig1(apps)); err != nil {
			return err
		}
	case "fig3":
		header("Fig. 2/3: MatrixMul register lifetimes (warp 0)")
		segs, err := experiments.Fig3([]isa.RegID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig3(segs))
		if err := writeCSV("fig3", experiments.CSVFig3(segs)); err != nil {
			return err
		}
	case "fig7":
		header("Fig. 7: register file power vs size reduction")
		pts := experiments.Fig7()
		fmt.Print(experiments.RenderFig7(pts))
		if err := writeCSV("fig7", experiments.CSVFig7(pts)); err != nil {
			return err
		}
	case "fig9":
		header("Fig. 9: leakage power fraction vs technology (normalized to 40nm)")
		nodes := experiments.Fig9()
		fmt.Print(experiments.RenderFig9(nodes))
		if err := writeCSV("fig9", experiments.CSVFig9(nodes)); err != nil {
			return err
		}
	case "fig10":
		header("Fig. 10: register allocation reduction (%)")
		rows, err := experiments.Fig10(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAppValues(rows, "%", 60))
		if err := writeCSV("fig10", experiments.CSVAppValues(rows, "alloc_reduction_pct")); err != nil {
			return err
		}
	case "fig11a":
		header("Fig. 11a: execution cycle increase with 64KB register file (%)")
		rows, err := experiments.Fig11a(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig11a(rows))
		if err := writeCSV("fig11a", experiments.CSVFig11a(rows)); err != nil {
			return err
		}
	case "fig11b":
		header("Fig. 11b: sensitivity to subarray wakeup latency")
		pts, err := experiments.Fig11b(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig11b(pts))
		if err := writeCSV("fig11b", experiments.CSVFig11b(pts)); err != nil {
			return err
		}
	case "fig12":
		header("Fig. 12: register file energy breakdown (normalized to 128KB RF)")
		rows, err := experiments.Fig12(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig12(rows))
		if err := writeCSV("fig12", experiments.CSVFig12(rows)); err != nil {
			return err
		}
	case "fig13":
		header("Fig. 13: static and dynamic code increase (%)")
		rows, err := experiments.Fig13(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig13(rows))
		if err := writeCSV("fig13", experiments.CSVFig13(rows)); err != nil {
			return err
		}
	case "fig14":
		header("Fig. 14: renaming table size and 1KB-constrained saving")
		rows, err := experiments.Fig14(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig14(rows))
		if err := writeCSV("fig14", experiments.CSVFig14(rows)); err != nil {
			return err
		}
	case "fig15":
		header("Fig. 15: hardware-only renaming [46] normalized to this work")
		rows, err := experiments.Fig15(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig15(rows))
		if err := writeCSV("fig15", experiments.CSVFig15(rows)); err != nil {
			return err
		}
	case "shrink":
		header("GPU-shrink size sweep (§9.2: 30%/40%/50% reductions)")
		pts, err := experiments.ShrinkSweep(r)
		if err != nil {
			return err
		}
		fmt.Printf("%9s %11s %14s %14s\n", "physregs", "reduction", "avg overhead", "max overhead")
		for _, p := range pts {
			fmt.Printf("%9d %10.1f%% %13.2f%% %13.2f%%\n",
				p.PhysRegs, p.ReductionPct, p.AvgOverheadPct, p.MaxOverheadPct)
		}
		if err := writeCSV("shrink", experiments.CSVShrinkSweep(pts)); err != nil {
			return err
		}
	case "sharing":
		header("Inter-warp physical register sharing under GPU-shrink (§5)")
		rows, err := experiments.Sharing(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSharing(rows))
		if err := writeCSV("sharing", experiments.CSVSharing(rows)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
	fmt.Println()
	return nil
}

func header(title string) {
	fmt.Println("==", title)
}

// writeCSV emits one experiment's CSV artifact when -csv is set.
func writeCSV(name, doc string) error {
	if *csvDir == "" {
		return nil
	}
	path := filepath.Join(*csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
