// Command experiments regenerates the tables and figures of "GPU
// Register File Virtualization" (MICRO-48, 2015) on the simulator.
//
// Usage:
//
//	experiments [-csv dir] [-j N] <table1|table2|fig1|fig3|fig7|fig9|fig10|fig11a|fig11b|fig12|fig13|fig14|fig15|shrink|sharing|backends|gpu|report|all>
//
// With -csv, each experiment also writes a plot-ready CSV into dir.
// With -j N, independent experiments run concurrently on N workers of
// an internal/jobs pool; outputs are buffered and printed in the
// canonical order, so the bytes are identical to a sequential run.
//
// "gpu" is the whole-device comparison (sim.RunGPU, 16 SMs); it costs
// 16 single-SM runs per workload and is therefore not part of "all".
// -gpu-par sets its compute-phase worker count (wall-clock only; the
// two-phase engine's rows are identical at any setting).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"regvirt/internal/experiments"
	"regvirt/internal/isa"
	"regvirt/internal/jobs"
)

var (
	csvDir   = flag.String("csv", "", "directory to write plot-ready CSV files into")
	parallel = flag.Int("j", 1, "worker goroutines for independent experiments")
	gpuPar   = flag.Int("gpu-par", 1, "compute-phase workers for the gpu experiment (wall-clock only)")
)

var order = []string{
	"table1", "table2", "fig1", "fig3", "fig7", "fig9",
	"fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15",
	"shrink", "sharing", "backends", "report",
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [-csv dir] [-j N] [-gpu-par N] <%s|gpu|all>\n", os.Args[0], join(order))
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	names := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		names = order
	}
	if err := runAll(os.Stdout, experiments.NewRunner(), names, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runAll renders the named experiments to w in order. With workers > 1
// they execute concurrently on a jobs pool (sharing the runner's
// result cache) while the output stays byte-identical to the
// sequential run: each experiment renders into its own buffer and the
// buffers are flushed in order.
func runAll(w io.Writer, r *experiments.Runner, names []string, workers int) error {
	if workers <= 1 {
		for _, name := range names {
			if err := run(w, r, name); err != nil {
				return err
			}
		}
		return nil
	}
	pool := jobs.NewPool(workers)
	defer pool.Close()
	bufs := make([]bytes.Buffer, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = pool.Exec(context.Background(), func() error {
				return run(&bufs[i], r, name)
			})
		}(i, name)
	}
	wg.Wait()
	for i := range names {
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}

func run(w io.Writer, r *experiments.Runner, which string) error {
	switch which {
	case "table1":
		header(w, "Table 1: workloads")
		rows := experiments.Table1()
		fmt.Fprint(w, experiments.RenderTable1(rows))
		if err := writeCSV(w, "table1", experiments.CSVTable1(rows)); err != nil {
			return err
		}
	case "table2":
		header(w, "Table 2: renaming table and register bank energy (40nm)")
		fmt.Fprint(w, experiments.RenderTable2(experiments.Table2()))
	case "fig1":
		header(w, "Fig. 1: fraction of live registers among compiler-reserved registers")
		apps, err := experiments.Fig1(r, 200)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig1(apps))
		if err := writeCSV(w, "fig1", experiments.CSVFig1(apps)); err != nil {
			return err
		}
	case "fig3":
		header(w, "Fig. 2/3: MatrixMul register lifetimes (warp 0)")
		segs, err := experiments.Fig3([]isa.RegID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig3(segs))
		if err := writeCSV(w, "fig3", experiments.CSVFig3(segs)); err != nil {
			return err
		}
	case "fig7":
		header(w, "Fig. 7: register file power vs size reduction")
		pts := experiments.Fig7()
		fmt.Fprint(w, experiments.RenderFig7(pts))
		if err := writeCSV(w, "fig7", experiments.CSVFig7(pts)); err != nil {
			return err
		}
	case "fig9":
		header(w, "Fig. 9: leakage power fraction vs technology (normalized to 40nm)")
		nodes := experiments.Fig9()
		fmt.Fprint(w, experiments.RenderFig9(nodes))
		if err := writeCSV(w, "fig9", experiments.CSVFig9(nodes)); err != nil {
			return err
		}
	case "fig10":
		header(w, "Fig. 10: register allocation reduction (%)")
		rows, err := experiments.Fig10(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderAppValues(rows, "%", 60))
		if err := writeCSV(w, "fig10", experiments.CSVAppValues(rows, "alloc_reduction_pct")); err != nil {
			return err
		}
	case "fig11a":
		header(w, "Fig. 11a: execution cycle increase with 64KB register file (%)")
		rows, err := experiments.Fig11a(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig11a(rows))
		if err := writeCSV(w, "fig11a", experiments.CSVFig11a(rows)); err != nil {
			return err
		}
	case "fig11b":
		header(w, "Fig. 11b: sensitivity to subarray wakeup latency")
		pts, err := experiments.Fig11b(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig11b(pts))
		if err := writeCSV(w, "fig11b", experiments.CSVFig11b(pts)); err != nil {
			return err
		}
	case "fig12":
		header(w, "Fig. 12: register file energy breakdown (normalized to 128KB RF)")
		rows, err := experiments.Fig12(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig12(rows))
		if err := writeCSV(w, "fig12", experiments.CSVFig12(rows)); err != nil {
			return err
		}
	case "fig13":
		header(w, "Fig. 13: static and dynamic code increase (%)")
		rows, err := experiments.Fig13(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig13(rows))
		if err := writeCSV(w, "fig13", experiments.CSVFig13(rows)); err != nil {
			return err
		}
	case "fig14":
		header(w, "Fig. 14: renaming table size and 1KB-constrained saving")
		rows, err := experiments.Fig14(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig14(rows))
		if err := writeCSV(w, "fig14", experiments.CSVFig14(rows)); err != nil {
			return err
		}
	case "fig15":
		header(w, "Fig. 15: hardware-only renaming [46] normalized to this work")
		rows, err := experiments.Fig15(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig15(rows))
		if err := writeCSV(w, "fig15", experiments.CSVFig15(rows)); err != nil {
			return err
		}
	case "shrink":
		header(w, "GPU-shrink size sweep (§9.2: 30%/40%/50% reductions)")
		pts, err := experiments.ShrinkSweep(r)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%9s %11s %14s %14s\n", "physregs", "reduction", "avg overhead", "max overhead")
		for _, p := range pts {
			fmt.Fprintf(w, "%9d %10.1f%% %13.2f%% %13.2f%%\n",
				p.PhysRegs, p.ReductionPct, p.AvgOverheadPct, p.MaxOverheadPct)
		}
		if err := writeCSV(w, "shrink", experiments.CSVShrinkSweep(pts)); err != nil {
			return err
		}
	case "sharing":
		header(w, "Inter-warp physical register sharing under GPU-shrink (§5)")
		rows, err := experiments.Sharing(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderSharing(rows))
		if err := writeCSV(w, "sharing", experiments.CSVSharing(rows)); err != nil {
			return err
		}
	case "backends":
		header(w, "Register-file backends at 512 physical registers (vs baseline and GPU-shrink)")
		rows, err := experiments.Backends(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderBackends(rows))
		if err := writeCSV(w, "backends", experiments.CSVBackends(rows)); err != nil {
			return err
		}
	case "gpu":
		header(w, "Whole-device (16 SM) vs single-SM under GPU-shrink")
		rows, err := experiments.Device(r, *gpuPar)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%12s %13s %10s %9s %12s %12s %10s\n",
			"app", "device cyc", "SM cyc", "slowdown", "instrs", "mem reqs", "reduction")
		for _, row := range rows {
			fmt.Fprintf(w, "%12s %13d %10d %8.2fx %12d %12d %9.1f%%\n",
				row.App, row.DeviceCycles, row.SMCycles, row.Slowdown,
				row.Instrs, row.MemRequests, row.ReductionPct)
		}
		if err := writeCSV(w, "gpu", experiments.CSVDevice(rows)); err != nil {
			return err
		}
	case "report":
		doc, err := experiments.Report(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, doc)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
	fmt.Fprintln(w)
	return nil
}

func header(w io.Writer, title string) {
	fmt.Fprintln(w, "==", title)
}

// writeCSV emits one experiment's CSV artifact when -csv is set.
func writeCSV(w io.Writer, name, doc string) error {
	if *csvDir == "" {
		return nil
	}
	path := filepath.Join(*csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(wrote %s)\n", path)
	return nil
}
