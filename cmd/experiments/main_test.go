package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"regvirt/internal/experiments"
)

func TestRunAllExperiments(t *testing.T) {
	// One shared runner: results are memoized, so the full sweep is the
	// cost of running each simulation once. CSV output on, to cover the
	// artifact writers.
	dir := t.TempDir()
	old := *csvDir
	*csvDir = dir
	defer func() { *csvDir = old }()
	r := experiments.NewRunner()
	for _, name := range order {
		if name == "report" {
			continue // covered in internal/experiments
		}
		if err := run(io.Discard, r, name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := run(io.Discard, r, "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Every figure with a CSV artifact must have written one.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 13 {
		t.Errorf("only %d CSV artifacts written", len(entries))
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	old := *csvDir
	*csvDir = dir
	defer func() { *csvDir = old }()
	r := experiments.NewRunner()
	if err := run(io.Discard, r, "fig7"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

// TestParallelMatchesSequential is the -j acceptance check: the full
// `all` sweep on 8 workers must produce bytes identical to the
// sequential sweep (each with a fresh runner, so the parallel run
// really computes everything itself).
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full double sweep in -short mode")
	}
	var seq bytes.Buffer
	if err := runAll(&seq, experiments.NewRunner(), order, 1); err != nil {
		t.Fatalf("sequential: %v", err)
	}
	var par bytes.Buffer
	if err := runAll(&par, experiments.NewRunner(), order, 8); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("-j 8 output differs from sequential run (%d vs %d bytes)", par.Len(), seq.Len())
	}
}
