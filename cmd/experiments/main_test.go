package main

import (
	"os"
	"path/filepath"
	"testing"

	"regvirt/internal/experiments"
)

func TestRunAllExperiments(t *testing.T) {
	// One shared runner: results are memoized, so the full sweep is the
	// cost of running each simulation once. CSV output on, to cover the
	// artifact writers.
	dir := t.TempDir()
	old := *csvDir
	*csvDir = dir
	defer func() { *csvDir = old }()
	r := experiments.NewRunner()
	for _, name := range order {
		if name == "report" {
			continue // covered in internal/experiments
		}
		if err := run(r, name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := run(r, "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Every figure with a CSV artifact must have written one.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 13 {
		t.Errorf("only %d CSV artifacts written", len(entries))
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	old := *csvDir
	*csvDir = dir
	defer func() { *csvDir = old }()
	r := experiments.NewRunner()
	if err := run(r, "fig7"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}
