// Throttling demonstrates GPU-shrink's forward-progress machinery (§8.1)
// under extreme register pressure: a register-hungry kernel runs on
// physical register files from comfortable down to barely feasible, and
// the example reports how the CTA throttle (and, in the extreme, the
// spill fallback) keeps execution correct — results stay bit-identical
// to the full-size baseline at every size.
package main

import (
	"fmt"
	"log"
	"reflect"

	"regvirt"
)

func main() {
	// Heartwall is the suite's register-heaviest kernel: 29 architected
	// registers, 32 resident warps — 928 registers of architected demand.
	w, err := regvirt.WorkloadByName("Heartwall")
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := w.CompileBaseline()
	if err != nil {
		log.Fatal(err)
	}
	virt, err := w.Compile()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := regvirt.Run(regvirt.Config{Mode: regvirt.ModeBaseline}, w.Spec(baseline))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d architected registers x %d resident warps = %d demanded\n",
		w.Name, w.PaperRegs, w.ResidentWarps(), w.PaperRegs*w.ResidentWarps())
	fmt.Printf("baseline (1024 physical registers): %d cycles\n\n", ref.Cycles)

	fmt.Printf("%9s %10s %10s %10s %8s %8s %9s\n",
		"physregs", "cycles", "slowdown", "peak-live", "throttle", "spills", "correct")
	// Below ~the steady live set (here ~350 registers) the design must
	// fall back to continuous spilling, which §8.1 delegates to
	// conventional compiler spill code; 384 is the practical floor.
	for _, phys := range []int{1024, 512, 448, 384} {
		res, err := regvirt.Run(regvirt.Config{
			Mode:     regvirt.ModeCompiler,
			PhysRegs: phys,
		}, w.Spec(virt))
		if err != nil {
			log.Fatal(err)
		}
		ok := reflect.DeepEqual(res.Stores, ref.Stores)
		fmt.Printf("%9d %10d %9.2f%% %10d %8d %8d %9v\n",
			phys, res.Cycles,
			(float64(res.Cycles)/float64(ref.Cycles)-1)*100,
			res.PeakLiveRegs, res.Throttle.Blocked, res.Spills, ok)
		if !ok {
			log.Fatal("results diverged — register management bug")
		}
	}
	fmt.Println("\nEager release keeps the live set far below the architected demand,")
	fmt.Println("so shrinking down to roughly the live-set size only throttles —")
	fmt.Println("it never corrupts results.")
}
