// Multikernel runs a two-phase application (square, then block-sum) as
// back-to-back kernel launches sharing global memory — the way real GPU
// applications are structured — entirely under GPU-shrink. Each phase
// has a different register footprint; virtualization adapts the physical
// file usage per phase while the results stay exact.
package main

import (
	"fmt"
	"log"

	"regvirt"
)

const squareSrc = `
.kernel square
.reg 6
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r4, r3, c[1]
    ld.global r5, [r4+0]
    imul r5, r5, r5
    iadd r4, r3, c[2]
    st.global [r4+0], r5
    exit
`

const blockSumSrc = `
.kernel blocksum
.reg 8
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 4
    iadd r3, r3, c[1]
    movi r4, 0
    movi r5, 0
sum4:
    ld.global r6, [r3+0]
    iadd r5, r5, r6
    iadd r3, r3, 4
    iadd r4, r4, 1
    isetp.lt p0, r4, 4
@p0 bra sum4
    shl  r7, r2, 2
    iadd r7, r7, c[2]
    st.global [r7+0], r5
    exit
`

func main() {
	compile := func(src string) *regvirt.Kernel {
		p, err := regvirt.ParseKernel(src)
		if err != nil {
			log.Fatal(err)
		}
		k, err := regvirt.Compile(p, regvirt.CompileOptions{TableBytes: 1024, ResidentWarps: 8})
		if err != nil {
			log.Fatal(err)
		}
		return k
	}
	square, blocksum := compile(squareSrc), compile(blockSumSrc)

	const (
		in  = 0x1000
		mid = 0x8000
		out = 0x20000
	)
	cfg := regvirt.Config{
		Mode:        regvirt.ModeCompiler,
		PhysRegs:    512, // GPU-shrink
		PowerGating: true, WakeupLatency: 1,
	}
	results, err := regvirt.RunSequence(cfg,
		regvirt.LaunchSpec{Kernel: square, GridCTAs: 64, ThreadsPerCTA: 64, ConcCTAs: 4,
			Consts: []uint32{64, in, mid}},
		regvirt.LaunchSpec{Kernel: blocksum, GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
			Consts: []uint32{64, mid, out}},
	)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("phase %d: %6d cycles, %5d instructions, peak %3d registers (%.1f%% reduction)\n",
			i+1, r.Cycles, r.Instrs, r.PeakLiveRegs, r.AllocationReduction()*100)
	}
	// Spot-check one output element end to end.
	gid := uint32(5)
	got := results[1].Stores[out+gid*4]
	fmt.Printf("out[%d] = %d  (sum of squares of in[%d..%d], read across the kernel boundary)\n",
		gid, got, gid*4, gid*4+3)
}
