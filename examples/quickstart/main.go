// Quickstart: write a kernel, compile it with release metadata, run it
// under the conventional baseline and under GPU register file
// virtualization with a halved physical register file (GPU-shrink), and
// verify the results are bit-identical while the register demand drops.
package main

import (
	"fmt"
	"log"
	"reflect"

	"regvirt"
)

// A SAXPY-style kernel in the simulator's PTX-like assembly: each thread
// computes out[i] = a*x[i] + y[i]. Registers r4..r7 live briefly; the
// release metadata the compiler inserts lets the hardware reuse them
// across warps.
const kernelSrc = `
.kernel saxpy
.reg 8
    s2r   r0, %tid.x
    s2r   r1, %ctaid.x
    imad  r2, r1, c[0], r0
    shl   r3, r2, 2
    iadd  r4, r3, c[1]
    ld.global r5, [r4+0]
    iadd  r4, r3, c[2]
    ld.global r6, [r4+0]
    imul  r5, r5, c[3]
    iadd  r7, r5, r6
    iadd  r4, r3, c[4]
    st.global [r4+0], r7
    exit
`

func main() {
	prog, err := regvirt.ParseKernel(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}

	// Compile twice: a metadata-free baseline and the virtualized kernel
	// with pir/pbr release flags under the 1 KB renaming-table budget.
	baseline, err := regvirt.Compile(prog, regvirt.CompileOptions{NoFlags: true})
	if err != nil {
		log.Fatal(err)
	}
	virt, err := regvirt.Compile(prog, regvirt.CompileOptions{
		TableBytes:    1024,
		ResidentWarps: 16, // 4 warps/CTA x 4 concurrent CTAs
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d instructions + %d metadata (static increase %.1f%%)\n",
		prog.Name, virt.StaticInstrs, virt.MetaInstrs(), virt.StaticIncrease()*100)

	spec := regvirt.LaunchSpec{
		GridCTAs:      32,
		ThreadsPerCTA: 128,
		ConcCTAs:      4,
		// c0=threads/CTA, c1=x, c2=y, c3=a, c4=out.
		Consts: []uint32{128, 0x1_0000, 0x2_0000, 3, 0x3_0000},
	}

	// Conventional GPU: every architected register allocated at launch,
	// 128 KB (1024-register) file.
	spec.Kernel = baseline
	ref, err := regvirt.Run(regvirt.Config{Mode: regvirt.ModeBaseline}, spec)
	if err != nil {
		log.Fatal(err)
	}

	// GPU-shrink: virtualization on a 64 KB (512-register) file with
	// subarray power gating.
	spec.Kernel = virt
	shrink, err := regvirt.Run(regvirt.Config{
		Mode:          regvirt.ModeCompiler,
		PhysRegs:      512,
		PowerGating:   true,
		WakeupLatency: 1,
	}, spec)
	if err != nil {
		log.Fatal(err)
	}

	if !reflect.DeepEqual(ref.Stores, shrink.Stores) {
		log.Fatal("results differ — virtualization broke the program!")
	}
	fmt.Printf("results identical across %d output words\n", len(ref.Stores))
	fmt.Printf("baseline:   %6d cycles, peak %4d registers held\n", ref.Cycles, ref.PeakLiveRegs)
	fmt.Printf("GPU-shrink: %6d cycles, peak %4d registers held (%.1f%% allocation reduction)\n",
		shrink.Cycles, shrink.PeakLiveRegs, shrink.AllocationReduction()*100)
	fmt.Printf("slowdown:   %.2f%%\n",
		(float64(shrink.Cycles)/float64(ref.Cycles)-1)*100)

	eBase := regvirt.EnergyOf(ref, 0)
	eShrink := regvirt.EnergyOf(shrink, 1024)
	fmt.Printf("register file energy: baseline %.0f pJ -> GPU-shrink %.0f pJ (%.1f%% saved)\n",
		eBase.TotalPJ(), eShrink.TotalPJ(), (1-eShrink.TotalPJ()/eBase.TotalPJ())*100)
}
