// Powergating compares the register-file energy of the three design
// points of the paper's §9.2 (Fig. 12) on one workload: full-size file
// with power gating, halved file without gating, and GPU-shrink (halved
// file with gating). It prints the dynamic/static/renaming/metadata
// breakdown normalized to the conventional 128 KB baseline.
package main

import (
	"fmt"
	"log"

	"regvirt"
)

func main() {
	w, err := regvirt.WorkloadByName("BackProp")
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := w.CompileBaseline()
	if err != nil {
		log.Fatal(err)
	}
	virt, err := w.Compile()
	if err != nil {
		log.Fatal(err)
	}

	ref, err := regvirt.Run(regvirt.Config{Mode: regvirt.ModeBaseline}, w.Spec(baseline))
	if err != nil {
		log.Fatal(err)
	}
	base := regvirt.EnergyOf(ref, 0).TotalPJ()
	fmt.Printf("workload %s: conventional 128KB register file = %.0f pJ (the 1.0 baseline)\n\n", w.Name, base)

	configs := []struct {
		name string
		cfg  regvirt.Config
	}{
		{"128KB RF w/ PG", regvirt.Config{Mode: regvirt.ModeCompiler, PowerGating: true, WakeupLatency: 1}},
		{"64KB (50%) RF", regvirt.Config{Mode: regvirt.ModeCompiler, PhysRegs: 512}},
		{"64KB (50%) RF w/ PG", regvirt.Config{Mode: regvirt.ModeCompiler, PhysRegs: 512, PowerGating: true, WakeupLatency: 1}},
	}
	fmt.Printf("%-22s %8s %8s %8s %8s %8s %10s\n",
		"config", "dyn", "static", "rename", "flag", "total", "saved")
	for _, c := range configs {
		res, err := regvirt.Run(c.cfg, w.Spec(virt))
		if err != nil {
			log.Fatal(err)
		}
		e := regvirt.EnergyOf(res, 1024)
		fmt.Printf("%-22s %8.3f %8.3f %8.3f %8.3f %8.3f %9.1f%%\n",
			c.name,
			e.DynamicPJ/base, e.StaticPJ/base, e.RenameTablePJ/base, e.FlagInstrPJ/base,
			e.TotalPJ()/base, (1-e.TotalPJ()/base)*100)
	}
	fmt.Println("\nGPU-shrink combines both savings: smaller arrays cut dynamic and")
	fmt.Println("leakage power, and gating removes leakage from idle subarrays that")
	fmt.Println("eager register release keeps empty (paper: 42% average saving).")
}
