// Lifetimes reproduces the paper's Fig. 2/3 analysis on a custom kernel:
// it traces when each architected register of one warp holds a physical
// register and prints the lifetime timeline, showing the three archetypes
// the paper identifies — a long-lived register (their r1), a loop
// register with one short lifetime per iteration (their r0), and a
// short-lived early temporary (their r3).
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"regvirt"
	"regvirt/internal/isa"
)

const kernelSrc = `
.kernel lifetimes
.reg 6
    s2r   r0, %tid.x
    s2r   r3, %ctaid.x
    imad  r0, r3, c[0], r0
    shl   r1, r0, 2
    movi  r2, 0
    movi  r0, 0
loop:
    iadd  r4, r1, c[1]
    ld.global r5, [r4+0]
    iadd  r2, r2, r5
    iadd  r1, r1, 4
    iadd  r0, r0, 1
    isetp.lt p0, r0, c[2]
@p0 bra loop
    iadd  r4, r1, c[3]
    st.global [r4+0], r2
    exit
`

func main() {
	prog, err := regvirt.ParseKernel(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}
	k, err := regvirt.Compile(prog, regvirt.CompileOptions{TableBytes: 1024, ResidentWarps: 8})
	if err != nil {
		log.Fatal(err)
	}

	cfg := regvirt.Config{
		Mode: regvirt.ModeCompiler,
		Trace: regvirt.TraceConfig{
			TrackWarp: 0,
			TrackRegs: []isa.RegID{0, 1, 2, 3, 4, 5},
		},
	}
	res, err := regvirt.Run(cfg, regvirt.LaunchSpec{
		Kernel: k, GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 6, 0x2000},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Convert mapping events into lifetime segments per register.
	type seg struct{ start, end uint64 }
	open := map[isa.RegID]uint64{}
	segs := map[isa.RegID][]seg{}
	var last uint64
	for _, e := range res.RegEvents {
		if e.Cycle > last {
			last = e.Cycle
		}
		if e.Mapped {
			if _, ok := open[e.Reg]; !ok {
				open[e.Reg] = e.Cycle
			}
		} else if s, ok := open[e.Reg]; ok {
			segs[e.Reg] = append(segs[e.Reg], seg{s, e.Cycle})
			delete(open, e.Reg)
		}
	}
	for r, s := range open {
		segs[r] = append(segs[r], seg{s, last})
	}

	fmt.Println("register lifetime timeline of warp 0 ('#' = holds a physical register):")
	var regs []int
	for r := range segs {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	const width = 70
	for _, ri := range regs {
		r := isa.RegID(ri)
		line := []byte(strings.Repeat(".", width))
		for _, s := range segs[r] {
			from := int(s.start * uint64(width-1) / max(last, 1))
			to := int(s.end * uint64(width-1) / max(last, 1))
			for i := from; i <= to; i++ {
				line[i] = '#'
			}
		}
		fmt.Printf("  %-3s %s  (%d lifetime(s))\n", r, line, len(segs[r]))
	}
	fmt.Printf("time 0..%d cycles\n\n", last)
	fmt.Println("reading the archetypes (post-renumbering ids):")
	fmt.Println("  one unbroken bar      = long-lived (paper's r1: accumulator, base pointer)")
	fmt.Println("  many short bars       = per-iteration loop value (paper's r0)")
	fmt.Println("  short bar at the left = early index temporary (paper's r3)")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
