package rename

import (
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
)

// Backend is the register-file architecture under test: every policy
// decision the SM pipeline consults — allocation, release, operand
// resolution, value storage — plus checkpointing. The classic renaming
// Table implements it directly for the baseline/hw-only/compiler modes;
// regCache and smemSpill wrap a baseline table to model alternative
// register-file organizations behind the very same seam.
//
// Contract notes the simulator relies on:
//
//   - ReadOperand/ReadValue and PhysForWrite/Write form resolve/access
//     pairs: the pipeline resolves at issue time and touches the value
//     at collector/writeback time using the returned Phys. A Phys is
//     only ever passed back to the backend that produced it (wrapper
//     backends hand out virtual ids above the file's range).
//   - Policy predicates (IssueAllocates, ReleasesAtWarpExit, Renames,
//     SpillFallback) are constant for a backend's lifetime; the issue,
//     dispatch and scheduler paths branch on them instead of on the
//     mode enum, which is what keeps those layers mode-agnostic.
//   - State/SetState must round-trip the backend's complete mutable
//     state through any encoder (gob in the durability layer): resuming
//     from a checkpoint must be byte-identical to never stopping.
type Backend interface {
	Mode() Mode
	File() *regfile.File

	// Policy predicates (constant per backend).
	IssueAllocates() bool
	ReleasesAtWarpExit() bool
	Renames() bool
	SpillFallback() bool

	// Warp lifecycle.
	LaunchWarp(w int) bool
	ReleaseWarp(w int) []isa.RegID
	MappedCount(w int) int

	// Operand resolution and value access.
	Mapped(w int, r isa.RegID) bool
	ReadOperand(w int, r isa.RegID) (OperandRead, bool)
	ReadValue(p regfile.PhysReg) *[arch.WarpSize]uint32
	PhysForWrite(w int, r isa.RegID, fullWrite bool) (WriteResult, bool)
	Write(p regfile.PhysReg, val *[arch.WarpSize]uint32, mask uint32)
	Release(w int, r isa.RegID) bool

	// §8.1 whole-warp spill fallback (SpillFallback backends only).
	SpillWarp(w int) []SpilledReg
	RestoreWarp(w int, regs []SpilledReg) bool

	// Accounting and verification.
	Stats() Stats
	TableBytes() int
	SelfCheck() error

	// Checkpointing.
	State() *State
	SetState(*State) error
}

// NewBackend builds the backend for cfg.Mode over a physical register
// file — the single construction seam internal/sim uses.
func NewBackend(cfg Config, file *regfile.File) (Backend, error) {
	switch cfg.Mode {
	case ModeBaseline, ModeHWOnly, ModeCompiler:
		return New(cfg, file)
	case ModeRegCache:
		return newRegCache(cfg, file)
	case ModeSMemSpill:
		return newSMemSpill(cfg, file)
	}
	return nil, fmt.Errorf("rename: unknown mode %v", cfg.Mode)
}

// baseState returns a shallow copy of st with the wrapper payloads
// stripped, suitable for restoring into the wrapped inner Table (whose
// SetState rejects states that still carry a wrapper payload).
func baseState(st *State) *State {
	base := *st
	base.Cache, base.SMem = nil, nil
	return &base
}
