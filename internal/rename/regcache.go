package rename

import (
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
)

// regCache is the compiler-assisted register-file cache backend (Abaie
// Shoushtary et al. 2023): the allocation discipline is the baseline's
// (every architected register pinned at warp launch, reclaimed at CTA
// completion), but a small fully-associative cache fronts the banked
// main RF. A hit serves the operand without occupying a bank port, so
// cached operands can never bank-conflict; the cache is write-allocate,
// FIFO-evicted, and under the default write-back policy dirty values
// reach the main RF only on eviction.
type regCache struct {
	*Table // inner baseline table: mapping, launch/release, stats

	entries      int
	writeThrough bool
	// fifo holds the resident lines oldest-first; eviction pops the
	// head. The line count is small (tens), so linear probes are cheap
	// and — unlike a map — deterministic to iterate.
	fifo []cacheLine

	hits, misses, fills, writebacks uint64
}

type cacheLine struct {
	phys  regfile.PhysReg
	val   [arch.WarpSize]uint32
	dirty bool
}

func newRegCache(cfg Config, file *regfile.File) (*regCache, error) {
	if cfg.CacheEntries <= 0 {
		return nil, fmt.Errorf("rename: regcache needs a positive CacheEntries, got %d", cfg.CacheEntries)
	}
	inner := cfg
	inner.Mode = ModeBaseline
	inner.Exempt = 0
	t, err := New(inner, file)
	if err != nil {
		return nil, err
	}
	return &regCache{Table: t, entries: cfg.CacheEntries, writeThrough: cfg.CacheWriteThrough}, nil
}

func (c *regCache) Mode() Mode { return ModeRegCache }

// find returns the fifo index holding phys, or -1.
func (c *regCache) find(p regfile.PhysReg) int {
	for i := range c.fifo {
		if c.fifo[i].phys == p {
			return i
		}
	}
	return -1
}

// ReadOperand probes the cache after the baseline mapping resolves. A
// hit bypasses the banked RF (Bank -1: no operand-collector conflict);
// a miss reads the main RF normally. Read misses do not allocate — the
// cache is write-allocate, which is what makes it effective on the
// produce-then-consume register reuse pattern without thrashing on
// wide-fanout reads.
func (c *regCache) ReadOperand(w int, r isa.RegID) (OperandRead, bool) {
	p, ok := c.Lookup(w, r)
	if !ok {
		return OperandRead{Phys: p, Bank: -1}, false
	}
	if c.find(p) >= 0 {
		c.hits++
		return OperandRead{Phys: p, Bank: -1}, true
	}
	c.misses++
	return OperandRead{Phys: p, Bank: c.file.BankOf(p)}, true
}

func (c *regCache) ReadValue(p regfile.PhysReg) *[arch.WarpSize]uint32 {
	if i := c.find(p); i >= 0 {
		return &c.fifo[i].val
	}
	return c.file.Read(p)
}

// Write allocates (or updates) the line for p and merges the masked
// lanes. Write-through additionally forwards to the main RF; write-back
// marks the line dirty and defers the RF write to eviction.
func (c *regCache) Write(p regfile.PhysReg, val *[arch.WarpSize]uint32, mask uint32) {
	i := c.find(p)
	if i < 0 {
		if len(c.fifo) >= c.entries {
			c.evictOldest()
		}
		line := cacheLine{phys: p}
		if mask != ^uint32(0) {
			// Partial write into a fresh line: fill from the main RF so
			// unwritten lanes keep their current values.
			line.val = *c.file.Read(p)
			c.fills++
		}
		c.fifo = append(c.fifo, line)
		i = len(c.fifo) - 1
	}
	line := &c.fifo[i]
	for l := 0; l < arch.WarpSize; l++ {
		if mask&(1<<uint(l)) != 0 {
			line.val[l] = val[l]
		}
	}
	if c.writeThrough {
		c.file.Write(p, val, mask)
	} else {
		line.dirty = true
	}
}

func (c *regCache) evictOldest() {
	victim := c.fifo[0]
	c.fifo = c.fifo[:copy(c.fifo, c.fifo[1:])]
	if victim.dirty {
		v := victim.val
		c.file.Write(victim.phys, &v, ^uint32(0))
		c.writebacks++
	}
}

// ReleaseWarp drops the warp's lines before the inner table frees its
// physical registers: the values are dead (a CTA's registers are never
// read after completion), so dirty lines are discarded without a
// writeback — exactly what a real cache does on a launch-scope flash
// invalidate.
func (c *regCache) ReleaseWarp(w int) []isa.RegID {
	for _, p := range c.mapping[w] {
		if p == regfile.Unmapped {
			continue
		}
		if i := c.find(p); i >= 0 {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
		}
	}
	return c.Table.ReleaseWarp(w)
}

func (c *regCache) Stats() Stats {
	s := c.Table.Stats()
	s.CacheHits, s.CacheMisses = c.hits, c.misses
	s.CacheFills, s.CacheWritebacks = c.fills, c.writebacks
	return s
}

// CacheState is the serialized register-cache content, lines in FIFO
// order (oldest first).
type CacheState struct {
	Lines                           []CacheLineState
	Hits, Misses, Fills, Writebacks uint64
}

// CacheLineState is one resident line.
type CacheLineState struct {
	Phys  regfile.PhysReg
	Val   [arch.WarpSize]uint32
	Dirty bool
}

func (c *regCache) State() *State {
	st := c.Table.State()
	cs := &CacheState{
		Hits: c.hits, Misses: c.misses, Fills: c.fills, Writebacks: c.writebacks,
		Lines: make([]CacheLineState, len(c.fifo)),
	}
	for i, l := range c.fifo {
		cs.Lines[i] = CacheLineState{Phys: l.phys, Val: l.val, Dirty: l.dirty}
	}
	st.Cache = cs
	return st
}

func (c *regCache) SetState(st *State) error {
	if st == nil {
		return fmt.Errorf("rename: nil state")
	}
	if st.Cache == nil {
		return fmt.Errorf("rename: state has no register-cache payload")
	}
	if len(st.Cache.Lines) > c.entries {
		return fmt.Errorf("rename: cache state holds %d lines, cache has %d entries",
			len(st.Cache.Lines), c.entries)
	}
	seen := map[regfile.PhysReg]bool{}
	for _, l := range st.Cache.Lines {
		if int(l.Phys) < 0 || int(l.Phys) >= c.file.NumRegs() {
			return fmt.Errorf("rename: cache state line for physical %d out of range", l.Phys)
		}
		if seen[l.Phys] {
			return fmt.Errorf("rename: cache state holds physical %d twice", l.Phys)
		}
		seen[l.Phys] = true
	}
	if err := c.Table.SetState(baseState(st)); err != nil {
		return err
	}
	c.fifo = c.fifo[:0]
	for _, l := range st.Cache.Lines {
		c.fifo = append(c.fifo, cacheLine{phys: l.Phys, val: l.Val, dirty: l.Dirty})
	}
	c.hits, c.misses = st.Cache.Hits, st.Cache.Misses
	c.fills, c.writebacks = st.Cache.Fills, st.Cache.Writebacks
	return nil
}

func (c *regCache) SelfCheck() error {
	if len(c.fifo) > c.entries {
		return fmt.Errorf("rename: cache holds %d lines, capacity %d", len(c.fifo), c.entries)
	}
	seen := map[regfile.PhysReg]bool{}
	for _, l := range c.fifo {
		if seen[l.phys] {
			return fmt.Errorf("rename: cache holds physical %d twice", l.phys)
		}
		seen[l.phys] = true
	}
	return c.Table.SelfCheck()
}
