package rename

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
)

func newBackend(t *testing.T, cfg Config) Backend {
	t.Helper()
	f, err := regfile.New(regfile.Config{NumRegs: arch.NumPhysRegs})
	if err != nil {
		t.Fatalf("regfile.New: %v", err)
	}
	b, err := NewBackend(cfg, f)
	if err != nil {
		t.Fatalf("NewBackend: %v", err)
	}
	return b
}

func TestParseModeGrammar(t *testing.T) {
	for _, name := range ModeNames() {
		m, err := ParseMode(name)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", name, err)
			continue
		}
		if m.CanonicalName() != name {
			t.Errorf("ParseMode(%q).CanonicalName() = %q", name, m.CanonicalName())
		}
	}
	if m, err := ParseMode("hw-only"); err != nil || m != ModeHWOnly {
		t.Errorf(`alias "hw-only" = %v, %v`, m, err)
	}
	_, err := ParseMode("virtual")
	if err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
	for _, name := range ModeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestNewBackendFactory(t *testing.T) {
	// Classic modes come back as the direct table (byte-identity by
	// construction); wrappers report their own mode and predicates.
	for _, m := range []Mode{ModeBaseline, ModeHWOnly, ModeCompiler} {
		b := newBackend(t, Config{Mode: m, RegCount: 8, MaxWarps: 4})
		if _, ok := b.(*Table); !ok {
			t.Errorf("mode %v: backend is %T, want *Table", m, b)
		}
		if b.Mode() != m {
			t.Errorf("mode %v: backend reports %v", m, b.Mode())
		}
	}
	for _, cfg := range []Config{
		{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 4},
		{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: 3},
	} {
		b := newBackend(t, cfg)
		if b.Mode() != cfg.Mode {
			t.Errorf("backend reports %v, want %v", b.Mode(), cfg.Mode)
		}
		// Wrappers use the baseline discipline: no issue-time allocation,
		// no renaming, no per-warp release, no spill fallback.
		if b.IssueAllocates() || b.ReleasesAtWarpExit() || b.Renames() || b.SpillFallback() {
			t.Errorf("mode %v: wrapper backend enables a renaming policy predicate", cfg.Mode)
		}
	}

	f, err := regfile.New(regfile.Config{NumRegs: arch.NumPhysRegs})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4},                 // no cache entries
		{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: 8},  // spills everything
		{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: -1}, // negative
		{Mode: Mode(99), RegCount: 8, MaxWarps: 4},                     // unknown
	}
	for i, cfg := range bad {
		if _, err := NewBackend(cfg, f); err == nil {
			t.Errorf("case %d (%+v): invalid config accepted", i, cfg)
		}
	}
	// The classic constructor refuses wrapper modes: they need NewBackend.
	if _, err := New(Config{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 4}, f); err == nil {
		t.Error("rename.New accepted a wrapper mode")
	}
}

func TestRegCacheAccounting(t *testing.T) {
	b := newBackend(t, Config{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 2})
	if !b.LaunchWarp(0) {
		t.Fatal("LaunchWarp failed")
	}

	// Cold read: miss against a real bank; read misses never allocate.
	rd, ok := b.ReadOperand(0, 1)
	if !ok || rd.Bank < 0 {
		t.Fatalf("cold read: %+v, %v, want a banked miss", rd, ok)
	}
	if rd2, _ := b.ReadOperand(0, 1); rd2.Bank < 0 {
		t.Error("second read hit: read misses must not allocate (write-allocate cache)")
	}

	// A full write allocates; the next read hits and bypasses the banks.
	wr, ok := b.PhysForWrite(0, 1, true)
	if !ok {
		t.Fatal("PhysForWrite refused")
	}
	var v [arch.WarpSize]uint32
	v[0] = 42
	b.Write(wr.Phys, &v, ^uint32(0))
	rd, ok = b.ReadOperand(0, 1)
	if !ok || rd.Bank != -1 {
		t.Fatalf("read after write: %+v, %v, want a bank-bypassing hit", rd, ok)
	}
	if got := b.ReadValue(rd.Phys)[0]; got != 42 {
		t.Errorf("cached value = %d, want 42", got)
	}
	// Write-back: the main RF still holds the stale value.
	if got := b.File().Read(wr.Phys)[0]; got != 0 {
		t.Errorf("main RF = %d before eviction, want 0 (write-back)", got)
	}

	// Partial write into a fresh line fills the unwritten lanes from the
	// RF; two more allocations evict r1's dirty line back to the RF.
	wr2, _ := b.PhysForWrite(0, 2, false)
	b.Write(wr2.Phys, &v, 1)
	wr3, _ := b.PhysForWrite(0, 3, true)
	b.Write(wr3.Phys, &v, ^uint32(0))
	if got := b.File().Read(wr.Phys)[0]; got != 42 {
		t.Errorf("main RF = %d after eviction, want 42 (dirty writeback)", got)
	}

	s := b.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", s.CacheHits, s.CacheMisses)
	}
	if s.CacheFills != 1 {
		t.Errorf("fills = %d, want 1 (one partial-mask allocation)", s.CacheFills)
	}
	if s.CacheWritebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.CacheWritebacks)
	}
	if err := b.SelfCheck(); err != nil {
		t.Error(err)
	}
}

func TestRegCacheWriteThrough(t *testing.T) {
	b := newBackend(t, Config{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 2, CacheWriteThrough: true})
	b.LaunchWarp(0)
	wr, _ := b.PhysForWrite(0, 1, true)
	var v [arch.WarpSize]uint32
	v[0] = 7
	b.Write(wr.Phys, &v, ^uint32(0))
	if got := b.File().Read(wr.Phys)[0]; got != 7 {
		t.Errorf("main RF = %d, want 7 (write-through lands immediately)", got)
	}
	// Evictions have nothing to write back.
	for _, r := range []isa.RegID{2, 3, 4} {
		w, _ := b.PhysForWrite(0, r, true)
		b.Write(w.Phys, &v, ^uint32(0))
	}
	if s := b.Stats(); s.CacheWritebacks != 0 {
		t.Errorf("writebacks = %d under write-through, want 0", s.CacheWritebacks)
	}
}

func TestRegCacheReleaseDiscardsDirtyLines(t *testing.T) {
	b := newBackend(t, Config{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 4})
	b.LaunchWarp(0)
	wr, _ := b.PhysForWrite(0, 1, true)
	var v [arch.WarpSize]uint32
	v[0] = 9
	b.Write(wr.Phys, &v, ^uint32(0))
	b.ReleaseWarp(0)
	// The dead value must not have been written back.
	if got := b.File().Read(wr.Phys)[0]; got != 0 {
		t.Errorf("main RF = %d after release, want 0 (dirty lines discarded)", got)
	}
	if s := b.Stats(); s.CacheWritebacks != 0 {
		t.Errorf("writebacks = %d, want 0", s.CacheWritebacks)
	}
	if err := b.SelfCheck(); err != nil {
		t.Error(err)
	}
}

func TestSMemSpillRouting(t *testing.T) {
	b := newBackend(t, Config{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: 3})
	if !b.LaunchWarp(0) {
		t.Fatal("LaunchWarp failed")
	}
	base := regfile.PhysReg(b.File().NumRegs())

	// r6 is demoted (keep = 5): always mapped, read bypasses the banks
	// with the shared-memory penalty, writes land in the backend store.
	if !b.Mapped(0, 6) {
		t.Error("demoted register not mapped")
	}
	rd, ok := b.ReadOperand(0, 6)
	if !ok || rd.Bank != -1 || rd.Penalty != arch.SharedMemLatency {
		t.Fatalf("demoted read = %+v, %v, want bank -1 penalty %d", rd, ok, arch.SharedMemLatency)
	}
	if rd.Phys < base {
		t.Errorf("demoted phys %d below virtual base %d", rd.Phys, base)
	}
	wr, ok := b.PhysForWrite(0, 6, true)
	if !ok || wr.Phys < base || wr.WakeCycles != arch.SharedMemLatency {
		t.Fatalf("demoted write = %+v, %v, want virtual phys with store latency", wr, ok)
	}
	var v [arch.WarpSize]uint32
	v[3] = 11
	b.Write(wr.Phys, &v, ^uint32(0))
	if got := b.ReadValue(wr.Phys)[3]; got != 11 {
		t.Errorf("demoted value = %d, want 11", got)
	}

	// r2 stays RF-resident: normal bank, no penalty.
	rd, ok = b.ReadOperand(0, 2)
	if !ok || rd.Bank < 0 || rd.Penalty != 0 {
		t.Errorf("resident read = %+v, %v, want banked penalty-free", rd, ok)
	}
	if rd.Phys >= base {
		t.Errorf("resident phys %d in virtual range", rd.Phys)
	}

	s := b.Stats()
	if s.SMemReads != 1 || s.SMemWrites != 1 {
		t.Errorf("smem reads/writes = %d/%d, want 1/1", s.SMemReads, s.SMemWrites)
	}
	if got := b.MappedCount(0); got != 5 {
		t.Errorf("MappedCount = %d, want 5 RF-resident registers", got)
	}

	// Release zeroes the warp's shared-memory slots.
	b.ReleaseWarp(0)
	b.LaunchWarp(0)
	if got := b.ReadValue(wr.Phys)[3]; got != 0 {
		t.Errorf("slot = %d after release+relaunch, want 0", got)
	}
	if err := b.SelfCheck(); err != nil {
		t.Error(err)
	}
}

// gobRoundTrip pushes a State through the wire format checkpoints use.
func gobRoundTrip(t *testing.T, st *State) *State {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	out := new(State)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

func TestBackendStateRoundTrip(t *testing.T) {
	cfgs := []Config{
		{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 2},
		{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: 3},
	}
	for _, cfg := range cfgs {
		b := newBackend(t, cfg)
		b.LaunchWarp(0)
		b.LaunchWarp(1)
		var v [arch.WarpSize]uint32
		for _, r := range []isa.RegID{1, 6} {
			v[0] = uint32(r) * 100
			wr, ok := b.PhysForWrite(0, r, true)
			if !ok {
				t.Fatalf("%v: PhysForWrite(0, r%d) refused", cfg.Mode, r)
			}
			b.Write(wr.Phys, &v, ^uint32(0))
			b.ReadOperand(0, r)
		}

		// A checkpoint restores the register file and the rename layer as
		// separate states (sim.Snapshot does the same).
		restored := newBackend(t, cfg)
		if err := restored.File().SetState(b.File().State()); err != nil {
			t.Fatalf("%v: file SetState: %v", cfg.Mode, err)
		}
		if err := restored.SetState(gobRoundTrip(t, b.State())); err != nil {
			t.Fatalf("%v: SetState: %v", cfg.Mode, err)
		}
		if got, want := restored.Stats(), b.Stats(); got != want {
			t.Errorf("%v: restored stats %+v != %+v", cfg.Mode, got, want)
		}
		for _, r := range []isa.RegID{1, 6} {
			a, aok := b.ReadOperand(0, r)
			c, cok := restored.ReadOperand(0, r)
			if a != c || aok != cok {
				t.Errorf("%v: r%d reads as %+v/%v, restored %+v/%v", cfg.Mode, r, a, aok, c, cok)
			}
			if aok && *b.ReadValue(a.Phys) != *restored.ReadValue(c.Phys) {
				t.Errorf("%v: r%d value differs after restore", cfg.Mode, r)
			}
		}
		if err := restored.SelfCheck(); err != nil {
			t.Errorf("%v: restored SelfCheck: %v", cfg.Mode, err)
		}
	}
}

func TestStateCrossBackendRejection(t *testing.T) {
	cache := newBackend(t, Config{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 2})
	spill := newBackend(t, Config{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: 3})
	classic := newBackend(t, Config{Mode: ModeBaseline, RegCount: 8, MaxWarps: 4})
	cache.LaunchWarp(0)
	spill.LaunchWarp(0)

	// A classic table refuses a state carrying wrapper payload, and each
	// wrapper refuses a state missing its own payload.
	if err := classic.SetState(cache.State()); err == nil {
		t.Error("baseline table accepted a register-cache state")
	}
	if err := cache.SetState(spill.State()); err == nil {
		t.Error("regcache accepted a smemspill state")
	}
	if err := spill.SetState(cache.State()); err == nil {
		t.Error("smemspill accepted a regcache state")
	}

	// Geometry mismatches are detected, not silently truncated.
	other := newBackend(t, Config{Mode: ModeSMemSpill, RegCount: 8, MaxWarps: 4, SpillRegs: 2})
	if err := other.SetState(spill.State()); err == nil {
		t.Error("smemspill accepted a state with a different spill geometry")
	}
	big := newBackend(t, Config{Mode: ModeRegCache, RegCount: 8, MaxWarps: 4, CacheEntries: 8})
	var v [arch.WarpSize]uint32
	for _, r := range []isa.RegID{1, 2, 3, 4} {
		big.LaunchWarp(0)
		wr, _ := big.PhysForWrite(0, r, true)
		big.Write(wr.Phys, &v, ^uint32(0))
	}
	if err := cache.SetState(big.State()); err == nil {
		t.Error("2-entry regcache accepted a 4-line state")
	}
}
