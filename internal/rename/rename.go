// Package rename implements the register-file management backends. The
// classic renaming table (§7.1) covers three modes: the conventional
// baseline (all registers allocated at launch, freed at CTA completion),
// the hardware-only scheme of the NVIDIA patent [46] (release on
// redefinition), and the paper's compiler-driven virtualization (release
// at pir/pbr points). Bank assignment is preserved: a renamed register is
// always found within the bank the compiler assigned (§7.1). Two further
// backends wrap the baseline table behind the same Backend interface: a
// compiler-assisted register-file cache (regcache.go) and RegDem-style
// spilling of high-numbered registers to shared memory (smemspill.go).
package rename

import (
	"fmt"
	"strings"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
)

// Mode selects the register management policy.
type Mode int

const (
	// ModeBaseline is the conventional GPU policy: every architected
	// register of a warp gets a physical register at launch; all are
	// reclaimed when the CTA completes. No renaming table exists.
	ModeBaseline Mode = iota
	// ModeHWOnly is the hardware-only dynamic allocation of [46]:
	// a physical register is mapped when the architected register is
	// first written and released only when the architected register is
	// fully redefined.
	ModeHWOnly
	// ModeCompiler is the paper's scheme: allocation on first write,
	// release at compiler-provided pir/pbr points.
	ModeCompiler
	// ModeRegCache keeps the baseline allocation discipline but fronts
	// the main register file with a small register cache (Abaie
	// Shoushtary et al. 2023): hits bypass the banked RF entirely, and
	// under the write-back policy dirty values reach the main RF only on
	// eviction.
	ModeRegCache
	// ModeSMemSpill is RegDem-style demotion (Sakdhnagool et al. 2019):
	// the highest-numbered architected registers live in shared memory
	// instead of the RF, shrinking per-warp RF demand at a fixed
	// per-access latency cost.
	ModeSMemSpill
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeHWOnly:
		return "hw-only"
	case ModeCompiler:
		return "compiler"
	case ModeRegCache:
		return "regcache"
	case ModeSMemSpill:
		return "smemspill"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Renames reports whether the mode maintains a renaming table (and so
// pays rename-table energy and lookup latency). The baseline and the
// wrapper backends map architected registers directly.
func (m Mode) Renames() bool { return m == ModeHWOnly || m == ModeCompiler }

// modeNames maps every accepted spelling to its mode. The canonical
// spellings (ModeNames) are the ones the jobs API uses; "hw-only" is
// accepted as an alias because Mode.String prints it.
var modeNames = []struct {
	name string
	mode Mode
}{
	{"baseline", ModeBaseline},
	{"hwonly", ModeHWOnly},
	{"hw-only", ModeHWOnly},
	{"compiler", ModeCompiler},
	{"regcache", ModeRegCache},
	{"smemspill", ModeSMemSpill},
}

// ModeNames lists the canonical mode spellings ParseMode accepts, in
// presentation order — the single source every CLI/API error quotes.
func ModeNames() []string {
	return []string{"baseline", "hwonly", "compiler", "regcache", "smemspill"}
}

// CanonicalName is the jobs-API spelling of the mode — the first entry
// for it in modeNames ("hwonly", where String prints the historical
// "hw-only"). Job normalization maps aliases through it so spelling
// variants of one configuration share a cache key.
func (m Mode) CanonicalName() string {
	for _, e := range modeNames {
		if e.mode == m {
			return e.name
		}
	}
	return m.String()
}

// ParseMode resolves a mode name. The error lists the valid modes, so
// callers (regvsim, regvd, the jobs API) surface a self-describing
// grammar failure.
func ParseMode(s string) (Mode, error) {
	for _, m := range modeNames {
		if m.name == s {
			return m.mode, nil
		}
	}
	return 0, fmt.Errorf("rename: unknown mode %q (valid modes: %s)",
		s, strings.Join(ModeNames(), ", "))
}

// Config sizes a register-management backend.
type Config struct {
	Mode Mode
	// RegCount is the architected register count per warp for the kernel.
	RegCount int
	// Exempt is N: ids < N are pinned at warp launch and never released
	// before CTA completion (ModeCompiler only).
	Exempt int
	// MaxWarps is the number of warp slots.
	MaxWarps int
	// CacheEntries sizes the register cache (ModeRegCache only; must be
	// positive for that mode).
	CacheEntries int
	// CacheWriteThrough selects write-through for ModeRegCache; the
	// default is write-back (dirty lines reach the main RF on eviction).
	CacheWriteThrough bool
	// SpillRegs is how many of the highest-numbered architected
	// registers ModeSMemSpill keeps in shared memory instead of the RF
	// (bounded to RegCount-1; at least r0 stays RF-resident).
	SpillRegs int
}

// Stats counts renaming events for the power model and the sharing
// analysis.
type Stats struct {
	// Lookups counts renaming-table reads (operand lookups and write
	// lookups for non-exempt registers).
	Lookups uint64
	// Allocs and Releases count mapping creations and removals.
	Allocs, Releases uint64
	// FailedAllocs counts writes that found no free physical register in
	// their bank (the warp must stall).
	FailedAllocs uint64
	// CrossWarpReuse counts allocations that received a physical register
	// previously owned by a *different* warp — the paper's §5 inter-warp
	// sharing, enabled by warp scheduling time offsets. SameWarpReuse
	// counts re-acquisition by the same warp (Fig. 2(a)'s r0 pattern).
	CrossWarpReuse, SameWarpReuse uint64
	// CacheHits/CacheMisses count register-cache probes (ModeRegCache;
	// zero elsewhere). CacheFills counts partial-write line fills from
	// the main RF, CacheWritebacks dirty-line evictions written back.
	CacheHits, CacheMisses, CacheFills, CacheWritebacks uint64
	// SMemReads/SMemWrites count accesses to shared-memory-resident
	// registers (ModeSMemSpill; zero elsewhere).
	SMemReads, SMemWrites uint64
}

// Table maintains per-warp architected-to-physical mappings.
type Table struct {
	cfg     Config
	file    *regfile.File
	mapping [][]regfile.PhysReg
	// lastOwner tracks the previous warp slot of each physical register
	// (-1 = never owned) for the sharing statistics.
	lastOwner []int16
	stats     Stats
}

// New builds a renaming table over a physical register file. It serves
// the three classic modes; the wrapper modes are built by NewBackend.
func New(cfg Config, file *regfile.File) (*Table, error) {
	if cfg.Mode == ModeRegCache || cfg.Mode == ModeSMemSpill {
		return nil, fmt.Errorf("rename: mode %v is a wrapper backend; use NewBackend", cfg.Mode)
	}
	if cfg.RegCount <= 0 || cfg.RegCount > isa.MaxRegsPerThread {
		return nil, fmt.Errorf("rename: RegCount %d out of range", cfg.RegCount)
	}
	if cfg.Exempt < 0 || cfg.Exempt > cfg.RegCount {
		return nil, fmt.Errorf("rename: Exempt %d out of range", cfg.Exempt)
	}
	if cfg.MaxWarps <= 0 || cfg.MaxWarps > arch.MaxWarpsPerSM {
		return nil, fmt.Errorf("rename: MaxWarps %d out of range", cfg.MaxWarps)
	}
	t := &Table{cfg: cfg, file: file}
	t.lastOwner = make([]int16, file.NumRegs())
	for i := range t.lastOwner {
		t.lastOwner[i] = -1
	}
	t.mapping = make([][]regfile.PhysReg, cfg.MaxWarps)
	for w := range t.mapping {
		t.mapping[w] = make([]regfile.PhysReg, cfg.RegCount)
		for r := range t.mapping[w] {
			t.mapping[w][r] = regfile.Unmapped
		}
	}
	return t, nil
}

// Mode returns the configured management mode.
func (t *Table) Mode() Mode { return t.cfg.Mode }

// File returns the underlying physical register file.
func (t *Table) File() *regfile.File { return t.file }

// IssueAllocates reports that issuing a write may need a fresh physical
// register, so the issue stage must run the bank-capacity and throttle
// gates. Backends that pin every register at launch never allocate at
// issue.
func (t *Table) IssueAllocates() bool { return t.cfg.Mode != ModeBaseline }

// ReleasesAtWarpExit reports that a warp's mappings are reclaimed the
// moment it exits (virtualized modes); the launch-pinned backends hold
// everything until the CTA completes (§1).
func (t *Table) ReleasesAtWarpExit() bool { return t.cfg.Mode != ModeBaseline }

// Renames reports that operand accesses traverse a renaming structure
// and therefore pay the configured rename latency.
func (t *Table) Renames() bool { return t.cfg.Mode != ModeBaseline }

// SpillFallback reports that the §8.1 whole-warp spill fallback is
// armed (the compiler scheme only: it is the pressure valve for
// under-provisioned virtualized register files).
func (t *Table) SpillFallback() bool { return t.cfg.Mode == ModeCompiler }

// tableManaged reports whether register r goes through the renaming
// table (as opposed to being direct-mapped).
func (t *Table) tableManaged(r isa.RegID) bool {
	switch t.cfg.Mode {
	case ModeBaseline:
		return false
	case ModeCompiler:
		return int(r) >= t.cfg.Exempt
	default:
		return true
	}
}

// LaunchWarp pins the registers a warp needs up front: every register in
// ModeBaseline, the exempt ones in ModeCompiler, none in ModeHWOnly.
// It returns false when physical registers ran out (callers must only
// launch within the throttle governor's budget).
func (t *Table) LaunchWarp(w int) bool {
	var pin int
	switch t.cfg.Mode {
	case ModeBaseline:
		pin = t.cfg.RegCount
	case ModeCompiler:
		pin = t.cfg.Exempt
	case ModeHWOnly:
		pin = 0
	}
	for r := 0; r < pin; r++ {
		p, _, ok := t.file.Alloc(arch.BankOf(r))
		if !ok {
			// Roll back partial pinning.
			for q := 0; q < r; q++ {
				t.file.Release(t.mapping[w][q])
				t.mapping[w][q] = regfile.Unmapped
			}
			t.stats.FailedAllocs++
			return false
		}
		t.mapping[w][r] = p
		t.stats.Allocs++
		t.noteOwner(w, p)
	}
	return true
}

// ReleaseWarp drops every mapping of a warp slot (CTA completion, §1:
// "once a register is allocated it is not released until the CTA
// completes"; under virtualization the same hook reclaims leftovers).
// It returns the architected registers that were freed.
func (t *Table) ReleaseWarp(w int) []isa.RegID {
	var freed []isa.RegID
	for r := range t.mapping[w] {
		if p := t.mapping[w][r]; p != regfile.Unmapped {
			t.file.Release(p)
			t.mapping[w][r] = regfile.Unmapped
			t.stats.Releases++
			freed = append(freed, isa.RegID(r))
		}
	}
	return freed
}

// Mapped reports whether warp w currently has a mapping for r without
// counting a table access (scheduler pre-checks).
func (t *Table) Mapped(w int, r isa.RegID) bool {
	return r != isa.RZ && t.mapping[w][r] != regfile.Unmapped
}

// Lookup resolves a source operand. ok is false when the register was
// never written (reads return an unmapped register only in programs that
// read uninitialized registers; the simulator treats those as zero).
func (t *Table) Lookup(w int, r isa.RegID) (regfile.PhysReg, bool) {
	if r == isa.RZ {
		return regfile.Unmapped, false
	}
	if t.tableManaged(r) {
		t.stats.Lookups++
	}
	p := t.mapping[w][r]
	return p, p != regfile.Unmapped
}

// OperandRead describes one resolved source-operand access: where the
// value lives and what the access costs.
type OperandRead struct {
	Phys regfile.PhysReg
	// Bank is the RF bank the read occupies in the operand collector,
	// or -1 when the access bypassed the banked RF (cache hit,
	// shared-memory-resident register) and cannot conflict.
	Bank int
	// Penalty is extra dependent-use latency charged for this operand
	// (shared-memory register accesses; zero for RF-resident values).
	Penalty int
}

// ReadOperand resolves a source operand for issue. ok follows Lookup's
// contract: false when the register was never written (the simulator
// treats such reads as zero).
func (t *Table) ReadOperand(w int, r isa.RegID) (OperandRead, bool) {
	p, ok := t.Lookup(w, r)
	if !ok {
		return OperandRead{Phys: p, Bank: -1}, false
	}
	return OperandRead{Phys: p, Bank: t.file.BankOf(p)}, true
}

// ReadValue returns the value behind a physical register resolved by
// ReadOperand (counted as a register-file read).
func (t *Table) ReadValue(p regfile.PhysReg) *[arch.WarpSize]uint32 {
	return t.file.Read(p)
}

// Write delivers a writeback to a physical register resolved by
// PhysForWrite.
func (t *Table) Write(p regfile.PhysReg, val *[arch.WarpSize]uint32, mask uint32) {
	t.file.Write(p, val, mask)
}

// WriteResult describes what a write-port mapping did.
type WriteResult struct {
	Phys regfile.PhysReg
	// Allocated is true when a new mapping was created.
	Allocated bool
	// Freed is true when ModeHWOnly released the previous mapping.
	Freed bool
	// WakeCycles is the subarray wakeup penalty of the allocation.
	WakeCycles int
}

// PhysForWrite resolves (allocating if needed) the physical register for
// a write to r by warp w. fullWrite reports that every lane writes
// (unguarded instruction with a full active mask): only then may
// ModeHWOnly recycle the previous mapping — a partial write must merge
// into the existing register. ok is false when allocation failed (no free
// register in the bank); the caller must stall and retry.
func (t *Table) PhysForWrite(w int, r isa.RegID, fullWrite bool) (WriteResult, bool) {
	if r == isa.RZ {
		return WriteResult{Phys: regfile.Unmapped}, true
	}
	if t.tableManaged(r) {
		t.stats.Lookups++
	}
	cur := t.mapping[w][r]
	switch t.cfg.Mode {
	case ModeBaseline:
		return WriteResult{Phys: cur}, true
	case ModeCompiler:
		if cur != regfile.Unmapped {
			return WriteResult{Phys: cur}, true
		}
	case ModeHWOnly:
		if cur != regfile.Unmapped {
			if !fullWrite {
				return WriteResult{Phys: cur}, true
			}
			// Full redefinition: the old value dies here; recycle.
			t.file.Release(cur)
			t.mapping[w][r] = regfile.Unmapped
			t.stats.Releases++
			p, wake, ok := t.file.Alloc(arch.BankOf(int(r)))
			if !ok {
				t.stats.FailedAllocs++
				return WriteResult{Freed: true}, false
			}
			t.mapping[w][r] = p
			t.stats.Allocs++
			t.noteOwner(w, p)
			return WriteResult{Phys: p, Allocated: true, Freed: true, WakeCycles: wake}, true
		}
	}
	p, wake, ok := t.file.Alloc(arch.BankOf(int(r)))
	if !ok {
		t.stats.FailedAllocs++
		return WriteResult{}, false
	}
	t.mapping[w][r] = p
	t.stats.Allocs++
	t.noteOwner(w, p)
	return WriteResult{Phys: p, Allocated: true, WakeCycles: wake}, true
}

// noteOwner records reuse statistics for a fresh allocation.
func (t *Table) noteOwner(w int, p regfile.PhysReg) {
	switch prev := t.lastOwner[p]; {
	case prev == int16(w):
		t.stats.SameWarpReuse++
	case prev >= 0:
		t.stats.CrossWarpReuse++
	}
	t.lastOwner[p] = int16(w)
}

// Release drops the mapping of r for warp w at a pir/pbr point. It is
// idempotent: releasing an unmapped register is a no-op (a backup pbr may
// follow an in-arm pir, §6.1). Exempt registers are never released.
// It returns true when a physical register was actually freed.
func (t *Table) Release(w int, r isa.RegID) bool {
	if t.cfg.Mode != ModeCompiler || r == isa.RZ || int(r) < t.cfg.Exempt {
		return false
	}
	p := t.mapping[w][r]
	if p == regfile.Unmapped {
		return false
	}
	t.file.Release(p)
	t.mapping[w][r] = regfile.Unmapped
	t.stats.Releases++
	return true
}

// MappedCount returns how many architected registers of warp w are
// currently mapped.
func (t *Table) MappedCount(w int) int {
	n := 0
	for _, p := range t.mapping[w] {
		if p != regfile.Unmapped {
			n++
		}
	}
	return n
}

// SpilledReg is one architected register evacuated by SpillWarp.
type SpilledReg struct {
	Reg isa.RegID
	Val [arch.WarpSize]uint32
}

// SpillWarp evacuates every non-exempt mapping of warp w, returning the
// values so the caller can write them to spill memory (§8.1 fallback:
// one coalesced memory operation per architected register).
func (t *Table) SpillWarp(w int) []SpilledReg {
	var out []SpilledReg
	for r := range t.mapping[w] {
		if t.cfg.Mode == ModeCompiler && r < t.cfg.Exempt {
			continue
		}
		p := t.mapping[w][r]
		if p == regfile.Unmapped {
			continue
		}
		out = append(out, SpilledReg{Reg: isa.RegID(r), Val: t.file.Peek(p)})
		t.file.Release(p)
		t.mapping[w][r] = regfile.Unmapped
		t.stats.Releases++
	}
	return out
}

// RestoreWarp re-allocates and refills previously spilled registers.
// ok is false (with no side effects) when the file lacks space.
func (t *Table) RestoreWarp(w int, regs []SpilledReg) bool {
	// Check capacity per bank first so restoration is all-or-nothing.
	need := map[int]int{}
	for _, sr := range regs {
		need[arch.BankOf(int(sr.Reg))]++
	}
	for bank, n := range need {
		if t.file.FreeInBank(bank) < n {
			return false
		}
	}
	full := ^uint32(0)
	for _, sr := range regs {
		p, _, ok := t.file.Alloc(arch.BankOf(int(sr.Reg)))
		if !ok {
			panic("rename: RestoreWarp allocation failed after capacity check")
		}
		v := sr.Val
		t.file.Write(p, &v, full)
		t.mapping[w][sr.Reg] = p
		t.stats.Allocs++
		t.noteOwner(w, p)
	}
	return true
}

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

// State is a deep, serializable copy of a backend's mutable state (the
// mapping, ownership history and counters — the underlying register
// file snapshots separately). The wrapper backends attach their extra
// state through the optional pointer fields; the classic table modes
// leave them nil, so existing checkpoints keep decoding unchanged.
type State struct {
	Mapping   [][]regfile.PhysReg
	LastOwner []int16
	Stats     Stats
	// Cache is the register-cache content (ModeRegCache only).
	Cache *CacheState
	// SMem is the shared-memory register store (ModeSMemSpill only).
	SMem *SMemState
}

// State deep-copies the table's mutable state.
func (t *Table) State() *State {
	st := &State{
		Mapping:   make([][]regfile.PhysReg, len(t.mapping)),
		LastOwner: make([]int16, len(t.lastOwner)),
		Stats:     t.stats,
	}
	for w := range t.mapping {
		st.Mapping[w] = append([]regfile.PhysReg(nil), t.mapping[w]...)
	}
	copy(st.LastOwner, t.lastOwner)
	return st
}

// SetState restores a previously captured State into a table built with
// the same Config over a file of the same geometry.
func (t *Table) SetState(st *State) error {
	if st == nil {
		return fmt.Errorf("rename: nil state")
	}
	if st.Cache != nil || st.SMem != nil {
		return fmt.Errorf("rename: state carries wrapper-backend payload, table is mode %v", t.cfg.Mode)
	}
	if len(st.Mapping) != len(t.mapping) || len(st.LastOwner) != len(t.lastOwner) {
		return fmt.Errorf("rename: state geometry mismatch (%d warps vs %d)",
			len(st.Mapping), len(t.mapping))
	}
	for w := range st.Mapping {
		if len(st.Mapping[w]) != len(t.mapping[w]) {
			return fmt.Errorf("rename: warp %d has %d registers, table expects %d",
				w, len(st.Mapping[w]), len(t.mapping[w]))
		}
	}
	for w := range st.Mapping {
		copy(t.mapping[w], st.Mapping[w])
	}
	copy(t.lastOwner, st.LastOwner)
	t.stats = st.Stats
	return nil
}

// SelfCheck validates the mapping invariants: no two (warp, register)
// pairs may share a physical register, and every mapping must point at
// an allocated register (verified transitively by the file's own
// accounting: mapped count equals live count when the table owns every
// allocation).
func (t *Table) SelfCheck() error {
	owner := map[regfile.PhysReg][2]int{}
	mapped := 0
	for w := range t.mapping {
		for r, p := range t.mapping[w] {
			if p == regfile.Unmapped {
				continue
			}
			mapped++
			if prev, dup := owner[p]; dup {
				return fmt.Errorf("rename: physical %d owned by both w%d:r%d and w%d:r%d",
					p, prev[0], prev[1], w, r)
			}
			owner[p] = [2]int{w, r}
		}
	}
	if live := t.file.Live(); mapped != live {
		return fmt.Errorf("rename: %d mappings but %d live physical registers", mapped, live)
	}
	return t.file.SelfCheck()
}

// TableBytes returns the SRAM footprint of the mapping structure for the
// configured geometry (10-bit entries, §7.1).
func (t *Table) TableBytes() int {
	if t.cfg.Mode == ModeBaseline {
		return 0
	}
	regs := t.cfg.RegCount
	if t.cfg.Mode == ModeCompiler {
		regs -= t.cfg.Exempt
	}
	return (arch.RenameEntryBits*t.cfg.MaxWarps*regs + 7) / 8
}
