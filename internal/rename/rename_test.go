package rename

import (
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
)

func newTable(t *testing.T, cfg Config, numRegs int) *Table {
	t.Helper()
	f, err := regfile.New(regfile.Config{NumRegs: numRegs})
	if err != nil {
		t.Fatalf("regfile.New: %v", err)
	}
	tb, err := New(cfg, f)
	if err != nil {
		t.Fatalf("rename.New: %v", err)
	}
	return tb
}

func TestBaselineLaunchAllocatesEverything(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeBaseline, RegCount: 16, MaxWarps: 48}, arch.NumPhysRegs)
	if !tb.LaunchWarp(0) {
		t.Fatal("LaunchWarp failed")
	}
	if got := tb.MappedCount(0); got != 16 {
		t.Errorf("MappedCount = %d, want 16", got)
	}
	if got := tb.File().Live(); got != 16 {
		t.Errorf("Live = %d, want 16", got)
	}
	// Bank striping is preserved for direct-mapped registers.
	for r := 0; r < 16; r++ {
		p, ok := tb.Lookup(0, isa.RegID(r))
		if !ok {
			t.Fatalf("r%d unmapped after launch", r)
		}
		if tb.File().BankOf(p) != arch.BankOf(r) {
			t.Errorf("r%d in bank %d, want %d", r, tb.File().BankOf(p), arch.BankOf(r))
		}
	}
}

func TestBaselineHasNoTableLookups(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeBaseline, RegCount: 8, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(0)
	tb.Lookup(0, 3)
	tb.PhysForWrite(0, 3, true)
	if got := tb.Stats().Lookups; got != 0 {
		t.Errorf("baseline counted %d table lookups, want 0", got)
	}
	if tb.TableBytes() != 0 {
		t.Errorf("baseline TableBytes = %d, want 0", tb.TableBytes())
	}
}

func TestCompilerAllocOnWrite(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(0)
	if got := tb.MappedCount(0); got != 0 {
		t.Fatalf("MappedCount after launch = %d, want 0 (no exempt)", got)
	}
	if _, ok := tb.Lookup(0, 5); ok {
		t.Error("unwritten register should be unmapped")
	}
	res, ok := tb.PhysForWrite(0, 5, true)
	if !ok || !res.Allocated {
		t.Fatalf("write mapping failed: %+v ok=%v", res, ok)
	}
	if tb.File().BankOf(res.Phys) != arch.BankOf(5) {
		t.Errorf("renamed r5 landed in bank %d, want %d", tb.File().BankOf(res.Phys), arch.BankOf(5))
	}
	// Second write goes in place.
	res2, ok := tb.PhysForWrite(0, 5, true)
	if !ok || res2.Allocated || res2.Phys != res.Phys {
		t.Errorf("rewrite should reuse mapping: %+v", res2)
	}
}

func TestCompilerReleaseIdempotent(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(0)
	tb.PhysForWrite(0, 5, true)
	if !tb.Release(0, 5) {
		t.Error("first release should free")
	}
	if tb.Release(0, 5) {
		t.Error("second release must be a no-op (backup pbr semantics)")
	}
	if tb.File().Live() != 0 {
		t.Errorf("Live = %d, want 0", tb.File().Live())
	}
}

func TestCompilerExemptPinnedAndUnreleasable(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, Exempt: 3, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(0)
	if got := tb.MappedCount(0); got != 3 {
		t.Fatalf("MappedCount = %d, want 3 exempt pins", got)
	}
	if tb.Release(0, 1) {
		t.Error("exempt register must not release")
	}
	if got := tb.MappedCount(0); got != 3 {
		t.Errorf("MappedCount = %d after exempt release attempt, want 3", got)
	}
	// Exempt lookups don't touch the table.
	base := tb.Stats().Lookups
	tb.Lookup(0, 2)
	if tb.Stats().Lookups != base {
		t.Error("exempt lookup counted as a table access")
	}
	tb.Lookup(0, 5)
	if tb.Stats().Lookups != base+1 {
		t.Error("non-exempt lookup not counted")
	}
}

func TestHWOnlyReleaseOnFullRedefine(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeHWOnly, RegCount: 8, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(0)
	res1, _ := tb.PhysForWrite(0, 2, true)
	if !res1.Allocated {
		t.Fatal("first write should allocate")
	}
	// Partial write merges in place.
	resP, _ := tb.PhysForWrite(0, 2, false)
	if resP.Allocated || resP.Freed || resP.Phys != res1.Phys {
		t.Errorf("partial write should stay in place: %+v", resP)
	}
	// Full redefinition recycles.
	res2, _ := tb.PhysForWrite(0, 2, true)
	if !res2.Freed || !res2.Allocated {
		t.Errorf("full redefine should free and re-allocate: %+v", res2)
	}
	if tb.Stats().Releases != 1 {
		t.Errorf("Releases = %d, want 1", tb.Stats().Releases)
	}
	// Compiler-style release is ignored in hw-only mode.
	if tb.Release(0, 2) {
		t.Error("hw-only mode must ignore pir/pbr releases")
	}
}

func TestReleaseWarpFreesEverything(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, Exempt: 2, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(1)
	tb.PhysForWrite(1, 5, true)
	tb.PhysForWrite(1, 6, true)
	if n := len(tb.ReleaseWarp(1)); n != 4 { // 2 exempt + 2 renamed
		t.Errorf("ReleaseWarp freed %d, want 4", n)
	}
	if tb.File().Live() != 0 {
		t.Errorf("Live = %d, want 0", tb.File().Live())
	}
}

func TestAllocFailureUnderPressure(t *testing.T) {
	// A tiny file: 16 physical registers, 4 per bank.
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, MaxWarps: 8}, 16)
	// Fill bank 1 (registers r1, r5 map to bank 1) across warps.
	for w := 0; w < 4; w++ {
		if _, ok := tb.PhysForWrite(w, 1, true); !ok {
			t.Fatalf("warp %d alloc failed early", w)
		}
	}
	if _, ok := tb.PhysForWrite(4, 1, true); ok {
		t.Error("expected bank-1 exhaustion")
	}
	if tb.Stats().FailedAllocs != 1 {
		t.Errorf("FailedAllocs = %d, want 1", tb.Stats().FailedAllocs)
	}
	// A release unblocks it.
	tb.Release(0, 1)
	if _, ok := tb.PhysForWrite(4, 1, true); !ok {
		t.Error("alloc should succeed after release")
	}
}

func TestSpillAndRestoreWarp(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, Exempt: 1, MaxWarps: 4}, arch.NumPhysRegs)
	tb.LaunchWarp(0)
	full := ^uint32(0)
	var vals [arch.WarpSize]uint32
	for l := range vals {
		vals[l] = uint32(l) * 3
	}
	res, _ := tb.PhysForWrite(0, 5, true)
	tb.File().Write(res.Phys, &vals, full)
	res6, _ := tb.PhysForWrite(0, 6, true)
	tb.File().Write(res6.Phys, &vals, full)

	spilled := tb.SpillWarp(0)
	if len(spilled) != 2 {
		t.Fatalf("spilled %d registers, want 2 (exempt excluded)", len(spilled))
	}
	if got := tb.MappedCount(0); got != 1 { // only the exempt pin remains
		t.Errorf("MappedCount after spill = %d, want 1", got)
	}
	if !tb.RestoreWarp(0, spilled) {
		t.Fatal("RestoreWarp failed")
	}
	p, ok := tb.Lookup(0, 5)
	if !ok {
		t.Fatal("r5 unmapped after restore")
	}
	if got := tb.File().Peek(p); got != vals {
		t.Error("restored values differ")
	}
}

func TestRestoreWarpAllOrNothing(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, MaxWarps: 8}, 16)
	tb.PhysForWrite(0, 1, true)
	spilled := tb.SpillWarp(0)
	// Exhaust bank 1.
	for w := 1; w <= 4; w++ {
		tb.PhysForWrite(w, 1, true)
	}
	if tb.RestoreWarp(0, spilled) {
		t.Error("RestoreWarp should fail with bank 1 full")
	}
	if tb.MappedCount(0) != 0 {
		t.Error("failed restore must leave no partial mappings")
	}
}

func TestTableBytes(t *testing.T) {
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 20, Exempt: 3, MaxWarps: 48}, arch.NumPhysRegs)
	// (20-3) regs x 48 warps x 10 bits = 8160 bits = 1020 bytes.
	if got := tb.TableBytes(); got != 1020 {
		t.Errorf("TableBytes = %d, want 1020", got)
	}
}

func TestConfigValidation(t *testing.T) {
	f, _ := regfile.New(regfile.Config{NumRegs: arch.NumPhysRegs})
	bad := []Config{
		{Mode: ModeCompiler, RegCount: 0, MaxWarps: 4},
		{Mode: ModeCompiler, RegCount: 64, MaxWarps: 4},
		{Mode: ModeCompiler, RegCount: 8, Exempt: 9, MaxWarps: 4},
		{Mode: ModeCompiler, RegCount: 8, Exempt: -1, MaxWarps: 4},
		{Mode: ModeCompiler, RegCount: 8, MaxWarps: 0},
		{Mode: ModeCompiler, RegCount: 8, MaxWarps: 49},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, f); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLaunchWarpRollsBackOnExhaustion(t *testing.T) {
	// 16 physical registers but each warp pins 8: the third launch fails
	// cleanly.
	tb := newTable(t, Config{Mode: ModeBaseline, RegCount: 8, MaxWarps: 8}, 16)
	if !tb.LaunchWarp(0) || !tb.LaunchWarp(1) {
		t.Fatal("first two launches should fit")
	}
	live := tb.File().Live()
	if tb.LaunchWarp(2) {
		t.Fatal("third launch should fail")
	}
	if tb.File().Live() != live {
		t.Errorf("failed launch leaked registers: %d -> %d", live, tb.File().Live())
	}
	if tb.MappedCount(2) != 0 {
		t.Error("failed launch left mappings")
	}
}

func TestCrossWarpReuseTracking(t *testing.T) {
	// Warp 0 allocates, releases; warp 1 gets the same physical register:
	// inter-warp sharing (§5). Warp 0 re-acquiring afterwards is
	// same-warp reuse (the Fig. 2(a) loop pattern).
	tb := newTable(t, Config{Mode: ModeCompiler, RegCount: 8, MaxWarps: 4}, 16)
	res0, _ := tb.PhysForWrite(0, 1, true)
	tb.Release(0, 1)
	res1, _ := tb.PhysForWrite(1, 1, true)
	if res1.Phys != res0.Phys {
		t.Fatalf("expected reuse of physical %d, got %d", res0.Phys, res1.Phys)
	}
	s := tb.Stats()
	if s.CrossWarpReuse != 1 {
		t.Errorf("CrossWarpReuse = %d, want 1", s.CrossWarpReuse)
	}
	tb.Release(1, 1)
	tb.PhysForWrite(1, 1, true)
	if got := tb.Stats().SameWarpReuse; got != 1 {
		t.Errorf("SameWarpReuse = %d, want 1", got)
	}
}
