package rename

import (
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
)

// smemSpill is the RegDem-style backend (Sakdhnagool et al. 2019): the
// compiler demotes the highest-numbered architected registers to shared
// memory, so each warp pins only the low `keep` registers in the RF —
// trading per-access latency on the demoted registers for occupancy
// that a small register file could not otherwise sustain. Demoted
// registers are addressed through virtual physical ids above the file's
// range; their values live in a backend-owned per-warp store standing
// in for the shared-memory scratch region.
type smemSpill struct {
	*Table // inner baseline table over the keep registers

	regCount int // full architected register count
	keep     int // registers 0..keep-1 stay RF-resident
	latency  int // per-access penalty of a demoted register
	base     regfile.PhysReg

	// vals[w*spillCount + (r-keep)] is warp slot w's value of demoted
	// register r. Flat and index-addressed, so serialization and access
	// are deterministic.
	vals [][arch.WarpSize]uint32

	reads, writes uint64
}

func newSMemSpill(cfg Config, file *regfile.File) (*smemSpill, error) {
	if cfg.SpillRegs < 0 || cfg.SpillRegs >= cfg.RegCount {
		return nil, fmt.Errorf("rename: smemspill SpillRegs %d out of range [0, %d)",
			cfg.SpillRegs, cfg.RegCount)
	}
	keep := cfg.RegCount - cfg.SpillRegs
	inner := cfg
	inner.Mode = ModeBaseline
	inner.Exempt = 0
	inner.RegCount = keep
	t, err := New(inner, file)
	if err != nil {
		return nil, err
	}
	b := &smemSpill{
		Table:    t,
		regCount: cfg.RegCount,
		keep:     keep,
		latency:  arch.SharedMemLatency,
		base:     regfile.PhysReg(file.NumRegs()),
		vals:     make([][arch.WarpSize]uint32, cfg.MaxWarps*cfg.SpillRegs),
	}
	return b, nil
}

func (b *smemSpill) Mode() Mode { return ModeSMemSpill }

func (b *smemSpill) demoted(r isa.RegID) bool {
	return r != isa.RZ && int(r) >= b.keep && int(r) < b.regCount
}

func (b *smemSpill) vphys(w int, r isa.RegID) regfile.PhysReg {
	return b.base + regfile.PhysReg(w*(b.regCount-b.keep)+int(r)-b.keep)
}

// Mapped treats demoted registers as always mapped: like the baseline's
// launch-pinned registers, their storage exists for the warp's whole
// lifetime (zero-initialized, as shared-memory scratch is).
func (b *smemSpill) Mapped(w int, r isa.RegID) bool {
	if b.demoted(r) {
		return true
	}
	return b.Table.Mapped(w, r)
}

// ReadOperand serves demoted registers from shared memory: no RF bank
// is occupied (Bank -1) but the access costs the shared-memory latency
// on the dependent-use path.
func (b *smemSpill) ReadOperand(w int, r isa.RegID) (OperandRead, bool) {
	if b.demoted(r) {
		b.reads++
		return OperandRead{Phys: b.vphys(w, r), Bank: -1, Penalty: b.latency}, true
	}
	return b.Table.ReadOperand(w, r)
}

func (b *smemSpill) ReadValue(p regfile.PhysReg) *[arch.WarpSize]uint32 {
	if p >= b.base {
		return &b.vals[p-b.base]
	}
	return b.file.Read(p)
}

// PhysForWrite maps demoted destinations to their virtual slot; the
// shared-memory store latency rides on WakeCycles, delaying the
// writeback exactly like a subarray wakeup would.
func (b *smemSpill) PhysForWrite(w int, r isa.RegID, fullWrite bool) (WriteResult, bool) {
	if b.demoted(r) {
		return WriteResult{Phys: b.vphys(w, r), WakeCycles: b.latency}, true
	}
	return b.Table.PhysForWrite(w, r, fullWrite)
}

func (b *smemSpill) Write(p regfile.PhysReg, val *[arch.WarpSize]uint32, mask uint32) {
	if p >= b.base {
		b.writes++
		slot := &b.vals[p-b.base]
		for l := 0; l < arch.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				slot[l] = val[l]
			}
		}
		return
	}
	b.file.Write(p, val, mask)
}

// ReleaseWarp frees the warp's RF-resident registers and zeroes its
// shared-memory slots (scratch resets between CTAs, so a relaunched
// warp slot starts from zeroed registers either way).
func (b *smemSpill) ReleaseWarp(w int) []isa.RegID {
	spill := b.regCount - b.keep
	for i := w * spill; i < (w+1)*spill; i++ {
		b.vals[i] = [arch.WarpSize]uint32{}
	}
	return b.Table.ReleaseWarp(w)
}

func (b *smemSpill) Stats() Stats {
	s := b.Table.Stats()
	s.SMemReads, s.SMemWrites = b.reads, b.writes
	return s
}

// SMemState is the serialized shared-memory register store.
type SMemState struct {
	// Vals is the flat per-warp value array; its length pins the
	// (MaxWarps x SpillRegs) geometry the snapshot was taken under.
	Vals          [][arch.WarpSize]uint32
	Reads, Writes uint64
}

func (b *smemSpill) State() *State {
	st := b.Table.State()
	sm := &SMemState{Reads: b.reads, Writes: b.writes}
	sm.Vals = make([][arch.WarpSize]uint32, len(b.vals))
	copy(sm.Vals, b.vals)
	st.SMem = sm
	return st
}

func (b *smemSpill) SetState(st *State) error {
	if st == nil {
		return fmt.Errorf("rename: nil state")
	}
	if st.SMem == nil {
		return fmt.Errorf("rename: state has no shared-memory spill payload")
	}
	if len(st.SMem.Vals) != len(b.vals) {
		return fmt.Errorf("rename: smem state holds %d slots, backend expects %d",
			len(st.SMem.Vals), len(b.vals))
	}
	if err := b.Table.SetState(baseState(st)); err != nil {
		return err
	}
	copy(b.vals, st.SMem.Vals)
	b.reads, b.writes = st.SMem.Reads, st.SMem.Writes
	return nil
}
