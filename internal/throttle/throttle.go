// Package throttle implements GPU-shrink's forward-progress guarantee
// (§8.1). The warp scheduler keeps per-CTA register balance counters
// C - k_i (worst-case registers the CTA may still need). When the free
// register pool can no longer cover the smallest remaining balance, only
// warps of the CTA with that smallest balance may issue — it either
// finishes soon or releases registers — until headroom returns.
//
// Because renaming is bank-preserving (§7.1), a bank can exhaust while
// the total pool looks healthy; the balances are therefore tracked per
// bank as well, a direct extension of the paper's counters to the banked
// allocator. The single-CTA overflow corner case falls back to register
// spilling, which the simulator drives through NeedSpill.
package throttle

import (
	"fmt"

	"regvirt/internal/arch"
)

// Policy selects how aggressively the governor gates allocations.
type Policy int

const (
	// PolicyReservation (default) is reactive: allocations run freely
	// until the drain CTA actually fails to find a register in a bank;
	// from then on, freed registers in that bank are reserved for the
	// drain CTA until it allocates there again. This keeps the paper's
	// forward-progress property (the neediest CTA always gets registers
	// first) without serializing whole CTAs behind a worst-case estimate.
	PolicyReservation Policy = iota
	// PolicyWorstCase is the paper's §8.1 scheme verbatim: when the free
	// pool cannot cover the smallest worst-case balance C-k, only the
	// drain CTA may allocate. Kept as an ablation (BenchmarkAblation*).
	PolicyWorstCase
)

// Governor tracks per-CTA register balances for one SM.
type Governor struct {
	// Policy selects the gating scheme.
	Policy Policy
	// maxPerCTA is C = N x M: registers per warp times warps per CTA.
	maxPerCTA int
	// maxPerBank[b] is C_b: worst-case registers CTA needs in bank b.
	maxPerBank [arch.NumBanks]int
	allocated  []int
	allocBank  [][arch.NumBanks]int
	active     []bool
	// reservedBank/reservedSlot form the single outstanding drain
	// reservation (PolicyReservation); reservedBank == -1 means none.
	// A single reservation cannot form circular waits between CTAs.
	reservedBank, reservedSlot int
	// Throttles counts scheduler decisions that restricted issue to the
	// drain CTA; Blocked counts denied warps.
	Throttles, Blocked uint64
}

// New builds a governor for up to slots concurrent CTAs running a kernel
// with regsPerWarp architected registers and warpsPerCTA warps per CTA.
func New(slots, regsPerWarp, warpsPerCTA int) (*Governor, error) {
	if slots <= 0 || regsPerWarp <= 0 || warpsPerCTA <= 0 {
		return nil, fmt.Errorf("throttle: invalid geometry (%d slots, %d regs/warp, %d warps/CTA)",
			slots, regsPerWarp, warpsPerCTA)
	}
	g := &Governor{
		maxPerCTA: regsPerWarp * warpsPerCTA,
		allocated: make([]int, slots),
		allocBank: make([][arch.NumBanks]int, slots),
		active:    make([]bool, slots),
	}
	for r := 0; r < regsPerWarp; r++ {
		g.maxPerBank[arch.BankOf(r)] += warpsPerCTA
	}
	g.reservedBank = -1
	g.reservedSlot = -1
	return g, nil
}

// CTALaunched marks a CTA slot active with zero registers allocated.
func (g *Governor) CTALaunched(slot int) {
	g.active[slot] = true
	g.allocated[slot] = 0
	g.allocBank[slot] = [arch.NumBanks]int{}
}

// CTACompleted frees the slot and drops its reservation.
func (g *Governor) CTACompleted(slot int) {
	g.active[slot] = false
	g.allocated[slot] = 0
	g.allocBank[slot] = [arch.NumBanks]int{}
	if g.reservedSlot == slot {
		g.reservedBank, g.reservedSlot = -1, -1
	}
}

// OnAlloc and OnRelease track k_i per bank. A successful allocation by
// the reservation holder releases its reservation.
func (g *Governor) OnAlloc(slot, bank int) {
	g.allocated[slot]++
	g.allocBank[slot][bank]++
	if g.reservedSlot == slot && g.reservedBank == bank {
		g.reservedBank, g.reservedSlot = -1, -1
	}
}

func (g *Governor) OnRelease(slot, bank int) {
	g.allocated[slot]--
	g.allocBank[slot][bank]--
}

// Allocated returns k for a CTA slot.
func (g *Governor) Allocated(slot int) int { return g.allocated[slot] }

// Balance returns C - k for a CTA slot (worst-case remaining demand).
func (g *Governor) Balance(slot int) int { return g.maxPerCTA - g.allocated[slot] }

// BankBalance returns C_b - k_b for a CTA slot and bank.
func (g *Governor) BankBalance(slot, bank int) int {
	return g.maxPerBank[bank] - g.allocBank[slot][bank]
}

// Drain returns the active CTA with the minimum total balance — the one
// the scheduler favours under pressure (§8.1).
func (g *Governor) Drain() int { return g.drain() }

// drain returns the active CTA with the minimum total balance (ties
// broken by slot index, §8.1 "arbitrarily breaking ties"), or -1.
func (g *Governor) drain() int {
	best, bestBal := -1, 0
	for s, on := range g.active {
		if !on {
			continue
		}
		if b := g.Balance(s); best == -1 || b < bestBal {
			best, bestBal = s, b
		}
	}
	return best
}

// feasible reports whether CTA slot could complete in the worst case
// with the given free registers.
func (g *Governor) feasible(slot, freeTotal int, freeBank [arch.NumBanks]int) bool {
	if freeTotal < g.Balance(slot) {
		return false
	}
	for b := 0; b < arch.NumBanks; b++ {
		if freeBank[b] < g.BankBalance(slot, b) {
			return false
		}
	}
	return true
}

// MayIssue decides whether a warp of the given CTA slot may issue an
// instruction that needs a fresh physical register. Every CTA proceeds
// while at least one CTA remains worst-case feasible; otherwise only the
// drain CTA (minimum total balance) may allocate. Instructions that do
// not allocate (in-place writes, stores, branches, releases) are never
// gated — they can only return registers to the pool, so letting them
// run preserves the §8.1 invariant while keeping non-drain warps
// releasing.
// bank is the destination bank of the allocating instruction.
func (g *Governor) MayIssue(slot, bank, freeTotal int, freeBank [arch.NumBanks]int) bool {
	d := g.drain()
	if d == -1 {
		return true
	}
	if g.Policy == PolicyReservation {
		if g.reservedBank == bank && g.reservedSlot != slot {
			g.Throttles++
			g.Blocked++
			return false
		}
		return true
	}
	for s, on := range g.active {
		if on && g.feasible(s, freeTotal, freeBank) {
			return true
		}
	}
	g.Throttles++
	if slot == d {
		return true
	}
	g.Blocked++
	return false
}

// OnAllocBlocked records that a warp of the given CTA found its bank
// empty. If the CTA is the drain and no reservation is outstanding, it
// takes the reservation: freed registers in that bank are then held for
// it until it allocates there.
func (g *Governor) OnAllocBlocked(slot, bank int) {
	if g.Policy != PolicyReservation {
		return
	}
	if g.reservedBank == -1 && slot == g.drain() {
		g.reservedBank, g.reservedSlot = bank, slot
		g.Throttles++
	}
}

// Reserved returns the CTA slot holding a reservation on the bank, or -1.
func (g *Governor) Reserved(bank int) int {
	if g.reservedBank == bank {
		return g.reservedSlot
	}
	return -1
}

// NeedSpill reports the §8.1 corner case: the drain CTA alone cannot
// complete in the worst case even with every other CTA held back, so the
// scheduler must evacuate a warp's registers to memory.
func (g *Governor) NeedSpill(freeTotal int, freeBank [arch.NumBanks]int) bool {
	d := g.drain()
	return d != -1 && !g.feasible(d, freeTotal, freeBank)
}

// State is a deep, serializable copy of the governor's mutable state
// (balances, reservation, counters — the C constants are derived from
// the construction geometry and need not round-trip).
type State struct {
	Allocated    []int
	AllocBank    [][arch.NumBanks]int
	Active       []bool
	ReservedBank int
	ReservedSlot int
	Throttles    uint64
	Blocked      uint64
}

// State deep-copies the governor's mutable state.
func (g *Governor) State() *State {
	st := &State{
		Allocated:    append([]int(nil), g.allocated...),
		AllocBank:    append([][arch.NumBanks]int(nil), g.allocBank...),
		Active:       append([]bool(nil), g.active...),
		ReservedBank: g.reservedBank,
		ReservedSlot: g.reservedSlot,
		Throttles:    g.Throttles,
		Blocked:      g.Blocked,
	}
	return st
}

// SetState restores a previously captured State into a governor built
// with the same geometry.
func (g *Governor) SetState(st *State) error {
	if st == nil {
		return fmt.Errorf("throttle: nil state")
	}
	if len(st.Allocated) != len(g.allocated) || len(st.AllocBank) != len(g.allocBank) ||
		len(st.Active) != len(g.active) {
		return fmt.Errorf("throttle: state geometry mismatch (%d slots vs %d)",
			len(st.Allocated), len(g.allocated))
	}
	copy(g.allocated, st.Allocated)
	copy(g.allocBank, st.AllocBank)
	copy(g.active, st.Active)
	g.reservedBank = st.ReservedBank
	g.reservedSlot = st.ReservedSlot
	g.Throttles = st.Throttles
	g.Blocked = st.Blocked
	return nil
}
