package throttle

import (
	"math/rand"
	"testing"

	"regvirt/internal/arch"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// plenty is a free-bank vector with ample headroom everywhere.
func plenty(n int) [arch.NumBanks]int {
	var f [arch.NumBanks]int
	for b := range f {
		f[b] = n
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 4); err == nil {
		t.Error("accepted zero slots")
	}
	if _, err := New(4, 0, 4); err == nil {
		t.Error("accepted zero regs/warp")
	}
	if _, err := New(4, 10, 0); err == nil {
		t.Error("accepted zero warps/CTA")
	}
}

func TestBankDemandStriping(t *testing.T) {
	// 10 registers striped over 4 banks: banks 0 and 1 hold three
	// registers each, banks 2 and 3 hold two. Per CTA of 4 warps.
	g, _ := New(2, 10, 4)
	g.CTALaunched(0)
	want := [arch.NumBanks]int{12, 12, 8, 8}
	for b := 0; b < arch.NumBanks; b++ {
		if got := g.BankBalance(0, b); got != want[b] {
			t.Errorf("bank %d balance = %d, want %d", b, got, want[b])
		}
	}
	if g.Balance(0) != 40 {
		t.Errorf("total balance = %d, want 40", g.Balance(0))
	}
}

func TestNoThrottleWithHeadroom(t *testing.T) {
	g, _ := New(4, 25, 4) // C = 100
	g.Policy = PolicyWorstCase
	g.CTALaunched(0)
	g.CTALaunched(1)
	if !g.MayIssue(0, 0, 100, plenty(100)) || !g.MayIssue(1, 0, 100, plenty(100)) {
		t.Error("issue denied despite headroom")
	}
	if g.Throttles != 0 {
		t.Errorf("Throttles = %d, want 0", g.Throttles)
	}
}

func TestThrottleRestrictsToDrainCTA(t *testing.T) {
	g, _ := New(4, 25, 4) // C = 100
	g.Policy = PolicyWorstCase
	g.CTALaunched(0)
	g.CTALaunched(1)
	for i := 0; i < 80; i++ {
		g.OnAlloc(0, i%arch.NumBanks) // CTA0 balance = 20
	}
	for i := 0; i < 30; i++ {
		g.OnAlloc(1, i%arch.NumBanks) // CTA1 balance = 70
	}
	// 10 free registers < min balance (20): only CTA0 (the drain) runs.
	if !g.MayIssue(0, 0, 10, plenty(3)) {
		t.Error("drain CTA denied")
	}
	if g.MayIssue(1, 0, 10, plenty(3)) {
		t.Error("non-drain CTA allowed under pressure")
	}
	if g.Blocked == 0 {
		t.Error("Blocked not counted")
	}
}

func TestThrottleLiftsAfterRelease(t *testing.T) {
	g, _ := New(2, 25, 2) // C = 50
	g.Policy = PolicyWorstCase
	g.CTALaunched(0)
	g.CTALaunched(1)
	for i := 0; i < 45; i++ {
		g.OnAlloc(0, i%arch.NumBanks) // balance 5
	}
	if g.MayIssue(1, 0, 3, plenty(0)) {
		t.Error("CTA1 should be blocked at 3 free")
	}
	// Releases restore headroom: free total 7 covers CTA0's balance of 7,
	// and each bank has enough for its per-bank balance.
	g.OnRelease(0, 0)
	g.OnRelease(0, 1)
	if !g.MayIssue(1, 0, 7, plenty(7)) {
		t.Error("CTA1 still blocked after release restored headroom")
	}
}

func TestBankPressureThrottlesDespiteTotalHeadroom(t *testing.T) {
	// The scenario the paper's total-only counters miss: bank 0 is
	// exhausted while other banks are empty of demand.
	g, _ := New(2, 4, 8) // 4 regs (one per bank), C = 32, C_b = 8 each
	g.Policy = PolicyWorstCase
	g.CTALaunched(0)
	g.CTALaunched(1)
	free := [arch.NumBanks]int{0, 100, 100, 100}
	// Neither CTA can worst-case complete: bank 0 balance is 8 > 0 free.
	if g.MayIssue(1, 0, 300, free) {
		t.Error("bank-0 exhaustion must throttle despite total headroom")
	}
	if !g.MayIssue(0, 0, 300, free) {
		t.Error("drain CTA must still issue")
	}
	// Once CTA0 holds its full bank-0 demand, it is feasible again.
	for i := 0; i < 8; i++ {
		g.OnAlloc(0, 0)
	}
	if !g.MayIssue(1, 0, 300, free) {
		t.Error("CTA0 fully covered in bank 0: everyone may issue")
	}
}

func TestBalanceBookkeeping(t *testing.T) {
	g, _ := New(2, 5, 2) // C = 10
	g.CTALaunched(1)
	g.OnAlloc(1, 0)
	g.OnAlloc(1, 1)
	if g.Allocated(1) != 2 || g.Balance(1) != 8 {
		t.Errorf("Allocated=%d Balance=%d, want 2/8", g.Allocated(1), g.Balance(1))
	}
	// 5 registers stripe as bank0 {r0,r4}, bank1 {r1}, bank2 {r2},
	// bank3 {r3}: C_0 = 2x2 = 4; one allocation leaves 3.
	if g.BankBalance(1, 0) != 3 {
		t.Errorf("BankBalance(1,0) = %d, want 3", g.BankBalance(1, 0))
	}
	g.OnRelease(1, 0)
	if g.Balance(1) != 9 {
		t.Errorf("Balance=%d, want 9", g.Balance(1))
	}
	g.CTACompleted(1)
	if g.Allocated(1) != 0 {
		t.Error("CTACompleted did not reset")
	}
}

func TestNoCTAsMeansFreeIssue(t *testing.T) {
	g, _ := New(2, 5, 2)
	if !g.MayIssue(0, 0, 0, plenty(0)) {
		t.Error("MayIssue should be true with no active CTAs")
	}
}

func TestDrainPrefersSmallestBalance(t *testing.T) {
	g, _ := New(3, 25, 4) // C = 100
	g.Policy = PolicyWorstCase
	for s := 0; s < 3; s++ {
		g.CTALaunched(s)
	}
	for i := 0; i < 90; i++ {
		g.OnAlloc(2, i%arch.NumBanks) // CTA2 balance = 10, the drain
	}
	for i := 0; i < 50; i++ {
		g.OnAlloc(0, i%arch.NumBanks)
	}
	if g.MayIssue(0, 0, 5, plenty(1)) || g.MayIssue(1, 0, 5, plenty(1)) {
		t.Error("only the min-balance CTA may issue")
	}
	if !g.MayIssue(2, 0, 5, plenty(1)) {
		t.Error("min-balance CTA denied")
	}
}

func TestNeedSpill(t *testing.T) {
	g, _ := New(2, 25, 4) // C = 100
	g.CTALaunched(0)
	if !g.NeedSpill(0, plenty(0)) {
		t.Error("zero free with demand outstanding should need spill")
	}
	if g.NeedSpill(100, plenty(28)) {
		t.Error("spill not needed with full headroom")
	}
}

func TestReservationPolicy(t *testing.T) {
	g, _ := New(2, 8, 4)
	g.CTALaunched(0)
	g.CTALaunched(1)
	// Reservation policy: everyone allocates freely until a block occurs.
	if !g.MayIssue(1, 2, 10, plenty(2)) {
		t.Error("reservation policy should not gate before a block")
	}
	// Make CTA0 the drain (more allocated => smaller balance).
	for i := 0; i < 10; i++ {
		g.OnAlloc(0, i%arch.NumBanks)
	}
	g.OnAllocBlocked(0, 2)
	if g.Reserved(2) != 0 {
		t.Fatalf("Reserved(2) = %d, want 0", g.Reserved(2))
	}
	if g.MayIssue(1, 2, 10, plenty(2)) {
		t.Error("non-holder must not allocate in the reserved bank")
	}
	if !g.MayIssue(1, 3, 10, plenty(2)) {
		t.Error("other banks stay open")
	}
	if !g.MayIssue(0, 2, 10, plenty(2)) {
		t.Error("holder must allocate in its reserved bank")
	}
	// The holder's allocation releases the reservation.
	g.OnAlloc(0, 2)
	if g.Reserved(2) != -1 {
		t.Error("reservation not released on holder allocation")
	}
	if !g.MayIssue(1, 2, 10, plenty(2)) {
		t.Error("bank should reopen after release")
	}
}

func TestReservationSingleOutstanding(t *testing.T) {
	g, _ := New(2, 8, 4)
	g.CTALaunched(0)
	for i := 0; i < 4; i++ {
		g.OnAlloc(0, 0)
	}
	g.OnAllocBlocked(0, 0)
	g.OnAllocBlocked(0, 1) // second reservation must not stack
	if g.Reserved(0) != 0 {
		t.Error("first reservation lost")
	}
	if g.Reserved(1) != -1 {
		t.Error("second reservation should not have been granted")
	}
}

func TestReservationClearedOnCTACompletion(t *testing.T) {
	g, _ := New(2, 8, 4)
	g.CTALaunched(0)
	g.OnAlloc(0, 0)
	g.OnAllocBlocked(0, 3)
	g.CTACompleted(0)
	if g.Reserved(3) != -1 {
		t.Error("reservation survived CTA completion")
	}
}

// Property: random alloc/release traffic never desynchronizes the
// counters, and balances never exceed the worst case.
func TestGovernorCountersProperty(t *testing.T) {
	g, _ := New(4, 16, 4) // C = 64
	for s := 0; s < 4; s++ {
		g.CTALaunched(s)
	}
	type ev struct{ slot, bank int }
	var held []ev
	// Per-(CTA, bank) occupancy can never exceed the worst case C_b = 16
	// in real traffic (each warp maps at most its per-bank architected
	// registers); keep the generated traffic physical.
	var perBank [4][arch.NumBanks]int
	rng := newRand(99)
	for step := 0; step < 50000; step++ {
		if rng.Intn(2) == 0 {
			e := ev{slot: rng.Intn(4), bank: rng.Intn(arch.NumBanks)}
			if g.Allocated(e.slot) < 64 && perBank[e.slot][e.bank] < 16 {
				g.OnAlloc(e.slot, e.bank)
				perBank[e.slot][e.bank]++
				held = append(held, e)
			}
		} else if len(held) > 0 {
			i := rng.Intn(len(held))
			g.OnRelease(held[i].slot, held[i].bank)
			perBank[held[i].slot][held[i].bank]--
			held[i] = held[len(held)-1]
			held = held[:len(held)-1]
		}
		total := 0
		for s := 0; s < 4; s++ {
			a := g.Allocated(s)
			if a < 0 || a > 64 {
				t.Fatalf("step %d: allocated %d out of range", step, a)
			}
			total += a
			for b := 0; b < arch.NumBanks; b++ {
				if g.BankBalance(s, b) < 0 {
					t.Fatalf("step %d: negative bank balance", step)
				}
			}
		}
		if total != len(held) {
			t.Fatalf("step %d: total %d != held %d", step, total, len(held))
		}
	}
}
