package compiler

import (
	"testing"

	"regvirt/internal/isa"
)

const spillSrc = `
.kernel spilly
    movi r0, 10
    movi r1, 11
    movi r2, 12
    movi r3, 13
    movi r4, 14
    movi r5, 15
    iadd r6, r0, r1
    iadd r6, r6, r2
    iadd r6, r6, r3
    iadd r6, r6, r4
    iadd r6, r6, r5
    st.global [r7+0], r6
    exit
`

func TestSpillToFitsBudget(t *testing.T) {
	q, err := SpillTo(isa.MustParse(spillSrc), 6)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	if got := len(q.UsedRegs()); got > 6 {
		t.Errorf("spilled program uses %d registers, budget 6\n%s", got, q)
	}
	if q.RegCount != 6 {
		t.Errorf("RegCount = %d, want 6", q.RegCount)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSpillToNoOpWhenFits(t *testing.T) {
	p := isa.MustParse(spillSrc)
	q, err := SpillTo(p, 10)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Errorf("no-op spill changed instruction count %d -> %d", len(p.Instrs), len(q.Instrs))
	}
}

func TestSpillToInsertsFillsAndStores(t *testing.T) {
	q, err := SpillTo(isa.MustParse(spillSrc), 6)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	fills, stores := 0, 0
	for _, in := range q.Instrs {
		if in.Space == isa.SpaceSpill {
			switch in.Op {
			case isa.OpLd:
				fills++
			case isa.OpSt:
				stores++
			}
		}
	}
	if fills == 0 || stores == 0 {
		t.Errorf("fills=%d stores=%d, want both > 0", fills, stores)
	}
}

func TestSpillCount(t *testing.T) {
	p := isa.MustParse(spillSrc) // 8 registers
	if got := SpillCount(p, 6); got != 8-(6-spillTemps) {
		t.Errorf("SpillCount = %d, want %d", got, 8-(6-spillTemps))
	}
	if got := SpillCount(p, 8); got != 0 {
		t.Errorf("SpillCount = %d, want 0", got)
	}
}

func TestSpillRejectsTinyBudget(t *testing.T) {
	if _, err := SpillTo(isa.MustParse(spillSrc), 3); err == nil {
		t.Error("SpillTo accepted a budget smaller than the temps")
	}
}

func TestSpillPreservesControlFlow(t *testing.T) {
	src := `
.kernel sp
    movi r0, 0
    movi r1, 1
    movi r2, 2
    movi r3, 3
    movi r4, 4
    movi r5, 5
    movi r6, 6
loop:
    iadd r6, r6, r1
    iadd r0, r0, 1
    isetp.lt p0, r0, 4
@p0 bra loop
    st.global [r5+0], r6
    exit
`
	q, err := SpillTo(isa.MustParse(src), 6)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The back edge must still target the loop label's new location.
	var bra *isa.Instr
	for _, in := range q.Instrs {
		if in.Op == isa.OpBra {
			bra = in
		}
	}
	if bra.Target != q.Labels["loop"] {
		t.Errorf("branch target %d != loop label %d", bra.Target, q.Labels["loop"])
	}
}

func TestSpillGuardedWriteKeepsGuard(t *testing.T) {
	src := `
.kernel g
    movi r0, 0
    movi r1, 1
    movi r2, 2
    movi r3, 3
    movi r4, 4
    movi r5, 5
    isetp.lt p0, r0, r1
@p0 movi r5, 9
    st.global [r4+0], r5
    exit
`
	q, err := SpillTo(isa.MustParse(src), 6)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	// Every spill store following a guarded def must carry the same guard.
	for i, in := range q.Instrs {
		if in.Op == isa.OpSt && in.Space == isa.SpaceSpill && i > 0 {
			def := q.Instrs[i-1]
			if def.Guard != in.Guard {
				t.Errorf("spill store guard %v != def guard %v", in.Guard, def.Guard)
			}
		}
	}
}
