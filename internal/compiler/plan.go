// Package compiler implements the paper's compiler support (§6): register
// lifetime analysis over the CFG, generation of per-instruction (pir) and
// per-branch (pbr) release flags, selection of renaming candidates under
// the renaming-table budget, exempt-register renumbering, and the
// compiler-spill baseline used by Fig. 11a.
package compiler

import (
	"sort"

	"regvirt/internal/isa"
	"regvirt/internal/liveness"
)

// releasePlan captures where each renameable register can be released.
type releasePlan struct {
	// pir[pc] holds the release bits for the instruction at pc (original
	// numbering), one bit per source slot.
	pir map[int][isa.MaxSrcOperands]bool
	// pbr[block] is the sorted register list released at the start of the
	// block (a reconvergence point).
	pbr map[int][]isa.RegID
	// pirBlocks[r] lists blocks holding a pir release of r (for the
	// dominance-based pbr suppression and for lifetime estimation).
	pirBlocks map[isa.RegID][]int
	// releasePCs[r] lists instruction PCs after which r is released
	// (pir points; pbr points are represented by the reconv block start).
	releasePCs map[isa.RegID][]int
}

// buildReleasePlan computes pir bits and pbr sets for every register in
// renameable. The rules implement §6.1:
//
//   - Intra-block (Fig. 4(a)): release at the last read after which the
//     register is dead (SIMT-corrected liveness), provided no sibling
//     block of an enclosing divergent region accesses it (Fig. 4(b)/(c)).
//   - Reconvergence (Fig. 4(b)/(c)/(d)): registers accessed inside a
//     divergent region and dead at its reconvergence point are released
//     by a pbr at the reconvergence block, unless a pir release in a
//     dominating block already freed them on every path.
//   - Loops (Fig. 4(e)): loop bodies are divergent regions whose blocks
//     are mutually reachable through the back edge, so intra-iteration
//     lifetimes still release via pir; loop-carried or post-loop-read
//     registers are forced live until the loop exit and release there.
func buildReleasePlan(li *liveness.Info, renameable liveness.RegSet) *releasePlan {
	g := li.G
	plan := &releasePlan{
		pir:        map[int][isa.MaxSrcOperands]bool{},
		pbr:        map[int][]isa.RegID{},
		pirBlocks:  map[isa.RegID][]int{},
		releasePCs: map[isa.RegID][]int{},
	}
	var scratch []isa.RegID
	for _, b := range g.Blocks {
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Instrs[pc]
			if in.Op.IsMeta() {
				continue
			}
			scratch = in.SrcRegs(scratch[:0])
			if len(scratch) == 0 {
				continue
			}
			var bits [isa.MaxSrcOperands]bool
			any := false
			// Walk slots from the highest so a register appearing twice
			// releases on its last operand slot only.
			marked := liveness.RegSet(0)
			for slot := in.NSrc - 1; slot >= 0; slot-- {
				if !in.Srcs[slot].IsReg() {
					continue
				}
				r := in.Srcs[slot].Reg
				if !renameable.Has(r) || marked.Has(r) {
					continue
				}
				if li.LiveAfter[pc].Has(r) {
					continue
				}
				if !li.SiblingSafe(r, b.ID) {
					continue
				}
				bits[slot] = true
				any = true
				marked = marked.Add(r)
				plan.pirBlocks[r] = append(plan.pirBlocks[r], b.ID)
				plan.releasePCs[r] = append(plan.releasePCs[r], pc)
			}
			if any {
				plan.pir[pc] = bits
			}
		}
	}
	// pbr sets at reconvergence blocks.
	pbrSets := map[int]liveness.RegSet{}
	for _, region := range li.Regions {
		if region.Reconv < 0 {
			continue // reconverges at warp exit; hardware frees everything
		}
		for _, r := range renameable.Regs() {
			if !li.AccessedInRegion(region, r) {
				continue
			}
			if li.LiveIn[region.Reconv].Has(r) {
				continue // still needed at/after reconvergence
			}
			if plan.pirDominates(li, r, region.Reconv) {
				continue // a pir on every path already released it
			}
			pbrSets[region.Reconv] = pbrSets[region.Reconv].Add(r)
		}
	}
	for blk, set := range pbrSets {
		regs := set.Regs()
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		plan.pbr[blk] = regs
		for _, r := range regs {
			plan.releasePCs[r] = append(plan.releasePCs[r], g.Blocks[blk].Start)
		}
	}
	for _, pcs := range plan.releasePCs {
		sort.Ints(pcs)
	}
	return plan
}

// pirDominates reports whether register r has a pir release in a block
// that dominates blk — i.e. the release has definitely executed before
// blk runs.
func (p *releasePlan) pirDominates(li *liveness.Info, r isa.RegID, blk int) bool {
	for _, b := range p.pirBlocks[r] {
		if b != blk && li.G.Dominates(b, blk) {
			return true
		}
	}
	return false
}

// releaseCount returns the total number of static release points.
func (p *releasePlan) releaseCount() int {
	n := 0
	for _, pcs := range p.releasePCs {
		n += len(pcs)
	}
	return n
}
