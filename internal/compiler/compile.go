package compiler

import (
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/cfg"
	"regvirt/internal/isa"
	"regvirt/internal/liveness"
)

// Options controls a compilation.
type Options struct {
	// TableBytes is the renaming-table budget (§6.2); the paper's
	// constrained configuration is arch.RenameTableBudgetBytes (1 KB).
	// Zero means unconstrained: every register is renameable.
	TableBytes int
	// ResidentWarps is the number of warps concurrently resident on one
	// SM for this kernel (warps/CTA x concurrent CTAs, Table 1). It sizes
	// the renaming table. Zero defaults to arch.MaxWarpsPerSM.
	ResidentWarps int
	// NoFlags compiles without any release metadata — the conventional
	// baseline, and the code hardware-only renaming [46] runs.
	NoFlags bool
}

// Kernel is a compiled kernel plus the metadata the hardware and the
// evaluation harness need.
type Kernel struct {
	// Prog is the executable program (with metadata instructions unless
	// Options.NoFlags was set).
	Prog *isa.Program
	// Exempt is N, the count of renaming-exempt registers. After
	// compilation the exempt registers occupy ids 0..N-1 and map directly
	// to physical registers; ids >= N go through the renaming table.
	Exempt int
	// ExemptRegs are the pre-renumbering ids of the exempt registers.
	ExemptRegs []isa.RegID
	// Stats holds the per-register lifetime estimates that drove
	// selection (original register numbering).
	Stats []RegStat
	// UnconstrainedTableBytes is the renaming table size needed to rename
	// every register of this kernel (Fig. 14, left).
	UnconstrainedTableBytes int
	// StaticInstrs is the instruction count before metadata insertion;
	// PirCount/PbrCount are the inserted metadata instructions (Fig. 13's
	// static code increase).
	StaticInstrs, PirCount, PbrCount int
	// ReleasePoints is the number of static release points.
	ReleasePoints int
	// AvgPbrRegs is the mean number of registers per pbr (§6.2 reports 2).
	AvgPbrRegs float64
}

// MetaInstrs returns the number of inserted metadata instructions.
func (k *Kernel) MetaInstrs() int { return k.PirCount + k.PbrCount }

// StaticIncrease returns the static code growth factor caused by
// metadata instructions (Fig. 13).
func (k *Kernel) StaticIncrease() float64 {
	if k.StaticInstrs == 0 {
		return 0
	}
	return float64(k.MetaInstrs()) / float64(k.StaticInstrs)
}

// Compile runs the full pipeline: CFG construction, SIMT liveness,
// release planning, renaming-candidate selection under the table budget,
// exempt renumbering, and metadata insertion. The input program is not
// modified.
func Compile(src *isa.Program, opts Options) (*Kernel, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	p := src.Clone()
	k := &Kernel{StaticInstrs: len(p.Instrs)}

	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	li := liveness.Analyze(g)

	used := p.UsedRegs()
	var allRegs liveness.RegSet
	for _, r := range used {
		allRegs = allRegs.Add(r)
	}

	// Pass 1: plan with every register renameable, to estimate lifetimes.
	fullPlan := buildReleasePlan(li, allRegs)
	k.Stats = registerStats(li, fullPlan)

	warps := opts.ResidentWarps
	if warps <= 0 {
		warps = arch.MaxWarpsPerSM
	}
	k.UnconstrainedTableBytes = (arch.RenameEntryBits*warps*len(used) + 7) / 8

	capacity := len(used)
	if opts.TableBytes > 0 {
		capacity = opts.TableBytes * 8 / (arch.RenameEntryBits * warps)
	}
	renameable, exempt := selectRenameable(k.Stats, capacity)
	k.ExemptRegs = exempt
	k.Exempt = len(exempt)

	if opts.NoFlags {
		// Baseline: keep the original code; every register behaves as
		// exempt (no releases ever happen).
		k.Prog = p
		return k, nil
	}

	// Renumber so exempt registers occupy the lowest ids, balancing
	// expected occupancy across banks.
	perm, err := exemptPermutation(used, exempt, k.Stats)
	if err != nil {
		return nil, err
	}
	renumber(p, perm)
	if err := p.Rebuild(); err != nil {
		return nil, err
	}
	var renameableNew liveness.RegSet
	for _, r := range renameable.Regs() {
		renameableNew = renameableNew.Add(perm[r])
	}

	// Pass 2: re-analyze the renumbered program and emit flags only for
	// the renameable registers.
	g2, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	li2 := liveness.Analyze(g2)
	plan := buildReleasePlan(li2, renameableNew)
	k.ReleasePoints = plan.releaseCount()

	q, err := insertMeta(g2, plan)
	if err != nil {
		return nil, err
	}
	totalPbrRegs := 0
	for _, in := range q.Instrs {
		switch in.Op {
		case isa.OpPir:
			k.PirCount++
		case isa.OpPbr:
			k.PbrCount++
			totalPbrRegs += len(in.PbrRegs)
		}
	}
	if k.PbrCount > 0 {
		k.AvgPbrRegs = float64(totalPbrRegs) / float64(k.PbrCount)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: output validation: %w", err)
	}
	k.Prog = q
	return k, nil
}
