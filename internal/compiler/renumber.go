package compiler

import (
	"fmt"
	"sort"

	"regvirt/internal/isa"
)

// renumber applies a register permutation to every operand of the program
// in place. perm[old] = new; registers absent from perm keep their id. RZ
// is never remapped.
func renumber(p *isa.Program, perm map[isa.RegID]isa.RegID) {
	mapReg := func(r isa.RegID) isa.RegID {
		if r == isa.RZ {
			return r
		}
		if n, ok := perm[r]; ok {
			return n
		}
		return r
	}
	for _, in := range p.Instrs {
		if in.Dst.Kind == isa.OpdReg {
			in.Dst.Reg = mapReg(in.Dst.Reg)
		}
		for i := 0; i < isa.MaxSrcOperands; i++ {
			if in.Srcs[i].Kind == isa.OpdReg {
				in.Srcs[i].Reg = mapReg(in.Srcs[i].Reg)
			}
		}
		for i, r := range in.PbrRegs {
			in.PbrRegs[i] = mapReg(r)
		}
	}
}

// exemptPermutation builds the permutation that compacts the exempt
// registers onto the lowest ids (§6.2: "renaming-exempted registers are
// assigned the lowest N register ids") and the renameable ones onto the
// ids above them. Within each class, ids are assigned bank-aware: a
// register's id determines its bank (id mod 4, preserved by renaming,
// §7.1), so the pass spreads expected register-file *occupancy* evenly —
// long-lived registers are dealt round-robin across banks by descending
// liveness weight. Clustering them in one bank would both raise operand
// collector conflicts and starve that bank's allocator under GPU-shrink.
func exemptPermutation(used []isa.RegID, exempt []isa.RegID, stats []RegStat) (map[isa.RegID]isa.RegID, error) {
	isExempt := map[isa.RegID]bool{}
	for _, r := range exempt {
		if r == isa.RZ {
			return nil, fmt.Errorf("compiler: rz cannot be exempt")
		}
		isExempt[r] = true
	}
	// Liveness weight: total expected mapped time (value instances x
	// average lifetime).
	weight := map[isa.RegID]float64{}
	for _, st := range stats {
		defs := st.Defs
		if defs < 1 {
			defs = 1
		}
		weight[st.Reg] = st.AvgLifetime * float64(defs)
	}
	var exemptRegs, renamRegs []isa.RegID
	for _, r := range used {
		if isExempt[r] {
			exemptRegs = append(exemptRegs, r)
		} else {
			renamRegs = append(renamRegs, r)
		}
	}
	perm := make(map[isa.RegID]isa.RegID, len(used))
	var bankWeight [4]float64
	assign := func(regs []isa.RegID, firstID int) {
		order := append([]isa.RegID(nil), regs...)
		sort.Slice(order, func(i, j int) bool {
			if weight[order[i]] != weight[order[j]] {
				return weight[order[i]] > weight[order[j]]
			}
			return order[i] < order[j]
		})
		free := make([]bool, len(regs))
		for i := range free {
			free[i] = true
		}
		for _, r := range order {
			// Pick the free id in this class whose bank carries the least
			// accumulated weight.
			best, bestW := -1, 0.0
			for i, ok := range free {
				if !ok {
					continue
				}
				bw := bankWeight[(firstID+i)%4]
				if best == -1 || bw < bestW {
					best, bestW = i, bw
				}
			}
			free[best] = false
			id := isa.RegID(firstID + best)
			perm[r] = id
			bankWeight[(firstID+best)%4] += weight[r]
		}
	}
	assign(exemptRegs, 0)
	assign(renamRegs, len(exemptRegs))
	return perm, nil
}
