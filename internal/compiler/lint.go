package compiler

import (
	"fmt"
	"sort"

	"regvirt/internal/cfg"
	"regvirt/internal/isa"
	"regvirt/internal/liveness"
)

// LintIssue is one well-formedness finding.
type LintIssue struct {
	// PC is the instruction the issue anchors to (-1 for whole-program
	// findings).
	PC int
	// Kind is a stable identifier: "uninit-read", "dead-store",
	// "unreachable", "missing-store".
	Kind string
	Msg  string
}

func (i LintIssue) String() string {
	if i.PC < 0 {
		return fmt.Sprintf("%s: %s", i.Kind, i.Msg)
	}
	return fmt.Sprintf("pc %d: %s: %s", i.PC, i.Kind, i.Msg)
}

// Lint checks the well-formedness contract of docs/ISA.md: no register
// read before it is written on some path (configuration-dependent
// behaviour under the conventional baseline), no dead stores to
// registers (written but never readable), no unreachable code, and at
// least one observable global store. Lint findings are advisories; the
// simulator runs such programs, but their outputs may not be comparable
// across register-management configurations.
func Lint(p *isa.Program) ([]LintIssue, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	li := liveness.Analyze(g)
	var issues []LintIssue

	// Uninitialized reads: registers read on some path before any write.
	// Unlike the release analysis, this uses classic any-def-kills
	// semantics — a guarded def counts as initializing (the common
	// guarded-def-then-same-guard-read idiom is well defined).
	for _, r := range uninitialized(g).Regs() {
		issues = append(issues, LintIssue{
			PC:   -1,
			Kind: "uninit-read",
			Msg:  fmt.Sprintf("%v is read before it is written on some path", r),
		})
	}

	// Unreachable blocks: no predecessors and not the entry.
	for _, b := range g.Blocks {
		if b.ID != 0 && len(b.Preds) == 0 {
			issues = append(issues, LintIssue{
				PC:   b.Start,
				Kind: "unreachable",
				Msg:  fmt.Sprintf("block B%d is unreachable", b.ID),
			})
		}
	}

	// Dead stores: a full (unguarded) register write whose value is dead
	// immediately after.
	for pc, in := range p.Instrs {
		d, ok := in.DstReg()
		if !ok || in.Guard.Guarded() {
			continue
		}
		if !li.LiveAfter[pc].Has(d) {
			issues = append(issues, LintIssue{
				PC:   pc,
				Kind: "dead-store",
				Msg:  fmt.Sprintf("value written to %v is never read", d),
			})
		}
	}

	// Observability: a kernel with no global store produces no output.
	hasStore := false
	for _, in := range p.Instrs {
		if in.Op == isa.OpSt && in.Space == isa.SpaceGlobal {
			hasStore = true
			break
		}
	}
	if !hasStore {
		issues = append(issues, LintIssue{
			PC:   -1,
			Kind: "missing-store",
			Msg:  "kernel never stores to global memory (output unobservable)",
		})
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].PC != issues[j].PC {
			return issues[i].PC < issues[j].PC
		}
		return issues[i].Kind < issues[j].Kind
	})
	return issues, nil
}

// uninitialized computes the entry live-in set under classic liveness
// (every def kills, guarded or not).
func uninitialized(g *cfg.Graph) liveness.RegSet {
	n := len(g.Blocks)
	gen := make([]liveness.RegSet, n)
	kill := make([]liveness.RegSet, n)
	var scratch []isa.RegID
	for _, b := range g.Blocks {
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Instrs[pc]
			scratch = in.SrcRegs(scratch[:0])
			for _, r := range scratch {
				if !kill[b.ID].Has(r) {
					gen[b.ID] = gen[b.ID].Add(r)
				}
			}
			if d, ok := in.DstReg(); ok {
				kill[b.ID] = kill[b.ID].Add(d)
			}
		}
	}
	liveIn := make([]liveness.RegSet, n)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var out liveness.RegSet
			for _, s := range g.Blocks[i].Succs {
				out = out.Union(liveIn[s])
			}
			in := gen[i].Union(out.Minus(kill[i]))
			if in != liveIn[i] {
				liveIn[i] = in
				changed = true
			}
		}
	}
	return liveIn[0]
}
