package compiler

import (
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/cfg"
	"regvirt/internal/isa"
	"regvirt/internal/liveness"
)

const straightSrc = `
.kernel straight
    movi r1, 1
    movi r2, 2
    iadd r3, r1, r2
    st.global [r4+0], r3
    exit
`

const diamondSrc = `
.kernel diamond
    movi r1, 1
    movi r2, 2
    isetp.lt p0, r2, r1
@p0 bra else_bb
    iadd r3, r1, r1
    bra join
else_bb:
    iadd r3, r1, r2
join:
    st.global [r4+0], r3
    exit
`

const loopSrc = `
.kernel loopk
    movi r1, 0
    movi r2, 0
    movi r4, 1024
loop:
    ld.global r3, [r4+0]
    iadd r2, r2, r3
    iadd r1, r1, 1
    iadd r4, r4, 4
    isetp.lt p0, r1, 10
@p0 bra loop
    st.global [r5+0], r2
    exit
`

func compile(t *testing.T, src string, opts Options) *Kernel {
	t.Helper()
	k, err := Compile(isa.MustParse(src), opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return k
}

func TestStraightLinePirPlacement(t *testing.T) {
	k := compile(t, straightSrc, Options{})
	// r1 and r2 die at the iadd; r3 dies at the store. One pir covers the
	// single block.
	if k.PirCount != 1 {
		t.Fatalf("PirCount = %d, want 1", k.PirCount)
	}
	if k.PbrCount != 0 {
		t.Errorf("PbrCount = %d, want 0 (no divergence)", k.PbrCount)
	}
	var iadd, st *isa.Instr
	for _, in := range k.Prog.Instrs {
		switch in.Op {
		case isa.OpIAdd:
			iadd = in
		case isa.OpSt:
			st = in
		}
	}
	if !iadd.Rel[0] || !iadd.Rel[1] {
		t.Errorf("iadd should release both sources: %v", iadd.Rel)
	}
	if !st.Rel[1] {
		t.Errorf("store should release its value operand: %v", st.Rel)
	}
	if st.Rel[0] {
		// r4 (the base) is an input with no prior def; it dies here too —
		// wait: r4 is never defined, it is an upward-exposed input, dead
		// after the store, so releasing it is correct.
		_ = st
	}
}

func TestPirEncodableFlags(t *testing.T) {
	for _, src := range []string{straightSrc, diamondSrc, loopSrc} {
		k := compile(t, src, Options{})
		for _, in := range k.Prog.Instrs {
			if in.Op == isa.OpPir {
				if _, err := isa.EncodePir(in.PirFlags); err != nil {
					t.Errorf("%s: unencodable pir: %v", k.Prog.Name, err)
				}
			}
		}
	}
}

func TestDiamondSharedRegReleasedAtJoin(t *testing.T) {
	k := compile(t, diamondSrc, Options{})
	// r1 is read in both arms: it must NOT be released inside either arm;
	// it must be released by a pbr at the join block.
	joinPC := k.Prog.Labels["join"]
	var pbr *isa.Instr
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpPbr && in.PC >= joinPC {
			pbr = in
			break
		}
	}
	if pbr == nil {
		t.Fatalf("no pbr at join:\n%s", k.Prog)
	}
	// The original r1 may have been renumbered; identify it as the
	// register appearing twice as source of the then-arm iadd.
	var shared isa.RegID = 255
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpIAdd && in.Srcs[0].IsReg() && in.Srcs[0].Reg == in.Srcs[1].Reg {
			shared = in.Srcs[0].Reg
		}
	}
	if shared == 255 {
		t.Fatal("could not identify the shared register")
	}
	inPbr := false
	for _, r := range pbr.PbrRegs {
		if r == shared {
			inPbr = true
		}
	}
	if !inPbr {
		t.Errorf("shared register r%d missing from join pbr %v", shared, pbr.PbrRegs)
	}
	// A register read on both arms must never carry an in-arm pir release
	// (Fig. 4(b)): the first-executed arm would free it under the other
	// arm's reads.
	for _, in := range k.Prog.Instrs {
		for i := 0; i < in.NSrc; i++ {
			if in.Rel[i] && in.Srcs[i].IsReg() && in.Srcs[i].Reg == shared {
				t.Errorf("shared register r%d pir-released at pc %d", shared, in.PC)
			}
		}
	}
}

func TestLoopBodyReleases(t *testing.T) {
	k := compile(t, loopSrc, Options{})
	// r3 (the per-iteration load target) must be released inside the loop
	// body each iteration (Fig. 4(e)): find a pir-flagged read of the
	// register that is the destination of the in-loop load.
	var loadDst isa.RegID = 255
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpLd && in.Space == isa.SpaceGlobal {
			loadDst = in.Dst.Reg
		}
	}
	if loadDst == 255 {
		t.Fatal("no global load found")
	}
	found := false
	for _, in := range k.Prog.Instrs {
		for i := 0; i < in.NSrc; i++ {
			if in.Rel[i] && in.Srcs[i].IsReg() && in.Srcs[i].Reg == loadDst {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("load destination r%d never pir-released inside the loop:\n%s", loadDst, k.Prog)
	}
}

func TestAccumulatorNotReleasedInLoop(t *testing.T) {
	k := compile(t, loopSrc, Options{})
	// The accumulator (stored after the loop) must not be released before
	// the store. Identify it as the store's value operand.
	var acc isa.RegID = 255
	var stPC int
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpSt {
			acc = in.Srcs[1].Reg
			stPC = in.PC
		}
	}
	for _, in := range k.Prog.Instrs {
		if in.PC >= stPC {
			break
		}
		for i := 0; i < in.NSrc; i++ {
			if in.Rel[i] && in.Srcs[i].IsReg() && in.Srcs[i].Reg == acc {
				t.Errorf("accumulator r%d released at pc %d before the post-loop store", acc, in.PC)
			}
		}
		if in.Op == isa.OpPbr {
			for _, r := range in.PbrRegs {
				if r == acc {
					t.Errorf("accumulator r%d pbr-released at pc %d", acc, in.PC)
				}
			}
		}
	}
}

func TestNoFlagsBaseline(t *testing.T) {
	k := compile(t, loopSrc, Options{NoFlags: true})
	if k.MetaInstrs() != 0 {
		t.Errorf("baseline has %d metadata instructions", k.MetaInstrs())
	}
	if len(k.Prog.Instrs) != k.StaticInstrs {
		t.Errorf("baseline grew from %d to %d instructions", k.StaticInstrs, len(k.Prog.Instrs))
	}
}

func TestStaticIncreaseAccounting(t *testing.T) {
	k := compile(t, loopSrc, Options{})
	if got := len(k.Prog.Instrs) - k.StaticInstrs; got != k.MetaInstrs() {
		t.Errorf("instruction growth %d != MetaInstrs %d", got, k.MetaInstrs())
	}
	if k.StaticIncrease() <= 0 {
		t.Errorf("StaticIncrease = %v, want > 0", k.StaticIncrease())
	}
}

func TestCompiledProgramValidates(t *testing.T) {
	for _, src := range []string{straightSrc, diamondSrc, loopSrc} {
		k := compile(t, src, Options{})
		if err := k.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", k.Prog.Name, err)
		}
	}
}

func TestBranchTargetsLandOnMetadata(t *testing.T) {
	k := compile(t, loopSrc, Options{})
	// The loop back edge must target the new block start so in-loop pir
	// metadata is re-fetched each iteration.
	loopStart := k.Prog.Labels["loop"]
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpBra && in.Guard.Guarded() {
			if in.Target != loopStart {
				t.Errorf("back edge targets %d, want label loop at %d", in.Target, loopStart)
			}
		}
	}
	// And the instruction at the loop label should be the pir covering the
	// body (the body has releases).
	if k.Prog.Instrs[loopStart].Op != isa.OpPir {
		t.Errorf("instr at loop label is %v, want pir", k.Prog.Instrs[loopStart].Op)
	}
}

func TestExemptSelectionUnderBudget(t *testing.T) {
	// loopSrc uses 5 registers; with a budget admitting only 3, the two
	// longest-lived must be exempted and renumbered to the lowest ids.
	warps := 48
	budgetBytes := 3 * arch.RenameEntryBits * warps / 8 // exactly 3 regs
	k := compile(t, loopSrc, Options{TableBytes: budgetBytes, ResidentWarps: warps})
	if k.Exempt != 2 {
		t.Fatalf("Exempt = %d, want 2 (stats: %+v)", k.Exempt, k.Stats)
	}
	// No release metadata may reference the exempt ids 0..1.
	for _, in := range k.Prog.Instrs {
		for i := 0; i < in.NSrc; i++ {
			if in.Rel[i] && in.Srcs[i].Reg < isa.RegID(k.Exempt) {
				t.Errorf("pc %d releases exempt register %v", in.PC, in.Srcs[i].Reg)
			}
		}
		for _, r := range in.PbrRegs {
			if r < isa.RegID(k.Exempt) {
				t.Errorf("pbr releases exempt register %v", r)
			}
		}
	}
}

func TestUnconstrainedBudgetRenamesAll(t *testing.T) {
	k := compile(t, loopSrc, Options{})
	if k.Exempt != 0 {
		t.Errorf("Exempt = %d, want 0 with unconstrained table", k.Exempt)
	}
}

func TestUnconstrainedTableBytes(t *testing.T) {
	k := compile(t, loopSrc, Options{ResidentWarps: 32})
	// 5 registers x 10 bits x 32 warps = 1600 bits = 200 bytes.
	if k.UnconstrainedTableBytes != 200 {
		t.Errorf("UnconstrainedTableBytes = %d, want 200", k.UnconstrainedTableBytes)
	}
}

func TestSelectionPrefersShortLived(t *testing.T) {
	stats := []RegStat{
		{Reg: 1, Defs: 1, AvgLifetime: 100, LongLived: true},
		{Reg: 2, Defs: 3, AvgLifetime: 4},
		{Reg: 3, Defs: 1, AvgLifetime: 4},
		{Reg: 4, Defs: 1, AvgLifetime: 50},
	}
	renameable, exempt := selectRenameable(stats, 2)
	// Shortest lifetime first; ties broken by fewer value instances: r3
	// then r2. Exempt: r4 and the long-lived r1.
	if !renameable.Has(3) || !renameable.Has(2) {
		t.Errorf("renameable = %v, want {r2 r3}", renameable)
	}
	if len(exempt) != 2 || exempt[0] != 1 || exempt[1] != 4 {
		t.Errorf("exempt = %v, want [r1 r4]", exempt)
	}
}

func TestRegisterStatsLongLived(t *testing.T) {
	k := compile(t, loopSrc, Options{NoFlags: true})
	// r5 (store base, never released... actually released at the store) —
	// instead check that every register has stats and defs counted.
	if len(k.Stats) != 5 {
		t.Fatalf("got stats for %d registers, want 5", len(k.Stats))
	}
	byReg := map[isa.RegID]RegStat{}
	for _, st := range k.Stats {
		byReg[st.Reg] = st
	}
	if byReg[1].Defs != 2 { // movi + iadd
		t.Errorf("r1 Defs = %d, want 2", byReg[1].Defs)
	}
	if byReg[3].AvgLifetime <= 0 || byReg[3].AvgLifetime > 4 {
		t.Errorf("r3 AvgLifetime = %v, want small (dies at next iadd)", byReg[3].AvgLifetime)
	}
	if byReg[2].AvgLifetime <= byReg[3].AvgLifetime {
		t.Errorf("accumulator r2 lifetime (%v) should exceed r3's (%v)",
			byReg[2].AvgLifetime, byReg[3].AvgLifetime)
	}
}

// Structural soundness: recompute liveness on the compiled output and
// verify that no released register is read again before being redefined.
func TestNoUseAfterRelease(t *testing.T) {
	for _, src := range []string{straightSrc, diamondSrc, loopSrc} {
		k := compile(t, src, Options{})
		g, err := cfg.Build(k.Prog)
		if err != nil {
			t.Fatalf("cfg on compiled output: %v", err)
		}
		li := liveness.Analyze(g)
		for _, in := range k.Prog.Instrs {
			for i := 0; i < in.NSrc; i++ {
				if in.Rel[i] && li.LiveAfter[in.PC].Has(in.Srcs[i].Reg) {
					t.Errorf("%s: pc %d releases live register %v", k.Prog.Name, in.PC, in.Srcs[i].Reg)
				}
			}
			if in.Op == isa.OpPbr {
				blk := g.BlockOf[in.PC]
				for _, r := range in.PbrRegs {
					if li.LiveIn[blk].Has(r) {
						t.Errorf("%s: pbr at pc %d releases live register %v", k.Prog.Name, in.PC, r)
					}
				}
			}
		}
	}
}
