package compiler

import (
	"sort"

	"regvirt/internal/isa"
	"regvirt/internal/liveness"
)

// RegStat summarizes one architected register's estimated behaviour,
// computed statically as the paper prescribes (§6.2): value lifetime is
// the instruction distance between a write and the next release point in
// code order, and registers with more value instances are poorer renaming
// candidates.
type RegStat struct {
	Reg isa.RegID
	// Defs is the number of static definitions (value instances).
	Defs int
	// AvgLifetime is the mean static distance (instructions) from each
	// definition to the next release point.
	AvgLifetime float64
	// LongLived reports that the register has no release point at all:
	// it stays mapped for the kernel's whole duration.
	LongLived bool
}

// registerStats estimates per-register value lifetimes against a release
// plan computed with every register considered renameable.
func registerStats(li *liveness.Info, plan *releasePlan) []RegStat {
	prog := li.G.Prog
	defs := map[isa.RegID][]int{}
	for pc, in := range prog.Instrs {
		if d, ok := in.DstReg(); ok {
			defs[d] = append(defs[d], pc)
		}
	}
	var out []RegStat
	for _, r := range prog.UsedRegs() {
		st := RegStat{Reg: r, Defs: len(defs[r])}
		pcs := plan.releasePCs[r]
		if len(pcs) == 0 {
			st.LongLived = true
			st.AvgLifetime = float64(len(prog.Instrs))
		} else {
			total, n := 0, 0
			for _, d := range defs[r] {
				i := sort.SearchInts(pcs, d+1)
				if i == len(pcs) {
					// Value written after the last release point: lives to
					// the end of the program.
					total += len(prog.Instrs) - d
				} else {
					total += pcs[i] - d
				}
				n++
			}
			if n == 0 {
				// Read-only input register (defined by the launcher):
				// lifetime runs from program start to its first release.
				total = pcs[0] + 1
				n = 1
			}
			st.AvgLifetime = float64(total) / float64(n)
		}
		out = append(out, st)
	}
	return out
}

// selectRenameable picks the registers that benefit most from renaming
// under a table budget of capacity registers per warp (§6.2). Preference
// order: short average lifetime first, then fewer value instances; the
// longest-lived registers are exempted first. If capacity covers every
// register, all are selected.
func selectRenameable(stats []RegStat, capacity int) (renameable liveness.RegSet, exempt []isa.RegID) {
	if capacity < 0 {
		capacity = 0
	}
	order := append([]RegStat(nil), stats...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.LongLived != b.LongLived {
			return !a.LongLived
		}
		if a.AvgLifetime != b.AvgLifetime {
			return a.AvgLifetime < b.AvgLifetime
		}
		if a.Defs != b.Defs {
			return a.Defs < b.Defs
		}
		return a.Reg < b.Reg
	})
	for i, st := range order {
		if i < capacity {
			renameable = renameable.Add(st.Reg)
		} else {
			exempt = append(exempt, st.Reg)
		}
	}
	sort.Slice(exempt, func(i, j int) bool { return exempt[i] < exempt[j] })
	return renameable, exempt
}
