package compiler

import (
	"fmt"
	"sort"

	"regvirt/internal/isa"
)

// spillTemps is the number of architected registers reserved for staging
// spilled values (enough for three source operands; the destination
// reuses the first temp after sources are consumed).
const spillTemps = 3

// SpillTo is the "Compiler spill" baseline of Fig. 11a: it rewrites the
// program to use at most maxRegs architected registers by spilling the
// statically least-accessed registers to the system-reserved spill space,
// inserting a fill before every read and a spill store after every write.
// When the program already fits, it returns an untouched clone.
func SpillTo(src *isa.Program, maxRegs int) (*isa.Program, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	used := src.UsedRegs()
	if len(used) <= maxRegs {
		return src.Clone(), nil
	}
	if maxRegs < spillTemps+1 {
		return nil, fmt.Errorf("compiler: cannot spill into %d registers (need at least %d)", maxRegs, spillTemps+1)
	}
	p := src.Clone()

	// Rank registers by static access count; keep the busiest.
	counts := map[isa.RegID]int{}
	var scratch []isa.RegID
	for _, in := range p.Instrs {
		scratch = in.SrcRegs(scratch[:0])
		for _, r := range scratch {
			counts[r]++
		}
		if d, ok := in.DstReg(); ok {
			counts[d]++
		}
	}
	order := append([]isa.RegID(nil), used...)
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	keepBudget := maxRegs - spillTemps
	kept := order[:keepBudget]
	spilled := order[keepBudget:]

	// Kept registers compact onto the lowest ids; temps take the top ids.
	perm := map[isa.RegID]isa.RegID{}
	keptSorted := append([]isa.RegID(nil), kept...)
	sort.Slice(keptSorted, func(i, j int) bool { return keptSorted[i] < keptSorted[j] })
	for i, r := range keptSorted {
		perm[r] = isa.RegID(i)
	}
	slot := map[isa.RegID]int32{}
	for i, r := range spilled {
		slot[r] = int32(i * 4)
	}
	isSpilled := func(r isa.RegID) bool {
		_, ok := slot[r]
		return ok
	}
	temp := func(i int) isa.RegID { return isa.RegID(maxRegs - spillTemps + i) }

	// Kept registers are remapped inline (never via a whole-program pass:
	// the temp ids would collide with original ids).
	mapKept := func(r isa.RegID) isa.RegID {
		if n, ok := perm[r]; ok {
			return n
		}
		return r // RZ
	}
	var out []*isa.Instr
	newPC := make([]int, len(p.Instrs))
	for pc, in := range p.Instrs {
		newPC[pc] = len(out)
		cp := *in
		// Fills: one load per distinct spilled source register.
		tempOf := map[isa.RegID]isa.RegID{}
		next := 0
		for i := 0; i < cp.NSrc; i++ {
			if !cp.Srcs[i].IsReg() {
				continue
			}
			v := cp.Srcs[i].Reg
			if !isSpilled(v) {
				cp.Srcs[i].Reg = mapKept(v)
				continue
			}
			t, ok := tempOf[v]
			if !ok {
				t = temp(next)
				next++
				tempOf[v] = t
				out = append(out, &isa.Instr{
					Op: isa.OpLd, Guard: isa.NoPred, SetPred: -1, Target: -1, Reconv: -1,
					Space: isa.SpaceSpill, Dst: isa.R(t),
					Srcs: [isa.MaxSrcOperands]isa.Operand{isa.R(isa.RZ)}, NSrc: 1,
					MemOff: slot[v],
				})
			}
			cp.Srcs[i].Reg = t
		}
		// Destination: stage in temp 0 and store back, preserving the guard
		// so partially-executed writes stay partial.
		var post *isa.Instr
		if d, ok := cp.DstReg(); ok {
			if isSpilled(d) {
				cp.Dst.Reg = temp(0)
				post = &isa.Instr{
					Op: isa.OpSt, Guard: cp.Guard, SetPred: -1, Target: -1, Reconv: -1,
					Space: isa.SpaceSpill,
					Srcs:  [isa.MaxSrcOperands]isa.Operand{isa.R(isa.RZ), isa.R(temp(0))},
					NSrc:  2, MemOff: slot[d],
				}
			} else {
				cp.Dst.Reg = mapKept(d)
			}
		}
		out = append(out, &cp)
		if post != nil {
			out = append(out, post)
		}
	}
	q := &isa.Program{Name: p.Name, RegCount: maxRegs, Instrs: out,
		Labels: make(map[string]int, len(p.Labels))}
	for name, pc := range p.Labels {
		q.Labels[name] = newPC[pc]
	}
	for _, in := range q.Instrs {
		if in.Op == isa.OpBra {
			if in.TargetLabel == "" {
				in.Target = newPC[in.Target]
			}
			if in.Reconv >= 0 {
				in.Reconv = newPC[in.Reconv]
			}
		}
	}
	if err := q.Rebuild(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: spilled program invalid: %w", err)
	}
	return q, nil
}

// SpillCount returns how many registers SpillTo would move to memory.
func SpillCount(src *isa.Program, maxRegs int) int {
	used := len(src.UsedRegs())
	if used <= maxRegs {
		return 0
	}
	return used - (maxRegs - spillTemps)
}
