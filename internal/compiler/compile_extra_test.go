package compiler

import (
	"fmt"
	"strings"
	"testing"

	"regvirt/internal/isa"
)

// A diamond nested inside a loop: the inner reconvergence point sits in
// the loop body, so its pbr executes every iteration.
const diamondInLoopSrc = `
.kernel dil
    movi r1, 0
    movi r2, 0
    movi r6, 0
loop:
    and  r3, r1, 1
    isetp.eq p0, r3, 0
@p0 bra even_bb
    iadd r4, r2, 3
    bra join
even_bb:
    iadd r4, r2, 5
join:
    iadd r6, r6, r4
    iadd r1, r1, 1
    isetp.lt p1, r1, 8
@p1 bra loop
    st.global [r5+0], r6
    exit
`

func TestDiamondInLoopPbrPlacement(t *testing.T) {
	k := compile(t, diamondInLoopSrc, Options{})
	// r4 is produced on both arms and consumed at the join; dead after
	// the consuming iadd. The arms can't release it (sibling-unsafe for
	// the shared read at join? No: r4 written per-arm, read at join —
	// released via pir at the join read or pbr). r3 dies inside the loop.
	// Verify at least one pbr lives inside the loop body (between the
	// loop label and the back edge).
	loopStart := k.Prog.Labels["loop"]
	var backEdge int
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpBra && in.Guard.Guarded() && in.Target == loopStart {
			backEdge = in.PC
		}
	}
	if backEdge == 0 {
		t.Fatal("no back edge found")
	}
	foundRelease := false
	for _, in := range k.Prog.Instrs {
		if in.PC <= loopStart || in.PC >= backEdge {
			continue
		}
		if in.Op == isa.OpPbr {
			foundRelease = true
		}
		for i := 0; i < in.NSrc; i++ {
			if in.Rel[i] {
				foundRelease = true
			}
		}
	}
	if !foundRelease {
		t.Errorf("no release activity inside the loop body:\n%s", k.Prog)
	}
	if err := k.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeBasicBlockMultiplePirs(t *testing.T) {
	// 40 instructions in one block, each creating and killing a short
	// lifetime: needs three pir windows (18+18+4).
	var b strings.Builder
	b.WriteString(".kernel big\n.reg 6\n    movi r1, 1\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "    iadd r%d, r1, %d\n", 2+i%3, i)
		fmt.Fprintf(&b, "    iadd r5, r%d, 1\n", 2+i%3)
	}
	b.WriteString("    st.global [r1+0], r5\n    exit\n")
	k := compile(t, b.String(), Options{})
	if k.PirCount < 3 {
		t.Errorf("PirCount = %d, want >= 3 for an 80-instruction block", k.PirCount)
	}
	// Every pir must be encodable and its groups must only reference the
	// following <=18 instructions.
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpPir {
			if _, err := isa.EncodePir(in.PirFlags); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPbrChunkingBeyondNine(t *testing.T) {
	// Force >9 registers to release at one reconvergence point: registers
	// r2..r13 (12 of them) are read on both arms of a diamond (sibling-
	// unsafe => pbr at join) and dead afterwards.
	var b strings.Builder
	b.WriteString(".kernel chunky\n.reg 16\n")
	for r := 2; r <= 13; r++ {
		fmt.Fprintf(&b, "    movi r%d, %d\n", r, r)
	}
	b.WriteString("    isetp.lt p0, r0, r1\n")
	b.WriteString("@p0 bra else_bb\n")
	for r := 2; r <= 13; r++ {
		fmt.Fprintf(&b, "    iadd r14, r14, r%d\n", r)
	}
	b.WriteString("    bra join\nelse_bb:\n")
	for r := 2; r <= 13; r++ {
		fmt.Fprintf(&b, "    iadd r14, r14, r%d\n", r)
	}
	b.WriteString("join:\n    st.global [r15+0], r14\n    exit\n")
	k := compile(t, b.String(), Options{})
	joinPC := k.Prog.Labels["join"]
	var pbrs []*isa.Instr
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpPbr && in.PC >= joinPC && in.PC < joinPC+3 {
			pbrs = append(pbrs, in)
		}
	}
	if len(pbrs) < 2 {
		t.Fatalf("want >= 2 chained pbrs at the join for 12 releases, got %d:\n%s", len(pbrs), k.Prog)
	}
	total := 0
	for _, p := range pbrs {
		if len(p.PbrRegs) > isa.PbrMaxRegs {
			t.Errorf("pbr carries %d registers, max %d", len(p.PbrRegs), isa.PbrMaxRegs)
		}
		total += len(p.PbrRegs)
	}
	if total < 12 {
		t.Errorf("join releases %d registers, want >= 12", total)
	}
}

func TestCompileDeterminism(t *testing.T) {
	for _, src := range []string{straightSrc, diamondSrc, loopSrc, diamondInLoopSrc} {
		a := compile(t, src, Options{TableBytes: 1024, ResidentWarps: 32})
		b := compile(t, src, Options{TableBytes: 1024, ResidentWarps: 32})
		if a.Prog.String() != b.Prog.String() {
			t.Errorf("nondeterministic compilation of %q", a.Prog.Name)
		}
	}
}

func TestAvgPbrRegsReported(t *testing.T) {
	k := compile(t, diamondSrc, Options{})
	if k.PbrCount > 0 && k.AvgPbrRegs <= 0 {
		t.Error("AvgPbrRegs not computed")
	}
	// §6.2: the average pbr carries about two registers; ours should be
	// in the same small range.
	if k.AvgPbrRegs > isa.PbrMaxRegs {
		t.Errorf("AvgPbrRegs = %v, impossible", k.AvgPbrRegs)
	}
}

func TestBankBalancedRenumbering(t *testing.T) {
	// After compilation, the long-lived registers of the loop kernel must
	// not cluster in one bank: compute per-bank total liveness weight via
	// the stats and assert a reasonable spread.
	k := compile(t, loopSrc, Options{})
	// Find the accumulator (store operand) and loop counter banks: they
	// are the two longest-lived registers and must differ in bank.
	var storeVal isa.RegID = 255
	for _, in := range k.Prog.Instrs {
		if in.Op == isa.OpSt {
			storeVal = in.Srcs[1].Reg
		}
	}
	if storeVal == 255 {
		t.Fatal("no store found")
	}
	// The base-address registers of the in-loop load and the accumulator
	// should be spread: count distinct banks among long-lived registers.
	banks := map[int]bool{}
	var scratch []isa.RegID
	counts := map[isa.RegID]int{}
	for _, in := range k.Prog.Instrs {
		scratch = in.SrcRegs(scratch[:0])
		for _, r := range scratch {
			counts[r]++
		}
	}
	for r, n := range counts {
		if n >= 2 {
			banks[int(r)%4] = true
		}
	}
	if len(banks) < 2 {
		t.Errorf("frequently-read registers occupy %d bank(s); expected spreading", len(banks))
	}
}

func TestMetaWordEncodesCompiledMetadata(t *testing.T) {
	k := compile(t, diamondInLoopSrc, Options{})
	for _, in := range k.Prog.Instrs {
		if in.Op.IsMeta() {
			if _, err := isa.MetaWord(in); err != nil {
				t.Errorf("pc %d: %v", in.PC, err)
			}
		}
	}
}
