package compiler

import (
	"regvirt/internal/cfg"
	"regvirt/internal/isa"
)

// insertMeta rewrites the program with pir/pbr metadata instructions
// (§6.2). pbr instructions go at the start of their reconvergence block;
// a pir precedes each 18-instruction window of a basic block that
// contains at least one release bit. Branch targets, labels, and
// reconvergence PCs are remapped to the new block starts so that control
// transfers land on the metadata instructions (which the fetch stage
// pre-processes) before the block body.
func insertMeta(g *cfg.Graph, plan *releasePlan) (*isa.Program, error) {
	prog := g.Prog
	var out []*isa.Instr
	newStart := make([]int, len(g.Blocks))
	for _, b := range g.Blocks {
		newStart[b.ID] = len(out)
		// pbr instructions first, chunked by capacity.
		regs := plan.pbr[b.ID]
		for len(regs) > 0 {
			n := len(regs)
			if n > isa.PbrMaxRegs {
				n = isa.PbrMaxRegs
			}
			out = append(out, &isa.Instr{
				Op: isa.OpPbr, Guard: isa.NoPred, SetPred: -1, Target: -1, Reconv: -1,
				PbrRegs: append([]isa.RegID(nil), regs[:n]...),
			})
			regs = regs[n:]
		}
		// Then the block body in 18-instruction windows, each preceded by
		// a pir when any instruction in the window releases something.
		for pc := b.Start; pc < b.End; pc += isa.PirGroupCount {
			end := pc + isa.PirGroupCount
			if end > b.End {
				end = b.End
			}
			var flags uint64
			any := false
			for i := pc; i < end; i++ {
				if bits, ok := plan.pir[i]; ok {
					flags = isa.PackPirGroup(flags, i-pc, bits)
					any = true
				}
			}
			if any {
				if _, err := isa.EncodePir(flags); err != nil {
					return nil, err
				}
				out = append(out, &isa.Instr{
					Op: isa.OpPir, Guard: isa.NoPred, SetPred: -1, Target: -1, Reconv: -1,
					PirFlags: flags,
				})
			}
			for i := pc; i < end; i++ {
				cp := *prog.Instrs[i]
				if bits, ok := plan.pir[i]; ok {
					cp.Rel = bits
				}
				out = append(out, &cp)
			}
		}
	}
	mapPC := func(oldPC int) int { return newStart[g.BlockOf[oldPC]] }
	q := &isa.Program{Name: prog.Name, RegCount: prog.RegCount, Instrs: out,
		Labels: make(map[string]int, len(prog.Labels))}
	for name, pc := range prog.Labels {
		q.Labels[name] = mapPC(pc)
	}
	for _, in := range q.Instrs {
		if in.Op == isa.OpBra {
			// Branch targets are always block starts.
			if in.TargetLabel == "" {
				in.Target = mapPC(in.Target)
			}
			if in.Reconv >= 0 {
				in.Reconv = mapPC(in.Reconv)
			}
		}
	}
	if err := q.Rebuild(); err != nil {
		return nil, err
	}
	return q, nil
}
