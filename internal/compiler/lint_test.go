package compiler

import (
	"strings"
	"testing"

	"regvirt/internal/isa"
)

func lint(t *testing.T, src string) []LintIssue {
	t.Helper()
	issues, err := Lint(isa.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return issues
}

func hasKind(issues []LintIssue, kind string) bool {
	for _, i := range issues {
		if i.Kind == kind {
			return true
		}
	}
	return false
}

func TestLintCleanKernel(t *testing.T) {
	issues := lint(t, `
.kernel clean
    s2r  r0, %tid.x
    shl  r1, r0, 2
    imul r2, r0, 3
    iadd r1, r1, c[0]
    st.global [r1+0], r2
    exit
`)
	if len(issues) != 0 {
		t.Errorf("clean kernel flagged: %v", issues)
	}
}

func TestLintUninitRead(t *testing.T) {
	issues := lint(t, `
.kernel u
    iadd r1, r2, r3
    st.global [r1+0], r1
    exit
`)
	if !hasKind(issues, "uninit-read") {
		t.Errorf("uninitialized reads not flagged: %v", issues)
	}
}

func TestLintDeadStore(t *testing.T) {
	issues := lint(t, `
.kernel d
    s2r  r0, %tid.x
    movi r1, 5
    movi r2, 9
    st.global [r0+0], r1
    exit
`)
	if !hasKind(issues, "dead-store") {
		t.Errorf("dead store of r2 not flagged: %v", issues)
	}
}

func TestLintUnreachable(t *testing.T) {
	issues := lint(t, `
.kernel r
    s2r r0, %tid.x
    st.global [r0+0], r0
    exit
dead:
    movi r1, 1
    st.global [r0+0], r1
    exit
`)
	if !hasKind(issues, "unreachable") {
		t.Errorf("unreachable block not flagged: %v", issues)
	}
}

func TestLintMissingStore(t *testing.T) {
	issues := lint(t, `
.kernel m
    s2r r0, %tid.x
    iadd r0, r0, 1
    st.shared [r0+0], r0
    exit
`)
	if !hasKind(issues, "missing-store") {
		t.Errorf("store-free kernel not flagged: %v", issues)
	}
}

func TestLintIssueString(t *testing.T) {
	i := LintIssue{PC: 3, Kind: "dead-store", Msg: "x"}
	if !strings.Contains(i.String(), "pc 3") {
		t.Error("String missing pc")
	}
	j := LintIssue{PC: -1, Kind: "missing-store", Msg: "y"}
	if strings.Contains(j.String(), "pc") {
		t.Error("whole-program issue should not print a pc")
	}
}
