package faultinject

// Nemesis primitives: the fault vocabulary of the cluster-level chaos
// suite. Where Injector wounds a process from the inside (injected
// errors, latency, panics at named sites), the nemesis attacks the
// environment around it — the network between nodes, the bytes on its
// disk, its scheduling — the way a Jepsen harness would.

import (
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"syscall"
)

// PartitionSet is a dynamic network partition: a set of blocked hosts
// ("host:port") consulted by the Transport wrapper on every outbound
// request. Blocking is directional — each process owns its own set, so
// a pairwise partition blocks on both sides. Safe for concurrent use.
type PartitionSet struct {
	mu      sync.Mutex
	blocked map[string]bool
}

// NewPartitionSet returns an empty (fully connected) partition set.
func NewPartitionSet() *PartitionSet {
	return &PartitionSet{blocked: map[string]bool{}}
}

// Block black-holes outbound requests to the given "host:port" targets.
func (p *PartitionSet) Block(hosts ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range hosts {
		p.blocked[h] = true
	}
}

// Unblock heals the partition toward the given targets.
func (p *PartitionSet) Unblock(hosts ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range hosts {
		delete(p.blocked, h)
	}
}

// Clear heals every partition.
func (p *PartitionSet) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked = map[string]bool{}
}

// Blocked reports whether outbound traffic to host is black-holed.
func (p *PartitionSet) Blocked(host string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[host]
}

// Hosts returns the currently blocked targets, sorted.
func (p *PartitionSet) Hosts() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.blocked))
	for h := range p.blocked {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// ErrPartitioned is the error a blocked round trip fails with, wrapped
// so callers see an ordinary network failure.
var ErrPartitioned = fmt.Errorf("faultinject: network partition")

// partitionTransport consults the set before every round trip.
type partitionTransport struct {
	set  *PartitionSet
	base http.RoundTripper
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.set.Blocked(req.URL.Host) {
		return nil, fmt.Errorf("%w: %s unreachable", ErrPartitioned, req.URL.Host)
	}
	base := t.base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// Transport wraps base (nil = http.DefaultTransport) so requests to
// blocked hosts fail like a dropped network instead of reaching the
// peer. Install it on every outbound client of a process to make the
// process's side of a partition real.
func (p *PartitionSet) Transport(base http.RoundTripper) http.RoundTripper {
	return &partitionTransport{set: p, base: base}
}

// FlipBit flips one bit of the file at path, in place — the at-rest
// corruption a scrubber must detect and heal. bit indexes from the
// start of the file (bit 0 = lowest bit of byte 0) and wraps modulo
// the file size, so callers can hammer arbitrary offsets without
// sizing the file first. Empty files are left alone.
func FlipBit(path string, bit uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultinject: flip bit: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	bit %= uint64(len(data)) * 8
	data[bit/8] ^= 1 << (bit % 8)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("faultinject: flip bit: %w", err)
	}
	return nil
}

// PauseProcess SIGSTOPs a process — a hard GC pause or scheduler
// stall, as seen by its peers. ResumeProcess SIGCONTs it back.
func PauseProcess(pid int) error {
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		return fmt.Errorf("faultinject: pause pid %d: %w", pid, err)
	}
	return nil
}

// ResumeProcess resumes a paused process.
func ResumeProcess(pid int) error {
	if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
		return fmt.Errorf("faultinject: resume pid %d: %w", pid, err)
	}
	return nil
}
