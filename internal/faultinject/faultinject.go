// Package faultinject provides deterministic, seedable, named-site
// fault injection for resilience testing. Code under test calls
// Injector.Fire (or a hook derived from it) at named sites; an
// injector configured with rules decides, purely from the per-site
// hit ordinal, whether that hit returns an error, sleeps, or panics.
// A nil *Injector is inert, so production paths pay one nil check.
//
// Determinism: every site keeps its own hit counter, and a rule fires
// on hit numbers satisfying (hit+Offset) % Every == 0, capped at Times
// fires. Which *hit ordinals* fault is therefore a pure function of
// the rules and the seed (which derives offsets for rules that leave
// Offset zero) — independent of goroutine interleaving. Under
// concurrency the mapping of ordinals to logical operations can vary,
// but the fault *count* per site cannot, which is what chaos-test
// assertions need.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Kind is what a firing rule does to the caller.
type Kind int

const (
	// KindError makes Fire return an error (wrapping ErrInjected).
	KindError Kind = iota
	// KindLatency makes Fire sleep for the rule's Delay, then succeed.
	KindLatency
	// KindPanic makes Fire panic with a *Panic value.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Canonical site names. Each constant names one Fire call threaded
// through the stack; Sites lists them all so a chaos suite can assert
// every site was exercised. The sim package redeclares its two (it
// must not depend on this package); TestSiteNamesMatchSim pins them
// together.
const (
	// SitePoolTask fires on a jobs-pool worker just before a job
	// simulates (panic here exercises worker containment).
	SitePoolTask = "jobs.pool.task"
	// SiteCacheFill fires inside the singleflight result-cache fill,
	// on the submitting goroutine (panic here exercises flight
	// eviction — the cache must not be poisoned).
	SiteCacheFill = "jobs.cache.fill"
	// SiteSimAlloc fires in the SM writeback-allocation path; an error
	// forces the allocation-invariant failure path (sim.InvariantError).
	SiteSimAlloc = "sim.alloc"
	// SiteSimMemAccept fires when the SM memory port accepts a
	// long-latency request; an error aborts the run as a memory fault.
	SiteSimMemAccept = "sim.mem.accept"
	// SiteStoreAppend fires just before a journal append in the
	// durability store; a "diskfull" rule here turns the accept path
	// into ENOSPC so read-only degradation can be drilled.
	SiteStoreAppend = "store.journal.append"
	// SiteStorePersist fires just before a result file is persisted.
	SiteStorePersist = "store.result.persist"
)

// Sites returns every canonical site name.
func Sites() []string {
	return []string{SitePoolTask, SiteCacheFill, SiteSimAlloc, SiteSimMemAccept,
		SiteStoreAppend, SiteStorePersist}
}

// ErrInjected is the sentinel every KindError fault wraps; match it
// with errors.Is to distinguish injected faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Panic is the value a KindPanic rule panics with.
type Panic struct {
	Site string
	Hit  uint64
}

func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// Rule arms one fault at one site (or "*" for every site).
type Rule struct {
	// Site is the exact site name, or "*" to match every site.
	Site string
	// Kind selects error, latency or panic.
	Kind Kind
	// Every fires the rule on site hits where (hit+Offset) % Every == 0
	// (hits count from 1). Zero disables the rule; 1 fires on every hit.
	Every uint64
	// Offset shifts which hits fire. Left zero, New derives a
	// deterministic offset from the seed so repeated runs with one seed
	// reproduce exactly and different seeds shift the fault pattern.
	Offset uint64
	// Times caps how often the rule fires (0 = unlimited).
	Times uint64
	// Delay is the KindLatency sleep.
	Delay time.Duration
	// Err, when set, is wrapped into the KindError failure.
	Err error
}

// ruleState is a Rule plus its remaining-fire accounting.
type ruleState struct {
	Rule
	fired uint64 // guarded by the injector mutex
}

// siteState is one site's hit/fire counters.
type siteState struct {
	hits  uint64
	fired uint64
}

// Injector decides, per site hit, whether to inject a fault.
type Injector struct {
	seed int64

	mu       sync.Mutex
	rules    []*ruleState
	bySite   map[string][]*ruleState
	wildcard []*ruleState
	sites    map[string]*siteState
}

// New builds an injector from rules. The seed derives offsets for
// rules that leave Offset zero (splitmix64 over seed and rule index),
// so one seed reproduces one fault pattern exactly.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		seed:   seed,
		bySite: make(map[string][]*ruleState),
		sites:  make(map[string]*siteState),
	}
	for i, r := range rules {
		if r.Every > 1 && r.Offset == 0 {
			r.Offset = splitmix64(uint64(seed)+uint64(i)) % r.Every
		}
		rs := &ruleState{Rule: r}
		in.rules = append(in.rules, rs)
		if r.Site == "*" {
			in.wildcard = append(in.wildcard, rs)
		} else {
			in.bySite[r.Site] = append(in.bySite[r.Site], rs)
		}
	}
	return in
}

// splitmix64 is the SplitMix64 finalizer — a tiny, dependency-free
// way to spread seeds into offsets.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fire registers one hit of site and applies the first armed rule that
// matches the hit ordinal: KindError returns an error, KindLatency
// sleeps and returns nil, KindPanic panics with *Panic. A nil injector
// (or a site with no matching rule) returns nil.
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{}
		in.sites[site] = st
	}
	st.hits++
	n := st.hits
	var hit *ruleState
	for _, rs := range in.bySite[site] {
		if rs.matches(n) {
			hit = rs
			break
		}
	}
	if hit == nil {
		for _, rs := range in.wildcard {
			if rs.matches(n) {
				hit = rs
				break
			}
		}
	}
	if hit == nil {
		in.mu.Unlock()
		return nil
	}
	hit.fired++
	st.fired++
	kind, delay, cause := hit.Kind, hit.Delay, hit.Err
	in.mu.Unlock()

	switch kind {
	case KindLatency:
		time.Sleep(delay)
		return nil
	case KindPanic:
		panic(&Panic{Site: site, Hit: n})
	default:
		if cause != nil {
			return fmt.Errorf("%w at %s (hit %d): %w", ErrInjected, site, n, cause)
		}
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, site, n)
	}
}

// matches reports whether the rule fires on hit n. Caller holds the
// injector mutex.
func (rs *ruleState) matches(n uint64) bool {
	if rs.Every == 0 {
		return false
	}
	if rs.Times > 0 && rs.fired >= rs.Times {
		return false
	}
	return (n+rs.Offset)%rs.Every == 0
}

// Hook adapts the injector to the plain func(site) error shape
// sim.Config.FaultHook expects. A nil injector yields a nil hook, so
// the simulator's nil check short-circuits the whole machinery.
func (in *Injector) Hook() func(site string) error {
	if in == nil {
		return nil
	}
	return in.Fire
}

// Hits returns how many times site has been hit.
func (in *Injector) Hits(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.sites[site]; st != nil {
		return st.hits
	}
	return 0
}

// Fired returns how many faults have been injected at site.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.sites[site]; st != nil {
		return st.fired
	}
	return 0
}

// FiredTotal returns the injected-fault count across all sites.
func (in *Injector) FiredTotal() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, st := range in.sites {
		n += st.fired
	}
	return n
}

// ParseSpec parses the daemon's -faults flag: comma-separated rules of
// the form
//
//	site:kind:every[:arg]
//
// where kind is error|latency|panic, every is the hit period, and arg
// is the latency in milliseconds (latency kind) or the fire cap
// (error/panic kinds). "*" is a valid site. Examples:
//
//	jobs.pool.task:panic:50
//	sim.mem.accept:latency:1000:5,jobs.cache.fill:error:20:3
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("faultinject: bad rule %q (want site:kind:every[:arg])", part)
		}
		r := Rule{Site: fields[0]}
		switch fields[1] {
		case "error":
			r.Kind = KindError
		case "diskfull":
			// An error whose cause is ENOSPC: the store maps it to the
			// typed disk-full failure, exactly as a real full disk would.
			r.Kind = KindError
			r.Err = syscall.ENOSPC
		case "latency", "delay":
			r.Kind = KindLatency
		case "panic":
			r.Kind = KindPanic
		default:
			return nil, fmt.Errorf("faultinject: unknown kind %q in %q (want error|latency|panic|diskfull)", fields[1], part)
		}
		every, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil || every == 0 {
			return nil, fmt.Errorf("faultinject: bad period %q in %q", fields[2], part)
		}
		r.Every = every
		if len(fields) == 4 {
			arg, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad argument %q in %q", fields[3], part)
			}
			if r.Kind == KindLatency {
				r.Delay = time.Duration(arg) * time.Millisecond
			} else {
				r.Times = arg
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return rules, nil
}
