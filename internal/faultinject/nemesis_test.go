package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestPartitionSetBlocksAndHeals(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	ps := NewPartitionSet()
	hc := &http.Client{Transport: ps.Transport(nil)}

	if resp, err := hc.Get(ts.URL); err != nil {
		t.Fatalf("unpartitioned request failed: %v", err)
	} else {
		resp.Body.Close()
	}

	host := ts.Listener.Addr().String()
	ps.Block(host)
	if !ps.Blocked(host) {
		t.Fatal("Blocked() = false after Block")
	}
	if _, err := hc.Get(ts.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	} else if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned request error = %v, want ErrPartitioned", err)
	}

	// Other hosts stay reachable: the partition is per-target.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	defer other.Close()
	if resp, err := hc.Get(other.URL); err != nil {
		t.Fatalf("unrelated host blocked: %v", err)
	} else {
		resp.Body.Close()
	}

	ps.Unblock(host)
	if resp, err := hc.Get(ts.URL); err != nil {
		t.Fatalf("healed request failed: %v", err)
	} else {
		resp.Body.Close()
	}

	ps.Block(host, "other:1")
	ps.Clear()
	if ps.Blocked(host) || ps.Blocked("other:1") {
		t.Fatal("Clear left hosts blocked")
	}
}

func TestFlipBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	orig := []byte("hello, integrity")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 3); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	got, _ := os.ReadFile(path)
	if got[0] != orig[0]^(1<<3) {
		t.Errorf("byte 0 = %#x, want %#x", got[0], orig[0]^(1<<3))
	}
	// Flipping the same bit again restores the original.
	if err := FlipBit(path, 3); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != string(orig) {
		t.Errorf("double flip did not restore: %q", got)
	}
	// Out-of-range bits wrap instead of erroring.
	if err := FlipBit(path, uint64(len(orig))*8+3); err != nil {
		t.Fatalf("wrapping FlipBit: %v", err)
	}
	got, _ = os.ReadFile(path)
	if got[0] != orig[0]^(1<<3) {
		t.Errorf("wrapped flip hit wrong bit: byte 0 = %#x", got[0])
	}

	// Empty files are a no-op, missing files an error.
	empty := filepath.Join(dir, "empty")
	os.WriteFile(empty, nil, 0o644)
	if err := FlipBit(empty, 0); err != nil {
		t.Errorf("FlipBit on empty file: %v", err)
	}
	if err := FlipBit(filepath.Join(dir, "missing"), 0); err == nil {
		t.Error("FlipBit on missing file: want error")
	}
}

func TestPauseResumeProcess(t *testing.T) {
	// Pausing and resuming our own process group member is too
	// disruptive; exercise the error path (no such pid) and the happy
	// path against this test's own pid with SIGCONT only (harmless —
	// the process is not stopped).
	if err := ResumeProcess(os.Getpid()); err != nil {
		t.Errorf("ResumeProcess(self): %v", err)
	}
	if err := PauseProcess(-999999); err == nil {
		t.Error("PauseProcess(bogus pid): want error")
	}
	if err := ResumeProcess(-999999); err == nil {
		t.Error("ResumeProcess(bogus pid): want error")
	}
}
