package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Hook() != nil {
		t.Fatal("nil injector must yield a nil hook")
	}
	if in.Fired("x") != 0 || in.Hits("x") != 0 || in.FiredTotal() != 0 {
		t.Fatal("nil injector reports activity")
	}
}

func TestEveryAndOffset(t *testing.T) {
	in := New(0, Rule{Site: "s", Kind: KindError, Every: 3, Offset: 3})
	var fired []int
	for i := 1; i <= 9; i++ {
		if err := in.Fire("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error does not wrap ErrInjected: %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
	if in.Hits("s") != 9 || in.Fired("s") != 3 || in.FiredTotal() != 3 {
		t.Fatalf("hits=%d fired=%d total=%d, want 9/3/3", in.Hits("s"), in.Fired("s"), in.FiredTotal())
	}
}

func TestTimesCapsFires(t *testing.T) {
	in := New(0, Rule{Site: "s", Kind: KindError, Every: 1, Times: 2})
	errs := 0
	for i := 0; i < 10; i++ {
		if in.Fire("s") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d times, want Times=2", errs)
	}
}

func TestSeedDeterminism(t *testing.T) {
	pattern := func(seed int64) []int {
		in := New(seed, Rule{Site: "s", Kind: KindError, Every: 7})
		var fired []int
		for i := 1; i <= 50; i++ {
			if in.Fire("s") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := pattern(42), pattern(42)
	if len(a) == 0 {
		t.Fatal("no faults fired in 50 hits with Every=7")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	// A different seed shifts the offset for at least one of a few tries
	// (offsets are derived mod Every, so collisions are possible but not
	// across several seeds).
	shifted := false
	for seed := int64(1); seed <= 8; seed++ {
		c := pattern(seed)
		if len(c) == 0 || c[0] != a[0] {
			shifted = true
			break
		}
	}
	if !shifted {
		t.Fatal("eight different seeds all produced the seed-42 pattern")
	}
}

func TestPanicKindThrowsTypedValue(t *testing.T) {
	in := New(0, Rule{Site: "s", Kind: KindPanic, Every: 1})
	defer func() {
		v := recover()
		p, ok := v.(*Panic)
		if !ok {
			t.Fatalf("panicked with %T %v, want *Panic", v, v)
		}
		if p.Site != "s" || p.Hit != 1 {
			t.Fatalf("panic carries %+v, want site s hit 1", p)
		}
	}()
	in.Fire("s")
	t.Fatal("panic rule did not panic")
}

func TestLatencyKindSleeps(t *testing.T) {
	in := New(0, Rule{Site: "s", Kind: KindLatency, Every: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("s"); err != nil {
		t.Fatalf("latency fault returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency fault slept %v, want >= 20ms", d)
	}
}

func TestWildcardMatchesEverySite(t *testing.T) {
	in := New(0, Rule{Site: "*", Kind: KindError, Every: 1})
	for _, site := range Sites() {
		if in.Fire(site) == nil {
			t.Errorf("wildcard rule did not fire at %s", site)
		}
	}
}

func TestConcurrentFireCountIsExact(t *testing.T) {
	in := New(0, Rule{Site: "s", Kind: KindError, Every: 10})
	var wg sync.WaitGroup
	const goroutines, per = 8, 125
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.Fire("s")
			}
		}()
	}
	wg.Wait()
	total := uint64(goroutines * per)
	if in.Hits("s") != total {
		t.Fatalf("hits = %d, want %d", in.Hits("s"), total)
	}
	if in.Fired("s") != total/10 {
		t.Fatalf("fired = %d, want exactly %d regardless of interleaving", in.Fired("s"), total/10)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("jobs.pool.task:panic:50, sim.mem.accept:latency:1000:5 ,jobs.cache.fill:error:20:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if r := rules[0]; r.Site != SitePoolTask || r.Kind != KindPanic || r.Every != 50 {
		t.Errorf("rule 0 = %+v", r)
	}
	if r := rules[1]; r.Site != SiteSimMemAccept || r.Kind != KindLatency || r.Every != 1000 || r.Delay != 5*time.Millisecond {
		t.Errorf("rule 1 = %+v", r)
	}
	if r := rules[2]; r.Site != SiteCacheFill || r.Kind != KindError || r.Every != 20 || r.Times != 3 {
		t.Errorf("rule 2 = %+v", r)
	}
	for _, bad := range []string{"", "x", "a:b", "s:weird:1", "s:error:0", "s:error:1:zz", "s:error:1:2:3"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
