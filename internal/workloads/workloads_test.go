package workloads

import (
	"reflect"
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
)

func TestSuiteHas16Workloads(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("suite has %d workloads, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("MatrixMul")
	if err != nil || w.Name != "MatrixMul" {
		t.Errorf("ByName(MatrixMul) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown name")
	}
	if got := len(Names()); got != 16 {
		t.Errorf("Names() has %d entries", got)
	}
}

func TestAllKernelsParseAndValidate(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			p := w.Program()
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := len(p.UsedRegs()); got != w.PaperRegs {
				t.Errorf("uses %d registers, Table 1 says %d", got, w.PaperRegs)
			}
			if p.RegCount != w.PaperRegs {
				t.Errorf(".reg %d != Table 1 %d", p.RegCount, w.PaperRegs)
			}
		})
	}
}

func TestTable1Configurations(t *testing.T) {
	// The paper's Table 1 numbers, verified against the generators.
	want := map[string][4]int{ // CTAs, Thr/CTA, Regs, Conc
		"MatrixMul": {64, 256, 14, 6}, "BlackScholes": {480, 128, 18, 8},
		"DCT8x8": {4096, 64, 22, 8}, "Reduction": {64, 256, 14, 6},
		"VectorAdd": {196, 256, 4, 6}, "BackProp": {4096, 256, 17, 6},
		"BFS": {1954, 512, 9, 3}, "Heartwall": {51, 512, 29, 2},
		"HotSpot": {1849, 256, 22, 3}, "LUD": {15, 32, 19, 6},
		"Gaussian": {2, 512, 8, 3}, "LIB": {64, 64, 22, 8},
		"LPS": {100, 128, 17, 8}, "NN": {168, 169, 14, 8},
		"MUM": {196, 256, 19, 6}, "ScalarProd": {128, 256, 17, 6},
	}
	for _, w := range All() {
		cfg, ok := want[w.Name]
		if !ok {
			t.Errorf("unexpected workload %q", w.Name)
			continue
		}
		got := [4]int{w.GridCTAs, w.ThreadsPerCTA, w.PaperRegs, w.ConcCTAs}
		if got != cfg {
			t.Errorf("%s: config %v, want %v", w.Name, got, cfg)
		}
	}
}

func TestResidentWarpsWithinLimit(t *testing.T) {
	for _, w := range All() {
		if got := w.ResidentWarps(); got > arch.MaxWarpsPerSM {
			t.Errorf("%s: %d resident warps exceeds %d", w.Name, got, arch.MaxWarpsPerSM)
		}
	}
}

func TestAllWorkloadsCompile(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			k, err := w.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if k.ReleasePoints == 0 {
				t.Error("no release points found — lifetime structure missing")
			}
			if _, err := w.CompileBaseline(); err != nil {
				t.Fatalf("CompileBaseline: %v", err)
			}
		})
	}
}

// The end-to-end soundness oracle over the whole suite: baseline,
// virtualized, and GPU-shrink runs must produce identical results.
func TestSuiteFunctionalEquivalence(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			base, err := w.CompileBaseline()
			if err != nil {
				t.Fatalf("CompileBaseline: %v", err)
			}
			want, err := sim.Run(sim.Config{Mode: rename.ModeBaseline}, w.Spec(base))
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			if len(want.Stores) == 0 {
				t.Fatal("baseline stored nothing")
			}
			virt, err := w.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for _, cfg := range []sim.Config{
				{Mode: rename.ModeCompiler, PoisonReleased: true, SelfCheckEvery: 256},
				{Mode: rename.ModeCompiler, PhysRegs: 512, PowerGating: true,
					WakeupLatency: 1, PoisonReleased: true, SelfCheckEvery: 256},
			} {
				got, err := sim.Run(cfg, w.Spec(virt))
				if err != nil {
					t.Fatalf("virtualized run (%d regs): %v", cfg.PhysRegs, err)
				}
				if !reflect.DeepEqual(got.Stores, want.Stores) {
					t.Errorf("results differ under %d-register virtualized run", cfg.PhysRegs)
				}
			}
		})
	}
}

// Register savings must appear across the suite (Fig. 10's premise), and
// VectorAdd must be among the smallest savers.
func TestSuiteRegisterSavings(t *testing.T) {
	reductions := map[string]float64{}
	for _, w := range All() {
		virt, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res, err := sim.Run(sim.Config{Mode: rename.ModeCompiler}, w.Spec(virt))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		reductions[w.Name] = res.AllocationReduction()
	}
	sum := 0.0
	for name, r := range reductions {
		if r < 0 || r > 0.9 {
			t.Errorf("%s: implausible reduction %.2f", name, r)
		}
		sum += r
	}
	avg := sum / float64(len(reductions))
	if avg < 0.05 {
		t.Errorf("average reduction %.3f too small — virtualization ineffective", avg)
	}
	if reductions["VectorAdd"] > avg {
		t.Errorf("VectorAdd reduction %.2f above average %.2f; paper says short kernels save least",
			reductions["VectorAdd"], avg)
	}
}

// Every workload must satisfy the well-formedness contract of
// docs/ISA.md — otherwise its output could differ across register
// management configurations for reasons unrelated to virtualization.
func TestSuiteLintClean(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			issues, err := compiler.Lint(w.Program())
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range issues {
				t.Errorf("%v", i)
			}
		})
	}
}
