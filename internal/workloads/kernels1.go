package workloads

// First half of the suite: MatrixMul, BlackScholes, DCT8x8, Reduction,
// VectorAdd, BackProp, BFS, Heartwall.

// matrixMul: one thread per C element, 16x16 thread tiles, inner-product
// loop over K. Short-lived index temporaries early (Fig. 2's r3), loop
// temporaries with one lifetime per iteration (r0), and a long-lived
// accumulator plus row/col registers (r1).
func matrixMul() *Workload {
	src := `
.kernel matrixmul
.reg 14
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    and  r2, r0, 15
    shr  r3, r0, 4
    shr  r4, r1, c[5]
    and  r5, r1, c[6]
    shl  r6, r4, 4
    iadd r6, r6, r3
    shl  r7, r5, 4
    iadd r7, r7, r2
    imul r8, r6, c[0]
    movi r9, 0
    movi r10, 0
kloop:
    iadd r11, r8, r9
    shl  r11, r11, 2
    iadd r11, r11, c[1]
    ld.global r12, [r11+0]
    imul r11, r9, c[2]
    iadd r11, r11, r7
    shl  r11, r11, 2
    iadd r11, r11, c[3]
    ld.global r13, [r11+0]
    imad r10, r12, r13, r10
    iadd r9, r9, 1
    isetp.lt p0, r9, c[0]
@p0 bra kloop
    imul r11, r6, c[2]
    iadd r11, r11, r7
    shl  r11, r11, 2
    iadd r11, r11, c[4]
    st.global [r11+0], r10
    exit
`
	return &Workload{
		Name: "MatrixMul", Source: src,
		GridCTAs: 64, ThreadsPerCTA: 256, PaperRegs: 14, ConcCTAs: 6,
		SimCTAs: simCTAs(64, 6),
		// c0=K, c1=A, c2=N, c3=B, c4=C, c5=log2 tilesPerRow, c6=mask
		Consts: []uint32{16, 0x0100_0000, 64, 0x0200_0000, 0x0300_0000, 2, 3},
	}
}

// blackScholes: straight-line float-heavy option pricing with SFU
// reciprocals; a long chain of short-lived temporaries and two outputs.
func blackScholes() *Workload {
	src := `
.kernel blackscholes
.reg 18
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r0, r1, c[0], r0
    shl  r0, r0, 2
    iadd r1, r0, c[1]
    ld.global r2, [r1+0]
    iadd r1, r0, c[2]
    ld.global r3, [r1+0]
    iadd r1, r0, c[3]
    ld.global r4, [r1+0]
    and  r2, r2, 0x3fffffff
    and  r3, r3, 0x3fffffff
    and  r4, r4, 0x3fffffff
    or   r3, r3, 0x10000000
    or   r4, r4, 0x10000000
    rcp  r5, r3
    fmul r6, r2, r5
    rcp  r7, r4
    fmul r8, r6, r7
    ffma r9, r8, r8, r6
    fmul r10, r9, c[4]
    rcp  r11, r10
    ffma r12, r11, r8, r9
    fmul r13, r12, r2
    ffma r14, r13, r11, r12
    fmul r15, r14, r6
    fadd r16, r15, r13
    iadd r17, r0, c[5]
    st.global [r17+0], r16
    fmul r5, r16, r9
    fadd r5, r5, r12
    iadd r1, r0, c[6]
    st.global [r1+0], r5
    exit
`
	return &Workload{
		Name: "BlackScholes", Source: src,
		GridCTAs: 480, ThreadsPerCTA: 128, PaperRegs: 18, ConcCTAs: 8,
		SimCTAs: simCTAs(480, 8),
		// c0=threads, c1=S, c2=X, c3=T, c4=scale, c5=call out, c6=put out
		Consts: []uint32{128, 0x0100_0000, 0x0200_0000, 0x0400_0000, 0x3f000000, 0x0300_0000, 0x0500_0000},
	}
}

// dct8x8: each thread transforms eight samples held in registers — a
// wide straight-line kernel where the first-stage registers die midway
// and their ids are recycled for the outputs.
func dct8x8() *Workload {
	src := `
.kernel dct8x8
.reg 22
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r0, r1, c[0], r0
    shl  r1, r0, 5
    iadd r1, r1, c[1]
    ld.global r2, [r1+0]
    ld.global r3, [r1+4]
    ld.global r4, [r1+8]
    ld.global r5, [r1+12]
    ld.global r6, [r1+16]
    ld.global r7, [r1+20]
    ld.global r8, [r1+24]
    ld.global r9, [r1+28]
    iadd r10, r2, r9
    isub r11, r2, r9
    iadd r12, r3, r8
    isub r13, r3, r8
    iadd r14, r4, r7
    isub r15, r4, r7
    iadd r16, r5, r6
    isub r17, r5, r6
    iadd r18, r10, r16
    isub r19, r10, r16
    iadd r20, r12, r14
    isub r21, r12, r14
    iadd r2, r18, r20
    isub r3, r18, r20
    iadd r4, r11, r13
    iadd r5, r15, r17
    iadd r6, r19, r21
    iadd r7, r11, r17
    iadd r8, r13, r15
    iadd r9, r4, r5
    shl  r10, r0, 5
    iadd r10, r10, c[2]
    st.global [r10+0], r2
    st.global [r10+4], r3
    st.global [r10+8], r4
    st.global [r10+12], r5
    st.global [r10+16], r6
    st.global [r10+20], r7
    st.global [r10+24], r8
    st.global [r10+28], r9
    exit
`
	return &Workload{
		Name: "DCT8x8", Source: src,
		GridCTAs: 4096, ThreadsPerCTA: 64, PaperRegs: 22, ConcCTAs: 8,
		SimCTAs: simCTAs(4096, 8),
		Consts:  []uint32{64, 0x0100_0000, 0x0300_0000},
	}
}

// reduction: shared-memory tree reduction with predicated (divergent)
// strides and barriers; thread 0 writes the CTA result.
func reduction() *Workload {
	src := `
.kernel reduction
.reg 14
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imul r2, r1, c[0]
    iadd r3, r2, r0
    shl  r4, r3, 2
    iadd r4, r4, c[1]
    ld.global r5, [r4+0]
    iadd r6, r3, c[2]
    shl  r6, r6, 2
    iadd r6, r6, c[1]
    ld.global r7, [r6+0]
    iadd r5, r5, r7
    shl  r8, r0, 2
    st.shared [r8+0], r5
    bar
    mov  r9, c[3]
sloop:
    isetp.lt p0, r0, r9
@p0 shl  r10, r0, 2
@p0 iadd r11, r0, r9
@p0 shl  r11, r11, 2
@p0 ld.shared r12, [r11+0]
@p0 ld.shared r13, [r10+0]
@p0 iadd r12, r12, r13
@p0 st.shared [r10+0], r12
    bar
    shr  r9, r9, 1
    isetp.gt p1, r9, 0
@p1 bra sloop
    isetp.eq p2, r0, 0
@p2 ld.shared r10, [rz+0]
@p2 shl  r11, r1, 2
@p2 iadd r11, r11, c[4]
@p2 st.global [r11+0], r10
    exit
`
	return &Workload{
		Name: "Reduction", Source: src,
		GridCTAs: 64, ThreadsPerCTA: 256, PaperRegs: 14, ConcCTAs: 6,
		SimCTAs: simCTAs(64, 6),
		// c0=2*threads, c1=in, c2=threads, c3=threads/2, c4=out
		Consts: []uint32{512, 0x0100_0000, 256, 128, 0x0300_0000},
	}
}

// vectorAdd: the four-register streaming kernel — the paper's example of
// an application with little reuse opportunity (short kernel, few
// registers, everything live almost all the time).
func vectorAdd() *Workload {
	src := `
.kernel vectoradd
.reg 4
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r0, r1, c[0], r0
    shl  r0, r0, 2
    iadd r1, r0, c[1]
    ld.global r2, [r1+0]
    iadd r1, r0, c[2]
    ld.global r3, [r1+0]
    iadd r2, r2, r3
    iadd r1, r0, c[3]
    st.global [r1+0], r2
    exit
`
	return &Workload{
		Name: "VectorAdd", Source: src,
		GridCTAs: 196, ThreadsPerCTA: 256, PaperRegs: 4, ConcCTAs: 6,
		SimCTAs: simCTAs(196, 6),
		Consts:  []uint32{256, 0x0100_0000, 0x0200_0000, 0x0300_0000},
	}
}

// backProp: two loop phases (forward accumulate, then weight update).
// The phase-one temporaries die before phase two, giving mid-kernel
// release opportunities; two accumulators live across both phases.
func backProp() *Workload {
	src := `
.kernel backprop
.reg 17
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    movi r4, 0
    movi r5, 0
    movi r6, 0
floop:
    imad r7, r4, c[1], r2
    shl  r7, r7, 2
    iadd r8, r7, c[2]
    ld.global r9, [r8+0]
    imad r5, r9, r9, r5
    iadd r6, r6, r9
    iadd r4, r4, 1
    isetp.lt p0, r4, c[3]
@p0 bra floop
    movi r4, 0
uloop:
    imad r10, r4, c[1], r2
    shl  r10, r10, 2
    iadd r11, r10, c[4]
    ld.global r12, [r11+0]
    imul r13, r12, r5
    iadd r13, r13, r6
    st.global [r11+0], r13
    iadd r4, r4, 1
    isetp.lt p1, r4, c[3]
@p1 bra uloop
    iadd r14, r3, c[5]
    imul r15, r5, r6
    iadd r16, r15, r2
    st.global [r14+0], r16
    exit
`
	return &Workload{
		Name: "BackProp", Source: src,
		GridCTAs: 4096, ThreadsPerCTA: 256, PaperRegs: 17, ConcCTAs: 6,
		SimCTAs: simCTAs(4096, 6),
		// c0=threads, c1=width (must exceed the max global thread id so
		// per-(iteration,thread) weight slots never collide), c2=in,
		// c3=iters, c4=weights, c5=out
		Consts: []uint32{256, 4096, 0x0100_0000, 12, 0x0200_0000, 0x0300_0000},
	}
}

// bfs: frontier check with a guarded early exit (real warp divergence
// reconverging only at warp exit) followed by a degree-dependent
// neighbour-gather loop with lane-varying trip counts.
func bfs() *Workload {
	src := `
.kernel bfs
.reg 9
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r0, r1, c[0], r0
    shl  r1, r0, 2
    iadd r2, r1, c[1]
    ld.global r3, [r2+0]
    and  r3, r3, 1
    isetp.eq p0, r3, 0
@p0 exit
    iadd r4, r1, c[2]
    ld.global r5, [r4+0]
    and  r5, r5, 7
    iadd r5, r5, 1
    movi r6, 0
    movi r8, 0
eloop:
    iadd r7, r6, r5
    and  r7, r7, c[3]
    shl  r7, r7, 2
    iadd r7, r7, c[4]
    ld.global r7, [r7+0]
    iadd r8, r8, r7
    iadd r6, r6, 1
    isetp.lt p1, r6, r5
@p1 bra eloop
    iadd r2, r1, c[5]
    st.global [r2+0], r8
    exit
`
	return &Workload{
		Name: "BFS", Source: src,
		GridCTAs: 1954, ThreadsPerCTA: 512, PaperRegs: 9, ConcCTAs: 3,
		SimCTAs: simCTAs(1954, 3),
		// c0=threads, c1=frontier, c2=edges, c3=node mask, c4=costs, c5=out
		Consts: []uint32{512, 0x0100_0000, 0x0200_0000, 0xfff, 0x0400_0000, 0x0300_0000},
	}
}

// heartwall: the suite's register-heaviest kernel (29 registers): three
// processing stages over a register-resident window, with stage
// boundaries where a batch of registers dies at once — the shape that
// needs several pbr entries and stresses the renaming-table budget.
func heartwall() *Workload {
	src := `
.kernel heartwall
.reg 29
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 4
    iadd r3, r3, c[1]
    ld.global r4, [r3+0]
    ld.global r5, [r3+4]
    ld.global r6, [r3+8]
    ld.global r7, [r3+12]
    shl  r8, r2, 2
    iadd r8, r8, c[2]
    ld.global r9, [r8+0]
    movi r10, 0
    movi r11, 0
    movi r12, 0
sloop:
    iadd r13, r10, r2
    and  r13, r13, c[3]
    shl  r13, r13, 2
    iadd r14, r13, c[4]
    ld.global r15, [r14+0]
    isub r16, r15, r4
    imul r17, r16, r16
    isub r18, r15, r5
    imul r19, r18, r18
    iadd r20, r17, r19
    isub r21, r15, r6
    imul r22, r21, r21
    isub r23, r15, r7
    imul r24, r23, r23
    iadd r25, r22, r24
    iadd r26, r20, r25
    iadd r11, r11, r26
    imad r12, r15, r9, r12
    iadd r10, r10, 1
    isetp.lt p0, r10, c[5]
@p0 bra sloop
    imul r27, r11, r9
    iadd r27, r27, r12
    shl  r28, r2, 2
    iadd r28, r28, c[6]
    st.global [r28+0], r27
    iadd r28, r28, c[7]
    st.global [r28+0], r11
    exit
`
	return &Workload{
		Name: "Heartwall", Source: src,
		GridCTAs: 51, ThreadsPerCTA: 512, PaperRegs: 29, ConcCTAs: 2,
		SimCTAs: simCTAs(51, 2),
		// c0=threads, c1=template, c2=weight, c3=mask, c4=frame, c5=iters,
		// c6=out, c7=out2 offset
		Consts: []uint32{512, 0x0100_0000, 0x0200_0000, 0x1fff, 0x0400_0000, 10, 0x0300_0000, 0x0080_0000},
	}
}
