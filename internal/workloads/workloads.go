// Package workloads provides the 16 synthetic kernels standing in for
// the paper's benchmark suite (Table 1: CUDA SDK, Parboil, Rodinia).
// We cannot run the original CUDA binaries, so each generator reproduces
// the *register-lifetime structure* and memory behaviour that drive the
// paper's results, at the Table 1 configuration (threads/CTA, registers/
// kernel, concurrent CTAs/SM):
//
//   - long-lived registers computed early and consumed at the end
//     (Fig. 2's r1),
//   - loop-body registers with many short value lifetimes (Fig. 2's r0),
//   - short-lived pre/post-loop temporaries (Fig. 2's r3),
//   - divergence (BFS, MUM, Reduction), barriers and shared memory
//     (Reduction, ScalarProd), streaming (VectorAdd), heavy arithmetic
//     (BlackScholes, DCT8x8), stencils (HotSpot, LPS), and dependent
//     pointer-chasing loads that make MUM memory-contention bound.
//
// Grids are scaled down (SimCTAs) so a full 16-benchmark sweep runs in
// seconds; the paper's full grid sizes are retained for reporting.
package workloads

import (
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/sim"
)

// Workload is one benchmark: source assembly plus its Table 1 launch
// configuration.
type Workload struct {
	Name string
	// Source is the kernel assembly.
	Source string
	// GridCTAs / ThreadsPerCTA / PaperRegs / ConcCTAs are the Table 1
	// columns (#CTAs, #Thrds/CTA, #Regs/Kernel, Conc.CTAs/Core).
	GridCTAs      int
	ThreadsPerCTA int
	PaperRegs     int
	ConcCTAs      int
	// SimCTAs is how many CTAs the simulated SM actually runs
	// (min(GridCTAs/16 SMs, 2 x ConcCTAs), at least one).
	SimCTAs int
	// Consts is the kernel's constant bank.
	Consts []uint32
}

// Program parses the kernel source.
func (w *Workload) Program() *isa.Program { return isa.MustParse(w.Source) }

// ResidentWarps is warps/CTA x concurrent CTAs — the renaming-table
// sizing input (§6.2).
func (w *Workload) ResidentWarps() int {
	wpc := (w.ThreadsPerCTA + arch.WarpSize - 1) / arch.WarpSize
	return wpc * w.ConcCTAs
}

// CompileOptions returns the standard compilation options for this
// workload (1 KB renaming table budget).
func (w *Workload) CompileOptions() compiler.Options {
	return compiler.Options{
		TableBytes:    arch.RenameTableBudgetBytes,
		ResidentWarps: w.ResidentWarps(),
	}
}

// Compile compiles the kernel with release metadata.
func (w *Workload) Compile() (*compiler.Kernel, error) {
	return compiler.Compile(w.Program(), w.CompileOptions())
}

// CompileBaseline compiles without metadata (conventional baseline).
func (w *Workload) CompileBaseline() (*compiler.Kernel, error) {
	opts := w.CompileOptions()
	opts.NoFlags = true
	return compiler.Compile(w.Program(), opts)
}

// Spec builds the launch for a compiled kernel.
func (w *Workload) Spec(k *compiler.Kernel) sim.LaunchSpec {
	return sim.LaunchSpec{
		Kernel:        k,
		GridCTAs:      w.SimCTAs * arch.NumSMs,
		ThreadsPerCTA: w.ThreadsPerCTA,
		ConcCTAs:      w.ConcCTAs,
		Consts:        w.Consts,
	}
}

func simCTAs(grid, conc int) int {
	n := grid / arch.NumSMs
	if cap := 2 * conc; n > cap {
		n = cap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// All returns the 16 workloads in the paper's Table 1 order.
func All() []*Workload {
	return []*Workload{
		matrixMul(), blackScholes(), dct8x8(), reduction(),
		vectorAdd(), backProp(), bfs(), heartwall(),
		hotSpot(), lud(), gaussian(), lib(),
		lps(), nn(), mum(), scalarProd(),
	}
}

// ByName looks a workload up; it returns an error for unknown names.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists the workload names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}
