package workloads

import (
	"reflect"
	"testing"

	"regvirt/internal/emu"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
)

// The second oracle: the timing simulator's baseline must agree with the
// independent reference interpreter on every workload. A bug in the
// simulator's functional layer (not just the renaming layer) would have
// to be replicated in emu to slip through.
func TestSimMatchesEmulatorOnSuite(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			base, err := w.CompileBaseline()
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := sim.Run(sim.Config{Mode: rename.ModeBaseline}, w.Spec(base))
			if err != nil {
				t.Fatal(err)
			}
			emuRes, err := emu.Run(base.Prog, emu.GridSpec{
				CTAs: w.SimCTAs, ThreadsPerCTA: w.ThreadsPerCTA, Consts: w.Consts,
			})
			if err != nil {
				t.Fatalf("emu: %v", err)
			}
			if !reflect.DeepEqual(simRes.Stores, emuRes.Stores) {
				t.Errorf("simulator and reference emulator disagree (%d vs %d words)",
					len(simRes.Stores), len(emuRes.Stores))
			}
			if simRes.Instrs != emuRes.Instrs {
				t.Errorf("instruction counts differ: sim %d, emu %d", simRes.Instrs, emuRes.Instrs)
			}
		})
	}
}
