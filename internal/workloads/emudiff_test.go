package workloads

import (
	"fmt"
	"reflect"
	"testing"

	"regvirt/internal/emu"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
)

// The second oracle: the timing simulator must agree with the
// independent reference interpreter on every workload, under every
// register-file backend that shares the baseline's no-metadata
// compilation (the compiler mode's emudiff lives in internal/sim, next
// to its pir/pbr machinery). A bug in a backend's value routing — a
// cache line serving stale data, a demoted register landing in the
// wrong shared-memory slot — breaks functional equivalence here even
// if timing still looks plausible.
func TestSimMatchesEmulatorOnSuite(t *testing.T) {
	backends := []struct {
		name string
		cfg  sim.Config
	}{
		{"baseline", sim.Config{Mode: rename.ModeBaseline}},
		{"regcache", sim.Config{Mode: rename.ModeRegCache, PhysRegs: 512, RFCacheEntries: 8}},
		{"smemspill", sim.Config{Mode: rename.ModeSMemSpill, PhysRegs: 512, SpillRegs: 2}},
	}
	for _, w := range All() {
		w := w
		for _, b := range backends {
			b := b
			t.Run(fmt.Sprintf("%s/%s", w.Name, b.name), func(t *testing.T) {
				base, err := w.CompileBaseline()
				if err != nil {
					t.Fatal(err)
				}
				simRes, err := sim.Run(b.cfg, w.Spec(base))
				if err != nil {
					t.Fatal(err)
				}
				emuRes, err := emu.Run(base.Prog, emu.GridSpec{
					CTAs: w.SimCTAs, ThreadsPerCTA: w.ThreadsPerCTA, Consts: w.Consts,
				})
				if err != nil {
					t.Fatalf("emu: %v", err)
				}
				if !reflect.DeepEqual(simRes.Stores, emuRes.Stores) {
					t.Errorf("simulator and reference emulator disagree (%d vs %d words)",
						len(simRes.Stores), len(emuRes.Stores))
				}
				if simRes.Instrs != emuRes.Instrs {
					t.Errorf("instruction counts differ: sim %d, emu %d", simRes.Instrs, emuRes.Instrs)
				}
			})
		}
	}
}
