package workloads

// Second half of the suite: HotSpot, LUD, Gaussian, LIB, LPS, NN, MUM,
// ScalarProd.

// hotSpot: 2-D five-point stencil iterated in registers. The neighbour
// registers live across the whole update loop; per-iteration deltas are
// short-lived.
func hotSpot() *Workload {
	src := `
.kernel hotspot
.reg 22
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    and  r3, r2, c[1]
    shr  r4, r2, c[2]
    imad r5, r4, c[3], r3
    shl  r5, r5, 2
    iadd r6, r5, c[4]
    ld.global r7, [r6+0]
    ld.global r8, [r6+4]
    ld.global r9, [r6-4]
    iadd r10, r6, c[5]
    ld.global r11, [r10+0]
    isub r10, r6, c[5]
    ld.global r12, [r10+0]
    iadd r13, r5, c[6]
    ld.global r14, [r13+0]
    movi r15, 0
uloop:
    iadd r16, r8, r9
    shl  r17, r7, 1
    isub r16, r16, r17
    iadd r18, r11, r12
    isub r18, r18, r17
    imul r20, r16, c[7]
    imul r21, r18, c[8]
    iadd r16, r20, r21
    iadd r16, r16, r14
    shr  r16, r16, 4
    iadd r7, r7, r16
    iadd r15, r15, 1
    isetp.lt p0, r15, c[9]
@p0 bra uloop
    iadd r19, r5, c[10]
    st.global [r19+0], r7
    exit
`
	return &Workload{
		Name: "HotSpot", Source: src,
		GridCTAs: 1849, ThreadsPerCTA: 256, PaperRegs: 22, ConcCTAs: 3,
		SimCTAs: simCTAs(1849, 3),
		// c0=threads, c1=W-1, c2=log2 W, c3=W, c4=temp grid, c5=row bytes,
		// c6=power grid, c7=kx, c8=ky, c9=iters, c10=out
		Consts: []uint32{256, 63, 6, 64, 0x0100_0000, 256, 0x0200_0000, 3, 5, 8, 0x0300_0000},
	}
}

// lud: small CTAs (one warp); a pivot-normalisation loop with dependent
// SFU reciprocals and two phases (scale row, then update trailing sum).
func lud() *Workload {
	src := `
.kernel lud
.reg 19
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r4, r3, c[1]
    ld.global r5, [r4+0]
    or   r5, r5, 0x3f800000
    rcp  r6, r5
    movi r7, 0
    movi r8, 0
nloop:
    imad r9, r7, c[2], r2
    shl  r9, r9, 2
    iadd r10, r9, c[3]
    ld.global r11, [r10+0]
    fmul r12, r11, r6
    iadd r13, r9, c[4]
    st.global [r13+0], r12
    iadd r14, r11, r5
    imad r8, r14, r14, r8
    iadd r7, r7, 1
    isetp.lt p0, r7, c[5]
@p0 bra nloop
    imul r15, r8, r2
    shl  r16, r2, 2
    iadd r16, r16, c[6]
    iadd r17, r15, r8
    imad r18, r17, r7, r15
    st.global [r16+0], r18
    exit
`
	return &Workload{
		Name: "LUD", Source: src,
		GridCTAs: 15, ThreadsPerCTA: 32, PaperRegs: 19, ConcCTAs: 6,
		SimCTAs: simCTAs(15, 6),
		// c0=threads, c1=diag, c2=width, c3=in, c4=scaled out, c5=iters, c6=out
		Consts: []uint32{32, 0x0100_0000, 256, 0x0200_0000, 0x0400_0000, 14, 0x0300_0000},
	}
}

// gaussian: one elimination step — short, few registers, low concurrency
// (only two CTAs in the whole grid).
func gaussian() *Workload {
	src := `
.kernel gaussian
.reg 8
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r4, r3, c[1]
    ld.global r5, [r4+0]
    and  r6, r2, c[2]
    shl  r6, r6, 2
    iadd r6, r6, c[3]
    ld.global r7, [r6+0]
    imul r7, r7, r5
    isub r5, r5, r7
    iadd r4, r3, c[4]
    st.global [r4+0], r5
    exit
`
	return &Workload{
		Name: "Gaussian", Source: src,
		GridCTAs: 2, ThreadsPerCTA: 512, PaperRegs: 8, ConcCTAs: 3,
		SimCTAs: simCTAs(2, 3),
		// c0=threads, c1=matrix, c2=pivot mask, c3=multipliers, c4=out
		Consts: []uint32{512, 0x0100_0000, 0x1ff, 0x0200_0000, 0x0300_0000},
	}
}

// lib: Monte-Carlo path loop — a register-resident xorshift generator,
// four long-lived accumulators, and predicated accumulation that keeps a
// predicate hot across iterations.
func lib() *Workload {
	src := `
.kernel lib
.reg 22
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    imad r3, r2, c[1], r2
    or   r3, r3, 1
    movi r4, 0
    movi r5, 0
    movi r6, 0
    movi r7, 0
    movi r8, 0
    movi r15, 0
    movi r16, 0
    movi r17, 0
ploop:
    shl  r9, r3, 13
    xor  r3, r3, r9
    shr  r10, r3, 17
    xor  r3, r3, r10
    shl  r11, r3, 5
    xor  r3, r3, r11
    and  r12, r3, 0xffff
    iadd r4, r4, r12
    shr  r13, r3, 16
    and  r13, r13, 0xffff
    iadd r5, r5, r13
    isetp.gt p0, r12, r13
@p0 iadd r6, r6, 1
@!p0 iadd r7, r7, 1
    xor  r18, r12, r13
    shr  r19, r18, 3
    iadd r20, r18, r19
    xor  r15, r15, r20
    and  r21, r20, 255
    iadd r16, r16, r21
    imad r17, r21, r21, r17
    iadd r8, r8, 1
    isetp.lt p1, r8, c[2]
@p1 bra ploop
    shl  r14, r2, 5
    iadd r14, r14, c[3]
    st.global [r14+0], r4
    st.global [r14+4], r5
    st.global [r14+8], r6
    st.global [r14+12], r7
    st.global [r14+16], r15
    st.global [r14+20], r16
    st.global [r14+24], r17
    exit
`
	return &Workload{
		Name: "LIB", Source: src,
		GridCTAs: 64, ThreadsPerCTA: 64, PaperRegs: 22, ConcCTAs: 8,
		SimCTAs: simCTAs(64, 8),
		// c0=threads, c1=seed mult, c2=paths, c3=out
		Consts: []uint32{64, 2654435761, 24, 0x0300_0000},
	}
}

// lps: 3-D Laplace solver — a z-dimension loop of plane loads with a
// register-resident running stencil; plane registers rotate each
// iteration (many medium lifetimes).
func lps() *Workload {
	src := `
.kernel lps
.reg 17
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r4, r3, c[1]
    ld.global r5, [r4+0]
    iadd r6, r4, c[2]
    ld.global r7, [r6+0]
    movi r8, 0
    movi r9, 0
zloop:
    iadd r10, r6, c[2]
    ld.global r11, [r10+0]
    iadd r12, r5, r11
    shl  r13, r7, 1
    isub r12, r12, r13
    imad r9, r12, c[3], r9
    mov  r5, r7
    mov  r7, r11
    mov  r6, r10
    iadd r8, r8, 1
    isetp.lt p0, r8, c[4]
@p0 bra zloop
    iadd r14, r3, c[5]
    iadd r15, r9, r5
    imul r16, r15, c[3]
    st.global [r14+0], r16
    exit
`
	return &Workload{
		Name: "LPS", Source: src,
		GridCTAs: 100, ThreadsPerCTA: 128, PaperRegs: 17, ConcCTAs: 8,
		SimCTAs: simCTAs(100, 8),
		// c0=threads, c1=grid, c2=plane bytes, c3=kz, c4=depth, c5=out
		Consts: []uint32{128, 0x0100_0000, 4096, 3, 12, 0x0300_0000},
	}
}

// nn: k-nearest-neighbour distance: four feature loads, differences and
// a register-resident accumulation — short straight-line kernel.
func nn() *Workload {
	src := `
.kernel nn
.reg 14
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 4
    iadd r3, r3, c[1]
    ld.global r4, [r3+0]
    ld.global r5, [r3+4]
    ld.global r6, [r3+8]
    ld.global r7, [r3+12]
    isub r8, r4, c[2]
    imul r8, r8, r8
    isub r9, r5, c[3]
    imad r8, r9, r9, r8
    isub r10, r6, c[4]
    imad r8, r10, r10, r8
    isub r11, r7, c[5]
    imad r8, r11, r11, r8
    shl  r12, r2, 2
    iadd r12, r12, c[6]
    iadd r13, r8, r2
    st.global [r12+0], r13
    exit
`
	return &Workload{
		Name: "NN", Source: src,
		GridCTAs: 168, ThreadsPerCTA: 169, PaperRegs: 14, ConcCTAs: 8,
		SimCTAs: simCTAs(168, 8),
		// c0=threads, c1=records, c2..c5=query lat/lng..., c6=out
		Consts: []uint32{169, 0x0100_0000, 1000, 2000, 3000, 4000, 0x0300_0000},
	}
}

// mum: dependent pointer-chasing loads (each iteration's address depends
// on the previous load) with a divergent extra lookup — latency- and
// MSHR-bound, the workload GPU-shrink *speeds up* by throttling (§9.2).
func mum() *Workload {
	src := `
.kernel mum
.reg 19
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    mov  r3, r2
    movi r4, 0
    movi r5, 0
    movi r6, 0
chase:
    and  r7, r3, c[1]
    shl  r8, r7, 2
    iadd r8, r8, c[2]
    ld.global r9, [r8+0]
    iadd r5, r5, r9
    and  r10, r9, 1
    isetp.eq p0, r10, 1
@p0 bra extra
    bra cont
extra:
    and  r11, r9, c[3]
    shl  r12, r11, 2
    iadd r12, r12, c[4]
    ld.global r13, [r12+0]
    iadd r6, r6, r13
cont:
    iadd r14, r3, r9
    mov  r3, r14
    iadd r4, r4, 1
    isetp.lt p1, r4, c[5]
@p1 bra chase
    shl  r15, r2, 3
    iadd r16, r15, c[6]
    imul r17, r5, 3
    iadd r18, r17, r6
    st.global [r16+0], r5
    st.global [r16+4], r18
    exit
`
	return &Workload{
		Name: "MUM", Source: src,
		GridCTAs: 196, ThreadsPerCTA: 256, PaperRegs: 19, ConcCTAs: 6,
		SimCTAs: simCTAs(196, 6),
		// c0=threads, c1=suffix mask, c2=suffix array, c3=ref mask,
		// c4=reference, c5=chase len, c6=out
		Consts: []uint32{256, 0x3fff, 0x0100_0000, 0xfff, 0x0200_0000, 16, 0x0300_0000},
	}
}

// scalarProd: per-thread product accumulation over a strided loop, then
// a shared-memory tree reduction — combines the loop and barrier shapes.
func scalarProd() *Workload {
	src := `
.kernel scalarprod
.reg 17
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    movi r3, 0
    movi r4, 0
    movi r16, 0
aloop:
    imad r5, r3, c[0], r2
    shl  r5, r5, 2
    iadd r6, r5, c[1]
    ld.global r7, [r6+0]
    iadd r6, r5, c[2]
    ld.global r8, [r6+0]
    imad r4, r7, r8, r4
    xor  r16, r16, r7
    iadd r3, r3, 1
    isetp.lt p0, r3, c[3]
@p0 bra aloop
    shl  r9, r0, 2
    st.shared [r9+0], r4
    bar
    mov  r10, c[4]
rloop:
    isetp.lt p1, r0, r10
@p1 iadd r11, r0, r10
@p1 shl  r11, r11, 2
@p1 ld.shared r12, [r11+0]
@p1 ld.shared r13, [r9+0]
@p1 iadd r12, r12, r13
@p1 st.shared [r9+0], r12
    bar
    shr  r10, r10, 1
    isetp.gt p2, r10, 0
@p2 bra rloop
    isetp.eq p3, r0, 0
@p3 ld.shared r14, [rz+0]
@p3 shl  r15, r1, 2
@p3 iadd r15, r15, c[5]
@p3 st.global [r15+0], r14
    shl  r11, r2, 2
    iadd r11, r11, c[6]
    st.global [r11+0], r16
    exit
`
	return &Workload{
		Name: "ScalarProd", Source: src,
		GridCTAs: 128, ThreadsPerCTA: 256, PaperRegs: 17, ConcCTAs: 6,
		SimCTAs: simCTAs(128, 6),
		// c0=threads, c1=A, c2=B, c3=iters, c4=threads/2, c5=out, c6=xor out
		Consts: []uint32{256, 0x0100_0000, 0x0200_0000, 8, 128, 0x0300_0000, 0x0400_0000},
	}
}
