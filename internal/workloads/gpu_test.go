package workloads

import (
	"math"
	"testing"

	"regvirt/internal/rename"
	"regvirt/internal/sim"
)

// Device-level validation of the scaling assumption in DESIGN.md: CTAs
// are homogeneous, so a full 16-SM run's allocation reduction must match
// the single-SM measurement the harness uses, and the outputs must be
// exactly the union of per-CTA results.
func TestDeviceMatchesSingleSMScaling(t *testing.T) {
	for _, name := range []string{"MatrixMul", "VectorAdd", "LIB"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			virt, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			spec := w.Spec(virt)
			solo, err := sim.Run(sim.Config{Mode: rename.ModeCompiler, PhysRegs: 512}, spec)
			if err != nil {
				t.Fatal(err)
			}
			device, err := sim.RunGPU(sim.Config{Mode: rename.ModeCompiler, PhysRegs: 512}, spec)
			if err != nil {
				t.Fatal(err)
			}
			// The grid runs in full on the device: 16x the stores.
			if len(device.Stores) < len(solo.Stores) {
				t.Errorf("device stored %d words, single SM %d", len(device.Stores), len(solo.Stores))
			}
			// Homogeneity: allocation reduction within a few points.
			if d := math.Abs(device.AllocationReduction() - solo.AllocationReduction()); d > 0.08 {
				t.Errorf("device reduction %.3f vs single-SM %.3f (delta %.3f)",
					device.AllocationReduction(), solo.AllocationReduction(), d)
			}
			// Device completion within 2x of the single-SM estimate
			// (shared DRAM adds contention but the workload is the same
			// per SM).
			if device.Cycles > solo.Cycles*3 {
				t.Errorf("device cycles %d >> single-SM %d", device.Cycles, solo.Cycles)
			}
		})
	}
}
