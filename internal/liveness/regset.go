package liveness

import (
	"math/bits"
	"strings"

	"regvirt/internal/isa"
)

// RegSet is a bitmap over the 63 architected registers (bit i = r_i).
// RZ is never a member.
type RegSet uint64

// Add returns the set with r added.
func (s RegSet) Add(r isa.RegID) RegSet {
	if r == isa.RZ {
		return s
	}
	return s | 1<<uint(r)
}

// Remove returns the set with r removed.
func (s RegSet) Remove(r isa.RegID) RegSet { return s &^ (1 << uint(r)) }

// Has reports membership.
func (s RegSet) Has(r isa.RegID) bool {
	return r != isa.RZ && s&(1<<uint(r)) != 0
}

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Minus returns s \ t.
func (s RegSet) Minus(t RegSet) RegSet { return s &^ t }

// Len returns the cardinality.
func (s RegSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Regs returns the members in ascending order.
func (s RegSet) Regs() []isa.RegID {
	out := make([]isa.RegID, 0, s.Len())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, isa.RegID(bits.TrailingZeros64(v)))
	}
	return out
}

func (s RegSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Regs() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}
