package liveness

import (
	"testing"

	"regvirt/internal/cfg"
	"regvirt/internal/kernelgen"
)

// Dataflow invariants over random programs.
func TestLivenessInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := kernelgen.Generate(seed, kernelgen.Params{
			Regs: 12, MaxItems: 10, MaxDepth: 3,
		})
		g, err := cfg.Build(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		li := Analyze(g)
		for _, b := range g.Blocks {
			// LiveOut covers the successors' plain live-in sets (the
			// region-forcing addition is interior to each region and is
			// deliberately not propagated into predecessors outside it).
			var union RegSet
			for _, s := range b.Succs {
				union = union.Union(li.PlainLiveIn(s))
			}
			if missing := union.Minus(li.LiveOut[b.ID]); missing != 0 {
				t.Fatalf("seed %d: B%d LiveOut misses %v", seed, b.ID, missing)
			}
			// Point liveness at the block end equals LiveOut.
			if got := li.LiveAfter[b.End-1]; got != li.LiveOut[b.ID] {
				t.Fatalf("seed %d: B%d LiveAfter(end) %v != LiveOut %v", seed, b.ID, got, li.LiveOut[b.ID])
			}
			// Every upward-exposed read is live-in.
			seen := RegSet(0)
			for pc := b.Start; pc < b.End; pc++ {
				in := g.Prog.Instrs[pc]
				for _, r := range in.SrcRegs(nil) {
					if !seen.Has(r) && !li.LiveIn[b.ID].Has(r) {
						t.Fatalf("seed %d: B%d pc %d reads %v not in LiveIn", seed, b.ID, pc, r)
					}
				}
				if d, ok := in.DstReg(); ok && !in.Guard.Guarded() {
					seen = seen.Add(d)
				}
			}
		}
		// Forced registers (live at a reconvergence point) must be live at
		// every point of every block of the region.
		for _, reg := range li.Regions {
			if reg.Reconv < 0 {
				continue
			}
			f := li.PlainLiveIn(reg.Reconv)
			for blk := range reg.Blocks {
				for pc := g.Blocks[blk].Start; pc < g.Blocks[blk].End; pc++ {
					if missing := f.Minus(li.LiveAfter[pc]); missing != 0 {
						t.Fatalf("seed %d: forcing violated at pc %d: %v", seed, pc, missing)
					}
				}
			}
		}
	}
}
