package liveness

import (
	"testing"
	"testing/quick"

	"regvirt/internal/cfg"
	"regvirt/internal/isa"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	g, err := cfg.Build(isa.MustParse(src))
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	return Analyze(g)
}

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(7).Add(3)
	if !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Errorf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	s = s.Remove(3)
	if s.Has(3) || !s.Has(7) {
		t.Errorf("Remove wrong: %v", s)
	}
	if got := s.Add(1).Regs(); len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Errorf("Regs = %v, want [r1 r7]", got)
	}
}

func TestRegSetIgnoresRZ(t *testing.T) {
	var s RegSet
	s = s.Add(isa.RZ)
	if s != 0 || s.Has(isa.RZ) {
		t.Error("RZ must never enter a RegSet")
	}
}

func TestRegSetAlgebra(t *testing.T) {
	f := func(a, b uint64) bool {
		// Mask out bit 63: RZ is not representable in a RegSet.
		x, y := RegSet(a&^(1<<63)), RegSet(b&^(1<<63))
		u := x.Union(y)
		for _, r := range x.Regs() {
			if !u.Has(r) {
				return false
			}
		}
		d := x.Minus(y)
		for _, r := range d.Regs() {
			if y.Has(r) {
				return false
			}
		}
		return u.Len() <= x.Len()+y.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStraightLineLiveness(t *testing.T) {
	li := analyze(t, `
.kernel k
    movi r1, 1
    movi r2, 2
    iadd r3, r1, r2
    st.global [r4+0], r3
    exit
`)
	// After the iadd, r1 and r2 are dead; r3 and r4 live.
	after := li.LiveAfter[2]
	if after.Has(1) || after.Has(2) {
		t.Errorf("r1/r2 should be dead after iadd: %v", after)
	}
	if !after.Has(3) || !after.Has(4) {
		t.Errorf("r3/r4 should be live after iadd: %v", after)
	}
	// Nothing is live after the store (exit follows).
	if got := li.LiveAfter[3]; got != 0 {
		t.Errorf("live after store = %v, want empty", got)
	}
}

func TestRedefinitionEndsLifetime(t *testing.T) {
	li := analyze(t, `
.kernel k
    movi r1, 1
    iadd r2, r1, r1
    movi r1, 5
    st.global [r3+0], r1
    st.global [r3+4], r2
    exit
`)
	// r1's first value dies at the iadd (redefined at pc 2, Fig. 4(a)).
	if li.LiveAfter[1].Has(1) {
		t.Errorf("r1 should be dead between last read and redefinition: %v", li.LiveAfter[1])
	}
	if !li.LiveAfter[2].Has(1) {
		t.Error("r1 should be live after redefinition")
	}
}

const diamondShared = `
.kernel d
    movi r1, 1
    isetp.lt p0, r2, r3
@p0 bra else_bb
    iadd r4, r1, r1
    bra join
else_bb:
    iadd r4, r1, r2
join:
    st.global [r5+0], r4
    exit
`

func TestDivergentRegionDetection(t *testing.T) {
	li := analyze(t, diamondShared)
	if len(li.Regions) != 1 {
		t.Fatalf("got %d regions, want 1", len(li.Regions))
	}
	reg := li.Regions[0]
	joinBlk := li.G.BlockOf[li.G.Prog.Labels["join"]]
	if reg.Reconv != joinBlk {
		t.Errorf("Reconv = %d, want %d", reg.Reconv, joinBlk)
	}
	if len(reg.Blocks) != 2 {
		t.Errorf("region blocks = %v, want the two arms", reg.Blocks)
	}
	for b := range reg.Blocks {
		if !li.Divergent[b] {
			t.Errorf("arm block %d not marked divergent", b)
		}
	}
	if li.Divergent[0] || li.Divergent[joinBlk] {
		t.Error("branch/join blocks must not be divergent")
	}
}

func TestSiblingReadBlocksRelease(t *testing.T) {
	li := analyze(t, diamondShared)
	// r1 is read in both arms: releasing it in either arm is unsafe.
	thenBlk := li.G.BlockOf[2] + 1 // block after the branch block
	_ = thenBlk
	for _, reg := range li.Regions {
		for b := range reg.Blocks {
			if li.Accessed[b].Has(1) && li.SiblingSafe(1, b) {
				t.Errorf("r1 release in arm block %d should be sibling-unsafe", b)
			}
		}
	}
	// r2 is read only in the else arm; releasing it there is sibling-safe.
	elseBlk := li.G.BlockOf[li.G.Prog.Labels["else_bb"]]
	if !li.SiblingSafe(2, elseBlk) {
		t.Error("r2 release in else arm should be sibling-safe")
	}
}

func TestGuardedDefDoesNotKill(t *testing.T) {
	li := analyze(t, `
.kernel k
    movi r1, 1
    isetp.lt p0, r2, r3
@p0 movi r1, 2
    st.global [r4+0], r1
    exit
`)
	// The guarded redefinition is a partial write: lanes where p0 is false
	// still need the original value, so r1 stays live across pc 2.
	if !li.LiveAfter[1].Has(1) {
		t.Error("r1 must stay live across a guarded (partial) redefinition")
	}
}

const loopSrc = `
.kernel l
    movi r1, 0
    movi r2, 0
loop:
    ld.global r3, [r4+0]
    iadd r2, r2, r3
    iadd r1, r1, 1
    isetp.lt p0, r1, 10
@p0 bra loop
    st.global [r5+0], r2
    exit
`

func TestLoopCarriedStaysLive(t *testing.T) {
	li := analyze(t, loopSrc)
	// r2 (accumulator) is loop-carried and read after the loop: live
	// throughout the body.
	for pc := li.G.Prog.Labels["loop"]; pc < len(li.G.Prog.Instrs)-2; pc++ {
		if !li.LiveAfter[pc].Has(2) {
			t.Errorf("r2 dead after pc %d, must stay live through the loop", pc)
		}
	}
}

func TestShortLivedInLoopDies(t *testing.T) {
	li := analyze(t, loopSrc)
	// r3 is loaded and consumed within one iteration (Fig. 4(e)): dead
	// after the first iadd.
	iaddPC := li.G.Prog.Labels["loop"] + 1
	if li.LiveAfter[iaddPC].Has(3) {
		t.Errorf("r3 should be dead after its only read: %v", li.LiveAfter[iaddPC])
	}
	// And releasing it inside the loop body is sibling-safe because loop
	// blocks are mutually reachable through the back edge.
	blk := li.G.BlockOf[iaddPC]
	if !li.SiblingSafe(3, blk) {
		t.Error("r3 release inside loop body should be sibling-safe")
	}
}

func TestLoopBodyIsDivergentRegion(t *testing.T) {
	li := analyze(t, loopSrc)
	// The conditional back edge makes the loop body a divergent region.
	loopBlk := li.G.BlockOf[li.G.Prog.Labels["loop"]]
	if !li.Divergent[loopBlk] {
		t.Error("loop body should be inside a divergent region")
	}
}

func TestUnguardedDefInLoopDoesNotKill(t *testing.T) {
	// r3 written each iteration (unguarded) but read after the loop: lanes
	// that exit early keep older r3 values, so r3 must be live through the
	// body (partial-kill rule for divergent blocks).
	li := analyze(t, `
.kernel k
    movi r1, 0
loop:
    ld.global r3, [r4+0]
    iadd r1, r1, 1
    isetp.lt p0, r1, 10
@p0 bra loop
    st.global [r5+0], r3
    exit
`)
	loopStart := li.G.Prog.Labels["loop"]
	// Before the load in iteration k, the value from iteration k-1 is
	// still needed by already-exited lanes.
	if !li.LiveIn[li.G.BlockOf[loopStart]].Has(3) {
		t.Error("r3 must be live-in to the loop header: exited lanes hold final values")
	}
}

func TestLiveInOfEntryHoldsKernelInputs(t *testing.T) {
	li := analyze(t, diamondShared)
	// r2, r3, r5 are read before any definition: upward-exposed inputs.
	in := li.LiveIn[0]
	for _, r := range []isa.RegID{2, 3, 5} {
		if !in.Has(r) {
			t.Errorf("r%d should be live-in at entry", r)
		}
	}
}

func TestAccessedInRegion(t *testing.T) {
	li := analyze(t, diamondShared)
	reg := li.Regions[0]
	if !li.AccessedInRegion(reg, 1) || !li.AccessedInRegion(reg, 4) {
		t.Error("r1/r4 are accessed in the region")
	}
	if li.AccessedInRegion(reg, 5) {
		t.Error("r5 is only accessed at the join, not in the region")
	}
}

func TestLiveAfterConsistentWithLiveOut(t *testing.T) {
	for _, src := range []string{diamondShared, loopSrc} {
		li := analyze(t, src)
		for _, b := range li.G.Blocks {
			if got := li.LiveAfter[b.End-1]; got != li.LiveOut[b.ID] {
				t.Errorf("LiveAfter(last of B%d) = %v, LiveOut = %v", b.ID, got, li.LiveOut[b.ID])
			}
		}
	}
}
