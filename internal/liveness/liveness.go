// Package liveness computes SIMT-aware register liveness for a kernel CFG
// (paper §4, §6.1). Two GPU-specific rules distinguish it from classic CPU
// liveness:
//
//  1. Partial kills. A guarded definition writes only the lanes where the
//     guard holds, so it never kills. An unguarded definition inside a
//     divergent region (between a conditional branch and its
//     reconvergence point) writes only the currently-active lanes;
//     masked lanes keep their old values until the region reconverges.
//     Those stale values are observable exactly by the reads that are
//     live-in at the reconvergence point — so every register live-in at
//     a region's reconvergence point is forced live throughout the
//     region. Registers consumed entirely inside the region (Fig. 4(e))
//     still die there and remain releasable.
//
//  2. Sibling reads. Warps traverse both sides of a divergent branch
//     sequentially, so a register read on both arms of a branch must not
//     be released on the first-executed arm (Fig. 4(b)/(c)) — the release
//     moves to the reconvergence point. Plain CFG liveness cannot see
//     this because the arms are not connected by edges.
package liveness

import (
	"regvirt/internal/cfg"
	"regvirt/internal/isa"
)

// Region is the divergent region of one conditional branch: the blocks
// reachable from the branch's successors without passing through its
// immediate post-dominator.
type Region struct {
	// Branch is the block ending in the conditional branch.
	Branch int
	// Reconv is the reconvergence block (ipdom), or cfg.VirtualExit when
	// the paths only rejoin at warp exit.
	Reconv int
	// Blocks is the member set (excludes Branch and Reconv).
	Blocks map[int]bool
}

// Info holds the analysis results for one kernel.
type Info struct {
	G *cfg.Graph

	// LiveIn and LiveOut are per-block register liveness with the SIMT
	// region-forcing correction applied (see the package comment).
	LiveIn, LiveOut []RegSet
	// LiveAfter[pc] is the set of registers live immediately after the
	// instruction at pc, SIMT-corrected. A register absent from
	// LiveAfter[pc] is safe to release after pc, subject to SiblingSafe.
	LiveAfter []RegSet
	// plainLiveIn is the classic CFG liveness (guarded defs non-killing,
	// unguarded defs killing) before region forcing.
	plainLiveIn []RegSet
	// force[b] is the union of plain live-in sets of the reconvergence
	// blocks of every region containing block b.
	force []RegSet
	// Divergent[b] reports whether block b lies inside any divergent
	// region.
	Divergent []bool
	// Regions lists one entry per conditional branch.
	Regions []Region
	// Accessed[b] is the set of registers read or written in block b.
	Accessed []RegSet
}

// Analyze runs the analysis over a built CFG.
func Analyze(g *cfg.Graph) *Info {
	info := &Info{G: g}
	info.findRegions()
	info.computeBlockAccess()
	info.solveDataflow()
	info.computeForcing()
	info.computePointLiveness()
	return info
}

// findRegions computes the divergent region of each conditional branch by
// DFS from the branch successors, stopping at the reconvergence block.
func (li *Info) findRegions() {
	g := li.G
	li.Divergent = make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		last := g.Prog.Instrs[b.End-1]
		if last.Op != isa.OpBra || !last.Guard.Guarded() {
			continue
		}
		r := Region{Branch: b.ID, Reconv: g.IPDom[b.ID], Blocks: map[int]bool{}}
		var visit func(int)
		visit = func(x int) {
			if x == r.Reconv || r.Blocks[x] {
				return
			}
			r.Blocks[x] = true
			for _, s := range g.Blocks[x].Succs {
				visit(s)
			}
		}
		for _, s := range b.Succs {
			visit(s)
		}
		// The branch block itself can be re-entered through a back edge
		// (loop bodies include their header); if the DFS reached it, it is
		// part of the region, otherwise it executes fully converged.
		for x := range r.Blocks {
			li.Divergent[x] = true
		}
		li.Regions = append(li.Regions, r)
	}
}

func (li *Info) computeBlockAccess() {
	g := li.G
	li.Accessed = make([]RegSet, len(g.Blocks))
	var scratch []isa.RegID
	for _, b := range g.Blocks {
		var acc RegSet
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Instrs[pc]
			scratch = in.SrcRegs(scratch[:0])
			for _, r := range scratch {
				acc = acc.Add(r)
			}
			if d, ok := in.DstReg(); ok {
				acc = acc.Add(d)
			}
			for _, r := range in.PbrRegs {
				acc = acc.Add(r)
			}
		}
		li.Accessed[b.ID] = acc
	}
}

// kills reports whether the instruction's definition kills its destination
// in the base dataflow: only unguarded defs do (guarded ones write a lane
// subset). Divergence-induced partial writes are handled by region forcing
// rather than here, so in-region value chains still die locally.
func (li *Info) kills(in *isa.Instr) bool {
	return !in.Guard.Guarded()
}

// solveDataflow iterates backward liveness to a fixed point using
// block-level gen (upward-exposed uses) and kill (full defs) sets.
func (li *Info) solveDataflow() {
	g := li.G
	n := len(g.Blocks)
	gen := make([]RegSet, n)
	kill := make([]RegSet, n)
	var scratch []isa.RegID
	for _, b := range g.Blocks {
		var bgen, bkill RegSet
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Prog.Instrs[pc]
			scratch = in.SrcRegs(scratch[:0])
			for _, r := range scratch {
				if !bkill.Has(r) {
					bgen = bgen.Add(r)
				}
			}
			if d, ok := in.DstReg(); ok && li.kills(in) {
				bkill = bkill.Add(d)
			}
		}
		gen[b.ID] = bgen
		kill[b.ID] = bkill
	}
	li.LiveIn = make([]RegSet, n)
	li.LiveOut = make([]RegSet, n)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			var out RegSet
			for _, s := range b.Succs {
				out = out.Union(li.LiveIn[s])
			}
			in := gen[i].Union(out.Minus(kill[i]))
			if out != li.LiveOut[i] || in != li.LiveIn[i] {
				li.LiveOut[i] = out
				li.LiveIn[i] = in
				changed = true
			}
		}
	}
	li.plainLiveIn = append([]RegSet(nil), li.LiveIn...)
}

// computeForcing derives per-block forced-live sets from region
// reconvergence points and folds them into LiveIn/LiveOut.
func (li *Info) computeForcing() {
	li.force = make([]RegSet, len(li.G.Blocks))
	for _, reg := range li.Regions {
		var f RegSet
		if reg.Reconv >= 0 {
			f = li.plainLiveIn[reg.Reconv]
		}
		for b := range reg.Blocks {
			li.force[b] = li.force[b].Union(f)
		}
	}
	for b := range li.G.Blocks {
		li.LiveIn[b] = li.LiveIn[b].Union(li.force[b])
		li.LiveOut[b] = li.LiveOut[b].Union(li.force[b])
	}
}

// computePointLiveness walks each block backward to produce LiveAfter for
// every instruction.
func (li *Info) computePointLiveness() {
	g := li.G
	li.LiveAfter = make([]RegSet, len(g.Prog.Instrs))
	var scratch []isa.RegID
	for _, b := range g.Blocks {
		live := li.LiveOut[b.ID]
		for pc := b.End - 1; pc >= b.Start; pc-- {
			in := g.Prog.Instrs[pc]
			li.LiveAfter[pc] = live.Union(li.force[b.ID])
			if d, ok := in.DstReg(); ok && li.kills(in) {
				live = live.Remove(d)
			}
			scratch = in.SrcRegs(scratch[:0])
			for _, r := range scratch {
				live = live.Add(r)
			}
		}
	}
}

// PlainLiveIn returns the classic (un-forced) live-in set of a block; the
// compiler uses it to compute pbr release sets at reconvergence points.
func (li *Info) PlainLiveIn(b int) RegSet { return li.plainLiveIn[b] }

// ForceAt returns the forced-live set applying to block b.
func (li *Info) ForceAt(b int) RegSet { return li.force[b] }

// SiblingSafe reports whether releasing register r at a point inside
// block x is safe with respect to divergence: for every region containing
// x, no *sibling* block of the region (one not mutually reachable with x
// by region-internal paths) accesses r. Loop bodies remain release-friendly
// because back edges make their blocks mutually reachable; if/else arms do
// not (Fig. 4(b)).
func (li *Info) SiblingSafe(r isa.RegID, x int) bool {
	for _, reg := range li.Regions {
		if !reg.Blocks[x] {
			continue
		}
		reach := li.regionReachable(reg, x)
		for y := range reg.Blocks {
			if y == x || !li.Accessed[y].Has(r) {
				continue
			}
			if !reach[y] && !li.regionReachable(reg, y)[x] {
				return false
			}
		}
	}
	return true
}

// regionReachable returns the set of region blocks reachable from x along
// region-internal edges (not passing through the reconvergence block).
func (li *Info) regionReachable(reg Region, x int) map[int]bool {
	seen := map[int]bool{}
	var visit func(int)
	visit = func(b int) {
		for _, s := range li.G.Blocks[b].Succs {
			if reg.Blocks[s] && !seen[s] {
				seen[s] = true
				visit(s)
			}
		}
	}
	visit(x)
	return seen
}

// AccessedInRegion reports whether r is read or written anywhere in the
// region's member blocks.
func (li *Info) AccessedInRegion(reg Region, r isa.RegID) bool {
	for b := range reg.Blocks {
		if li.Accessed[b].Has(r) {
			return true
		}
	}
	return false
}
