package sim

import (
	"regvirt/internal/arch"
	"regvirt/internal/isa"
)

// tryIssue attempts to issue the next instruction of a warp. It returns
// true when the scheduler slot was consumed (an instruction issued, or a
// metadata instruction occupied the fetch/decode stage).
func (s *SM) tryIssue(w *warp) bool {
	// Pre-process metadata instructions (§7.2). A pir that hits in the
	// release flag cache is skipped for free (the fetch stage probes the
	// cache and bumps the PC); a miss costs this warp's slot to fetch and
	// decode it. A pbr always decodes, performing its releases.
	for {
		in := s.prog.Instrs[w.pc()]
		if in.Op == isa.OpPir {
			if _, hit := s.fcache.Probe(in.PC); hit {
				w.advance()
				continue
			}
			s.res.DecodedPirs++
			s.fcache.Insert(in.PC, in.PirFlags)
			w.advance()
			return true
		}
		if in.Op == isa.OpPbr {
			s.res.DecodedPbrs++
			for _, r := range in.PbrRegs {
				s.release(w, r)
			}
			w.advance()
			return true
		}
		break
	}
	in := s.prog.Instrs[w.pc()]

	// Scoreboard: in-order issue blocks on RAW, WAW and predicate hazards.
	if s.hazard(w, in) {
		s.res.Stalls.Hazard++
		return false
	}
	if d, ok := in.DstReg(); ok && s.needsAlloc(w, d) {
		bank := arch.BankOf(int(d))
		// An instruction whose own pir bits free a register in the target
		// bank is register-neutral there: it bypasses both gates (release
		// precedes allocation within an instruction, so a full bank still
		// serves it, and gating it would block the very releases that
		// refill the bank).
		if !s.releasesInBank(w, in, bank) {
			// GPU-shrink throttling (§8.1): under register pressure the
			// drain CTA gets priority on fresh physical registers.
			// Instructions that write in place or do not write are never
			// gated — they only return registers to the pool.
			if s.table.IssueAllocates() {
				if !s.gov.MayIssue(w.cta.slot, bank, s.file.FreeTotal(), s.file.FreeBanks()) {
					s.allocStalled = true
					return false
				}
			}
			if s.file.FreeInBank(bank) == 0 {
				if s.table.IssueAllocates() {
					s.gov.OnAllocBlocked(w.cta.slot, bank)
				}
				s.allocStalled = true
				s.res.Stalls.Bank++
				return false
			}
		}
	}
	// Structural: memory port and MSHR capacity.
	longMem := in.Op.IsMemory() && in.Space != isa.SpaceShared
	if longMem {
		if !s.mem.canAccept() {
			s.res.Stalls.MemPort++
			return false
		}
		// Fault seam of the memory port: the request is about to be
		// accepted. An injected error fails the run as a memory fault
		// (checked at the end of the cycle) instead of issuing.
		if err := s.injectFault(FaultSiteMemAccept); err != nil {
			s.failMem(err)
			s.res.Stalls.MemPort++
			return false
		}
	}

	s.issue(w, in)
	return true
}

// hazard reports a scoreboard conflict for the next instruction.
func (s *SM) hazard(w *warp, in *isa.Instr) bool {
	for i := 0; i < in.NSrc; i++ {
		if in.Srcs[i].IsReg() && w.busyRegs.Has(in.Srcs[i].Reg) {
			return true
		}
	}
	if d, ok := in.DstReg(); ok && w.busyRegs.Has(d) {
		return true
	}
	if in.Guard.Guarded() && w.busyPreds&(1<<uint(in.Guard.Reg)) != 0 {
		return true
	}
	if in.Op == isa.OpISetp && w.busyPreds&(1<<uint(in.SetPred)) != 0 {
		return true
	}
	return false
}

// needsAlloc reports whether writing r will require a fresh physical
// register.
func (s *SM) needsAlloc(w *warp, r isa.RegID) bool {
	if !s.table.IssueAllocates() {
		return false
	}
	// ModeHWOnly full redefinition frees before reallocating, so a mapped
	// register never needs net-new space; only unmapped ones do. Mapped
	// uses the uncounted peek so stall retries do not inflate the
	// table-access energy.
	return !s.table.Mapped(w.slot, r)
}

// releasesInBank reports whether the instruction's pir bits will free a
// currently-mapped register residing in the given bank.
func (s *SM) releasesInBank(w *warp, in *isa.Instr, bank int) bool {
	for i := 0; i < in.NSrc; i++ {
		if !in.Rel[i] || !in.Srcs[i].IsReg() {
			continue
		}
		r := in.Srcs[i].Reg
		if arch.BankOf(int(r)) == bank && s.table.Mapped(w.slot, r) {
			return true
		}
	}
	return false
}

// release performs a pir/pbr release and updates the balance counter.
func (s *SM) release(w *warp, r isa.RegID) {
	if s.table.Release(w.slot, r) {
		s.gov.OnRelease(w.cta.slot, arch.BankOf(int(r)))
		s.traceMap(w, r, false)
	}
}

// issue executes one real instruction: operands are read (and released),
// results scheduled for writeback, control flow resolved.
func (s *SM) issue(w *warp, in *isa.Instr) {
	s.res.Instrs++
	active := w.activeMask()
	execMask := active
	if in.Guard.Guarded() && in.Op != isa.OpSel {
		execMask &= w.predMask(in.Guard)
	}

	// Operand collection: read sources through the backend, counting
	// bank conflicts among register operands (§7.1: operands in the same
	// bank serialize). Accesses the backend served outside the banked RF
	// (cache hits, shared-memory-resident registers) report Bank -1 and
	// cannot conflict; demoted-register accesses add their latency
	// penalty to the dependent-use path instead.
	var src [isa.MaxSrcOperands]lanes
	var bankUse [arch.NumBanks]int
	renamed := false
	penalty := 0
	for i := 0; i < in.NSrc; i++ {
		op := in.Srcs[i]
		switch op.Kind {
		case isa.OpdReg:
			if op.Reg == isa.RZ {
				continue
			}
			rd, ok := s.table.ReadOperand(w.slot, op.Reg)
			if ok {
				src[i] = *s.table.ReadValue(rd.Phys)
				if rd.Bank >= 0 {
					bankUse[rd.Bank]++
				}
				penalty += rd.Penalty
			}
			renamed = true
		case isa.OpdImm:
			v := uint32(op.Imm)
			for l := range src[i] {
				src[i][l] = v
			}
		case isa.OpdConst:
			var v uint32
			if int(op.CIdx) < len(s.spec.Consts) {
				v = s.spec.Consts[op.CIdx]
			}
			for l := range src[i] {
				src[i][l] = v
			}
		case isa.OpdSpecial:
			src[i] = s.specialValue(w, op.Spec)
		}
	}
	conflicts := 0
	for _, n := range bankUse {
		if n > 1 {
			conflicts += n - 1
		}
	}
	extra := conflicts + penalty
	if renamed && s.table.Renames() {
		extra += s.cfg.RenameLatency
	}

	// Eager release after the operand read (§6.1, pir semantics).
	for i := 0; i < in.NSrc; i++ {
		if in.Rel[i] && in.Srcs[i].IsReg() {
			s.release(w, in.Srcs[i].Reg)
		}
	}

	switch in.Op {
	case isa.OpNop:
		w.advance()
	case isa.OpBra:
		s.execBranch(w, in, active, execMask)
	case isa.OpExit:
		w.advance() // keep stack coherent for partial exits
		if w.exitLanes(execMask) {
			s.warpFinished(w)
		}
	case isa.OpBar:
		w.advance()
		s.barrierArrive(w)
	case isa.OpISetp:
		mask := evalCmp(in.Cmp, src[0], src[1]) & execMask
		w.busyPreds |= 1 << uint(in.SetPred)
		w.inflight++
		s.pushWB(s.cycle+uint64(in.Op.Latency()+extra), writeback{
			w: w, pred: in.SetPred, predVal: mask, mask: execMask,
		})
		w.advance()
	case isa.OpSt:
		s.execStore(w, in, src, execMask)
		w.advance()
	case isa.OpLd:
		s.execLoad(w, in, src, execMask, extra)
		w.advance()
	default:
		// ALU / SFU.
		res := evalALU(in, src, w.predMask(in.Guard)&execMask)
		lat := in.Op.Latency() + extra
		s.scheduleRegWrite(w, in, res, execMask, lat)
		w.advance()
		if in.Op == isa.OpRcp {
			s.demote(w, s.cycle+uint64(lat))
		}
	}
}

// scheduleRegWrite maps the destination (allocating if needed) and queues
// the writeback.
func (s *SM) scheduleRegWrite(w *warp, in *isa.Instr, val lanes, execMask uint32, lat int) {
	d, ok := in.DstReg()
	if !ok {
		return
	}
	fullWrite := !in.Guard.Guarded() && execMask == w.initMask
	if err := s.injectFault(FaultSiteAlloc); err != nil {
		s.failInvariant(w, in.PC, "allocation failed after pre-check (injected)")
		return
	}
	res, allocOK := s.table.PhysForWrite(w.slot, d, fullWrite)
	if !allocOK {
		// The pre-checks in tryIssue guarantee space; a failure here is
		// an invariant violation. Recorded, not panicked: the run fails
		// with full context and the hosting process stays up.
		s.failInvariant(w, in.PC, "allocation failed after pre-check")
		return
	}
	if res.Freed {
		s.gov.OnRelease(w.cta.slot, arch.BankOf(int(d)))
	}
	if res.Allocated {
		s.gov.OnAlloc(w.cta.slot, arch.BankOf(int(d)))
		s.traceMap(w, d, true)
	}
	w.busyRegs = w.busyRegs.Add(d)
	w.inflight++
	s.pushWB(s.cycle+uint64(lat+res.WakeCycles), writeback{
		w: w, reg: d, phys: res.Phys, val: val, mask: execMask, pred: -1, hasReg: true,
	})
}

func (s *SM) pushWB(cycle uint64, wb writeback) {
	if cycle <= s.cycle {
		cycle = s.cycle + 1
	}
	s.wbQueue[cycle] = append(s.wbQueue[cycle], wb)
	s.wbOutstanding++
}

func (s *SM) execBranch(w *warp, in *isa.Instr, active, execMask uint32) {
	taken := execMask
	fall := active &^ taken
	switch {
	case !in.Guard.Guarded() || taken == active:
		if in.Guard.Guarded() {
			s.res.UniformBranches++
		}
		w.jump(in.Target)
	case taken == 0:
		s.res.UniformBranches++
		w.advance()
	default:
		s.res.DivergentBranches++
		fallPC := in.PC + 1
		w.diverge(in.Target, fallPC, in.Reconv, taken, fall)
		if d := len(w.stack); d > s.res.MaxStackDepth {
			s.res.MaxStackDepth = d
		}
	}
}

func (s *SM) execStore(w *warp, in *isa.Instr, src [isa.MaxSrcOperands]lanes, execMask uint32) {
	for l := 0; l < arch.WarpSize; l++ {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		k := s.memLaneKey(w, in, src[0][l], l)
		s.mem.store(k, src[1][l])
	}
	if in.Space != isa.SpaceShared {
		done := s.mem.accept()
		s.pushWB(done, writeback{w: w, pred: -1, memReq: true})
		w.inflight++
	}
}

func (s *SM) execLoad(w *warp, in *isa.Instr, src [isa.MaxSrcOperands]lanes, execMask uint32, extra int) {
	var val lanes
	for l := 0; l < arch.WarpSize; l++ {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		k := s.memLaneKey(w, in, src[0][l], l)
		val[l] = s.mem.load(k)
	}
	d, ok := in.DstReg()
	if !ok {
		return
	}
	fullWrite := !in.Guard.Guarded() && execMask == w.initMask
	if err := s.injectFault(FaultSiteAlloc); err != nil {
		s.failInvariant(w, in.PC, "load allocation failed after pre-check (injected)")
		return
	}
	res, allocOK := s.table.PhysForWrite(w.slot, d, fullWrite)
	if !allocOK {
		s.failInvariant(w, in.PC, "load allocation failed after pre-check")
		return
	}
	if res.Freed {
		s.gov.OnRelease(w.cta.slot, arch.BankOf(int(d)))
	}
	if res.Allocated {
		s.gov.OnAlloc(w.cta.slot, arch.BankOf(int(d)))
		s.traceMap(w, d, true)
	}
	w.busyRegs = w.busyRegs.Add(d)
	w.inflight++
	var done uint64
	if in.Space == isa.SpaceShared {
		done = s.cycle + uint64(arch.SharedMemLatency+extra+res.WakeCycles)
	} else {
		done = s.mem.accept() + uint64(extra+res.WakeCycles)
		s.demote(w, done)
	}
	s.pushWB(done, writeback{
		w: w, reg: d, phys: res.Phys, val: val, mask: execMask, pred: -1,
		hasReg: true, memReq: in.Space != isa.SpaceShared,
	})
}

// memLaneKey builds the functional memory key for one lane's access.
func (s *SM) memLaneKey(w *warp, in *isa.Instr, base uint32, lane int) memKey {
	addr := base + uint32(in.MemOff)
	switch in.Space {
	case isa.SpaceGlobal:
		return memKey{space: isa.SpaceGlobal, addr: addr}
	case isa.SpaceShared:
		return memKey{space: isa.SpaceShared, scope: uint32(w.cta.ctaID), addr: addr}
	default: // spill: per-thread private, scoped by grid CTA and warp
		return memKey{
			space: isa.SpaceSpill,
			scope: uint32(w.cta.ctaID)*64 + uint32(w.idInCTA),
			lane:  uint8(lane),
			addr:  addr,
		}
	}
}
