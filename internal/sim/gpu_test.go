package sim

import (
	"reflect"
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/emu"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
)

func gpuTestKernel(t *testing.T, noFlags bool) *compiler.Kernel {
	t.Helper()
	k, err := compiler.Compile(isa.MustParse(phase1Src), compiler.Options{
		TableBytes: 1024, ResidentWarps: 8, NoFlags: noFlags,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRunGPUExecutesWholeGrid(t *testing.T) {
	k := gpuTestKernel(t, true)
	spec := LaunchSpec{
		Kernel: k, GridCTAs: 48, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x1000, 0x8000},
	}
	res, err := RunGPU(Config{Mode: rename.ModeBaseline}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// All 48 CTAs x 64 threads must have stored.
	if len(res.Stores) != 48*64 {
		t.Fatalf("stored %d words, want %d", len(res.Stores), 48*64)
	}
	if len(res.PerSM) != arch.NumSMs {
		t.Fatalf("PerSM has %d entries", len(res.PerSM))
	}
	// The grid is bigger than one SM's share: multiple SMs must have run.
	active := 0
	for _, sm := range res.PerSM {
		if sm.Instrs > 0 {
			active++
		}
	}
	if active < 8 {
		t.Errorf("only %d SMs executed work", active)
	}
}

func TestRunGPUMatchesEmulator(t *testing.T) {
	k := gpuTestKernel(t, false)
	spec := LaunchSpec{
		Kernel: k, GridCTAs: 40, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x1000, 0x8000},
	}
	got, err := RunGPU(Config{Mode: rename.ModeCompiler, PhysRegs: 512, PoisonReleased: true}, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := emu.Run(k.Prog, emu.GridSpec{CTAs: 40, ThreadsPerCTA: 64, Consts: spec.Consts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Stores, want.Stores) {
		t.Error("whole-GPU run disagrees with the reference emulator")
	}
	if got.AllocationReduction() <= 0 {
		t.Error("no device-level allocation reduction reported")
	}
}

func TestRunGPUSharedDRAMSlowsMemoryBoundGrids(t *testing.T) {
	// A memory-heavy kernel across all SMs must feel the shared-DRAM
	// bucket: device cycles exceed a single SM running 1/16 of the grid.
	k := gpuTestKernel(t, true)
	spec := LaunchSpec{
		Kernel: k, GridCTAs: 16 * 6, ThreadsPerCTA: 128, ConcCTAs: 4,
		Consts: []uint32{128, 0x1000, 0x8000},
	}
	solo, err := Run(Config{Mode: rename.ModeBaseline}, spec) // 6 CTAs on one SM
	if err != nil {
		t.Fatal(err)
	}
	device, err := RunGPU(Config{Mode: rename.ModeBaseline}, spec) // 96 CTAs over 16 SMs
	if err != nil {
		t.Fatal(err)
	}
	if device.Cycles < solo.Cycles {
		t.Errorf("device (%d cycles) finished before a lone SM with the same per-SM load (%d)",
			device.Cycles, solo.Cycles)
	}
	if device.Instrs != 16*solo.Instrs {
		t.Errorf("device instrs %d != 16 x %d", device.Instrs, solo.Instrs)
	}
}

func TestRunGPURejectsUndispatchableCTAs(t *testing.T) {
	// Baseline mode with a register file smaller than one CTA's pinned
	// allocation can never launch: the device must fail loudly.
	k := gpuTestKernel(t, true) // 6 regs x 8 warps = 48 per CTA
	spec := LaunchSpec{
		Kernel: k, GridCTAs: 4, ThreadsPerCTA: 256, ConcCTAs: 1,
		Consts: []uint32{256, 0x1000, 0x8000},
	}
	cfg := Config{Mode: rename.ModeBaseline, PhysRegs: 16, MaxCycles: 100_000}
	if _, err := RunGPU(cfg, spec); err == nil {
		t.Error("undispatchable grid must fail, not hang or drop CTAs")
	}
}
