package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/rename"
)

// hookFiring returns a FaultHook that fails the nth hit of site
// (1-based) with err and passes every other call. Atomic because hooks
// run concurrently from the device engine's compute-phase workers.
func hookFiring(site string, nth int64, err error) func(string) error {
	var count atomic.Int64
	return func(s string) error {
		if s != site {
			return nil
		}
		if count.Add(1) == nth {
			return err
		}
		return nil
	}
}

func TestFaultHookAllocReturnsInvariantError(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{})
	_, err := Run(Config{Mode: rename.ModeCompiler, FaultHook: hookFiring(FaultSiteAlloc, 1, errors.New("boom"))},
		withKernel(saxpySpec(), k))
	if err == nil {
		t.Fatal("Run succeeded, want invariant error")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T (%v), want *InvariantError", err, err)
	}
	if !strings.Contains(ie.Msg, "injected") {
		t.Errorf("Msg %q does not mark the fault as injected", ie.Msg)
	}
	if ie.Warp < 0 || ie.PC < 0 || ie.CTA < 0 {
		t.Errorf("invariant context incomplete: %+v", ie)
	}
}

func TestFaultHookMemAcceptFailsRun(t *testing.T) {
	cause := errors.New("port burned out")
	_, err := Run(Config{Mode: rename.ModeCompiler, FaultHook: hookFiring(FaultSiteMemAccept, 1, cause)},
		withKernel(saxpySpec(), compileFor(t, saxpySrc, compiler.Options{})))
	if err == nil {
		t.Fatal("Run succeeded, want memory fault")
	}
	if !errors.Is(err, cause) {
		t.Errorf("error %v does not wrap the hook's cause", err)
	}
	if !strings.Contains(err.Error(), "memory port fault") {
		t.Errorf("error %v is not labeled as a memory port fault", err)
	}
}

// TestFaultHookPassThroughIsInert pins that a hook which never fires
// changes nothing: same cycles, same stores as no hook at all.
func TestFaultHookPassThroughIsInert(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{})
	bare, err := Run(Config{Mode: rename.ModeCompiler}, withKernel(saxpySpec(), k))
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := Run(Config{Mode: rename.ModeCompiler, FaultHook: func(string) error { return nil }},
		withKernel(saxpySpec(), k))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cycles != hooked.Cycles || len(bare.Stores) != len(hooked.Stores) {
		t.Errorf("pass-through hook changed the run: %d/%d cycles, %d/%d stores",
			bare.Cycles, hooked.Cycles, len(bare.Stores), len(hooked.Stores))
	}
}

// TestLaterAllocFaultCarriesProgressContext fires the fault deep into
// the run so the reported cycle is meaningfully non-zero.
func TestLaterAllocFaultCarriesProgressContext(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{})
	_, err := Run(Config{Mode: rename.ModeCompiler, FaultHook: hookFiring(FaultSiteAlloc, 40, errors.New("boom"))},
		withKernel(saxpySpec(), k))
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T (%v), want *InvariantError", err, err)
	}
	if ie.Cycle == 0 {
		t.Errorf("fault at alloc hit 40 reports cycle 0: %+v", ie)
	}
}

// TestRunGPUPanicInHookIsContained: a panic raised on a compute-phase
// worker goroutine of the parallel device engine must come back as an
// error, never crash the process.
func TestRunGPUPanicInHookIsContained(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{})
	var count atomic.Int64
	cfg := Config{Mode: rename.ModeCompiler, GPUParallel: 8, FaultHook: func(s string) error {
		if s == FaultSiteAlloc && count.Add(1) == 100 {
			panic(fmt.Sprintf("injected panic at %s", s))
		}
		return nil
	}}
	_, err := RunGPU(cfg, withKernel(saxpySpec(), k))
	if err == nil {
		t.Fatal("RunGPU succeeded, want contained panic error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error %v does not report the panic", err)
	}
}

// TestRunGPUSequentialPanicIsContained covers the sequential branch of
// the two-phase engine with the same containment contract.
func TestRunGPUSequentialPanicIsContained(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{})
	fired := false
	cfg := Config{Mode: rename.ModeCompiler, GPUParallel: 1, FaultHook: func(s string) error {
		if s == FaultSiteAlloc && !fired {
			fired = true
			panic("injected panic")
		}
		return nil
	}}
	_, err := RunGPU(cfg, withKernel(saxpySpec(), k))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %v, want contained panic error", err)
	}
}

// TestRunGPUFaultNamesFailingSM: the contained error identifies which
// SM tripped, so a structured 500 can localize the failure.
func TestRunGPUFaultNamesFailingSM(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{})
	_, err := RunGPU(Config{Mode: rename.ModeCompiler, GPUParallel: 4,
		FaultHook: hookFiring(FaultSiteAlloc, 1, errors.New("boom"))},
		withKernel(saxpySpec(), k))
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T (%v), want *InvariantError", err, err)
	}
}

func withKernel(spec LaunchSpec, k *compiler.Kernel) LaunchSpec {
	spec.Kernel = k
	return spec
}
