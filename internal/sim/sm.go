package sim

import (
	"fmt"
	"sort"

	"regvirt/internal/arch"
	"regvirt/internal/flagcache"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
	"regvirt/internal/rename"
	"regvirt/internal/throttle"
)

// ctaState is one resident CTA.
type ctaState struct {
	ctaID     int // grid index
	slot      int // CTA slot on the SM
	warps     []*warp
	liveWarps int
	atBarrier int
}

// writeback is a scheduled result delivery.
type writeback struct {
	w       *warp
	reg     isa.RegID
	phys    regfile.PhysReg
	val     lanes
	mask    uint32
	pred    int8 // destination predicate (isetp), -1 otherwise
	predVal uint32
	memReq  bool // retires a memory request
	hasReg  bool
}

// SM is one streaming multiprocessor executing a launch.
type SM struct {
	cfg  Config
	spec LaunchSpec
	prog *isa.Program

	file   *regfile.File
	table  *rename.Table
	fcache *flagcache.Cache
	gov    *throttle.Governor
	mem    *memSys

	warpsPerCTA int
	ctaSlots    []*ctaState // nil = free
	ready       []*warp
	pendingQ    []*warp

	cycle         uint64
	src           *ctaSource
	doneCTAs      int
	liveCTAs      int
	wbQueue       map[uint64][]writeback
	wbOutstanding int

	res               Result
	residentWarpCyc   uint64
	allocStalled      bool
	lastIssued        *warp
	lastProgress      uint64
	rrIndex           int
	peakResidentWarps int
	residentWarps     int
}

// spillTriggerWindow is how long the SM tolerates zero issue before
// invoking the §8.1 spill fallback.
const spillTriggerWindow = 5000

func newSM(cfg Config, spec LaunchSpec) (*SM, error) {
	if err := validate(&cfg, &spec); err != nil {
		return nil, err
	}
	file, err := regfile.New(regfile.Config{
		NumRegs:         cfg.PhysRegs,
		PowerGating:     cfg.PowerGating,
		WakeupLatency:   cfg.WakeupLatency,
		Policy:          cfg.AllocPolicy,
		PoisonOnRelease: cfg.PoisonReleased,
	})
	if err != nil {
		return nil, err
	}
	table, err := rename.New(rename.Config{
		Mode:     cfg.Mode,
		RegCount: spec.Kernel.Prog.RegCount,
		Exempt:   exemptFor(cfg.Mode, spec.Kernel.Exempt),
		MaxWarps: arch.MaxWarpsPerSM,
	}, file)
	if err != nil {
		return nil, err
	}
	fcache, err := flagcache.New(cfg.FlagCacheEntries)
	if err != nil {
		return nil, err
	}
	wpc := spec.warpsPerCTA()
	gov, err := throttle.New(arch.MaxCTAsPerSM, spec.Kernel.Prog.RegCount, wpc)
	if err != nil {
		return nil, err
	}
	gov.Policy = cfg.ThrottlePolicy
	totalCTAs := spec.GridCTAs / arch.NumSMs
	if totalCTAs < 1 {
		totalCTAs = 1
	}
	s := &SM{
		cfg: cfg, spec: spec, prog: spec.Kernel.Prog,
		file: file, table: table, fcache: fcache, gov: gov,
		mem:         newMemSys(),
		warpsPerCTA: wpc,
		ctaSlots:    make([]*ctaState, spec.ConcCTAs),
		src:         &ctaSource{limit: totalCTAs},
		wbQueue:     map[uint64][]writeback{},
	}
	return s, nil
}

// ctaSource hands out grid CTA ids; in whole-GPU simulations one source
// is shared by every SM (the GigaThread dispatcher).
type ctaSource struct {
	next, limit int
	returned    []int
}

func (c *ctaSource) get() (int, bool) {
	if n := len(c.returned); n > 0 {
		id := c.returned[n-1]
		c.returned = c.returned[:n-1]
		return id, true
	}
	if c.next < c.limit {
		c.next++
		return c.next - 1, true
	}
	return 0, false
}

func (c *ctaSource) putBack(id int) { c.returned = append(c.returned, id) }

func (c *ctaSource) empty() bool { return len(c.returned) == 0 && c.next >= c.limit }

// exemptFor: the exempt count only applies to the compiler mode.
func exemptFor(m rename.Mode, exempt int) int {
	if m == rename.ModeCompiler {
		return exempt
	}
	return 0
}

// finished reports that the SM has no work left.
func (s *SM) finished() bool { return s.src.empty() && s.liveCTAs == 0 }

// stepChecked advances one cycle with the watchdog and invariant checks.
func (s *SM) stepChecked() error {
	if s.cycle >= s.cfg.MaxCycles {
		return fmt.Errorf("sim: exceeded %d cycles (%d CTAs done)", s.cfg.MaxCycles, s.doneCTAs)
	}
	if s.cfg.Cancel != nil && s.cycle%cancelCheckEvery == 0 {
		select {
		case <-s.cfg.Cancel:
			return fmt.Errorf("%w at cycle %d (%d CTAs done)", ErrCancelled, s.cycle, s.doneCTAs)
		default:
		}
	}
	s.step()
	if n := s.cfg.SelfCheckEvery; n > 0 && s.cycle%uint64(n) == 0 {
		if err := s.table.SelfCheck(); err != nil {
			return fmt.Errorf("sim: invariant violation at cycle %d: %w", s.cycle, err)
		}
	}
	if s.cycle-s.lastProgress > deadlockWindow {
		return fmt.Errorf("sim: deadlock at cycle %d (%d CTAs done, %d free regs)",
			s.cycle, s.doneCTAs, s.file.FreeTotal())
	}
	return nil
}

// finalize fills the result after the last cycle.
func (s *SM) finalize() *Result {
	s.res.Cycles = s.cycle
	s.res.Stores = s.mem.globalStores()
	s.res.MemRequests = s.mem.requests
	s.res.RF = s.file.Stats()
	s.res.Rename = s.table.Stats()
	s.res.Flag = s.fcache.Stats()
	s.res.Throttle.Throttles = s.gov.Throttles
	s.res.Throttle.Blocked = s.gov.Blocked
	s.res.PhysRegs = s.cfg.PhysRegs
	if s.cycle > 0 {
		s.res.AvgResidentWarps = float64(s.residentWarpCyc) / float64(s.cycle)
	}
	s.res.PeakLiveRegs = s.res.RF.PeakLive
	s.res.CompilerAllocatedRegs = s.prog.RegCount * s.peakResidentWarps
	return &s.res
}

func (s *SM) run() (*Result, error) {
	s.dispatchCTAs()
	for !s.finished() {
		if err := s.stepChecked(); err != nil {
			return nil, err
		}
	}
	return s.finalize(), nil
}

// step advances one cycle.
func (s *SM) step() {
	s.mem.tick(s.cycle)
	s.applyWritebacks()
	s.restoreSpilled()
	s.promote()
	s.schedule()
	s.file.TickPower()
	s.trace()
	s.residentWarpCyc += uint64(s.residentWarps)
	s.cycle++
}

func (s *SM) applyWritebacks() {
	wbs, ok := s.wbQueue[s.cycle]
	if !ok {
		return
	}
	delete(s.wbQueue, s.cycle)
	for _, wb := range wbs {
		s.wbOutstanding--
		if wb.memReq {
			s.mem.complete()
		}
		w := wb.w
		if wb.hasReg {
			if wb.phys != regfile.Unmapped {
				v := wb.val
				s.file.Write(wb.phys, &v, wb.mask)
			}
			w.busyRegs = w.busyRegs.Remove(wb.reg)
		}
		if wb.pred >= 0 {
			w.preds[wb.pred] = (w.preds[wb.pred] &^ wb.mask) | wb.predVal
			w.busyPreds &^= 1 << uint(wb.pred)
		}
		w.inflight--
	}
}

// promote fills the ready queue from eligible pending warps (two-level
// scheduler, §5: pending warps enter the ready queue when their
// long-latency operation completes and a slot frees up).
func (s *SM) promote() {
	for len(s.ready) < arch.ReadyQueueSize {
		idx := -1
		for i, w := range s.pendingQ {
			if w.state == wPending && w.readyAt <= s.cycle {
				idx = i
				break
			}
		}
		if idx == -1 {
			return
		}
		w := s.pendingQ[idx]
		s.pendingQ = append(s.pendingQ[:idx], s.pendingQ[idx+1:]...)
		w.state = wReady
		s.ready = append(s.ready, w)
	}
}

// demote removes a warp from the ready queue into pending.
func (s *SM) demote(w *warp, readyAt uint64) {
	w.state = wPending
	w.readyAt = readyAt
	for i, r := range s.ready {
		if r == w {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			break
		}
	}
	s.pendingQ = append(s.pendingQ, w)
}

// removeFromReady drops a warp that stopped being schedulable (barrier,
// finish, spill).
func (s *SM) removeFromReady(w *warp) {
	for i, r := range s.ready {
		if r == w {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

// schedule runs the two warp schedulers.
func (s *SM) schedule() {
	s.allocStalled = false
	issuedAny := false
	used := map[*warp]bool{}
	for sched := 0; sched < arch.NumSchedulers; sched++ {
		order := s.pickOrder()
		for _, w := range order {
			if used[w] || w.state != wReady || w.readyAt > s.cycle {
				continue
			}
			if s.tryIssue(w) {
				used[w] = true
				issuedAny = true
				s.lastIssued = w
				if s.cfg.Scheduler == SchedLRR {
					s.rrIndex++
				}
				break
			}
		}
		if len(s.ready) == 0 {
			break
		}
	}
	if issuedAny {
		s.lastProgress = s.cycle
		return
	}
	// Zero-issue cycle caused by register-allocation pressure with a full
	// ready queue: rotate one stalled warp out so pending warps (whose
	// issue may *release* the registers the stalled ones wait for) get
	// scheduler slots. Without this the six-deep ready queue head-of-line
	// blocks under register pressure. Ordinary data-hazard stalls do not
	// rotate — the two-level scheduler keeps its active set.
	if s.allocStalled && len(s.ready) == arch.ReadyQueueSize && s.hasPromotable() {
		w := s.ready[s.rrIndex%len(s.ready)]
		s.demote(w, s.cycle+1)
		s.rrIndex++
	}
	if s.cfg.Mode == rename.ModeCompiler &&
		s.cycle-s.lastProgress > spillTriggerWindow &&
		(s.cycle-s.lastProgress)%spillTriggerWindow == 0 {
		s.spillVictim()
	}
}

// pickOrder returns the ready warps in this cycle's selection order.
func (s *SM) pickOrder() []*warp {
	n := len(s.ready)
	if n == 0 {
		return nil
	}
	order := make([]*warp, 0, n)
	if s.cfg.Scheduler == SchedGTO {
		// Greedy: the last issuer first; then oldest (lowest warp slot).
		rest := make([]*warp, 0, n)
		for _, w := range s.ready {
			if w == s.lastIssued {
				order = append(order, w)
			} else {
				rest = append(rest, w)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].slot < rest[j].slot })
		return append(order, rest...)
	}
	for k := 0; k < n; k++ {
		order = append(order, s.ready[(s.rrIndex+k)%n])
	}
	return order
}

// hasPromotable reports whether any pending warp is eligible to enter the
// ready queue now.
func (s *SM) hasPromotable() bool {
	for _, w := range s.pendingQ {
		if w.state == wPending && w.readyAt <= s.cycle {
			return true
		}
	}
	return false
}

// dispatchCTAs launches CTAs into every free slot.
func (s *SM) dispatchCTAs() {
	for slot := 0; slot < len(s.ctaSlots); slot++ {
		if s.ctaSlots[slot] != nil {
			continue
		}
		if !s.dispatchInto(slot) {
			return
		}
	}
}

// dispatchInto launches the next CTA into one free slot; false when the
// source is drained or registers ran out.
func (s *SM) dispatchInto(slot int) bool {
	{
		id, ok := s.src.get()
		if !ok {
			return false
		}
		cta := &ctaState{ctaID: id, slot: slot}
		launchedAll := true
		for wi := 0; wi < s.warpsPerCTA; wi++ {
			wslot := slot*s.warpsPerCTA + wi
			threads := s.spec.ThreadsPerCTA - wi*arch.WarpSize
			w := newWarp(wslot, cta, wi, threads)
			if !s.table.LaunchWarp(wslot) {
				// Not enough physical registers to pin this warp's
				// registers: roll back and retry when a CTA completes.
				for _, lw := range cta.warps {
					s.releaseWarpRegs(lw)
				}
				launchedAll = false
				break
			}
			pinned := s.table.MappedCount(wslot)
			for r := 0; r < pinned; r++ {
				s.gov.OnAlloc(slot, arch.BankOf(r))
			}
			s.traceLaunchPins(w, pinned)
			cta.warps = append(cta.warps, w)
		}
		if !launchedAll {
			// Not enough registers: hand the CTA back and retry when a
			// resident CTA completes.
			s.src.putBack(id)
			return false
		}
		cta.liveWarps = len(cta.warps)
		s.ctaSlots[slot] = cta
		s.gov.CTALaunched(slot)
		s.liveCTAs++
		s.residentWarps += len(cta.warps)
		if s.residentWarps > s.peakResidentWarps {
			s.peakResidentWarps = s.residentWarps
		}
		for _, w := range cta.warps {
			w.state = wPending
			w.readyAt = s.cycle
			s.pendingQ = append(s.pendingQ, w)
		}
	}
	return true
}

// releaseWarpRegs reclaims every mapping of a warp and updates the
// balance counters.
func (s *SM) releaseWarpRegs(w *warp) {
	for _, r := range s.table.ReleaseWarp(w.slot) {
		s.gov.OnRelease(w.cta.slot, arch.BankOf(int(r)))
	}
}

// warpFinished handles a warp whose SIMT stack drained.
func (s *SM) warpFinished(w *warp) {
	w.state = wFinished
	s.removeFromReady(w)
	cta := w.cta
	if s.cfg.Mode != rename.ModeBaseline {
		// Virtualized modes reclaim at warp exit; the baseline holds
		// everything until the CTA completes (§1).
		s.releaseWarpRegs(w)
		s.traceWarpRelease(w)
	}
	cta.liveWarps--
	s.residentWarps--
	if cta.liveWarps == 0 {
		s.completeCTA(cta)
		return
	}
	// A warp exiting may satisfy a barrier the remaining warps wait at.
	if cta.atBarrier > 0 && cta.atBarrier >= cta.liveWarps {
		cta.atBarrier = 0
		for _, o := range cta.warps {
			if o.state == wBarrier {
				o.state = wPending
				o.readyAt = s.cycle + 1
				s.pendingQ = append(s.pendingQ, o)
			}
		}
	}
}

func (s *SM) completeCTA(cta *ctaState) {
	for _, w := range cta.warps {
		s.releaseWarpRegs(w)
	}
	s.gov.CTACompleted(cta.slot)
	s.ctaSlots[cta.slot] = nil
	s.doneCTAs++
	s.liveCTAs--
	s.lastProgress = s.cycle
	s.dispatchCTAs()
}

// barrierArrive handles a bar instruction.
func (s *SM) barrierArrive(w *warp) {
	cta := w.cta
	cta.atBarrier++
	if cta.atBarrier >= cta.liveWarps {
		// Release everyone.
		cta.atBarrier = 0
		for _, o := range cta.warps {
			if o.state == wBarrier {
				o.state = wPending
				o.readyAt = s.cycle + 1
				s.pendingQ = append(s.pendingQ, o)
			}
		}
		// The arriving warp continues directly.
		w.state = wPending
		w.readyAt = s.cycle + 1
		s.removeFromReady(w)
		s.pendingQ = append(s.pendingQ, w)
		return
	}
	w.state = wBarrier
	s.removeFromReady(w)
}

// spillVictim evacuates one warp's registers to memory (§8.1 fallback):
// the warp holding the most physical registers. Freeing the biggest
// holder lets some other warp make it through its register-demand peak
// and start releasing, which unclogs the pipeline.
func (s *SM) spillVictim() {
	var victim *warp
	best := 0
	for _, cta := range s.ctaSlots {
		if cta == nil {
			continue
		}
		for _, w := range cta.warps {
			if w.state == wFinished || w.state == wSpilled || w.inflight > 0 {
				continue
			}
			if n := s.table.MappedCount(w.slot); n > best {
				best, victim = n, w
			}
		}
	}
	if victim == nil {
		return
	}
	spilled := s.table.SpillWarp(victim.slot)
	if len(spilled) == 0 {
		return
	}
	for _, sr := range spilled {
		s.gov.OnRelease(victim.cta.slot, arch.BankOf(int(sr.Reg)))
		s.mem.requests++ // one coalesced store per architected register
	}
	victim.spillSaved = make([]spilledState, len(spilled))
	for i, sr := range spilled {
		victim.spillSaved[i] = spilledState{reg: sr.Reg, val: sr.Val}
	}
	victim.state = wSpilled
	victim.restoreAfter = s.cycle + 4*uint64(arch.GlobalMemLatency)
	s.removeFromReady(victim)
	for i, p := range s.pendingQ {
		if p == victim {
			s.pendingQ = append(s.pendingQ[:i], s.pendingQ[i+1:]...)
			break
		}
	}
	s.res.Spills++
	s.traceWarpRelease(victim)
	s.lastProgress = s.cycle
}

// restoreSpilled tries to bring spilled warps back.
func (s *SM) restoreSpilled() {
	for _, cta := range s.ctaSlots {
		if cta == nil {
			continue
		}
		for _, w := range cta.warps {
			if w.state != wSpilled || s.cycle < w.restoreAfter {
				continue
			}
			regs := make([]rename.SpilledReg, len(w.spillSaved))
			for i, sv := range w.spillSaved {
				regs[i] = rename.SpilledReg{Reg: sv.reg, Val: sv.val}
			}
			// Restores must not steal back the headroom spilling created:
			// warps outside the drain CTA stay in memory while the drain
			// CTA is still infeasible (§8.1: "while the pending warps'
			// registers are maintained in the memory, the active warps
			// will proceed"), and any restore needs real slack.
			if cta.slot != s.gov.Drain() &&
				s.gov.NeedSpill(s.file.FreeTotal(), s.file.FreeBanks()) {
				continue
			}
			if s.file.FreeTotal() < len(regs)*2 {
				continue
			}
			if !s.table.RestoreWarp(w.slot, regs) {
				continue
			}
			for _, sr := range regs {
				s.gov.OnAlloc(cta.slot, arch.BankOf(int(sr.Reg)))
				s.mem.requests++ // one coalesced load per register
			}
			s.traceRestorePins(w)
			w.spillSaved = nil
			w.state = wPending
			w.readyAt = s.cycle + uint64(arch.GlobalMemLatency)
			s.pendingQ = append(s.pendingQ, w)
		}
	}
}

// trace records per-cycle samples.
func (s *SM) trace() {
	if n := s.cfg.Trace.SampleLiveEvery; n > 0 && s.cycle%uint64(n) == 0 {
		s.res.LiveSamples = append(s.res.LiveSamples, LiveSample{
			Cycle:         s.cycle,
			LiveRegs:      s.file.Live(),
			AllocatedRegs: s.prog.RegCount * s.residentWarps,
		})
	}
}

func (s *SM) tracked(w *warp, r isa.RegID) bool {
	if w.slot != s.cfg.Trace.TrackWarp {
		return false
	}
	for _, tr := range s.cfg.Trace.TrackRegs {
		if tr == r {
			return true
		}
	}
	return false
}

func (s *SM) traceMap(w *warp, r isa.RegID, mapped bool) {
	if s.tracked(w, r) {
		s.res.RegEvents = append(s.res.RegEvents, RegEvent{Cycle: s.cycle, Reg: r, Mapped: mapped})
	}
}

func (s *SM) traceLaunchPins(w *warp, pinned int) {
	for r := 0; r < pinned; r++ {
		s.traceMap(w, isa.RegID(r), true)
	}
}

func (s *SM) traceWarpRelease(w *warp) {
	for _, r := range s.cfg.Trace.TrackRegs {
		if w.slot == s.cfg.Trace.TrackWarp {
			s.res.RegEvents = append(s.res.RegEvents, RegEvent{Cycle: s.cycle, Reg: r, Mapped: false})
		}
	}
}

func (s *SM) traceRestorePins(w *warp) {
	if w.slot != s.cfg.Trace.TrackWarp {
		return
	}
	for _, sv := range w.spillSaved {
		s.traceMap(w, sv.reg, true)
	}
}
