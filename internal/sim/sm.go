package sim

import (
	"errors"
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/flagcache"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
	"regvirt/internal/rename"
	"regvirt/internal/throttle"
)

// The SM pipeline is decomposed across three files:
//
//	sm.go       — the SM state, cycle loop and writeback stage
//	sched.go    — the two-level warp scheduler and the §8.1 spill fallback
//	dispatch.go — CTA dispatch, completion and barriers
//
// Everything in these files touches only SM-private state plus the
// memPort (port.go), which is the sole route to shared memory. That
// boundary is what lets the whole-device engine (gpu.go) run the
// per-SM compute phases concurrently.

// ctaState is one resident CTA.
type ctaState struct {
	ctaID     int // grid index
	slot      int // CTA slot on the SM
	warps     []*warp
	liveWarps int
	atBarrier int
}

// writeback is a scheduled result delivery.
type writeback struct {
	w       *warp
	reg     isa.RegID
	phys    regfile.PhysReg
	val     lanes
	mask    uint32
	pred    int8 // destination predicate (isetp), -1 otherwise
	predVal uint32
	memReq  bool // retires a memory request
	hasReg  bool
}

// SM is one streaming multiprocessor executing a launch.
type SM struct {
	cfg  Config
	spec LaunchSpec
	prog *isa.Program

	file   *regfile.File
	table  rename.Backend
	fcache *flagcache.Cache
	gov    *throttle.Governor
	mem    memPort

	warpsPerCTA int
	ctaSlots    []*ctaState // nil = free
	ready       []*warp
	pendingQ    []*warp

	cycle         uint64
	src           *ctaSource
	doneCTAs      int
	liveCTAs      int
	wbQueue       map[uint64][]writeback
	wbOutstanding int

	// smID is this SM's device index (0 in single-SM runs); fault is a
	// recorded invariant violation or injected fault, checked at the
	// end of every cycle (fault.go).
	smID  int
	fault error

	// deferDispatch is set by the whole-device engine: CTA completion
	// must not reach into the shared ctaSource mid-compute; the engine
	// dispatches for every SM in index order during the commit phase.
	deferDispatch bool

	// prof aliases res.Profile when cfg.Profile is set; nil otherwise.
	// The cycle loop branches on it once per cycle — the entire cost of
	// the feature when off.
	prof *Profile

	res               Result
	residentWarpCyc   uint64
	allocStalled      bool
	lastIssued        *warp
	lastProgress      uint64
	rrIndex           int
	peakResidentWarps int
	residentWarps     int
}

func newSM(cfg Config, spec LaunchSpec) (*SM, error) {
	if err := validate(&cfg, &spec); err != nil {
		return nil, err
	}
	file, err := regfile.New(regfile.Config{
		NumRegs:         cfg.PhysRegs,
		PowerGating:     cfg.PowerGating,
		WakeupLatency:   cfg.WakeupLatency,
		Policy:          cfg.AllocPolicy,
		PoisonOnRelease: cfg.PoisonReleased,
	})
	if err != nil {
		return nil, err
	}
	table, err := rename.NewBackend(rename.Config{
		Mode:              cfg.Mode,
		RegCount:          spec.Kernel.Prog.RegCount,
		Exempt:            exemptFor(cfg.Mode, spec.Kernel.Exempt),
		MaxWarps:          arch.MaxWarpsPerSM,
		CacheEntries:      cfg.RFCacheEntries,
		CacheWriteThrough: cfg.RFCacheWriteThrough,
		SpillRegs:         cfg.SpillRegs,
	}, file)
	if err != nil {
		return nil, err
	}
	fcache, err := flagcache.New(cfg.FlagCacheEntries)
	if err != nil {
		return nil, err
	}
	wpc := spec.warpsPerCTA()
	gov, err := throttle.New(arch.MaxCTAsPerSM, spec.Kernel.Prog.RegCount, wpc)
	if err != nil {
		return nil, err
	}
	gov.Policy = cfg.ThrottlePolicy
	totalCTAs := spec.GridCTAs / arch.NumSMs
	if totalCTAs < 1 {
		totalCTAs = 1
	}
	s := &SM{
		cfg: cfg, spec: spec, prog: spec.Kernel.Prog,
		file: file, table: table, fcache: fcache, gov: gov,
		mem:         newMemSys(),
		warpsPerCTA: wpc,
		ctaSlots:    make([]*ctaState, spec.ConcCTAs),
		src:         &ctaSource{limit: totalCTAs},
		wbQueue:     map[uint64][]writeback{},
	}
	if cfg.Profile {
		s.res.Profile = newProfile()
		s.prof = s.res.Profile
	}
	return s, nil
}

// finished reports that the SM has no work left.
func (s *SM) finished() bool { return s.src.empty() && s.liveCTAs == 0 }

// stepChecked advances one cycle with the watchdog and invariant checks.
func (s *SM) stepChecked() error {
	if s.cycle >= s.cfg.MaxCycles {
		return fmt.Errorf("sim: exceeded %d cycles (%d CTAs done)", s.cfg.MaxCycles, s.doneCTAs)
	}
	if s.cfg.Cancel != nil && s.cycle%cancelCheckEvery == 0 {
		select {
		case <-s.cfg.Cancel:
			return fmt.Errorf("%w at cycle %d (%d CTAs done)", ErrCancelled, s.cycle, s.doneCTAs)
		default:
		}
	}
	s.step()
	if s.fault != nil {
		return s.fault
	}
	if n := s.cfg.SelfCheckEvery; n > 0 && s.cycle%uint64(n) == 0 {
		if err := s.table.SelfCheck(); err != nil {
			return fmt.Errorf("sim: invariant violation at cycle %d: %w", s.cycle, err)
		}
	}
	if s.cycle-s.lastProgress > deadlockWindow {
		return fmt.Errorf("%w at cycle %d (%d CTAs done, %d free regs)",
			ErrDeadlock, s.cycle, s.doneCTAs, s.file.FreeTotal())
	}
	return nil
}

// finalize fills the result after the last cycle.
func (s *SM) finalize() *Result {
	s.res.Cycles = s.cycle
	s.res.Stores = s.mem.globalStores()
	s.res.MemRequests = s.mem.requestCount()
	s.res.RF = s.file.Stats()
	s.res.Rename = s.table.Stats()
	s.res.Flag = s.fcache.Stats()
	s.res.Throttle.Throttles = s.gov.Throttles
	s.res.Throttle.Blocked = s.gov.Blocked
	s.res.PhysRegs = s.cfg.PhysRegs
	if s.cycle > 0 {
		s.res.AvgResidentWarps = float64(s.residentWarpCyc) / float64(s.cycle)
	}
	s.res.PeakLiveRegs = s.res.RF.PeakLive
	s.res.CompilerAllocatedRegs = s.prog.RegCount * s.peakResidentWarps
	return &s.res
}

func (s *SM) run() (*Result, error) {
	s.dispatchCTAs()
	return s.runLoop()
}

// runLoop advances the SM to completion. It is the shared tail of run
// (fresh launch) and Resume (restored from a checkpoint): a resumed SM
// must NOT re-run the initial CTA dispatch, because in an uninterrupted
// run dispatch only happens at launch and at CTA completion — an extra
// dispatch attempt at the resume point could place a CTA earlier than
// the uninterrupted run would and diverge the two.
func (s *SM) runLoop() (*Result, error) {
	for !s.finished() {
		if err := s.stepChecked(); err != nil {
			if s.cfg.CheckpointOnCancel && s.cfg.Checkpoint != nil && errors.Is(err, ErrCancelled) {
				// Cancellation is detected before the cycle's first
				// mutation, so the SM still sits on a clean boundary.
				s.emitCheckpoint()
			}
			return nil, err
		}
		s.maybeCheckpoint()
	}
	return s.finalize(), nil
}

// step advances one cycle. In whole-device mode this is the compute
// phase: it reads shared memory (as of the last commit) through the
// memPort but never mutates shared state directly.
func (s *SM) step() {
	s.mem.tick(s.cycle)
	s.applyWritebacks()
	s.restoreSpilled()
	s.promote()
	if s.prof != nil {
		s.profiledSchedule()
	} else {
		s.schedule()
	}
	s.file.TickPower()
	s.trace()
	s.residentWarpCyc += uint64(s.residentWarps)
	s.cycle++
}

func (s *SM) applyWritebacks() {
	wbs, ok := s.wbQueue[s.cycle]
	if !ok {
		return
	}
	delete(s.wbQueue, s.cycle)
	for _, wb := range wbs {
		s.wbOutstanding--
		if wb.memReq {
			s.mem.complete()
		}
		w := wb.w
		if wb.hasReg {
			if wb.phys != regfile.Unmapped {
				v := wb.val
				s.table.Write(wb.phys, &v, wb.mask)
			}
			w.busyRegs = w.busyRegs.Remove(wb.reg)
		}
		if wb.pred >= 0 {
			w.preds[wb.pred] = (w.preds[wb.pred] &^ wb.mask) | wb.predVal
			w.busyPreds &^= 1 << uint(wb.pred)
		}
		w.inflight--
	}
}

// trace records per-cycle samples.
func (s *SM) trace() {
	if n := s.cfg.Trace.SampleLiveEvery; n > 0 && s.cycle%uint64(n) == 0 {
		s.res.LiveSamples = append(s.res.LiveSamples, LiveSample{
			Cycle:         s.cycle,
			LiveRegs:      s.file.Live(),
			AllocatedRegs: s.prog.RegCount * s.residentWarps,
		})
	}
}

func (s *SM) tracked(w *warp, r isa.RegID) bool {
	if w.slot != s.cfg.Trace.TrackWarp {
		return false
	}
	for _, tr := range s.cfg.Trace.TrackRegs {
		if tr == r {
			return true
		}
	}
	return false
}

func (s *SM) traceMap(w *warp, r isa.RegID, mapped bool) {
	if s.tracked(w, r) {
		s.res.RegEvents = append(s.res.RegEvents, RegEvent{Cycle: s.cycle, Reg: r, Mapped: mapped})
	}
}

func (s *SM) traceLaunchPins(w *warp, pinned int) {
	for r := 0; r < pinned; r++ {
		s.traceMap(w, isa.RegID(r), true)
	}
}

func (s *SM) traceWarpRelease(w *warp) {
	for _, r := range s.cfg.Trace.TrackRegs {
		if w.slot == s.cfg.Trace.TrackWarp {
			s.res.RegEvents = append(s.res.RegEvents, RegEvent{Cycle: s.cycle, Reg: r, Mapped: false})
		}
	}
}

func (s *SM) traceRestorePins(w *warp) {
	if w.slot != s.cfg.Trace.TrackWarp {
		return
	}
	for _, sv := range w.spillSaved {
		s.traceMap(w, sv.reg, true)
	}
}
