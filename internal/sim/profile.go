package sim

import "regvirt/internal/arch"

// Sim-phase profiling (opt-in via Config.Profile): per-SM cycle
// attribution plus a coarse warp-state timeline. The design constraint
// is that profiling must be invisible when off — the hot cycle loop
// pays exactly one nil check (step branches to profiledSchedule only
// when s.prof is set), no allocation, and no change to any counter the
// Result already carries. The determinism tests pin this down: a run
// with Profile on produces byte-identical Cycles/Stores/Stalls to the
// same run with Profile off.
//
// Attribution classifies every cycle by the *first* cause that
// explains why the schedulers did or did not issue, in priority order:
//
//	issued        — at least one warp issued this cycle
//	operand stall — register-allocation pressure: the operand collector
//	                could not claim a destination bank (allocStalled
//	                covers throttle denial and bank exhaustion; a Bank
//	                stall-counter delta covers per-attempt exhaustion)
//	memory stall  — the memory port or MSHRs were full
//	hazard stall  — scoreboard RAW/WAW/predicate hazards
//	commit stall  — nothing ready but results are still in flight
//	idle          — no resident work could make progress
//
// The priority mirrors the pipeline: an issue beats any stall, and
// structural (operand/memory) pressure explains a zero-issue cycle
// better than data hazards, which only matter when the structural path
// was clear.

const (
	// profileSampleEvery is the warp-timeline sampling cadence in
	// cycles. 1024 keeps a 50M-cycle watchdog-bounded run to at most
	// profileMaxSamples samples long before the cap engages on typical
	// benchmark lengths.
	profileSampleEvery = 1024
	// profileMaxSamples caps the timeline so pathological runs cannot
	// grow a Result without bound; overflow is counted, not silently
	// dropped.
	profileMaxSamples = 4096
	// ProfileAbsent marks an unoccupied warp slot in a WarpSample.
	ProfileAbsent = 0xFF
)

// WarpSample is one timeline sample: the state of every warp slot at a
// sampled cycle. States holds warpState values (wReady..wFinished)
// indexed by warp slot, with ProfileAbsent for slots with no resident
// warp.
type WarpSample struct {
	Cycle  uint64
	States []uint8
}

// Profile is the per-SM cycle attribution a profiled run accumulates.
// All fields are exported so encoding/gob round-trips it through
// checkpoints; the jobs layer re-exports an aggregated view on the job
// result.
type Profile struct {
	// Cycle attribution; the six classes partition every simulated
	// cycle, so their sum equals Result.Cycles.
	IssueCycles        uint64
	OperandStallCycles uint64
	MemStallCycles     uint64
	HazardStallCycles  uint64
	CommitStallCycles  uint64
	IdleCycles         uint64

	// WarpIssued counts issued instructions per warp slot.
	WarpIssued []uint64

	// Samples is the warp-state timeline (every profileSampleEvery
	// cycles, capped at profileMaxSamples); SamplesDropped counts
	// samples lost to the cap.
	Samples        []WarpSample
	SamplesDropped uint64
}

func newProfile() *Profile {
	return &Profile{WarpIssued: make([]uint64, arch.MaxWarpsPerSM)}
}

// ProfileStateName names a WarpSample state value for reports and
// timeline exports (the warpState enum itself stays unexported).
func ProfileStateName(s uint8) string {
	if s == ProfileAbsent {
		return "absent"
	}
	switch warpState(s) {
	case wReady:
		return "ready"
	case wPending:
		return "pending"
	case wBarrier:
		return "barrier"
	case wSpilled:
		return "spilled"
	case wFinished:
		return "finished"
	}
	return "unknown"
}

// TotalCycles returns the sum of the attribution classes — equal to
// Result.Cycles for a complete run.
func (p *Profile) TotalCycles() uint64 {
	return p.IssueCycles + p.OperandStallCycles + p.MemStallCycles +
		p.HazardStallCycles + p.CommitStallCycles + p.IdleCycles
}

// copyProfile deep-copies a profile for checkpoint snapshots.
func copyProfile(p *Profile) *Profile {
	if p == nil {
		return nil
	}
	out := *p
	out.WarpIssued = append([]uint64(nil), p.WarpIssued...)
	out.Samples = make([]WarpSample, len(p.Samples))
	for i, smp := range p.Samples {
		out.Samples[i] = WarpSample{Cycle: smp.Cycle, States: append([]uint8(nil), smp.States...)}
	}
	return &out
}

// mergeProfile adds src's counters into dst (whole-device aggregation).
func mergeProfile(dst, src *Profile) {
	dst.IssueCycles += src.IssueCycles
	dst.OperandStallCycles += src.OperandStallCycles
	dst.MemStallCycles += src.MemStallCycles
	dst.HazardStallCycles += src.HazardStallCycles
	dst.CommitStallCycles += src.CommitStallCycles
	dst.IdleCycles += src.IdleCycles
	for i, n := range src.WarpIssued {
		if i < len(dst.WarpIssued) {
			dst.WarpIssued[i] += n
		}
	}
	dst.SamplesDropped += src.SamplesDropped
}

// profiledSchedule wraps schedule with cycle attribution. It reads the
// stall counters the issue stage already maintains (before/after
// deltas) so profiling never adds counter updates of its own to the
// un-profiled path.
func (s *SM) profiledSchedule() {
	pre := s.res.Stalls
	issued := s.schedule()
	p := s.prof
	switch {
	case issued:
		p.IssueCycles++
	case s.allocStalled || s.res.Stalls.Bank > pre.Bank:
		p.OperandStallCycles++
	case s.res.Stalls.MemPort > pre.MemPort:
		p.MemStallCycles++
	case s.res.Stalls.Hazard > pre.Hazard:
		p.HazardStallCycles++
	case s.wbOutstanding > 0:
		p.CommitStallCycles++
	default:
		p.IdleCycles++
	}
	if s.cycle%profileSampleEvery == 0 {
		s.profileSample()
	}
}

// profileSample records one warp-timeline sample.
func (s *SM) profileSample() {
	p := s.prof
	if len(p.Samples) >= profileMaxSamples {
		p.SamplesDropped++
		return
	}
	states := make([]uint8, arch.MaxWarpsPerSM)
	for i := range states {
		states[i] = ProfileAbsent
	}
	for _, cta := range s.ctaSlots {
		if cta == nil {
			continue
		}
		for _, w := range cta.warps {
			if w.slot >= 0 && w.slot < len(states) {
				states[w.slot] = uint8(w.state)
			}
		}
	}
	p.Samples = append(p.Samples, WarpSample{Cycle: s.cycle, States: states})
}
