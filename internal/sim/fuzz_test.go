package sim

import (
	"fmt"
	"reflect"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/kernelgen"
	"regvirt/internal/rename"
)

// Differential fuzzing: random structured kernels must produce
// bit-identical global-memory output under every register-management
// configuration. Released registers are poisoned and the renaming-table
// invariants are checked throughout, so use-after-release, double
// mapping, and leaked registers all surface as hard failures.
func TestFuzzDifferential(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := kernelgen.Generate(seed, kernelgen.Params{
				Regs:     8 + int(seed%10),
				MaxItems: 10,
				MaxDepth: 2 + int(seed%2),
				Barriers: seed%3 == 0,
			})
			spec := LaunchSpec{
				GridCTAs: 16 * 2, ThreadsPerCTA: 64, ConcCTAs: 3,
				Consts: []uint32{64},
			}
			base, err := compiler.Compile(prog, compiler.Options{NoFlags: true})
			if err != nil {
				t.Fatalf("compile baseline: %v", err)
			}
			spec.Kernel = base
			ref, err := Run(Config{Mode: rename.ModeBaseline}, spec)
			if err != nil {
				t.Fatalf("baseline run: %v\n%s", err, prog)
			}
			if len(ref.Stores) == 0 {
				t.Fatal("baseline stored nothing")
			}

			virt, err := compiler.Compile(prog, compiler.Options{TableBytes: 1024, ResidentWarps: 6})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			configs := []struct {
				name   string
				kernel *compiler.Kernel
				cfg    Config
			}{
				{"hw-only", base, Config{Mode: rename.ModeHWOnly}},
				{"virt", virt, Config{Mode: rename.ModeCompiler}},
				{"virt-shrink-gated", virt, Config{
					Mode: rename.ModeCompiler, PhysRegs: 512,
					PowerGating: true, WakeupLatency: 3,
				}},
				{"virt-tiny-file", virt, Config{Mode: rename.ModeCompiler, PhysRegs: 256}},
			}
			for _, c := range configs {
				cfg := c.cfg
				cfg.PoisonReleased = true
				cfg.SelfCheckEvery = 64
				spec.Kernel = c.kernel
				got, err := Run(cfg, spec)
				if err != nil {
					t.Fatalf("%s: %v\n%s", c.name, err, prog)
				}
				if !reflect.DeepEqual(got.Stores, ref.Stores) {
					t.Fatalf("%s: output differs from baseline\n%s", c.name, prog)
				}
			}
		})
	}
}

// The compiler-spill baseline must also survive the fuzzer.
func TestFuzzSpillDifferential(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := kernelgen.Generate(seed, kernelgen.Params{
				Regs: 14, MaxItems: 8, MaxDepth: 2,
			})
			spec := LaunchSpec{
				GridCTAs: 16, ThreadsPerCTA: 32, ConcCTAs: 2,
				Consts: []uint32{32},
			}
			base, err := compiler.Compile(prog, compiler.Options{NoFlags: true})
			if err != nil {
				t.Fatal(err)
			}
			spec.Kernel = base
			ref, err := Run(Config{Mode: rename.ModeBaseline}, spec)
			if err != nil {
				t.Fatalf("baseline: %v\n%s", err, prog)
			}
			sp, err := compiler.SpillTo(prog, 8)
			if err != nil {
				t.Fatalf("SpillTo: %v\n%s", err, prog)
			}
			ks, err := compiler.Compile(sp, compiler.Options{NoFlags: true})
			if err != nil {
				t.Fatal(err)
			}
			spec.Kernel = ks
			got, err := Run(Config{Mode: rename.ModeBaseline}, spec)
			if err != nil {
				t.Fatalf("spilled run: %v\n%s", err, sp)
			}
			if !reflect.DeepEqual(got.Stores, ref.Stores) {
				t.Fatalf("spilled output differs\noriginal:\n%s\nspilled:\n%s", prog, sp)
			}
		})
	}
}

// A compiled kernel shipped through the binary encoding must run
// identically to the in-memory form.
func TestFuzzBinaryShippedKernels(t *testing.T) {
	for seed := int64(200); seed < 212; seed++ {
		prog := kernelgen.Generate(seed, kernelgen.Params{Regs: 10, MaxItems: 8, MaxDepth: 2})
		virt, err := compiler.Compile(prog, compiler.Options{TableBytes: 1024, ResidentWarps: 4})
		if err != nil {
			t.Fatal(err)
		}
		spec := LaunchSpec{
			GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
			Consts: []uint32{64},
		}
		spec.Kernel = virt
		want, err := Run(Config{Mode: rename.ModeCompiler}, spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		words, err := isa.EncodeBinary(virt.Prog)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		decoded, err := isa.DecodeBinary(words)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		shipped := *virt
		shipped.Prog = decoded
		spec.Kernel = &shipped
		got, err := Run(Config{Mode: rename.ModeCompiler, PoisonReleased: true}, spec)
		if err != nil {
			t.Fatalf("seed %d: shipped run: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Stores, want.Stores) {
			t.Fatalf("seed %d: binary-shipped kernel diverged", seed)
		}
	}
}
