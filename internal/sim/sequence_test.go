package sim

import (
	"reflect"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
)

// Phase 1: every thread squares its input element.
const phase1Src = `
.kernel square
.reg 6
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r4, r3, c[1]
    ld.global r5, [r4+0]
    imul r5, r5, r5
    iadd r4, r3, c[2]
    st.global [r4+0], r5
    exit
`

// Phase 2: every thread sums a block of phase 1's output.
const phase2Src = `
.kernel blocksum
.reg 8
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 4
    iadd r3, r3, c[1]
    movi r4, 0
    movi r5, 0
sum4:
    ld.global r6, [r3+0]
    iadd r5, r5, r6
    iadd r3, r3, 4
    iadd r4, r4, 1
    isetp.lt p0, r4, 4
@p0 bra sum4
    shl  r7, r2, 2
    iadd r7, r7, c[2]
    st.global [r7+0], r5
    exit
`

func TestRunSequenceMultiPhase(t *testing.T) {
	k1, err := compiler.Compile(isa.MustParse(phase1Src), compiler.Options{TableBytes: 1024, ResidentWarps: 8})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := compiler.Compile(isa.MustParse(phase2Src), compiler.Options{TableBytes: 1024, ResidentWarps: 8})
	if err != nil {
		t.Fatal(err)
	}
	spec1 := LaunchSpec{
		Kernel: k1, GridCTAs: 16 * 4, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 0x8000}, // in, mid
	}
	spec2 := LaunchSpec{
		Kernel: k2, GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x8000, 0x20000}, // mid, out
	}
	results, err := RunSequence(Config{Mode: rename.ModeCompiler}, spec1, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	// Verify phase 2 actually read phase 1's output: out[i] must equal
	// the sum of squares of in[4i..4i+3].
	final := results[1].Stores
	for gid := uint32(0); gid < 64; gid++ {
		var want uint32
		for j := uint32(0); j < 4; j++ {
			x := memInit(0x1000 + (gid*4+j)*4)
			want += x * x
		}
		if got := final[0x20000+gid*4]; got != want {
			t.Fatalf("out[%d] = %#x, want %#x", gid, got, want)
		}
	}
	// Both kernels' stores visible in the final digest.
	if _, ok := final[0x8000]; !ok {
		t.Error("phase 1 output missing from persistent memory")
	}
}

func TestRunSequenceScratchReset(t *testing.T) {
	// A kernel that writes shared memory then stores a marker; a second
	// identical launch must see shared memory zeroed, not kernel 1's data.
	src := `
.kernel scratch
.reg 5
    s2r  r0, %tid.x
    shl  r1, r0, 2
    ld.shared r2, [r1+0]
    movi r3, 77
    st.shared [r1+0], r3
    iadd r4, r1, c[0]
    st.global [r4+0], r2
    exit
`
	k, err := compiler.Compile(isa.MustParse(src), compiler.Options{NoFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := LaunchSpec{
		Kernel: k, GridCTAs: 16, ThreadsPerCTA: 32, ConcCTAs: 1,
		Consts: []uint32{0x5000},
	}
	spec2 := spec
	spec2.Consts = []uint32{0x6000}
	results, err := RunSequence(Config{Mode: rename.ModeBaseline}, spec, spec2)
	if err != nil {
		t.Fatal(err)
	}
	// Both launches must observe zeroed shared memory.
	for _, base := range []uint32{0x5000, 0x6000} {
		for tid := uint32(0); tid < 32; tid++ {
			if got := results[1].Stores[base+tid*4]; got != 0 {
				t.Fatalf("launch reading shared at base %#x saw stale %d", base, got)
			}
		}
	}
}

func TestRunSequenceEmptyRejected(t *testing.T) {
	if _, err := RunSequence(Config{}); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestRunSequenceEquivalentToSeparateRunsForPhase1(t *testing.T) {
	k1, _ := compiler.Compile(isa.MustParse(phase1Src), compiler.Options{NoFlags: true})
	spec := LaunchSpec{
		Kernel: k1, GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x1000, 0x8000},
	}
	solo, err := Run(Config{Mode: rename.ModeBaseline}, spec)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequence(Config{Mode: rename.ModeBaseline}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Stores, seq[0].Stores) {
		t.Error("single-kernel sequence differs from a plain run")
	}
}

func TestGTOSchedulerEquivalence(t *testing.T) {
	k, err := compiler.Compile(isa.MustParse(phase1Src), compiler.Options{TableBytes: 1024, ResidentWarps: 8})
	if err != nil {
		t.Fatal(err)
	}
	spec := LaunchSpec{
		Kernel: k, GridCTAs: 32, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 0x8000},
	}
	lrr, err := Run(Config{Mode: rename.ModeCompiler, Scheduler: SchedLRR}, spec)
	if err != nil {
		t.Fatal(err)
	}
	gto, err := Run(Config{Mode: rename.ModeCompiler, Scheduler: SchedGTO}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lrr.Stores, gto.Stores) {
		t.Error("scheduler policy changed results")
	}
	if lrr.Instrs != gto.Instrs {
		t.Error("scheduler policy changed instruction count")
	}
}
