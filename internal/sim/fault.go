package sim

import "fmt"

// Fault-injection site names Config.FaultHook is called with. They
// mirror the canonical constants in internal/faultinject — redeclared
// here so the simulator does not depend on the injection machinery
// (the chaos suite pins the two sets together).
const (
	// FaultSiteAlloc fires in the writeback-allocation path, just
	// before the renaming table maps a destination register. A hook
	// error forces the allocation-invariant failure path: the run
	// stops with an *InvariantError carrying cycle/SM/warp context.
	FaultSiteAlloc = "sim.alloc"
	// FaultSiteMemAccept fires when the memory port is about to accept
	// a long-latency request. A hook error aborts the run as a memory
	// fault; a hook that sleeps models a slow memory system.
	FaultSiteMemAccept = "sim.mem.accept"
)

// InvariantError reports a violated simulator invariant — a condition
// the issue-stage pre-checks are supposed to make impossible. It used
// to be a panic; returning it instead keeps a long-lived service
// hosting the simulator alive and gives the caller the cycle/SM/warp
// context to report. The JSON tags are the regvd structured-500 body.
type InvariantError struct {
	Msg   string `json:"msg"`
	Cycle uint64 `json:"cycle"`
	SM    int    `json:"sm"`
	CTA   int    `json:"cta"`
	Warp  int    `json:"warp"`
	PC    int    `json:"pc"`
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant violation: %s (cycle %d, SM %d, CTA %d, warp slot %d, pc %d)",
		e.Msg, e.Cycle, e.SM, e.CTA, e.Warp, e.PC)
}

// injectFault fires the configured fault hook at site (nil hook: no-op).
func (s *SM) injectFault(site string) error {
	if s.cfg.FaultHook == nil {
		return nil
	}
	return s.cfg.FaultHook(site)
}

// failInvariant records an invariant violation with full pipeline
// context. The cycle in progress finishes (SM state is not rewound —
// the run is abandoned, not resumed) and stepChecked returns the
// error, so Run/RunGPU fail instead of panicking the process.
func (s *SM) failInvariant(w *warp, pc int, msg string) {
	if s.fault != nil {
		return
	}
	s.fault = &InvariantError{
		Msg: msg, Cycle: s.cycle, SM: s.smID, CTA: w.cta.ctaID, Warp: w.slot, PC: pc,
	}
}

// failMem records an injected memory-port fault.
func (s *SM) failMem(err error) {
	if s.fault == nil {
		s.fault = fmt.Errorf("sim: memory port fault at cycle %d (SM %d): %w", s.cycle, s.smID, err)
	}
}
