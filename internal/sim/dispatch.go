package sim

import (
	"regvirt/internal/arch"
	"regvirt/internal/rename"
)

// CTA dispatch, completion and barriers. The ctaSource is the only
// piece of shared state this file touches in whole-device runs; the
// deferDispatch flag keeps every access to it inside the engine's
// commit phase (gpu.go), where SMs are served in fixed index order.

// ctaSource hands out grid CTA ids; in whole-GPU simulations one source
// is shared by every SM (the GigaThread dispatcher).
type ctaSource struct {
	next, limit int
	returned    []int
}

func (c *ctaSource) get() (int, bool) {
	if n := len(c.returned); n > 0 {
		id := c.returned[n-1]
		c.returned = c.returned[:n-1]
		return id, true
	}
	if c.next < c.limit {
		c.next++
		return c.next - 1, true
	}
	return 0, false
}

func (c *ctaSource) putBack(id int) { c.returned = append(c.returned, id) }

func (c *ctaSource) empty() bool { return len(c.returned) == 0 && c.next >= c.limit }

// remaining is the true undispatched CTA count: CTAs handed back after
// a failed launch plus CTAs never handed out at all.
func (c *ctaSource) remaining() int { return len(c.returned) + (c.limit - c.next) }

// exemptFor: the exempt count only applies to the compiler mode.
func exemptFor(m rename.Mode, exempt int) int {
	if m == rename.ModeCompiler {
		return exempt
	}
	return 0
}

// dispatchCTAs launches CTAs into every free slot.
func (s *SM) dispatchCTAs() {
	for slot := 0; slot < len(s.ctaSlots); slot++ {
		if s.ctaSlots[slot] != nil {
			continue
		}
		if !s.dispatchInto(slot) {
			return
		}
	}
}

// dispatchInto launches the next CTA into one free slot; false when the
// source is drained or registers ran out.
func (s *SM) dispatchInto(slot int) bool {
	{
		id, ok := s.src.get()
		if !ok {
			return false
		}
		cta := &ctaState{ctaID: id, slot: slot}
		launchedAll := true
		for wi := 0; wi < s.warpsPerCTA; wi++ {
			wslot := slot*s.warpsPerCTA + wi
			threads := s.spec.ThreadsPerCTA - wi*arch.WarpSize
			w := newWarp(wslot, cta, wi, threads)
			if !s.table.LaunchWarp(wslot) {
				// Not enough physical registers to pin this warp's
				// registers: roll back and retry when a CTA completes.
				for _, lw := range cta.warps {
					s.releaseWarpRegs(lw)
				}
				launchedAll = false
				break
			}
			pinned := s.table.MappedCount(wslot)
			for r := 0; r < pinned; r++ {
				s.gov.OnAlloc(slot, arch.BankOf(r))
			}
			s.traceLaunchPins(w, pinned)
			cta.warps = append(cta.warps, w)
		}
		if !launchedAll {
			// Not enough registers: hand the CTA back and retry when a
			// resident CTA completes.
			s.src.putBack(id)
			return false
		}
		cta.liveWarps = len(cta.warps)
		s.ctaSlots[slot] = cta
		s.gov.CTALaunched(slot)
		s.liveCTAs++
		s.residentWarps += len(cta.warps)
		if s.residentWarps > s.peakResidentWarps {
			s.peakResidentWarps = s.residentWarps
		}
		for _, w := range cta.warps {
			w.state = wPending
			w.readyAt = s.cycle
			s.pendingQ = append(s.pendingQ, w)
		}
	}
	return true
}

// releaseWarpRegs reclaims every mapping of a warp and updates the
// balance counters.
func (s *SM) releaseWarpRegs(w *warp) {
	for _, r := range s.table.ReleaseWarp(w.slot) {
		s.gov.OnRelease(w.cta.slot, arch.BankOf(int(r)))
	}
}

// warpFinished handles a warp whose SIMT stack drained.
func (s *SM) warpFinished(w *warp) {
	w.state = wFinished
	s.removeFromReady(w)
	cta := w.cta
	if s.table.ReleasesAtWarpExit() {
		// Virtualized modes reclaim at warp exit; the launch-pinned
		// backends hold everything until the CTA completes (§1).
		s.releaseWarpRegs(w)
		s.traceWarpRelease(w)
	}
	cta.liveWarps--
	s.residentWarps--
	if cta.liveWarps == 0 {
		s.completeCTA(cta)
		return
	}
	// A warp exiting may satisfy a barrier the remaining warps wait at.
	if cta.atBarrier > 0 && cta.atBarrier >= cta.liveWarps {
		cta.atBarrier = 0
		for _, o := range cta.warps {
			if o.state == wBarrier {
				o.state = wPending
				o.readyAt = s.cycle + 1
				s.pendingQ = append(s.pendingQ, o)
			}
		}
	}
}

func (s *SM) completeCTA(cta *ctaState) {
	for _, w := range cta.warps {
		s.releaseWarpRegs(w)
	}
	s.gov.CTACompleted(cta.slot)
	s.ctaSlots[cta.slot] = nil
	s.doneCTAs++
	s.liveCTAs--
	s.lastProgress = s.cycle
	if !s.deferDispatch {
		s.dispatchCTAs()
	}
}

// barrierArrive handles a bar instruction.
func (s *SM) barrierArrive(w *warp) {
	cta := w.cta
	cta.atBarrier++
	if cta.atBarrier >= cta.liveWarps {
		// Release everyone.
		cta.atBarrier = 0
		for _, o := range cta.warps {
			if o.state == wBarrier {
				o.state = wPending
				o.readyAt = s.cycle + 1
				s.pendingQ = append(s.pendingQ, o)
			}
		}
		// The arriving warp continues directly.
		w.state = wPending
		w.readyAt = s.cycle + 1
		s.removeFromReady(w)
		s.pendingQ = append(s.pendingQ, w)
		return
	}
	w.state = wBarrier
	s.removeFromReady(w)
}
