package sim

import (
	"regvirt/internal/arch"
	"regvirt/internal/isa"
)

// memKey addresses the functional memory. Global space is flat and
// shared; shared space is per-CTA; spill space is per warp slot (each
// lane's slice is separated by the lane field).
type memKey struct {
	space isa.MemSpace
	scope uint32 // CTA id for shared, warp slot for spill, 0 for global
	lane  uint8  // spill space is per-lane private
	addr  uint32
}

// memInit is the deterministic synthetic content of global memory: any
// word never written reads as a hash of its address (the shared
// functional specification in arch.SyntheticWord).
func memInit(addr uint32) uint32 { return arch.SyntheticWord(addr) }

// memSys combines functional storage with a latency/contention timing
// model: a bounded number of outstanding requests (MSHRs) and a
// congestion term that grows with occupancy. This coarse model is what
// lets CTA throttling *relieve* memory pressure (§9.2: MUM speeds up
// under GPU-shrink). memSys is the single-SM memPort implementation:
// every effect applies immediately. Whole-GPU runs use phasedPort
// instead, which adds the device-wide DRAM coupling.
type memSys struct {
	data map[memKey]uint32
	// outstanding tracks this SM's in-flight global/spill requests.
	outstanding int
	requests    uint64
	// issuedThisCycle enforces the SM's memory port width.
	issuedThisCycle int
	cycle           uint64
}

func newMemSys() *memSys {
	return &memSys{data: make(map[memKey]uint32)}
}

// tick resets per-cycle port accounting.
func (m *memSys) tick(cycle uint64) {
	m.cycle = cycle
	m.issuedThisCycle = 0
}

// canAccept reports whether a new long-latency request fits this cycle.
func (m *memSys) canAccept() bool {
	return m.outstanding < arch.MaxOutstandingReqs && m.issuedThisCycle < arch.MemIssueWidth
}

// latency returns the completion delay for a new request under the
// current load: base latency plus an MSHR-occupancy congestion term.
func (m *memSys) latency() uint64 {
	return uint64(arch.GlobalMemLatency + 2*m.outstanding)
}

// accept registers a new long-latency request and returns its completion
// cycle. complete must be called at that cycle.
func (m *memSys) accept() uint64 {
	m.outstanding++
	m.requests++
	m.issuedThisCycle++
	return m.cycle + m.latency()
}

// complete retires one request.
func (m *memSys) complete() {
	m.outstanding--
}

// load reads one lane's word.
func (m *memSys) load(k memKey) uint32 {
	if v, ok := m.data[k]; ok {
		return v
	}
	if k.space == isa.SpaceGlobal {
		return memInit(k.addr)
	}
	return 0
}

// store writes one lane's word.
func (m *memSys) store(k memKey, v uint32) { m.data[k] = v }

func (m *memSys) noteRequests(n uint64) { m.requests += n }
func (m *memSys) requestCount() uint64  { return m.requests }

// resetScratch clears the per-launch address spaces (shared and spill)
// at a kernel boundary; global memory persists.
func (m *memSys) resetScratch() {
	for k := range m.data {
		if k.space != isa.SpaceGlobal {
			delete(m.data, k)
		}
	}
	m.outstanding = 0
	m.issuedThisCycle = 0
}

// globalStores extracts the final written global words (the functional
// digest compared across configurations).
func (m *memSys) globalStores() map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for k, v := range m.data {
		if k.space == isa.SpaceGlobal {
			out[k.addr] = v
		}
	}
	return out
}
