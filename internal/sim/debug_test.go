package sim

import (
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
)

// A ScalarProd-shaped pressure kernel: 17 registers, product-accumulate
// loop, shared-memory tree reduction. 48 resident warps x 17 registers
// far exceeds a 512-register file, forcing sustained throttling.
const pressureSrc = `
.kernel pressure
.reg 17
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    movi r3, 0
    movi r4, 0
    movi r16, 0
aloop:
    imad r5, r3, c[0], r2
    shl  r5, r5, 2
    iadd r6, r5, c[1]
    ld.global r7, [r6+0]
    iadd r6, r5, c[2]
    ld.global r8, [r6+0]
    imad r4, r7, r8, r4
    xor  r16, r16, r7
    iadd r3, r3, 1
    isetp.lt p0, r3, c[3]
@p0 bra aloop
    shl  r9, r0, 2
    st.shared [r9+0], r4
    bar
    mov  r10, c[4]
rloop:
    isetp.lt p1, r0, r10
@p1 iadd r11, r0, r10
@p1 shl  r11, r11, 2
@p1 ld.shared r12, [r11+0]
@p1 ld.shared r13, [r9+0]
@p1 iadd r12, r12, r13
@p1 st.shared [r9+0], r12
    bar
    shr  r10, r10, 1
    isetp.gt p2, r10, 0
@p2 bra rloop
    isetp.eq p3, r0, 0
@p3 ld.shared r14, [rz+0]
@p3 shl  r15, r1, 2
@p3 iadd r15, r15, c[5]
@p3 st.global [r15+0], r14
    exit
`

// TestShrinkUnderHeavyPressure is the regression canary for the 512-
// register stall: a 48-warp, 17-register kernel must complete under
// GPU-shrink. On failure it dumps the stuck machine state.
func TestShrinkUnderHeavyPressure(t *testing.T) {
	k, err := compiler.Compile(isa.MustParse(pressureSrc), compiler.Options{
		TableBytes: 1024, ResidentWarps: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := LaunchSpec{
		GridCTAs: 128, ThreadsPerCTA: 256, ConcCTAs: 6,
		Consts: []uint32{256, 0x0100_0000, 0x0200_0000, 8, 128, 0x0300_0000},
	}
	spec.Kernel = k
	cfg := Config{Mode: rename.ModeCompiler, PhysRegs: 512, MaxCycles: 5_000_000}
	sm, err := newSM(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.run()
	if err != nil {
		states := map[warpState]int{}
		mapped := 0
		var pcs []int
		for _, cta := range sm.ctaSlots {
			if cta == nil {
				continue
			}
			for _, wp := range cta.warps {
				states[wp.state]++
				mapped += sm.table.MappedCount(wp.slot)
				if wp.state != wFinished && len(pcs) < 12 {
					pcs = append(pcs, wp.pc())
				}
			}
		}
		banks := make([]int, 4)
		for b := range banks {
			banks[b] = sm.file.FreeInBank(b)
		}
		var stuck string
		if len(pcs) > 0 {
			in := sm.prog.Instrs[pcs[0]]
			stuck = in.String()
			for _, cta := range sm.ctaSlots {
				if cta == nil {
					continue
				}
				for _, wp := range cta.warps {
					if wp.state == wReady {
						stuck += " | hazard=" + boolStr(sm.hazard(wp, sm.prog.Instrs[wp.pc()]))
						d, ok := sm.prog.Instrs[wp.pc()].DstReg()
						if ok {
							stuck += " needsAlloc=" + boolStr(sm.needsAlloc(wp, d))
						}
						stuck += " busy=" + wp.busyRegs.String()
						break
					}
				}
			}
		}
		t.Fatalf("%v\n states=%v free=%d banks=%v mapped=%d spills=%d failedAllocs=%d throttles=%d blocked=%d instrs=%d ready=%d pending=%d wbOut=%d memOut=%d pcs=%v stuck=%q",
			err, states, sm.file.FreeTotal(), banks, mapped, sm.res.Spills,
			sm.file.Stats().FailedAllocs,
			sm.gov.Throttles, sm.gov.Blocked, sm.res.Instrs,
			len(sm.ready), len(sm.pendingQ), sm.wbOutstanding, sm.mem.(*memSys).outstanding, pcs, stuck)
	}
	t.Logf("completed: %d cycles, %d instrs, %d spills, %d throttle blocks",
		res.Cycles, res.Instrs, res.Spills, res.Throttle.Blocked)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
