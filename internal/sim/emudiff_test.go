package sim

import (
	"fmt"
	"reflect"
	"testing"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/emu"
	"regvirt/internal/kernelgen"
	"regvirt/internal/rename"
)

// And on random kernels, including the compiled (metadata-carrying)
// form: emu skips pir/pbr, sim processes them; outputs must agree.
func TestSimMatchesEmulatorOnFuzzKernels(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(500); seed < 500+seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := kernelgen.Generate(seed, kernelgen.Params{
				Regs: 10 + int(seed%8), MaxItems: 10, MaxDepth: 2, Barriers: seed%2 == 0,
			})
			virt, err := compiler.Compile(prog, compiler.Options{TableBytes: 1024, ResidentWarps: 8})
			if err != nil {
				t.Fatal(err)
			}
			spec := LaunchSpec{
				GridCTAs: arch.NumSMs * 3, ThreadsPerCTA: 96, ConcCTAs: 3,
				Consts: []uint32{96},
			}
			spec.Kernel = virt
			simRes, err := Run(Config{Mode: rename.ModeCompiler, PhysRegs: 512, PoisonReleased: true}, spec)
			if err != nil {
				t.Fatalf("sim: %v\n%s", err, virt.Prog)
			}
			emuRes, err := emu.Run(virt.Prog, emu.GridSpec{
				CTAs: 3, ThreadsPerCTA: 96, Consts: []uint32{96},
			})
			if err != nil {
				t.Fatalf("emu: %v\n%s", err, virt.Prog)
			}
			if !reflect.DeepEqual(simRes.Stores, emuRes.Stores) {
				t.Fatalf("sim and emu disagree\n%s", virt.Prog)
			}
		})
	}
}
