package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// The profiler's contract has two halves: when off it must not exist
// (the unprofiled result is byte-identical whether the feature is
// compiled in or not — trivially true — and a profiled run must not
// disturb the simulated outcome), and when on its attribution must
// partition the run's cycles exactly and survive checkpoint/resume
// byte-for-byte like every other Result field.

// stripProfile clears the Profile field so profiled and unprofiled
// results can be compared on the simulated outcome alone.
func stripProfile(t *testing.T, res *Result) []byte {
	t.Helper()
	cp := copyResult(*res)
	cp.Profile = nil
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProfileDoesNotPerturbSimulation(t *testing.T) {
	for _, w := range gpuDetWorkloads() {
		for _, m := range detModes() {
			t.Run(fmt.Sprintf("%s/%s", w.name, m.name), func(t *testing.T) {
				spec := gpuDetSpec(t, w, m.mode)
				cfg := m.apply(Config{Mode: m.mode, PhysRegs: 512, MaxCycles: 2_000_000})

				ref, err := Run(cfg, spec)
				if err != nil {
					t.Fatal(err)
				}
				pcfg := cfg
				pcfg.Profile = true
				prof, err := Run(pcfg, spec)
				if err != nil {
					t.Fatal(err)
				}

				if ref.Profile != nil {
					t.Fatal("unprofiled run grew a profile")
				}
				if prof.Profile == nil {
					t.Fatal("profiled run has no profile")
				}
				if got, want := stripProfile(t, prof), stripProfile(t, ref); !bytes.Equal(got, want) {
					t.Fatalf("profiling perturbed the simulated result:\nprofiled:   %s\nunprofiled: %s", got, want)
				}

				// The six attribution classes partition every cycle.
				p := prof.Profile
				if p.TotalCycles() != prof.Cycles {
					t.Fatalf("attribution covers %d of %d cycles (%+v)", p.TotalCycles(), prof.Cycles, p)
				}
				if p.IssueCycles == 0 {
					t.Fatal("run issued on zero cycles")
				}
				var issued uint64
				for _, n := range p.WarpIssued {
					issued += n
				}
				if issued == 0 {
					t.Fatal("per-warp issue counts all zero")
				}
				if len(p.Samples) == 0 {
					t.Fatal("no warp-timeline samples")
				}
				for _, smp := range p.Samples {
					for slot, st := range smp.States {
						if st != ProfileAbsent && st > uint8(wFinished) {
							t.Fatalf("sample at cycle %d slot %d has invalid state %d", smp.Cycle, slot, st)
						}
					}
				}
			})
		}
	}
}

func TestProfileResumeMatchesUninterrupted(t *testing.T) {
	w := gpuDetWorkloads()[0]
	for _, m := range detModes() {
		t.Run(m.name, func(t *testing.T) {
			spec := gpuDetSpec(t, w, m.mode)
			cfg := m.apply(Config{Mode: m.mode, PhysRegs: 512, MaxCycles: 2_000_000, Profile: true})
			ref := runJSON(t, cfg, spec)

			var cks []*Checkpoint
			ckCfg := cfg
			ckCfg.CheckpointEvery = 64
			ckCfg.Checkpoint = func(c *Checkpoint) { cks = append(cks, c) }
			observed := runJSON(t, ckCfg, spec)
			if !bytes.Equal(ref, observed) {
				t.Fatal("checkpointing perturbed the profiled run")
			}
			if len(cks) == 0 {
				t.Fatal("no checkpoints")
			}
			// The profile accumulator rides the snapshot: a resume from
			// any point reproduces the full-run attribution exactly.
			for _, i := range []int{0, len(cks) / 2, len(cks) - 1} {
				got := resumeJSON(t, cfg, spec, gobRoundTrip(t, cks[i]))
				if !bytes.Equal(ref, got) {
					t.Errorf("profiled resume from checkpoint %d (cycle %d) diverges", i, cks[i].Cycle)
				}
			}

			// An unprofiled resume of a profiled checkpoint drops the
			// profile and matches the unprofiled reference: profiling can
			// be toggled across a restart without corrupting results.
			plain := cfg
			plain.Profile = false
			plainRef := runJSON(t, plain, spec)
			got := resumeJSON(t, plain, spec, gobRoundTrip(t, cks[len(cks)/2]))
			if !bytes.Equal(plainRef, got) {
				t.Error("unprofiled resume of a profiled checkpoint diverges from the unprofiled run")
			}
		})
	}
}

func TestProfileGPUAggregates(t *testing.T) {
	w := gpuDetWorkloads()[0]
	m := detModes()[0]
	spec := gpuDetSpec(t, w, m.mode)
	cfg := m.apply(Config{Mode: m.mode, PhysRegs: 512, MaxCycles: 2_000_000, Profile: true})

	res, err := RunGPU(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("device run has no aggregate profile")
	}
	var perSM uint64
	for i, r := range res.PerSM {
		if r.Profile == nil {
			t.Fatalf("SM %d has no profile", i)
		}
		if r.Profile.TotalCycles() != r.Cycles {
			t.Fatalf("SM %d attribution covers %d of %d cycles", i, r.Profile.TotalCycles(), r.Cycles)
		}
		perSM += r.Profile.TotalCycles()
	}
	if res.Profile.TotalCycles() != perSM {
		t.Fatalf("aggregate %d cycles, per-SM sum %d", res.Profile.TotalCycles(), perSM)
	}

	// Profiling must not perturb the device result either.
	plain := cfg
	plain.Profile = false
	ref, err := RunGPU(plain, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != ref.Cycles || res.Instrs != ref.Instrs {
		t.Fatalf("device profile perturbed the run: %d/%d cycles, %d/%d instrs",
			res.Cycles, ref.Cycles, res.Instrs, ref.Instrs)
	}
}
