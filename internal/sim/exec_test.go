package sim

import (
	"math"
	"testing"

	"regvirt/internal/isa"
)

// aluCase runs evalALU with scalar operands broadcast across lanes.
func aluCase(op isa.Opcode, a, b, c uint32, sel uint32) uint32 {
	in := &isa.Instr{Op: op, NSrc: 3}
	var src [isa.MaxSrcOperands]lanes
	for l := 0; l < len(src[0]); l++ {
		src[0][l], src[1][l], src[2][l] = a, b, c
	}
	out := evalALU(in, src, sel)
	return out[0]
}

func TestEvalALUInteger(t *testing.T) {
	cases := []struct {
		op      isa.Opcode
		a, b, c uint32
		want    uint32
	}{
		{isa.OpMov, 5, 0, 0, 5},
		{isa.OpIAdd, 3, 4, 0, 7},
		{isa.OpIAdd, 0xffffffff, 1, 0, 0}, // wraparound
		{isa.OpISub, 3, 5, 0, 0xfffffffe},
		{isa.OpIMul, 6, 7, 0, 42},
		{isa.OpIMad, 2, 3, 4, 10},
		{isa.OpAnd, 0xf0f0, 0xff00, 0, 0xf000},
		{isa.OpOr, 0xf0f0, 0x0f0f, 0, 0xffff},
		{isa.OpXor, 0xff, 0x0f, 0, 0xf0},
		{isa.OpShl, 1, 4, 0, 16},
		{isa.OpShl, 1, 36, 0, 16}, // shift masked to 5 bits
		{isa.OpShr, 0x80000000, 31, 0, 1},
	}
	for _, tc := range cases {
		if got := aluCase(tc.op, tc.a, tc.b, tc.c, 0); got != tc.want {
			t.Errorf("%v(%#x,%#x,%#x) = %#x, want %#x", tc.op, tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	f := func(v float32) uint32 { return math.Float32bits(v) }
	cases := []struct {
		op      isa.Opcode
		a, b, c uint32
		want    float32
	}{
		{isa.OpFAdd, f(1.5), f(2.25), 0, 3.75},
		{isa.OpFMul, f(3), f(-2), 0, -6},
		{isa.OpFFma, f(2), f(3), f(1), 7},
		{isa.OpRcp, f(4), 0, 0, 0.25},
	}
	for _, tc := range cases {
		got := math.Float32frombits(aluCase(tc.op, tc.a, tc.b, tc.c, 0))
		if got != tc.want {
			t.Errorf("%v = %v, want %v", tc.op, got, tc.want)
		}
	}
	// rcp(0) = +Inf, deterministic.
	if got := math.Float32frombits(aluCase(isa.OpRcp, f(0), 0, 0, 0)); !math.IsInf(float64(got), 1) {
		t.Errorf("rcp(0) = %v, want +Inf", got)
	}
}

func TestEvalALUSelPerLane(t *testing.T) {
	in := &isa.Instr{Op: isa.OpSel, NSrc: 2}
	var src [isa.MaxSrcOperands]lanes
	for l := 0; l < len(src[0]); l++ {
		src[0][l] = 100
		src[1][l] = 200
	}
	out := evalALU(in, src, 0x0000ffff)
	for l := 0; l < 16; l++ {
		if out[l] != 100 {
			t.Fatalf("lane %d = %d, want selected 100", l, out[l])
		}
	}
	for l := 16; l < 32; l++ {
		if out[l] != 200 {
			t.Fatalf("lane %d = %d, want alternative 200", l, out[l])
		}
	}
}

func TestEvalCmpLanewise(t *testing.T) {
	var a, b lanes
	for l := range a {
		a[l] = uint32(l)
		b[l] = 16
	}
	m := evalCmp(isa.CmpLT, a, b)
	if m != 0x0000ffff {
		t.Errorf("lt mask = %#x, want 0xffff", m)
	}
	// Signed comparison: -1 < 16.
	a[0] = 0xffffffff
	if evalCmp(isa.CmpLT, a, b)&1 == 0 {
		t.Error("signed compare treated -1 as large")
	}
}

func TestMemInitDeterministic(t *testing.T) {
	if memInit(100) != memInit(100) {
		t.Error("memInit not deterministic")
	}
	if memInit(100) == memInit(104) {
		t.Error("memInit constant across addresses (suspicious)")
	}
}

func TestMemSysLoadStoreScoping(t *testing.T) {
	m := newMemSys()
	// Global space: unwritten reads hash, written reads value.
	gk := memKey{space: isa.SpaceGlobal, addr: 64}
	if m.load(gk) != memInit(64) {
		t.Error("global read of unwritten word should be the hash fill")
	}
	m.store(gk, 7)
	if m.load(gk) != 7 {
		t.Error("global store lost")
	}
	// Shared space: zero-filled and scoped per CTA.
	s1 := memKey{space: isa.SpaceShared, scope: 1, addr: 0}
	s2 := memKey{space: isa.SpaceShared, scope: 2, addr: 0}
	if m.load(s1) != 0 {
		t.Error("shared space should zero-fill")
	}
	m.store(s1, 9)
	if m.load(s2) != 0 {
		t.Error("shared memory leaked across CTAs")
	}
	// Spill space: per-lane private.
	p1 := memKey{space: isa.SpaceSpill, scope: 3, lane: 0, addr: 0}
	p2 := memKey{space: isa.SpaceSpill, scope: 3, lane: 1, addr: 0}
	m.store(p1, 5)
	if m.load(p2) != 0 {
		t.Error("spill memory leaked across lanes")
	}
}

func TestMemSysContention(t *testing.T) {
	m := newMemSys()
	m.tick(0)
	base := m.latency()
	for i := 0; i < 10; i++ {
		m.accept()
	}
	if m.latency() <= base {
		t.Error("latency should grow with outstanding requests")
	}
	for i := 0; i < 10; i++ {
		m.complete()
	}
	if m.latency() != base {
		t.Error("latency should recover after completion")
	}
}

func TestMemSysPortWidth(t *testing.T) {
	m := newMemSys()
	m.tick(0)
	if !m.canAccept() {
		t.Fatal("fresh memory system should accept")
	}
	m.accept()
	if m.canAccept() {
		t.Error("port width 1: second accept in the same cycle must be refused")
	}
	m.tick(1)
	if !m.canAccept() {
		t.Error("next cycle should accept again")
	}
}

func TestGlobalStoresDigest(t *testing.T) {
	m := newMemSys()
	m.store(memKey{space: isa.SpaceGlobal, addr: 4}, 1)
	m.store(memKey{space: isa.SpaceShared, scope: 1, addr: 8}, 2)
	m.store(memKey{space: isa.SpaceSpill, scope: 1, addr: 12}, 3)
	d := m.globalStores()
	if len(d) != 1 || d[4] != 1 {
		t.Errorf("digest = %v, want only the global store", d)
	}
}
