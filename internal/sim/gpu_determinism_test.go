package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
)

// The two-phase engine's contract: RunGPU with GPUParallel > 1 must
// produce a GPUResult byte-identical (as canonical JSON) to the
// sequential engine, across every rename mode, both register-file
// sizes, and structurally different workloads. Run these under -race
// (make verify does) to also certify the compute phase shares nothing.

// gpuDetWorkload is one determinism-matrix workload: kernels cover
// streaming stores (phase1Src), a data-dependent loop of global loads
// (loopSrc), and shared-memory traffic with barriers (barrierSrc).
type gpuDetWorkload struct {
	name   string
	src    string
	consts []uint32
}

func gpuDetWorkloads() []gpuDetWorkload {
	return []gpuDetWorkload{
		{"square", phase1Src, []uint32{64, 0x1000, 0x8000}},
		{"loopsum", loopSrc, []uint32{64, 0x10000, 4, 4, 0x30000}},
		{"barshare", barrierSrc, []uint32{64, 0x40000}},
	}
}

func gpuDetSpec(t *testing.T, w gpuDetWorkload, mode rename.Mode) LaunchSpec {
	t.Helper()
	k, err := compiler.Compile(isa.MustParse(w.src), compiler.Options{
		TableBytes: 1024, ResidentWarps: 4, NoFlags: mode != rename.ModeCompiler,
	})
	if err != nil {
		t.Fatal(err)
	}
	return LaunchSpec{
		Kernel: k, GridCTAs: 48, ThreadsPerCTA: 64, ConcCTAs: 2, Consts: w.consts,
	}
}

func gpuResultJSON(t *testing.T, cfg Config, spec LaunchSpec) ([]byte, error) {
	t.Helper()
	res, err := RunGPU(cfg, spec)
	if err != nil {
		return nil, err
	}
	b, jerr := json.Marshal(res)
	if jerr != nil {
		t.Fatalf("marshal GPUResult: %v", jerr)
	}
	return b, nil
}

// detMode is one register-file backend of the determinism matrix. set
// applies the backend-specific knobs (sized small enough that the
// wrapper machinery — cache evictions, demoted registers — is actually
// exercised on the matrix kernels).
type detMode struct {
	name string
	mode rename.Mode
	set  func(*Config)
}

// detModes is the full backend axis every determinism/durability
// matrix iterates: the three classic modes plus both wrapper backends.
func detModes() []detMode {
	return []detMode{
		{"baseline", rename.ModeBaseline, nil},
		{"hwonly", rename.ModeHWOnly, nil},
		{"compiler", rename.ModeCompiler, nil},
		{"regcache", rename.ModeRegCache, func(c *Config) { c.RFCacheEntries = 8 }},
		{"smemspill", rename.ModeSMemSpill, func(c *Config) { c.SpillRegs = 2 }},
	}
}

func (m detMode) apply(cfg Config) Config {
	if m.set != nil {
		m.set(&cfg)
	}
	return cfg
}

func TestRunGPUParallelMatchesSequential(t *testing.T) {
	for _, w := range gpuDetWorkloads() {
		for _, m := range detModes() {
			for _, physRegs := range []int{512, 1024} {
				name := fmt.Sprintf("%s/%s/%d", w.name, m.name, physRegs)
				t.Run(name, func(t *testing.T) {
					spec := gpuDetSpec(t, w, m.mode)
					cfg := m.apply(Config{Mode: m.mode, PhysRegs: physRegs, MaxCycles: 2_000_000})

					seq, seqErr := gpuResultJSON(t, cfg, spec)
					cfg.GPUParallel = 5 // uneven 16/5 split stresses the partition
					par, parErr := gpuResultJSON(t, cfg, spec)

					switch {
					case seqErr != nil || parErr != nil:
						// A config that cannot run must fail identically.
						if fmt.Sprint(seqErr) != fmt.Sprint(parErr) {
							t.Fatalf("sequential err %v, parallel err %v", seqErr, parErr)
						}
					case !bytes.Equal(seq, par):
						t.Fatalf("parallel GPUResult diverges from sequential (%d vs %d JSON bytes)",
							len(par), len(seq))
					}
				})
			}
		}
	}
}

// TestRunGPUWorkerCountInvariant pins the determinism argument against
// the worker-count axis, including counts above the SM count (clamped).
func TestRunGPUWorkerCountInvariant(t *testing.T) {
	w := gpuDetWorkloads()[0]
	spec := gpuDetSpec(t, w, rename.ModeCompiler)
	cfg := Config{Mode: rename.ModeCompiler, PhysRegs: 512, MaxCycles: 2_000_000}
	ref, err := gpuResultJSON(t, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16, 64} {
		cfg.GPUParallel = workers
		got, gerr := gpuResultJSON(t, cfg, spec)
		if gerr != nil {
			t.Fatalf("workers=%d: %v", workers, gerr)
		}
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d diverges from sequential", workers)
		}
	}
}

// TestRunGPUParallelPropagatesErrors ensures a per-SM watchdog error
// surfaces identically from the pooled compute phase.
func TestRunGPUParallelPropagatesErrors(t *testing.T) {
	w := gpuDetWorkloads()[0]
	spec := gpuDetSpec(t, w, rename.ModeCompiler)
	cfg := Config{Mode: rename.ModeCompiler, MaxCycles: 3, GPUParallel: 4}
	if _, err := RunGPU(cfg, spec); err == nil {
		t.Fatal("MaxCycles=3 run must fail")
	}
}
