package sim

import (
	"math"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
)

// lanes is one warp-wide operand or result.
type lanes = [arch.WarpSize]uint32

// evalALU computes the lane-wise result of a non-memory, register-writing
// instruction. Predicates and control flow are handled by the issue
// logic; this is pure data computation.
func evalALU(in *isa.Instr, src [isa.MaxSrcOperands]lanes, sel uint32) lanes {
	var out lanes
	for l := 0; l < arch.WarpSize; l++ {
		a, b, c := src[0][l], src[1][l], src[2][l]
		switch in.Op {
		case isa.OpMov, isa.OpMovi, isa.OpS2R:
			out[l] = a
		case isa.OpIAdd:
			out[l] = a + b
		case isa.OpISub:
			out[l] = a - b
		case isa.OpIMul:
			out[l] = a * b
		case isa.OpIMad:
			out[l] = a*b + c
		case isa.OpAnd:
			out[l] = a & b
		case isa.OpOr:
			out[l] = a | b
		case isa.OpXor:
			out[l] = a ^ b
		case isa.OpShl:
			out[l] = a << (b & 31)
		case isa.OpShr:
			out[l] = a >> (b & 31)
		case isa.OpSel:
			if sel&(1<<uint(l)) != 0 {
				out[l] = a
			} else {
				out[l] = b
			}
		case isa.OpFAdd:
			out[l] = f32bits(f32(a) + f32(b))
		case isa.OpFMul:
			out[l] = f32bits(f32(a) * f32(b))
		case isa.OpFFma:
			out[l] = f32bits(f32(a)*f32(b) + f32(c))
		case isa.OpRcp:
			out[l] = f32bits(1 / f32(a))
		}
	}
	return out
}

// evalCmp computes an isetp lane mask over signed operands.
func evalCmp(cmp isa.CmpOp, a, b lanes) uint32 {
	var m uint32
	for l := 0; l < arch.WarpSize; l++ {
		if cmp.Eval(int32(a[l]), int32(b[l])) {
			m |= 1 << uint(l)
		}
	}
	return m
}

func f32(b uint32) float32     { return math.Float32frombits(b) }
func f32bits(f float32) uint32 { return math.Float32bits(f) }

// specialValue materializes an s2r source for a warp.
func (s *SM) specialValue(w *warp, sp isa.Special) lanes {
	var out lanes
	for l := 0; l < arch.WarpSize; l++ {
		switch sp {
		case isa.SpecTidX:
			out[l] = uint32(w.idInCTA*arch.WarpSize + l)
		case isa.SpecCtaidX:
			out[l] = uint32(w.cta.ctaID)
		case isa.SpecNtidX:
			out[l] = uint32(s.spec.ThreadsPerCTA)
		case isa.SpecNctaid:
			out[l] = uint32(s.spec.GridCTAs)
		case isa.SpecLane:
			out[l] = uint32(l)
		case isa.SpecWarpID:
			out[l] = uint32(w.idInCTA)
		}
	}
	return out
}
