package sim

import (
	"math/bits"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
	"regvirt/internal/liveness"
)

// warpState is the scheduler-visible state of a warp.
type warpState uint8

const (
	wReady    warpState = iota // in the ready queue, may issue
	wPending                   // demoted (long-latency op outstanding)
	wBarrier                   // waiting at a CTA barrier
	wSpilled                   // registers evacuated (§8.1 fallback)
	wFinished                  // all lanes exited
)

// simtEntry is one SIMT reconvergence stack frame.
type simtEntry struct {
	reconvPC int    // pop when pc reaches this (-1: never)
	pc       int    // next pc on this path
	mask     uint32 // active lanes of this path
}

// warp is one resident warp.
type warp struct {
	slot    int // SM warp slot
	cta     *ctaState
	idInCTA int

	stack []simtEntry
	// initMask is the warp's launch-time lane mask (partial for the last
	// warp of a CTA); a write is "full" only when it covers all of it.
	initMask uint32
	preds    [isa.NumPredRegs]uint32

	state warpState
	// readyAt gates promotion/issue: the warp may not issue before this
	// cycle (memory completion, bank-conflict stall, wakeup penalty).
	readyAt uint64

	// Scoreboard: architected registers and predicates with writes in
	// flight. In-order issue blocks on RAW, WAW and guard-pred hazards.
	busyRegs  liveness.RegSet
	busyPreds uint8
	// inflight counts outstanding writebacks (a warp cannot exit or be
	// spilled while results are in flight).
	inflight int

	// Spill fallback storage.
	spillSaved []spilledState
	// restoreAfter gates re-admission of a spilled warp so spill/restore
	// pairs cannot thrash.
	restoreAfter uint64
}

type spilledState struct {
	reg isa.RegID
	val [arch.WarpSize]uint32
}

// fullMask returns the initial active mask for a warp covering `threads`
// lanes (the last warp of a CTA may be partial).
func fullMask(threads int) uint32 {
	if threads >= arch.WarpSize {
		return ^uint32(0)
	}
	return (uint32(1) << uint(threads)) - 1
}

func newWarp(slot int, cta *ctaState, idInCTA, threads int) *warp {
	m := fullMask(threads)
	return &warp{
		slot:     slot,
		cta:      cta,
		idInCTA:  idInCTA,
		initMask: m,
		stack:    []simtEntry{{reconvPC: -1, pc: 0, mask: m}},
	}
}

// top returns the active SIMT frame.
func (w *warp) top() *simtEntry { return &w.stack[len(w.stack)-1] }

// pc returns the current fetch PC.
func (w *warp) pc() int { return w.top().pc }

// activeMask returns the current lane mask.
func (w *warp) activeMask() uint32 { return w.top().mask }

// advance moves past the current instruction and pops reconverged frames.
func (w *warp) advance() {
	t := w.top()
	t.pc++
	w.popReconverged()
}

// jump sets the pc (branch taken with full agreement).
func (w *warp) jump(pc int) {
	w.top().pc = pc
	w.popReconverged()
}

// popReconverged pops frames whose pc reached their reconvergence point.
func (w *warp) popReconverged() {
	for len(w.stack) > 1 {
		t := w.top()
		if t.reconvPC >= 0 && t.pc == t.reconvPC {
			w.stack = w.stack[:len(w.stack)-1]
		} else {
			return
		}
	}
}

// diverge pushes the sides of a divergent branch. The current frame
// parks at the reconvergence pc with the full mask; each side whose
// entry pc is not already the reconvergence point gets its own frame
// (a side that starts at the reconvergence point just waits there).
// The taken path executes first.
func (w *warp) diverge(takenPC, fallPC, reconvPC int, taken, fall uint32) {
	if reconvPC >= 0 {
		w.top().pc = reconvPC
	} else {
		// Paths reconverge only at warp exit: the current frame's
		// continuation is dead; exitLanes pops it once the sides drain.
		w.top().mask = 0
	}
	if fallPC != reconvPC && fall != 0 {
		w.stack = append(w.stack, simtEntry{reconvPC: reconvPC, pc: fallPC, mask: fall})
	}
	if takenPC != reconvPC && taken != 0 {
		w.stack = append(w.stack, simtEntry{reconvPC: reconvPC, pc: takenPC, mask: taken})
	}
}

// exitLanes removes lanes from every frame (exit instruction) and pops
// empty frames. It returns true when the warp has fully terminated.
func (w *warp) exitLanes(mask uint32) bool {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	for len(w.stack) > 0 && w.top().mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	return len(w.stack) == 0
}

// predMask evaluates a guard against the predicate file.
func (w *warp) predMask(p isa.Pred) uint32 {
	if !p.Guarded() {
		return ^uint32(0)
	}
	m := w.preds[p.Reg]
	if p.Neg {
		m = ^m
	}
	return m
}

// laneCount returns the number of set lanes.
func laneCount(mask uint32) int { return bits.OnesCount32(mask) }
