package sim

import (
	"errors"
	"fmt"
	"sort"

	"regvirt/internal/arch"
	"regvirt/internal/flagcache"
	"regvirt/internal/isa"
	"regvirt/internal/liveness"
	"regvirt/internal/regfile"
	"regvirt/internal/rename"
	"regvirt/internal/throttle"
)

// Checkpointing serializes the complete mutable state of a run at a
// cycle boundary so the run can be resumed later — in another process —
// and still produce a Result byte-identical to the uninterrupted run.
// Every field of every snapshot type is exported, so any encoder
// (encoding/gob is what the jobs durability layer uses) round-trips it
// without custom marshalers. The immutable inputs (Config, LaunchSpec,
// the kernel program) are deliberately NOT part of a snapshot: a resume
// rebuilds them from the same job spec, and the restore path validates
// geometry so a snapshot cannot be applied to a mismatched launch.
//
// Snapshot boundaries are exact cycle boundaries:
//
//   - single-SM runs snapshot between stepChecked calls (after a cycle
//     fully retires, before the next begins);
//   - whole-device runs snapshot between engine iterations — after the
//     commit phase, when every phasedPort's buffered intents are empty —
//     which is the only point where shared state is quiescent.
//
// Because the simulator is deterministic and RNG-free, "resume from any
// checkpoint" and "never stopped" traverse identical state sequences;
// checkpoint_test.go enforces this with the determinism-matrix
// machinery across schedulers, modes and GPUParallel settings.

// ErrBadCheckpoint marks a checkpoint that cannot be applied to the
// given config and launch — corrupt, truncated, or taken under
// different geometry. Restore failures wrap it so callers (the jobs
// durability layer) can discard the checkpoint and restart from
// scratch instead of failing the job.
var ErrBadCheckpoint = errors.New("sim: checkpoint not applicable")

// Checkpoint is the payload handed to Config.Checkpoint: exactly one of
// SM (single-SM Run) or GPU (whole-device RunGPU) is non-nil.
type Checkpoint struct {
	// Cycle is the SM cycle (single-SM) or device engine cycle (GPU) the
	// snapshot was taken at.
	Cycle uint64
	SM    *Snapshot
	GPU   *GPUSnapshot
}

// Snapshot is the complete mutable state of one SM.
type Snapshot struct {
	Cycle             uint64
	DoneCTAs          int
	LiveCTAs          int
	ResidentWarpCyc   uint64
	AllocStalled      bool
	LastProgress      uint64
	RRIndex           int
	PeakResidentWarps int
	ResidentWarps     int
	WBOutstanding     int

	// Warps is the identity table: every live warp object — the warps of
	// resident CTAs plus "detached" warps whose CTA already completed but
	// which still have writebacks in flight — appears exactly once, and
	// every other field references warps by index into it.
	Warps []WarpSnap
	CTAs  []CTASnap
	// Ready and Pending are the scheduler queues in order.
	Ready   []int
	Pending []int
	// LastIssued is the GTO scheduler's greedy warp, -1 when unset or
	// when it pointed at a warp no longer reachable (equivalent: a
	// dangling greedy pointer can never match a ready warp again).
	LastIssued int
	// WBs is the writeback queue: entries sorted by delivery cycle,
	// preserving within-cycle order.
	WBs []WBSnap
	// Src is the CTA source (single-SM runs only; device runs share one
	// source captured in GPUSnapshot).
	Src *SrcSnap

	File  *regfile.State
	Table *rename.State
	Flag  *flagcache.State
	Gov   *throttle.State
	// Mem is the memory system state of single-SM runs; Port is the
	// per-SM slice of device runs (the shared content lives in
	// GPUSnapshot).
	Mem  *MemState
	Port *PortState

	// Res is the partially accumulated Result (trace samples, spill and
	// stall counters, ...).
	Res Result
}

// CTASnap is one resident CTA.
type CTASnap struct {
	Slot      int
	CTAID     int
	LiveWarps int
	AtBarrier int
	Warps     []int // indices into Snapshot.Warps
}

// SIMTFrame is one reconvergence stack entry.
type SIMTFrame struct {
	ReconvPC int
	PC       int
	Mask     uint32
}

// SpillSnap is one spilled architected register.
type SpillSnap struct {
	Reg isa.RegID
	Val [arch.WarpSize]uint32
}

// WarpSnap is one warp's complete state.
type WarpSnap struct {
	// CTA indexes Snapshot.CTAs, or -1 for a detached warp (its CTA
	// completed while writebacks were still in flight); DetCTAID and
	// DetCTASlot then preserve the completed CTA's identity.
	CTA        int
	DetCTAID   int
	DetCTASlot int

	Slot         int
	IDInCTA      int
	Stack        []SIMTFrame
	InitMask     uint32
	Preds        [isa.NumPredRegs]uint32
	State        uint8
	ReadyAt      uint64
	BusyRegs     liveness.RegSet
	BusyPreds    uint8
	Inflight     int
	Spilled      []SpillSnap
	RestoreAfter uint64
}

// WBSnap is one in-flight writeback.
type WBSnap struct {
	Cycle   uint64
	Warp    int // index into Snapshot.Warps
	Reg     isa.RegID
	Phys    regfile.PhysReg
	Val     [arch.WarpSize]uint32
	Mask    uint32
	Pred    int8
	PredVal uint32
	MemReq  bool
	HasReg  bool
}

// SrcSnap is the CTA dispatcher state.
type SrcSnap struct {
	Next     int
	Limit    int
	Returned []int
}

// MemCell is one functional-memory word.
type MemCell struct {
	Space isa.MemSpace
	Scope uint32
	Lane  uint8
	Addr  uint32
	Val   uint32
}

// MemState is the single-SM memory system (content + timing).
type MemState struct {
	Cells       []MemCell
	Outstanding int
	Requests    uint64
}

// PortState is one SM's phasedPort timing state. Buffered store intents
// and the DRAM delta are always empty at a commit boundary, so only the
// cumulative counters survive.
type PortState struct {
	Outstanding int
	Requests    uint64
}

// GPUSnapshot is the complete mutable state of a whole-device run.
type GPUSnapshot struct {
	// Cycle is the engine iteration count (every unfinished SM steps once
	// per iteration).
	Cycle uint64
	SMs   []*Snapshot
	Src   SrcSnap
	// Data and SharedOutstanding are the committed gpuShared state.
	Data              []MemCell
	SharedOutstanding int
}

// sortedCells flattens a functional-memory map deterministically.
func sortedCells(data map[memKey]uint32) []MemCell {
	cells := make([]MemCell, 0, len(data))
	for k, v := range data {
		cells = append(cells, MemCell{Space: k.space, Scope: k.scope, Lane: k.lane, Addr: k.addr, Val: v})
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Space != b.Space {
			return a.Space < b.Space
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		return a.Addr < b.Addr
	})
	return cells
}

func cellsToMap(cells []MemCell) map[memKey]uint32 {
	data := make(map[memKey]uint32, len(cells))
	for _, c := range cells {
		data[memKey{space: c.Space, scope: c.Scope, lane: c.Lane, addr: c.Addr}] = c.Val
	}
	return data
}

// copyResult deep-copies a Result so a snapshot cannot alias the live
// accumulator (LiveSamples/RegEvents grow by append; Stores is rebuilt
// at finalize but copied defensively anyway).
func copyResult(r Result) Result {
	out := r
	if r.Stores != nil {
		out.Stores = make(map[uint32]uint32, len(r.Stores))
		for k, v := range r.Stores {
			out.Stores[k] = v
		}
	}
	out.LiveSamples = append([]LiveSample(nil), r.LiveSamples...)
	out.RegEvents = append([]RegEvent(nil), r.RegEvents...)
	out.Profile = copyProfile(r.Profile)
	return out
}

// snapshot captures the SM's complete mutable state at a cycle boundary.
func (s *SM) snapshot() *Snapshot {
	snap := &Snapshot{
		Cycle:             s.cycle,
		DoneCTAs:          s.doneCTAs,
		LiveCTAs:          s.liveCTAs,
		ResidentWarpCyc:   s.residentWarpCyc,
		AllocStalled:      s.allocStalled,
		LastProgress:      s.lastProgress,
		RRIndex:           s.rrIndex,
		PeakResidentWarps: s.peakResidentWarps,
		ResidentWarps:     s.residentWarps,
		WBOutstanding:     s.wbOutstanding,
		LastIssued:        -1,
		File:              s.file.State(),
		Table:             s.table.State(),
		Flag:              s.fcache.State(),
		Gov:               s.gov.State(),
		Res:               copyResult(s.res),
	}

	// Warp identity table: resident CTAs first (slot order, warp order
	// within the CTA), then detached warps in writeback-queue order.
	index := map[*warp]int{}
	var warps []*warp
	add := func(w *warp) int {
		if i, ok := index[w]; ok {
			return i
		}
		index[w] = len(warps)
		warps = append(warps, w)
		return len(warps) - 1
	}
	ctaIndex := map[*ctaState]int{}
	for _, cta := range s.ctaSlots {
		if cta == nil {
			continue
		}
		ctaIndex[cta] = len(snap.CTAs)
		cs := CTASnap{Slot: cta.slot, CTAID: cta.ctaID, LiveWarps: cta.liveWarps, AtBarrier: cta.atBarrier}
		for _, w := range cta.warps {
			cs.Warps = append(cs.Warps, add(w))
		}
		snap.CTAs = append(snap.CTAs, cs)
	}

	wbCycles := make([]uint64, 0, len(s.wbQueue))
	for cyc := range s.wbQueue {
		wbCycles = append(wbCycles, cyc)
	}
	sort.Slice(wbCycles, func(i, j int) bool { return wbCycles[i] < wbCycles[j] })
	for _, cyc := range wbCycles {
		for _, wb := range s.wbQueue[cyc] {
			snap.WBs = append(snap.WBs, WBSnap{
				Cycle:   cyc,
				Warp:    add(wb.w),
				Reg:     wb.reg,
				Phys:    wb.phys,
				Val:     wb.val,
				Mask:    wb.mask,
				Pred:    wb.pred,
				PredVal: wb.predVal,
				MemReq:  wb.memReq,
				HasReg:  wb.hasReg,
			})
		}
	}

	for _, w := range warps {
		ws := WarpSnap{
			CTA:          -1,
			Slot:         w.slot,
			IDInCTA:      w.idInCTA,
			InitMask:     w.initMask,
			Preds:        w.preds,
			State:        uint8(w.state),
			ReadyAt:      w.readyAt,
			BusyRegs:     w.busyRegs,
			BusyPreds:    w.busyPreds,
			Inflight:     w.inflight,
			RestoreAfter: w.restoreAfter,
		}
		if ci, ok := ctaIndex[w.cta]; ok {
			ws.CTA = ci
		} else {
			ws.DetCTAID = w.cta.ctaID
			ws.DetCTASlot = w.cta.slot
		}
		for _, f := range w.stack {
			ws.Stack = append(ws.Stack, SIMTFrame{ReconvPC: f.reconvPC, PC: f.pc, Mask: f.mask})
		}
		for _, sv := range w.spillSaved {
			ws.Spilled = append(ws.Spilled, SpillSnap{Reg: sv.reg, Val: sv.val})
		}
		snap.Warps = append(snap.Warps, ws)
	}

	for _, w := range s.ready {
		snap.Ready = append(snap.Ready, add(w))
	}
	for _, w := range s.pendingQ {
		snap.Pending = append(snap.Pending, add(w))
	}
	if s.lastIssued != nil {
		if i, ok := index[s.lastIssued]; ok {
			snap.LastIssued = i
		}
	}

	if s.src != nil && !s.deferDispatch {
		snap.Src = &SrcSnap{Next: s.src.next, Limit: s.src.limit, Returned: append([]int(nil), s.src.returned...)}
	}

	switch mp := s.mem.(type) {
	case *memSys:
		snap.Mem = &MemState{
			Cells:       sortedCells(mp.data),
			Outstanding: mp.outstanding,
			Requests:    mp.requests,
		}
	case *phasedPort:
		snap.Port = &PortState{Outstanding: mp.outstanding, Requests: mp.requests}
	}
	return snap
}

// restore applies a snapshot to a freshly constructed SM for the same
// Config and LaunchSpec. Index fields are bounds-checked so a corrupted
// snapshot fails with an error instead of a panic.
func (s *SM) restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("sim: nil snapshot")
	}
	if snap.File == nil || snap.Table == nil || snap.Flag == nil || snap.Gov == nil {
		return fmt.Errorf("sim: snapshot missing component state")
	}
	if err := s.file.SetState(snap.File); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := s.table.SetState(snap.Table); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := s.fcache.SetState(snap.Flag); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := s.gov.SetState(snap.Gov); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}

	// Rebuild CTA and warp object graphs.
	ctas := make([]*ctaState, len(snap.CTAs))
	for i, cs := range snap.CTAs {
		if cs.Slot < 0 || cs.Slot >= len(s.ctaSlots) {
			return fmt.Errorf("sim: restore: CTA slot %d out of range", cs.Slot)
		}
		if s.ctaSlots[cs.Slot] != nil {
			return fmt.Errorf("sim: restore: duplicate CTA slot %d", cs.Slot)
		}
		cta := &ctaState{ctaID: cs.CTAID, slot: cs.Slot, liveWarps: cs.LiveWarps, atBarrier: cs.AtBarrier}
		ctas[i] = cta
		s.ctaSlots[cs.Slot] = cta
	}
	warps := make([]*warp, len(snap.Warps))
	for i, ws := range snap.Warps {
		if ws.CTA < -1 || ws.CTA >= len(ctas) {
			return fmt.Errorf("sim: restore: warp %d references CTA %d of %d", i, ws.CTA, len(ctas))
		}
		w := &warp{
			slot:         ws.Slot,
			idInCTA:      ws.IDInCTA,
			initMask:     ws.InitMask,
			preds:        ws.Preds,
			state:        warpState(ws.State),
			readyAt:      ws.ReadyAt,
			busyRegs:     ws.BusyRegs,
			busyPreds:    ws.BusyPreds,
			inflight:     ws.Inflight,
			restoreAfter: ws.RestoreAfter,
		}
		if ws.CTA >= 0 {
			w.cta = ctas[ws.CTA]
		} else {
			// Detached warp: its CTA completed; give it an inert stand-in
			// carrying the original identity (nothing schedules it — only
			// pending writebacks still reference it).
			w.cta = &ctaState{ctaID: ws.DetCTAID, slot: ws.DetCTASlot}
		}
		for _, f := range ws.Stack {
			w.stack = append(w.stack, simtEntry{reconvPC: f.ReconvPC, pc: f.PC, mask: f.Mask})
		}
		for _, sv := range ws.Spilled {
			w.spillSaved = append(w.spillSaved, spilledState{reg: sv.Reg, val: sv.Val})
		}
		warps[i] = w
	}
	for i, cs := range snap.CTAs {
		for _, wi := range cs.Warps {
			if wi < 0 || wi >= len(warps) {
				return fmt.Errorf("sim: restore: CTA %d references warp %d of %d", i, wi, len(warps))
			}
			ctas[i].warps = append(ctas[i].warps, warps[wi])
		}
	}
	for _, wi := range snap.Ready {
		if wi < 0 || wi >= len(warps) {
			return fmt.Errorf("sim: restore: ready queue references warp %d of %d", wi, len(warps))
		}
		s.ready = append(s.ready, warps[wi])
	}
	for _, wi := range snap.Pending {
		if wi < 0 || wi >= len(warps) {
			return fmt.Errorf("sim: restore: pending queue references warp %d of %d", wi, len(warps))
		}
		s.pendingQ = append(s.pendingQ, warps[wi])
	}
	if snap.LastIssued >= 0 {
		if snap.LastIssued >= len(warps) {
			return fmt.Errorf("sim: restore: lastIssued references warp %d of %d", snap.LastIssued, len(warps))
		}
		s.lastIssued = warps[snap.LastIssued]
	}
	for _, wb := range snap.WBs {
		if wb.Warp < 0 || wb.Warp >= len(warps) {
			return fmt.Errorf("sim: restore: writeback references warp %d of %d", wb.Warp, len(warps))
		}
		s.wbQueue[wb.Cycle] = append(s.wbQueue[wb.Cycle], writeback{
			w:       warps[wb.Warp],
			reg:     wb.Reg,
			phys:    wb.Phys,
			val:     wb.Val,
			mask:    wb.Mask,
			pred:    wb.Pred,
			predVal: wb.PredVal,
			memReq:  wb.MemReq,
			hasReg:  wb.HasReg,
		})
	}

	if snap.Src != nil {
		if snap.Src.Limit != s.src.limit {
			return fmt.Errorf("sim: restore: CTA source limit %d, launch expects %d", snap.Src.Limit, s.src.limit)
		}
		s.src.next = snap.Src.Next
		s.src.returned = append([]int(nil), snap.Src.Returned...)
	}
	switch mp := s.mem.(type) {
	case *memSys:
		if snap.Mem == nil {
			return fmt.Errorf("sim: restore: snapshot has no memory state for a single-SM run")
		}
		mp.data = cellsToMap(snap.Mem.Cells)
		mp.outstanding = snap.Mem.Outstanding
		mp.requests = snap.Mem.Requests
	case *phasedPort:
		if snap.Port == nil {
			return fmt.Errorf("sim: restore: snapshot has no port state for a device run")
		}
		mp.outstanding = snap.Port.Outstanding
		mp.requests = snap.Port.Requests
	}

	s.cycle = snap.Cycle
	s.doneCTAs = snap.DoneCTAs
	s.liveCTAs = snap.LiveCTAs
	s.residentWarpCyc = snap.ResidentWarpCyc
	s.allocStalled = snap.AllocStalled
	s.lastProgress = snap.LastProgress
	s.rrIndex = snap.RRIndex
	s.peakResidentWarps = snap.PeakResidentWarps
	s.residentWarps = snap.ResidentWarps
	s.wbOutstanding = snap.WBOutstanding
	s.res = copyResult(snap.Res)
	// Re-link the profiler to the restored accumulator. A profiled
	// resume of a checkpoint taken without profiling (or by an older
	// build) starts a fresh profile covering the resumed portion; an
	// unprofiled resume drops any profile the snapshot carried, so the
	// result matches an uninterrupted unprofiled run byte for byte.
	if s.cfg.Profile {
		if s.res.Profile == nil {
			s.res.Profile = newProfile()
		}
		s.prof = s.res.Profile
	} else {
		s.res.Profile = nil
		s.prof = nil
	}
	return nil
}

// emitCheckpoint hands a fresh snapshot to the configured hook.
func (s *SM) emitCheckpoint() {
	s.cfg.Checkpoint(&Checkpoint{Cycle: s.cycle, SM: s.snapshot()})
}

// maybeCheckpoint emits a periodic checkpoint at the configured cadence.
// It runs after a cycle fully retires; the final cycle of a run never
// checkpoints (the result itself is about to exist).
func (s *SM) maybeCheckpoint() {
	n := s.cfg.CheckpointEvery
	if n == 0 || s.cfg.Checkpoint == nil {
		return
	}
	if s.cycle%n == 0 && !s.finished() {
		s.emitCheckpoint()
	}
}

// Resume continues a single-SM run from a checkpoint taken by an
// earlier Run with the same Config and LaunchSpec. The resumed run is
// byte-identical to the uninterrupted one: it does NOT re-run CTA
// dispatch (dispatch only ever happens at launch and at CTA completion,
// both of which the snapshot already reflects).
func Resume(cfg Config, spec LaunchSpec, ck *Checkpoint) (*Result, error) {
	if ck == nil || ck.SM == nil {
		return nil, fmt.Errorf("%w: Resume needs a single-SM checkpoint", ErrBadCheckpoint)
	}
	sm, err := newSM(cfg, spec)
	if err != nil {
		return nil, err
	}
	if err := sm.restore(ck.SM); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadCheckpoint, err)
	}
	return sm.runLoop()
}
