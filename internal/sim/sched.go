package sim

import (
	"sort"

	"regvirt/internal/arch"
	"regvirt/internal/rename"
)

// Two-level warp scheduling (§5) plus the §8.1 spill fallback. Every
// routine here mutates SM-private state only; memory effects go through
// the memPort.

// spillTriggerWindow is how long the SM tolerates zero issue before
// invoking the §8.1 spill fallback.
const spillTriggerWindow = 5000

// promote fills the ready queue from eligible pending warps (two-level
// scheduler, §5: pending warps enter the ready queue when their
// long-latency operation completes and a slot frees up).
func (s *SM) promote() {
	for len(s.ready) < arch.ReadyQueueSize {
		idx := -1
		for i, w := range s.pendingQ {
			if w.state == wPending && w.readyAt <= s.cycle {
				idx = i
				break
			}
		}
		if idx == -1 {
			return
		}
		w := s.pendingQ[idx]
		s.pendingQ = append(s.pendingQ[:idx], s.pendingQ[idx+1:]...)
		w.state = wReady
		s.ready = append(s.ready, w)
	}
}

// demote removes a warp from the ready queue into pending.
func (s *SM) demote(w *warp, readyAt uint64) {
	w.state = wPending
	w.readyAt = readyAt
	for i, r := range s.ready {
		if r == w {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			break
		}
	}
	s.pendingQ = append(s.pendingQ, w)
}

// removeFromReady drops a warp that stopped being schedulable (barrier,
// finish, spill).
func (s *SM) removeFromReady(w *warp) {
	for i, r := range s.ready {
		if r == w {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

// schedule runs the two warp schedulers. It reports whether any warp
// issued this cycle (the profiler's primary classification input).
func (s *SM) schedule() bool {
	s.allocStalled = false
	issuedAny := false
	used := map[*warp]bool{}
	for sched := 0; sched < arch.NumSchedulers; sched++ {
		order := s.pickOrder()
		for _, w := range order {
			if used[w] || w.state != wReady || w.readyAt > s.cycle {
				continue
			}
			if s.tryIssue(w) {
				used[w] = true
				issuedAny = true
				s.lastIssued = w
				if s.prof != nil && w.slot < len(s.prof.WarpIssued) {
					s.prof.WarpIssued[w.slot]++
				}
				if s.cfg.Scheduler == SchedLRR {
					s.rrIndex++
				}
				break
			}
		}
		if len(s.ready) == 0 {
			break
		}
	}
	if issuedAny {
		s.lastProgress = s.cycle
		return true
	}
	// Zero-issue cycle caused by register-allocation pressure with a full
	// ready queue: rotate one stalled warp out so pending warps (whose
	// issue may *release* the registers the stalled ones wait for) get
	// scheduler slots. Without this the six-deep ready queue head-of-line
	// blocks under register pressure. Ordinary data-hazard stalls do not
	// rotate — the two-level scheduler keeps its active set.
	if s.allocStalled && len(s.ready) == arch.ReadyQueueSize && s.hasPromotable() {
		w := s.ready[s.rrIndex%len(s.ready)]
		s.demote(w, s.cycle+1)
		s.rrIndex++
	}
	if s.table.SpillFallback() &&
		s.cycle-s.lastProgress > spillTriggerWindow &&
		(s.cycle-s.lastProgress)%spillTriggerWindow == 0 {
		s.spillVictim()
	}
	return false
}

// pickOrder returns the ready warps in this cycle's selection order.
func (s *SM) pickOrder() []*warp {
	n := len(s.ready)
	if n == 0 {
		return nil
	}
	order := make([]*warp, 0, n)
	if s.cfg.Scheduler == SchedGTO {
		// Greedy: the last issuer first; then oldest (lowest warp slot).
		rest := make([]*warp, 0, n)
		for _, w := range s.ready {
			if w == s.lastIssued {
				order = append(order, w)
			} else {
				rest = append(rest, w)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].slot < rest[j].slot })
		return append(order, rest...)
	}
	for k := 0; k < n; k++ {
		order = append(order, s.ready[(s.rrIndex+k)%n])
	}
	return order
}

// hasPromotable reports whether any pending warp is eligible to enter the
// ready queue now.
func (s *SM) hasPromotable() bool {
	for _, w := range s.pendingQ {
		if w.state == wPending && w.readyAt <= s.cycle {
			return true
		}
	}
	return false
}

// spillVictim evacuates one warp's registers to memory (§8.1 fallback):
// the warp holding the most physical registers. Freeing the biggest
// holder lets some other warp make it through its register-demand peak
// and start releasing, which unclogs the pipeline.
func (s *SM) spillVictim() {
	var victim *warp
	best := 0
	for _, cta := range s.ctaSlots {
		if cta == nil {
			continue
		}
		for _, w := range cta.warps {
			if w.state == wFinished || w.state == wSpilled || w.inflight > 0 {
				continue
			}
			if n := s.table.MappedCount(w.slot); n > best {
				best, victim = n, w
			}
		}
	}
	if victim == nil {
		return
	}
	spilled := s.table.SpillWarp(victim.slot)
	if len(spilled) == 0 {
		return
	}
	for _, sr := range spilled {
		s.gov.OnRelease(victim.cta.slot, arch.BankOf(int(sr.Reg)))
		s.mem.noteRequests(1) // one coalesced store per architected register
	}
	victim.spillSaved = make([]spilledState, len(spilled))
	for i, sr := range spilled {
		victim.spillSaved[i] = spilledState{reg: sr.Reg, val: sr.Val}
	}
	victim.state = wSpilled
	victim.restoreAfter = s.cycle + 4*uint64(arch.GlobalMemLatency)
	s.removeFromReady(victim)
	for i, p := range s.pendingQ {
		if p == victim {
			s.pendingQ = append(s.pendingQ[:i], s.pendingQ[i+1:]...)
			break
		}
	}
	s.res.Spills++
	s.traceWarpRelease(victim)
	s.lastProgress = s.cycle
}

// restoreSpilled tries to bring spilled warps back.
func (s *SM) restoreSpilled() {
	for _, cta := range s.ctaSlots {
		if cta == nil {
			continue
		}
		for _, w := range cta.warps {
			if w.state != wSpilled || s.cycle < w.restoreAfter {
				continue
			}
			regs := make([]rename.SpilledReg, len(w.spillSaved))
			for i, sv := range w.spillSaved {
				regs[i] = rename.SpilledReg{Reg: sv.reg, Val: sv.val}
			}
			// Restores must not steal back the headroom spilling created:
			// warps outside the drain CTA stay in memory while the drain
			// CTA is still infeasible (§8.1: "while the pending warps'
			// registers are maintained in the memory, the active warps
			// will proceed"), and any restore needs real slack.
			if cta.slot != s.gov.Drain() &&
				s.gov.NeedSpill(s.file.FreeTotal(), s.file.FreeBanks()) {
				continue
			}
			if s.file.FreeTotal() < len(regs)*2 {
				continue
			}
			if !s.table.RestoreWarp(w.slot, regs) {
				continue
			}
			for _, sr := range regs {
				s.gov.OnAlloc(cta.slot, arch.BankOf(int(sr.Reg)))
				s.mem.noteRequests(1) // one coalesced load per register
			}
			s.traceRestorePins(w)
			w.spillSaved = nil
			w.state = wPending
			w.readyAt = s.cycle + uint64(arch.GlobalMemLatency)
			s.pendingQ = append(s.pendingQ, w)
		}
	}
}
