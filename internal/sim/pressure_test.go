package sim

import (
	"reflect"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
	"regvirt/internal/throttle"
)

// A register-hungry kernel: 24 architected registers all live across a
// long-latency load window, 16 warps — demands ~384 registers of
// steady-state storage.
const hungrySrc = `
.kernel hungry
.reg 24
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r2, r1, c[0], r0
    shl  r3, r2, 2
    iadd r3, r3, c[1]
    movi r4, 1
    movi r5, 2
    movi r6, 3
    movi r7, 4
    movi r8, 5
    movi r9, 6
    movi r10, 7
    movi r11, 8
    movi r12, 9
    movi r13, 10
    movi r14, 11
    movi r15, 12
    movi r16, 13
    movi r17, 14
    movi r18, 15
    movi r19, 16
    ld.global r20, [r3+0]
    iadd r21, r4, r5
    iadd r21, r21, r6
    iadd r21, r21, r7
    iadd r21, r21, r8
    iadd r21, r21, r9
    iadd r21, r21, r10
    iadd r21, r21, r11
    iadd r21, r21, r12
    iadd r21, r21, r13
    iadd r21, r21, r14
    iadd r21, r21, r15
    iadd r21, r21, r16
    iadd r21, r21, r17
    iadd r21, r21, r18
    iadd r21, r21, r19
    iadd r21, r21, r20
    bar
    shl  r22, r2, 2
    iadd r22, r22, c[2]
    imul r23, r21, 3
    st.global [r22+0], r23
    exit
`

func hungrySpec(k *compiler.Kernel) LaunchSpec {
	return LaunchSpec{
		Kernel: k, GridCTAs: 16 * 4, ThreadsPerCTA: 128, ConcCTAs: 4,
		Consts: []uint32{128, 0x1000, 0x2000},
	}
}

// TestSpillFallbackEndToEnd forces the §8.1 corner machinery: a file far
// smaller than the kernel's live set must complete via warp spilling,
// with correct results.
func TestSpillFallbackEndToEnd(t *testing.T) {
	base, err := compiler.Compile(isa.MustParse(hungrySrc), compiler.Options{NoFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{Mode: rename.ModeBaseline}, hungrySpec(base))
	if err != nil {
		t.Fatal(err)
	}
	virt, err := compiler.Compile(isa.MustParse(hungrySrc), compiler.Options{TableBytes: 1024, ResidentWarps: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Every warp holds ~22 live registers at the barrier, so one CTA's
	// four warps need ~88 — an 80-register file cannot let even a single
	// CTA reach the barrier. Only the §8.1 spill fallback makes progress.
	got, err := Run(Config{
		Mode: rename.ModeCompiler, PhysRegs: 80,
		PoisonReleased: true, SelfCheckEvery: 512,
		MaxCycles: 20_000_000,
	}, hungrySpec(virt))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got.Stores, ref.Stores) {
		t.Error("spill-pressured results differ from baseline")
	}
	if got.Spills == 0 {
		t.Errorf("expected warp spills under extreme pressure (throttles=%d, bank stalls=%d)",
			got.Throttle.Throttles, got.Stalls.Bank)
	}
}

// TestWorstCasePolicyEquivalence runs the paper's verbatim throttle rule:
// slower, but must still be correct.
func TestWorstCasePolicyEquivalence(t *testing.T) {
	base, err := compiler.Compile(isa.MustParse(hungrySrc), compiler.Options{NoFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{Mode: rename.ModeBaseline}, hungrySpec(base))
	if err != nil {
		t.Fatal(err)
	}
	virt, err := compiler.Compile(isa.MustParse(hungrySrc), compiler.Options{TableBytes: 1024, ResidentWarps: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{
		Mode: rename.ModeCompiler, PhysRegs: 512,
		ThrottlePolicy: throttle.PolicyWorstCase,
		PoisonReleased: true, SelfCheckEvery: 512,
	}, hungrySpec(virt))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got.Stores, ref.Stores) {
		t.Error("worst-case policy results differ")
	}
}

// TestStallAccounting sanity-checks the stall breakdown counters.
func TestStallAccounting(t *testing.T) {
	virt, err := compiler.Compile(isa.MustParse(hungrySrc), compiler.Options{TableBytes: 1024, ResidentWarps: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Mode: rename.ModeCompiler, PhysRegs: 256, MaxCycles: 20_000_000}, hungrySpec(virt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls.Hazard == 0 {
		t.Error("a dependent-chain kernel must record hazard stalls")
	}
	if res.Stalls.Bank == 0 && res.Stalls.Throttle == 0 {
		t.Error("a pressured run must record allocation stalls")
	}
}
