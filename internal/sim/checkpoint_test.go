package sim

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"regvirt/internal/rename"
)

// The durability contract: a run resumed from ANY checkpoint — after a
// full gob round trip, the encoding the jobs store uses on disk — must
// produce a Result byte-identical to the uninterrupted run, and the act
// of checkpointing must not perturb the run it observes. The matrix
// reuses the determinism-test workloads (streaming stores, dependent
// loads, barriers) across rename modes, both schedulers and the
// whole-device engine at several worker counts.

// gobRoundTrip pushes a checkpoint through the wire encoding the
// durable store uses, so every resume below exercises serialization.
func gobRoundTrip(t *testing.T, ck *Checkpoint) *Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatalf("encode checkpoint: %v", err)
	}
	var out Checkpoint
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	return &out
}

func resultJSON(t *testing.T, res *Result, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	b, jerr := json.Marshal(res)
	if jerr != nil {
		t.Fatal(jerr)
	}
	return b
}

func runJSON(t *testing.T, cfg Config, spec LaunchSpec) []byte {
	t.Helper()
	res, err := Run(cfg, spec)
	return resultJSON(t, res, err)
}

func resumeJSON(t *testing.T, cfg Config, spec LaunchSpec, ck *Checkpoint) []byte {
	t.Helper()
	res, err := Resume(cfg, spec, ck)
	return resultJSON(t, res, err)
}

// ckConfigs are the single-SM configuration axes the resume matrix
// covers: the default LRR scheduler, and a stressed variant exercising
// GTO's greedy pointer, power gating, poisoning and periodic
// self-checks (which would trip on any mis-restored allocator state).
func ckConfigs(mode rename.Mode) []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"lrr", Config{Mode: mode, PhysRegs: 512, MaxCycles: 2_000_000}},
		{"gto-gated", Config{
			Mode: mode, PhysRegs: 512, MaxCycles: 2_000_000,
			Scheduler: SchedGTO, PowerGating: true, WakeupLatency: 3,
			PoisonReleased: true, SelfCheckEvery: 512,
		}},
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	for _, w := range gpuDetWorkloads() {
		for _, m := range detModes() {
			for _, cc := range ckConfigs(m.mode) {
				t.Run(fmt.Sprintf("%s/%s/%s", w.name, m.name, cc.name), func(t *testing.T) {
					spec := gpuDetSpec(t, w, m.mode)
					cfg := m.apply(cc.cfg)
					ref := runJSON(t, cfg, spec)

					var cks []*Checkpoint
					ckCfg := cfg
					ckCfg.CheckpointEvery = 64
					ckCfg.Checkpoint = func(c *Checkpoint) { cks = append(cks, c) }
					observed := runJSON(t, ckCfg, spec)
					if !bytes.Equal(ref, observed) {
						t.Fatal("checkpointing perturbed the run it observed")
					}
					if len(cks) == 0 {
						t.Fatal("run produced no checkpoints (CheckpointEvery too coarse for the workload)")
					}
					for _, i := range []int{0, len(cks) / 2, len(cks) - 1} {
						got := resumeJSON(t, cfg, spec, gobRoundTrip(t, cks[i]))
						if !bytes.Equal(ref, got) {
							t.Errorf("resume from checkpoint %d (cycle %d) diverges", i, cks[i].Cycle)
						}
					}
				})
			}
		}
	}
}

func TestResumeGPUMatchesUninterrupted(t *testing.T) {
	for _, w := range gpuDetWorkloads() {
		for _, m := range detModes() {
			t.Run(fmt.Sprintf("%s/%s", w.name, m.name), func(t *testing.T) {
				spec := gpuDetSpec(t, w, m.mode)
				cfg := m.apply(Config{Mode: m.mode, PhysRegs: 512, MaxCycles: 2_000_000})
				ref, err := gpuResultJSON(t, cfg, spec)
				if err != nil {
					t.Fatal(err)
				}

				var cks []*Checkpoint
				ckCfg := cfg
				ckCfg.CheckpointEvery = 64
				ckCfg.Checkpoint = func(c *Checkpoint) { cks = append(cks, c) }
				res, err := RunGPU(ckCfg, spec)
				if err != nil {
					t.Fatal(err)
				}
				observed, _ := json.Marshal(res)
				if !bytes.Equal(ref, observed) {
					t.Fatal("checkpointing perturbed the device run it observed")
				}
				if len(cks) == 0 {
					t.Fatal("device run produced no checkpoints")
				}
				// A resumed device must match at every worker count: the
				// kill may happen under one GPUParallel setting and the
				// restart under another.
				for _, i := range []int{0, len(cks) - 1} {
					for _, workers := range []int{0, 5} {
						rcfg := cfg
						rcfg.GPUParallel = workers
						got, rerr := ResumeGPU(rcfg, spec, gobRoundTrip(t, cks[i]))
						if rerr != nil {
							t.Fatalf("resume ck %d workers %d: %v", i, workers, rerr)
						}
						gotJSON, _ := json.Marshal(got)
						if !bytes.Equal(ref, gotJSON) {
							t.Errorf("resume from device checkpoint %d with %d workers diverges", i, workers)
						}
					}
				}
			})
		}
	}
}

// TestCheckpointOnCancel is the graceful-shutdown path: a cancelled run
// emits a final consistent snapshot, and resuming it completes with the
// uninterrupted result.
func TestCheckpointOnCancel(t *testing.T) {
	w := gpuDetWorkloads()[0]
	spec := gpuDetSpec(t, w, rename.ModeCompiler)
	cfg := Config{Mode: rename.ModeCompiler, PhysRegs: 512, MaxCycles: 2_000_000}

	t.Run("single-sm", func(t *testing.T) {
		ref := runJSON(t, cfg, spec)
		cancel := make(chan struct{})
		close(cancel) // cancelled before the first cycle's poll
		var last *Checkpoint
		ckCfg := cfg
		ckCfg.Cancel = cancel
		ckCfg.CheckpointOnCancel = true
		ckCfg.Checkpoint = func(c *Checkpoint) { last = c }
		if _, err := Run(ckCfg, spec); !errors.Is(err, ErrCancelled) {
			t.Fatalf("want ErrCancelled, got %v", err)
		}
		if last == nil {
			t.Fatal("cancelled run emitted no shutdown checkpoint")
		}
		got := resumeJSON(t, cfg, spec, gobRoundTrip(t, last))
		if !bytes.Equal(ref, got) {
			t.Fatal("resume after cancellation diverges from uninterrupted run")
		}
	})

	t.Run("device", func(t *testing.T) {
		ref, err := gpuResultJSON(t, cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		// Cancel mid-run, from the checkpoint hook itself (synchronous on
		// the engine goroutine, so the abort point is deterministic).
		cancel := make(chan struct{})
		var last *Checkpoint
		ckCfg := cfg
		ckCfg.GPUParallel = 4
		ckCfg.Cancel = cancel
		ckCfg.CheckpointEvery = 300
		ckCfg.CheckpointOnCancel = true
		ckCfg.Checkpoint = func(c *Checkpoint) {
			last = c
			select {
			case <-cancel:
			default:
				close(cancel)
			}
		}
		if _, err := RunGPU(ckCfg, spec); !errors.Is(err, ErrCancelled) {
			t.Fatalf("want ErrCancelled, got %v", err)
		}
		if last == nil {
			t.Fatal("cancelled device run emitted no shutdown checkpoint")
		}
		got, rerr := ResumeGPU(cfg, spec, gobRoundTrip(t, last))
		if rerr != nil {
			t.Fatal(rerr)
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(ref, gotJSON) {
			t.Fatal("device resume after cancellation diverges from uninterrupted run")
		}
	})
}

// TestResumeValidatesGeometry: a checkpoint applied against the wrong
// config or launch must fail loudly, never silently mis-restore.
func TestResumeValidatesGeometry(t *testing.T) {
	w := gpuDetWorkloads()[0]
	spec := gpuDetSpec(t, w, rename.ModeCompiler)
	cfg := Config{Mode: rename.ModeCompiler, PhysRegs: 512, MaxCycles: 2_000_000}
	var cks []*Checkpoint
	ckCfg := cfg
	ckCfg.CheckpointEvery = 256
	ckCfg.Checkpoint = func(c *Checkpoint) { cks = append(cks, c) }
	if _, err := Run(ckCfg, spec); err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints")
	}
	ck := cks[0]

	if _, err := Resume(cfg, spec, nil); err == nil {
		t.Error("Resume(nil checkpoint) must fail")
	}
	if _, err := ResumeGPU(cfg, spec, ck); err == nil {
		t.Error("ResumeGPU with a single-SM checkpoint must fail")
	}
	bigCfg := cfg
	bigCfg.PhysRegs = 1024
	if _, err := Resume(bigCfg, spec, ck); err == nil {
		t.Error("Resume with mismatched PhysRegs must fail")
	}
	bigSpec := spec
	bigSpec.GridCTAs = 480
	if _, err := Resume(cfg, bigSpec, ck); err == nil {
		t.Error("Resume with mismatched grid must fail")
	}

	// Corrupted indices must error, not panic.
	bad := gobRoundTrip(t, ck)
	if len(bad.SM.Ready) > 0 {
		bad.SM.Ready[0] = 99999
		if _, err := Resume(cfg, spec, bad); err == nil {
			t.Error("Resume with out-of-range warp index must fail")
		}
	}
}
