package sim

import (
	"reflect"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
)

// These tests validate the *oracle*: if the compiler emitted unsound
// release metadata, the poison machinery must turn it into an observable
// output difference. A verification harness that cannot catch injected
// bugs proves nothing.

// faultKernel: r2 is written once and read twice with a gap; releasing
// it at the first read is unsound.
const faultSrc = `
.kernel fault
.reg 6
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r0, r1, c[0], r0
    movi r2, 1234
    iadd r3, r2, 1
    iadd r4, r3, 7
    iadd r4, r4, r2
    shl  r5, r0, 2
    iadd r5, r5, c[1]
    st.global [r5+0], r4
    exit
`

func faultSpec(k *compiler.Kernel) LaunchSpec {
	return LaunchSpec{
		Kernel: k, GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x9000},
	}
}

func TestInjectedPirFaultIsCaught(t *testing.T) {
	base, err := compiler.Compile(isa.MustParse(faultSrc), compiler.Options{NoFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{Mode: rename.ModeBaseline}, faultSpec(base))
	if err != nil {
		t.Fatal(err)
	}
	virt, err := compiler.Compile(isa.MustParse(faultSrc), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the clean compiled kernel matches.
	clean, err := Run(Config{Mode: rename.ModeCompiler, PoisonReleased: true}, faultSpec(virt))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Stores, ref.Stores) {
		t.Fatal("clean kernel already differs; fault injection meaningless")
	}
	// Inject: release r2 at its FIRST read (the iadd r3, r2, 1), which is
	// unsound because r2 is read again two instructions later.
	bad := virt.Prog.Clone()
	injected := false
	for _, in := range bad.Instrs {
		if in.Op == isa.OpIAdd && in.NSrc == 2 &&
			in.Srcs[1].Kind == isa.OpdImm && in.Srcs[1].Imm == 1 {
			if in.Rel[0] {
				t.Fatal("compiler already releases here?!")
			}
			in.Rel[0] = true
			injected = true
			break
		}
	}
	if !injected {
		t.Fatalf("could not find injection site:\n%s", bad)
	}
	k := *virt
	k.Prog = bad
	faulty, err := Run(Config{Mode: rename.ModeCompiler, PoisonReleased: true}, faultSpec(&k))
	if err != nil {
		// A hard failure (invariant violation) is also an acceptable
		// detection.
		t.Logf("fault detected as error: %v", err)
		return
	}
	if reflect.DeepEqual(faulty.Stores, ref.Stores) {
		t.Error("unsound pir release went UNDETECTED — the poison oracle is broken")
	}
}

func TestInjectedPbrFaultIsCaught(t *testing.T) {
	// A diamond whose join reads a register live across it; injecting a
	// pbr release of that register at the join must corrupt output.
	src := `
.kernel pfault
.reg 7
    s2r  r0, %tid.x
    s2r  r1, %ctaid.x
    imad r0, r1, c[0], r0
    movi r2, 99
    and  r3, r0, 1
    isetp.eq p0, r3, 0
@p0 bra even_bb
    movi r4, 3
    bra join
even_bb:
    movi r4, 5
join:
    iadd r5, r4, r2
    iadd r5, r5, r2
    shl  r6, r0, 2
    iadd r6, r6, c[1]
    st.global [r6+0], r5
    exit
`
	base, err := compiler.Compile(isa.MustParse(src), compiler.Options{NoFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{Mode: rename.ModeBaseline}, faultSpec(base))
	if err != nil {
		t.Fatal(err)
	}
	virt, err := compiler.Compile(isa.MustParse(src), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := virt.Prog.Clone()
	// Find the register holding 99 (long-lived, read twice at the join)
	// in the renumbered program: the movi with imm 99.
	var victim isa.RegID = 255
	for _, in := range bad.Instrs {
		if in.Op == isa.OpMovi && in.Srcs[0].Imm == 99 {
			victim = in.Dst.Reg
		}
	}
	if victim == 255 {
		t.Fatal("victim register not found")
	}
	// Inject a pbr releasing it at the join block (prepend to the join's
	// first pbr, or flip a Rel bit on its first read).
	injected := false
	for _, in := range bad.Instrs {
		if in.Op == isa.OpIAdd && in.NSrc == 2 && in.Srcs[1].IsReg() && in.Srcs[1].Reg == victim && !in.Rel[1] {
			in.Rel[1] = true
			injected = true
			break
		}
	}
	if !injected {
		t.Fatalf("no injection site:\n%s", bad)
	}
	k := *virt
	k.Prog = bad
	faulty, err := Run(Config{Mode: rename.ModeCompiler, PoisonReleased: true}, faultSpec(&k))
	if err != nil {
		t.Logf("fault detected as error: %v", err)
		return
	}
	if reflect.DeepEqual(faulty.Stores, ref.Stores) {
		t.Error("unsound release of a join-live register went UNDETECTED")
	}
}

// Without poisoning, the same fault may escape when the physical
// register is not re-allocated before the second read — demonstrating
// why PoisonReleased exists.
func TestPoisonStrictlyStrongerThanPlainEquivalence(t *testing.T) {
	virt, err := compiler.Compile(isa.MustParse(faultSrc), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := virt.Prog.Clone()
	for _, in := range bad.Instrs {
		if in.Op == isa.OpIAdd && in.NSrc == 2 &&
			in.Srcs[1].Kind == isa.OpdImm && in.Srcs[1].Imm == 1 {
			in.Rel[0] = true
			break
		}
	}
	k := *virt
	k.Prog = bad
	// Run without poison at a huge file: the freed register is unlikely
	// to be re-allocated, so the stale value survives and the bug hides.
	quiet, err := Run(Config{Mode: rename.ModeCompiler}, faultSpec(&k))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := compiler.Compile(isa.MustParse(faultSrc), compiler.Options{NoFlags: true})
	ref, err := Run(Config{Mode: rename.ModeBaseline}, faultSpec(base))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(quiet.Stores, ref.Stores) {
		t.Skip("fault visible even without poison on this schedule")
	}
	// Same fault, poison on: must be caught now.
	loud, err := Run(Config{Mode: rename.ModeCompiler, PoisonReleased: true}, faultSpec(&k))
	if err != nil {
		return
	}
	if reflect.DeepEqual(loud.Stores, ref.Stores) {
		t.Error("poisoning failed to expose a fault that plain equivalence missed")
	}
}
