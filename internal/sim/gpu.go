package sim

import (
	"fmt"
	"runtime/debug"
	"sync"

	"regvirt/internal/arch"
	"regvirt/internal/isa"
)

// GPUResult aggregates a whole-GPU (16-SM) simulation.
type GPUResult struct {
	// Cycles is the device completion time (last SM to finish).
	Cycles uint64
	// Stores is the final global memory content (shared across SMs).
	Stores map[uint32]uint32
	// PerSM holds each SM's individual result.
	PerSM []*Result
	// Instrs sums issued instructions across SMs.
	Instrs uint64
	// PeakLiveRegs sums each SM's peak concurrently-live registers.
	PeakLiveRegs int
	// CompilerAllocatedRegs sums the conventional allocations.
	CompilerAllocatedRegs int
	// Profile is the device-wide cycle attribution (Config.Profile
	// only): the per-SM profiles summed, minus the per-slot timeline
	// samples, which stay per-SM in PerSM[i].Profile.
	Profile *Profile
}

// AllocationReduction is the Fig. 10 metric at device scope.
func (r *GPUResult) AllocationReduction() float64 {
	if r.CompilerAllocatedRegs == 0 {
		return 0
	}
	red := float64(r.CompilerAllocatedRegs-r.PeakLiveRegs) / float64(r.CompilerAllocatedRegs)
	if red < 0 {
		return 0
	}
	return red
}

// dramTokensPerCycle is the device-wide memory request acceptance rate
// shared by all SMs (half the aggregate of the per-SM ports, so DRAM
// bandwidth — not the SM port — is the binding constraint under load).
const dramTokensPerCycle = arch.NumSMs * arch.MemIssueWidth / 2

// RunGPU simulates the full 16-SM device: every CTA of the grid executes
// on some SM, a shared dispatcher hands CTAs to SMs as slots free, every
// SM sees the same global memory, and a device-wide DRAM bandwidth
// budget couples their memory behaviour. Run (single SM) remains the
// fast path for the evaluation harness; RunGPU is the fidelity path.
//
// The device steps on a two-phase cycle engine:
//
//	compute — every SM advances one cycle touching only SM-private
//	          state; shared memory is read through its phasedPort as
//	          of the previous commit, and all shared-state effects
//	          (stores, DRAM token movement) are buffered as intents.
//	commit  — the buffered intents are applied in SM index order, then
//	          every SM gets a CTA-dispatch turn, again in index order.
//
// Because compute phases are mutually independent and commits happen in
// a fixed order, running the compute phase on cfg.GPUParallel worker
// goroutines (with a barrier at each phase boundary) produces results
// byte-identical to stepping the SMs sequentially; the knob trades
// wall-clock only. GPUParallel <= 1 is the sequential reference engine.
func RunGPU(cfg Config, spec LaunchSpec) (*GPUResult, error) {
	eng, err := buildGPU(&cfg, &spec)
	if err != nil {
		return nil, err
	}
	// Initial distribution is round-robin across SMs (GigaThread-style),
	// one CTA per SM per round, so a small grid spreads instead of
	// piling onto the first SMs.
	for slot := 0; slot < spec.ConcCTAs && !eng.src.empty(); slot++ {
		for _, sm := range eng.sms {
			if sm.ctaSlots[slot] == nil {
				if !sm.dispatchInto(slot) {
					break
				}
			}
		}
	}
	if err := eng.run(); err != nil {
		return nil, err
	}
	return eng.finish(), nil
}

// ResumeGPU continues a whole-device run from a checkpoint taken by an
// earlier RunGPU with the same Config and LaunchSpec. Like the
// single-SM Resume, it skips the initial CTA distribution — the
// snapshot already reflects every dispatch decision — and the resumed
// device is byte-identical to the uninterrupted one at any GPUParallel
// setting.
func ResumeGPU(cfg Config, spec LaunchSpec, ck *Checkpoint) (*GPUResult, error) {
	if ck == nil || ck.GPU == nil {
		return nil, fmt.Errorf("%w: ResumeGPU needs a whole-device checkpoint", ErrBadCheckpoint)
	}
	snap := ck.GPU
	eng, err := buildGPU(&cfg, &spec)
	if err != nil {
		return nil, err
	}
	if len(snap.SMs) != len(eng.sms) {
		return nil, fmt.Errorf("%w: checkpoint has %d SMs, device has %d", ErrBadCheckpoint, len(snap.SMs), len(eng.sms))
	}
	if snap.Src.Limit != eng.src.limit {
		return nil, fmt.Errorf("%w: checkpoint CTA limit %d, launch expects %d", ErrBadCheckpoint, snap.Src.Limit, eng.src.limit)
	}
	eng.src.next = snap.Src.Next
	eng.src.returned = append([]int(nil), snap.Src.Returned...)
	eng.shared.data = cellsToMap(snap.Data)
	eng.shared.outstanding = snap.SharedOutstanding
	for i, sm := range eng.sms {
		if err := sm.restore(snap.SMs[i]); err != nil {
			return nil, fmt.Errorf("%w: SM %d: %w", ErrBadCheckpoint, i, err)
		}
	}
	eng.cycle = snap.Cycle
	if err := eng.run(); err != nil {
		return nil, err
	}
	return eng.finish(), nil
}

// buildGPU constructs the shared state, the 16 SMs and their phased
// ports — everything RunGPU and ResumeGPU have in common before any
// CTA placement. Per-SM cancellation polling is disabled: the engine
// polls Cancel once per device cycle at the commit boundary, which is
// both faster than the per-SM cancelCheckEvery granularity and the only
// point where a cancellation checkpoint is consistent.
func buildGPU(cfg *Config, spec *LaunchSpec) (*gpuEngine, error) {
	// Validate once (also applies defaulting to cfg).
	if err := validate(cfg, spec); err != nil {
		return nil, err
	}
	shared := &gpuShared{data: make(map[memKey]uint32), tokensPerCycle: dramTokensPerCycle}
	src := &ctaSource{limit: spec.GridCTAs}

	sms := make([]*SM, arch.NumSMs)
	ports := make([]*phasedPort, arch.NumSMs)
	for i := range sms {
		sm, err := newSM(*cfg, *spec)
		if err != nil {
			return nil, err
		}
		sm.cfg.Cancel = nil
		ports[i] = &phasedPort{shared: shared, smIndex: i}
		sm.mem = ports[i]
		sm.src = src
		sm.deferDispatch = true
		sm.smID = i
		sms[i] = sm
	}
	return &gpuEngine{cfg: *cfg, sms: sms, ports: ports, src: src, shared: shared}, nil
}

// finish aggregates the per-SM results once the engine completed.
func (e *gpuEngine) finish() *GPUResult {
	out := &GPUResult{Stores: globalStoresOf(e.shared.data)}
	for _, sm := range e.sms {
		res := sm.finalize()
		out.PerSM = append(out.PerSM, res)
		if res.Cycles > out.Cycles {
			out.Cycles = res.Cycles
		}
		out.Instrs += res.Instrs
		out.PeakLiveRegs += res.PeakLiveRegs
		out.CompilerAllocatedRegs += res.CompilerAllocatedRegs
		if res.Profile != nil {
			if out.Profile == nil {
				out.Profile = newProfile()
			}
			mergeProfile(out.Profile, res.Profile)
		}
	}
	return out
}

func globalStoresOf(data map[memKey]uint32) map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for k, v := range data {
		if k.space == isa.SpaceGlobal {
			out[k.addr] = v
		}
	}
	return out
}

// stepContained runs one SM cycle, converting a panic into an error.
// On a compute-phase worker goroutine an uncontained panic would kill
// the whole process (no caller can recover it), so the device engine
// — both its parallel and sequential paths, which must behave
// identically — turns panics into run failures. The single-SM Run
// keeps natural panic propagation; its callers (the jobs layer) do
// their own containment.
func stepContained(i int, sm *SM) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("sim: SM %d panicked at cycle %d: %v\n%s", i, sm.cycle, v, debug.Stack())
		}
	}()
	return sm.stepChecked()
}

// gpuEngine drives the two-phase device cycle loop.
type gpuEngine struct {
	cfg    Config
	sms    []*SM
	ports  []*phasedPort
	src    *ctaSource
	shared *gpuShared
	errs   []error
	// cycle counts engine iterations (every unfinished SM steps once per
	// iteration) — the device clock checkpoints are stamped with.
	cycle uint64
}

// snapshot captures the whole-device state. Only valid between
// iterations (after commit), when every port's buffered intents are
// empty and shared state is quiescent.
func (e *gpuEngine) snapshot() *GPUSnapshot {
	g := &GPUSnapshot{
		Cycle:             e.cycle,
		Src:               SrcSnap{Next: e.src.next, Limit: e.src.limit, Returned: append([]int(nil), e.src.returned...)},
		Data:              sortedCells(e.shared.data),
		SharedOutstanding: e.shared.outstanding,
	}
	for _, sm := range e.sms {
		g.SMs = append(g.SMs, sm.snapshot())
	}
	return g
}

// run executes the device to completion. cfg.GPUParallel is the
// compute-phase goroutine count; values <= 1 step the SMs inline (the
// sequential reference), values above the SM count are clamped.
func (e *gpuEngine) run() error {
	workers := e.cfg.GPUParallel
	if workers > len(e.sms) {
		workers = len(e.sms)
	}
	e.errs = make([]error, len(e.sms))

	var (
		start []chan struct{}
		wg    sync.WaitGroup
	)
	if workers > 1 {
		// Persistent workers with a static SM partition (SM i belongs to
		// worker i mod workers): no cross-worker state, no work stealing,
		// and therefore nothing order-dependent.
		start = make([]chan struct{}, workers)
		for w := 0; w < workers; w++ {
			start[w] = make(chan struct{}, 1)
			go func(w int) {
				for range start[w] {
					for i := w; i < len(e.sms); i += workers {
						if sm := e.sms[i]; !sm.finished() {
							e.errs[i] = stepContained(i, sm)
						}
					}
					wg.Done()
				}
			}(w)
		}
		defer func() {
			for _, ch := range start {
				close(ch)
			}
		}()
	}

	for {
		// The engine owns cancellation: one poll per device cycle at the
		// commit boundary (per-SM polling is disabled in buildGPU), so a
		// cancelled device always stops on a quiescent boundary where a
		// shutdown checkpoint is consistent.
		if e.cfg.Cancel != nil {
			select {
			case <-e.cfg.Cancel:
				if e.cfg.CheckpointOnCancel && e.cfg.Checkpoint != nil {
					e.cfg.Checkpoint(&Checkpoint{Cycle: e.cycle, GPU: e.snapshot()})
				}
				return fmt.Errorf("%w at device cycle %d", ErrCancelled, e.cycle)
			default:
			}
		}
		// Commit-side bookkeeping (also runs before the first cycle so a
		// grid no SM can ever hold fails fast): give every SM a dispatch
		// turn in index order, then settle termination.
		allDone, anyLive := true, false
		for _, sm := range e.sms {
			if !sm.finished() {
				sm.dispatchCTAs()
			}
		}
		for _, sm := range e.sms {
			if !sm.finished() {
				allDone = false
			}
			if sm.liveCTAs > 0 {
				anyLive = true
			}
		}
		if allDone {
			return nil
		}
		if !anyLive && !e.src.empty() {
			// No SM holds a CTA, none could launch one, and nothing is in
			// flight: the remaining CTAs can never be placed.
			return fmt.Errorf("sim: %d CTAs undispatchable (register file too small for one CTA)",
				e.src.remaining())
		}

		// Compute phase: every unfinished SM advances one cycle against
		// the committed shared state.
		if workers > 1 {
			wg.Add(workers)
			for _, ch := range start {
				ch <- struct{}{}
			}
			wg.Wait()
		} else {
			for i, sm := range e.sms {
				if !sm.finished() {
					e.errs[i] = stepContained(i, sm)
				}
			}
		}
		for i := range e.sms {
			if e.errs[i] != nil {
				return fmt.Errorf("sim: SM %d: %w", i, e.errs[i])
			}
		}

		// Commit phase: apply every SM's buffered shared-state effects in
		// index order.
		for _, p := range e.ports {
			p.commit()
		}
		e.cycle++
		if n := e.cfg.CheckpointEvery; n > 0 && e.cfg.Checkpoint != nil && e.cycle%n == 0 {
			e.cfg.Checkpoint(&Checkpoint{Cycle: e.cycle, GPU: e.snapshot()})
		}
	}
}
