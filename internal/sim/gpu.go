package sim

import (
	"fmt"

	"regvirt/internal/arch"
)

// GPUResult aggregates a whole-GPU (16-SM) simulation.
type GPUResult struct {
	// Cycles is the device completion time (last SM to finish).
	Cycles uint64
	// Stores is the final global memory content (shared across SMs).
	Stores map[uint32]uint32
	// PerSM holds each SM's individual result.
	PerSM []*Result
	// Instrs sums issued instructions across SMs.
	Instrs uint64
	// PeakLiveRegs sums each SM's peak concurrently-live registers.
	PeakLiveRegs int
	// CompilerAllocatedRegs sums the conventional allocations.
	CompilerAllocatedRegs int
}

// AllocationReduction is the Fig. 10 metric at device scope.
func (r *GPUResult) AllocationReduction() float64 {
	if r.CompilerAllocatedRegs == 0 {
		return 0
	}
	red := float64(r.CompilerAllocatedRegs-r.PeakLiveRegs) / float64(r.CompilerAllocatedRegs)
	if red < 0 {
		return 0
	}
	return red
}

// dramTokensPerCycle is the device-wide memory request acceptance rate
// shared by all SMs (half the aggregate of the per-SM ports, so DRAM
// bandwidth — not the SM port — is the binding constraint under load).
const dramTokensPerCycle = arch.NumSMs * arch.MemIssueWidth / 2

// RunGPU simulates the full 16-SM device: every CTA of the grid executes
// on some SM, a shared dispatcher hands CTAs to SMs as slots free, every
// SM sees the same global memory, and a device-wide DRAM bandwidth
// bucket couples their memory behaviour. Run (single SM) remains the
// fast path for the evaluation harness; RunGPU is the fidelity path.
func RunGPU(cfg Config, spec LaunchSpec) (*GPUResult, error) {
	// Validate once (also applies defaulting to cfg).
	if err := validate(&cfg, &spec); err != nil {
		return nil, err
	}
	shared := newMemSys()
	shared.dram = &dram{tokensPerCycle: dramTokensPerCycle}
	src := &ctaSource{limit: spec.GridCTAs}

	sms := make([]*SM, arch.NumSMs)
	for i := range sms {
		sm, err := newSM(cfg, spec)
		if err != nil {
			return nil, err
		}
		sm.mem = shared.shareWith()
		sm.src = src
		sms[i] = sm
	}
	// Initial distribution is round-robin across SMs (GigaThread-style),
	// one CTA per SM per round, so a small grid spreads instead of
	// piling onto the first SMs.
	for slot := 0; slot < spec.ConcCTAs && !src.empty(); slot++ {
		for _, sm := range sms {
			if sm.ctaSlots[slot] == nil {
				if !sm.dispatchInto(slot) {
					break
				}
			}
		}
	}
	for {
		running := false
		for _, sm := range sms {
			if sm.finished() {
				continue
			}
			running = true
			if err := sm.stepChecked(); err != nil {
				return nil, fmt.Errorf("sim: SM: %w", err)
			}
		}
		if !running {
			if !src.empty() {
				return nil, fmt.Errorf("sim: %d CTAs undispatchable (register file too small for one CTA)",
					len(src.returned))
			}
			break
		}
		// A free SM may pick up CTAs another SM could not hold.
		for _, sm := range sms {
			if !sm.finished() {
				sm.dispatchCTAs()
			}
		}
	}
	out := &GPUResult{Stores: shared.globalStores()}
	for _, sm := range sms {
		res := sm.finalize()
		out.PerSM = append(out.PerSM, res)
		if res.Cycles > out.Cycles {
			out.Cycles = res.Cycles
		}
		out.Instrs += res.Instrs
		out.PeakLiveRegs += res.PeakLiveRegs
		out.CompilerAllocatedRegs += res.CompilerAllocatedRegs
	}
	return out, nil
}
