package sim

import (
	"reflect"
	"testing"

	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/rename"
)

// saxpy: out[i] = a*x[i] + y[i], one element per thread.
const saxpySrc = `
.kernel saxpy
    s2r   r0, %tid.x
    s2r   r1, %ctaid.x
    imad  r2, r1, c[0], r0
    shl   r3, r2, 2
    iadd  r4, r3, c[1]
    iadd  r5, r3, c[2]
    ld.global r6, [r4+0]
    ld.global r7, [r5+0]
    imul  r6, r6, c[3]
    iadd  r6, r6, r7
    iadd  r8, r3, c[4]
    st.global [r8+0], r6
    exit
`

// divergent: even lanes double, odd lanes negate-ish, then join and store.
const divergentSrc = `
.kernel divergent
    s2r   r0, %tid.x
    s2r   r1, %ctaid.x
    imad  r2, r1, c[0], r0
    and   r3, r2, 1
    movi  r4, 7
    isetp.eq p0, r3, 0
@p0 bra even_bb
    imul  r5, r2, 3
    iadd  r5, r5, r4
    bra join
even_bb:
    shl   r5, r2, 1
    iadd  r5, r5, r4
join:
    shl   r6, r2, 2
    iadd  r6, r6, c[1]
    st.global [r6+0], r5
    exit
`

// loop: each thread sums K loaded values.
const loopSrc = `
.kernel loopsum
    s2r   r0, %tid.x
    s2r   r1, %ctaid.x
    imad  r2, r1, c[0], r0
    shl   r3, r2, 2
    iadd  r3, r3, c[1]
    movi  r4, 0
    movi  r5, 0
body:
    ld.global r6, [r3+0]
    iadd  r5, r5, r6
    iadd  r3, r3, c[3]
    iadd  r4, r4, 1
    isetp.lt p0, r4, c[2]
@p0 bra body
    shl   r7, r2, 2
    iadd  r7, r7, c[4]
    st.global [r7+0], r5
    exit
`

// barrier: warp 0 of each CTA writes shared memory, everyone reads it
// after a barrier.
const barrierSrc = `
.kernel barshare
    s2r   r0, %tid.x
    s2r   r1, %ctaid.x
    shl   r2, r0, 2
    imul  r3, r0, 5
    st.shared [r2+0], r3
    bar
    xor   r4, r0, 1
    shl   r5, r4, 2
    ld.shared r6, [r5+0]
    imad  r7, r1, c[0], r0
    shl   r7, r7, 2
    iadd  r7, r7, c[1]
    st.global [r7+0], r6
    exit
`

func compileFor(t *testing.T, src string, opts compiler.Options) *compiler.Kernel {
	t.Helper()
	k, err := compiler.Compile(isa.MustParse(src), opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return k
}

func runKernel(t *testing.T, cfg Config, k *compiler.Kernel, spec LaunchSpec) *Result {
	t.Helper()
	spec.Kernel = k
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func saxpySpec() LaunchSpec {
	return LaunchSpec{
		GridCTAs:      32,
		ThreadsPerCTA: 128,
		ConcCTAs:      4,
		Consts:        []uint32{128, 0x10000, 0x20000, 3, 0x30000},
	}
}

func TestSaxpyBaselineFunctional(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{NoFlags: true})
	res := runKernel(t, Config{Mode: rename.ModeBaseline}, k, saxpySpec())
	// 32/16 SMs = 2 CTAs x 128 threads on our SM.
	if len(res.Stores) != 256 {
		t.Fatalf("stored %d words, want 256", len(res.Stores))
	}
	// Check an arbitrary thread's result: tid 5 of CTA 1 => gid 133.
	gid := uint32(133)
	x := memInit(0x10000 + gid*4)
	y := memInit(0x20000 + gid*4)
	want := x*3 + y
	if got := res.Stores[0x30000+gid*4]; got != want {
		t.Errorf("out[133] = %#x, want %#x", got, want)
	}
	if res.Cycles == 0 || res.Instrs == 0 {
		t.Error("no cycles or instructions recorded")
	}
}

// The soundness oracle: every register-management configuration must
// produce bit-identical stores for every kernel shape.
func TestFunctionalEquivalenceAcrossConfigs(t *testing.T) {
	kernels := []struct {
		name, src string
		spec      LaunchSpec
	}{
		{"saxpy", saxpySrc, saxpySpec()},
		{"divergent", divergentSrc, LaunchSpec{
			GridCTAs: 32, ThreadsPerCTA: 96, ConcCTAs: 3,
			Consts: []uint32{96, 0x40000},
		}},
		{"loop", loopSrc, LaunchSpec{
			GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
			Consts: []uint32{64, 0x1000, 5, 256 * 4, 0x50000},
		}},
		{"barrier", barrierSrc, LaunchSpec{
			GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
			Consts: []uint32{64, 0x60000},
		}},
	}
	for _, tk := range kernels {
		t.Run(tk.name, func(t *testing.T) {
			base := compileFor(t, tk.src, compiler.Options{NoFlags: true})
			want := runKernel(t, Config{Mode: rename.ModeBaseline}, base, tk.spec).Stores
			if len(want) == 0 {
				t.Fatal("baseline stored nothing")
			}
			virt := compileFor(t, tk.src, compiler.Options{})
			configs := []struct {
				name string
				cfg  Config
				k    *compiler.Kernel
			}{
				{"hw-only", Config{Mode: rename.ModeHWOnly}, base},
				{"compiler-1024", Config{Mode: rename.ModeCompiler}, virt},
				{"compiler-1024-gated", Config{Mode: rename.ModeCompiler, PowerGating: true, WakeupLatency: 1}, virt},
				{"gpu-shrink-512", Config{Mode: rename.ModeCompiler, PhysRegs: 512}, virt},
				{"gpu-shrink-512-gated", Config{Mode: rename.ModeCompiler, PhysRegs: 512, PowerGating: true, WakeupLatency: 10}, virt},
				{"no-flag-cache", Config{Mode: rename.ModeCompiler, FlagCacheEntries: -1}, virt},
			}
			for _, c := range configs {
				got := runKernel(t, c.cfg, c.k, tk.spec).Stores
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: stores differ from baseline (%d vs %d words)", c.name, len(got), len(want))
				}
			}
		})
	}
}

func TestSpilledProgramEquivalence(t *testing.T) {
	// The compiler-spill baseline (Fig. 11a) must also be functionally
	// identical, just slower.
	base := compileFor(t, loopSrc, compiler.Options{NoFlags: true})
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 5, 256 * 4, 0x50000},
	}
	want := runKernel(t, Config{Mode: rename.ModeBaseline}, base, spec)

	spilled, err := compiler.SpillTo(isa.MustParse(loopSrc), 6)
	if err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	ks, err := compiler.Compile(spilled, compiler.Options{NoFlags: true})
	if err != nil {
		t.Fatalf("Compile spilled: %v", err)
	}
	got := runKernel(t, Config{Mode: rename.ModeBaseline}, ks, spec)
	if !reflect.DeepEqual(got.Stores, want.Stores) {
		t.Error("spilled program results differ")
	}
	if got.Cycles <= want.Cycles {
		t.Errorf("spilled run (%d cycles) should be slower than baseline (%d)", got.Cycles, want.Cycles)
	}
	if got.MemRequests <= want.MemRequests {
		t.Error("spilled run should issue more memory requests")
	}
}

func TestVirtualizationReducesPeakLive(t *testing.T) {
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 20, 256 * 4, 0x50000},
	}
	base := compileFor(t, loopSrc, compiler.Options{NoFlags: true})
	rb := runKernel(t, Config{Mode: rename.ModeBaseline}, base, spec)
	virt := compileFor(t, loopSrc, compiler.Options{})
	rv := runKernel(t, Config{Mode: rename.ModeCompiler}, virt, spec)
	if rv.PeakLiveRegs >= rb.PeakLiveRegs {
		t.Errorf("virtualized peak live %d, baseline %d — expected reduction",
			rv.PeakLiveRegs, rb.PeakLiveRegs)
	}
	if rv.AllocationReduction() <= 0 {
		t.Errorf("AllocationReduction = %v, want > 0", rv.AllocationReduction())
	}
	if rb.AllocationReduction() != 0 {
		t.Errorf("baseline AllocationReduction = %v, want 0", rb.AllocationReduction())
	}
}

func TestFlagCacheCutsDecodedPirs(t *testing.T) {
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 50, 256 * 4, 0x50000},
	}
	virt := compileFor(t, loopSrc, compiler.Options{})
	noCache := runKernel(t, Config{Mode: rename.ModeCompiler, FlagCacheEntries: -1}, virt, spec)
	cached := runKernel(t, Config{Mode: rename.ModeCompiler, FlagCacheEntries: 10}, virt, spec)
	if noCache.DecodedPirs == 0 {
		t.Fatal("no pirs decoded without cache")
	}
	if cached.DecodedPirs*10 > noCache.DecodedPirs {
		t.Errorf("10-entry cache decoded %d pirs vs %d uncached — expected >90%% reduction",
			cached.DecodedPirs, noCache.DecodedPirs)
	}
	if cached.DynamicIncrease() >= noCache.DynamicIncrease() {
		t.Error("dynamic increase should shrink with a flag cache")
	}
}

func TestGPUShrinkThrottles(t *testing.T) {
	// 8 regs/warp x 2 warps x 4 CTAs = 64 regs needed; shrink the file to
	// 64 and force contention (low per-bank headroom plus pinned exempts).
	spec := LaunchSpec{
		GridCTAs: 64, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 8, 256 * 4, 0x50000},
	}
	base := compileFor(t, loopSrc, compiler.Options{NoFlags: true})
	want := runKernel(t, Config{Mode: rename.ModeBaseline}, base, spec)
	virt := compileFor(t, loopSrc, compiler.Options{})
	got := runKernel(t, Config{Mode: rename.ModeCompiler, PhysRegs: 64}, virt, spec)
	if !reflect.DeepEqual(got.Stores, want.Stores) {
		t.Error("shrunk run results differ")
	}
	if got.Throttle.Blocked == 0 {
		t.Log("note: no throttling occurred (enough headroom); tightening further")
	}
}

func TestPartialWarp(t *testing.T) {
	// 40 threads/CTA: one full warp + one 8-lane warp.
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 40, ConcCTAs: 2,
		Consts: []uint32{40, 0x40000},
	}
	base := compileFor(t, divergentSrc, compiler.Options{NoFlags: true})
	res := runKernel(t, Config{Mode: rename.ModeBaseline}, base, spec)
	if len(res.Stores) != 40 {
		t.Fatalf("stored %d words, want 40 (one per thread)", len(res.Stores))
	}
	virt := compileFor(t, divergentSrc, compiler.Options{})
	res2 := runKernel(t, Config{Mode: rename.ModeCompiler, PhysRegs: 512}, virt, spec)
	if !reflect.DeepEqual(res.Stores, res2.Stores) {
		t.Error("partial-warp results differ under virtualization")
	}
}

func TestDivergentResultValues(t *testing.T) {
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x40000},
	}
	k := compileFor(t, divergentSrc, compiler.Options{})
	res := runKernel(t, Config{Mode: rename.ModeCompiler}, k, spec)
	for gid := uint32(0); gid < 64; gid++ {
		var want uint32
		if gid%2 == 0 {
			want = gid*2 + 7
		} else {
			want = gid*3 + 7
		}
		if got := res.Stores[0x40000+gid*4]; got != want {
			t.Fatalf("out[%d] = %d, want %d", gid, got, want)
		}
	}
}

func TestBarrierSharedValues(t *testing.T) {
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x60000},
	}
	k := compileFor(t, barrierSrc, compiler.Options{})
	res := runKernel(t, Config{Mode: rename.ModeCompiler}, k, spec)
	// Thread i reads shared slot of thread i^1: value (i^1)*5.
	for tid := uint32(0); tid < 64; tid++ {
		want := (tid ^ 1) * 5
		if got := res.Stores[0x60000+tid*4]; got != want {
			t.Fatalf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestLiveTraceSampling(t *testing.T) {
	spec := saxpySpec()
	k := compileFor(t, saxpySrc, compiler.Options{})
	res := runKernel(t, Config{Mode: rename.ModeCompiler, Trace: TraceConfig{SampleLiveEvery: 10}}, k, spec)
	if len(res.LiveSamples) == 0 {
		t.Fatal("no live samples recorded")
	}
	sawLive := false
	for _, s := range res.LiveSamples {
		if s.LiveRegs > s.AllocatedRegs {
			t.Fatalf("cycle %d: live %d > allocated %d", s.Cycle, s.LiveRegs, s.AllocatedRegs)
		}
		if s.LiveRegs > 0 {
			sawLive = true
		}
	}
	if !sawLive {
		t.Error("live register count never rose above zero")
	}
}

func TestRegEventTrace(t *testing.T) {
	spec := saxpySpec()
	k := compileFor(t, saxpySrc, compiler.Options{})
	res := runKernel(t, Config{
		Mode:  rename.ModeCompiler,
		Trace: TraceConfig{TrackWarp: 0, TrackRegs: []isa.RegID{0, 1, 2, 3, 4, 5, 6, 7, 8}},
	}, k, spec)
	if len(res.RegEvents) == 0 {
		t.Fatal("no register events recorded")
	}
	mapped := 0
	for _, e := range res.RegEvents {
		if e.Mapped {
			mapped++
		}
	}
	if mapped == 0 {
		t.Error("no mapping events")
	}
}

func TestValidationErrors(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{NoFlags: true})
	bad := []LaunchSpec{
		{Kernel: k, GridCTAs: 0, ThreadsPerCTA: 64, ConcCTAs: 1},
		{Kernel: k, GridCTAs: 1, ThreadsPerCTA: 0, ConcCTAs: 1},
		{Kernel: k, GridCTAs: 1, ThreadsPerCTA: 2000, ConcCTAs: 1},
		{Kernel: k, GridCTAs: 1, ThreadsPerCTA: 64, ConcCTAs: 0},
		{Kernel: k, GridCTAs: 1, ThreadsPerCTA: 64, ConcCTAs: 9},
		{Kernel: k, GridCTAs: 1, ThreadsPerCTA: 512, ConcCTAs: 8}, // 128 warps
		{Kernel: nil, GridCTAs: 1, ThreadsPerCTA: 64, ConcCTAs: 1},
	}
	for i, spec := range bad {
		if _, err := Run(Config{}, spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestHWOnlyReleasesFewerThanCompiler(t *testing.T) {
	// The Fig. 15 premise: waiting for redefinition frees less than
	// releasing at last use.
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 4,
		Consts: []uint32{64, 0x1000, 20, 256 * 4, 0x50000},
	}
	base := compileFor(t, loopSrc, compiler.Options{NoFlags: true})
	virt := compileFor(t, loopSrc, compiler.Options{})
	hw := runKernel(t, Config{Mode: rename.ModeHWOnly}, base, spec)
	cp := runKernel(t, Config{Mode: rename.ModeCompiler}, virt, spec)
	if cp.PeakLiveRegs > hw.PeakLiveRegs {
		t.Errorf("compiler peak live %d > hw-only %d — compiler release should be at least as aggressive",
			cp.PeakLiveRegs, hw.PeakLiveRegs)
	}
}

func TestDecodedPirsZeroForBaseline(t *testing.T) {
	k := compileFor(t, saxpySrc, compiler.Options{NoFlags: true})
	res := runKernel(t, Config{Mode: rename.ModeBaseline}, k, saxpySpec())
	if res.DecodedPirs != 0 || res.DecodedPbrs != 0 {
		t.Error("baseline decoded metadata instructions")
	}
	if res.DynamicIncrease() != 0 {
		t.Error("baseline dynamic increase nonzero")
	}
}

func TestGatedRunUsesFewerAwakeSubarrayCycles(t *testing.T) {
	spec := saxpySpec()
	k := compileFor(t, saxpySrc, compiler.Options{})
	gated := runKernel(t, Config{Mode: rename.ModeCompiler, PowerGating: true, WakeupLatency: 1}, k, spec)
	ungated := runKernel(t, Config{Mode: rename.ModeCompiler}, k, spec)
	gf := float64(gated.RF.AwakeSubarrayCyc) / float64(gated.RF.TotalSubarrayCyc)
	uf := float64(ungated.RF.AwakeSubarrayCyc) / float64(ungated.RF.TotalSubarrayCyc)
	if uf != 1 {
		t.Errorf("ungated awake fraction = %v, want 1", uf)
	}
	if gf >= 1 {
		t.Errorf("gated awake fraction = %v, want < 1", gf)
	}
}

func TestWakeupLatencySlowdownSmall(t *testing.T) {
	// Fig. 11b: even 10-cycle wakeups cost little.
	spec := saxpySpec()
	k := compileFor(t, saxpySrc, compiler.Options{})
	w1 := runKernel(t, Config{Mode: rename.ModeCompiler, PowerGating: true, WakeupLatency: 1}, k, spec)
	w10 := runKernel(t, Config{Mode: rename.ModeCompiler, PowerGating: true, WakeupLatency: 10}, k, spec)
	slowdown := float64(w10.Cycles) / float64(w1.Cycles)
	if slowdown > 1.10 {
		t.Errorf("10-cycle wakeup slowdown = %.3f, want < 1.10", slowdown)
	}
}

func TestMultipleCTAGenerationsReuseSlots(t *testing.T) {
	// More CTAs than concurrent slots: generations must recycle warp
	// slots and registers cleanly.
	spec := LaunchSpec{
		GridCTAs: 16 * 8, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x40000},
	}
	k := compileFor(t, divergentSrc, compiler.Options{})
	res := runKernel(t, Config{Mode: rename.ModeCompiler, PhysRegs: 256}, k, spec)
	// 8 CTAs x 64 threads on our SM.
	if len(res.Stores) != 8*64 {
		t.Fatalf("stored %d words, want %d", len(res.Stores), 8*64)
	}
	if res.RF.PeakLive > 256 {
		t.Error("peak live exceeded the physical file")
	}
}

func TestDivergenceStats(t *testing.T) {
	spec := LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x40000},
	}
	k := compileFor(t, divergentSrc, compiler.Options{NoFlags: true})
	res := runKernel(t, Config{Mode: rename.ModeBaseline}, k, spec)
	// The even/odd split diverges every warp exactly once.
	if res.DivergentBranches == 0 {
		t.Error("no divergent branches recorded")
	}
	if res.MaxStackDepth < 2 {
		t.Errorf("MaxStackDepth = %d, want >= 2", res.MaxStackDepth)
	}
	// The loop kernel's back edge is warp-uniform.
	lk := compileFor(t, loopSrc, compiler.Options{NoFlags: true})
	lres := runKernel(t, Config{Mode: rename.ModeBaseline}, lk, LaunchSpec{
		GridCTAs: 16, ThreadsPerCTA: 64, ConcCTAs: 2,
		Consts: []uint32{64, 0x1000, 5, 256 * 4, 0x50000},
	})
	if lres.UniformBranches == 0 {
		t.Error("no uniform branches recorded for the counted loop")
	}
	if lres.DivergentBranches != 0 {
		t.Errorf("counted loop recorded %d divergent branches", lres.DivergentBranches)
	}
}
