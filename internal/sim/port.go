package sim

import (
	"regvirt/internal/arch"
	"regvirt/internal/isa"
)

// memPort is the only way an SM reaches the memory system. The
// single-SM engine (Run, RunSequence) plugs in *memSys, which applies
// every effect immediately. The whole-device engine (RunGPU) plugs in
// *phasedPort, which buffers all shared-state effects — global/shared/
// spill stores and DRAM token movement — as intents during the per-SM
// compute phase and applies them in fixed SM order during the commit
// phase, so SM compute phases may run concurrently and still produce
// results byte-identical to stepping the SMs sequentially.
type memPort interface {
	// tick opens a new cycle (resets per-cycle port accounting).
	tick(cycle uint64)
	// canAccept reports whether a new long-latency request fits this
	// cycle (MSHRs, SM port width, and — device mode — DRAM tokens).
	canAccept() bool
	// accept registers a new long-latency request and returns its
	// completion cycle; complete must be called at that cycle.
	accept() uint64
	// complete retires one long-latency request.
	complete()
	// load reads one lane's word; store writes one.
	load(k memKey) uint32
	store(k memKey, v uint32)
	// noteRequests accounts traffic issued outside the port's accept
	// path (the §8.1 spill/restore register copies).
	noteRequests(n uint64)
	// requestCount is the SM's cumulative global/spill transaction count.
	requestCount() uint64
	// globalStores is the final written global-memory content (the
	// functional digest).
	globalStores() map[uint32]uint32
}

// gpuShared is the state all 16 SMs of a whole-device simulation share:
// the functional memory content and the device-wide DRAM model. During
// a compute phase it is strictly read-only; only phasedPort.commit —
// called by the engine in SM index order — mutates it.
type gpuShared struct {
	data map[memKey]uint32
	// tokensPerCycle is the device-wide memory request acceptance rate.
	tokensPerCycle int
	// outstanding is the committed device-wide in-flight request count
	// (the congestion input to every SM's latency model next cycle).
	outstanding int
}

// storeIntent is one deferred lane store.
type storeIntent struct {
	k memKey
	v uint32
}

// phasedPort is one SM's two-phase view of gpuShared. All fields except
// shared are SM-private; reads of shared during compute see the state
// as of the previous commit, which is what makes the compute phases of
// different SMs order-independent.
type phasedPort struct {
	shared  *gpuShared
	smIndex int

	cycle           uint64
	outstanding     int // this SM's in-flight global/spill requests
	requests        uint64
	issuedThisCycle int

	// quota/used are this SM's share of the device DRAM tokens this
	// cycle. Tokens are assigned by rotation (see tick), not grabbed
	// from a shared bucket, so acceptance never depends on the order
	// the SMs compute in.
	quota, used int

	// Deferred shared-state effects, applied by commit.
	stores    []storeIntent
	dramDelta int // net change to shared.outstanding this cycle
}

// tick opens a new cycle and computes this SM's DRAM token quota: the
// tokensPerCycle device tokens rotate across the NumSMs SMs, starting
// at SM (cycle mod NumSMs). Every SM gets the same aggregate bandwidth
// as the sequential greedy bucket did, deterministically.
func (p *phasedPort) tick(cycle uint64) {
	p.cycle = cycle
	p.issuedThisCycle = 0
	p.used = 0
	off := (p.smIndex - int(cycle%uint64(arch.NumSMs)) + arch.NumSMs) % arch.NumSMs
	p.quota = p.shared.tokensPerCycle / arch.NumSMs
	if off < p.shared.tokensPerCycle%arch.NumSMs {
		p.quota++
	}
}

func (p *phasedPort) canAccept() bool {
	return p.outstanding < arch.MaxOutstandingReqs &&
		p.issuedThisCycle < arch.MemIssueWidth &&
		p.used < p.quota
}

func (p *phasedPort) accept() uint64 {
	p.outstanding++
	p.requests++
	p.issuedThisCycle++
	p.used++
	p.dramDelta++
	lat := uint64(arch.GlobalMemLatency + 2*p.outstanding)
	lat += uint64(p.shared.outstanding / 4) // committed device congestion
	return p.cycle + lat
}

func (p *phasedPort) complete() {
	p.outstanding--
	p.dramDelta--
}

// load reads committed memory. Stores of the current cycle — this SM's
// included — become visible at the commit boundary, one cycle later;
// proper kernels separate producer and consumer with a barrier (or a
// kernel boundary), which always spans a commit.
func (p *phasedPort) load(k memKey) uint32 {
	if v, ok := p.shared.data[k]; ok {
		return v
	}
	if k.space == isa.SpaceGlobal {
		return memInit(k.addr)
	}
	return 0
}

func (p *phasedPort) store(k memKey, v uint32) {
	p.stores = append(p.stores, storeIntent{k: k, v: v})
}

func (p *phasedPort) noteRequests(n uint64) { p.requests += n }
func (p *phasedPort) requestCount() uint64  { return p.requests }

// commit applies this SM's buffered effects to the shared state. The
// engine calls it for every SM in index order at the end of each cycle;
// that fixed order is the whole determinism argument.
func (p *phasedPort) commit() {
	for _, st := range p.stores {
		p.shared.data[st.k] = st.v
	}
	p.stores = p.stores[:0]
	p.shared.outstanding += p.dramDelta
	p.dramDelta = 0
}

func (p *phasedPort) globalStores() map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for k, v := range p.shared.data {
		if k.space == isa.SpaceGlobal {
			out[k.addr] = v
		}
	}
	return out
}
