// Package sim is the cycle-level SM simulator the evaluation runs on —
// our stand-in for GPGPU-Sim v3.2.1 (§9). It executes kernels both
// functionally (registers hold real 32-lane values, so any register
// management bug corrupts results and is caught by the tests) and in
// timing: a two-level warp scheduler with a six-warp ready queue, dual
// issue, an in-order per-warp scoreboard, operand-collector bank
// conflicts over the four register banks, a latency/contention memory
// model, SIMT reconvergence stacks, CTA dispatch, GPU-shrink throttling
// and the spill fallback.
package sim

import (
	"errors"
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/flagcache"
	"regvirt/internal/isa"
	"regvirt/internal/regfile"
	"regvirt/internal/rename"
	"regvirt/internal/throttle"
)

// Config selects the hardware configuration under test.
type Config struct {
	// Mode is the register management policy.
	Mode rename.Mode
	// PhysRegs is the physical register count (1024 baseline, 512 for
	// GPU-shrink). Zero defaults to the baseline.
	PhysRegs int
	// PowerGating enables subarray gating (§8.2).
	PowerGating bool
	// WakeupLatency is the subarray wakeup penalty in cycles (Fig. 11b).
	WakeupLatency int
	// AllocPolicy selects in-bank allocation (SubarrayFirst or
	// LowestIndex ablation).
	AllocPolicy regfile.AllocPolicy
	// FlagCacheEntries sizes the release flag cache (Fig. 13). Zero means
	// the arch default (10 entries); a negative value disables the cache
	// entirely (the Dynamic-0 configuration).
	FlagCacheEntries int
	// ThrottlePolicy selects the §8.1 gating scheme (reservation-based
	// by default; throttle.PolicyWorstCase is the paper's verbatim rule,
	// kept for the ablation benchmarks).
	ThrottlePolicy throttle.Policy
	// Scheduler selects the warp-selection order within the ready queue.
	Scheduler SchedPolicy
	// RFCacheEntries sizes the register cache of rename.ModeRegCache
	// (0 = arch default, arch.RFCacheEntries lines); other modes ignore
	// it. Negative values are rejected.
	RFCacheEntries int
	// RFCacheWriteThrough selects write-through for the register cache;
	// the default write-back policy defers dirty values to eviction
	// (rename.ModeRegCache only).
	RFCacheWriteThrough bool
	// SpillRegs is how many of the kernel's highest-numbered architected
	// registers rename.ModeSMemSpill demotes to shared memory. 0 = auto:
	// demote just enough that the resident warps' RF demand fits
	// PhysRegs (never fewer than one RF-resident register per warp).
	// Other modes ignore it.
	SpillRegs int
	// RenameLatency adds extra cycles of dependent-use latency per
	// renamed operand access. The default (0) models the renaming stage
	// as fully pipelined: the paper conservatively assumes one extra
	// cycle and still measures 0.58% overhead, implying the stage is
	// hidden; our six-warp active set cannot hide added latency on tight
	// dependent chains, so the explicit +1 is kept as a sensitivity knob
	// (ablation benches quantify it).
	RenameLatency int
	// PoisonReleased overwrites released registers with a sentinel so
	// any use-after-release corrupts results instead of silently reading
	// stale values (verification aid; see regfile.PoisonValue).
	PoisonReleased bool
	// SelfCheckEvery runs the renaming-table and register-file invariant
	// checks every N cycles, failing the run on the first violation
	// (verification aid; 0 disables).
	SelfCheckEvery int
	// MaxCycles aborts runs that exceed this cycle count (watchdog);
	// zero defaults to 50M.
	MaxCycles uint64
	// GPUParallel is the compute-phase worker count of the two-phase
	// whole-device engine (RunGPU only; Run ignores it). 0 or 1 steps
	// the 16 SMs sequentially; N > 1 steps them on N goroutines with a
	// per-cycle barrier. The engine commits all shared-state effects in
	// fixed SM order, so the simulated result is byte-identical at every
	// setting — this knob trades wall-clock time only and is therefore
	// excluded from result cache keys (jobs, experiments).
	GPUParallel int
	// Cancel, when non-nil, aborts the run with ErrCancelled once the
	// channel is closed (checked every cancelCheckEvery cycles). The
	// jobs subsystem wires a context's Done channel here so wall-clock
	// deadlines stop a simulation promptly instead of leaking it.
	Cancel <-chan struct{}
	// CheckpointEvery, with a non-nil Checkpoint hook, emits a state
	// snapshot every N cycles (engine iterations in RunGPU). Snapshots
	// are taken at exact cycle boundaries and never change the simulated
	// result, so — like GPUParallel — the checkpoint knobs are excluded
	// from result cache keys. 0 disables periodic checkpoints.
	CheckpointEvery uint64
	// Checkpoint receives each snapshot on the simulating goroutine (the
	// engine goroutine in RunGPU). The payload is deeply copied from live
	// state: the hook may retain or serialize it freely. A slow hook
	// stalls simulated time, not correctness.
	Checkpoint func(*Checkpoint)
	// CheckpointOnCancel additionally emits a final snapshot when the
	// run aborts via Cancel — the graceful-shutdown path: a drain window
	// cancels in-flight simulations and persists where they stopped so a
	// restart resumes instead of recomputing.
	CheckpointOnCancel bool
	// Profile enables sim-phase profiling: per-SM cycle attribution
	// (issue vs operand-collector vs memory vs commit stalls) and a
	// warp-state timeline, accumulated into Result.Profile. Off by
	// default; when off the cycle loop takes the unprofiled path and
	// the simulated result is byte-identical (profile_test.go pins
	// this). Unlike the checkpoint knobs, Profile DOES change the
	// result payload (the Profile field), so the jobs layer keys on it.
	Profile bool
	// FaultHook, when non-nil, is called at the named fault-injection
	// sites (FaultSite* constants) on the simulating goroutine. A
	// non-nil return injects a failure there: the run ends with a
	// wrapped error (FaultSiteMemAccept) or takes the
	// invariant-violation path (FaultSiteAlloc, -> *InvariantError).
	// The hook may also sleep (latency injection) or panic (crash
	// injection; the parallel device engine contains worker panics and
	// returns them as errors). With GPUParallel > 1 the hook is called
	// concurrently from the compute-phase workers and must be safe for
	// concurrent use (faultinject.Injector is). Production configs
	// leave this nil — only the chaos tests and regvd -faults thread
	// internal/faultinject through it.
	FaultHook func(site string) error
	// Trace enables the register-liveness tracing used by Figs. 1-3.
	Trace TraceConfig
}

// SchedPolicy is the warp-selection order within the two-level
// scheduler's ready queue.
type SchedPolicy int

const (
	// SchedLRR (default) is loose round-robin: selection rotates across
	// the ready warps each cycle.
	SchedLRR SchedPolicy = iota
	// SchedGTO is greedy-then-oldest: keep issuing from the last warp
	// that issued; on a stall fall back to the oldest ready warp.
	SchedGTO
)

// TraceConfig controls optional tracing.
type TraceConfig struct {
	// SampleLiveEvery records a liveness sample every N cycles (0 = off).
	SampleLiveEvery int
	// TrackWarp/TrackRegs record mapping transitions of specific
	// architected registers of one warp slot (Figs. 2-3).
	TrackWarp int
	TrackRegs []isa.RegID
}

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel *compiler.Kernel
	// GridCTAs is the total CTA count of the grid; the simulator models
	// one SM and runs GridCTAs/arch.NumSMs of them (at least one).
	GridCTAs int
	// ThreadsPerCTA is the CTA size (warpsPerCTA = ceil/32).
	ThreadsPerCTA int
	// ConcCTAs is the per-SM concurrency limit (Table 1).
	ConcCTAs int
	// Consts is the constant bank (kernel parameters).
	Consts []uint32
}

func (l *LaunchSpec) warpsPerCTA() int {
	return (l.ThreadsPerCTA + arch.WarpSize - 1) / arch.WarpSize
}

// LiveSample is one Fig. 1 data point.
type LiveSample struct {
	Cycle uint64
	// LiveRegs is the number of mapped (value-holding) physical registers.
	LiveRegs int
	// AllocatedRegs is what the conventional policy would hold: RegCount
	// for every resident warp.
	AllocatedRegs int
}

// RegEvent is one Fig. 2/3 mapping transition.
type RegEvent struct {
	Cycle  uint64
	Reg    isa.RegID
	Mapped bool
}

// Result is everything a run produces.
type Result struct {
	Cycles uint64
	// Instrs counts issued (non-metadata) instructions.
	Instrs uint64
	// DecodedPirs/DecodedPbrs are fetched-and-decoded metadata
	// instructions (Fig. 13's dynamic code increase).
	DecodedPirs, DecodedPbrs uint64
	// Stores is the final content of every written global-memory word —
	// the functional digest compared across configurations.
	Stores map[uint32]uint32
	// MemRequests counts global/spill memory transactions.
	MemRequests uint64
	// Spills counts §8.1 fallback warp spills.
	Spills uint64

	RF       regfile.Stats
	Rename   rename.Stats
	Flag     flagcache.Stats
	Throttle struct{ Throttles, Blocked uint64 }

	// Stalls break down why issue attempts failed (per attempt, not per
	// cycle): scoreboard data hazards, throttle denials, bank-exhaustion
	// structural stalls, and memory-port/MSHR stalls.
	Stalls StallStats

	// PhysRegs is the physical register file size the run used.
	PhysRegs int
	// AvgResidentWarps is the mean number of resident warps per cycle
	// (occupancy).
	AvgResidentWarps float64
	// DivergentBranches counts conditional branches whose lanes split;
	// UniformBranches took one path warp-wide. MaxStackDepth is the
	// deepest SIMT reconvergence stack observed.
	DivergentBranches, UniformBranches uint64
	MaxStackDepth                      int
	// CompilerAllocatedRegs is RegCount x resident warps summed over CTA
	// residencies — the conventional allocation the paper's Fig. 10
	// normalizes against (peak concurrent demand).
	CompilerAllocatedRegs int
	// PeakLiveRegs is the maximum concurrently mapped register count.
	PeakLiveRegs int

	LiveSamples []LiveSample
	RegEvents   []RegEvent

	// Profile is the sim-phase profiling report (Config.Profile only;
	// nil otherwise, so unprofiled results — and their gob-encoded
	// checkpoints — are unchanged by the feature's existence).
	Profile *Profile
}

// StallStats break down failed issue attempts by cause.
type StallStats struct {
	Hazard   uint64 // scoreboard RAW/WAW/predicate
	Throttle uint64 // §8.1 governor denial
	Bank     uint64 // destination bank exhausted
	MemPort  uint64 // memory port or MSHRs full
}

// DynamicIncrease returns the Fig. 13 dynamic code growth: decoded
// metadata instructions relative to issued instructions.
func (r *Result) DynamicIncrease() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.DecodedPirs+r.DecodedPbrs) / float64(r.Instrs)
}

// AllocationReduction returns the Fig. 10 metric: the fraction of
// conventionally-allocated registers the virtualized design never needed.
func (r *Result) AllocationReduction() float64 {
	if r.CompilerAllocatedRegs == 0 {
		return 0
	}
	red := float64(r.CompilerAllocatedRegs-r.PeakLiveRegs) / float64(r.CompilerAllocatedRegs)
	if red < 0 {
		return 0
	}
	return red
}

// Run simulates the launch to completion on one SM.
func Run(cfg Config, spec LaunchSpec) (*Result, error) {
	sm, err := newSM(cfg, spec)
	if err != nil {
		return nil, err
	}
	return sm.run()
}

// RunSequence executes kernels back to back, the way multi-phase
// applications launch (e.g. a partial-sum kernel followed by a final
// reduction): global memory persists across launches so later kernels
// read earlier kernels' output; shared and spill memory are scratch and
// reset at each kernel boundary, and the release flag cache starts cold
// per kernel (§7.2: it is indexed by PC, which a kernel switch
// invalidates). One Result is returned per launch.
func RunSequence(cfg Config, specs ...LaunchSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: empty kernel sequence")
	}
	var mem *memSys
	out := make([]*Result, 0, len(specs))
	for i, spec := range specs {
		sm, err := newSM(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("sim: kernel %d: %w", i, err)
		}
		if mem != nil {
			mem.resetScratch()
			sm.mem = mem
		}
		res, err := sm.run()
		if err != nil {
			return nil, fmt.Errorf("sim: kernel %d: %w", i, err)
		}
		mem = sm.mem.(*memSys) // single-SM runs always use the direct port
		out = append(out, res)
	}
	return out, nil
}

// deadlockWindow is how many cycles of SM-wide inactivity trigger a
// deadlock error.
const deadlockWindow = 200000

// ErrDeadlock is the sentinel inside the error a run returns when no
// warp makes progress for deadlockWindow cycles — typically a
// register-management discipline that cannot fit the workload into the
// configured register file (launch-pinned backends at small sizes).
var ErrDeadlock = errors.New("sim: deadlock")

// IsDeadlock reports whether err is (or wraps) a simulation deadlock.
func IsDeadlock(err error) bool { return errors.Is(err, ErrDeadlock) }

// cancelCheckEvery is how often (in cycles) a run polls Config.Cancel.
// At ~1M simulated cycles/s a 4096-cycle granularity keeps cancellation
// latency in the low milliseconds while the poll stays off the profile.
const cancelCheckEvery = 4096

// ErrCancelled is returned (wrapped, with the abort cycle) when a run
// stops because Config.Cancel closed. Match it with errors.Is.
var ErrCancelled = errors.New("sim: run cancelled")

func validate(cfg *Config, spec *LaunchSpec) error {
	if spec.Kernel == nil || spec.Kernel.Prog == nil {
		return fmt.Errorf("sim: nil kernel")
	}
	if err := spec.Kernel.Prog.Validate(); err != nil {
		return err
	}
	if spec.GridCTAs <= 0 || spec.ThreadsPerCTA <= 0 || spec.ThreadsPerCTA > 1024 {
		return fmt.Errorf("sim: bad grid %dx%d", spec.GridCTAs, spec.ThreadsPerCTA)
	}
	if spec.ConcCTAs <= 0 || spec.ConcCTAs > arch.MaxCTAsPerSM {
		return fmt.Errorf("sim: ConcCTAs %d out of range", spec.ConcCTAs)
	}
	if spec.warpsPerCTA()*spec.ConcCTAs > arch.MaxWarpsPerSM {
		return fmt.Errorf("sim: %d warps/CTA x %d CTAs exceeds %d warp slots",
			spec.warpsPerCTA(), spec.ConcCTAs, arch.MaxWarpsPerSM)
	}
	if cfg.PhysRegs == 0 {
		cfg.PhysRegs = arch.NumPhysRegs
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50_000_000
	}
	if cfg.FlagCacheEntries == 0 {
		cfg.FlagCacheEntries = arch.FlagCacheEntries
	} else if cfg.FlagCacheEntries < 0 {
		cfg.FlagCacheEntries = 0
	}
	if cfg.RFCacheEntries < 0 {
		return fmt.Errorf("sim: RFCacheEntries %d must be non-negative", cfg.RFCacheEntries)
	}
	if cfg.Mode == rename.ModeRegCache && cfg.RFCacheEntries == 0 {
		cfg.RFCacheEntries = arch.RFCacheEntries
	}
	if cfg.SpillRegs < 0 {
		return fmt.Errorf("sim: SpillRegs %d must be non-negative", cfg.SpillRegs)
	}
	if cfg.Mode == rename.ModeSMemSpill {
		rc := spec.Kernel.Prog.RegCount
		spill := cfg.SpillRegs
		if spill == 0 {
			// Auto-fit: keep per warp what an even split of the file
			// across the full resident-warp complement affords, rounded
			// down to a bank multiple so per-bank demand divides evenly.
			residents := spec.warpsPerCTA() * spec.ConcCTAs
			keep := cfg.PhysRegs / residents
			keep -= keep % arch.NumBanks
			if keep < rc {
				spill = rc - keep
			}
		}
		if spill > rc-1 {
			spill = rc - 1 // at least r0 stays RF-resident
		}
		cfg.SpillRegs = spill
	}
	return nil
}
