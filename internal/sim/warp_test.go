package sim

import (
	"testing"

	"regvirt/internal/isa"
)

func TestFullMask(t *testing.T) {
	if fullMask(32) != ^uint32(0) {
		t.Error("fullMask(32) wrong")
	}
	if fullMask(40) != ^uint32(0) {
		t.Error("fullMask(>32) should clamp to full")
	}
	if got := fullMask(8); got != 0xff {
		t.Errorf("fullMask(8) = %#x, want 0xff", got)
	}
	if got := fullMask(1); got != 1 {
		t.Errorf("fullMask(1) = %#x", got)
	}
}

func TestSIMTDivergeAndReconverge(t *testing.T) {
	w := newWarp(0, nil, 0, 32)
	w.top().pc = 10 // at the branch
	// Lanes 0..15 take the branch to 20, 16..31 fall through to 11;
	// reconvergence at 30.
	w.diverge(20, 11, 30, 0x0000ffff, 0xffff0000)
	if len(w.stack) != 3 {
		t.Fatalf("stack depth %d, want 3", len(w.stack))
	}
	// Taken path executes first.
	if w.pc() != 20 || w.activeMask() != 0x0000ffff {
		t.Fatalf("top = pc %d mask %#x, want 20/ffff", w.pc(), w.activeMask())
	}
	// Walk the taken path to the reconvergence point.
	w.jump(21)
	w.jump(30) // pops the taken frame
	// Now the fall-through path runs.
	if w.pc() != 11 || w.activeMask() != 0xffff0000 {
		t.Fatalf("after taken path: pc %d mask %#x, want 11/ffff0000", w.pc(), w.activeMask())
	}
	w.jump(30) // pops the fall frame
	// Both popped: base frame at the reconvergence pc with the full mask.
	if len(w.stack) != 1 {
		t.Fatalf("stack depth %d after reconvergence, want 1", len(w.stack))
	}
	if w.pc() != 30 || w.activeMask() != ^uint32(0) {
		t.Errorf("reconverged at pc %d mask %#x", w.pc(), w.activeMask())
	}
}

func TestSIMTDivergeSideAtReconvergence(t *testing.T) {
	// The fall-through side starts at the reconvergence point (a loop
	// back edge): only the taken side gets a frame; the waiting lanes
	// merge into the parked base frame.
	w := newWarp(0, nil, 0, 32)
	w.top().pc = 5
	w.diverge(2, 6, 6, 0x0f, ^uint32(0xf))
	if len(w.stack) != 2 {
		t.Fatalf("stack depth %d, want 2 (no frame for the waiting side)", len(w.stack))
	}
	if w.pc() != 2 || w.activeMask() != 0x0f {
		t.Fatalf("looping lanes: pc %d mask %#x", w.pc(), w.activeMask())
	}
	// Loop path reaches the exit: pops, and everyone resumes at 6.
	w.jump(6)
	if len(w.stack) != 1 || w.pc() != 6 || w.activeMask() != ^uint32(0) {
		t.Errorf("after loop drain: depth=%d pc=%d mask=%#x", len(w.stack), w.pc(), w.activeMask())
	}
}

func TestSIMTNestedDivergence(t *testing.T) {
	w := newWarp(0, nil, 0, 32)
	w.top().pc = 0
	w.diverge(10, 1, 40, 0xffff, 0xffff0000) // outer
	// Inside the taken path (pc 10, lanes 0..15), diverge again.
	if w.pc() != 10 {
		t.Fatal("setup wrong")
	}
	w.diverge(20, 11, 25, 0x00ff, 0xff00) // inner
	if w.pc() != 20 || w.activeMask() != 0x00ff {
		t.Fatalf("inner taken: pc %d mask %#x", w.pc(), w.activeMask())
	}
	w.jump(25) // inner taken reaches inner reconv
	if w.pc() != 11 || w.activeMask() != 0xff00 {
		t.Fatalf("inner fall: pc %d mask %#x", w.pc(), w.activeMask())
	}
	w.jump(25) // inner fall reaches inner reconv
	if w.pc() != 25 || w.activeMask() != 0xffff {
		t.Fatalf("inner reconverged: pc %d mask %#x", w.pc(), w.activeMask())
	}
	w.jump(40) // outer taken side reaches outer reconv
	if w.pc() != 1 || w.activeMask() != 0xffff0000 {
		t.Fatalf("outer fall: pc %d mask %#x", w.pc(), w.activeMask())
	}
	w.jump(40)
	if len(w.stack) != 1 || w.activeMask() != ^uint32(0) {
		t.Errorf("outer reconverged: depth %d mask %#x", len(w.stack), w.activeMask())
	}
}

func TestExitLanesPartialAndFull(t *testing.T) {
	w := newWarp(0, nil, 0, 32)
	if w.exitLanes(0x0000ffff) {
		t.Error("half the lanes exiting should not finish the warp")
	}
	if w.activeMask() != 0xffff0000 {
		t.Errorf("mask = %#x after partial exit", w.activeMask())
	}
	if !w.exitLanes(0xffff0000) {
		t.Error("all lanes exited; warp should finish")
	}
}

func TestExitLanesAcrossDivergence(t *testing.T) {
	// Lanes exiting inside a divergent path must drain from every frame.
	w := newWarp(0, nil, 0, 32)
	w.top().pc = 0
	w.diverge(10, 1, -1, 0xff, ^uint32(0xff)) // reconverge only at exit
	if w.pc() != 10 {
		t.Fatal("setup wrong")
	}
	if w.exitLanes(0xff) {
		t.Error("other path still has lanes")
	}
	// Now the fall-through path is on top.
	if w.activeMask() != ^uint32(0xff) {
		t.Fatalf("mask %#x", w.activeMask())
	}
	if !w.exitLanes(^uint32(0xff)) {
		t.Error("all lanes gone; warp should finish")
	}
}

func TestPredMask(t *testing.T) {
	w := newWarp(0, nil, 0, 32)
	w.preds[1] = 0x0f0f
	if got := w.predMask(isa.Pred{Reg: 1}); got != 0x0f0f {
		t.Errorf("predMask(p1) = %#x", got)
	}
	if got := w.predMask(isa.Pred{Reg: 1, Neg: true}); got != ^uint32(0x0f0f) {
		t.Errorf("predMask(!p1) = %#x", got)
	}
	if got := w.predMask(isa.NoPred); got != ^uint32(0) {
		t.Errorf("unguarded predMask = %#x", got)
	}
}

func TestLaneCount(t *testing.T) {
	if laneCount(0) != 0 || laneCount(^uint32(0)) != 32 || laneCount(0xf0) != 4 {
		t.Error("laneCount wrong")
	}
}
