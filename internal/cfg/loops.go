package cfg

import "sort"

// Loop is a natural loop: the header block plus every block that can
// reach a back edge source without passing through the header.
type Loop struct {
	// Head is the loop header block id.
	Head int
	// Blocks is the sorted set of member block ids (including Head).
	Blocks []int
	// BackEdges are the (source, header) edges that define the loop.
	BackEdges [][2]int
	// ExitBlocks are blocks outside the loop that are successors of a
	// member block — where loop-carried registers become releasable
	// (§6.1, Fig. 4(d)).
	ExitBlocks []int
	// Parent is the index in Graph.Loops of the innermost enclosing loop,
	// or -1.
	Parent int
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// findLoops detects back edges (u -> v with v dominating u), builds the
// natural loop of each header, merges loops sharing a header, computes
// exit blocks, nesting and per-block loop depth.
func (g *Graph) findLoops() {
	byHead := map[int]*Loop{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if g.Dominates(s, b.ID) {
				l := byHead[s]
				if l == nil {
					l = &Loop{Head: s, Parent: -1}
					byHead[s] = l
				}
				l.BackEdges = append(l.BackEdges, [2]int{b.ID, s})
			}
		}
	}
	heads := make([]int, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	for _, h := range heads {
		l := byHead[h]
		member := map[int]bool{h: true}
		var stack []int
		for _, e := range l.BackEdges {
			if !member[e[0]] {
				member[e[0]] = true
				stack = append(stack, e[0])
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Blocks[b].Preds {
				if !member[p] {
					member[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range member {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Ints(l.Blocks)
		exits := map[int]bool{}
		for _, b := range l.Blocks {
			for _, s := range g.Blocks[b].Succs {
				if !member[s] {
					exits[s] = true
				}
			}
		}
		for b := range exits {
			l.ExitBlocks = append(l.ExitBlocks, b)
		}
		sort.Ints(l.ExitBlocks)
		g.Loops = append(g.Loops, l)
	}
	// Nesting: loop A is the parent of loop B when A contains B's header
	// and A != B; pick the smallest such container.
	for i, inner := range g.Loops {
		best, bestSize := -1, 1<<30
		for j, outer := range g.Loops {
			if i == j || !outer.Contains(inner.Head) {
				continue
			}
			if len(outer.Blocks) < bestSize {
				best, bestSize = j, len(outer.Blocks)
			}
		}
		inner.Parent = best
	}
	g.LoopDepth = make([]int, len(g.Blocks))
	for _, l := range g.Loops {
		for _, b := range l.Blocks {
			g.LoopDepth[b]++
		}
	}
}

// InnermostLoopOf returns the innermost loop containing block b, or nil.
func (g *Graph) InnermostLoopOf(b int) *Loop {
	var best *Loop
	for _, l := range g.Loops {
		if l.Contains(b) && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}
