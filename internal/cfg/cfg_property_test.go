package cfg

import (
	"testing"

	"regvirt/internal/kernelgen"
)

// Structural invariants of the CFG machinery over random programs.
func TestCFGInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := kernelgen.Generate(seed, kernelgen.Params{
			Regs: 12, MaxItems: 12, MaxDepth: 3, Barriers: seed%2 == 0,
		})
		g, err := Build(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Blocks partition the instruction range.
		covered := 0
		for _, b := range g.Blocks {
			if b.Start >= b.End {
				t.Fatalf("seed %d: empty block B%d", seed, b.ID)
			}
			covered += b.Len()
		}
		if covered != len(p.Instrs) {
			t.Fatalf("seed %d: blocks cover %d of %d", seed, covered, len(p.Instrs))
		}
		for _, b := range g.Blocks {
			// Entry dominates every reachable block; idom is a dominator.
			if len(b.Preds) > 0 || b.ID == 0 {
				if !g.Dominates(0, b.ID) {
					t.Fatalf("seed %d: entry does not dominate B%d", seed, b.ID)
				}
			}
			if b.ID != 0 && g.IDom[b.ID] >= 0 && !g.Dominates(g.IDom[b.ID], b.ID) {
				t.Fatalf("seed %d: idom(B%d) does not dominate it", seed, b.ID)
			}
			// Edges are symmetric.
			for _, succ := range b.Succs {
				found := false
				for _, pr := range g.Blocks[succ].Preds {
					if pr == b.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: missing reverse edge B%d->B%d", seed, b.ID, succ)
				}
			}
		}
		// Loop membership: headers dominate every member block.
		for _, l := range g.Loops {
			for _, m := range l.Blocks {
				if !g.Dominates(l.Head, m) {
					t.Fatalf("seed %d: loop head B%d does not dominate member B%d", seed, l.Head, m)
				}
			}
			for _, e := range l.ExitBlocks {
				if l.Contains(e) {
					t.Fatalf("seed %d: exit block B%d inside its own loop", seed, e)
				}
			}
		}
		// Conditional branches reconverge at a block start or warp exit.
		for _, in := range p.Instrs {
			if in.Op.IsBranch() && in.Guard.Guarded() {
				if in.Reconv >= 0 && g.Blocks[g.BlockOf[in.Reconv]].Start != in.Reconv {
					t.Fatalf("seed %d: reconvergence pc %d is not a block start", seed, in.Reconv)
				}
			}
		}
	}
}
