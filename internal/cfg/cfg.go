// Package cfg builds the control-flow graph of a kernel: basic blocks,
// dominator and post-dominator trees, and natural loops. The compiler's
// lifetime analysis (§6.1) consumes the graph to place per-instruction
// release flags inside basic blocks and per-branch release flags at
// reconvergence points (immediate post-dominators) and loop exits.
package cfg

import (
	"fmt"

	"regvirt/internal/isa"
)

// Block is a basic block: the half-open instruction range [Start, End).
type Block struct {
	ID    int
	Start int // first instruction PC
	End   int // one past the last instruction PC
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Graph is the control-flow graph of one program.
type Graph struct {
	Prog    *isa.Program
	Blocks  []*Block
	BlockOf []int // instruction PC -> block id

	// IDom[b] is the immediate dominator of block b (-1 for entry).
	IDom []int
	// IPDom[b] is the immediate post-dominator of block b. A value of
	// VirtualExit means the block post-dominates straight into program
	// termination (its divergence reconverges only at warp exit).
	IPDom []int
	// LoopDepth[b] is the nesting depth of block b (0 = not in a loop).
	LoopDepth []int
	Loops     []*Loop
}

// VirtualExit is the pseudo-block id used as the sink of the reversed CFG.
const VirtualExit = -2

// Build constructs the CFG, dominators, post-dominators and loops, and
// annotates every conditional branch instruction with its reconvergence
// PC (the start of its immediate post-dominator block).
func Build(p *isa.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Prog: p}
	g.findBlocks()
	g.linkBlocks()
	g.computeDominators()
	g.computePostDominators()
	g.findLoops()
	g.annotateReconvergence()
	return g, nil
}

func (g *Graph) findBlocks() {
	n := len(g.Prog.Instrs)
	leader := make([]bool, n)
	leader[0] = true
	for pc, in := range g.Prog.Instrs {
		switch {
		case in.Op == isa.OpBra:
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case in.Op == isa.OpExit || in.Op == isa.OpBar:
			// Barriers end blocks so that pbr placement never straddles a
			// synchronization point.
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	g.BlockOf = make([]int, n)
	for pc := 0; pc < n; {
		end := pc + 1
		for end < n && !leader[end] {
			end++
		}
		b := &Block{ID: len(g.Blocks), Start: pc, End: end}
		g.Blocks = append(g.Blocks, b)
		for i := pc; i < end; i++ {
			g.BlockOf[i] = b.ID
		}
		pc = end
	}
}

func (g *Graph) linkBlocks() {
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for _, b := range g.Blocks {
		last := g.Prog.Instrs[b.End-1]
		switch {
		case last.Op == isa.OpExit && !last.Guard.Guarded():
			// no successors
		case last.Op == isa.OpExit:
			// Guarded exit: the non-exiting lanes fall through.
			if b.End < len(g.Prog.Instrs) {
				addEdge(b.ID, g.BlockOf[b.End])
			}
		case last.Op == isa.OpBra && !last.Guard.Guarded():
			addEdge(b.ID, g.BlockOf[last.Target])
		case last.Op == isa.OpBra:
			// Conditional: fall-through first, then taken.
			if b.End < len(g.Prog.Instrs) {
				addEdge(b.ID, g.BlockOf[b.End])
			}
			addEdge(b.ID, g.BlockOf[last.Target])
		default:
			if b.End < len(g.Prog.Instrs) {
				addEdge(b.ID, g.BlockOf[b.End])
			}
		}
	}
}

// reversePostorder returns blocks in reverse postorder from the entry.
func (g *Graph) reversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var order []int
	var visit func(int)
	visit = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(0)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	n := len(g.Blocks)
	g.IDom = make([]int, n)
	for i := range g.IDom {
		g.IDom[i] = -1
	}
	rpo := g.reversePostorder()
	rpoIndex := make([]int, n)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	g.IDom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if rpoIndex[p] < 0 || g.IDom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(g.IDom, rpoIndex, p, newIdom)
				}
			}
			if newIdom != -1 && g.IDom[b] != newIdom {
				g.IDom[b] = newIdom
				changed = true
			}
		}
	}
	g.IDom[0] = -1
}

func intersect(idom, rpoIndex []int, a, b int) int {
	for a != b {
		for rpoIndex[a] > rpoIndex[b] {
			a = idom[a]
		}
		for rpoIndex[b] > rpoIndex[a] {
			b = idom[b]
		}
	}
	return a
}

// computePostDominators runs the same algorithm over the reversed graph
// with a virtual exit node collecting every exit block.
func (g *Graph) computePostDominators() {
	n := len(g.Blocks)
	// Node n is the virtual exit.
	preds := make([][]int, n+1) // preds in reversed graph = succs in original
	succs := make([][]int, n+1)
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 {
			succs[b.ID] = append(succs[b.ID], n)
			preds[n] = append(preds[n], b.ID)
		}
		for _, s := range b.Succs {
			succs[b.ID] = append(succs[b.ID], s)
			preds[s] = append(preds[s], b.ID)
		}
	}
	// Reverse postorder from the virtual exit over reversed edges.
	seen := make([]bool, n+1)
	var order []int
	var visit func(int)
	visit = func(b int) {
		seen[b] = true
		for _, s := range preds[b] { // reversed direction
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(n)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoIndex := make([]int, n+1)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, b := range order {
		rpoIndex[b] = i
	}
	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[n] = n
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == n {
				continue
			}
			newIdom := -1
			for _, p := range succs[b] { // preds in reversed graph
				if rpoIndex[p] < 0 || ipdom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(ipdom, rpoIndex, p, newIdom)
				}
			}
			if newIdom != -1 && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	g.IPDom = make([]int, n)
	for i := 0; i < n; i++ {
		if ipdom[i] == n || ipdom[i] == -1 {
			g.IPDom[i] = VirtualExit
		} else {
			g.IPDom[i] = ipdom[i]
		}
	}
}

// Dominates reports whether block a dominates block b.
func (g *Graph) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = g.IDom[b]
	}
	return false
}

// annotateReconvergence fills Instr.Reconv on every conditional branch
// with the start PC of the branch block's immediate post-dominator.
func (g *Graph) annotateReconvergence() {
	for _, b := range g.Blocks {
		last := g.Prog.Instrs[b.End-1]
		if last.Op != isa.OpBra || !last.Guard.Guarded() {
			continue
		}
		if pd := g.IPDom[b.ID]; pd >= 0 {
			last.Reconv = g.Blocks[pd].Start
		} else {
			last.Reconv = -1 // reconverge at warp exit
		}
	}
}

func (g *Graph) String() string {
	s := fmt.Sprintf("cfg %s: %d blocks\n", g.Prog.Name, len(g.Blocks))
	for _, b := range g.Blocks {
		s += fmt.Sprintf("  B%d [%d,%d) succs=%v preds=%v idom=%d ipdom=%d depth=%d\n",
			b.ID, b.Start, b.End, b.Succs, b.Preds, g.IDom[b.ID], g.IPDom[b.ID], g.LoopDepth[b.ID])
	}
	return s
}
