package cfg

import (
	"testing"

	"regvirt/internal/isa"
)

// Straight-line kernel: one block.
const straight = `
.kernel straight
    mov  r1, r2
    iadd r3, r1, r2
    exit
`

// If-else diamond.
const diamond = `
.kernel diamond
    isetp.lt p0, r1, r2
@p0 bra else_bb
    mov r3, r1
    bra join
else_bb:
    mov r3, r2
join:
    iadd r4, r3, r3
    exit
`

// Simple counted loop.
const loopK = `
.kernel loopk
    movi r1, 0
loop:
    iadd r2, r2, r1
    iadd r1, r1, 1
    isetp.lt p0, r1, 10
@p0 bra loop
    st.global [r3+0], r2
    exit
`

// Nested loops.
const nested = `
.kernel nested
    movi r1, 0
outer:
    movi r2, 0
inner:
    iadd r3, r3, r2
    iadd r2, r2, 1
    isetp.lt p0, r2, 4
@p0 bra inner
    iadd r1, r1, 1
    isetp.lt p1, r1, 4
@p1 bra outer
    exit
`

func build(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := Build(isa.MustParse(src))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestStraightLineSingleBlock(t *testing.T) {
	g := build(t, straight)
	if len(g.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(g.Blocks))
	}
	b := g.Blocks[0]
	if b.Start != 0 || b.End != 3 {
		t.Errorf("block range [%d,%d), want [0,3)", b.Start, b.End)
	}
	if len(b.Succs) != 0 {
		t.Errorf("exit block has successors %v", b.Succs)
	}
	if g.IPDom[0] != VirtualExit {
		t.Errorf("IPDom of sole block = %d, want VirtualExit", g.IPDom[0])
	}
}

func TestDiamondStructure(t *testing.T) {
	g := build(t, diamond)
	// Blocks: B0 = [isetp, bra], B1 = [mov, bra join], B2 = else, B3 = join.
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4: %s", len(g.Blocks), g)
	}
	b0 := g.Blocks[0]
	if len(b0.Succs) != 2 {
		t.Fatalf("branch block succs = %v, want 2", b0.Succs)
	}
	join := g.BlockOf[g.Prog.Labels["join"]]
	if g.IPDom[0] != join {
		t.Errorf("IPDom(B0) = %d, want join block %d", g.IPDom[0], join)
	}
	if g.IDom[join] != 0 {
		t.Errorf("IDom(join) = %d, want 0", g.IDom[join])
	}
	// Both arms are dominated by B0 and post-dominated by join.
	for _, arm := range []int{1, 2} {
		if !g.Dominates(0, arm) {
			t.Errorf("B0 should dominate B%d", arm)
		}
		if g.IPDom[arm] != join {
			t.Errorf("IPDom(B%d) = %d, want %d", arm, g.IPDom[arm], join)
		}
	}
	if len(g.Loops) != 0 {
		t.Errorf("diamond has %d loops, want 0", len(g.Loops))
	}
}

func TestDiamondReconvergenceAnnotation(t *testing.T) {
	g := build(t, diamond)
	var bra *isa.Instr
	for _, in := range g.Prog.Instrs {
		if in.Op == isa.OpBra && in.Guard.Guarded() {
			bra = in
		}
	}
	if bra == nil {
		t.Fatal("no conditional branch found")
	}
	if want := g.Prog.Labels["join"]; bra.Reconv != want {
		t.Errorf("Reconv = %d, want %d", bra.Reconv, want)
	}
}

func TestLoopDetection(t *testing.T) {
	g := build(t, loopK)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1: %s", len(g.Loops), g)
	}
	l := g.Loops[0]
	head := g.BlockOf[g.Prog.Labels["loop"]]
	if l.Head != head {
		t.Errorf("loop head = %d, want %d", l.Head, head)
	}
	if len(l.BackEdges) != 1 {
		t.Errorf("back edges = %v, want 1", l.BackEdges)
	}
	if len(l.ExitBlocks) != 1 {
		t.Fatalf("exit blocks = %v, want 1", l.ExitBlocks)
	}
	exit := g.Blocks[l.ExitBlocks[0]]
	if g.Prog.Instrs[exit.Start].Op != isa.OpSt {
		t.Errorf("loop exit block should start at the store")
	}
	if g.LoopDepth[l.Head] != 1 {
		t.Errorf("loop head depth = %d, want 1", g.LoopDepth[l.Head])
	}
}

func TestLoopBranchReconvergesAtHeader(t *testing.T) {
	// The back-edge branch's IPDom is the loop exit path; its reconvergence
	// point must be outside the loop body (the store block), because warps
	// re-enter the loop in lockstep only when all lanes agree.
	g := build(t, loopK)
	var bra *isa.Instr
	for _, in := range g.Prog.Instrs {
		if in.Op == isa.OpBra && in.Guard.Guarded() {
			bra = in
		}
	}
	exitStart := -1
	for _, l := range g.Loops {
		exitStart = g.Blocks[l.ExitBlocks[0]].Start
	}
	if bra.Reconv != exitStart {
		t.Errorf("loop branch Reconv = %d, want exit block start %d", bra.Reconv, exitStart)
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, nested)
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2: %s", len(g.Loops), g)
	}
	inner := g.InnermostLoopOf(g.BlockOf[g.Prog.Labels["inner"]])
	outer := g.InnermostLoopOf(g.BlockOf[g.Prog.Labels["outer"]])
	if inner == nil || outer == nil {
		t.Fatal("loops not found by header")
	}
	if inner == outer {
		t.Fatal("inner and outer resolved to the same loop")
	}
	if len(inner.Blocks) >= len(outer.Blocks) {
		t.Errorf("inner loop (%d blocks) not smaller than outer (%d)", len(inner.Blocks), len(outer.Blocks))
	}
	if inner.Parent < 0 || g.Loops[inner.Parent] != outer {
		t.Errorf("inner.Parent does not point at outer loop")
	}
	if outer.Parent != -1 {
		t.Errorf("outer.Parent = %d, want -1", outer.Parent)
	}
	innerHead := g.BlockOf[g.Prog.Labels["inner"]]
	if g.LoopDepth[innerHead] != 2 {
		t.Errorf("inner head depth = %d, want 2", g.LoopDepth[innerHead])
	}
	if !outer.Contains(innerHead) {
		t.Error("outer loop should contain inner head")
	}
}

func TestBlockOfCoversEveryInstruction(t *testing.T) {
	for _, src := range []string{straight, diamond, loopK, nested} {
		g := build(t, src)
		for pc := range g.Prog.Instrs {
			b := g.BlockOf[pc]
			if b < 0 || b >= len(g.Blocks) {
				t.Fatalf("pc %d mapped to invalid block %d", pc, b)
			}
			blk := g.Blocks[b]
			if pc < blk.Start || pc >= blk.End {
				t.Fatalf("pc %d outside its block [%d,%d)", pc, blk.Start, blk.End)
			}
		}
		// Blocks must partition the program.
		covered := 0
		for _, b := range g.Blocks {
			covered += b.Len()
		}
		if covered != len(g.Prog.Instrs) {
			t.Fatalf("%s: blocks cover %d of %d instructions", g.Prog.Name, covered, len(g.Prog.Instrs))
		}
	}
}

func TestPredsMatchSuccs(t *testing.T) {
	for _, src := range []string{diamond, loopK, nested} {
		g := build(t, src)
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				found := false
				for _, p := range g.Blocks[s].Preds {
					if p == b.ID {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge B%d->B%d missing reverse link", g.Prog.Name, b.ID, s)
				}
			}
		}
	}
}

func TestEntryDominatesEverything(t *testing.T) {
	for _, src := range []string{diamond, loopK, nested} {
		g := build(t, src)
		for _, b := range g.Blocks {
			if !g.Dominates(0, b.ID) {
				t.Errorf("%s: entry does not dominate B%d", g.Prog.Name, b.ID)
			}
		}
	}
}

func TestBarrierEndsBlock(t *testing.T) {
	g := build(t, ".kernel k\n mov r1, r2\n bar\n mov r2, r1\n exit")
	if len(g.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2 (bar must end a block)", len(g.Blocks))
	}
	if g.Blocks[0].End != 2 {
		t.Errorf("first block ends at %d, want 2", g.Blocks[0].End)
	}
}

func TestBuildRejectsInvalidProgram(t *testing.T) {
	p := isa.MustParse(".kernel k\n mov r1, r2\n exit")
	p.Instrs = p.Instrs[:1]
	if _, err := Build(p); err == nil {
		t.Error("Build accepted invalid program")
	}
}

func TestMultipleExits(t *testing.T) {
	src := `
.kernel twoexits
    isetp.eq p0, r1, r2
@p0 bra out
    mov r3, r1
    exit
out:
    mov r3, r2
    exit
`
	g := build(t, src)
	// Both exits post-dominate into the virtual exit; the conditional
	// branch therefore reconverges only at warp exit.
	var bra *isa.Instr
	for _, in := range g.Prog.Instrs {
		if in.Op == isa.OpBra && in.Guard.Guarded() {
			bra = in
		}
	}
	if bra.Reconv != -1 {
		t.Errorf("Reconv = %d, want -1 (warp exit)", bra.Reconv)
	}
}
