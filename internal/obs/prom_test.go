package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1} // <=0.1, <=1, <=10, +Inf
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-56.05) > 1e-9 {
		t.Fatalf("sum %v, want 56.05", s.Sum)
	}
	// Boundary values land in their bucket (le is inclusive).
	h2 := NewHistogram(1)
	h2.Observe(1)
	if s2 := h2.Snapshot(); s2.Counts[0] != 1 {
		t.Fatalf("boundary observation missed the le=1 bucket: %v", s2.Counts)
	}
}

func TestPromWriterOutputLintsClean(t *testing.T) {
	var w PromWriter
	w.Counter("regvd_submitted_total", "Jobs submitted.", 42)
	w.Counter("regvd_shard_submitted_total", "Per-shard jobs.", 10, Label{"shard", "s1"})
	w.Counter("regvd_shard_submitted_total", "Per-shard jobs.", 20, Label{"shard", "s2"})
	w.Gauge("regvd_queue_depth", "Tasks queued.", 3)
	h := NewHistogram(DefLatencyBuckets...)
	h.Observe(0.004)
	h.Observe(2)
	w.Histogram("regvd_span_seconds", "Span durations.", h.Snapshot(), Label{"span", "sim.run"})
	w.Histogram("regvd_span_seconds", "Span durations.", h.Snapshot(), Label{"span", "queue.wait"})
	w.Gauge("regvd_weird_label", "Escaping.", 1, Label{"v", "a\"b\\c\nd"})

	out := w.Bytes()
	if err := LintProm(out); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"# TYPE regvd_submitted_total counter",
		"regvd_submitted_total 42",
		`regvd_shard_submitted_total{shard="s1"} 10`,
		`regvd_span_seconds_bucket{span="sim.run",le="+Inf"} 2`,
		`regvd_span_seconds_count{span="sim.run"} 2`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("exposition missing %q:\n%s", want, s)
		}
	}
	// HELP/TYPE only once per family.
	if strings.Count(s, "# TYPE regvd_shard_submitted_total") != 1 {
		t.Fatalf("duplicate family header:\n%s", s)
	}
}

func TestLintPromCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"bad name", "9bad_metric 1\n", "invalid metric name"},
		{"counter without _total", "# TYPE foo counter\nfoo 1\n", "should end in _total"},
		{"type after samples", "foo_total 1\n# TYPE foo_total counter\n", "after its samples"},
		{"duplicate type", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"unknown type", "# TYPE x florble\nx 1\n", "unknown TYPE"},
		{"bad value", "x yes\n", "bad value"},
		{"duplicate series", "x 1\nx 2\n", "duplicate series"},
		{"ungrouped family", "a 1\nb 2\na{l=\"v\"} 3\n", "not grouped"},
		{
			"histogram missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		{
			"histogram le out of order",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\n",
			"out of order",
		},
		{"unquoted label", "x{l=v} 1\n", "unquoted"},
		{"bad label name", "x{0l=\"v\"} 1\n", "invalid label name"},
	}
	for _, c := range cases {
		err := LintProm([]byte(c.in))
		if err == nil {
			t.Fatalf("%s: lint accepted\n%s", c.name, c.in)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// A healthy multi-label-set histogram passes.
	ok := "# TYPE h histogram\n" +
		"h_bucket{s=\"a\",le=\"1\"} 1\nh_bucket{s=\"a\",le=\"+Inf\"} 1\n" +
		"h_bucket{s=\"b\",le=\"1\"} 0\nh_bucket{s=\"b\",le=\"+Inf\"} 2\n" +
		"h_sum{s=\"a\"} 0.5\nh_count{s=\"a\"} 1\n" +
		"h_sum{s=\"b\"} 3\nh_count{s=\"b\"} 2\n"
	if err := LintProm([]byte(ok)); err != nil {
		t.Fatalf("healthy histogram rejected: %v", err)
	}
}
