// Package obs is the observability layer threaded through every tier
// of the service: request tracing (trace/span IDs propagated via the
// X-RegVD-Trace header and context.Context, recorded into a bounded
// in-process ring buffer), Prometheus text exposition with real
// latency histograms, Chrome trace_event export, and structured
// logging helpers that stamp every line with trace/tenant/job context.
//
// The package is deliberately dependency-free (stdlib only) and knows
// nothing about jobs or simulations: spans are generic named intervals
// with string attributes. Every entry point is nil-safe — a nil
// *Tracer hands back no-op spans — so instrumented code pays one
// branch, not a build tag, when observability is off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sort"
	"sync"
	"time"
)

// TraceHeader carries trace context across HTTP hops. The value is
// "<trace-id>/<span-id>": the trace ID names the whole request tree,
// the span ID is the caller's span (the parent of whatever the callee
// records). Both are lowercase hex.
const TraceHeader = "X-RegVD-Trace"

// SpanContext is the propagated identity of a point in a trace.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// HeaderValue encodes the context for the TraceHeader.
func (sc SpanContext) HeaderValue() string { return sc.TraceID + "/" + sc.SpanID }

// Valid reports whether both IDs are present and well-formed.
func (sc SpanContext) Valid() bool { return validID(sc.TraceID, 64) && validID(sc.SpanID, 32) }

func validID(s string, max int) bool {
	if len(s) == 0 || len(s) > max {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseTraceHeader decodes a TraceHeader value. Malformed values are
// rejected (ok=false) rather than propagated: a garbage header must
// not become a garbage metrics key downstream.
func ParseTraceHeader(v string) (SpanContext, bool) {
	for i := 0; i < len(v); i++ {
		if v[i] == '/' {
			sc := SpanContext{TraceID: v[:i], SpanID: v[i+1:]}
			if sc.Valid() {
				return sc, true
			}
			return SpanContext{}, false
		}
	}
	return SpanContext{}, false
}

// Context keys. Tenant and job ID ride the context independently of
// the span so the log handler can stamp them even on lines logged
// outside any span.
type (
	spanCtxKey struct{}
	tenantKey  struct{}
	jobIDKey   struct{}
	shardKey   struct{}
)

// SpanContextFrom returns the current span context, if any.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// ContextWithSpan installs a remote parent (e.g. parsed from an
// incoming TraceHeader) so spans started under ctx join its trace.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// WithTenant / TenantFrom thread the tenant for spans and log lines.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// WithJobID / JobIDFrom thread the content-addressed job ID.
func WithJobID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, jobIDKey{}, id)
}

func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// WithShard / ShardFrom thread the shard name (router-side hops).
func WithShard(ctx context.Context, shard string) context.Context {
	if shard == "" {
		return ctx
	}
	return context.WithValue(ctx, shardKey{}, shard)
}

func ShardFrom(ctx context.Context) string {
	s, _ := ctx.Value(shardKey{}).(string)
	return s
}

// ExtractHTTP parses an incoming request's TraceHeader into ctx; with
// no (or a malformed) header, ctx is returned unchanged and any span
// started under it mints a fresh trace.
func ExtractHTTP(ctx context.Context, h http.Header) context.Context {
	sc, ok := ParseTraceHeader(h.Get(TraceHeader))
	if !ok {
		return ctx
	}
	return ContextWithSpan(ctx, sc)
}

// InjectHTTP stamps the current span context onto an outgoing
// request's headers. No span in ctx means no header: the callee mints
// its own trace.
func InjectHTTP(ctx context.Context, h http.Header) {
	if sc, ok := SpanContextFrom(ctx); ok {
		h.Set(TraceHeader, sc.HeaderValue())
	}
}

// SpanRecord is one completed span as stored in the ring buffer and
// served by GET /v1/trace/{id}.
type SpanRecord struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	// Service is the recording tier: the tracer's construction-time
	// name ("router", or the shard name).
	Service string            `json:"service,omitempty"`
	Tenant  string            `json:"tenant,omitempty"`
	JobID   string            `json:"job_id,omitempty"`
	StartNS int64             `json:"start_unix_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// Defaults for Tracer bounds.
const (
	// defaultSpanCapacity is the ring size: at ~300 bytes/span this
	// bounds the tracer near 2.5 MB however hot the service runs.
	defaultSpanCapacity = 8192
	// maxHistNames bounds the per-span-name duration histogram table —
	// span names are static strings in this codebase, so hitting the
	// bound means an instrumentation bug, not traffic.
	maxHistNames = 64
)

// Tracer records completed spans into a fixed-size ring buffer indexed
// by trace ID, and accumulates a duration histogram per span name for
// the Prometheus exposition. All methods are safe for concurrent use
// and nil-safe: a nil *Tracer starts no-op spans.
type Tracer struct {
	service string
	cap     int
	now     func() time.Time
	newID   func(bytes int) string

	mu      sync.Mutex
	ring    []SpanRecord
	next    int
	filled  bool
	byTrace map[string][]int
	hists   map[string]*Histogram
	dropped uint64 // spans not indexed because the histogram table is full
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithCapacity sets the span ring size (minimum 16).
func WithCapacity(n int) TracerOption {
	return func(t *Tracer) {
		if n < 16 {
			n = 16
		}
		t.cap = n
	}
}

// WithClock overrides the time source (tests and golden files).
func WithClock(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// WithDeterministicIDs replaces the crypto/rand ID source with a
// seeded counter, so tests (and the golden Chrome trace) get stable
// IDs run over run.
func WithDeterministicIDs(seed uint64) TracerOption {
	return func(t *Tracer) {
		var mu sync.Mutex
		ctr := seed
		t.newID = func(bytes int) string {
			mu.Lock()
			ctr++
			v := ctr
			mu.Unlock()
			b := make([]byte, bytes)
			binary.BigEndian.PutUint64(b[bytes-8:], v)
			return hex.EncodeToString(b)
		}
	}
}

// NewTracer builds a tracer for one service tier. The service name
// lands on every span ("router", the shard name, "regvsim").
func NewTracer(service string, opts ...TracerOption) *Tracer {
	t := &Tracer{
		service: service,
		cap:     defaultSpanCapacity,
		now:     time.Now,
		newID:   randomID,
	}
	for _, o := range opts {
		o(t)
	}
	t.ring = make([]SpanRecord, t.cap)
	t.byTrace = make(map[string][]int)
	t.hists = make(map[string]*Histogram)
	return t
}

func randomID(bytes int) string {
	b := make([]byte, bytes)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a broken platform; an all-zero ID keeps
		// the service up and is still a valid hex ID.
		for i := range b {
			b[i] = 0
		}
	}
	return hex.EncodeToString(b)
}

// Service returns the tracer's tier name ("" for a nil tracer).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Span is a live (unended) span. The zero of *Span (nil) is a valid
// no-op: every method checks, so call sites never branch on tracer
// presence.
type Span struct {
	t     *Tracer
	start time.Time

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

// Start begins a span under ctx's current span (same trace, parent
// link) or a fresh trace when ctx carries none. The returned context
// carries the new span, so child calls nest and outgoing HTTP hops
// propagate it via InjectHTTP. End must be called to record the span;
// an unended span is simply never recorded (no leak — the handle is
// garbage).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent, _ := SpanContextFrom(ctx)
	traceID := parent.TraceID
	if traceID == "" {
		traceID = t.newID(16)
	}
	sc := SpanContext{TraceID: traceID, SpanID: t.newID(8)}
	sp := &Span{
		t:     t,
		start: t.now(),
		rec: SpanRecord{
			TraceID: traceID,
			SpanID:  sc.SpanID,
			Parent:  parent.SpanID,
			Name:    name,
			Service: t.service,
			Tenant:  TenantFrom(ctx),
			JobID:   JobIDFrom(ctx),
		},
	}
	return ContextWithSpan(ctx, sc), sp
}

// Context returns the span's propagation identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[k] = v
	s.mu.Unlock()
}

// SetTenant / SetJob fill identity fields learned after Start.
func (s *Span) SetTenant(tenant string) {
	if s == nil || tenant == "" {
		return
	}
	s.mu.Lock()
	s.rec.Tenant = tenant
	s.mu.Unlock()
}

func (s *Span) SetJob(id string) {
	if s == nil || id == "" {
		return
	}
	s.mu.Lock()
	s.rec.JobID = id
	s.mu.Unlock()
}

// SetError marks the span failed. nil is a no-op so call sites can
// pass their error unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.rec.Error = err.Error()
	s.mu.Unlock()
}

// End records the span into the tracer. Safe to call at most once;
// later calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.rec
	s.mu.Unlock()
	rec.StartNS = s.start.UnixNano()
	d := s.t.now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	rec.DurNS = int64(d)
	s.t.record(rec)
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	slot := t.next
	if t.filled {
		old := t.ring[slot]
		idx := t.byTrace[old.TraceID]
		for i, v := range idx {
			if v == slot {
				idx = append(idx[:i], idx[i+1:]...)
				break
			}
		}
		if len(idx) == 0 {
			delete(t.byTrace, old.TraceID)
		} else {
			t.byTrace[old.TraceID] = idx
		}
	}
	t.ring[slot] = rec
	t.byTrace[rec.TraceID] = append(t.byTrace[rec.TraceID], slot)
	t.next++
	if t.next == t.cap {
		t.next, t.filled = 0, true
	}
	h, ok := t.hists[rec.Name]
	if !ok {
		if len(t.hists) >= maxHistNames {
			t.dropped++
			t.mu.Unlock()
			return
		}
		h = NewHistogram(DefLatencyBuckets...)
		t.hists[rec.Name] = h
	}
	t.mu.Unlock()
	h.Observe(float64(rec.DurNS) / float64(time.Second))
}

// Trace returns the retained spans of one trace, sorted by start time
// then span ID (deterministic for equal timestamps). Spans evicted by
// the ring are simply absent — the caller sees a partial trace, never
// an error.
func (t *Tracer) Trace(id string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	idx := t.byTrace[id]
	out := make([]SpanRecord, 0, len(idx))
	for _, slot := range idx {
		out = append(out, t.ring[slot])
	}
	t.mu.Unlock()
	SortSpans(out)
	return out
}

// SortSpans orders spans by start, then span ID — the canonical order
// Trace, the router's cross-shard stitch, and the Chrome export share.
func SortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// Histograms snapshots the per-span-name duration histograms (seconds)
// for the Prometheus exposition, keyed by span name.
func (t *Tracer) Histograms() map[string]HistogramSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.hists))
	hs := make([]*Histogram, 0, len(t.hists))
	for name, h := range t.hists {
		names = append(names, name)
		hs = append(hs, h)
	}
	t.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(names))
	for i, name := range names {
		out[name] = hs[i].Snapshot()
	}
	return out
}
