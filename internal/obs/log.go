package obs

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging: a log/slog handler wrapper that stamps every
// line logged with a context (logger.InfoContext and friends) with
// the trace/span IDs, tenant, job ID and shard that context carries.
// Code logs plainly; the handler supplies the correlation fields.

// NewLogger builds a *slog.Logger writing to w. format selects the
// handler: "json" for machine-shipped logs, anything else (regvd's
// "text" default) for human-readable key=value lines. The fixed attrs
// (e.g. the shard name) are appended to every line.
func NewLogger(w io.Writer, format string, attrs ...slog.Attr) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	if len(attrs) > 0 {
		h = h.WithAttrs(attrs)
	}
	return slog.New(&CtxHandler{Inner: h})
}

// CtxHandler decorates records with the observability context. It
// wraps any slog.Handler, so tests can capture through it too.
type CtxHandler struct {
	Inner slog.Handler
}

func (h *CtxHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.Inner.Enabled(ctx, l)
}

func (h *CtxHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc, ok := SpanContextFrom(ctx); ok {
		r.AddAttrs(slog.String("trace_id", sc.TraceID), slog.String("span_id", sc.SpanID))
	}
	if t := TenantFrom(ctx); t != "" {
		r.AddAttrs(slog.String("tenant", t))
	}
	if j := JobIDFrom(ctx); j != "" {
		r.AddAttrs(slog.String("job", j))
	}
	if s := ShardFrom(ctx); s != "" {
		r.AddAttrs(slog.String("shard", s))
	}
	return h.Inner.Handle(ctx, r)
}

func (h *CtxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &CtxHandler{Inner: h.Inner.WithAttrs(attrs)}
}

func (h *CtxHandler) WithGroup(name string) slog.Handler {
	return &CtxHandler{Inner: h.Inner.WithGroup(name)}
}

// Nop returns a logger that discards everything — the default for
// library layers when the caller wires no logger, so call sites never
// nil-check.
func Nop() *slog.Logger {
	return slog.New(nopHandler{})
}

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
