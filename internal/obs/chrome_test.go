package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTwoJobTrace replays a deterministic two-job request through a
// router tracer and a shard tracer sharing one trace — the shape the
// cluster produces — using seeded IDs and a fake clock so the export
// is byte-stable.
func buildTwoJobTrace() []SpanRecord {
	clk := newFakeClock()
	router := NewTracer("router", WithDeterministicIDs(100), WithClock(clk.now))
	shard := NewTracer("s1", WithDeterministicIDs(200), WithClock(clk.now))

	var all []SpanRecord
	for job := 0; job < 2; job++ {
		ctx, root := router.Start(context.Background(), "router.submit")
		root.SetTenant("acme")
		ctx, fwd := router.Start(ctx, "router.forward")
		fwd.SetAttr("shard", "s1")

		// Shard side: the header hop is the context hop here.
		sctx := ContextWithSpan(context.Background(), fwd.Context())
		sctx, sub := shard.Start(sctx, "jobs.submit")
		sub.SetJob(fmt.Sprintf("job-%d", job))
		_, qw := shard.Start(sctx, "queue.wait")
		qw.End()
		_, run := shard.Start(sctx, "sim.run")
		run.End()
		sub.End()

		fwd.End()
		root.End()
		all = append(all, router.Trace(root.Context().TraceID)...)
		all = append(all, shard.Trace(root.Context().TraceID)...)
	}
	return all
}

func TestChromeTraceGolden(t *testing.T) {
	got, err := ChromeTrace(buildTwoJobTrace())
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	golden := filepath.Join("testdata", "two_jobs_chrome.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("chrome export drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// chromeEventsOf parses an export back for property checks.
func chromeEventsOf(t *testing.T, b []byte) []ChromeEvent {
	t.Helper()
	var f struct {
		TraceEvents []ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return f.TraceEvents
}

// TestChromeTraceProperties drives randomized span forests through the
// exporter: every emitted span event must have ts >= 0 and dur >= 0,
// and every args.parent-reachable parent must exist in the span set
// (the exporter links depth through parents, so a dangling parent
// would silently flatten the lane layout).
func TestChromeTraceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		clk := newFakeClock()
		tr := NewTracer("svc", WithDeterministicIDs(uint64(iter)*1000+1), WithClock(clk.now))

		// Random tree: each span's parent is a previously started span
		// (or a root), with random attribute load and end order.
		type open struct {
			ctx context.Context
			sp  *Span
		}
		var opens []open
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			ctx := context.Background()
			if len(opens) > 0 && rng.Intn(3) > 0 {
				ctx = opens[rng.Intn(len(opens))].ctx
			}
			c2, sp := tr.Start(ctx, fmt.Sprintf("op%d", rng.Intn(5)))
			if rng.Intn(2) == 0 {
				sp.SetAttr("k", "v")
			}
			opens = append(opens, open{c2, sp})
		}
		ids := map[string]bool{}
		parents := map[string]string{}
		for _, o := range opens {
			ids[o.sp.Context().SpanID] = true
		}
		// End in random order; gather every trace's spans.
		rng.Shuffle(len(opens), func(i, j int) { opens[i], opens[j] = opens[j], opens[i] })
		traceIDs := map[string]bool{}
		for _, o := range opens {
			o.sp.End()
			traceIDs[o.sp.Context().TraceID] = true
		}
		var spans []SpanRecord
		for id := range traceIDs {
			spans = append(spans, tr.Trace(id)...)
		}
		for _, sp := range spans {
			if sp.Parent != "" {
				parents[sp.SpanID] = sp.Parent
			}
		}

		out, err := ChromeTrace(spans)
		if err != nil {
			t.Fatalf("iter %d: export: %v", iter, err)
		}
		events := chromeEventsOf(t, out)
		spanEvents := 0
		for _, ev := range events {
			if ev.Ph == "M" {
				continue
			}
			spanEvents++
			if ev.TS < 0 {
				t.Fatalf("iter %d: event %q ts %v < 0", iter, ev.Name, ev.TS)
			}
			if ev.Dur < 0 {
				t.Fatalf("iter %d: event %q dur %v < 0", iter, ev.Name, ev.Dur)
			}
		}
		if spanEvents != len(spans) {
			t.Fatalf("iter %d: %d span events for %d spans", iter, spanEvents, len(spans))
		}
		// Every recorded parent link resolves to a span we recorded: the
		// tracer only ever links to spans of the same trace tree.
		for id, parent := range parents {
			if !ids[parent] {
				t.Fatalf("iter %d: span %s has dangling parent %s", iter, id, parent)
			}
		}
	}
}
