package obs

import (
	"encoding/json"
	"sort"
)

// Chrome trace_event export: spans become complete ("ph":"X") events a
// chrome://tracing or Perfetto load renders as a flame chart. Services
// map to processes (with process_name metadata), span nesting depth
// maps to threads, and timestamps are microseconds relative to the
// earliest span so traces from different machines still line up
// visually.

// ChromeEvent is one trace_event entry. Only the fields this exporter
// uses are modeled; see the Chrome Trace Event Format spec.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// EncodeChrome wraps events in the trace-file envelope. Events are
// emitted in the order given.
func EncodeChrome(events []ChromeEvent) ([]byte, error) {
	b, err := json.MarshalIndent(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ChromeTrace renders one trace's spans as a trace_event JSON file.
// Deterministic for a deterministic input: services sort to stable
// pids, spans sort by (start, span ID), and depths derive only from
// parent links.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	spans = append([]SpanRecord(nil), spans...)
	SortSpans(spans)

	// Service → pid, in sorted-name order.
	serviceSet := map[string]bool{}
	for _, sp := range spans {
		serviceSet[sp.Service] = true
	}
	services := make([]string, 0, len(serviceSet))
	for s := range serviceSet {
		services = append(services, s)
	}
	sort.Strings(services)
	pidOf := make(map[string]int, len(services))
	for i, s := range services {
		pidOf[s] = i + 1
	}

	// Depth = ancestor count within this span set (tid). Cycles or
	// missing parents terminate the walk at depth 0.
	byID := make(map[string]SpanRecord, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	depthOf := func(sp SpanRecord) int {
		depth := 0
		for p := sp.Parent; p != "" && depth < 64; depth++ {
			parent, ok := byID[p]
			if !ok {
				break
			}
			p = parent.Parent
		}
		return depth
	}

	var minStart int64
	for i, sp := range spans {
		if i == 0 || sp.StartNS < minStart {
			minStart = sp.StartNS
		}
	}

	events := make([]ChromeEvent, 0, len(spans)+len(services))
	for _, s := range services {
		name := s
		if name == "" {
			name = "(unnamed)"
		}
		events = append(events, ChromeEvent{
			Name: "process_name", Ph: "M", PID: pidOf[s],
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		args := map[string]any{
			"trace_id": sp.TraceID,
			"span_id":  sp.SpanID,
		}
		if sp.Tenant != "" {
			args["tenant"] = sp.Tenant
		}
		if sp.JobID != "" {
			args["job_id"] = sp.JobID
		}
		if sp.Error != "" {
			args["error"] = sp.Error
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, ChromeEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   float64(sp.StartNS-minStart) / 1e3,
			Dur:  float64(sp.DurNS) / 1e3,
			PID:  pidOf[sp.Service],
			TID:  depthOf(sp),
			Args: args,
		})
	}
	return EncodeChrome(events)
}
