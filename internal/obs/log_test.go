package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestCtxHandlerStampsCorrelationFields(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "json", slog.String("service", "s1"))

	tr := testTracer("s1")
	ctx, sp := tr.Start(context.Background(), "submit")
	ctx = WithTenant(ctx, "acme")
	ctx = WithJobID(ctx, "j42")
	ctx = WithShard(ctx, "s1")
	lg.InfoContext(ctx, "job accepted", "queue", 3)
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	sc := sp.Context()
	for k, want := range map[string]string{
		"trace_id": sc.TraceID,
		"span_id":  sc.SpanID,
		"tenant":   "acme",
		"job":      "j42",
		"shard":    "s1",
		"service":  "s1",
		"msg":      "job accepted",
	} {
		if got, _ := rec[k].(string); got != want {
			t.Fatalf("field %q = %q, want %q (line %s)", k, got, want, buf.String())
		}
	}
}

func TestTextLoggerOmitsMissingFields(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "text")
	lg.InfoContext(context.Background(), "plain")
	s := buf.String()
	for _, forbidden := range []string{"trace_id", "tenant", "job=", "shard"} {
		if strings.Contains(s, forbidden) {
			t.Fatalf("bare context leaked %q: %s", forbidden, s)
		}
	}
	if !strings.Contains(s, "plain") {
		t.Fatalf("message lost: %s", s)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	lg := Nop()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatalf("nop logger claims enabled")
	}
	lg.Info("goes nowhere") // must not panic
}
