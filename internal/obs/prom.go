package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Prometheus text exposition (version 0.0.4): a writer that emits
// HELP/TYPE-annotated counters, gauges and histograms, a lock-free
// fixed-bucket Histogram for real latency distributions (the windowed
// p50/p99 in MetricsSnapshot cannot be aggregated across shards;
// bucket counts can), and a promtool-style lint used by the tests to
// keep the exposition parseable by real scrapers.

// DefLatencyBuckets are the default duration buckets in seconds —
// sub-millisecond cache hits through multi-minute whole-GPU runs.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket cumulative histogram with atomic
// counters: Observe is lock-free and allocation-free, so it sits on
// request hot paths.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf after
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (the +Inf bucket is implicit).
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy for exposition.
type HistogramSnapshot struct {
	// Bounds are the finite upper bounds; Counts has len(Bounds)+1
	// entries (per-bucket, not cumulative), the last being +Inf.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram. Buckets are read individually, so a
// snapshot under concurrent Observes may be off by in-flight counts —
// fine for monitoring, and Count is read last so sums never exceed it
// by more than the races in flight.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Count = h.count.Load()
	return s
}

// Label is one name="value" pair.
type Label struct{ Name, Value string }

// PromWriter accumulates a text exposition. Emit every series of one
// metric name consecutively (HELP/TYPE are written on first use of a
// name, and Prometheus requires grouped families).
type PromWriter struct {
	b    strings.Builder
	seen map[string]bool
}

func (w *PromWriter) header(name, typ, help string) {
	if w.seen == nil {
		w.seen = make(map[string]bool)
	}
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (w *PromWriter) sample(name string, labels []Label, v float64) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.b.WriteByte(',')
			}
			fmt.Fprintf(&w.b, "%s=%q", l.Name, escapeLabel(l.Value))
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(v))
	w.b.WriteByte('\n')
}

// Counter emits one counter series. By convention (enforced by
// LintProm) counter names end in "_total".
func (w *PromWriter) Counter(name, help string, v float64, labels ...Label) {
	w.header(name, "counter", help)
	w.sample(name, labels, v)
}

// Gauge emits one gauge series.
func (w *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	w.header(name, "gauge", help)
	w.sample(name, labels, v)
}

// Histogram emits one histogram family member: cumulative _bucket
// series (le-labelled, +Inf included), _sum and _count.
func (w *PromWriter) Histogram(name, help string, s HistogramSnapshot, labels ...Label) {
	w.header(name, "histogram", help)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		bl := append(append([]Label(nil), labels...), Label{"le", le})
		w.sample(name+"_bucket", bl, float64(cum))
	}
	w.sample(name+"_sum", labels, s.Sum)
	w.sample(name+"_count", labels, float64(s.Count))
}

// Bytes returns the accumulated exposition.
func (w *PromWriter) Bytes() []byte { return []byte(w.b.String()) }

// LintProm validates a text exposition the way `promtool check
// metrics` would: well-formed names and label syntax, HELP/TYPE
// placement, grouped metric families, counters ending in _total,
// histogram bucket completeness (le present, ascending, +Inf last)
// and no duplicate series. It returns the first violation with its
// line number, or nil. Vendored here (stdlib-only) so CI lints the
// exposition without a Prometheus dependency.
func LintProm(data []byte) error {
	type family struct {
		typ        string
		hasSamples bool
		closed     bool // a later family started; more samples = ungrouped
	}
	families := map[string]*family{}
	series := map[string]bool{}
	current := ""
	var bucketLEs []float64 // le values of the open histogram family, in order

	fail := func(line int, format string, args ...any) error {
		return fmt.Errorf("prom lint: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	baseOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := families[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return name
	}
	closeFamily := func(line int, base string) error {
		if f, ok := families[base]; ok && f.typ == "histogram" && f.hasSamples {
			if len(bucketLEs) == 0 {
				return fail(line, "histogram %s has no _bucket series", base)
			}
			if !math.IsInf(bucketLEs[len(bucketLEs)-1], +1) {
				return fail(line, "histogram %s missing +Inf bucket", base)
			}
		}
		bucketLEs = nil
		return nil
	}

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := ln + 1
		text := strings.TrimRight(raw, " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if !validMetricName(name) {
					return fail(line, "invalid metric name %q in %s", name, fields[1])
				}
				f := families[name]
				if f == nil {
					f = &family{}
					families[name] = f
				}
				if f.hasSamples {
					return fail(line, "%s for %s after its samples", fields[1], name)
				}
				if fields[1] == "TYPE" {
					if f.typ != "" {
						return fail(line, "duplicate TYPE for %s", name)
					}
					if len(fields) < 4 {
						return fail(line, "TYPE %s missing type", name)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fail(line, "unknown TYPE %q for %s", fields[3], name)
					}
					f.typ = fields[3]
					if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
						return fail(line, "counter %s should end in _total", name)
					}
				}
			}
			continue
		}

		name, labels, value, perr := parseSample(text)
		if perr != nil {
			return fail(line, "%v", perr)
		}
		if !validMetricName(name) {
			return fail(line, "invalid metric name %q", name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return fail(line, "metric %s: bad value %q", name, value)
		}
		base := baseOf(name)
		if base != current {
			if current != "" {
				if err := closeFamily(line, current); err != nil {
					return err
				}
				if f, ok := families[current]; ok {
					f.closed = true
				}
			}
			if f, ok := families[base]; ok && f.closed {
				return fail(line, "metric family %s not grouped (samples interleaved)", base)
			}
			current = base
		}
		f := families[base]
		if f == nil {
			f = &family{typ: "untyped"}
			families[base] = f
		}
		f.hasSamples = true
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			return fail(line, "counter %s should end in _total", name)
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				return fail(line, "histogram bucket %s missing le label", name)
			}
			lv, err := parseLE(le)
			if err != nil {
				return fail(line, "histogram bucket %s: bad le %q", name, le)
			}
			if n := len(bucketLEs); n > 0 && !(lv > bucketLEs[n-1]) {
				// A new label-set's bucket run restarts at the lowest bound.
				if lv > bucketLEs[0] || !math.IsInf(bucketLEs[n-1], +1) {
					return fail(line, "histogram %s: le %q out of order", base, le)
				}
				bucketLEs = bucketLEs[:0]
			}
			bucketLEs = append(bucketLEs, lv)
		}
		key := name + "|" + canonLabels(labels)
		if series[key] {
			return fail(line, "duplicate series %s", text)
		}
		series[key] = true
	}
	if current != "" {
		if err := closeFamily(len(lines), current); err != nil {
			return err
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func canonLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// parseSample parses `name{l="v",...} value [timestamp]`.
func parseSample(s string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' && s[i] != '\t' {
		i++
	}
	name = s[:i]
	if i < len(s) && s[i] == '{' {
		i++
		for {
			for i < len(s) && (s[i] == ' ' || s[i] == ',') {
				i++
			}
			if i < len(s) && s[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(s) && s[j] != '=' {
				j++
			}
			if j >= len(s) {
				return "", nil, "", fmt.Errorf("unterminated label in %q", s)
			}
			lname := s[i:j]
			if !validLabelName(lname) {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			i = j + 1
			if i >= len(s) || s[i] != '"' {
				return "", nil, "", fmt.Errorf("label %s: unquoted value", lname)
			}
			i++
			var val strings.Builder
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' && i+1 < len(s) {
					i++
					switch s[i] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(s[i])
					}
				} else {
					val.WriteByte(s[i])
				}
				i++
			}
			if i >= len(s) {
				return "", nil, "", fmt.Errorf("label %s: unterminated value", lname)
			}
			i++ // closing quote
			labels[lname] = val.String()
		}
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return "", nil, "", fmt.Errorf("sample %q missing value", s)
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		return "", nil, "", fmt.Errorf("sample %q has trailing garbage", s)
	}
	return name, labels, fields[0], nil
}
