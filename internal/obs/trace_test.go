package obs

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, strictly advancing time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func testTracer(service string) *Tracer {
	clk := newFakeClock()
	return NewTracer(service, WithDeterministicIDs(1), WithClock(clk.now))
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "anything")
	if sp != nil {
		t.Fatalf("nil tracer returned a non-nil span")
	}
	// All span methods must be safe on nil.
	sp.SetAttr("k", "v")
	sp.SetTenant("t")
	sp.SetJob("j")
	sp.SetError(fmt.Errorf("boom"))
	sp.End()
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatalf("nil tracer injected a span context")
	}
	if got := tr.Trace("deadbeef"); got != nil {
		t.Fatalf("nil tracer returned spans: %v", got)
	}
}

func TestSpanParentLinksAndTraceRetrieval(t *testing.T) {
	tr := testTracer("shard-a")
	ctx, root := tr.Start(context.Background(), "submit")
	root.SetTenant("acme")
	ctx2, child := tr.Start(ctx, "sim.run")
	child.SetJob("abc123")
	_ = ctx2
	child.End()
	root.End()

	traceID := root.Context().TraceID
	spans := tr.Trace(traceID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootRec, childRec *SpanRecord
	for i := range spans {
		switch spans[i].Name {
		case "submit":
			rootRec = &spans[i]
		case "sim.run":
			childRec = &spans[i]
		}
	}
	if rootRec == nil || childRec == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if rootRec.Parent != "" {
		t.Fatalf("root has parent %q", rootRec.Parent)
	}
	if childRec.Parent != rootRec.SpanID {
		t.Fatalf("child parent %q, want %q", childRec.Parent, rootRec.SpanID)
	}
	if childRec.TraceID != traceID {
		t.Fatalf("child in trace %q, want %q", childRec.TraceID, traceID)
	}
	if rootRec.Tenant != "acme" || childRec.JobID != "abc123" {
		t.Fatalf("identity fields lost: %+v %+v", rootRec, childRec)
	}
	if childRec.DurNS < 0 || rootRec.DurNS < 0 {
		t.Fatalf("negative durations")
	}
	// Tenant propagates via context too.
	ctx3 := WithTenant(context.Background(), "beta")
	_, sp3 := tr.Start(ctx3, "admission")
	sp3.End()
	got := tr.Trace(sp3.Context().TraceID)
	if len(got) != 1 || got[0].Tenant != "beta" {
		t.Fatalf("context tenant not stamped: %+v", got)
	}
}

func TestRingEvictionDropsOldTraces(t *testing.T) {
	tr := NewTracer("s", WithCapacity(16), WithDeterministicIDs(7), WithClock(newFakeClock().now))
	var first string
	for i := 0; i < 40; i++ {
		_, sp := tr.Start(context.Background(), "op")
		if i == 0 {
			first = sp.Context().TraceID
		}
		sp.End()
	}
	if got := tr.Trace(first); len(got) != 0 {
		t.Fatalf("evicted trace still retrievable: %v", got)
	}
	// The most recent span must still be there.
	_, sp := tr.Start(context.Background(), "op")
	sp.End()
	if got := tr.Trace(sp.Context().TraceID); len(got) != 1 {
		t.Fatalf("fresh span not retained, got %d", len(got))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := testTracer("router")
	ctx, sp := tr.Start(context.Background(), "route")
	h := http.Header{}
	InjectHTTP(ctx, h)
	v := h.Get(TraceHeader)
	if v == "" {
		t.Fatalf("no header injected")
	}
	sc, ok := ParseTraceHeader(v)
	if !ok {
		t.Fatalf("own header %q does not parse", v)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip changed context: %+v vs %+v", sc, sp.Context())
	}
	// Extract into a fresh context and verify a child joins the trace.
	ctx2 := ExtractHTTP(context.Background(), h)
	_, child := tr.Start(ctx2, "remote")
	child.End()
	recs := tr.Trace(sc.TraceID)
	if len(recs) != 1 || recs[0].Parent != sc.SpanID {
		t.Fatalf("remote child not linked: %+v", recs)
	}

	for _, bad := range []string{"", "zz/11", "abc", "abc/", "/def", "ABC/def", "abc/DEF g"} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("malformed header %q accepted", bad)
		}
	}
}

func TestHistogramsPerSpanName(t *testing.T) {
	tr := testTracer("s")
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), "queue.wait")
		sp.End()
	}
	hs := tr.Histograms()
	h, ok := hs["queue.wait"]
	if !ok {
		t.Fatalf("no histogram for span name: %v", hs)
	}
	if h.Count != 5 {
		t.Fatalf("histogram count %d, want 5", h.Count)
	}
	if h.Sum <= 0 {
		t.Fatalf("histogram sum %v, want > 0", h.Sum)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer("s", WithCapacity(64))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, sp := tr.Start(context.Background(), "op")
				_, child := tr.Start(ctx, "child")
				child.SetAttr("i", "x")
				child.End()
				sp.End()
				tr.Trace(sp.Context().TraceID)
				tr.Histograms()
			}
		}()
	}
	wg.Wait()
}
