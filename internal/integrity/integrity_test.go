package integrity

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSealOpenRoundTrip(t *testing.T) {
	cases := []struct{ payload, spec string }{
		{"", ""},
		{`{"ok":true}` + "\n", ""},
		{`{"ok":true}` + "\n", `{"kernel":"spin"}`},
		{strings.Repeat("x", 1<<16), "spec"},
	}
	for _, c := range cases {
		sealed := Seal([]byte(c.payload), []byte(c.spec))
		if !IsSealed(sealed) {
			t.Fatalf("Seal output not recognized as sealed")
		}
		env, err := Open(sealed)
		if err != nil {
			t.Fatalf("Open(Seal(%q)): %v", c.payload, err)
		}
		if env.Legacy {
			t.Fatalf("sealed envelope reported legacy")
		}
		if string(env.Payload) != c.payload || string(env.Spec) != c.spec {
			t.Fatalf("round trip mismatch: payload=%q spec=%q", env.Payload, env.Spec)
		}
	}
}

func TestOpenLegacyPassthrough(t *testing.T) {
	raw := []byte(`{"plain":"json result with no envelope"}`)
	env, err := Open(raw)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if !env.Legacy || !bytes.Equal(env.Payload, raw) {
		t.Fatalf("legacy passthrough broken: legacy=%v payload=%q", env.Legacy, env.Payload)
	}
}

// Every single-bit flip anywhere past the magic must be detected; a
// flip inside the magic degrades to legacy passthrough, which the
// store-level scrubber catches because the "payload" is then not valid
// JSON/gob.
func TestOpenDetectsBitFlips(t *testing.T) {
	payload, spec := []byte(`{"cycles":12345}`+"\n"), []byte(`{"kernel":"k"}`)
	sealed := Seal(payload, spec)
	for i := len(magic); i < len(sealed); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(sealed)
			mut[i] ^= 1 << bit
			env, err := Open(mut)
			if err == nil && !env.Legacy {
				// The only tolerable clean open is a value-preserving
				// flip (e.g. a hex digit changing case in the header):
				// the decoded content must still be exactly right.
				if !bytes.Equal(env.Payload, payload) || !bytes.Equal(env.Spec, spec) {
					t.Fatalf("flip at byte %d bit %d went undetected", i, bit)
				}
			}
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("flip at byte %d bit %d: error is %T, want *CorruptError", i, bit, err)
				}
			}
		}
	}
}

func TestOpenTruncationAndExtension(t *testing.T) {
	sealed := Seal([]byte("payload"), nil)
	if _, err := Open(sealed[:len(sealed)-1]); err == nil {
		t.Fatalf("truncated envelope opened cleanly")
	}
	if _, err := Open(append(bytes.Clone(sealed), 'x')); err == nil {
		t.Fatalf("extended envelope opened cleanly")
	}
	if _, err := Open([]byte(magic + " zz 1 0\nx")); err == nil {
		t.Fatalf("garbage checksum field opened cleanly")
	}
	if _, err := Open([]byte(magic + " 00000000 99999999999999999999 0\n")); err == nil {
		t.Fatalf("overflowing length field opened cleanly")
	}
}

func TestScrubberRunsAndStops(t *testing.T) {
	var passes atomic.Int64
	s := &Scrubber{
		Every: 5 * time.Millisecond,
		Pass: func() Report {
			passes.Add(1)
			return Report{Scanned: 1}
		},
	}
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for passes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if got := passes.Load(); got < 3 {
		t.Fatalf("scrubber ran %d passes, want >= 3", got)
	}
	settled := passes.Load()
	time.Sleep(30 * time.Millisecond)
	if passes.Load() != settled {
		t.Fatalf("scrubber kept running after Stop")
	}
	s.Stop() // second Stop is a no-op
}

func TestScrubberDisabled(t *testing.T) {
	s := &Scrubber{Every: 0, Pass: func() Report { return Report{} }}
	s.Start() // no-op; Stop on a never-started scrubber must not hang
	s.Stop()
}
