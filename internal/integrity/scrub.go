package integrity

import (
	"log/slog"
	"sync"
	"time"
)

// Report is one scrub pass's tally.
type Report struct {
	Scanned  int // files examined
	Corrupt  int // files that failed envelope verification
	Repaired int // corrupt files restored (refetched, re-simulated, or
	// safely dropped so the journal re-runs the job)
}

func (r *Report) Add(o Report) {
	r.Scanned += o.Scanned
	r.Corrupt += o.Corrupt
	r.Repaired += o.Repaired
}

// Scrubber runs Pass on a fixed interval until stopped. The walk and
// repair logic lives with whoever owns the files (the store); this
// type only owns the schedule so the daemon has one thing to start
// and stop.
type Scrubber struct {
	Every time.Duration
	Pass  func() Report
	Log   *slog.Logger

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// Start launches the background loop. A zero or negative interval, or
// a nil Pass, disables the scrubber (Start is a no-op).
func (s *Scrubber) Start() {
	if s.Every <= 0 || s.Pass == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run(s.stop, s.done)
}

func (s *Scrubber) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.Every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rep := s.Pass()
			if s.Log != nil && rep.Corrupt > 0 {
				s.Log.Warn("scrub pass found corruption",
					"scanned", rep.Scanned,
					"corrupt", rep.Corrupt,
					"repaired", rep.Repaired)
			}
		}
	}
}

// Stop halts the loop and waits for an in-flight pass to finish.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
