// Package integrity provides a checksummed at-rest envelope for the
// store's content-addressed artifacts (results and checkpoints) plus a
// small interval scrubber that walks them in the background.
//
// The journal already CRC-frames every record, but the files it points
// at — results/<id>.json and checkpoints/<id>.ckpt — were written raw,
// so a flipped bit on disk silently poisoned the dedup cache. The
// envelope is a single ASCII header line followed by the original
// payload:
//
//	RVI1 <crc32c-hex> <payload-len> <spec-len>\n<payload><spec>
//
// The CRC (Castagnoli, same polynomial as the journal) covers payload
// and spec together. The optional spec section carries the JSON job
// spec that produced a result, so a scrubber that finds a corrupt
// payload but an intact spec can deterministically re-simulate — the
// content address is the oracle for which of the two rotted.
//
// Files that do not start with the magic are returned as-is with
// Legacy set: every pre-envelope store stays readable, and the
// scrubber reseals such files on its next pass.
package integrity

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"
)

const magic = "RVI1"

// maxSection bounds each envelope section so a corrupt header cannot
// make a reader attempt a multi-gigabyte allocation.
const maxSection = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports an envelope whose header or checksum failed
// verification. Path is filled by callers that know it.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return "integrity: corrupt envelope: " + e.Reason
	}
	return "integrity: " + e.Path + ": corrupt envelope: " + e.Reason
}

// Envelope is the parsed form of a sealed file.
type Envelope struct {
	Payload []byte
	Spec    []byte
	// Legacy marks input that carried no envelope at all; Payload is
	// then the raw input, unverified.
	Legacy bool
}

// Seal wraps payload and an optional job spec in a checksummed
// envelope. The result is what should be written to disk.
func Seal(payload, spec []byte) []byte {
	sum := crc32.Checksum(payload, castagnoli)
	sum = crc32.Update(sum, castagnoli, spec)
	var buf bytes.Buffer
	buf.Grow(len(magic) + 32 + len(payload) + len(spec))
	fmt.Fprintf(&buf, "%s %08x %d %d\n", magic, sum, len(payload), len(spec))
	buf.Write(payload)
	buf.Write(spec)
	return buf.Bytes()
}

// IsSealed reports whether data begins with the envelope magic.
func IsSealed(data []byte) bool {
	return bytes.HasPrefix(data, []byte(magic+" "))
}

// Open parses and verifies a sealed envelope. Input without the magic
// prefix is returned unverified with Legacy set — old stores keep
// working, and the scrubber upgrades them in place. Any header or
// checksum mismatch returns a *CorruptError.
func Open(data []byte) (Envelope, error) {
	if !IsSealed(data) {
		return Envelope{Payload: data, Legacy: true}, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || nl > len(magic)+40 {
		return Envelope{}, &CorruptError{Reason: "unterminated header"}
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 4 {
		return Envelope{}, &CorruptError{Reason: "malformed header"}
	}
	sum64, err := strconv.ParseUint(string(fields[1]), 16, 32)
	if err != nil {
		return Envelope{}, &CorruptError{Reason: "bad checksum field"}
	}
	plen, err := strconv.ParseUint(string(fields[2]), 10, 63)
	if err != nil || plen > maxSection {
		return Envelope{}, &CorruptError{Reason: "bad payload length"}
	}
	slen, err := strconv.ParseUint(string(fields[3]), 10, 63)
	if err != nil || slen > maxSection {
		return Envelope{}, &CorruptError{Reason: "bad spec length"}
	}
	body := data[nl+1:]
	if uint64(len(body)) != plen+slen {
		return Envelope{}, &CorruptError{Reason: fmt.Sprintf(
			"body length %d, header says %d+%d", len(body), plen, slen)}
	}
	if crc32.Checksum(body, castagnoli) != uint32(sum64) {
		return Envelope{}, &CorruptError{Reason: "checksum mismatch"}
	}
	return Envelope{Payload: body[:plen:plen], Spec: body[plen:]}, nil
}

// Salvage extracts the payload and spec sections of a sealed envelope
// WITHOUT checksum verification — the scrubber's last resort on a
// corrupt file. Neither section can be trusted; callers must validate
// them independently (the job spec validates against the content
// address, which is exactly what makes re-simulation a safe repair).
func Salvage(data []byte) (payload, spec []byte, ok bool) {
	if !IsSealed(data) {
		return nil, nil, false
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, nil, false
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 4 {
		return nil, nil, false
	}
	plen, err := strconv.ParseUint(string(fields[2]), 10, 63)
	if err != nil {
		return nil, nil, false
	}
	slen, err := strconv.ParseUint(string(fields[3]), 10, 63)
	if err != nil {
		return nil, nil, false
	}
	body := data[nl+1:]
	if plen+slen != uint64(len(body)) || plen > uint64(len(body)) {
		return nil, nil, false
	}
	return body[:plen:plen], body[plen:], true
}
