package jobs_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regvirt/internal/jobs"
	"regvirt/internal/jobs/sched"
	"regvirt/internal/sim"
)

// shortSpinTemplate is a quicker spin than spinKernel — long enough to
// keep a worker visibly busy, short enough that a test can run a dozen.
// The %d seed lands in dead register r6 so each instantiation gets its
// own content address without changing behaviour.
const shortSpinTemplate = `
.kernel shortspin
.reg 8
    s2r  r0, %%tid.x
    movi r6, %d
    movi r4, 0
    movi r5, 0
body:
    iadd r5, r5, r0
    iadd r4, r4, 1
    isetp.lt p0, r4, 8000
@p0 bra body
    shl  r7, r0, 2
    st.global [r7+0], r5
    exit
`

// spinJob returns a distinct short-spin job per index.
func spinJob(i int) jobs.Job {
	return jobs.Job{Kernel: fmt.Sprintf(shortSpinTemplate, i), GridCTAs: 2, ThreadsPerCTA: 32, ConcCTAs: 1}
}

// TestFairShareNoStarvation is the starvation bound: tenant "flood"
// submits 10x the jobs of tenant "trickle" at equal weight. Stride
// scheduling must interleave them — both trickle jobs finish while
// most of the flood backlog is still pending, and the quiet tenant is
// never shed or quota-refused.
func TestFairShareNoStarvation(t *testing.T) {
	const floodN, trickleN = 20, 2
	p := jobs.NewPoolWith(jobs.Options{
		Workers: 1, // single worker makes the interleaving visible
		Sched: sched.Config{
			Tenants: map[string]sched.TenantConfig{
				"flood":   {Weight: 1},
				"trickle": {Weight: 1, MaxQueued: 8},
			},
		},
	})
	defer p.Close()

	var (
		wg         sync.WaitGroup
		floodDone  atomic.Int64
		mu         sync.Mutex
		atTrickle  []int64 // flood completions observed at each trickle finish
		submitErrs = make(chan error, floodN+trickleN)
	)
	for i := 0; i < floodN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := spinJob(i)
			j.Tenant = "flood"
			if _, err := p.Submit(context.Background(), j); err != nil {
				submitErrs <- fmt.Errorf("flood %d: %w", i, err)
				return
			}
			floodDone.Add(1)
		}(i)
	}
	// Let most of the flood queue up before the trickle arrives.
	deadline := time.Now().Add(10 * time.Second)
	for p.Metrics().QueueDepth < floodN-5 {
		if time.Now().After(deadline) {
			t.Fatal("flood never queued")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < trickleN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := spinJob(100 + i) // distinct from every flood job
			j.Tenant = "trickle"
			if _, err := p.Submit(context.Background(), j); err != nil {
				submitErrs <- fmt.Errorf("trickle %d: %w", i, err)
				return
			}
			mu.Lock()
			atTrickle = append(atTrickle, floodDone.Load())
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(submitErrs)
	for err := range submitErrs {
		t.Error(err)
	}
	if len(atTrickle) != trickleN {
		t.Fatalf("%d trickle jobs finished, want %d", len(atTrickle), trickleN)
	}
	// The bound: with 1:1 weights the trickle tenant's jobs ride along
	// interleaved, so both must land while at least a quarter of the
	// flood is still outstanding. (A FIFO queue would hold them to the
	// very end: fd would be floodN or within a job of it.)
	for i, fd := range atTrickle {
		if fd > floodN*3/4 {
			t.Errorf("trickle job %d finished after %d/%d flood jobs — starved past the fair-share bound", i, fd, floodN)
		}
	}
	qs := p.Queues()
	for _, ts := range qs.Queues {
		if ts.Tenant != "trickle" {
			continue
		}
		if ts.Shed != 0 || ts.QuotaRejected != 0 {
			t.Errorf("trickle tenant shed=%d quota_rejected=%d, want 0/0", ts.Shed, ts.QuotaRejected)
		}
		if ts.Completed != trickleN {
			t.Errorf("trickle completed = %d, want %d", ts.Completed, trickleN)
		}
	}
}

// TestPreemptionDeterminism is the preemption proof: a low-priority
// job is checkpoint-interrupted by a high-priority arrival, resumes,
// and finishes with a result byte-identical to an uninterrupted run —
// and the high-priority job overtakes it.
func TestPreemptionDeterminism(t *testing.T) {
	low := jobs.Job{Kernel: spinKernel, GridCTAs: 2, ThreadsPerCTA: 64, ConcCTAs: 2}
	high := jobs.Job{Workload: "VectorAdd", PhysRegs: 512, Priority: 10}

	control, err := jobs.Execute(context.Background(), low)
	if err != nil {
		t.Fatal(err)
	}

	st, _ := openStoreT(t, t.TempDir())
	defer st.Close()
	p := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st, CheckpointEvery: 2000})
	defer p.Close()

	var (
		order   = make(chan string, 2)
		lowRes  *jobs.Result
		highErr error
		lowErr  error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		lowRes, lowErr = p.Submit(context.Background(), low)
		order <- "low"
	}()
	// Wait until the low job has provably made progress (a periodic
	// checkpoint is on disk), then land the high-priority job.
	deadline := time.Now().Add(30 * time.Second)
	for p.Metrics().CheckpointsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("low job wrote no checkpoint within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, highErr = p.Submit(context.Background(), high)
		order <- "high"
	}()
	wg.Wait()
	if lowErr != nil || highErr != nil {
		t.Fatalf("low err %v, high err %v", lowErr, highErr)
	}
	if first := <-order; first != "high" {
		t.Errorf("completion order starts with %q, want the high-priority job to overtake", first)
	}
	if !bytes.Equal(control.JSON(), lowRes.JSON()) {
		t.Error("preempted-then-resumed result differs from the uninterrupted control")
	}
	m := p.Metrics()
	if m.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", m.Preemptions)
	}
	if m.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", m.Resumes)
	}
	// The victim's interrupt wrote an on-cancel checkpoint on top of
	// the periodic one it already had.
	if m.CheckpointsWritten < 2 {
		t.Errorf("checkpoints_written = %d, want >= 2 (periodic + preemption)", m.CheckpointsWritten)
	}
}

// TestPreemptionDisabled: with DisablePreemption the same arrival
// pattern never interrupts anyone — the high-priority job just waits.
func TestPreemptionDisabled(t *testing.T) {
	st, _ := openStoreT(t, t.TempDir())
	defer st.Close()
	p := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st, CheckpointEvery: 2000, DisablePreemption: true})
	defer p.Close()

	low := jobs.Job{Kernel: spinKernel, GridCTAs: 2, ThreadsPerCTA: 64, ConcCTAs: 2}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := p.Submit(context.Background(), low); err != nil {
			t.Errorf("low: %v", err)
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for p.Metrics().CheckpointsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("low job wrote no checkpoint within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	go func() {
		defer wg.Done()
		if _, err := p.Submit(context.Background(), jobs.Job{Workload: "VectorAdd", PhysRegs: 512, Priority: 10}); err != nil {
			t.Errorf("high: %v", err)
		}
	}()
	wg.Wait()
	if m := p.Metrics(); m.Preemptions != 0 || m.Resumes != 0 {
		t.Errorf("preemptions=%d resumes=%d with preemption disabled, want 0/0", m.Preemptions, m.Resumes)
	}
}

// TestBadCheckpointFallsBackToFreshRun: a decodable but unusable
// checkpoint (no SM state) makes Resume fail with ErrBadCheckpoint;
// the pool restarts the job from cycle 0 and determinism still yields
// the byte-identical result.
func TestBadCheckpointFallsBackToFreshRun(t *testing.T) {
	job := jobs.Job{Workload: "VectorAdd", PhysRegs: 512}
	id := job.Key()
	control, err := jobs.Execute(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, _ := openStoreT(t, dir)
	// Journal the job as accepted and plant an empty (decodable,
	// useless) checkpoint under its ID.
	if err := st.Accept(id, job, true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sim.Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveCheckpoint(id, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, recovered := openStoreT(t, dir)
	defer st2.Close()
	if len(recovered) != 1 || recovered[0].State != "pending" {
		t.Fatalf("recovered = %+v, want the planted job pending", recovered)
	}
	// Prove the planted blob really is the ErrBadCheckpoint case.
	if _, rerr := sim.Resume(sim.Config{}, sim.LaunchSpec{}, &sim.Checkpoint{}); !errors.Is(rerr, sim.ErrBadCheckpoint) {
		t.Fatalf("empty checkpoint resume: %v, want ErrBadCheckpoint", rerr)
	}

	p := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st2})
	defer p.Close()
	if resumed := p.Restore(recovered); resumed != 1 {
		t.Fatalf("Restore resumed %d, want 1", resumed)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		stt, ok := p.Status(id)
		if ok && stt.State == "done" {
			if !bytes.Equal(control.JSON(), stt.Result.JSON()) {
				t.Error("fresh-run fallback result differs from control")
			}
			break
		}
		if ok && stt.State == "failed" {
			t.Fatalf("job failed instead of falling back: %s", stt.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %+v after 30s", stt)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTenantNotInJobKey: identical jobs under different tenants and
// priorities share one content address, one simulation and one cached
// result.
func TestTenantNotInJobKey(t *testing.T) {
	a := jobs.Job{Workload: "VectorAdd", PhysRegs: 512, Tenant: "team-a", Priority: 3}
	b := jobs.Job{Workload: "VectorAdd", PhysRegs: 512, Tenant: "team-b"}
	c := jobs.Job{Workload: "VectorAdd", PhysRegs: 512}
	if a.Key() != b.Key() || b.Key() != c.Key() {
		t.Fatalf("keys differ across tenants: %s / %s / %s", a.Key(), b.Key(), c.Key())
	}

	p := jobs.NewPool(2)
	defer p.Close()
	ra, err := p.Submit(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.Submit(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.JSON(), rb.JSON()) {
		t.Error("results differ across tenants")
	}
	m := p.Metrics()
	if m.Executed != 1 {
		t.Errorf("executed = %d, want 1 (second submit must dedup)", m.Executed)
	}
	if m.CacheHits+m.Deduped != 1 {
		t.Errorf("cache_hits+deduped = %d, want 1", m.CacheHits+m.Deduped)
	}
}

// TestQuotaTypedErrors: MaxQueued refusals are *sched.QuotaError with
// an honest retry hint; strict-mode and priority-cap refusals are
// *sched.AdmissionError. Neither counts as an overload shed.
func TestQuotaTypedErrors(t *testing.T) {
	p := jobs.NewPoolWith(jobs.Options{
		Workers: 1,
		Sched: sched.Config{
			Strict: true,
			Tenants: map[string]sched.TenantConfig{
				"q": {Weight: 1, MaxQueued: 1, MaxRunning: 1, MaxPriority: 5},
			},
		},
	})
	defer p.Close()

	var ae *sched.AdmissionError
	if _, err := p.Submit(context.Background(), jobs.Job{Workload: "VectorAdd", Tenant: "stranger"}); !errors.As(err, &ae) {
		t.Fatalf("strict unknown tenant: %v, want AdmissionError", err)
	}
	if _, err := p.Submit(context.Background(), jobs.Job{Workload: "VectorAdd", Tenant: "q", Priority: 6}); !errors.As(err, &ae) {
		t.Fatalf("over-priority: %v, want AdmissionError", err)
	}

	// Pin the single worker on a gated Exec so queue state is stable
	// (transient queue depths can't be polled reliably: the simulator
	// starves 1ms timers by tens of ms), then fill q's one queued slot
	// and overflow it.
	gate := make(chan struct{})
	held := make(chan struct{})
	execDone := make(chan error, 1)
	go func() {
		execDone <- p.Exec(context.Background(), func() error {
			close(held)
			<-gate
			return nil
		})
	}()
	<-held

	qErr := make(chan error, 1)
	go func() {
		j := spinJob(0)
		j.Tenant = "q"
		_, err := p.Submit(context.Background(), j)
		qErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		queued := int64(0)
		for _, q := range p.Queues().Queues {
			if q.Tenant == "q" {
				queued = q.Queued
			}
		}
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("q's job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	j := spinJob(9)
	j.Tenant = "q"
	_, err := p.Submit(context.Background(), j)
	var qe *sched.QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over MaxQueued: %v, want QuotaError", err)
	}
	if qe.Tenant != "q" || qe.Limit != 1 || qe.RetryAfter < 1000 {
		t.Errorf("QuotaError = %+v, want tenant q, limit 1, retry hint >= 1s", qe)
	}
	close(gate)
	if e := <-execDone; e != nil {
		t.Fatalf("held Exec failed: %v", e)
	}
	if e := <-qErr; e != nil {
		t.Errorf("admitted q job failed: %v", e)
	}
	m := p.Metrics()
	if m.QuotaRejected != 3 {
		t.Errorf("quota_rejected = %d, want 3 (2 admission + 1 quota)", m.QuotaRejected)
	}
	if m.Shed != 0 {
		t.Errorf("shed = %d, want 0 — policy refusals are not overload", m.Shed)
	}
}

// newSchedServer is newTestServer with scheduler options.
func newSchedServer(t *testing.T, opts jobs.Options) (*jobs.Pool, *httptest.Server) {
	t.Helper()
	p := jobs.NewPoolWith(opts)
	ts := httptest.NewServer(jobs.NewServer(p).Handler())
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return p, ts
}

// TestHTTPTenantSurface covers the wire-level tenant contract: the
// X-RegVD-Tenant header routes the job, the response echoes the
// tenant, /v1/queues reports per-tenant state, and policy refusals are
// structured 403s.
func TestHTTPTenantSurface(t *testing.T) {
	_, ts := newSchedServer(t, jobs.Options{
		Workers: 2,
		Sched: sched.Config{
			Strict: true,
			Tenants: map[string]sched.TenantConfig{
				"gold": {Weight: 4, MaxPriority: 10},
			},
		},
	})

	// Header names the tenant; the response echoes it.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"workload":"VectorAdd","physregs":512}`))
	req.Header.Set(jobs.TenantHeader, "gold")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var res jobs.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Tenant != "gold" {
		t.Fatalf("status %d tenant %q, want 200/gold", resp.StatusCode, res.Tenant)
	}

	// Unknown tenant under strict admission: 403 kind "admission".
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"workload":"VectorAdd","tenant":"stranger"}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr jobs.APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || apiErr.Kind != "admission" {
		t.Fatalf("strict refusal: status %d kind %q, want 403/admission", resp.StatusCode, apiErr.Kind)
	}

	// Over-priority: also 403 admission.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"VectorAdd","tenant":"gold","priority":11}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || apiErr.Kind != "admission" {
		t.Fatalf("priority refusal: status %d kind %q, want 403/admission", resp.StatusCode, apiErr.Kind)
	}

	// Invalid tenant names are 400s, not 500s.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"workload":"VectorAdd","tenant":"bad tenant!"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid tenant name: status %d, want 400: %s", resp.StatusCode, body)
	}

	// /v1/queues shows the configured tenant with its traffic.
	var qs jobs.QueuesSnapshot
	qresp, err := http.Get(ts.URL + "/v1/queues")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(qresp.Body).Decode(&qs); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qs.Policy != "fair" || !qs.Strict {
		t.Errorf("queues policy=%q strict=%v, want fair/true", qs.Policy, qs.Strict)
	}
	found := false
	for _, q := range qs.Queues {
		if q.Tenant == "gold" {
			found = true
			if q.Weight != 4 || q.Submitted != 1 || q.Completed != 1 {
				t.Errorf("gold queue = %+v, want weight 4, 1 submitted, 1 completed", q)
			}
		}
	}
	if !found {
		t.Error("gold tenant missing from /v1/queues")
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
