package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"regvirt/internal/jobs"
	"regvirt/internal/obs"
)

// fastPolicy keeps test retries near-instant.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// scriptServer replies with each scripted response in turn, then
// repeats the last one.
type scripted struct {
	status int
	header map[string]string
	body   string
}

func scriptServer(t *testing.T, script []scripted, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(hits.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		for k, v := range script[i].header {
			w.Header().Set(k, v)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(script[i].status)
		w.Write([]byte(script[i].body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestSubmitRetriesOverloadThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	res := jobs.Result{ID: "abc", Cycles: 42}
	ok, _ := json.Marshal(res)
	ts := scriptServer(t, []scripted{
		{status: 429, header: map[string]string{"Retry-After": "1"},
			body: `{"error":"overloaded","kind":"overloaded","status":429,"retry_after_ms":1}`},
		{status: 500, body: `{"error":"worker panicked","kind":"panic","status":500}`},
		{status: 200, body: string(ok)},
	}, &hits)

	c := New(ts.URL, WithPolicy(fastPolicy(5)), WithSeed(1))
	got, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got.ID != "abc" || got.Cycles != 42 {
		t.Errorf("result = %+v", got)
	}
	if hits.Load() != 3 {
		t.Errorf("server hits = %d, want 3 (429, panic-500, 200)", hits.Load())
	}
	m := c.Metrics()
	if m.Attempts != 3 || m.Retries != 2 || m.Overloads != 1 {
		t.Errorf("metrics = %+v, want 3 attempts / 2 retries / 1 overload", m)
	}
}

func TestSubmitDoesNotRetryInvariantOr400(t *testing.T) {
	cases := []struct {
		name string
		resp scripted
	}{
		{"invariant-500", scripted{status: 500,
			body: `{"error":"sim: invariant","kind":"invariant","status":500,"invariant":{"msg":"allocation failed after pre-check","cycle":7,"warp":3}}`}},
		{"validation-400", scripted{status: 400, body: `{"error":"jobs: one of workload or kernel is required","status":400}`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			ts := scriptServer(t, []scripted{tc.resp}, &hits)
			c := New(ts.URL, WithPolicy(fastPolicy(5)), WithSeed(1))
			_, err := c.Submit(context.Background(), jobs.Job{})
			if err == nil {
				t.Fatal("want error")
			}
			apiErr, ok := err.(*jobs.APIError)
			if !ok {
				t.Fatalf("error type %T, want *jobs.APIError: %v", err, err)
			}
			if apiErr.Status != tc.resp.status {
				t.Errorf("status = %d, want %d", apiErr.Status, tc.resp.status)
			}
			if hits.Load() != 1 {
				t.Errorf("server hits = %d, want 1 (no retries)", hits.Load())
			}
			if tc.name == "invariant-500" && (apiErr.Invariant == nil || apiErr.Invariant.Cycle != 7) {
				t.Errorf("invariant context not decoded: %+v", apiErr.Invariant)
			}
		})
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{
		{status: 503, body: `{"error":"closing","kind":"closed","status":503}`},
	}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(3)), WithSeed(1))
	_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	if err == nil {
		t.Fatal("want give-up error")
	}
	if hits.Load() != 3 {
		t.Errorf("server hits = %d, want MaxAttempts=3", hits.Load())
	}
}

func TestRetryAfterHintIsFloor(t *testing.T) {
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{
		{status: 429, body: `{"error":"overloaded","kind":"overloaded","status":429,"retry_after_ms":60}`},
		{status: 200, body: `{"id":"x","cycles":1}`},
	}, &hits)
	c := New(ts.URL, WithPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Second}), WithSeed(1))
	start := time.Now()
	if _, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("retried after %v, want >= 60ms (Retry-After floor)", d)
	}
}

func TestRetryAfterHeaderFallback(t *testing.T) {
	// A 503 with only the Retry-After header (no retry_after_ms body
	// field) still produces a floor via the header.
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{
		{status: 503, header: map[string]string{"Retry-After": "1"}, body: `{"error":"closing","kind":"closed","status":503}`},
	}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(1)), WithSeed(1))
	_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	var apiErr *jobs.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if apiErr.RetryAfterMS != 1000 {
		t.Errorf("RetryAfterMS = %d, want 1000 from header", apiErr.RetryAfterMS)
	}
}

// TestParseRetryAfter covers both value forms RFC 9110 allows and the
// malformed cases that must fall back to plain backoff (zero) instead
// of parsing as "retry immediately".
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		name string
		v    string
		min  time.Duration
		max  time.Duration
	}{
		{"delta-seconds", "15", 15 * time.Second, 15 * time.Second},
		{"zero-seconds", "0", 0, 0},
		{"negative-seconds", "-3", 0, 0},
		{"http-date-future", time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat), 25 * time.Second, 30 * time.Second},
		{"http-date-past", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, 0},
		{"rfc850-date-future", time.Now().Add(30 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 25 * time.Second, 30 * time.Second},
		{"malformed", "soon", 0, 0},
		{"empty", "", 0, 0},
		{"float", "1.5", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := parseRetryAfter(tc.v)
			if d < tc.min || d > tc.max {
				t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.v, d, tc.min, tc.max)
			}
		})
	}
}

// TestRetryAfterHTTPDateHeader: a Retry-After carrying an HTTP-date
// (the other form RFC 9110 allows) reaches RetryAfterMS just like
// delta-seconds, and a malformed value leaves it zero.
func TestRetryAfterHTTPDateHeader(t *testing.T) {
	date := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{
		{status: 503, header: map[string]string{"Retry-After": date}, body: `{"error":"closing","kind":"closed","status":503}`},
	}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(1)), WithSeed(1))
	_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	var apiErr *jobs.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	// The date is relative to the wall clock, so allow generous slack
	// below; above is bounded by construction.
	if apiErr.RetryAfterMS < 60_000 || apiErr.RetryAfterMS > 90_000 {
		t.Errorf("RetryAfterMS = %d, want ~90000 from HTTP-date header", apiErr.RetryAfterMS)
	}

	hits.Store(0)
	ts2 := scriptServer(t, []scripted{
		{status: 503, header: map[string]string{"Retry-After": "eventually"}, body: `{"error":"closing","kind":"closed","status":503}`},
	}, &hits)
	c2 := New(ts2.URL, WithPolicy(fastPolicy(1)), WithSeed(1))
	_, err = c2.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if apiErr.RetryAfterMS != 0 {
		t.Errorf("malformed Retry-After parsed to %d ms, want 0 (plain backoff)", apiErr.RetryAfterMS)
	}
}

func TestContextCancelStopsRetryLoop(t *testing.T) {
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{
		{status: 503, body: `{"error":"closing","kind":"closed","status":503}`},
	}, &hits)
	c := New(ts.URL, WithPolicy(RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}), WithSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, jobs.Job{Workload: "VectorAdd"})
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("retry loop ignored context cancellation")
	}
}

func TestNonJSONErrorBodyStillStructured(t *testing.T) {
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{{status: 502, body: "bad gateway\n"}}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(2)), WithSeed(1))
	_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	var apiErr *jobs.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if apiErr.Status != 502 || apiErr.Message == "" {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if hits.Load() != 2 {
		t.Errorf("502 should be retried: hits = %d", hits.Load())
	}
}

func TestAsyncSubmitStatusWait(t *testing.T) {
	var hits atomic.Int64
	res := &jobs.Result{ID: "job1", Cycles: 99}
	running, _ := json.Marshal(jobs.JobStatus{ID: "job1", State: "running"})
	done, _ := json.Marshal(jobs.JobStatus{ID: "job1", State: "done", Result: res})
	accepted, _ := json.Marshal(jobs.JobStatus{ID: "job1", State: "running"})
	ts := scriptServer(t, []scripted{
		{status: 202, body: string(accepted)},
		{status: 200, body: string(running)},
		{status: 200, body: string(done)},
	}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(2)), WithSeed(1))
	id, err := c.SubmitAsync(context.Background(), jobs.Job{Workload: "VectorAdd"})
	if err != nil || id != "job1" {
		t.Fatalf("SubmitAsync = %q, %v", id, err)
	}
	got, err := c.Wait(context.Background(), id, time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got == nil || got.Cycles != 99 {
		t.Errorf("Wait result = %+v", got)
	}
}

func TestWaitSurfacesFailedJob(t *testing.T) {
	var hits atomic.Int64
	failed, _ := json.Marshal(jobs.JobStatus{ID: "j", State: "failed", Error: "sim blew up"})
	ts := scriptServer(t, []scripted{{status: 200, body: string(failed)}}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(1)))
	_, err := c.Wait(context.Background(), "j", time.Millisecond)
	if err == nil {
		t.Fatal("want failure error")
	}
}

func TestPolicyFromEnv(t *testing.T) {
	t.Setenv(EnvMaxAttempts, "9")
	t.Setenv(EnvBaseDelayMS, "7")
	t.Setenv(EnvMaxDelayMS, "123")
	p := PolicyFromEnv()
	if p.MaxAttempts != 9 || p.BaseDelay != 7*time.Millisecond || p.MaxDelay != 123*time.Millisecond {
		t.Errorf("policy = %+v", p)
	}
	t.Setenv(EnvMaxAttempts, "garbage")
	t.Setenv(EnvBaseDelayMS, "-4")
	t.Setenv(EnvMaxDelayMS, "")
	p = PolicyFromEnv()
	def := DefaultPolicy()
	if p != def {
		t.Errorf("malformed env: policy = %+v, want defaults %+v", p, def)
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := New("http://x", WithSeed(7), WithPolicy(DefaultPolicy()))
	b := New("http://x", WithSeed(7), WithPolicy(DefaultPolicy()))
	for i := 1; i <= 5; i++ {
		if da, db := a.backoff(i, 0), b.backoff(i, 0); da != db {
			t.Fatalf("attempt %d: %v != %v", i, da, db)
		}
	}
	// Backoff caps never exceed MaxDelay even at deep attempts.
	c := New("http://x", WithSeed(7), WithPolicy(RetryPolicy{MaxAttempts: 64, BaseDelay: time.Second, MaxDelay: 2 * time.Second}))
	for i := 1; i <= 64; i++ {
		if d := c.backoff(i, 0); d > 2*time.Second {
			t.Fatalf("attempt %d: backoff %v exceeds MaxDelay", i, d)
		}
	}
}

func TestHealthz(t *testing.T) {
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{{status: 200, body: `{"status":"degraded","reason":"x"}`}}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(1)))
	got, err := c.Healthz(context.Background())
	if err != nil || got != "degraded" {
		t.Errorf("Healthz = %q, %v", got, err)
	}
}

func TestTenantHeaderOnEveryRequest(t *testing.T) {
	var got atomic.Value
	res, _ := json.Marshal(jobs.Result{ID: "abc"})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(jobs.TenantHeader))
		w.Header().Set("Content-Type", "application/json")
		w.Write(res)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithTenant("gold"), WithPolicy(fastPolicy(1)))
	if _, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"}); err != nil {
		t.Fatal(err)
	}
	if tn, _ := got.Load().(string); tn != "gold" {
		t.Errorf("submit sent tenant %q, want gold", tn)
	}
	if _, err := c.Status(context.Background(), "abc"); err != nil {
		t.Fatal(err)
	}
	if tn, _ := got.Load().(string); tn != "gold" {
		t.Errorf("status sent tenant %q, want gold", tn)
	}
}

func TestTenantFromEnv(t *testing.T) {
	t.Setenv(EnvTenant, "env-team")
	var got atomic.Value
	res, _ := json.Marshal(jobs.Result{ID: "abc"})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(jobs.TenantHeader))
		w.Header().Set("Content-Type", "application/json")
		w.Write(res)
	}))
	t.Cleanup(ts.Close)

	// Env supplies the default; an explicit option overrides it.
	c := New(ts.URL, WithPolicy(fastPolicy(1)))
	if _, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"}); err != nil {
		t.Fatal(err)
	}
	if tn, _ := got.Load().(string); tn != "env-team" {
		t.Errorf("env default: sent tenant %q, want env-team", tn)
	}
	c = New(ts.URL, WithTenant("explicit"), WithPolicy(fastPolicy(1)))
	if _, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"}); err != nil {
		t.Fatal(err)
	}
	if tn, _ := got.Load().(string); tn != "explicit" {
		t.Errorf("option override: sent tenant %q, want explicit", tn)
	}
}

func TestPolicyRefusalFailsFast(t *testing.T) {
	// 403s are policy verdicts (quota or admission), not transient
	// load: the client must not retry them, however many attempts its
	// policy allows.
	cases := []struct {
		name string
		body string
	}{
		{"quota", `{"error":"sched: tenant \"q\" queue full","kind":"quota","status":403,"retry_after_ms":2000}`},
		{"admission", `{"error":"sched: unknown tenant","kind":"admission","status":403}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			ts := scriptServer(t, []scripted{{status: 403, body: tc.body}}, &hits)
			c := New(ts.URL, WithTenant("q"), WithPolicy(fastPolicy(5)), WithSeed(1))
			_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
			apiErr, ok := err.(*jobs.APIError)
			if !ok {
				t.Fatalf("error type %T, want *jobs.APIError: %v", err, err)
			}
			if apiErr.Status != http.StatusForbidden || apiErr.Kind != tc.name {
				t.Errorf("got status %d kind %q, want 403 %q", apiErr.Status, apiErr.Kind, tc.name)
			}
			if hits.Load() != 1 {
				t.Errorf("server hits = %d, want 1 — 403 is not retryable", hits.Load())
			}
			if m := c.Metrics(); m.Rejections != 1 || m.Retries != 0 {
				t.Errorf("metrics = %+v, want 1 rejection, 0 retries", m)
			}
		})
	}
}

// TestCancelledContextNeverBurnsAnotherAttempt pins the backoff/cancel
// race: when the backoff timer and the context cancellation are ready
// at the same instant, select may pick the timer — the retry loop must
// still notice the dead context before spending another round trip.
// With a zero backoff the timer is always already fired, so without
// the explicit ctx.Err() check this test sees extra server hits.
func TestCancelledContextNeverBurnsAnotherAttempt(t *testing.T) {
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var hits atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			cancel() // the caller gives up while the 429 is in flight
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(429)
			w.Write([]byte(`{"error":"overloaded","kind":"overloaded","status":429}`))
		}))
		c := New(ts.URL, WithPolicy(RetryPolicy{MaxAttempts: 5}))
		_, err := c.Submit(ctx, jobs.Job{Workload: "VectorAdd"})
		ts.Close()
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
		if n := hits.Load(); n != 1 {
			t.Fatalf("iteration %d: %d attempts reached the server after cancellation, want 1", i, n)
		}
	}
}

// TestSubmitAsyncStatusReturnsFullRecord: the 202 body (used by the
// cluster router) carries the whole status, including an immediate
// "done" result on a cache hit.
func TestSubmitAsyncStatusReturnsFullRecord(t *testing.T) {
	res := jobs.Result{ID: "abc", Cycles: 7}
	body, _ := json.Marshal(jobs.JobStatus{ID: "abc", State: "done", Result: &res})
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{{status: 202, body: string(body)}}, &hits)
	c := New(ts.URL, WithPolicy(fastPolicy(2)))
	st, err := c.SubmitAsyncStatus(context.Background(), jobs.Job{Workload: "VectorAdd"})
	if err != nil {
		t.Fatalf("SubmitAsyncStatus: %v", err)
	}
	if st.ID != "abc" || st.State != "done" || st.Result == nil || st.Result.Cycles != 7 {
		t.Errorf("status = %+v, want full done record", st)
	}
}

// TestRetriesExhaustedStructured: exhausting the retry budget returns
// a *RetriesExhaustedError carrying the attempt count, the final HTTP
// status and the server's last Retry-After hint — and still unwraps to
// the last attempt's *jobs.APIError for callers matching on that.
func TestRetriesExhaustedStructured(t *testing.T) {
	var hits atomic.Int64
	ts := scriptServer(t, []scripted{
		{status: 429, body: `{"error":"overloaded","kind":"overloaded","status":429,"retry_after_ms":40}`},
	}, &hits)
	c := New(ts.URL, WithPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}), WithSeed(1))
	_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	var ex *RetriesExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error type %T, want *RetriesExhaustedError: %v", err, err)
	}
	if ex.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", ex.Attempts)
	}
	if ex.LastStatus != 429 {
		t.Errorf("LastStatus = %d, want 429", ex.LastStatus)
	}
	if ex.RetryAfter != 40*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 40ms", ex.RetryAfter)
	}
	var apiErr *jobs.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("exhaustion does not unwrap to the last APIError: %v", err)
	}
}

// TestRetriesExhaustedNetworkError: a connection that never yields a
// response reports LastStatus 0 and no hint, but still counts attempts.
func TestRetriesExhaustedNetworkError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close() // refused from here on
	c := New(ts.URL, WithPolicy(fastPolicy(2)), WithSeed(1))
	_, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	var ex *RetriesExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if ex.Attempts != 2 || ex.LastStatus != 0 || ex.RetryAfter != 0 {
		t.Errorf("got %+v, want 2 attempts, no status, no hint", ex)
	}
}

// TestClientPropagatesTraceHeader: a context carrying a span context
// stamps X-RegVD-Trace on the outgoing request.
func TestClientPropagatesTraceHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(obs.TraceHeader))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"x","cycles":1}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithPolicy(fastPolicy(1)))
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanContext{TraceID: "deadbeef", SpanID: "beef"})
	if _, err := c.Submit(ctx, jobs.Job{Workload: "VectorAdd"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got.Load() != "deadbeef/beef" {
		t.Errorf("trace header = %q, want deadbeef/beef", got.Load())
	}
}
