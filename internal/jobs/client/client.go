// Package client is the retrying HTTP client for the regvd job
// service. It speaks the internal/jobs JSON surface and turns the
// service's failure contract into automatic recovery: transient
// failures (shed 429s, shutdown 503s, contained-panic 500s, network
// errors) are retried with exponential backoff and full jitter,
// honoring the server's Retry-After hint as a floor. Retrying a
// submission is always safe because jobs are content-addressed and
// idempotent — the same spec maps to the same ID and the same cached
// result no matter how many times it arrives.
//
// Every request carries the client's tenant (WithTenant, or the
// REGVD_TENANT environment) in the X-RegVD-Tenant header, so the
// service schedules it under the right fair-share queue. Per-tenant
// policy refusals — 403 kind "quota" (the tenant's queue is at its
// MaxQueued cap) and "admission" (strict mode or a priority beyond the
// tenant's cap) — are never retried: backing off cannot change a
// policy decision, so the client fails fast and lets the caller decide.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regvirt/internal/jobs"
	"regvirt/internal/obs"
)

// RetryPolicy bounds the retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total request attempts (1 = no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: before attempt n+1 the
	// client sleeps a uniformly random duration in
	// [0, min(MaxDelay, BaseDelay<<n)] (full jitter), never less than
	// the server's Retry-After hint.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
}

// DefaultPolicy is used when no policy (and no environment) says
// otherwise.
func DefaultPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// Environment variables PolicyFromEnv reads (documented in the README
// ops section). Unset or malformed values fall back to the default.
const (
	EnvMaxAttempts = "REGVD_RETRY_ATTEMPTS"
	EnvBaseDelayMS = "REGVD_RETRY_BASE_MS"
	EnvMaxDelayMS  = "REGVD_RETRY_MAX_MS"
)

// EnvTenant names the tenant every request is attributed to when no
// WithTenant option is given.
const EnvTenant = "REGVD_TENANT"

// PolicyFromEnv builds a policy from the REGVD_RETRY_* environment,
// falling back to DefaultPolicy per variable.
func PolicyFromEnv() RetryPolicy {
	p := DefaultPolicy()
	if v, err := strconv.Atoi(os.Getenv(EnvMaxAttempts)); err == nil && v > 0 {
		p.MaxAttempts = v
	}
	if v, err := strconv.Atoi(os.Getenv(EnvBaseDelayMS)); err == nil && v > 0 {
		p.BaseDelay = time.Duration(v) * time.Millisecond
	}
	if v, err := strconv.Atoi(os.Getenv(EnvMaxDelayMS)); err == nil && v > 0 {
		p.MaxDelay = time.Duration(v) * time.Millisecond
	}
	return p
}

// Metrics is a point-in-time snapshot of client activity.
type Metrics struct {
	// Attempts counts every HTTP request sent; Retries counts those
	// past an operation's first attempt.
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	// Overloads counts 429 responses (shed by admission control).
	Overloads uint64 `json:"overloads"`
	// Rejections counts 403 responses (tenant quota or admission policy
	// — failures retrying cannot fix).
	Rejections uint64 `json:"rejections"`
}

// Client talks to one regvd base URL.
type Client struct {
	base   string
	tenant string
	hc     *http.Client
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	attempts   atomic.Uint64
	retries    atomic.Uint64
	overloads  atomic.Uint64
	rejections atomic.Uint64
}

// Option configures a Client.
type Option func(*Client)

// WithPolicy overrides the retry policy.
func WithPolicy(p RetryPolicy) Option { return func(c *Client) { c.policy = p } }

// WithHTTPClient substitutes the transport (timeouts, proxies, tests).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithSeed makes the jitter deterministic — test use.
func WithSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithTenant attributes every request to the named fair-share tenant
// (overriding the REGVD_TENANT environment). Empty = the service's
// shared "default" queue.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// New returns a client for base ("http://host:port"), defaulting to
// DefaultPolicy, the REGVD_TENANT tenant, and time-seeded jitter.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:   strings.TrimRight(base, "/"),
		tenant: os.Getenv(EnvTenant),
		hc:     &http.Client{},
		policy: DefaultPolicy(),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	if c.policy.MaxAttempts < 1 {
		c.policy.MaxAttempts = 1
	}
	return c
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// Metrics snapshots the client counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Attempts:   c.attempts.Load(),
		Retries:    c.retries.Load(),
		Overloads:  c.overloads.Load(),
		Rejections: c.rejections.Load(),
	}
}

// Submit runs a job synchronously on the service and returns its
// result, retrying transient failures per the policy.
func (c *Client) Submit(ctx context.Context, job jobs.Job) (*jobs.Result, error) {
	job.Async = false
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("client: encode job: %w", err)
	}
	var res jobs.Result
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SubmitAsync registers a job and returns its content-addressed ID.
func (c *Client) SubmitAsync(ctx context.Context, job jobs.Job) (string, error) {
	st, err := c.SubmitAsyncStatus(ctx, job)
	if err != nil {
		return "", err
	}
	return st.ID, nil
}

// SubmitAsyncStatus registers a job and returns the service's full 202
// status record — already "done" with a result when the submission was
// a cache hit. The cluster router forwards this so a hit on a shard
// costs one round trip, not a submit plus a status poll.
func (c *Client) SubmitAsyncStatus(ctx context.Context, job jobs.Job) (jobs.JobStatus, error) {
	job.Async = true
	body, err := json.Marshal(job)
	if err != nil {
		return jobs.JobStatus{}, fmt.Errorf("client: encode job: %w", err)
	}
	var st jobs.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return jobs.JobStatus{}, err
	}
	if st.ID == "" {
		return jobs.JobStatus{}, fmt.Errorf("client: async submission returned no job ID")
	}
	return st, nil
}

// Status fetches a job's lifecycle record by ID.
func (c *Client) Status(ctx context.Context, id string) (jobs.JobStatus, error) {
	var st jobs.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it leaves "running" (or ctx ends), returning
// the result of a "done" job and an error for a "failed" one.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*jobs.Result, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			return st.Result, nil
		case "failed":
			return nil, fmt.Errorf("client: job %s failed: %s", id, st.Error)
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Healthz returns the service liveness status string ("ok" or
// "degraded").
func (c *Client) Healthz(ctx context.Context) (string, error) {
	var v struct {
		Status string `json:"status"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &v); err != nil {
		return "", err
	}
	return v.Status, nil
}

// RetriesExhaustedError reports a retry loop that used every attempt
// without a success: how many round trips were spent, the final HTTP
// status, and the server's last Retry-After hint (0 when it gave
// none). Unwrap reaches the last attempt's error, so errors.As still
// finds the underlying *jobs.APIError — callers that matched on it
// before structured exhaustion existed keep working.
type RetriesExhaustedError struct {
	// Attempts is the number of HTTP round trips performed.
	Attempts int
	// LastStatus is the final attempt's HTTP status (0 for a network
	// error that never produced a response).
	LastStatus int
	// RetryAfter is the server's hint from the final attempt, if any.
	RetryAfter time.Duration
	// Last is the final attempt's error.
	Last error
}

func (e *RetriesExhaustedError) Error() string {
	msg := fmt.Sprintf("client: giving up after %d attempts", e.Attempts)
	if e.LastStatus != 0 {
		msg += fmt.Sprintf(" (last: HTTP %d)", e.LastStatus)
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(" (server asked for %s)", e.RetryAfter)
	}
	return msg + ": " + e.Last.Error()
}

func (e *RetriesExhaustedError) Unwrap() error { return e.Last }

// do is the retry loop: attempts the request up to MaxAttempts times,
// sleeping exponential-backoff-with-full-jitter between attempts and
// honoring Retry-After hints as a floor. Non-retriable failures (4xx
// validation errors, invariant 500s) return immediately; exhaustion
// returns a *RetriesExhaustedError wrapping the last attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			select {
			case <-time.After(c.backoff(attempt, hint)):
			case <-ctx.Done():
				return fmt.Errorf("client: %w (last attempt: %v)", ctx.Err(), lastErr)
			}
			// When the backoff timer and the cancellation are both ready,
			// select picks arbitrarily — a cancelled caller must not be
			// charged for one more round trip (and its backoff) before
			// hearing the answer it already gave.
			if ctx.Err() != nil {
				return fmt.Errorf("client: %w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		c.attempts.Add(1)
		retriable, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: %w (last attempt: %v)", ctx.Err(), err)
		}
		if !retriable {
			return err
		}
		lastErr = err
		hint = retryAfterOf(err)
	}
	ex := &RetriesExhaustedError{Attempts: c.policy.MaxAttempts, RetryAfter: hint, Last: lastErr}
	var apiErr *jobs.APIError
	if errors.As(lastErr, &apiErr) {
		ex.LastStatus = apiErr.Status
	}
	return ex
}

// attempt performs one HTTP round trip. The bool reports whether a
// failure is worth retrying.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(jobs.TenantHeader, c.tenant)
	}
	// Propagate the caller's trace, if ctx carries one, so a client
	// embedded in an instrumented process joins its request tree.
	obs.InjectHTTP(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, fmt.Errorf("client: %s %s: %w", method, path, err) // network: retriable
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return true, fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode < 400 {
		if out == nil {
			return false, nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
		return false, nil
	}
	apiErr := &jobs.APIError{Status: resp.StatusCode}
	if err := json.Unmarshal(data, apiErr); err != nil || apiErr.Message == "" {
		apiErr.Message = fmt.Sprintf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if apiErr.Status == 0 {
		apiErr.Status = resp.StatusCode
	}
	if apiErr.RetryAfterMS == 0 {
		if d := parseRetryAfter(resp.Header.Get("Retry-After")); d > 0 {
			apiErr.RetryAfterMS = d.Milliseconds()
		}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		c.overloads.Add(1)
	}
	if resp.StatusCode == http.StatusForbidden {
		c.rejections.Add(1)
	}
	return retriable(resp.StatusCode, apiErr.Kind), apiErr
}

// retriable classifies a service failure. 429 (shed) and 503 (closing
// or proxy) are the service's own "come back later"; 502/504 are
// gateway transients; a 500 of kind "panic" is a contained crash whose
// flight was evicted, so a retry re-simulates cleanly. Everything else
// — validation 400s, tenant-policy 403s (quota/admission: retrying
// cannot change a policy decision), unknown-ID 404s, invariant 500s
// (deterministic: the same kernel trips the same violation) — fails
// fast.
func retriable(status int, kind string) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	case http.StatusInternalServerError:
		return kind == "panic"
	}
	return false
}

// parseRetryAfter reads a Retry-After header value in either form RFC
// 9110 allows: delta-seconds ("15") or an HTTP-date ("Wed, 21 Oct 2015
// 07:28:00 GMT", including the obsolete RFC 850 and asctime layouts
// http.ParseTime accepts). A date in the past clamps to zero, and a
// malformed value returns zero — plain jittered backoff, never a
// parsed-as-0 "retry immediately".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// retryAfterOf extracts a server wait hint from an attempt error.
func retryAfterOf(err error) time.Duration {
	if apiErr, ok := err.(*jobs.APIError); ok && apiErr.RetryAfterMS > 0 {
		return time.Duration(apiErr.RetryAfterMS) * time.Millisecond
	}
	return 0
}

// backoff computes the sleep before the given (1-based) retry attempt:
// full jitter over an exponentially growing cap, floored by the
// server's hint (capped too, so a hostile hint cannot wedge a client).
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	cap := c.policy.BaseDelay << uint(attempt-1)
	if cap > c.policy.MaxDelay || cap <= 0 {
		cap = c.policy.MaxDelay
	}
	var d time.Duration
	if cap > 0 {
		c.mu.Lock()
		d = time.Duration(c.rng.Int63n(int64(cap) + 1))
		c.mu.Unlock()
	}
	if hint > c.policy.MaxDelay {
		hint = c.policy.MaxDelay
	}
	if d < hint {
		d = hint
	}
	return d
}
