package jobs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regvirt/internal/jobs"
	"regvirt/internal/obs"
)

// obsJob is a tiny deterministic job the observability tests reuse.
func obsJob(tenant string) jobs.Job {
	return jobs.Job{Workload: "VectorAdd", PhysRegs: 512, Tenant: tenant}
}

// TestSubmitTrace: one synchronous submission through the HTTP server
// yields a single stitched trace — admission, queue wait and the
// simulation all under the http.submit root — retrievable from
// GET /v1/trace/{id} and exportable as a loadable Chrome trace.
func TestSubmitTrace(t *testing.T) {
	p := jobs.NewPoolWith(jobs.Options{Workers: 2, Tracer: obs.NewTracer("jobsd")})
	defer p.Close()
	srv := httptest.NewServer(jobs.NewServer(p).Handler())
	defer srv.Close()

	body, _ := json.Marshal(obsJob("team-obs"))
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	sc, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("submit response carries no %s header", obs.TraceHeader)
	}

	tresp, err := http.Get(srv.URL + "/v1/trace/" + sc.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: HTTP %d", tresp.StatusCode)
	}
	var tr jobs.TraceResponse
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}

	byName := map[string]obs.SpanRecord{}
	for _, sp := range tr.Spans {
		if sp.TraceID != sc.TraceID {
			t.Errorf("span %s in trace %s, want %s", sp.Name, sp.TraceID, sc.TraceID)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{"http.submit", "jobs.submit", "jobs.admit", "queue.wait", "sim.run"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing span %q (got %v)", want, spanNames(tr.Spans))
		}
	}
	if got := byName["jobs.submit"].Tenant; got != "team-obs" {
		t.Errorf("jobs.submit tenant = %q", got)
	}
	if byName["jobs.submit"].JobID == "" {
		t.Error("jobs.submit span has no job ID")
	}
	if got := byName["jobs.submit"].Attrs["outcome"]; got != "miss" {
		t.Errorf("first submit outcome = %q, want miss", got)
	}
	if byName["sim.run"].Parent == "" || byName["queue.wait"].Parent == "" {
		t.Error("worker spans must be parented into the trace")
	}

	// The Chrome export of the same trace is valid trace_event JSON.
	cresp, err := http.Get(srv.URL + "/v1/trace/" + sc.TraceID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var cf struct {
		TraceEvents []obs.ChromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&cf); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(cf.TraceEvents) < len(tr.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(cf.TraceEvents), len(tr.Spans))
	}

	// A second identical submission joins the cache and says so.
	resp2, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	sc2, ok := obs.ParseTraceHeader(resp2.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatal("second submit carries no trace header")
	}
	var hit bool
	for _, sp := range p.Tracer().Trace(sc2.TraceID) {
		if sp.Name == "jobs.submit" && sp.Attrs["outcome"] == "hit" {
			hit = true
		}
	}
	if !hit {
		t.Error("second submit's jobs.submit span does not record a cache hit")
	}
}

func spanNames(spans []obs.SpanRecord) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

// TestTraceHeaderPropagation: a caller-minted trace context is joined,
// not replaced — the recorded spans carry the caller's trace ID.
func TestTraceHeaderPropagation(t *testing.T) {
	p := jobs.NewPoolWith(jobs.Options{Workers: 1, Tracer: obs.NewTracer("jobsd")})
	defer p.Close()
	srv := httptest.NewServer(jobs.NewServer(p).Handler())
	defer srv.Close()

	body, _ := json.Marshal(obsJob(""))
	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(obs.TraceHeader, "00000000000000000000000000deadbe/00000000000000ef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sc, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok || sc.TraceID != "00000000000000000000000000deadbe" {
		t.Fatalf("response trace = %+v, want the caller's trace ID", sc)
	}
	spans := p.Tracer().Trace("00000000000000000000000000deadbe")
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the caller's trace ID")
	}
	root := spans[0]
	if root.Name != "http.submit" || root.Parent != "00000000000000ef" {
		t.Fatalf("root span %s parented to %q, want the caller's span", root.Name, root.Parent)
	}
}

// TestTraceEndpointWithoutTracer: tracing off means 404, not a crash.
func TestTraceEndpointWithoutTracer(t *testing.T) {
	p := jobs.NewPool(1)
	defer p.Close()
	srv := httptest.NewServer(jobs.NewServer(p).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/trace/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", resp.StatusCode)
	}
}

// TestPromExposition: /metrics?format=prom passes the vendored
// promtool-style lint and carries the core families, including the
// span-duration histograms once traffic has flowed.
func TestPromExposition(t *testing.T) {
	p := jobs.NewPoolWith(jobs.Options{Workers: 2, Tracer: obs.NewTracer("jobsd")})
	defer p.Close()
	if _, err := p.Submit(context.Background(), obsJob("team-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), obsJob("team-b")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(jobs.NewServer(p).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := obs.LintProm(data); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, data)
	}
	for _, want := range []string{
		"regvd_jobs_submitted_total 2",
		`regvd_tenant_submitted_total{tenant="team-a"} 1`,
		`regvd_span_duration_seconds_bucket{span="sim.run",le="+Inf"}`,
		"regvd_tenant_overflow_folds_total 0",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTenantOverflowFold: past 128 tenants the counter table folds new
// tenants into the explicit "~overflow" row instead of growing, the
// fold is counted, and no attribution is lost — per-tenant submitted
// counts still sum to the pool total.
func TestTenantOverflowFold(t *testing.T) {
	p := jobs.NewPool(2)
	defer p.Close()

	const tenants = 140
	for i := 0; i < tenants; i++ {
		if _, err := p.Submit(context.Background(), obsJob(fmt.Sprintf("t%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	m := p.Metrics()
	if m.TenantsTracked > 129 { // 128 real rows + "~overflow"
		t.Errorf("tenant table grew to %d rows", m.TenantsTracked)
	}
	if m.TenantsOverflowed == 0 {
		t.Error("tenants_overflowed = 0 after 140 tenants")
	}
	ov, ok := m.Tenants["~overflow"]
	if !ok {
		t.Fatal("no ~overflow row in the tenant breakdown")
	}
	if ov.Submitted == 0 {
		t.Error("~overflow row absorbed no submissions")
	}
	var sum uint64
	for _, ts := range m.Tenants {
		sum += ts.Submitted
	}
	if sum != m.Submitted {
		t.Errorf("per-tenant submitted sums to %d, pool total %d", sum, m.Submitted)
	}

	// The overflow row is a legal Prometheus label value too.
	var w obs.PromWriter
	jobs.WriteProm(&w, jobs.PromShard{M: m})
	if err := obs.LintProm(w.Bytes()); err != nil {
		t.Fatalf("overflowed exposition fails lint: %v", err)
	}
	if !strings.Contains(string(w.Bytes()), `tenant="~overflow"`) {
		t.Error("exposition has no ~overflow series")
	}
}
