package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"regvirt/internal/arch"
	"regvirt/internal/compiler"
	"regvirt/internal/isa"
	"regvirt/internal/jobs/sched"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
	"regvirt/internal/workloads"
)

// Job is one simulation request: what to run (a built-in workload or
// inline kernel assembly) and the hardware configuration to run it
// under. The zero value of every field means "the default", so a JSON
// body of {"workload":"MatrixMul"} is a complete job. Five fields
// never influence the result and are excluded from the cache key:
// TimeoutMS (how long we are willing to wait), Async (how the caller
// wants to be answered), GPUParallel (how many goroutines the
// two-phase device engine spreads the SM compute phases over — results
// are byte-identical by construction at any setting), and the
// scheduling metadata Tenant and Priority (which queue serves the job
// and in what order — identical jobs from different tenants share one
// cached result).
type Job struct {
	// Workload is a built-in workload name (workloads.Names). Exactly
	// one of Workload and Kernel must be set.
	Workload string `json:"workload,omitempty"`
	// Kernel is inline kernel assembly (docs/ISA.md grammar).
	Kernel string `json:"kernel,omitempty"`

	// Launch geometry for inline kernels (ignored with Workload, whose
	// Table 1 geometry is canonical). Defaults: 16 CTAs x 128 threads,
	// 4 concurrent CTAs per SM.
	GridCTAs      int `json:"grid_ctas,omitempty"`
	ThreadsPerCTA int `json:"threads_per_cta,omitempty"`
	ConcCTAs      int `json:"conc_ctas,omitempty"`

	// Mode is the register-management backend: "baseline", "hwonly",
	// "compiler" (default), "regcache" or "smemspill"
	// (rename.ModeNames is canonical).
	Mode string `json:"mode,omitempty"`
	// PhysRegs is the physical register count (0 = 1024 baseline; 512
	// is GPU-shrink). Must be a multiple of 16.
	PhysRegs int `json:"physregs,omitempty"`
	// PowerGating enables subarray gating; WakeupLatency is its cycle
	// penalty (0 = 1 cycle, the paper's default).
	PowerGating   bool `json:"gating,omitempty"`
	WakeupLatency int  `json:"wakeup,omitempty"`
	// FlagCacheEntries sizes the release-flag cache: 0 = arch default
	// (10 entries), -1 = disabled (Dynamic-0).
	FlagCacheEntries int `json:"flagcache,omitempty"`
	// TableBytes is the renaming-table budget: 0 = arch default (1 KB),
	// -1 = unconstrained.
	TableBytes int `json:"table_bytes,omitempty"`
	// RFCacheEntries sizes the register cache of mode "regcache" (0 =
	// arch default, 64 lines). Only valid with that mode.
	RFCacheEntries int `json:"rfcache,omitempty"`
	// RFCacheWriteThrough selects write-through for mode "regcache"
	// (default write-back). Only valid with that mode.
	RFCacheWriteThrough bool `json:"rfcache_wt,omitempty"`
	// SpillRegs is how many high-numbered architected registers mode
	// "smemspill" demotes to shared memory (0 = auto-fit to physregs).
	// Only valid with that mode.
	SpillRegs int `json:"spill_regs,omitempty"`
	// WholeGPU simulates all 16 SMs (sim.RunGPU) instead of one SM's
	// share of the grid.
	WholeGPU bool `json:"gpu,omitempty"`
	// GPUParallel is the compute-phase worker count of the whole-device
	// engine (only meaningful with "gpu": true): 0 or 1 steps the SMs
	// sequentially, N > 1 uses N goroutines. The two-phase engine
	// commits shared state in fixed SM order, so the result is
	// byte-identical at every setting; like TimeoutMS and Async this
	// field is therefore not part of the cache key, and jobs differing
	// only in gpu_par deduplicate onto one result.
	GPUParallel int `json:"gpu_par,omitempty"`

	// Profile enables sim-phase profiling: the result gains a "profile"
	// object with per-SM cycle attribution and a warp-state timeline.
	// Profiling never changes the simulated outcome (the sim layer
	// proves byte-identity), but it DOES change the result payload, so
	// unlike gpu_par it stays in the cache key: a profiled and an
	// unprofiled submission of the same job are distinct results.
	Profile bool `json:"profile,omitempty"`

	// TimeoutMS bounds the job's wall-clock time including queueing
	// (0 = no deadline). Not part of the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async asks the service to answer with a job ID immediately
	// instead of blocking for the result. Not part of the cache key.
	Async bool `json:"async,omitempty"`

	// Tenant names the fair-share queue the job is scheduled under
	// (empty = "default"; the HTTP layer also accepts the
	// X-RegVD-Tenant header). Like gpu_par it never influences the
	// result, so it is excluded from the cache key — identical jobs
	// from different tenants dedup onto one simulation.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the job within its tenant's queue (higher first;
	// bounded to [-100, 100], and by the tenant's configured cap). A
	// higher-priority arrival may checkpoint-preempt a lower-priority
	// running job. Not part of the cache key.
	Priority int `json:"priority,omitempty"`
}

// normalized returns the job with every default made explicit and the
// non-content fields (TimeoutMS, Async) cleared — the canonical form
// the cache key is computed over, so "physregs":1024 and an absent
// physregs address the same result.
func (j Job) normalized() Job {
	if j.Mode == "" {
		j.Mode = "compiler"
	} else if m, err := rename.ParseMode(j.Mode); err == nil {
		// Aliases ("hw-only") collapse onto the canonical spelling so
		// they share a cache key with it.
		j.Mode = m.CanonicalName()
	}
	if j.PhysRegs == 0 {
		j.PhysRegs = arch.NumPhysRegs
	}
	if j.WakeupLatency == 0 {
		j.WakeupLatency = 1
	}
	if j.FlagCacheEntries == 0 {
		j.FlagCacheEntries = arch.FlagCacheEntries
	}
	if j.TableBytes == 0 {
		j.TableBytes = arch.RenameTableBudgetBytes
	}
	// Backend-specific knobs: defaults become explicit for the mode that
	// reads them and are zeroed for every other mode, so an irrelevant
	// knob can never fragment the result cache.
	if j.Mode == "regcache" {
		if j.RFCacheEntries == 0 {
			j.RFCacheEntries = arch.RFCacheEntries
		}
	} else {
		j.RFCacheEntries = 0
		j.RFCacheWriteThrough = false
	}
	if j.Mode != "smemspill" {
		j.SpillRegs = 0
	}
	if j.Workload != "" {
		// Geometry comes from the workload's Table 1 row.
		j.GridCTAs, j.ThreadsPerCTA, j.ConcCTAs = 0, 0, 0
	} else {
		if j.GridCTAs == 0 {
			j.GridCTAs = 16
		}
		if j.ThreadsPerCTA == 0 {
			j.ThreadsPerCTA = 128
		}
		if j.ConcCTAs == 0 {
			j.ConcCTAs = 4
		}
	}
	j.TimeoutMS = 0
	j.Async = false
	j.GPUParallel = 0 // wall-clock knob; never affects the result
	j.Tenant = ""     // scheduling metadata; results dedup across tenants
	j.Priority = 0
	return j
}

// schedTenant is the queue the job lands in: the explicit tenant, or
// the shared default queue for tenantless requests.
func (j Job) schedTenant() string {
	if j.Tenant == "" {
		return sched.DefaultTenant
	}
	return j.Tenant
}

// validTenantName bounds tenant names: up to 64 bytes of
// [A-Za-z0-9._-], so names are safe in logs, metrics keys and headers.
func validTenantName(s string) bool {
	if len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Key is the job's content address: a hex SHA-256 prefix over the
// canonical JSON encoding of the normalized spec. Jobs that simulate
// the same thing share a key (and therefore a cached result and an ID)
// even when they spell their defaults differently. DESIGN.md §"jobs"
// documents the scheme field by field.
func (j Job) Key() string {
	b, err := json.Marshal(j.normalized())
	if err != nil {
		// A Job is plain data; Marshal cannot fail. Keep the compiler
		// honest without making every caller thread an error.
		panic("jobs: marshal job: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Validate rejects malformed specs before they reach the queue.
func (j Job) Validate() error {
	switch {
	case j.Workload == "" && j.Kernel == "":
		return fmt.Errorf("jobs: one of workload or kernel is required")
	case j.Workload != "" && j.Kernel != "":
		return fmt.Errorf("jobs: workload and kernel are mutually exclusive")
	}
	if j.Mode != "" {
		if _, err := rename.ParseMode(j.Mode); err != nil {
			// ParseMode's message lists the valid modes.
			return fmt.Errorf("jobs: %w", err)
		}
	}
	if j.RFCacheEntries < 0 {
		return fmt.Errorf("jobs: rfcache %d must be non-negative", j.RFCacheEntries)
	}
	if (j.RFCacheEntries != 0 || j.RFCacheWriteThrough) && j.Mode != "regcache" {
		return fmt.Errorf("jobs: rfcache/rfcache_wt require mode \"regcache\" (got %q)", j.Mode)
	}
	if j.SpillRegs < 0 || j.SpillRegs >= isa.MaxRegsPerThread {
		return fmt.Errorf("jobs: spill_regs %d out of range [0, %d)", j.SpillRegs, isa.MaxRegsPerThread)
	}
	if j.SpillRegs != 0 && j.Mode != "smemspill" {
		return fmt.Errorf("jobs: spill_regs requires mode \"smemspill\" (got %q)", j.Mode)
	}
	if j.Workload != "" {
		if _, err := workloads.ByName(j.Workload); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	if j.PhysRegs < 0 || j.PhysRegs%16 != 0 {
		return fmt.Errorf("jobs: physregs %d must be a non-negative multiple of 16", j.PhysRegs)
	}
	if j.TimeoutMS < 0 {
		return fmt.Errorf("jobs: negative timeout_ms %d", j.TimeoutMS)
	}
	if j.GPUParallel < 0 {
		return fmt.Errorf("jobs: negative gpu_par %d", j.GPUParallel)
	}
	if j.GPUParallel > 1 && !j.WholeGPU {
		return fmt.Errorf("jobs: gpu_par %d requires \"gpu\": true (single-SM runs have no compute phase to parallelize)", j.GPUParallel)
	}
	if !validTenantName(j.Tenant) {
		return fmt.Errorf("jobs: invalid tenant %q (up to 64 bytes of [A-Za-z0-9._-])", j.Tenant)
	}
	if j.Priority < -100 || j.Priority > 100 {
		return fmt.Errorf("jobs: priority %d out of range [-100, 100]", j.Priority)
	}
	return nil
}

func (j Job) renameMode() (rename.Mode, error) {
	if j.Mode == "" {
		return rename.ModeCompiler, nil
	}
	m, err := rename.ParseMode(j.Mode)
	if err != nil {
		return 0, fmt.Errorf("jobs: %w", err)
	}
	return m, nil
}

// kernelKey identifies a compilation for the pool's kernel cache:
// compiling depends only on the source (or workload), the table budget,
// whether release metadata is emitted, and the resident-warp count.
type kernelKey struct {
	source    string // workload name or hash of inline assembly
	tableB    int
	noFlags   bool
	residents int
}

// buildKernel compiles the job's kernel, via cache when one is given.
func (j Job) buildKernel(n Job, kernels *Cache[kernelKey, *compiler.Kernel]) (*compiler.Kernel, sim.LaunchSpec, error) {
	mode, err := j.renameMode()
	if err != nil {
		return nil, sim.LaunchSpec{}, err
	}
	tableBytes := n.TableBytes
	if tableBytes < 0 {
		tableBytes = 0 // compiler convention: 0 = unconstrained
	}
	noFlags := mode != rename.ModeCompiler

	if n.Workload != "" {
		w, werr := workloads.ByName(n.Workload)
		if werr != nil {
			return nil, sim.LaunchSpec{}, werr
		}
		key := kernelKey{source: "workload:" + w.Name, tableB: tableBytes, noFlags: noFlags, residents: w.ResidentWarps()}
		k, cerr := compileCached(kernels, key, func() (*compiler.Kernel, error) {
			opts := w.CompileOptions()
			opts.TableBytes = tableBytes
			opts.NoFlags = noFlags
			return compiler.Compile(w.Program(), opts)
		})
		if cerr != nil {
			return nil, sim.LaunchSpec{}, cerr
		}
		return k, w.Spec(k), nil
	}

	sum := sha256.Sum256([]byte(n.Kernel))
	residents := (n.ThreadsPerCTA + arch.WarpSize - 1) / arch.WarpSize * n.ConcCTAs
	key := kernelKey{source: "asm:" + hex.EncodeToString(sum[:]), tableB: tableBytes, noFlags: noFlags, residents: residents}
	k, cerr := compileCached(kernels, key, func() (*compiler.Kernel, error) {
		p, perr := isa.Parse(n.Kernel)
		if perr != nil {
			return nil, perr
		}
		return compiler.Compile(p, compiler.Options{
			TableBytes:    tableBytes,
			ResidentWarps: residents,
			NoFlags:       noFlags,
		})
	})
	if cerr != nil {
		return nil, sim.LaunchSpec{}, cerr
	}
	spec := sim.LaunchSpec{Kernel: k, GridCTAs: n.GridCTAs, ThreadsPerCTA: n.ThreadsPerCTA, ConcCTAs: n.ConcCTAs}
	return k, spec, nil
}

func compileCached(kernels *Cache[kernelKey, *compiler.Kernel], key kernelKey, fn func() (*compiler.Kernel, error)) (*compiler.Kernel, error) {
	if kernels == nil {
		return fn()
	}
	k, _, err := kernels.Do(context.Background(), key, fn)
	return k, err
}

// Execute runs one job to completion on the calling goroutine (the
// pool-free path cmd/regvsim uses). ctx cancellation aborts the
// simulation cooperatively via sim.Config.Cancel. A panicking
// simulation is contained and returned as a *PanicError, mirroring
// the pool's worker containment.
func Execute(ctx context.Context, j Job) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, toPanicError(v)
		}
	}()
	return execute(ctx, j, nil, nil, runHooks{})
}

// runHooks threads the pool's durability callbacks into one execution:
// periodic checkpointing, a final checkpoint on cancellation, and an
// optional checkpoint to resume from instead of starting at cycle 0.
// The zero value runs the job plainly.
type runHooks struct {
	every      uint64
	checkpoint func(*sim.Checkpoint)
	onCancel   bool
	resume     *sim.Checkpoint
}

// execute runs one job. faultHook, when non-nil, is threaded into
// sim.Config.FaultHook (the pool passes its injector's hook here).
func execute(ctx context.Context, j Job, kernels *Cache[kernelKey, *compiler.Kernel], faultHook func(string) error, hooks runHooks) (*Result, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	n := j.normalized()
	k, spec, err := j.buildKernel(n, kernels)
	if err != nil {
		return nil, err
	}
	mode, err := j.renameMode()
	if err != nil {
		return nil, err
	}
	wakeup := n.WakeupLatency
	flagEntries := n.FlagCacheEntries
	cfg := sim.Config{
		Mode: mode, PhysRegs: n.PhysRegs, PowerGating: n.PowerGating,
		WakeupLatency: wakeup, FlagCacheEntries: flagEntries,
		RFCacheEntries:      n.RFCacheEntries,
		RFCacheWriteThrough: n.RFCacheWriteThrough,
		SpillRegs:           n.SpillRegs,
		Profile:             n.Profile,
		Cancel:              ctx.Done(),
		FaultHook:           faultHook,
		// Wall-clock-only knob, read from the raw job (normalization
		// strips it so it cannot leak into the cache key).
		GPUParallel: j.GPUParallel,
		// Durability hooks; like GPUParallel these never influence the
		// result (checkpoint_test.go proves checkpointing is
		// observation-only), so they are not part of the cache key.
		CheckpointEvery:    hooks.every,
		Checkpoint:         hooks.checkpoint,
		CheckpointOnCancel: hooks.onCancel,
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tableBytes := n.TableBytes
	if tableBytes < 0 {
		tableBytes = 0
	}
	if n.WholeGPU {
		var g *sim.GPUResult
		var gerr error
		if hooks.resume != nil {
			g, gerr = sim.ResumeGPU(cfg, spec, hooks.resume)
			if errors.Is(gerr, sim.ErrBadCheckpoint) {
				// Determinism makes a stale/corrupt checkpoint harmless:
				// restarting from cycle 0 reaches the identical result.
				g, gerr = sim.RunGPU(cfg, spec)
			}
		} else {
			g, gerr = sim.RunGPU(cfg, spec)
		}
		if gerr != nil {
			return nil, gerr
		}
		r := ResultFromGPU(k, cfg, tableBytes, g)
		r.ID = j.Key()
		return r, nil
	}
	var res *sim.Result
	var rerr error
	if hooks.resume != nil {
		res, rerr = sim.Resume(cfg, spec, hooks.resume)
		if errors.Is(rerr, sim.ErrBadCheckpoint) {
			res, rerr = sim.Run(cfg, spec)
		}
	} else {
		res, rerr = sim.Run(cfg, spec)
	}
	if rerr != nil {
		return nil, rerr
	}
	r := ResultFromSim(k, cfg, tableBytes, res)
	r.ID = j.Key()
	return r, nil
}
