package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache[string, int]()
	ctx := context.Background()
	calls := 0
	fill := func() (int, error) { calls++; return 42, nil }

	v, out, err := c.Do(ctx, "k", fill)
	if err != nil || v != 42 || out != Miss {
		t.Fatalf("first Do = (%d, %v, %v), want (42, Miss, nil)", v, out, err)
	}
	v, out, err = c.Do(ctx, "k", fill)
	if err != nil || v != 42 || out != Hit {
		t.Fatalf("second Do = (%d, %v, %v), want (42, Hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Errorf("fill ran %d times, want 1", calls)
	}
	if got, ok := c.Get("k"); !ok || got != 42 {
		t.Errorf("Get = (%d, %v), want (42, true)", got, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("Get on absent key reported ok")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[string, int]()
	const waiters = 16
	var fills atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() (int, error) {
				fills.Add(1)
				<-gate // hold the flight open until everyone queued
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = (%d, %v), want (7, nil)", v, err)
			}
		}()
	}
	// Wait until one filler is inside fn and the rest are parked on the
	// flight, then release.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Dedups < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d dedups after 5s", c.Stats().Dedups)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Dedups != waiters-1 {
		t.Errorf("dedups = %d, want %d", st.Dedups, waiters-1)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache[string, int]()
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("failed fill left a cached entry")
	}
	v, out, err := c.Do(ctx, "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || out != Miss {
		t.Errorf("retry Do = (%d, %v, %v), want (9, Miss, nil)", v, out, err)
	}
	if st := c.Stats(); st.Failures != 1 {
		t.Errorf("failures = %d, want 1", st.Failures)
	}
}

func TestCacheWaiterHonoursContext(t *testing.T) {
	c := NewCache[string, int]()
	inFill := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (int, error) {
		close(inFill)
		<-release
		return 1, nil
	})
	<-inFill
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, out, err := c.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.DeadlineExceeded) || out != Deduped {
		t.Errorf("waiter Do = (%v, %v), want (Deduped, deadline exceeded)", out, err)
	}
	close(release)
}
