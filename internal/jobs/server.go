package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"regvirt/internal/workloads"
)

// Server exposes a Pool over HTTP/JSON:
//
//	POST /v1/jobs      submit a Job; sync by default, async with
//	                   {"async":true} (or ?async=1) -> 202 + job ID
//	GET  /v1/jobs/{id} status/result of a submitted job
//	GET  /healthz      liveness
//	GET  /metrics      expvar-style JSON counters
//	GET  /v1/workloads built-in workload names
type Server struct {
	pool *Pool
}

// NewServer wraps a pool.
func NewServer(p *Pool) *Server { return &Server{pool: p} }

// maxBodyBytes bounds a job submission (inline kernels are small).
const maxBodyBytes = 1 << 20

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	return mux
}

// apiError is the structured error body every failure returns.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Every payload we serve is marshalable; this is unreachable.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var job Job
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, "bad job body: %v", err)
		return
	}
	if err := job.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if job.Async || r.URL.Query().Get("async") == "1" {
		id, err := s.pool.SubmitAsync(job)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		st, _ := s.pool.Status(id)
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	res, err := s.pool.Submit(r.Context(), job)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "job deadline exceeded: %v", err)
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusRequestTimeout, "job cancelled: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.pool.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Metrics())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"workloads": workloads.Names()})
}
