package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"regvirt/internal/jobs/sched"
	"regvirt/internal/obs"
	"regvirt/internal/sim"
	"regvirt/internal/workloads"
)

// TenantHeader names the submitting tenant when the job body does not
// (the body's "tenant" field wins when both are present).
const TenantHeader = "X-RegVD-Tenant"

// Server exposes a Pool over HTTP/JSON:
//
//	POST /v1/jobs      submit a Job; sync by default, async with
//	                   {"async":true} (or ?async=1) -> 202 + job ID
//	GET  /v1/jobs/{id} status/result of a submitted job
//	GET  /v1/queues    per-tenant scheduler state and counters
//	GET  /healthz      liveness ("ok", or "degraded" while shedding)
//	GET  /metrics      expvar-style JSON counters
//	GET  /v1/workloads built-in workload names
//
// Submissions name their tenant in the job body ("tenant") or the
// X-RegVD-Tenant header; tenantless requests ride the shared "default"
// queue. Failure contract: overload sheds with 429 plus a Retry-After
// header (jobs are content-addressed, so retrying is always safe),
// tenant policy refusals return 403 (APIError.Kind "quota" for a
// MaxQueued breach — with an honest drain hint — and "admission" for
// strict-mode or priority-cap violations, which must not be retried
// unchanged), contained panics and simulator invariant violations
// return structured 500 bodies (Kind "panic" / "invariant" — the
// latter carrying cycle/SM/warp context), and submissions during
// shutdown return 503.
type Server struct {
	pool *Pool
}

// NewServer wraps a pool.
func NewServer(p *Pool) *Server { return &Server{pool: p} }

// maxBodyBytes bounds a job submission (inline kernels are small).
const maxBodyBytes = 1 << 20

// diskFullRetrySecs is the Retry-After hint served with disk-full
// 503s: long enough for an operator (or log rotation) to free space,
// short enough that clients re-probe a recovered shard promptly.
const diskFullRetrySecs = 15

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/queues", s.handleQueues)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	return mux
}

// writeJSON marshals before touching the response: a marshal failure
// can still become a real 500 instead of a mislabeled success with a
// broken body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, &APIError{Message: fmt.Sprintf(format, args...), Status: code})
}

// writeSubmitError maps a Submit/SubmitAsync failure onto the HTTP
// failure contract.
func writeSubmitError(w http.ResponseWriter, err error) {
	var (
		ov *OverloadError
		qe *sched.QuotaError
		ae *sched.AdmissionError
		pe *PanicError
		ie *sim.InvariantError
		de *DiskFullError
	)
	switch {
	case errors.As(err, &ov):
		secs := int(math.Ceil(ov.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, &APIError{
			Message:      err.Error(),
			Kind:         "overloaded",
			Status:       http.StatusTooManyRequests,
			RetryAfterMS: ov.RetryAfter.Milliseconds(),
		})
	case errors.As(err, &qe):
		// Policy, not capacity: the *tenant* is full, however idle the
		// service. 403 so generic retry loops fail fast; the body still
		// carries an honest drain estimate for callers that choose to
		// come back.
		secs := int(math.Ceil(float64(qe.RetryAfter) / 1000))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusForbidden, &APIError{
			Message:      err.Error(),
			Kind:         "quota",
			Status:       http.StatusForbidden,
			RetryAfterMS: qe.RetryAfter,
		})
	case errors.As(err, &ae):
		writeJSON(w, http.StatusForbidden, &APIError{
			Message: err.Error(),
			Kind:    "admission",
			Status:  http.StatusForbidden,
		})
	case errors.As(err, &pe):
		writeJSON(w, http.StatusInternalServerError, &APIError{
			Message: err.Error(),
			Kind:    "panic",
			Status:  http.StatusInternalServerError,
		})
	case errors.As(err, &ie):
		writeJSON(w, http.StatusInternalServerError, &APIError{
			Message:   err.Error(),
			Kind:      "invariant",
			Status:    http.StatusInternalServerError,
			Invariant: ie,
		})
	case errors.As(err, &de):
		// The disk is full: the daemon is read-only for new work, but
		// status, cached results and metrics keep serving. 503 +
		// Retry-After so clients back off (ideally onto another shard)
		// instead of treating a full disk as a job failure.
		w.Header().Set("Retry-After", strconv.Itoa(diskFullRetrySecs))
		writeJSON(w, http.StatusServiceUnavailable, &APIError{
			Message:      err.Error(),
			Kind:         "disk_full",
			Status:       http.StatusServiceUnavailable,
			RetryAfterMS: int64(diskFullRetrySecs) * 1000,
		})
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, &APIError{
			Message: err.Error(), Kind: "closed", Status: http.StatusServiceUnavailable,
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, &APIError{
			Message: fmt.Sprintf("job deadline exceeded: %v", err),
			Kind:    "timeout", Status: http.StatusGatewayTimeout,
		})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusRequestTimeout, &APIError{
			Message: fmt.Sprintf("job cancelled: %v", err),
			Kind:    "cancelled", Status: http.StatusRequestTimeout,
		})
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var job Job
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, "bad job body: %v", err)
		return
	}
	if job.Tenant == "" {
		job.Tenant = r.Header.Get(TenantHeader)
	}
	if err := job.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Join the caller's trace (X-RegVD-Trace) or mint a fresh one, and
	// echo the trace ID on the response so the client can fetch the
	// stitched trace from GET /v1/trace/{id} afterwards.
	ctx := obs.ExtractHTTP(r.Context(), r.Header)
	ctx = obs.WithTenant(ctx, job.Tenant)
	ctx, hsp := s.pool.Tracer().Start(ctx, "http.submit")
	defer hsp.End()
	hsp.SetTenant(job.Tenant)
	if sc := hsp.Context(); sc.TraceID != "" {
		w.Header().Set(obs.TraceHeader, sc.HeaderValue())
	}
	if job.Async || r.URL.Query().Get("async") == "1" {
		id, err := s.pool.SubmitAsync(job)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		st, _ := s.pool.Status(id)
		if job.Tenant != "" && st.Result != nil {
			r2 := *st.Result
			r2.Tenant = job.Tenant
			st.Result = &r2
		}
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	res, err := s.pool.Submit(ctx, job)
	if err != nil {
		hsp.SetError(err)
		writeSubmitError(w, err)
		return
	}
	// Requests that name a tenant get it echoed on a per-response copy
	// only: the cached Result stays tenantless, so identical jobs from
	// different tenants (and tenantless legacy clients) share one
	// byte-identical encoding.
	if job.Tenant != "" {
		r2 := *res
		r2.Tenant = job.Tenant
		res = &r2
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.pool.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleQueues(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Queues())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.pool.Overloaded() {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"reason": "load shedding: job queue at shed depth",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(PromMetrics(s.pool))
		return
	}
	writeJSON(w, http.StatusOK, s.pool.Metrics())
}

// TraceResponse is the GET /v1/trace/{id} body.
type TraceResponse struct {
	TraceID string           `json:"trace_id"`
	Spans   []obs.SpanRecord `json:"spans"`
}

// handleTrace serves one trace's retained spans, as JSON span records
// or (?format=chrome) as a Chrome trace_event file loadable in
// chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.pool.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	id := r.PathValue("id")
	spans := tr.Trace(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "unknown trace %q", id)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		b, err := obs.ChromeTrace(spans)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "chrome export: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{TraceID: id, Spans: spans})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"workloads": workloads.Names()})
}
