package jobs

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"regvirt/internal/rename"
	"regvirt/internal/sim"
	"regvirt/internal/workloads"
)

// TestDeterministicDedup submits one job N times in parallel and
// requires byte-identical results from exactly one underlying
// simulation: dedup counter == N-1, executed == 1.
func TestDeterministicDedup(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	const n = 12
	job := Job{Workload: "VectorAdd", Mode: "compiler", PhysRegs: 512, PowerGating: true}

	// Hold the only worker hostage so the first submission's flight
	// cannot complete until every other submission has joined it —
	// the dedup count is then deterministic, not a race against a
	// fast simulation.
	gate := make(chan struct{})
	busy := make(chan struct{})
	go p.Exec(context.Background(), func() error {
		close(busy)
		<-gate
		return nil
	})
	<-busy

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		outputs [][]byte
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Submit(context.Background(), job)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			mu.Lock()
			outputs = append(outputs, res.JSON())
			mu.Unlock()
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.results.Stats().Dedups < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d submissions joined the flight after 10s", p.results.Stats().Dedups)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if len(outputs) != n {
		t.Fatalf("%d results, want %d", len(outputs), n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(outputs[0], outputs[i]) {
			t.Fatalf("result %d differs from result 0:\n%s\nvs\n%s", i, outputs[i], outputs[0])
		}
	}
	m := p.Metrics()
	if m.Executed != 1 {
		t.Errorf("executed = %d, want exactly 1 simulation", m.Executed)
	}
	if m.Deduped != n-1 {
		t.Errorf("deduped = %d, want %d", m.Deduped, n-1)
	}
	if m.Submitted != n || m.Completed != n || m.Failed != 0 {
		t.Errorf("submitted/completed/failed = %d/%d/%d, want %d/%d/0",
			m.Submitted, m.Completed, m.Failed, n, n)
	}
}

// TestMixedConfigStress runs distinct configurations concurrently
// (twice each) and checks the counter arithmetic plus one result
// against a direct sim.Run.
func TestMixedConfigStress(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	jobs := []Job{
		{Workload: "VectorAdd", Mode: "baseline"},
		{Workload: "VectorAdd", Mode: "compiler", PhysRegs: 512},
		{Workload: "VectorAdd", Mode: "hwonly"},
		{Workload: "MatrixMul", Mode: "compiler"},
		{Workload: "MatrixMul", Mode: "compiler", PowerGating: true, WakeupLatency: 3},
		{Workload: "Reduction", Mode: "compiler", FlagCacheEntries: -1},
	}
	const repeats = 2
	var wg sync.WaitGroup
	results := make([]*Result, len(jobs)*repeats)
	for rep := 0; rep < repeats; rep++ {
		for i, job := range jobs {
			wg.Add(1)
			go func(slot int, job Job) {
				defer wg.Done()
				res, err := p.Submit(context.Background(), job)
				if err != nil {
					t.Errorf("Submit %+v: %v", job, err)
					return
				}
				results[slot] = res
			}(rep*len(jobs)+i, job)
		}
	}
	wg.Wait()

	// Repeated submissions must agree byte for byte.
	for i := range jobs {
		a, b := results[i], results[len(jobs)+i]
		if a == nil || b == nil {
			continue // already reported
		}
		if !bytes.Equal(a.JSON(), b.JSON()) {
			t.Errorf("job %d: repeat differs", i)
		}
	}

	m := p.Metrics()
	total := uint64(len(jobs) * repeats)
	if m.Submitted != total || m.Completed+m.Failed != total {
		t.Errorf("submitted=%d completed=%d failed=%d, want %d total", m.Submitted, m.Completed, m.Failed, total)
	}
	if m.Executed != uint64(len(jobs)) {
		t.Errorf("executed = %d, want %d distinct simulations", m.Executed, len(jobs))
	}
	if m.Executed+m.Deduped+m.CacheHits != total {
		t.Errorf("executed+deduped+hits = %d+%d+%d, want %d",
			m.Executed, m.Deduped, m.CacheHits, total)
	}

	// Cross-check the GPU-shrink result against a direct simulation.
	w, err := workloads.ByName("VectorAdd")
	if err != nil {
		t.Fatal(err)
	}
	k, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Run(sim.Config{Mode: rename.ModeCompiler, PhysRegs: 512, WakeupLatency: 1}, w.Spec(k))
	if err != nil {
		t.Fatal(err)
	}
	got := results[1]
	if got == nil {
		t.Fatal("missing shrink result")
	}
	if got.Cycles != direct.Cycles {
		t.Errorf("pool cycles %d != direct sim.Run cycles %d", got.Cycles, direct.Cycles)
	}
	if got.StoresDigest != DigestStores(direct.Stores) {
		t.Error("pool stores digest differs from direct sim.Run")
	}
}

// TestDeadline: an absurdly short deadline fails the job without
// wedging the pool — a follow-up job on the same pool still completes.
func TestDeadline(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	_, err := p.Submit(context.Background(), Job{Workload: "MUM", TimeoutMS: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	m := p.Metrics()
	if m.Failed != 1 {
		t.Errorf("failed = %d, want 1", m.Failed)
	}
	// The pool must still serve jobs afterwards.
	res, err := p.Submit(context.Background(), Job{Workload: "VectorAdd"})
	if err != nil {
		t.Fatalf("pool wedged after deadline failure: %v", err)
	}
	if res.Cycles == 0 {
		t.Error("follow-up job returned empty result")
	}
	// The failed flight must not have been cached.
	if _, ok := p.results.Get(Job{Workload: "MUM", TimeoutMS: 1}.Key()); ok {
		t.Error("cancelled job left a cached result")
	}
}

// TestExecuteMatchesPool: the pool-free Execute path (regvsim -json)
// and the pool produce identical encodings.
func TestExecuteMatchesPool(t *testing.T) {
	job := Job{Workload: "BackProp", Mode: "compiler", PhysRegs: 512}
	direct, err := Execute(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	defer p.Close()
	pooled, err := p.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.JSON(), pooled.JSON()) {
		t.Errorf("Execute and pool Submit disagree:\n%s\nvs\n%s", direct.JSON(), pooled.JSON())
	}
}

// TestJobKeyNormalization: spelling a default explicitly addresses the
// same cached result, and content fields change the key while
// transport fields don't.
func TestJobKeyNormalization(t *testing.T) {
	base := Job{Workload: "VectorAdd"}
	explicit := Job{Workload: "VectorAdd", Mode: "compiler", PhysRegs: 1024, WakeupLatency: 1, TableBytes: 1024, FlagCacheEntries: 10}
	if base.Key() != explicit.Key() {
		t.Error("explicit defaults changed the key")
	}
	withTimeout := Job{Workload: "VectorAdd", TimeoutMS: 5000, Async: true}
	if base.Key() != withTimeout.Key() {
		t.Error("timeout/async changed the key")
	}
	shrink := Job{Workload: "VectorAdd", PhysRegs: 512}
	if base.Key() == shrink.Key() {
		t.Error("physregs did not change the key")
	}
	gpu := Job{Workload: "VectorAdd", WholeGPU: true}
	if base.Key() == gpu.Key() {
		t.Error("whole-GPU did not change the key")
	}
}

func TestValidate(t *testing.T) {
	bad := []Job{
		{},
		{Workload: "VectorAdd", Kernel: "x"},
		{Workload: "NoSuchWorkload"},
		{Workload: "VectorAdd", Mode: "bogus"},
		{Workload: "VectorAdd", PhysRegs: 100},
		{Workload: "VectorAdd", TimeoutMS: -1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d accepted: %+v", i, j)
		}
	}
	if err := (Job{Workload: "VectorAdd"}).Validate(); err != nil {
		t.Errorf("good job rejected: %v", err)
	}
}

// TestInlineKernelJob runs a job specified as inline assembly.
func TestInlineKernelJob(t *testing.T) {
	src := `
.kernel inline
.reg 4
    s2r  r0, %tid.x
    shl  r1, r0, 2
    imul r2, r0, 3
    iadd r3, r1, c[0]
    st.global [r3+0], r2
    exit
`
	p := NewPool(2)
	defer p.Close()
	res, err := p.Submit(context.Background(), Job{Kernel: src, GridCTAs: 8, ThreadsPerCTA: 64, ConcCTAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "inline" || res.Cycles == 0 || res.StoresDigest == "" {
		t.Errorf("unexpected inline result: %+v", res)
	}
}
