package jobs

import (
	"context"
	"strings"
	"testing"

	"regvirt/internal/rename"
)

// TestModeKeysDistinct proves the content address separates every
// register-file backend: the same workload under the five modes yields
// five distinct keys, so no mode can ever be served another mode's
// cached result.
func TestModeKeysDistinct(t *testing.T) {
	keys := map[string]string{}
	for _, mode := range rename.ModeNames() {
		j := Job{Workload: "VectorAdd", Mode: mode, PhysRegs: 512}
		if err := j.Validate(); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		k := j.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("modes %s and %s collide on key %s", prev, mode, k)
		}
		keys[k] = mode
	}
	if len(keys) != len(rename.ModeNames()) {
		t.Errorf("%d distinct keys for %d modes", len(keys), len(rename.ModeNames()))
	}
}

// TestBackendKnobKeys pins how the backend-specific knobs participate
// in the content address: explicit defaults alias the implicit ones,
// differing values separate, and knobs a mode never reads cannot
// fragment its key space.
func TestBackendKnobKeys(t *testing.T) {
	base := Job{Workload: "VectorAdd", Mode: "regcache", PhysRegs: 512}

	// Default-vs-explicit-default: one key.
	explicit := base
	explicit.RFCacheEntries = 64 // arch.RFCacheEntries
	if base.Key() != explicit.Key() {
		t.Error("implicit and explicit default rfcache address different results")
	}

	// A different cache geometry is a different simulation.
	small := base
	small.RFCacheEntries = 16
	if small.Key() == base.Key() {
		t.Error("rfcache 16 and 64 collide")
	}
	wt := base
	wt.RFCacheWriteThrough = true
	if wt.Key() == base.Key() {
		t.Error("write-through and write-back collide")
	}

	// Same for the spill knob.
	spill := Job{Workload: "VectorAdd", Mode: "smemspill", PhysRegs: 512}
	spill2 := spill
	spill2.SpillRegs = 2
	if spill.Key() == spill2.Key() {
		t.Error("auto-fit and explicit spill_regs collide")
	}

	// Alias spelling collapses onto the canonical key.
	hw := Job{Workload: "VectorAdd", Mode: "hwonly", PhysRegs: 512}
	alias := hw
	alias.Mode = "hw-only"
	if hw.Key() != alias.Key() {
		t.Error(`"hwonly" and "hw-only" address different results`)
	}
}

// TestBackendKnobValidation exercises the cross-field grammar: backend
// knobs are only legal with the mode that reads them, and an unknown
// mode's error lists the whole menu.
func TestBackendKnobValidation(t *testing.T) {
	bad := []Job{
		{Workload: "VectorAdd", Mode: "compiler", RFCacheEntries: 16},
		{Workload: "VectorAdd", Mode: "baseline", RFCacheWriteThrough: true},
		{Workload: "VectorAdd", Mode: "regcache", RFCacheEntries: -1},
		{Workload: "VectorAdd", Mode: "compiler", SpillRegs: 4},
		{Workload: "VectorAdd", Mode: "smemspill", SpillRegs: -1},
		{Workload: "VectorAdd", Mode: "smemspill", SpillRegs: 10_000},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid job accepted", i, j)
		}
	}
	err := Job{Workload: "VectorAdd", Mode: "virtual"}.Validate()
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	for _, name := range rename.ModeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-mode error %q does not list %q", err, name)
		}
	}
}

// TestExecuteNewBackends smoke-runs both wrapper backends end to end
// through the jobs path and checks their extra counters surface in the
// result encoding.
func TestExecuteNewBackends(t *testing.T) {
	res, err := Execute(context.Background(), Job{
		Workload: "VectorAdd", Mode: "regcache", PhysRegs: 512,
	})
	if err != nil {
		t.Fatalf("regcache: %v", err)
	}
	if res.Backend == nil {
		t.Fatal("regcache result has no backend block")
	}
	if res.Backend.CacheHits+res.Backend.CacheMisses == 0 {
		t.Error("regcache run recorded no cache probes")
	}
	if res.Config.RFCacheEntries != 64 {
		t.Errorf("result echoes rfcache %d, want normalized default 64", res.Config.RFCacheEntries)
	}

	res, err = Execute(context.Background(), Job{
		Workload: "VectorAdd", Mode: "smemspill", PhysRegs: 512, SpillRegs: 2,
	})
	if err != nil {
		t.Fatalf("smemspill: %v", err)
	}
	if res.Backend == nil {
		t.Fatal("smemspill result has no backend block")
	}
	if res.Backend.SMemReads+res.Backend.SMemWrites == 0 {
		t.Error("smemspill run with spill_regs 2 recorded no shared-memory traffic")
	}

	// Classic modes keep their historical encoding: no backend block.
	res, err = Execute(context.Background(), Job{Workload: "VectorAdd", Mode: "compiler"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != nil {
		t.Error("compiler-mode result grew a backend block")
	}
	if res.Config.RFCacheEntries != 0 || res.Config.SpillRegs != 0 {
		t.Error("compiler-mode result echoes backend knobs")
	}
}
