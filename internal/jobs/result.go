package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sort"

	"regvirt/internal/compiler"
	"regvirt/internal/power"
	"regvirt/internal/rename"
	"regvirt/internal/sim"
)

// Result is the machine-readable encoding of one simulation: the same
// JSON whether it came from cmd/regvsim -json, a POST to cmd/regvd, or
// the result cache — so CLI and daemon outputs are interchangeable.
// For whole-GPU jobs the scalar fields describe the busiest SM (what
// the human-readable regvsim output reports) and GPU carries the
// device-level aggregate.
type Result struct {
	// ID is the job's content address (Job.Key), when known.
	ID string `json:"id,omitempty"`
	// Tenant is the queue the submission was served under. It is never
	// set on cached or persisted results (identical jobs from different
	// tenants share one result, byte for byte); the HTTP layer stamps it
	// onto per-response copies so clients see which queue answered them.
	Tenant string `json:"tenant,omitempty"`

	Kernel     string       `json:"kernel"`
	ArchRegs   int          `json:"arch_regs"`
	ExemptRegs int          `json:"exempt_regs"`
	Config     ResultConfig `json:"config"`

	Cycles           uint64  `json:"cycles"`
	Instrs           uint64  `json:"instrs"`
	IPC              float64 `json:"ipc"`
	AvgResidentWarps float64 `json:"avg_resident_warps"`
	MemRequests      uint64  `json:"mem_requests"`
	Spills           uint64  `json:"spills"`

	PeakLiveRegs           int     `json:"peak_live_regs"`
	CompilerAllocatedRegs  int     `json:"compiler_allocated_regs"`
	AllocationReductionPct float64 `json:"allocation_reduction_pct"`

	DecodedPirs        uint64  `json:"decoded_pirs"`
	DecodedPbrs        uint64  `json:"decoded_pbrs"`
	DynamicIncreasePct float64 `json:"dynamic_increase_pct"`

	FlagProbes     uint64  `json:"flag_probes"`
	FlagHitRatePct float64 `json:"flag_hit_rate_pct"`

	Throttles         uint64  `json:"throttles"`
	WarpsBlocked      uint64  `json:"warps_blocked"`
	SubarraysAwakePct float64 `json:"subarrays_awake_pct"`

	Stalls ResultStalls `json:"stalls"`

	DivergentBranches uint64 `json:"divergent_branches"`
	UniformBranches   uint64 `json:"uniform_branches"`
	MaxStackDepth     int    `json:"max_stack_depth"`

	// StoresDigest is a SHA-256 over the sorted (address, value) pairs
	// of final global memory — the functional fingerprint two runs must
	// share to count as "the same result".
	StoresDigest string `json:"stores_digest"`

	Energy ResultEnergy `json:"energy"`

	// Backend carries the wrapper backends' extra counters ("regcache",
	// "smemspill"); omitted for the classic modes, whose result bytes
	// are unchanged by the backend refactor.
	Backend *ResultBackend `json:"backend,omitempty"`

	GPU *ResultGPU `json:"gpu,omitempty"`

	// Profile is the sim-phase profiling report ("profile": true jobs
	// only). For whole-GPU jobs the top-level attribution is the device
	// aggregate and PerSM breaks it down per SM; the timeline is the
	// busiest SM's (the one the scalar fields describe).
	Profile *ResultProfile `json:"profile,omitempty"`
}

// ResultConfig echoes the effective (normalized) configuration. The
// backend-specific knobs are omitted when zero, so classic-mode results
// keep their exact historical encoding.
type ResultConfig struct {
	Mode                string `json:"mode"`
	PhysRegs            int    `json:"physregs"`
	PowerGating         bool   `json:"gating"`
	WakeupLatency       int    `json:"wakeup"`
	FlagCacheEntries    int    `json:"flagcache"`
	TableBytes          int    `json:"table_bytes"`
	RFCacheEntries      int    `json:"rfcache,omitempty"`
	RFCacheWriteThrough bool   `json:"rfcache_wt,omitempty"`
	SpillRegs           int    `json:"spill_regs,omitempty"`
}

// ResultBackend is the per-backend accounting of the wrapper modes.
type ResultBackend struct {
	CacheHits       uint64  `json:"cache_hits,omitempty"`
	CacheMisses     uint64  `json:"cache_misses,omitempty"`
	CacheFills      uint64  `json:"cache_fills,omitempty"`
	CacheWritebacks uint64  `json:"cache_writebacks,omitempty"`
	CacheHitRatePct float64 `json:"cache_hit_rate_pct,omitempty"`
	SMemReads       uint64  `json:"smem_reads,omitempty"`
	SMemWrites      uint64  `json:"smem_writes,omitempty"`
}

// ResultStalls breaks down failed issue attempts by cause.
type ResultStalls struct {
	Hazard   uint64 `json:"hazard"`
	Throttle uint64 `json:"throttle"`
	Bank     uint64 `json:"bank"`
	MemPort  uint64 `json:"memport"`
}

// ResultEnergy is the Fig. 12 breakdown in picojoules.
type ResultEnergy struct {
	DynamicPJ     float64 `json:"dynamic_pj"`
	StaticPJ      float64 `json:"static_pj"`
	RenameTablePJ float64 `json:"rename_table_pj"`
	FlagInstrPJ   float64 `json:"flag_instr_pj"`
	TotalPJ       float64 `json:"total_pj"`
}

// ResultProfile is the job-level sim-phase profiling report: cycle
// attribution (the six classes partition the profiled cycles), the
// per-warp-slot issue distribution, a coarse warp-state timeline, and
// — per SM for whole-GPU jobs — the backend traffic counters that
// explain operand-side stalls (regcache hit/fill/writeback, smemspill
// shared-memory reads/writes).
type ResultProfile struct {
	IssueCycles        uint64 `json:"issue_cycles"`
	OperandStallCycles uint64 `json:"operand_stall_cycles"`
	MemStallCycles     uint64 `json:"mem_stall_cycles"`
	HazardStallCycles  uint64 `json:"hazard_stall_cycles"`
	CommitStallCycles  uint64 `json:"commit_stall_cycles"`
	IdleCycles         uint64 `json:"idle_cycles"`

	// WarpIssued is issued instructions per warp slot (trailing zero
	// slots trimmed).
	WarpIssued []uint64 `json:"warp_issued,omitempty"`

	// Timeline samples every warp slot's state at a fixed cycle cadence
	// (sim.ProfileAbsent = 255 marks an empty slot); SamplesDropped
	// counts samples lost to the in-sim cap.
	Timeline       []ResultWarpSample `json:"timeline,omitempty"`
	SamplesDropped uint64             `json:"samples_dropped,omitempty"`

	// PerSM is the per-SM breakdown of whole-GPU jobs.
	PerSM []ResultProfileSM `json:"per_sm,omitempty"`
}

// ResultWarpSample is one timeline sample.
type ResultWarpSample struct {
	Cycle  uint64  `json:"cycle"`
	States []uint8 `json:"states"`
}

// ResultProfileSM is one SM's share of a whole-GPU profile.
type ResultProfileSM struct {
	SM                 int    `json:"sm"`
	Cycles             uint64 `json:"cycles"`
	Instrs             uint64 `json:"instrs"`
	IssueCycles        uint64 `json:"issue_cycles"`
	OperandStallCycles uint64 `json:"operand_stall_cycles"`
	MemStallCycles     uint64 `json:"mem_stall_cycles"`
	HazardStallCycles  uint64 `json:"hazard_stall_cycles"`
	CommitStallCycles  uint64 `json:"commit_stall_cycles"`
	IdleCycles         uint64 `json:"idle_cycles"`

	// Backend traffic (mode-dependent; zero fields omitted).
	CacheHits       uint64 `json:"cache_hits,omitempty"`
	CacheFills      uint64 `json:"cache_fills,omitempty"`
	CacheWritebacks uint64 `json:"cache_writebacks,omitempty"`
	SMemReads       uint64 `json:"smem_reads,omitempty"`
	SMemWrites      uint64 `json:"smem_writes,omitempty"`
}

// profileFromSim maps one SM's sim profile into the report form.
func profileFromSim(p *sim.Profile) *ResultProfile {
	if p == nil {
		return nil
	}
	out := &ResultProfile{
		IssueCycles:        p.IssueCycles,
		OperandStallCycles: p.OperandStallCycles,
		MemStallCycles:     p.MemStallCycles,
		HazardStallCycles:  p.HazardStallCycles,
		CommitStallCycles:  p.CommitStallCycles,
		IdleCycles:         p.IdleCycles,
		SamplesDropped:     p.SamplesDropped,
	}
	last := -1
	for i, n := range p.WarpIssued {
		if n > 0 {
			last = i
		}
	}
	if last >= 0 {
		out.WarpIssued = append([]uint64(nil), p.WarpIssued[:last+1]...)
	}
	for _, smp := range p.Samples {
		out.Timeline = append(out.Timeline, ResultWarpSample{
			Cycle:  smp.Cycle,
			States: append([]uint8(nil), smp.States...),
		})
	}
	return out
}

// profileSMRow summarizes one SM for the per-SM table of a GPU profile.
func profileSMRow(sm int, res *sim.Result) ResultProfileSM {
	p := res.Profile
	return ResultProfileSM{
		SM: sm, Cycles: res.Cycles, Instrs: res.Instrs,
		IssueCycles:        p.IssueCycles,
		OperandStallCycles: p.OperandStallCycles,
		MemStallCycles:     p.MemStallCycles,
		HazardStallCycles:  p.HazardStallCycles,
		CommitStallCycles:  p.CommitStallCycles,
		IdleCycles:         p.IdleCycles,
		CacheHits:          res.Rename.CacheHits,
		CacheFills:         res.Rename.CacheFills,
		CacheWritebacks:    res.Rename.CacheWritebacks,
		SMemReads:          res.Rename.SMemReads,
		SMemWrites:         res.Rename.SMemWrites,
	}
}

// ResultGPU is the whole-device aggregate of a sim.RunGPU job.
type ResultGPU struct {
	SMs                    int     `json:"sms"`
	DeviceCycles           uint64  `json:"device_cycles"`
	TotalInstrs            uint64  `json:"total_instrs"`
	AllocationReductionPct float64 `json:"allocation_reduction_pct"`
}

// ResultFromSim encodes a single-SM run. cfg must be the configuration
// the run used (post sim defaulting is fine); tableBytes is the
// renaming-table budget the kernel was compiled under (0 for
// unconstrained), which prices the rename-table energy component.
func ResultFromSim(k *compiler.Kernel, cfg sim.Config, tableBytes int, res *sim.Result) *Result {
	awake := 0.0
	if res.RF.TotalSubarrayCyc > 0 {
		awake = float64(res.RF.AwakeSubarrayCyc) / float64(res.RF.TotalSubarrayCyc) * 100
	}
	ipc := 0.0
	if res.Cycles > 0 {
		ipc = float64(res.Instrs) / float64(res.Cycles)
	}
	r := &Result{
		Kernel:     k.Prog.Name,
		ArchRegs:   k.Prog.RegCount,
		ExemptRegs: k.Exempt,
		Config: ResultConfig{
			Mode: cfg.Mode.String(), PhysRegs: res.PhysRegs,
			PowerGating: cfg.PowerGating, WakeupLatency: cfg.WakeupLatency,
			FlagCacheEntries: cfg.FlagCacheEntries, TableBytes: tableBytes,
			RFCacheEntries: cfg.RFCacheEntries, RFCacheWriteThrough: cfg.RFCacheWriteThrough,
			SpillRegs: cfg.SpillRegs,
		},
		Cycles: res.Cycles, Instrs: res.Instrs, IPC: ipc,
		AvgResidentWarps: res.AvgResidentWarps,
		MemRequests:      res.MemRequests, Spills: res.Spills,
		PeakLiveRegs:           res.PeakLiveRegs,
		CompilerAllocatedRegs:  res.CompilerAllocatedRegs,
		AllocationReductionPct: res.AllocationReduction() * 100,
		DecodedPirs:            res.DecodedPirs, DecodedPbrs: res.DecodedPbrs,
		DynamicIncreasePct: res.DynamicIncrease() * 100,
		FlagProbes:         res.Flag.Probes,
		FlagHitRatePct:     res.Flag.HitRate() * 100,
		Throttles:          res.Throttle.Throttles, WarpsBlocked: res.Throttle.Blocked,
		SubarraysAwakePct: awake,
		Stalls: ResultStalls{
			Hazard: res.Stalls.Hazard, Throttle: res.Stalls.Throttle,
			Bank: res.Stalls.Bank, MemPort: res.Stalls.MemPort,
		},
		DivergentBranches: res.DivergentBranches,
		UniformBranches:   res.UniformBranches,
		MaxStackDepth:     res.MaxStackDepth,
		StoresDigest:      DigestStores(res.Stores),
	}
	switch cfg.Mode {
	case rename.ModeRegCache:
		probes := res.Rename.CacheHits + res.Rename.CacheMisses
		hitPct := 0.0
		if probes > 0 {
			hitPct = float64(res.Rename.CacheHits) / float64(probes) * 100
		}
		r.Backend = &ResultBackend{
			CacheHits: res.Rename.CacheHits, CacheMisses: res.Rename.CacheMisses,
			CacheFills: res.Rename.CacheFills, CacheWritebacks: res.Rename.CacheWritebacks,
			CacheHitRatePct: hitPct,
		}
	case rename.ModeSMemSpill:
		r.Backend = &ResultBackend{
			SMemReads: res.Rename.SMemReads, SMemWrites: res.Rename.SMemWrites,
		}
	}
	tb := 0
	if cfg.Mode.Renames() {
		// Only the renaming modes maintain a table; the baseline and the
		// wrapper backends pay no rename-table energy.
		tb = tableBytes
	}
	e := power.NewModel(power.DefaultParams()).Breakdown(power.Counters{
		Cycles: res.Cycles, RF: res.RF, Rename: res.Rename, Flag: res.Flag,
		DecodedPirs: res.DecodedPirs, DecodedPbrs: res.DecodedPbrs,
		PhysRegs: res.PhysRegs, RenameTableBytes: tb,
	})
	r.Energy = ResultEnergy{
		DynamicPJ: e.DynamicPJ, StaticPJ: e.StaticPJ,
		RenameTablePJ: e.RenameTablePJ, FlagInstrPJ: e.FlagInstrPJ,
		TotalPJ: e.TotalPJ(),
	}
	r.Profile = profileFromSim(res.Profile)
	return r
}

// ResultFromGPU encodes a whole-device run: per-SM detail from the
// busiest SM (most instructions, regvsim's convention) plus the device
// aggregate, with the functional digest over the shared global memory.
func ResultFromGPU(k *compiler.Kernel, cfg sim.Config, tableBytes int, g *sim.GPUResult) *Result {
	busiest := g.PerSM[0]
	for _, res := range g.PerSM {
		if res.Instrs > busiest.Instrs {
			busiest = res
		}
	}
	r := ResultFromSim(k, cfg, tableBytes, busiest)
	r.StoresDigest = DigestStores(g.Stores)
	r.GPU = &ResultGPU{
		SMs:                    len(g.PerSM),
		DeviceCycles:           g.Cycles,
		TotalInstrs:            g.Instrs,
		AllocationReductionPct: g.AllocationReduction() * 100,
	}
	if g.Profile != nil {
		// Device aggregate at the top level, the busiest SM's timeline
		// (ResultFromSim already attached it), one row per SM below.
		timeline := r.Profile.Timeline
		r.Profile = profileFromSim(g.Profile)
		r.Profile.Timeline = timeline
		for i, res := range g.PerSM {
			r.Profile.PerSM = append(r.Profile.PerSM, profileSMRow(i, res))
		}
	}
	return r
}

// DigestStores hashes final global-memory content order-independently:
// SHA-256 over the (address, value) pairs in ascending address order.
func DigestStores(stores map[uint32]uint32) string {
	addrs := make([]uint32, 0, len(stores))
	for a := range stores {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := sha256.New()
	var buf [8]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint32(buf[:4], a)
		binary.LittleEndian.PutUint32(buf[4:], stores[a])
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JSON renders the result as indented, deterministic JSON (trailing
// newline included) — the exact bytes both regvsim -json and the
// daemon emit.
func (r *Result) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("jobs: marshal result: " + err.Error())
	}
	return append(b, '\n')
}
