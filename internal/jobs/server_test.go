package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, workers int) (*Pool, *httptest.Server) {
	t.Helper()
	p := NewPool(workers)
	ts := httptest.NewServer(NewServer(p).Handler())
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return p, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestMalformedSubmit: broken bodies are 400s with a structured error,
// never 500s.
func TestMalformedSubmit(t *testing.T) {
	_, ts := newTestServer(t, 1)
	cases := []string{
		`{not json`,
		`{"workload": 42}`,
		`{"workload": "VectorAdd", "unknown_field": true}`,
		`{}`,
		`{"workload": "NoSuchWorkload"}`,
		`{"workload": "VectorAdd", "kernel": "both"}`,
		`{"workload": "VectorAdd", "mode": "bogus"}`,
		`{"workload": "VectorAdd", "physregs": 7}`,
	}
	for _, body := range cases {
		resp, got := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, resp.StatusCode)
		}
		var e APIError
		if err := json.Unmarshal(got, &e); err != nil || e.Message == "" {
			t.Errorf("POST %s: body %q is not a structured error", body, got)
		}
	}
	// A compile-time failure in an inline kernel is also a client error
	// surfaced as a structured message, not a panic.
	resp, got := postJob(t, ts, `{"kernel": "this is not assembly"}`)
	if resp.StatusCode == http.StatusOK {
		t.Errorf("bogus kernel accepted: %s", got)
	}
	var e APIError
	if err := json.Unmarshal(got, &e); err != nil || e.Message == "" {
		t.Errorf("bogus kernel: body %q is not a structured error", got)
	}
}

func TestSyncSubmitAndStatus(t *testing.T) {
	_, ts := newTestServer(t, 2)
	resp, body := postJob(t, ts, `{"workload": "VectorAdd", "physregs": 512}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad result body: %v", err)
	}
	if res.ID == "" || res.Cycles == 0 || res.StoresDigest == "" {
		t.Errorf("incomplete result: %s", body)
	}
	// Sync results are addressable by ID afterwards.
	get, err := http.Get(ts.URL + "/v1/jobs/" + res.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Errorf("GET after sync submit: status %d", get.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(get.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil || st.Result.Cycles != res.Cycles {
		t.Errorf("status = %+v, want done with matching result", st)
	}
}

func TestAsyncSubmit(t *testing.T) {
	_, ts := newTestServer(t, 2)
	resp, body := postJob(t, ts, `{"workload": "Reduction", "async": true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("no job ID in %s", body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		get, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(get.Body).Decode(&st)
		get.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 30s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" || st.Result == nil {
		t.Fatalf("final status %+v, want done", st)
	}
	// The same job submitted synchronously is a cache hit with an
	// identical encoding.
	resp, body = postJob(t, ts, `{"workload": "Reduction"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync re-submit status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, st.Result.JSON()) {
		t.Error("async result and sync re-submit disagree")
	}
}

func TestUnknownJobID(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetricsAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t, 1)
	for _, path := range []string{"/healthz", "/metrics", "/v1/workloads"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			t.Errorf("GET %s: status %d, decode err %v", path, resp.StatusCode, err)
		}
	}
}
