package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"regvirt/internal/faultinject"
)

// TestCacheFillPanicDoesNotPoison: a panicking fill must release its
// waiters with an error, evict the flight, and leave the key usable.
func TestCacheFillPanicDoesNotPoison(t *testing.T) {
	c := NewCache[string, int]()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Do")
			}
		}()
		c.Do(context.Background(), "k", func() (int, error) { panic("fill exploded") })
	}()
	if st := c.Stats(); st.Failures != 1 || st.Entries != 0 {
		t.Fatalf("after panicking fill: %+v, want 1 failure, 0 entries", st)
	}
	// The key retries cleanly.
	v, outcome, err := c.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || outcome != Miss {
		t.Fatalf("retry after panic: v=%d outcome=%v err=%v", v, outcome, err)
	}
}

// TestCacheFillPanicReleasesWaiters: goroutines deduped onto a
// panicking flight get an error, not a hang or a zero value.
func TestCacheFillPanicReleasesWaiters(t *testing.T) {
	c := NewCache[string, int]()
	enter := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do(context.Background(), "k", func() (int, error) {
			close(enter)
			<-release
			panic("fill exploded")
		})
	}()
	<-enter
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), "k", func() (int, error) { return 1, nil })
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters join the flight
	close(release)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters hung on a panicked flight")
	}
	for i, err := range errs {
		if err != nil && !strings.Contains(err.Error(), "panicked") {
			t.Errorf("waiter %d: err = %v, want nil (re-fill) or panicked-flight error", i, err)
		}
	}
}

// TestSubmitPanicBecomesPanicError: an injected worker panic reaches
// the submitter as a typed *PanicError; the same job retried succeeds
// (no cached failure), and the pool keeps serving.
func TestSubmitPanicBecomesPanicError(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SitePoolTask, Kind: faultinject.KindPanic, Every: 1, Times: 1,
	})
	p := NewPoolWith(Options{Workers: 2, Faults: inj})
	defer p.Close()
	job := Job{Workload: "VectorAdd"}
	_, err := p.Submit(context.Background(), job)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
	if pe.Stack == "" {
		t.Error("PanicError carries no stack")
	}
	res, err := p.Submit(context.Background(), job)
	if err != nil || res == nil || res.Cycles == 0 {
		t.Fatalf("retry after contained panic: res=%v err=%v", res, err)
	}
	if got := p.Metrics().PanicsRecovered; got == 0 {
		t.Error("panics_recovered not counted")
	}
	if st := p.results.Stats(); st.Entries != 1 {
		t.Errorf("result cache entries = %d, want 1 (no cached failure)", st.Entries)
	}
}

// TestExecPanicContained: Exec's contract matches Submit's.
func TestExecPanicContained(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	err := p.Exec(context.Background(), func() error { panic("figure code exploded") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
	// The worker survived.
	if err := p.Exec(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("Exec after contained panic: %v", err)
	}
}

// TestAsyncEviction: a tiny registry evicts finished records, counts
// them, and keeps their results addressable through the cache.
func TestAsyncEviction(t *testing.T) {
	p := NewPoolWith(Options{Workers: 2, AsyncMax: 2, AsyncTTL: -1})
	defer p.Close()
	jobs := []Job{
		{Workload: "VectorAdd"},
		{Workload: "VectorAdd", PhysRegs: 512},
		{Workload: "VectorAdd", PhysRegs: 768},
		{Workload: "VectorAdd", PhysRegs: 528},
	}
	var ids []string
	for _, j := range jobs {
		id, err := p.SubmitAsync(j)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		waitDone(t, p, id)
	}
	m := p.Metrics()
	if m.AsyncTracked > 2 {
		t.Errorf("async_tracked = %d, want <= 2", m.AsyncTracked)
	}
	if m.JobsEvicted < 2 {
		t.Errorf("jobs_evicted = %d, want >= 2", m.JobsEvicted)
	}
	// Every ID — evicted or not — still resolves to a done result.
	for i, id := range ids {
		st, ok := p.Status(id)
		if !ok || st.State != "done" || st.Result == nil {
			t.Errorf("job %d (%s): status %+v, want done via cache fallback", i, id, st)
		}
	}
}

func waitDone(t *testing.T, p *Pool, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := p.Status(id)
		if ok && st.State != "running" {
			if st.State != "done" {
				t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAsyncFailedRecordIsRetriable: resubmitting a failed async job
// re-runs it instead of pinning the failure forever.
func TestAsyncFailedRecordIsRetriable(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SitePoolTask, Kind: faultinject.KindError, Every: 1, Times: 1,
	})
	p := NewPoolWith(Options{Workers: 1, Faults: inj})
	defer p.Close()
	job := Job{Workload: "VectorAdd"}
	id, err := p.SubmitAsync(job)
	if err != nil {
		t.Fatal(err)
	}
	// First run fails on the injected fault.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := p.Status(id)
		if st.State == "failed" {
			break
		}
		if st.State == "done" {
			t.Fatal("first run succeeded; injected fault never fired")
		}
		if time.Now().After(deadline) {
			t.Fatal("first run never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	id2, err := p.SubmitAsync(job)
	if err != nil || id2 != id {
		t.Fatalf("resubmit: id %s err %v", id2, err)
	}
	waitDone(t, p, id)
}

// TestCloseDuringSubmissions: concurrent Close and Submit must never
// panic (send on closed channel); every submission either completes or
// reports ErrClosed/ctx errors.
func TestCloseDuringSubmissions(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, err := p.Submit(context.Background(), Job{Workload: "VectorAdd", PhysRegs: 512 + 16*(i%4)})
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("submit %d: unexpected error %v", i, err)
			}
		}(i)
	}
	close(start)
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
	// Closed pool refuses politely.
	if _, err := p.Submit(context.Background(), Job{Workload: "VectorAdd"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := p.SubmitAsync(Job{Workload: "VectorAdd"}); !errors.Is(err, ErrClosed) {
		t.Errorf("async submit after close: %v, want ErrClosed", err)
	}
}

// TestShedDisabled: negative ShedDepth restores the blocking behaviour
// (no OverloadError even with a deep queue).
func TestShedDisabled(t *testing.T) {
	p := NewPoolWith(Options{Workers: 1, ShedDepth: -1})
	defer p.Close()
	if p.Overloaded() {
		t.Error("fresh pool with shedding disabled reports overloaded")
	}
	if _, err := p.Submit(context.Background(), Job{Workload: "VectorAdd"}); err != nil {
		t.Fatal(err)
	}
}
