package sched

import (
	"errors"
	"sync"
	"testing"
)

// drain pops every dispatchable task with a single consumer (releasing
// each immediately) and returns the dispatch order by tenant.
func drain(t *testing.T, s *Scheduler) []string {
	t.Helper()
	var order []string
	for s.Queued() > 0 {
		task, ok := s.Next()
		if !ok {
			t.Fatal("Next returned closed with tasks still queued")
		}
		order = append(order, task.Tenant)
		s.Release(task)
	}
	return order
}

func enq(t *testing.T, s *Scheduler, tenant string, prio int) *Task {
	t.Helper()
	task := &Task{Tenant: tenant, Priority: prio, Do: func() {}}
	if err := s.Enqueue(task); err != nil {
		t.Fatalf("Enqueue(%s, %d): %v", tenant, prio, err)
	}
	return task
}

// TestStrideProportions: with weights 2:1 and deep backlogs on both
// queues, dispatch interleaves 2:1 — the fairness the weights promise —
// and the exact order is deterministic (ties break on tenant name).
func TestStrideProportions(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{
		"a": {Weight: 2},
		"b": {Weight: 1},
	}})
	for i := 0; i < 12; i++ {
		enq(t, s, "a", 0)
	}
	for i := 0; i < 6; i++ {
		enq(t, s, "b", 0)
	}
	order := drain(t, s)
	want := []string{"a", "b", "a", "a", "b", "a", "a", "b", "a"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("dispatch[%d] = %s, want %s (full order %v)", i, order[i], w, order)
		}
	}
	// Any 3-dispatch window while both queues are backlogged holds
	// exactly two a's.
	for i := 0; i+3 <= 12; i += 3 {
		a := 0
		for _, tn := range order[i : i+3] {
			if tn == "a" {
				a++
			}
		}
		if a != 2 {
			t.Fatalf("window %d: %d a-dispatches, want 2 (%v)", i, a, order)
		}
	}
}

// TestPriorityWithinTenant: higher priority jumps the tenant's queue;
// equal priorities keep arrival order.
func TestPriorityWithinTenant(t *testing.T) {
	s := New(Config{})
	first := enq(t, s, "default", 0)
	second := enq(t, s, "default", 0)
	urgent := enq(t, s, "default", 5)
	got := []*Task{}
	for i := 0; i < 3; i++ {
		task, _ := s.Next()
		got = append(got, task)
		s.Release(task)
	}
	if got[0] != urgent || got[1] != first || got[2] != second {
		t.Fatalf("dispatch order wrong: got %v want [urgent first second]", got)
	}
}

// TestIdleTenantCannotBankCredit: a tenant idle through many of
// another's dispatches re-joins at the current virtual time — it does
// not get a catch-up burst for the time it wasn't queuing.
func TestIdleTenantCannotBankCredit(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{
		"busy": {Weight: 1}, "idle": {Weight: 1},
	}})
	for i := 0; i < 8; i++ {
		enq(t, s, "busy", 0)
	}
	for i := 0; i < 4; i++ { // burn half the busy backlog while idle is away
		task, _ := s.Next()
		if task.Tenant != "busy" {
			t.Fatalf("dispatch %d: %s, want busy", i, task.Tenant)
		}
		s.Release(task)
	}
	for i := 0; i < 4; i++ {
		enq(t, s, "idle", 0)
	}
	// From here the two tenants alternate; idle must not win 4 in a row.
	order := drain(t, s)
	for i := 0; i+2 <= len(order); i += 2 {
		if order[i] == order[i+1] {
			t.Fatalf("window %d not interleaved: %v", i, order)
		}
	}
}

// TestQuotaMaxQueued: the tenant's MaxQueued rejects with a typed
// *QuotaError carrying the observed depth; other tenants are unaffected.
func TestQuotaMaxQueued(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{"q": {Weight: 1, MaxQueued: 2}}})
	enq(t, s, "q", 0)
	enq(t, s, "q", 0)
	err := s.Enqueue(&Task{Tenant: "q", Do: func() {}})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "q" || qe.Queued != 2 || qe.Limit != 2 {
		t.Fatalf("third enqueue: %v, want QuotaError{q,2,2}", err)
	}
	enq(t, s, "other", 0) // unlimited default config
	// Exempt re-enqueues (preempted jobs) bypass the quota.
	if err := s.Enqueue(&Task{Tenant: "q", Exempt: true, Do: func() {}}); err != nil {
		t.Fatalf("exempt enqueue: %v", err)
	}
}

// TestAdmissionStrictAndPriority: strict mode 403s unknown tenants (but
// always admits "default"), and MaxPriority caps what a tenant may ask.
func TestAdmissionStrictAndPriority(t *testing.T) {
	s := New(Config{
		Strict:  true,
		Tenants: map[string]TenantConfig{"gold": {Weight: 4, MaxPriority: 10}},
	})
	var ae *AdmissionError
	if err := s.Admit("stranger", 0); !errors.As(err, &ae) {
		t.Fatalf("strict unknown tenant: %v, want AdmissionError", err)
	}
	if err := s.Admit(DefaultTenant, 0); err != nil {
		t.Fatalf("default tenant must always admit: %v", err)
	}
	if err := s.Admit("gold", 11); !errors.As(err, &ae) {
		t.Fatalf("over-priority admit: %v, want AdmissionError", err)
	}
	if err := s.Admit("gold", 10); err != nil {
		t.Fatalf("at-cap priority: %v", err)
	}
}

// TestMaxRunningCapsDispatch: a tenant at MaxRunning keeps its backlog
// queued while other tenants dispatch past it.
func TestMaxRunningCapsDispatch(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{"capped": {Weight: 8, MaxRunning: 1}}})
	enq(t, s, "capped", 0)
	enq(t, s, "capped", 0)
	enq(t, s, "free", 0)

	first, _ := s.Next() // capped's first task occupies its only slot
	if first.Tenant != "capped" {
		t.Fatalf("first dispatch %s, want capped (weight 8)", first.Tenant)
	}
	second, _ := s.Next()
	if second.Tenant != "free" {
		t.Fatalf("second dispatch %s, want free (capped at MaxRunning)", second.Tenant)
	}
	s.Release(first) // frees the slot: capped's second task dispatches
	third, _ := s.Next()
	if third.Tenant != "capped" {
		t.Fatalf("post-release dispatch %s, want capped", third.Tenant)
	}
	s.Release(second)
	s.Release(third)
}

// TestGlobalCapacity: the scheduler-wide bound fails with ErrSaturated
// (backpressure, 429) rather than a tenant quota (policy, 403).
func TestGlobalCapacity(t *testing.T) {
	s := New(Config{Capacity: 2})
	enq(t, s, "a", 0)
	enq(t, s, "b", 0)
	if err := s.Enqueue(&Task{Tenant: "c", Do: func() {}}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over capacity: %v, want ErrSaturated", err)
	}
}

// TestCloseDrains: Close stops admission but queued tasks still
// dispatch; Next reports closed only once drained.
func TestCloseDrains(t *testing.T) {
	s := New(Config{})
	enq(t, s, "a", 0)
	enq(t, s, "a", 0)
	s.Close()
	if err := s.Enqueue(&Task{Tenant: "a", Do: func() {}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	for i := 0; i < 2; i++ {
		task, ok := s.Next()
		if !ok {
			t.Fatalf("Next closed with %d tasks still queued", 2-i)
		}
		s.Release(task)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next returned a task from a drained closed scheduler")
	}
}

// TestFIFOPolicyIgnoresWeightsAndPriorities: the legacy order is pure
// arrival order, even with skewed weights and priorities.
func TestFIFOPolicyIgnoresWeightsAndPriorities(t *testing.T) {
	s := New(Config{Policy: PolicyFIFO, Tenants: map[string]TenantConfig{
		"heavy": {Weight: 100},
	}})
	a := enq(t, s, "light", 0)
	b := enq(t, s, "heavy", 50)
	c := enq(t, s, "light", 99)
	for i, want := range []*Task{a, b, c} {
		task, _ := s.Next()
		if task != want {
			t.Fatalf("fifo dispatch %d: got tenant %s prio %d, want arrival order", i, task.Tenant, task.Priority)
		}
		s.Release(task)
	}
}

// TestShare: the share denominator counts only active tenants, so a
// quiet tenant's Retry-After hint reflects its own queue, not the
// flooding tenant's backlog.
func TestShare(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{
		"flood": {Weight: 1}, "quiet": {Weight: 1}, "sleeper": {Weight: 6},
	}})
	for i := 0; i < 10; i++ {
		enq(t, s, "flood", 0)
	}
	// sleeper is inactive: quiet's share is 1/(1+1), not 1/8.
	queued, share := s.Share("quiet")
	if queued != 0 || share != 0.5 {
		t.Fatalf("Share(quiet) = %d, %v; want 0, 0.5", queued, share)
	}
	queued, _ = s.Share("flood")
	if queued != 10 {
		t.Fatalf("Share(flood) queued = %d, want 10", queued)
	}
}

// TestBlockingNextWakesOnEnqueue: a consumer blocked in Next is woken
// by a later Enqueue (no lost wakeups).
func TestBlockingNextWakesOnEnqueue(t *testing.T) {
	s := New(Config{})
	var wg sync.WaitGroup
	wg.Add(1)
	got := make(chan *Task, 1)
	go func() {
		defer wg.Done()
		task, ok := s.Next()
		if ok {
			got <- task
			s.Release(task)
		}
	}()
	enq(t, s, "late", 3)
	task := <-got
	if task.Tenant != "late" {
		t.Fatalf("woken consumer got tenant %s", task.Tenant)
	}
	s.Close()
	wg.Wait()
}

// TestSnapshotShape: configured tenants appear before traffic, stats
// sorted by name, gauges live.
func TestSnapshotShape(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{
		"b": {Weight: 2, MaxQueued: 9}, "a": {Weight: 1},
	}})
	enq(t, s, "b", 0)
	stats := s.Snapshot()
	if len(stats) != 3 { // a, b, default
		t.Fatalf("snapshot has %d queues, want 3: %+v", len(stats), stats)
	}
	if stats[0].Tenant != "a" || stats[1].Tenant != "b" || stats[2].Tenant != DefaultTenant {
		t.Fatalf("snapshot not sorted: %+v", stats)
	}
	if stats[1].Queued != 1 || stats[1].Weight != 2 || stats[1].MaxQueued != 9 {
		t.Fatalf("b stats wrong: %+v", stats[1])
	}
	task, _ := s.Next()
	if st := s.Snapshot(); st[1].Running != 1 || st[1].Dispatched != 1 {
		t.Fatalf("running gauge wrong after dispatch: %+v", st[1])
	}
	s.Release(task)
}

// TestTenantTableBounded: non-strict mode cannot be grown without
// bound by hostile tenant names.
func TestTenantTableBounded(t *testing.T) {
	s := New(Config{MaxTenants: 3}) // default queue occupies one slot
	if err := s.Admit("t1", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit("t2", 0); err != nil {
		t.Fatal(err)
	}
	var ae *AdmissionError
	if err := s.Admit("t3", 0); !errors.As(err, &ae) {
		t.Fatalf("over MaxTenants: %v, want AdmissionError", err)
	}
	// Known tenants still admit.
	if err := s.Admit("t1", 0); err != nil {
		t.Fatal(err)
	}
}
