// Package sched is the multi-tenant fair-share scheduler behind the
// jobs pool: per-tenant queues with stride-scheduled weighted sharing,
// job priorities within each queue, and Volcano-style admission quotas
// (max queued, max running, max priority) validated with typed errors
// so the HTTP layer can answer 429 (capacity, retry later) and 403
// (policy, do not retry) distinctly.
//
// The scheduler replaces a single FIFO channel: workers call Next to
// block for the next dispatchable task, and Release when it finishes.
// Dispatch order interleaves tenants in proportion to their weights
// (stride scheduling: each queue carries a pass value advanced by
// stride = K/weight per dispatch; the minimum pass goes next), so one
// tenant's burst can delay its own backlog but never starve another
// tenant's trickle. Within a tenant, higher Priority goes first and
// equal priorities keep arrival order. Everything is deterministic for
// a serialized caller: ties break on the tenant name.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Policy selects the cross-tenant dispatch order.
type Policy string

// Dispatch policies.
const (
	// PolicyFair is stride scheduling over tenant weights with
	// priorities inside each queue — the default.
	PolicyFair Policy = "fair"
	// PolicyFIFO is the legacy order: global arrival order, weights and
	// priorities ignored (quotas still apply). It exists so the old and
	// new behaviour can be A/B-compared on live traffic.
	PolicyFIFO Policy = "fifo"
)

// TenantConfig is one tenant's share and quota settings. The zero
// value means "weight 1, no quotas".
type TenantConfig struct {
	// Weight is the tenant's share of dispatch bandwidth relative to
	// the other active tenants (minimum 1).
	Weight int `json:"weight"`
	// MaxQueued caps the tenant's queued (not yet dispatched) tasks;
	// enqueueing beyond it fails with *QuotaError (HTTP 403). 0 = no cap.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning caps how many of the tenant's tasks occupy workers at
	// once; excess stays queued while other tenants dispatch. 0 = no cap.
	MaxRunning int `json:"max_running,omitempty"`
	// MaxPriority caps the Priority a tenant may request; higher is
	// rejected with *AdmissionError (HTTP 403). 0 = no cap.
	MaxPriority int `json:"max_priority,omitempty"`
}

// Config configures a Scheduler. The zero value is a permissive
// fair-share scheduler: unknown tenants are admitted with the Default
// (weight-1) config and nothing but Capacity bounds the queues.
type Config struct {
	// Policy is the dispatch order (empty = PolicyFair).
	Policy Policy
	// Tenants is the explicitly configured tenant set.
	Tenants map[string]TenantConfig
	// Default is the config applied to tenants absent from Tenants
	// (zero value = weight 1, no quotas).
	Default TenantConfig
	// Strict rejects tenants absent from Tenants with *AdmissionError
	// instead of admitting them under Default. The "default" tenant
	// (requests that name no tenant) is always admitted.
	Strict bool
	// Capacity bounds the total queued tasks across all tenants;
	// enqueueing beyond it fails with ErrSaturated. 0 = unbounded.
	Capacity int
	// MaxTenants bounds the tenant table in non-strict mode so hostile
	// tenant names cannot grow it without bound (0 = default 1024).
	// Beyond it, tasks for never-seen tenants fail with *AdmissionError.
	MaxTenants int
}

// DefaultTenant is the queue for requests that name no tenant.
const DefaultTenant = "default"

// defaultMaxTenants bounds the tenant table when Config.MaxTenants is 0.
const defaultMaxTenants = 1024

// strideScale is the stride numerator: stride = strideScale / weight.
// Large enough that weight ratios up to 2^16 stay exact.
const strideScale = 1 << 20

// maxWeight clamps configured weights so strides never truncate to 0.
const maxWeight = 1 << 16

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("sched: scheduler is closed")

// ErrSaturated is returned by Enqueue when the global Capacity is
// reached — backpressure, not policy; callers map it to 429.
var ErrSaturated = errors.New("sched: queue capacity reached")

// AdmissionError is a policy rejection: the task is not allowed as
// specified no matter how long the caller waits (unknown tenant under
// Strict, priority beyond the tenant's cap, tenant table full). The
// HTTP layer maps it to 403 and clients must not retry unchanged.
type AdmissionError struct {
	Tenant string
	Reason string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sched: tenant %q not admitted: %s", e.Tenant, e.Reason)
}

// QuotaError is a per-tenant quota rejection: the tenant is at its
// MaxQueued limit. The HTTP layer maps it to 403 (kind "quota") so
// clients fail fast instead of backing off forever; RetryAfter, filled
// by the pool from the tenant's own queue depth and weight, is an
// honest hint for callers that choose to come back.
type QuotaError struct {
	Tenant string
	Queued int
	Limit  int
	// RetryAfter is the estimated drain time of the tenant's queue;
	// zero until the pool fills it in.
	RetryAfter int64 // milliseconds; plain int so sched stays time-free
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: tenant %q over quota (%d queued, limit %d)", e.Tenant, e.Queued, e.Limit)
}

// Task is one schedulable unit.
type Task struct {
	// Tenant is the queue the task belongs to (required).
	Tenant string
	// Priority orders tasks within a tenant's queue (higher first;
	// equal priorities keep arrival order).
	Priority int
	// Do is the payload a worker executes.
	Do func()
	// Exempt bypasses admission and quota checks — reserved for work
	// the pool itself re-enqueues (preempted jobs resuming, Exec
	// plumbing) whose slot was already admitted once.
	Exempt bool

	seq uint64
}

// tenantQ is one tenant's queue plus its stride state.
type tenantQ struct {
	name string
	cfg  TenantConfig

	pass   uint64
	stride uint64

	tasks      taskHeap
	running    int
	dispatched uint64
}

// Scheduler is the concurrency-safe multi-queue. See the package doc.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	cfg     Config
	tenants map[string]*tenantQ
	fifo    []*Task // PolicyFIFO arrival order (holds the same tasks)

	queued int
	seq    uint64
	vtime  uint64 // pass of the last dispatched queue (pre-advance)
	closed bool
}

// New builds a scheduler. Configured tenants exist from the start (so
// /v1/queues shows them before traffic arrives); others join on first
// use, bounded by MaxTenants.
func New(cfg Config) *Scheduler {
	if cfg.Policy == "" {
		cfg.Policy = PolicyFair
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = defaultMaxTenants
	}
	s := &Scheduler{cfg: cfg, tenants: map[string]*tenantQ{}}
	s.cond = sync.NewCond(&s.mu)
	for name, tc := range cfg.Tenants {
		s.tenants[name] = newTenantQ(name, tc)
	}
	if _, ok := s.tenants[DefaultTenant]; !ok {
		s.tenants[DefaultTenant] = newTenantQ(DefaultTenant, cfg.Default)
	}
	return s
}

func newTenantQ(name string, tc TenantConfig) *tenantQ {
	w := tc.Weight
	if w < 1 {
		w = 1
	}
	if w > maxWeight {
		w = maxWeight
	}
	tc.Weight = w
	return &tenantQ{name: name, cfg: tc, stride: strideScale / uint64(w)}
}

// Admit validates tenant and priority against policy without touching
// any queue — the pool runs it before cache lookup so a disallowed
// request is refused even when its result is already cached.
func (s *Scheduler) Admit(tenant string, priority int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.admitLocked(tenant, priority)
	return err
}

// admitLocked resolves (creating if allowed) the tenant's queue.
func (s *Scheduler) admitLocked(tenant string, priority int) (*tenantQ, error) {
	tn, ok := s.tenants[tenant]
	if !ok {
		if s.cfg.Strict && tenant != DefaultTenant {
			return nil, &AdmissionError{Tenant: tenant, Reason: "not in the configured tenant set"}
		}
		if len(s.tenants) >= s.cfg.MaxTenants {
			return nil, &AdmissionError{Tenant: tenant, Reason: "tenant table full"}
		}
		tn = newTenantQ(tenant, s.cfg.Default)
		s.tenants[tenant] = tn
	}
	if tn.cfg.MaxPriority > 0 && priority > tn.cfg.MaxPriority {
		return nil, &AdmissionError{
			Tenant: tenant,
			Reason: fmt.Sprintf("priority %d above the tenant cap %d", priority, tn.cfg.MaxPriority),
		}
	}
	return tn, nil
}

// Enqueue admits and queues a task. Typed failures: *AdmissionError
// (policy — 403), *QuotaError (tenant MaxQueued — 403 with a drain
// hint), ErrSaturated (global capacity — 429), ErrClosed.
func (s *Scheduler) Enqueue(t *Task) error {
	if t.Tenant == "" {
		t.Tenant = DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tn, err := s.admitLocked(t.Tenant, t.Priority)
	if err != nil {
		if !t.Exempt {
			return err
		}
		if tn == nil { // exempt task for an inadmissible tenant: default queue
			tn = s.tenants[DefaultTenant]
		}
	}
	t.Tenant = tn.name // Release accounts against the queue that ran it
	if !t.Exempt {
		if s.cfg.Capacity > 0 && s.queued >= s.cfg.Capacity {
			return ErrSaturated
		}
		if tn.cfg.MaxQueued > 0 && tn.tasks.Len() >= tn.cfg.MaxQueued {
			return &QuotaError{Tenant: tn.name, Queued: tn.tasks.Len(), Limit: tn.cfg.MaxQueued}
		}
	}
	// A queue going empty→non-empty re-joins at the current virtual
	// time so an idle tenant cannot bank credit and then monopolize.
	if tn.tasks.Len() == 0 && tn.pass < s.vtime {
		tn.pass = s.vtime
	}
	s.seq++
	t.seq = s.seq
	heap.Push(&tn.tasks, t)
	if s.cfg.Policy == PolicyFIFO {
		s.fifo = append(s.fifo, t)
	}
	s.queued++
	s.cond.Broadcast()
	return nil
}

// Next blocks until a task is dispatchable (or Close has been called
// and every queue is drained, returning ok=false). It accounts the
// task as running against its tenant; the worker must call Release
// when the task finishes.
func (s *Scheduler) Next() (*Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.popLocked(); t != nil {
			return t, true
		}
		if s.closed && s.queued == 0 {
			return nil, false
		}
		s.cond.Wait()
	}
}

// popLocked dequeues the next dispatchable task, or nil.
func (s *Scheduler) popLocked() *Task {
	if s.cfg.Policy == PolicyFIFO {
		return s.popFIFOLocked()
	}
	var best *tenantQ
	for _, tn := range s.tenants {
		if tn.tasks.Len() == 0 || !tn.canRunLocked() {
			continue
		}
		if best == nil || tn.pass < best.pass || (tn.pass == best.pass && tn.name < best.name) {
			best = tn
		}
	}
	if best == nil {
		return nil
	}
	t := heap.Pop(&best.tasks).(*Task)
	s.vtime = best.pass
	best.pass += best.stride
	best.running++
	best.dispatched++
	s.queued--
	return t
}

// popFIFOLocked serves global arrival order, skipping (not blocking
// behind) tenants at their running cap.
func (s *Scheduler) popFIFOLocked() *Task {
	for i, t := range s.fifo {
		tn := s.tenants[t.Tenant]
		if !tn.canRunLocked() {
			continue
		}
		s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
		// Keep the heap consistent: remove the same task.
		for j, ht := range tn.tasks {
			if ht == t {
				heap.Remove(&tn.tasks, j)
				break
			}
		}
		tn.running++
		tn.dispatched++
		s.queued--
		return t
	}
	return nil
}

func (tn *tenantQ) canRunLocked() bool {
	return tn.cfg.MaxRunning <= 0 || tn.running < tn.cfg.MaxRunning
}

// Release returns a task's worker slot to its tenant. Call exactly
// once per task returned by Next.
func (s *Scheduler) Release(t *Task) {
	s.mu.Lock()
	if tn, ok := s.tenants[t.Tenant]; ok && tn.running > 0 {
		tn.running--
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close stops admission. Already-queued tasks keep dispatching until
// the queues drain, after which Next returns ok=false.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Queued is the total queued-task gauge.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Share reports a tenant's queued count and its weight share of the
// currently active tenants (tenants with queued or running work, the
// asking tenant included). The pool's Retry-After estimate uses it so
// a quiet tenant shed during another tenant's flood gets an honest,
// short hint instead of one scaled to the global backlog.
func (s *Scheduler) Share(tenant string) (queued int, share float64) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	self := s.tenants[tenant]
	selfWeight := s.cfg.Default.Weight
	if self != nil {
		queued = self.tasks.Len()
		selfWeight = self.cfg.Weight
	}
	if selfWeight < 1 {
		selfWeight = 1
	}
	total := 0
	for _, tn := range s.tenants {
		if tn != self && tn.tasks.Len() == 0 && tn.running == 0 {
			continue
		}
		total += tn.cfg.Weight
	}
	if self == nil {
		total += selfWeight
	}
	if total <= 0 {
		return queued, 1
	}
	return queued, float64(selfWeight) / float64(total)
}

// QueueStat is one tenant's point-in-time scheduler view.
type QueueStat struct {
	Tenant      string `json:"tenant"`
	Weight      int    `json:"weight"`
	MaxQueued   int    `json:"max_queued,omitempty"`
	MaxRunning  int    `json:"max_running,omitempty"`
	MaxPriority int    `json:"max_priority,omitempty"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	Dispatched  uint64 `json:"dispatched"`
}

// Snapshot returns every tenant's stats, sorted by tenant name.
func (s *Scheduler) Snapshot() []QueueStat {
	s.mu.Lock()
	stats := make([]QueueStat, 0, len(s.tenants))
	for _, tn := range s.tenants {
		stats = append(stats, QueueStat{
			Tenant:      tn.name,
			Weight:      tn.cfg.Weight,
			MaxQueued:   tn.cfg.MaxQueued,
			MaxRunning:  tn.cfg.MaxRunning,
			MaxPriority: tn.cfg.MaxPriority,
			Queued:      tn.tasks.Len(),
			Running:     tn.running,
			Dispatched:  tn.dispatched,
		})
	}
	s.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Tenant < stats[j].Tenant })
	return stats
}

// Policy reports the configured dispatch policy.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Strict reports whether unknown tenants are rejected.
func (s *Scheduler) Strict() bool { return s.cfg.Strict }

// taskHeap orders a tenant's tasks: higher Priority first, then
// arrival order (lower seq).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
