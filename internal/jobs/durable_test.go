package jobs_test

// Pool-level durability tests: the journal/result/checkpoint store
// wired into a live pool. These are in-process versions of what
// cmd/regvd's recovery harness does with SIGKILL — the pool is
// "killed" by Interrupt+Close and "restarted" by opening a fresh pool
// on the same data directory.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"regvirt/internal/jobs"
	"regvirt/internal/jobs/store"
)

// spinKernel loops long enough that a test can reliably interrupt it
// mid-flight (~50k iterations per warp).
const spinKernel = `
.kernel spin
.reg 8
    s2r  r0, %tid.x
    movi r4, 0
    movi r5, 0
body:
    iadd r5, r5, r0
    iadd r4, r4, 1
    isetp.lt p0, r4, 50000
@p0 bra body
    shl  r7, r0, 2
    st.global [r7+0], r5
    exit
`

func openStoreT(t *testing.T, dir string) (*store.Store, []jobs.RecoveredJob) {
	t.Helper()
	st, recovered, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, recovered
}

// TestDurableResultSurvivesRestart: a result computed by one pool life
// is served from disk by the next — without re-simulating — and stays
// addressable by ID.
func TestDurableResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	job := jobs.Job{Workload: "VectorAdd", PhysRegs: 512}

	st, _ := openStoreT(t, dir)
	p := jobs.NewPoolWith(jobs.Options{Workers: 2, Store: st})
	first, err := p.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if m := p.Metrics(); m.ResultsPersisted != 1 {
		t.Fatalf("results_persisted = %d, want 1", m.ResultsPersisted)
	}
	p.Close()
	st.Close()

	st2, recovered := openStoreT(t, dir)
	defer st2.Close()
	if len(recovered) != 1 || recovered[0].State != "done" {
		t.Fatalf("recovered = %+v, want one done job", recovered)
	}
	p2 := jobs.NewPoolWith(jobs.Options{Workers: 2, Store: st2})
	defer p2.Close()

	// Addressable by ID before any submission (the Status disk tier).
	if stt, ok := p2.Status(job.Key()); !ok || stt.State != "done" {
		t.Fatalf("Status(%s) = %+v, %v after restart", job.Key(), stt, ok)
	}
	// Re-submission is a disk hit, not a re-simulation.
	again, err := p2.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.JSON(), again.JSON()) {
		t.Fatal("restarted pool served a different result")
	}
	if m := p2.Metrics(); m.DiskHits != 1 {
		t.Fatalf("disk_hits = %d, want 1", m.DiskHits)
	}
}

// TestInterruptCheckpointResume is the graceful-drain contract: an
// interrupted pool checkpoints its in-flight job; a pool restarted on
// the same directory resumes it and finishes with a result
// byte-identical to a never-interrupted run.
func TestInterruptCheckpointResume(t *testing.T) {
	job := jobs.Job{Kernel: spinKernel, GridCTAs: 2, ThreadsPerCTA: 64, ConcCTAs: 2}
	id := job.Key()

	control, err := jobs.Execute(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, _ := openStoreT(t, dir)
	p := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st, CheckpointEvery: 2000})
	if _, err := p.SubmitAsync(job); err != nil {
		t.Fatal(err)
	}
	// Let it run until at least one periodic checkpoint is on disk,
	// then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for p.Metrics().CheckpointsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Interrupt()
	p.Close()
	if got := st.PendingCount(); got != 1 {
		t.Fatalf("pending after interrupt = %d, want 1 (the job must stay journaled)", got)
	}
	st.Close()

	// "Restart": replay the journal, resume from the checkpoint.
	st2, recovered := openStoreT(t, dir)
	defer st2.Close()
	if len(recovered) != 1 || recovered[0].State != "pending" {
		t.Fatalf("recovered = %+v, want the interrupted job pending", recovered)
	}
	if _, ok := st2.LoadCheckpoint(id); !ok {
		t.Fatal("interrupted job left no checkpoint")
	}
	p2 := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st2, CheckpointEvery: 2000})
	defer p2.Close()
	if resumed := p2.Restore(recovered); resumed != 1 {
		t.Fatalf("Restore resumed %d jobs, want 1", resumed)
	}
	if m := p2.Metrics(); m.JournalReplayed != 1 {
		t.Fatalf("journal_replayed = %d, want 1", m.JournalReplayed)
	}

	var final jobs.JobStatus
	deadline = time.Now().Add(60 * time.Second)
	for {
		stt, ok := p2.Status(id)
		if ok && stt.State != "running" {
			final = stt
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job did not finish (status %+v, %v)", stt, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("resumed job ended %q (%s)", final.State, final.Error)
	}
	if !bytes.Equal(control.JSON(), final.Result.JSON()) {
		t.Fatal("resumed result differs from the uninterrupted control run")
	}
	// The resumed result is durable too: the journal entry is closed.
	if got := st2.PendingCount(); got != 0 {
		t.Fatalf("pending after resume = %d, want 0", got)
	}
}

// TestDeterministicFailureNotResumed: a job that fails the same way
// every time is journaled as failed and must not be re-enqueued by a
// restart.
func TestDeterministicFailureNotResumed(t *testing.T) {
	dir := t.TempDir()
	// An unparseable inline kernel fails deterministically.
	job := jobs.Job{Kernel: "this is not assembly"}

	st, _ := openStoreT(t, dir)
	p := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st})
	if _, err := p.Submit(context.Background(), job); err == nil {
		t.Fatal("broken kernel succeeded")
	}
	p.Close()
	st.Close()

	st2, recovered := openStoreT(t, dir)
	defer st2.Close()
	if len(recovered) != 1 || recovered[0].State != "failed" {
		t.Fatalf("recovered = %+v, want one failed job", recovered)
	}
	p2 := jobs.NewPoolWith(jobs.Options{Workers: 1, Store: st2})
	defer p2.Close()
	if resumed := p2.Restore(recovered); resumed != 0 {
		t.Fatalf("Restore re-enqueued %d failed jobs", resumed)
	}
	if stt, ok := p2.Status(job.Key()); !ok || stt.State != "failed" {
		t.Fatalf("Status = %+v, %v, want the failure visible", stt, ok)
	}
}
