// Package jobs is the simulation job-execution subsystem: a Job spec
// naming a workload (or inline kernel assembly) plus the register-file
// configuration to simulate it under, a bounded worker pool with
// per-job deadlines, a content-addressed result cache with
// singleflight deduplication, and an HTTP/JSON surface (cmd/regvd).
// The same pool and cache back cmd/experiments -j and the memoizing
// experiments.Runner, so every entry point shares one notion of "this
// configuration has already been simulated".
package jobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Outcome classifies how a Cache.Do call was satisfied.
type Outcome int

// Do outcomes.
const (
	// Miss means this call executed the fill function.
	Miss Outcome = iota
	// Hit means a previously completed value was reused.
	Hit
	// Deduped means the call joined a computation already in flight.
	Deduped
)

// Cache is a concurrency-safe memoization cache with singleflight
// deduplication: concurrent Do calls for the same key run the fill
// function exactly once and share its value. Completed values are kept
// forever (the simulation configuration space is bounded and results
// are small next to the cost of recomputing them); failures are never
// cached, so a later call retries. Cached values are shared by
// reference and must be treated as immutable by every caller.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flight[V]

	hits, misses, dedups, failures atomic.Uint64
}

type flight[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{entries: make(map[K]*flight[V])}
}

// Do returns the cached value for key, joining an in-flight fill if one
// is running, or executing fn itself otherwise. Waiters abandon the
// flight when ctx ends (the computation itself keeps running for the
// other callers; it is the filler's own fn that must observe
// cancellation if the fill should stop).
func (c *Cache[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (V, Outcome, error) {
	c.mu.Lock()
	if f, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done: // already complete
			c.hits.Add(1)
			return f.val, Hit, f.err
		default:
		}
		c.dedups.Add(1)
		select {
		case <-f.done:
			return f.val, Deduped, f.err
		case <-ctx.Done():
			var zero V
			return zero, Deduped, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.entries[key] = f
	c.mu.Unlock()
	c.misses.Add(1)

	// The eviction and the done-close run in a defer so a panicking fn
	// cannot poison the cache: the flight is failed and evicted before
	// the panic unwinds, waiters are released with an error (never a
	// zero value), and a later Do retries. The panic itself keeps
	// propagating to the caller's containment layer.
	completed := false
	defer func() {
		if !completed {
			f.err = fmt.Errorf("jobs: cache fill for %v panicked", key)
		}
		if f.err != nil {
			c.failures.Add(1)
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
		}
		close(f.done)
	}()
	f.val, f.err = fn()
	completed = true
	return f.val, Miss, f.err
}

// Get returns the completed value for key, if any. In-flight fills do
// not count: Get never blocks.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	f, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		select {
		case <-f.done:
			if f.err == nil {
				return f.val, true
			}
		default:
		}
	}
	var zero V
	return zero, false
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Dedups   uint64 `json:"dedups"`
	Failures uint64 `json:"failures"`
	Entries  int    `json:"entries"`
}

// Stats snapshots the cache counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Dedups:   c.dedups.Load(),
		Failures: c.failures.Load(),
		Entries:  n,
	}
}
