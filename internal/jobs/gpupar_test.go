package jobs

import (
	"bytes"
	"context"
	"testing"
)

// GPUParallel is a wall-clock knob: the two-phase device engine commits
// shared state in fixed SM order, so results are byte-identical at any
// worker count. The jobs layer therefore must (a) exclude gpu_par from
// the content hash, (b) deduplicate submissions differing only in it,
// and (c) reject settings the engine cannot honor.

func TestGPUParallelNotInKey(t *testing.T) {
	base := Job{Workload: "VectorAdd", WholeGPU: true}
	for _, par := range []int{1, 4, 16} {
		withPar := Job{Workload: "VectorAdd", WholeGPU: true, GPUParallel: par}
		if base.Key() != withPar.Key() {
			t.Errorf("gpu_par=%d changed the content key", par)
		}
	}
}

func TestGPUParallelValidate(t *testing.T) {
	bad := []Job{
		{Workload: "VectorAdd", WholeGPU: true, GPUParallel: -1},
		{Workload: "VectorAdd", GPUParallel: 4}, // parallelism without "gpu": true
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d accepted: %+v", i, j)
		}
	}
	good := []Job{
		{Workload: "VectorAdd", WholeGPU: true, GPUParallel: 8},
		{Workload: "VectorAdd", GPUParallel: 1}, // 1 == sequential, harmless anywhere
	}
	for i, j := range good {
		if err := j.Validate(); err != nil {
			t.Errorf("good job %d rejected: %v", i, err)
		}
	}
}

// TestGPUParallelDedup submits the same whole-GPU job under differing
// gpu_par settings and requires one underlying simulation, one shared
// ID, and byte-identical results.
func TestGPUParallelDedup(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	jobs := []Job{
		{Workload: "VectorAdd", WholeGPU: true},
		{Workload: "VectorAdd", WholeGPU: true, GPUParallel: 2},
		{Workload: "VectorAdd", WholeGPU: true, GPUParallel: 8},
	}
	var results []*Result
	for _, j := range jobs {
		res, err := p.Submit(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].ID != results[0].ID {
			t.Errorf("job %d got ID %s, want %s", i, results[i].ID, results[0].ID)
		}
		if !bytes.Equal(results[i].JSON(), results[0].JSON()) {
			t.Errorf("job %d result differs from job 0", i)
		}
	}
	// Sequential submissions land as cache hits; concurrent ones would
	// join the flight as dedups. Either way: exactly one simulation ran.
	if m := p.Metrics(); m.Executed != 1 || m.CacheHits+m.Deduped != uint64(len(jobs)-1) {
		t.Errorf("executed/hits/deduped = %d/%d/%d, want 1 execution and %d shared",
			m.Executed, m.CacheHits, m.Deduped, len(jobs)-1)
	}
}
