package jobs

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"regvirt/internal/sim"
)

// ErrClosed is returned by submissions against a closed (or closing)
// pool. The HTTP layer maps it to 503 so clients back off and retry
// against a healthy replica instead of treating shutdown as a bug.
var ErrClosed = errors.New("jobs: pool is closed")

// PanicError is a panic recovered by the containment layer — a pool
// worker, Execute, or the singleflight fill path — converted into an
// ordinary error so one faulting simulation cannot take down the
// daemon. The failed flight is evicted (failures are never cached), so
// a retry re-simulates cleanly.
type PanicError struct {
	// Val is the value the panic was raised with.
	Val any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("jobs: recovered panic: %v", e.Val)
}

// toPanicError wraps a recovered value, preserving an already-wrapped
// PanicError so nested containment layers do not stack.
func toPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Val: v, Stack: string(debug.Stack())}
}

// OverloadError is returned when admission control sheds a submission
// instead of letting it wait unboundedly: the task queue is at the
// shed depth, or the async registry is full of running jobs. The HTTP
// layer maps it to 429 with a Retry-After header; jobs are
// content-addressed and idempotent, so retrying after the hint is
// always safe.
type OverloadError struct {
	// Tenant is the fair-share queue the shed submission belonged to.
	Tenant string
	// QueueDepth is the queued-task count observed at shed time.
	QueueDepth int
	// RetryAfter is the server's estimate of when capacity frees up for
	// this tenant: its own queue depth over its weighted share of the
	// workers — a quiet tenant shed during another tenant's flood gets
	// a short, honest hint.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("jobs: overloaded (tenant %s, queue depth %d), retry after %s", e.Tenant, e.QueueDepth, e.RetryAfter)
}

// DiskFullError is returned by the durability layer when a journal
// append or result persist fails with ENOSPC. It is transient by
// design: the job is not marked failed (content-addressed retries are
// idempotent), and the HTTP layer maps it to 503 + Retry-After so the
// daemon degrades to read-only — cached results, status, and metrics
// keep serving while new work is refused until space frees up.
type DiskFullError struct {
	// Op names the write that hit ENOSPC ("journal append", "result
	// persist", "checkpoint persist").
	Op string
	// Err is the underlying filesystem error.
	Err error
}

func (e *DiskFullError) Error() string {
	return fmt.Sprintf("jobs: disk full during %s: %v", e.Op, e.Err)
}

func (e *DiskFullError) Unwrap() error { return e.Err }

// APIError is the structured JSON error body every service failure
// returns (and the error type the client package surfaces).
type APIError struct {
	// Message is the human-readable error ("error" in JSON).
	Message string `json:"error"`
	// Kind classifies machine-actionable failures: "overloaded" (429,
	// retry after the hint), "quota" (403, the tenant is at its
	// configured MaxQueued — non-retryable as submitted, though the
	// body carries an honest drain hint), "admission" (403, policy:
	// unknown tenant under -strict-tenants or priority beyond the
	// tenant's cap — never retry unchanged), "panic" (500, transient —
	// safe to retry), "invariant" (500, deterministic simulator
	// invariant violation), "timeout", "cancelled", "closed",
	// "disk_full" (503, the shard's disk is full and it is serving
	// read-only — retry after the hint, ideally elsewhere), "fenced"
	// (503, the shard lost ownership of its keyspace to a newer epoch
	// and refuses writes until it rejoins — retry through the router).
	// Empty for plain errors.
	Kind string `json:"kind,omitempty"`
	// Status is the HTTP status code the error was served with.
	Status int `json:"status,omitempty"`
	// RetryAfterMS mirrors the Retry-After header for JSON-only clients.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Invariant carries the cycle/SM/warp context of an "invariant"
	// failure.
	Invariant *sim.InvariantError `json:"invariant,omitempty"`
}

func (e *APIError) Error() string { return e.Message }
