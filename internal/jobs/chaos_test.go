// Chaos suite: the acceptance test of the fault-containment stack.
// It lives in package jobs_test (not jobs) because it drives the
// service through internal/jobs/client, which imports internal/jobs.
package jobs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"regvirt/internal/faultinject"
	"regvirt/internal/jobs"
	"regvirt/internal/jobs/client"
	"regvirt/internal/jobs/sched"
	"regvirt/internal/jobs/store"
	"regvirt/internal/sim"
)

// TestSiteNamesMatchSim pins the sim package's redeclared fault-site
// names to the canonical faultinject constants (sim must not import
// faultinject, so the compiler cannot check this).
func TestSiteNamesMatchSim(t *testing.T) {
	if sim.FaultSiteAlloc != faultinject.SiteSimAlloc {
		t.Errorf("sim.FaultSiteAlloc = %q, faultinject.SiteSimAlloc = %q", sim.FaultSiteAlloc, faultinject.SiteSimAlloc)
	}
	if sim.FaultSiteMemAccept != faultinject.SiteSimMemAccept {
		t.Errorf("sim.FaultSiteMemAccept = %q, faultinject.SiteSimMemAccept = %q", sim.FaultSiteMemAccept, faultinject.SiteSimMemAccept)
	}
	for _, site := range faultinject.Sites() {
		if site == "" {
			t.Error("empty canonical site name")
		}
	}
}

// chaosService boots a pool (with the given injector) behind a real
// HTTP server and returns a retrying client against it.
func chaosService(t *testing.T, opts jobs.Options) (*jobs.Pool, *httptest.Server, *client.Client) {
	t.Helper()
	p := jobs.NewPoolWith(opts)
	ts := httptest.NewServer(jobs.NewServer(p).Handler())
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	c := client.New(ts.URL,
		client.WithSeed(42),
		client.WithPolicy(client.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}))
	return p, ts, c
}

// TestChaosMixedLoadUnderFaults is the headline drill: 200 mixed
// sync/async submissions over 20 unique configurations, spread across
// three weighted tenants at mixed priorities, with faults armed at
// every registered site — transient errors, 1ms latency spikes, and
// real panics on the worker path, plus bounded simulator faults that
// exercise the invariant-error path. The daemon must not crash, every
// job must eventually succeed (faults are transient or Times-capped,
// and failures are never cached), duplicate configurations must agree
// even across tenants, and the metrics arithmetic must survive all of
// it. Run it under -race: the containment and scheduling layers are
// concurrency machinery.
func TestChaosMixedLoadUnderFaults(t *testing.T) {
	inj := faultinject.New(1234,
		faultinject.Rule{Site: faultinject.SitePoolTask, Kind: faultinject.KindPanic, Every: 6, Times: 4},
		faultinject.Rule{Site: faultinject.SitePoolTask, Kind: faultinject.KindError, Every: 5, Times: 4},
		faultinject.Rule{Site: faultinject.SitePoolTask, Kind: faultinject.KindLatency, Every: 3, Delay: time.Millisecond},
		faultinject.Rule{Site: faultinject.SiteCacheFill, Kind: faultinject.KindError, Every: 7, Times: 3},
		faultinject.Rule{Site: faultinject.SiteSimAlloc, Kind: faultinject.KindError, Every: 1, Times: 2},
		faultinject.Rule{Site: faultinject.SiteSimMemAccept, Kind: faultinject.KindError, Every: 1, Times: 2},
		// ENOSPC on the durability layer: a journal append failing makes
		// the submission a retryable 503 ("disk_full"); a result-persist
		// failure leaves the in-memory result intact.
		faultinject.Rule{Site: faultinject.SiteStoreAppend, Kind: faultinject.KindError, Every: 25, Times: 3, Err: syscall.ENOSPC},
		faultinject.Rule{Site: faultinject.SiteStorePersist, Kind: faultinject.KindError, Every: 15, Times: 2, Err: syscall.ENOSPC},
	)
	st, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaults(inj)
	t.Cleanup(func() { st.Close() })
	tenants := []string{"gold", "silver", "bronze"}
	pool, _, c := chaosService(t, jobs.Options{Workers: 4, Faults: inj, Store: st,
		Sched: sched.Config{Tenants: map[string]sched.TenantConfig{
			"gold": {Weight: 4}, "silver": {Weight: 2}, "bronze": {Weight: 1},
		}}})

	// 20 unique configurations, each submitted 10 times (half sync,
	// half async) from 16 goroutines, rotating through the tenants and
	// priorities -3..3.
	type outcome struct {
		cfg    int
		cycles uint64
		id     string
	}
	const uniqueCfgs, repeats = 20, 10
	jobFor := func(i, cfg int) jobs.Job {
		return jobs.Job{
			Workload: "VectorAdd",
			PhysRegs: 512 + 16*(cfg%10),
			Mode:     []string{"compiler", "hwonly"}[cfg/10],
			Tenant:   tenants[i%len(tenants)],
			Priority: i%7 - 3,
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	var (
		mu       sync.Mutex
		outcomes []outcome
		fatalErr error
	)
	work := make(chan int, uniqueCfgs*repeats)
	for i := 0; i < uniqueCfgs*repeats; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cfg := i % uniqueCfgs
				job := jobFor(i, cfg)
				res, err := submitUntilSuccess(ctx, c, job, i%2 == 1)
				mu.Lock()
				if err != nil && fatalErr == nil {
					fatalErr = fmt.Errorf("job %d (cfg %d): %w", i, cfg, err)
				}
				if res != nil {
					outcomes = append(outcomes, outcome{cfg: cfg, cycles: res.Cycles, id: res.ID})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fatalErr != nil {
		t.Fatal(fatalErr)
	}
	if len(outcomes) != uniqueCfgs*repeats {
		t.Fatalf("%d successful jobs, want %d", len(outcomes), uniqueCfgs*repeats)
	}

	// Duplicate configurations agree bit for bit on cycles and ID.
	byCfg := map[int]outcome{}
	for _, o := range outcomes {
		if o.cycles == 0 || o.id == "" {
			t.Fatalf("cfg %d: incomplete result %+v", o.cfg, o)
		}
		if prev, ok := byCfg[o.cfg]; ok {
			if prev.cycles != o.cycles || prev.id != o.id {
				t.Errorf("cfg %d: inconsistent results %+v vs %+v", o.cfg, prev, o)
			}
		} else {
			byCfg[o.cfg] = o
		}
	}

	// Every registered fault site actually fired: the drill covered the
	// whole surface, not just the easy layers.
	for _, site := range faultinject.Sites() {
		if inj.Fired(site) == 0 {
			t.Errorf("site %s never injected a fault (hits: %d)", site, inj.Hits(site))
		}
	}

	// Every tracked ID resolves to done-with-result over HTTP.
	for cfg, o := range byCfg {
		st, err := c.Status(ctx, o.id)
		if err != nil || st.State != "done" || st.Result == nil || st.Result.Cycles != o.cycles {
			t.Errorf("cfg %d id %s: status %+v err %v, want done with %d cycles", cfg, o.id, st, err, o.cycles)
		}
	}

	// The metrics arithmetic survives injected errors, panics and
	// retries; the pool is fully idle; panics were genuinely recovered;
	// and the result cache holds exactly the unique successes — no
	// failure was ever cached.
	m := pool.Metrics()
	if m.Submitted != m.Completed+m.Failed {
		t.Errorf("submitted %d != completed %d + failed %d", m.Submitted, m.Completed, m.Failed)
	}
	if m.Submitted != m.Executed+m.Deduped+m.CacheHits {
		t.Errorf("submitted %d != executed %d + deduped %d + cache_hits %d",
			m.Submitted, m.Executed, m.Deduped, m.CacheHits)
	}
	if m.QueueDepth != 0 || m.Running != 0 {
		t.Errorf("idle pool: queue_depth %d, running %d", m.QueueDepth, m.Running)
	}
	if m.PanicsRecovered == 0 {
		t.Error("panics_recovered = 0 with panic faults armed")
	}
	if m.Failed == 0 {
		t.Error("failed = 0: injected faults never surfaced, drill proved nothing")
	}
	if m.ResultCache.Failures == 0 {
		t.Error("result cache saw no failed fills")
	}
	if m.ResultCache.Entries != uniqueCfgs {
		t.Errorf("result cache entries = %d, want %d unique successes (failures must not be cached)",
			m.ResultCache.Entries, uniqueCfgs)
	}
	// Per-tenant accounting is coherent: every tenant's traffic was
	// tracked, nobody was shed or quota-refused (no caps were set), and
	// the per-tenant counters sum to the pool totals.
	var sumSubmitted, sumCompleted uint64
	perTenant := map[string]jobs.TenantSnapshot{}
	for _, q := range pool.Queues().Queues {
		perTenant[q.Tenant] = q
		sumSubmitted += q.Submitted
		sumCompleted += q.Completed
	}
	for _, tn := range tenants {
		q, ok := perTenant[tn]
		if !ok {
			t.Errorf("tenant %q missing from queues snapshot", tn)
			continue
		}
		if q.Submitted == 0 || q.Completed == 0 {
			t.Errorf("tenant %q: submitted=%d completed=%d, want traffic", tn, q.Submitted, q.Completed)
		}
		if q.Shed != 0 || q.QuotaRejected != 0 {
			t.Errorf("tenant %q: shed=%d quota_rejected=%d, want 0/0 (no caps configured)", tn, q.Shed, q.QuotaRejected)
		}
		if q.Resumes > q.Preemptions {
			t.Errorf("tenant %q: resumes %d > preemptions %d", tn, q.Resumes, q.Preemptions)
		}
	}
	if sumSubmitted != m.Submitted || sumCompleted != m.Completed {
		t.Errorf("tenant sums submitted=%d completed=%d, pool says %d/%d",
			sumSubmitted, sumCompleted, m.Submitted, m.Completed)
	}
	// The server is still healthy after the storm. (Client-level retry
	// of panic 500s is pinned deterministically by
	// TestPanicOverHTTPRetriedByClient — here whether a panic lands on
	// a sync or an async filler is interleaving-dependent.)
	if status, err := c.Healthz(ctx); err != nil || status != "ok" {
		t.Errorf("healthz after chaos: %q, %v", status, err)
	}
}

// submitUntilSuccess pushes one job through the chaos: the client
// already retries transport-level transients (429/503/panic-500s);
// this loop additionally resubmits failures the client correctly
// refuses to retry on its own (injected invariant errors are
// deterministic per *simulation*, but Times-capped here, so a fresh
// run succeeds).
func submitUntilSuccess(ctx context.Context, c *client.Client, job jobs.Job, async bool) (*jobs.Result, error) {
	var lastErr error
	for attempt := 0; attempt < 30; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w (last: %v)", err, lastErr)
		}
		var (
			res *jobs.Result
			err error
		)
		if async {
			var id string
			if id, err = c.SubmitAsync(ctx, job); err == nil {
				res, err = c.Wait(ctx, id, 2*time.Millisecond)
			}
		} else {
			res, err = c.Submit(ctx, job)
		}
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("still failing after 30 rounds: %w", lastErr)
}

// TestShedUnderOverload wedges a 1-worker pool, fills the queue past a
// shed depth of 1, and asserts the full overload contract: HTTP 429, a
// Retry-After header of at least a second, a structured body with the
// retry hint, the Shed counter, and a degraded /healthz.
func TestShedUnderOverload(t *testing.T) {
	pool, ts, c := chaosService(t, jobs.Options{Workers: 1, ShedDepth: 1})

	block := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // first occupies the worker, second occupies the queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Exec(context.Background(), func() error { <-block; return nil })
		}()
	}
	defer func() { close(block); wg.Wait() }()

	// Wait for queued >= shed depth.
	deadline := time.Now().Add(10 * time.Second)
	for !pool.Overloaded() {
		if time.Now().After(deadline) {
			t.Fatal("pool never reached the shed depth")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"VectorAdd"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want >= 1 second", ra)
	}
	var apiErr jobs.APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Kind != "overloaded" || apiErr.RetryAfterMS < 1000 {
		t.Errorf("body = %+v, want kind overloaded with retry_after_ms >= 1000", apiErr)
	}
	if got := pool.Metrics().Shed; got == 0 {
		t.Error("shed counter not incremented")
	}
	if status, err := c.Healthz(context.Background()); err != nil || status != "degraded" {
		t.Errorf("healthz while shedding = %q, %v; want degraded", status, err)
	}
	if c.Metrics().Overloads != 0 {
		t.Error("healthz probe should not count as an overload")
	}
}

// TestInvariantErrorOverHTTP: a kernel that trips a simulator
// invariant returns a structured 500 carrying cycle/warp context — and
// the daemon keeps serving afterwards.
func TestInvariantErrorOverHTTP(t *testing.T) {
	inj := faultinject.New(7, faultinject.Rule{
		Site: faultinject.SiteSimAlloc, Kind: faultinject.KindError, Every: 1, Times: 1,
	})
	_, ts, _ := chaosService(t, jobs.Options{Workers: 2, Faults: inj})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"VectorAdd"}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr jobs.APIError
	derr := json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	if resp.StatusCode != http.StatusInternalServerError || apiErr.Kind != "invariant" {
		t.Fatalf("status %d kind %q, want 500/invariant: %+v", resp.StatusCode, apiErr.Kind, apiErr)
	}
	if apiErr.Invariant == nil || apiErr.Invariant.Msg == "" || apiErr.Invariant.Warp < 0 {
		t.Errorf("invariant context missing: %+v", apiErr.Invariant)
	}

	// The fault was Times-capped: the daemon serves the same job fine now.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"VectorAdd"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var res jobs.Result
	if derr := json.NewDecoder(resp2.Body).Decode(&res); derr != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("daemon did not keep serving after invariant 500: status %d, %v", resp2.StatusCode, derr)
	}
	if res.Cycles == 0 {
		t.Error("post-invariant result incomplete")
	}
}

// TestPanicOverHTTPRetriedByClient: an injected worker panic surfaces
// as a 500 of kind "panic", which the client retries transparently —
// the caller just sees the result.
func TestPanicOverHTTPRetriedByClient(t *testing.T) {
	inj := faultinject.New(9, faultinject.Rule{
		Site: faultinject.SitePoolTask, Kind: faultinject.KindPanic, Every: 1, Times: 1,
	})
	pool, _, c := chaosService(t, jobs.Options{Workers: 2, Faults: inj})
	res, err := c.Submit(context.Background(), jobs.Job{Workload: "VectorAdd"})
	if err != nil {
		t.Fatalf("Submit through panic: %v", err)
	}
	if res.Cycles == 0 {
		t.Error("incomplete result")
	}
	if c.Metrics().Retries == 0 {
		t.Error("client reports no retries; the panic path was not exercised")
	}
	if pool.Metrics().PanicsRecovered == 0 {
		t.Error("pool reports no recovered panics")
	}
}

// TestDeterministicFaultCounts: two identically seeded services under
// an identical serialized load inject exactly the same number of
// faults per site — the reproducibility contract -fault-seed promises.
func TestDeterministicFaultCounts(t *testing.T) {
	run := func() map[string]uint64 {
		inj := faultinject.New(77,
			faultinject.Rule{Site: faultinject.SitePoolTask, Kind: faultinject.KindError, Every: 3, Times: 5},
			faultinject.Rule{Site: faultinject.SiteCacheFill, Kind: faultinject.KindError, Every: 4, Times: 5},
		)
		p := jobs.NewPoolWith(jobs.Options{Workers: 1, Faults: inj})
		defer p.Close()
		for i := 0; i < 12; i++ {
			// Serialized distinct jobs; failures are expected and ignored.
			p.Submit(context.Background(), jobs.Job{Workload: "VectorAdd", PhysRegs: 512 + 16*i})
		}
		counts := map[string]uint64{}
		for _, site := range faultinject.Sites() {
			counts[site] = inj.Fired(site)
		}
		return counts
	}
	a, b := run(), run()
	for site, n := range a {
		if b[site] != n {
			t.Errorf("site %s: %d faults in run A, %d in run B", site, n, b[site])
		}
	}
	if a[faultinject.SitePoolTask] == 0 {
		t.Error("pool.task never fired; determinism test proved nothing")
	}
}
