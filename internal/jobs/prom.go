package jobs

import (
	"sort"

	"regvirt/internal/obs"
)

// Prometheus rendering of MetricsSnapshot. The same renderer serves
// the single-node daemon (one unlabelled snapshot) and the cluster
// router (one snapshot per shard, each labelled shard="name"):
// WriteProm takes all snapshots at once and emits family by family,
// because the exposition format requires every series of one metric
// name to be consecutive — per-shard sequential rendering would
// interleave families and fail promtool.

// PromShard is one labelled snapshot to render. Labels must be unique
// across the shards of one WriteProm call (or empty, with exactly one
// shard) or the exposition would carry duplicate series.
type PromShard struct {
	Labels []obs.Label
	M      MetricsSnapshot
}

// WriteProm renders the snapshots as Prometheus text exposition
// (version 0.0.4) into w. Counter/gauge semantics follow the snapshot
// field docs; the windowed p50/p99 are exposed as gauges for humans,
// while regvd_span_duration_seconds carries the aggregatable bucket
// counts scrapers should alert on.
func WriteProm(w *obs.PromWriter, shards ...PromShard) {
	counter := func(name, help string, get func(MetricsSnapshot) float64) {
		for _, s := range shards {
			w.Counter(name, help, get(s.M), s.Labels...)
		}
	}
	gauge := func(name, help string, get func(MetricsSnapshot) float64) {
		for _, s := range shards {
			w.Gauge(name, help, get(s.M), s.Labels...)
		}
	}

	gauge("regvd_workers", "Worker goroutines serving the pool.",
		func(m MetricsSnapshot) float64 { return float64(m.Workers) })
	gauge("regvd_uptime_seconds", "Seconds since the pool started.",
		func(m MetricsSnapshot) float64 { return m.UptimeSeconds })

	counter("regvd_jobs_submitted_total", "Submissions accepted past validation.",
		func(m MetricsSnapshot) float64 { return float64(m.Submitted) })
	counter("regvd_jobs_completed_total", "Submissions that returned a result.",
		func(m MetricsSnapshot) float64 { return float64(m.Completed) })
	counter("regvd_jobs_failed_total", "Submissions that returned an error.",
		func(m MetricsSnapshot) float64 { return float64(m.Failed) })
	counter("regvd_jobs_executed_total", "Submissions that started a simulation (cache misses).",
		func(m MetricsSnapshot) float64 { return float64(m.Executed) })
	counter("regvd_jobs_deduped_total", "Submissions that joined an in-flight run.",
		func(m MetricsSnapshot) float64 { return float64(m.Deduped) })
	counter("regvd_jobs_cache_hits_total", "Submissions answered from the completed-result cache.",
		func(m MetricsSnapshot) float64 { return float64(m.CacheHits) })
	counter("regvd_jobs_shed_total", "Submissions refused by admission control (HTTP 429).",
		func(m MetricsSnapshot) float64 { return float64(m.Shed) })
	counter("regvd_jobs_quota_rejected_total", "Submissions refused by tenant quota or admission policy (HTTP 403).",
		func(m MetricsSnapshot) float64 { return float64(m.QuotaRejected) })
	counter("regvd_panics_recovered_total", "Panics contained by a worker or submit barrier.",
		func(m MetricsSnapshot) float64 { return float64(m.PanicsRecovered) })
	counter("regvd_preemptions_total", "Running jobs checkpoint-interrupted for higher-priority work.",
		func(m MetricsSnapshot) float64 { return float64(m.Preemptions) })
	counter("regvd_resumes_total", "Preempted jobs re-dispatched (from checkpoint when stored).",
		func(m MetricsSnapshot) float64 { return float64(m.Resumes) })

	gauge("regvd_queue_depth", "Tasks enqueued but not yet picked up.",
		func(m MetricsSnapshot) float64 { return float64(m.QueueDepth) })
	gauge("regvd_running", "Tasks executing on a worker.",
		func(m MetricsSnapshot) float64 { return float64(m.Running) })
	gauge("regvd_latency_p50_seconds", "Windowed median submit latency (not aggregatable; see regvd_span_duration_seconds).",
		func(m MetricsSnapshot) float64 { return m.LatencyP50MS / 1000 })
	gauge("regvd_latency_p99_seconds", "Windowed p99 submit latency (not aggregatable; see regvd_span_duration_seconds).",
		func(m MetricsSnapshot) float64 { return m.LatencyP99MS / 1000 })

	counter("regvd_async_evicted_total", "Async status records evicted by TTL or capacity.",
		func(m MetricsSnapshot) float64 { return float64(m.JobsEvicted) })
	gauge("regvd_async_tracked", "Async status registry size.",
		func(m MetricsSnapshot) float64 { return float64(m.AsyncTracked) })

	counter("regvd_journal_replayed_total", "Jobs reconstructed from the write-ahead journal at startup.",
		func(m MetricsSnapshot) float64 { return float64(m.JournalReplayed) })
	counter("regvd_checkpoints_written_total", "Durable checkpoints of in-flight simulations.",
		func(m MetricsSnapshot) float64 { return float64(m.CheckpointsWritten) })
	counter("regvd_results_persisted_total", "Results written to the on-disk store.",
		func(m MetricsSnapshot) float64 { return float64(m.ResultsPersisted) })
	counter("regvd_disk_hits_total", "Cache fills served from the on-disk store.",
		func(m MetricsSnapshot) float64 { return float64(m.DiskHits) })
	counter("regvd_scrub_scanned_total", "Files examined by the at-rest integrity scrubber.",
		func(m MetricsSnapshot) float64 { return float64(m.ScrubScanned) })
	counter("regvd_scrub_corrupt_total", "Files that failed at-rest envelope verification.",
		func(m MetricsSnapshot) float64 { return float64(m.ScrubCorrupt) })
	counter("regvd_scrub_repaired_total", "Corrupt files self-healed by the scrubber (refetch, re-simulate, or safe drop).",
		func(m MetricsSnapshot) float64 { return float64(m.ScrubRepaired) })

	// Internal cache tiers, one family per counter with a cache label.
	cacheStat := func(name, help string, get func(CacheStats) float64) {
		for _, s := range shards {
			for _, c := range []struct {
				which string
				st    CacheStats
			}{{"result", s.M.ResultCache}, {"kernel", s.M.KernelCache}} {
				w.Counter(name, help, get(c.st), withLabel(s.Labels, "cache", c.which)...)
			}
		}
	}
	cacheStat("regvd_cache_hits_total", "Cache.Do calls answered from a completed entry.",
		func(c CacheStats) float64 { return float64(c.Hits) })
	cacheStat("regvd_cache_misses_total", "Cache.Do calls that executed the fill.",
		func(c CacheStats) float64 { return float64(c.Misses) })
	cacheStat("regvd_cache_dedups_total", "Cache.Do calls that joined an in-flight fill.",
		func(c CacheStats) float64 { return float64(c.Dedups) })
	cacheStat("regvd_cache_failures_total", "Cache fills that failed (evicted, not cached).",
		func(c CacheStats) float64 { return float64(c.Failures) })
	for _, s := range shards {
		for _, c := range []struct {
			which string
			st    CacheStats
		}{{"result", s.M.ResultCache}, {"kernel", s.M.KernelCache}} {
			w.Gauge("regvd_cache_entries", "Completed entries held by the cache.",
				float64(c.st.Entries), withLabel(s.Labels, "cache", c.which)...)
		}
	}

	// Per-tenant counters. The table is bounded at 128 tenants; the
	// "~overflow" row aggregates the rest, and the fold counter below
	// says how much attribution it absorbed.
	gauge("regvd_tenants_tracked", "Per-tenant counter rows (including ~overflow once live).",
		func(m MetricsSnapshot) float64 { return float64(m.TenantsTracked) })
	counter("regvd_tenant_overflow_folds_total", "Counter updates folded into the ~overflow row because the tenant table was full.",
		func(m MetricsSnapshot) float64 { return float64(m.TenantsOverflowed) })
	tenantStat := func(name, help string, get func(TenantSnapshot) float64) {
		for _, s := range shards {
			for _, t := range sortedTenants(s.M.Tenants) {
				w.Counter(name, help, get(s.M.Tenants[t]), withLabel(s.Labels, "tenant", t)...)
			}
		}
	}
	tenantStat("regvd_tenant_submitted_total", "Per-tenant submissions accepted past validation.",
		func(t TenantSnapshot) float64 { return float64(t.Submitted) })
	tenantStat("regvd_tenant_completed_total", "Per-tenant submissions that returned a result.",
		func(t TenantSnapshot) float64 { return float64(t.Completed) })
	tenantStat("regvd_tenant_failed_total", "Per-tenant submissions that returned an error.",
		func(t TenantSnapshot) float64 { return float64(t.Failed) })
	tenantStat("regvd_tenant_shed_total", "Per-tenant submissions refused by admission control.",
		func(t TenantSnapshot) float64 { return float64(t.Shed) })
	tenantStat("regvd_tenant_quota_rejected_total", "Per-tenant submissions refused by quota or admission policy.",
		func(t TenantSnapshot) float64 { return float64(t.QuotaRejected) })
	for _, s := range shards {
		for _, t := range sortedTenants(s.M.Tenants) {
			w.Gauge("regvd_tenant_queued", "Per-tenant tasks waiting in the scheduler.",
				float64(s.M.Tenants[t].Queued), withLabel(s.Labels, "tenant", t)...)
		}
	}
	for _, s := range shards {
		for _, t := range sortedTenants(s.M.Tenants) {
			w.Gauge("regvd_tenant_running", "Per-tenant tasks executing on a worker.",
				float64(s.M.Tenants[t].Running), withLabel(s.Labels, "tenant", t)...)
		}
	}

	// Span duration histograms from the tracer — the aggregatable
	// latency signal (bucket counts sum across shards and over time).
	for _, s := range shards {
		for _, name := range sortedSpanNames(s.M.SpanDurations) {
			w.Histogram("regvd_span_duration_seconds", "Span durations by span name, in seconds.",
				s.M.SpanDurations[name], withLabel(s.Labels, "span", name)...)
		}
	}
}

// PromMetrics renders one pool's snapshot — the single-node /metrics
// ?format=prom body.
func PromMetrics(p *Pool) []byte {
	var w obs.PromWriter
	WriteProm(&w, PromShard{M: p.Metrics()})
	return w.Bytes()
}

// withLabel copies base and appends one label (no aliasing: base may
// be shared across families).
func withLabel(base []obs.Label, name, value string) []obs.Label {
	out := make([]obs.Label, 0, len(base)+1)
	out = append(out, base...)
	return append(out, obs.Label{Name: name, Value: value})
}

func sortedTenants(m map[string]TenantSnapshot) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedSpanNames(m map[string]obs.HistogramSnapshot) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
