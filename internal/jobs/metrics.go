package jobs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the pool's counter set. All counters are monotonically
// increasing except the two gauges (queued, running).
type metrics struct {
	submitted atomic.Uint64 // Submit calls accepted past validation
	completed atomic.Uint64 // Submit calls that returned a result
	failed    atomic.Uint64 // Submit calls that returned an error
	executed  atomic.Uint64 // submissions that ran a simulation (cache misses)
	deduped   atomic.Uint64 // submissions that joined an in-flight run
	cacheHits atomic.Uint64 // submissions answered from the completed cache

	panicsRecovered atomic.Uint64 // panics contained by a worker/submit barrier
	shed            atomic.Uint64 // submissions refused by admission control
	evicted         atomic.Uint64 // async status records evicted (TTL/capacity)

	journalReplayed    atomic.Uint64 // jobs reconstructed from the journal at startup
	checkpointsWritten atomic.Uint64 // durable checkpoints of in-flight simulations
	resultsPersisted   atomic.Uint64 // results written to the on-disk store
	diskHits           atomic.Uint64 // fills served from the on-disk store

	queued  atomic.Int64 // tasks enqueued but not yet picked up
	running atomic.Int64 // tasks executing on a worker

	lat latencies
}

// latencies keeps the last latWindow job latencies (milliseconds) for
// percentile snapshots. A fixed ring bounds memory under heavy traffic.
const latWindow = 4096

type latencies struct {
	mu   sync.Mutex
	ring [latWindow]float64
	n    int // total observations ever
}

func (l *latencies) record(ms float64) {
	l.mu.Lock()
	l.ring[l.n%latWindow] = ms
	l.n++
	l.mu.Unlock()
}

// percentiles returns the p50 and p99 of the retained window.
func (l *latencies) percentiles() (p50, p99 float64) {
	l.mu.Lock()
	n := l.n
	if n > latWindow {
		n = latWindow
	}
	s := make([]float64, n)
	copy(s, l.ring[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(s)
	return s[(n-1)*50/100], s[(n-1)*99/100]
}

// MetricsSnapshot is the point-in-time view /metrics serves. The
// counters satisfy two invariants once the pool is idle, which the
// chaos suite asserts even under injected errors, panics and shedding:
//
//	submitted == completed + failed
//	submitted == executed + deduped + cache_hits
//
// (executed counts fill *starts*, so both invariants survive a fill
// that panics out of the cache; shed submissions count as executed +
// failed.)
type MetricsSnapshot struct {
	Workers      int     `json:"workers"`
	Submitted    uint64  `json:"submitted"`
	Completed    uint64  `json:"completed"`
	Failed       uint64  `json:"failed"`
	Executed     uint64  `json:"executed"`
	Deduped      uint64  `json:"deduped"`
	CacheHits    uint64  `json:"cache_hits"`
	QueueDepth   int64   `json:"queue_depth"`
	Running      int64   `json:"running"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	// PanicsRecovered counts panics the containment barriers turned
	// into errors; any non-zero value with the daemon still serving is
	// the containment working.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// Shed counts submissions refused by admission control (HTTP 429).
	Shed uint64 `json:"shed"`
	// JobsEvicted counts async status records dropped by TTL/capacity
	// eviction; AsyncTracked is the registry's current size.
	JobsEvicted  uint64 `json:"jobs_evicted"`
	AsyncTracked int    `json:"async_tracked"`

	// UptimeSeconds is the time since this pool (and in practice this
	// daemon process) started — after a crash-restart it resets, while
	// journal_replayed shows what the restart recovered.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Durability counters, all zero without a configured store:
	// JournalReplayed counts jobs reconstructed from the write-ahead
	// journal at startup, CheckpointsWritten durable checkpoints of
	// in-flight simulations, ResultsPersisted results written to the
	// on-disk result store, and DiskHits fills served from it instead
	// of re-simulating.
	JournalReplayed    uint64 `json:"journal_replayed"`
	CheckpointsWritten uint64 `json:"checkpoints_written"`
	ResultsPersisted   uint64 `json:"results_persisted"`
	DiskHits           uint64 `json:"disk_hits"`

	ResultCache CacheStats `json:"result_cache"`
	KernelCache CacheStats `json:"kernel_cache"`
}

// Metrics snapshots the pool counters.
func (p *Pool) Metrics() MetricsSnapshot {
	p50, p99 := p.m.lat.percentiles()
	p.mu.Lock()
	tracked := len(p.status)
	p.mu.Unlock()
	return MetricsSnapshot{
		Workers:         p.workers,
		Submitted:       p.m.submitted.Load(),
		Completed:       p.m.completed.Load(),
		Failed:          p.m.failed.Load(),
		Executed:        p.m.executed.Load(),
		Deduped:         p.m.deduped.Load(),
		CacheHits:       p.m.cacheHits.Load(),
		QueueDepth:      p.m.queued.Load(),
		Running:         p.m.running.Load(),
		LatencyP50MS:    p50,
		LatencyP99MS:    p99,
		PanicsRecovered: p.m.panicsRecovered.Load(),
		Shed:            p.m.shed.Load(),
		JobsEvicted:     p.m.evicted.Load(),
		AsyncTracked:    tracked,

		UptimeSeconds:      time.Since(p.started).Seconds(),
		JournalReplayed:    p.m.journalReplayed.Load(),
		CheckpointsWritten: p.m.checkpointsWritten.Load(),
		ResultsPersisted:   p.m.resultsPersisted.Load(),
		DiskHits:           p.m.diskHits.Load(),

		ResultCache: p.results.Stats(),
		KernelCache: p.kernels.Stats(),
	}
}
