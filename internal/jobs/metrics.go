package jobs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regvirt/internal/jobs/sched"
	"regvirt/internal/obs"
)

// metrics is the pool's counter set. All counters are monotonically
// increasing except the two gauges (queued, running).
type metrics struct {
	submitted atomic.Uint64 // Submit calls accepted past validation
	completed atomic.Uint64 // Submit calls that returned a result
	failed    atomic.Uint64 // Submit calls that returned an error
	executed  atomic.Uint64 // submissions that ran a simulation (cache misses)
	deduped   atomic.Uint64 // submissions that joined an in-flight run
	cacheHits atomic.Uint64 // submissions answered from the completed cache

	panicsRecovered atomic.Uint64 // panics contained by a worker/submit barrier
	shed            atomic.Uint64 // submissions refused by admission control (429)
	quotaRejected   atomic.Uint64 // submissions refused by tenant quota/admission (403)
	evicted         atomic.Uint64 // async status records evicted (TTL/capacity)

	preemptions atomic.Uint64 // running jobs checkpoint-interrupted for higher priority
	resumes     atomic.Uint64 // preempted jobs re-dispatched (from checkpoint when stored)

	tenantOverflow atomic.Uint64 // counter lookups folded into the ~overflow row

	journalReplayed    atomic.Uint64 // jobs reconstructed from the journal at startup
	checkpointsWritten atomic.Uint64 // durable checkpoints of in-flight simulations
	resultsPersisted   atomic.Uint64 // results written to the on-disk store
	diskHits           atomic.Uint64 // fills served from the on-disk store

	scrubScanned  atomic.Uint64 // files examined by the at-rest scrubber
	scrubCorrupt  atomic.Uint64 // files that failed envelope verification
	scrubRepaired atomic.Uint64 // corrupt files self-healed (refetch/resim/drop)

	queued  atomic.Int64 // tasks enqueued but not yet picked up
	running atomic.Int64 // tasks executing on a worker

	lat latencies
}

// Latency ring windows: the pool-wide window, and the smaller
// per-tenant window (bounded per tenant so a many-tenant daemon stays
// small).
const (
	latWindow       = 4096
	tenantLatWindow = 512
)

// latencies keeps the last window job latencies (milliseconds) for
// percentile snapshots. A fixed ring bounds memory under heavy
// traffic. The zero value uses the pool-wide window.
type latencies struct {
	mu     sync.Mutex
	window int
	ring   []float64
	n      int // total observations ever
}

func (l *latencies) record(ms float64) {
	l.mu.Lock()
	if l.window == 0 {
		l.window = latWindow
	}
	if l.ring == nil {
		l.ring = make([]float64, l.window)
	}
	l.ring[l.n%l.window] = ms
	l.n++
	l.mu.Unlock()
}

// percentiles returns the p50 and p99 of the retained window.
func (l *latencies) percentiles() (p50, p99 float64) {
	l.mu.Lock()
	n := l.n
	if l.window > 0 && n > l.window {
		n = l.window
	}
	s := make([]float64, n)
	copy(s, l.ring[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(s)
	return s[(n-1)*50/100], s[(n-1)*99/100]
}

// tenantCounters is one tenant's slice of the pool counters. Gauges
// (queued/running) live in the scheduler; these are monotonic.
type tenantCounters struct {
	submitted     atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	shed          atomic.Uint64
	quotaRejected atomic.Uint64
	preemptions   atomic.Uint64
	resumes       atomic.Uint64
	lat           latencies
}

// maxTrackedTenants bounds the per-tenant counter map; tenants beyond
// it aggregate under overflowTenant so hostile tenant churn cannot
// grow the metrics without bound (the scheduler bounds its own table
// separately via sched.Config.MaxTenants).
const (
	maxTrackedTenants = 128
	overflowTenant    = "~overflow"
)

// tenantCounters returns (creating if needed) the tenant's counter
// slice, folding excess tenants into the overflow bucket.
func (p *Pool) tenantCounters(tenant string) *tenantCounters {
	p.tmu.Lock()
	defer p.tmu.Unlock()
	if tc, ok := p.tcs[tenant]; ok {
		return tc
	}
	if len(p.tcs) >= maxTrackedTenants {
		// Every folded lookup is counted so the overflow is visible in
		// /metrics (tenants_overflowed) instead of silently aggregating.
		p.m.tenantOverflow.Add(1)
		tc, ok := p.tcs[overflowTenant]
		if !ok {
			tc = &tenantCounters{lat: latencies{window: tenantLatWindow}}
			p.tcs[overflowTenant] = tc
		}
		return tc
	}
	tc := &tenantCounters{lat: latencies{window: tenantLatWindow}}
	p.tcs[tenant] = tc
	return tc
}

// TenantSnapshot is one tenant's point-in-time view: scheduler state
// (weight, quotas, gauges) merged with the pool's per-tenant counters.
type TenantSnapshot struct {
	Tenant      string `json:"tenant"`
	Weight      int    `json:"weight"`
	MaxQueued   int    `json:"max_queued,omitempty"`
	MaxRunning  int    `json:"max_running,omitempty"`
	MaxPriority int    `json:"max_priority,omitempty"`

	Queued     int64  `json:"queued"`
	Running    int64  `json:"running"`
	Dispatched uint64 `json:"dispatched"`

	Submitted     uint64 `json:"submitted"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Shed          uint64 `json:"shed"`
	QuotaRejected uint64 `json:"quota_rejected"`
	Preemptions   uint64 `json:"preemptions"`
	Resumes       uint64 `json:"resumes"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
}

// QueuesSnapshot is the GET /v1/queues body: the scheduling policy and
// every tenant queue, sorted by tenant name.
type QueuesSnapshot struct {
	Policy     string           `json:"policy"`
	Strict     bool             `json:"strict"`
	Preemption bool             `json:"preemption"`
	Queues     []TenantSnapshot `json:"queues"`
}

// Queues snapshots the per-tenant scheduler and counter state.
func (p *Pool) Queues() QueuesSnapshot {
	stats := p.sched.Snapshot()
	byName := make(map[string]sched.QueueStat, len(stats))
	names := make(map[string]bool, len(stats))
	for _, st := range stats {
		byName[st.Tenant] = st
		names[st.Tenant] = true
	}
	p.tmu.Lock()
	tcs := make(map[string]*tenantCounters, len(p.tcs))
	for name, tc := range p.tcs {
		tcs[name] = tc
		names[name] = true
	}
	p.tmu.Unlock()

	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	qs := QueuesSnapshot{
		Policy:     string(p.sched.Policy()),
		Strict:     p.sched.Strict(),
		Preemption: p.preemptOn,
		Queues:     make([]TenantSnapshot, 0, len(sorted)),
	}
	for _, name := range sorted {
		ts := TenantSnapshot{Tenant: name}
		if st, ok := byName[name]; ok {
			ts.Weight = st.Weight
			ts.MaxQueued, ts.MaxRunning, ts.MaxPriority = st.MaxQueued, st.MaxRunning, st.MaxPriority
			ts.Queued, ts.Running = int64(st.Queued), int64(st.Running)
			ts.Dispatched = st.Dispatched
		}
		if tc, ok := tcs[name]; ok {
			ts.Submitted = tc.submitted.Load()
			ts.Completed = tc.completed.Load()
			ts.Failed = tc.failed.Load()
			ts.Shed = tc.shed.Load()
			ts.QuotaRejected = tc.quotaRejected.Load()
			ts.Preemptions = tc.preemptions.Load()
			ts.Resumes = tc.resumes.Load()
			ts.LatencyP50MS, ts.LatencyP99MS = tc.lat.percentiles()
		}
		qs.Queues = append(qs.Queues, ts)
	}
	return qs
}

// MetricsSnapshot is the point-in-time view /metrics serves. The
// counters satisfy two invariants once the pool is idle, which the
// chaos suite asserts even under injected errors, panics and shedding:
//
//	submitted == completed + failed
//	submitted == executed + deduped + cache_hits
//
// (executed counts fill *starts*, so both invariants survive a fill
// that panics out of the cache; shed submissions count as executed +
// failed.)
type MetricsSnapshot struct {
	Workers      int     `json:"workers"`
	Submitted    uint64  `json:"submitted"`
	Completed    uint64  `json:"completed"`
	Failed       uint64  `json:"failed"`
	Executed     uint64  `json:"executed"`
	Deduped      uint64  `json:"deduped"`
	CacheHits    uint64  `json:"cache_hits"`
	QueueDepth   int64   `json:"queue_depth"`
	Running      int64   `json:"running"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	// PanicsRecovered counts panics the containment barriers turned
	// into errors; any non-zero value with the daemon still serving is
	// the containment working.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// Shed counts submissions refused by admission control (HTTP 429).
	Shed uint64 `json:"shed"`
	// QuotaRejected counts submissions refused by per-tenant quota or
	// admission policy (HTTP 403).
	QuotaRejected uint64 `json:"quota_rejected"`
	// Preemptions counts running jobs checkpoint-interrupted to make
	// room for a higher-priority arrival; Resumes counts their
	// re-dispatches (from the journaled checkpoint when a store is
	// armed). A preempted job that happened to finish before the
	// interrupt landed is counted as a preemption without a resume.
	Preemptions uint64 `json:"preemptions"`
	Resumes     uint64 `json:"resumes"`
	// JobsEvicted counts async status records dropped by TTL/capacity
	// eviction; AsyncTracked is the registry's current size.
	JobsEvicted  uint64 `json:"jobs_evicted"`
	AsyncTracked int    `json:"async_tracked"`

	// UptimeSeconds is the time since this pool (and in practice this
	// daemon process) started — after a crash-restart it resets, while
	// journal_replayed shows what the restart recovered.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Durability counters, all zero without a configured store:
	// JournalReplayed counts jobs reconstructed from the write-ahead
	// journal at startup, CheckpointsWritten durable checkpoints of
	// in-flight simulations, ResultsPersisted results written to the
	// on-disk result store, and DiskHits fills served from it instead
	// of re-simulating.
	JournalReplayed    uint64 `json:"journal_replayed"`
	CheckpointsWritten uint64 `json:"checkpoints_written"`
	ResultsPersisted   uint64 `json:"results_persisted"`
	DiskHits           uint64 `json:"disk_hits"`

	// Integrity-scrubber counters (all zero until -scrub-every arms the
	// background scrubber): ScrubScanned files examined, ScrubCorrupt
	// envelope verification failures, ScrubRepaired corrupt files
	// self-healed — peer refetch, deterministic re-simulation, or (for
	// checkpoints, which are pure optimization) a safe drop.
	ScrubScanned  uint64 `json:"scrub_scanned"`
	ScrubCorrupt  uint64 `json:"scrub_corrupt"`
	ScrubRepaired uint64 `json:"scrub_repaired"`

	ResultCache CacheStats `json:"result_cache"`
	KernelCache CacheStats `json:"kernel_cache"`

	// TenantsTracked is the per-tenant counter table's current size.
	// The table is bounded at 128 tenants; once full, counter updates
	// for new tenants aggregate under the "~overflow" row in Tenants
	// (and /v1/queues) rather than being dropped. TenantsOverflowed
	// counts those folded updates — any non-zero value means the
	// "~overflow" row is live and per-tenant attribution is partial.
	TenantsTracked    int    `json:"tenants_tracked"`
	TenantsOverflowed uint64 `json:"tenants_overflowed"`

	// Tenants is the per-tenant breakdown (also served, with scheduler
	// configuration, by GET /v1/queues).
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`

	// SpanDurations is the tracer's per-span-name duration histogram
	// table (seconds), present only when tracing is on. Shipped in the
	// JSON snapshot so the cluster router can aggregate shard latency
	// distributions — unlike the windowed p50/p99, bucket counts sum.
	SpanDurations map[string]obs.HistogramSnapshot `json:"span_durations,omitempty"`
}

// AddScrubStats folds one scrub pass's tallies into the pool counters.
// The daemon's background scrubber calls this after every pass so the
// scrub_* metrics surface through /metrics in both formats.
func (p *Pool) AddScrubStats(scanned, corrupt, repaired int) {
	if scanned > 0 {
		p.m.scrubScanned.Add(uint64(scanned))
	}
	if corrupt > 0 {
		p.m.scrubCorrupt.Add(uint64(corrupt))
	}
	if repaired > 0 {
		p.m.scrubRepaired.Add(uint64(repaired))
	}
}

// Metrics snapshots the pool counters.
func (p *Pool) Metrics() MetricsSnapshot {
	p50, p99 := p.m.lat.percentiles()
	p.mu.Lock()
	tracked := len(p.status)
	p.mu.Unlock()
	p.tmu.Lock()
	tenantsTracked := len(p.tcs)
	p.tmu.Unlock()
	queues := p.Queues()
	tenants := make(map[string]TenantSnapshot, len(queues.Queues))
	for _, ts := range queues.Queues {
		tenants[ts.Tenant] = ts
	}
	return MetricsSnapshot{
		Workers:         p.workers,
		Submitted:       p.m.submitted.Load(),
		Completed:       p.m.completed.Load(),
		Failed:          p.m.failed.Load(),
		Executed:        p.m.executed.Load(),
		Deduped:         p.m.deduped.Load(),
		CacheHits:       p.m.cacheHits.Load(),
		QueueDepth:      p.m.queued.Load(),
		Running:         p.m.running.Load(),
		LatencyP50MS:    p50,
		LatencyP99MS:    p99,
		PanicsRecovered: p.m.panicsRecovered.Load(),
		Shed:            p.m.shed.Load(),
		QuotaRejected:   p.m.quotaRejected.Load(),
		Preemptions:     p.m.preemptions.Load(),
		Resumes:         p.m.resumes.Load(),
		JobsEvicted:     p.m.evicted.Load(),
		AsyncTracked:    tracked,

		UptimeSeconds:      time.Since(p.started).Seconds(),
		JournalReplayed:    p.m.journalReplayed.Load(),
		CheckpointsWritten: p.m.checkpointsWritten.Load(),
		ResultsPersisted:   p.m.resultsPersisted.Load(),
		DiskHits:           p.m.diskHits.Load(),

		ScrubScanned:  p.m.scrubScanned.Load(),
		ScrubCorrupt:  p.m.scrubCorrupt.Load(),
		ScrubRepaired: p.m.scrubRepaired.Load(),

		ResultCache: p.results.Stats(),
		KernelCache: p.kernels.Stats(),

		TenantsTracked:    tenantsTracked,
		TenantsOverflowed: p.m.tenantOverflow.Load(),

		Tenants:       tenants,
		SpanDurations: p.tracer.Histograms(),
	}
}
