package store

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"regvirt/internal/integrity"
	"regvirt/internal/jobs"
)

// ScrubOptions wires the repair ladder into one scrub pass. Both
// hooks are optional; with neither set, corrupt results can only be
// quarantined (removed so the journal re-runs them on next restart).
type ScrubOptions struct {
	// Fetch retrieves a known-good copy of a result by content address
	// from a peer or standby (sealed or raw JSON; it is re-verified
	// before being trusted).
	Fetch func(id string) ([]byte, bool)
	// Resim deterministically re-executes a job spec salvaged from a
	// corrupt envelope. The spec is only used after its content address
	// matches the file name, so a rotted spec can never re-simulate the
	// wrong job.
	Resim func(job jobs.Job) (*jobs.Result, error)
	// Log receives one structured event per corruption found/repaired.
	Log *slog.Logger
}

// Scrub walks the result and checkpoint stores once, verifying every
// envelope, upgrading pre-envelope files in place, and self-healing
// corruption: results are refetched from a peer, else re-simulated
// from the embedded spec, else quarantined; a corrupt checkpoint is
// simply dropped (it is an optimization — the journal re-runs the job
// from cycle 0, byte-identically). Safe to run concurrently with
// normal store traffic: every write goes through the same atomic
// temp-and-rename door, and a racing Done writes the identical bytes
// the scrubber would (determinism is the tiebreak).
func (s *Store) Scrub(o ScrubOptions) integrity.Report {
	log := o.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return integrity.Report{}
	}
	var rep integrity.Report
	s.scrubResults(o, log, &rep)
	s.scrubCheckpoints(log, &rep)
	return rep
}

func (s *Store) scrubResults(o ScrubOptions, log *slog.Logger, rep *integrity.Report) {
	entries, err := os.ReadDir(filepath.Join(s.dir, resultsDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || !safeID(id) || !e.Type().IsRegular() {
			continue
		}
		path := s.resultPath(id)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rep.Scanned++
		env, oerr := integrity.Open(data)
		if oerr == nil && !env.Legacy {
			continue // sealed and checksum-clean
		}
		if oerr == nil && env.Legacy && json.Valid(env.Payload) {
			// Pre-envelope file: upgrade in place so the next pass can
			// actually verify it. No spec is available to embed.
			if err := writeAtomic(path, integrity.Seal(env.Payload, nil), true); err == nil {
				log.Info("scrub sealed legacy result", "job", id)
			}
			continue
		}
		// Corrupt: either a failed checksum or an unsealed file that is
		// not JSON (e.g. bit rot in the magic bytes themselves).
		rep.Corrupt++
		log.Warn("scrub found corrupt result", "job", id, "err", oerr)
		if s.repairResult(o, log, id, path, data) {
			rep.Repaired++
		}
	}
}

// repairResult climbs the ladder: peer refetch, deterministic
// re-simulation from the salvaged spec, then quarantine.
func (s *Store) repairResult(o ScrubOptions, log *slog.Logger, id, path string, raw []byte) bool {
	if o.Fetch != nil {
		if got, ok := o.Fetch(id); ok {
			if env, err := integrity.Open(got); err == nil && json.Valid(env.Payload) {
				sealed := got
				if env.Legacy {
					sealed = integrity.Seal(env.Payload, nil)
				}
				if werr := writeAtomic(path, sealed, true); werr == nil {
					log.Info("scrub repaired result", "job", id, "source", "peer")
					return true
				}
			}
		}
	}
	if o.Resim != nil {
		if _, spec, ok := integrity.Salvage(raw); ok && len(spec) > 0 {
			var job jobs.Job
			// The spec sits inside the corrupt envelope, so it proves
			// itself by hashing back to the file's content address.
			if json.Unmarshal(spec, &job) == nil && job.Key() == id {
				if res, err := o.Resim(job); err == nil && res != nil {
					if werr := writeAtomic(path, integrity.Seal(res.JSON(), spec), true); werr == nil {
						log.Info("scrub repaired result", "job", id, "source", "resim")
						return true
					}
				} else if err != nil {
					log.Warn("scrub re-simulation failed", "job", id, "err", err)
				}
			}
		}
	}
	// Quarantine: remove the poisoned file. The journal (or a fresh
	// submission of the same content address) re-runs the job.
	if err := os.Remove(path); err == nil {
		log.Warn("scrub quarantined unrecoverable result", "job", id)
	}
	return false
}

func (s *Store) scrubCheckpoints(log *slog.Logger, rep *integrity.Report) {
	entries, err := os.ReadDir(filepath.Join(s.dir, checkpointsDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".ckpt")
		if !ok || !safeID(id) || !e.Type().IsRegular() {
			continue
		}
		path := s.checkpointPath(id)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rep.Scanned++
		env, oerr := integrity.Open(data)
		if oerr == nil && !env.Legacy {
			continue
		}
		if oerr == nil && env.Legacy {
			if err := writeAtomic(path, integrity.Seal(env.Payload, nil), true); err == nil {
				log.Info("scrub sealed legacy checkpoint", "job", id)
			}
			continue
		}
		// Dropping a corrupt checkpoint IS the repair: the journal
		// still holds the accept, and determinism makes a cycle-0
		// restart byte-identical.
		rep.Corrupt++
		log.Warn("scrub found corrupt checkpoint", "job", id, "err", oerr)
		if err := os.Remove(path); err == nil || os.IsNotExist(err) {
			rep.Repaired++
			log.Info("scrub dropped corrupt checkpoint", "job", id)
		}
	}
}
