package store

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"regvirt/internal/integrity"
	"regvirt/internal/jobs"
)

// FuzzResultDecode holds the result read path against arbitrary file
// bytes: decodeResult never panics, and it answers exactly when an
// independent envelope-open + JSON decode would — corrupt input is a
// miss, never a wrong answer.
func FuzzResultDecode(f *testing.F) {
	job := jobs.Job{Workload: "VectorAdd", PhysRegs: 512}
	spec, _ := json.Marshal(job)
	payload := fakeResult("fz01").JSON()

	sealed := integrity.Seal(payload, spec)
	f.Add(sealed)
	f.Add(payload) // legacy: raw JSON, no envelope
	f.Add(sealed[:len(sealed)-5])
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add(integrity.Seal(nil, nil))
	f.Add([]byte("RVI1 00000000 9999999999 0\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		res, ok := decodeResult(data)

		var want jobs.Result
		env, err := integrity.Open(data)
		wantOK := err == nil && json.Unmarshal(env.Payload, &want) == nil
		if ok != wantOK {
			t.Fatalf("decodeResult ok=%v, independent decode says %v", ok, wantOK)
		}
		if ok && !reflect.DeepEqual(res, &want) {
			t.Fatalf("decodeResult returned %+v, independent decode %+v", res, &want)
		}

		// Salvage is the scrubber's lenient parse: it must never panic
		// and its sections must tile the body exactly.
		if p, sp, sok := integrity.Salvage(data); sok {
			if len(p)+len(sp) > len(data) {
				t.Fatalf("salvaged sections (%d+%d) exceed input (%d)", len(p), len(sp), len(data))
			}
		}
	})
}

// FuzzCheckpointDecode is the same contract for checkpoint blobs: a
// corrupt envelope is a miss (the job restarts from cycle 0), an
// intact one returns the exact sealed payload.
func FuzzCheckpointDecode(f *testing.F) {
	blob := []byte("gob-encoded checkpoint bytes \x00\x01\x02")

	sealed := integrity.Seal(blob, nil)
	f.Add(sealed)
	f.Add(blob) // legacy raw blob
	f.Add(sealed[:len(sealed)-1])
	flipped := append([]byte(nil), sealed...)
	flipped[0] ^= 0x01 // breaks the magic: decodes as legacy
	f.Add(flipped)
	f.Add(integrity.Seal(nil, nil))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, ok := decodeCheckpoint(data)

		env, err := integrity.Open(data)
		wantOK := len(data) > 0 && err == nil && len(env.Payload) > 0
		if ok != wantOK {
			t.Fatalf("decodeCheckpoint ok=%v, independent decode says %v", ok, wantOK)
		}
		if ok && string(got) != string(env.Payload) {
			t.Fatalf("decodeCheckpoint returned %d bytes differing from the sealed payload", len(got))
		}
	})
}

// TestFuzzSeedsDecode covers the disk halves the fuzzers skip: a
// planted file reaches LoadResult/LoadCheckpoint through the same
// decode the fuzzers verify, and corrupt files are plain misses.
func TestFuzzSeedsDecode(t *testing.T) {
	st, _ := openT(t, t.TempDir())
	defer st.Close()

	res := fakeResult("fz01")
	if err := os.WriteFile(st.resultPath("fz01"), integrity.Seal(res.JSON(), nil), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := st.LoadResult("fz01")
	if !ok || got.ID != "fz01" || got.Cycles != res.Cycles {
		t.Fatalf("LoadResult sealed file: ok=%v got=%+v", ok, got)
	}
	if err := os.WriteFile(st.resultPath("fz01"), []byte("RVI1 deadbeef 4 0\nrot!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.LoadResult("fz01"); ok {
		t.Fatal("LoadResult returned ok on a checksum-corrupt file")
	}

	blob := []byte("ckpt-blob")
	if err := os.WriteFile(st.checkpointPath("fz01"), integrity.Seal(blob, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, ok := st.LoadCheckpoint("fz01"); !ok || string(b) != string(blob) {
		t.Fatalf("LoadCheckpoint sealed file: ok=%v b=%q", ok, b)
	}
	if err := os.WriteFile(st.checkpointPath("fz01"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.LoadCheckpoint("fz01"); ok {
		t.Fatal("LoadCheckpoint returned ok on an empty file")
	}
}
