package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestStandbyFencePersistsAcrossReopen: the fence sidecar survives a
// standby restart, only ratchets forward, and shows up in Status —
// otherwise a restarted standby would re-admit a deposed primary.
func TestStandbyFencePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ss, err := OpenStandby(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.FenceEpoch("a"); got != 0 {
		t.Errorf("fresh fence = %d, want 0", got)
	}
	if err := ss.Fence("a", 7); err != nil {
		t.Fatal(err)
	}
	if err := ss.Fence("a", 3); err != nil { // lowering is a silent no-op
		t.Fatal(err)
	}
	if got := ss.FenceEpoch("a"); got != 7 {
		t.Errorf("fence = %d, want 7 (ratchet must not lower)", got)
	}
	found := false
	for _, st := range ss.Status() {
		if st.Shard == "a" {
			found = true
			if st.Fence != 7 {
				t.Errorf("Status fence = %d, want 7", st.Fence)
			}
		}
	}
	if !found {
		t.Error("fenced shard missing from Status")
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	ss2, err := OpenStandby(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	if got := ss2.FenceEpoch("a"); got != 7 {
		t.Errorf("fence after reopen = %d, want 7", got)
	}
}

// TestStandbyResyncRacesApplyAndRecover hammers the standby's three
// mutating surfaces — frame application, snapshot installation (the
// gap-resync path) and journal recovery — concurrently under -race.
// Individual calls may legitimately fail with ErrGap (a snapshot reset
// continuity under the applier's feet); what must hold is that no call
// races another, the files never corrupt, and a final Recover returns
// a consistent job set.
func TestStandbyResyncRacesApplyAndRecover(t *testing.T) {
	ss, err := OpenStandby(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	const iters = 150
	recsOf := func(n int) []Record {
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			rec := acceptRec(fmt.Sprintf("job-%02d", i))
			rec.Seq = uint64(i + 1)
			recs = append(recs, rec)
		}
		return recs
	}

	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // frame applier: extends whatever continuity currently holds
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_, lastSeq := ss.State("a")
			f := frameFor(t, 1, lastSeq+1, acceptRec(fmt.Sprintf("app-%03d", i)))
			ss.ApplyFrames("a", []Frame{f}) // ErrGap expected when a snapshot won the race
		}
	}()
	go func() { // resyncer: snapshots replace the copy wholesale
		defer wg.Done()
		for i := 0; i < iters; i++ {
			n := 1 + i%5
			if err := ss.InstallSnapshot("a", 1, recsOf(n), uint64(n+1)); err != nil {
				t.Errorf("InstallSnapshot: %v", err)
				return
			}
		}
	}()
	go func() { // recoverer: full journal replay + checkpoint sweep
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, _, err := ss.Recover("a"); err != nil {
				t.Errorf("Recover: %v", err)
				return
			}
		}
	}()
	go func() { // observers: status, state, fences
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ss.State("a")
			ss.Status()
			ss.FenceEpoch("a")
			if i%10 == 0 {
				if err := ss.SaveCheckpoint("a", fmt.Sprintf("app-%03d", i), []byte("ck")); err != nil {
					t.Errorf("SaveCheckpoint: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()

	recovered, _, err := ss.Recover("a")
	if err != nil {
		t.Fatalf("final Recover: %v", err)
	}
	seen := map[string]bool{}
	for _, rj := range recovered {
		if seen[rj.ID] {
			t.Errorf("job %s recovered twice", rj.ID)
		}
		seen[rj.ID] = true
		if rj.State != "pending" {
			t.Errorf("job %s state %q, want pending", rj.ID, rj.State)
		}
	}
	// The last full snapshot's jobs are all there: whatever the final
	// interleaving, a snapshot of n jobs plus contiguous appends can
	// only grow the set.
	if len(recovered) == 0 {
		t.Error("final Recover returned no jobs")
	}
}
