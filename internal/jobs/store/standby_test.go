package store

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"regvirt/internal/jobs"
)

// captureSink records everything a Store ships, for wiring assertions.
type captureSink struct {
	frames    []Frame
	syncs     []bool
	rewrites  []uint64
	ckptIDs   []string
	ckptBlobs [][]byte
}

func (c *captureSink) ShipFrame(f Frame, sync bool) {
	c.frames = append(c.frames, f)
	c.syncs = append(c.syncs, sync)
}
func (c *captureSink) JournalRewritten(gen uint64)        { c.rewrites = append(c.rewrites, gen) }
func (c *captureSink) ShipCheckpoint(id string, b []byte) { c.ckptIDs = append(c.ckptIDs, id); c.ckptBlobs = append(c.ckptBlobs, b) }

func shipJob(name string) jobs.Job { return jobs.Job{Workload: name} }

// frameFor builds a valid shipped frame from a record.
func frameFor(t *testing.T, gen, seq uint64, rec Record) Frame {
	t.Helper()
	rec.Seq = seq
	payload, err := recordPayload(rec)
	if err != nil {
		t.Fatal(err)
	}
	return Frame{Gen: gen, Seq: seq, CRC: crc32.Checksum(payload, castagnoli), Payload: payload}
}

func acceptRec(id string) Record {
	j := shipJob("VectorAdd")
	return Record{Op: OpAccept, ID: id, Job: &j}
}

// TestStoreShipsFramesInOrder: an armed sink sees every append as a
// contiguous (gen, seq) stream, accepts synchronously, and generation
// bumps on compaction with a rewrite notice.
func TestStoreShipsFramesInOrder(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := &captureSink{}
	gen := s.SetSink(sink)
	if gen == 0 {
		t.Fatalf("generation = 0, want bumped at Open")
	}
	if err := s.Accept("job1", shipJob("VectorAdd"), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("job2", shipJob("Reduction"), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Failed("job2", "boom"); err != nil {
		t.Fatal(err)
	}
	if len(sink.frames) != 3 {
		t.Fatalf("shipped %d frames, want 3", len(sink.frames))
	}
	for i, f := range sink.frames {
		if f.Gen != gen || f.Seq != uint64(i+1) {
			t.Errorf("frame %d: gen/seq = %d/%d, want %d/%d", i, f.Gen, f.Seq, gen, i+1)
		}
		if _, err := f.Decode(); err != nil {
			t.Errorf("frame %d fails decode: %v", i, err)
		}
	}
	if !sink.syncs[0] || !sink.syncs[1] {
		t.Error("accept frames must ship synchronously")
	}
	if sink.syncs[2] {
		t.Error("failed frame shipped synchronously; accepts only")
	}
	if err := s.SaveCheckpoint("job1", []byte("ckptblob")); err != nil {
		t.Fatal(err)
	}
	if len(sink.ckptIDs) != 1 || sink.ckptIDs[0] != "job1" || string(sink.ckptBlobs[0]) != "ckptblob" {
		t.Errorf("checkpoint ship = %v, want [job1]", sink.ckptIDs)
	}
}

// TestGenerationMonotonicAcrossRestart: each Open bumps the persisted
// generation, so a standby can order snapshots from successive daemon
// lives.
func TestGenerationMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := s1.Generation()
	s1.Close()
	s2, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if g2 := s2.Generation(); g2 <= g1 {
		t.Errorf("generation after restart = %d, want > %d", g2, g1)
	}
}

// TestExportJournalRoundTrip: ExportJournal returns the exact records
// a resync needs, with NextSeq where the live stream continues.
func TestExportJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Accept("aaa1", shipJob("VectorAdd"), false)
	s.Accept("bbb2", shipJob("Reduction"), false)
	s.Failed("bbb2", "nope")
	gen, recs, nextSeq, err := s.ExportJournal()
	if err != nil {
		t.Fatal(err)
	}
	if gen != s.Generation() {
		t.Errorf("export gen %d != live gen %d", gen, s.Generation())
	}
	if len(recs) != 3 || nextSeq != 4 {
		t.Fatalf("export = %d records, nextSeq %d; want 3, 4", len(recs), nextSeq)
	}
	if recs[0].Op != OpAccept || recs[2].Op != OpFailed {
		t.Errorf("record ops = %s..%s, want accept..failed", recs[0].Op, recs[2].Op)
	}
}

// TestStandbyTruncatedFrameMidShip: a frame whose payload was cut off
// in flight (CRC no longer matches) is rejected with ErrBadFrame and
// nothing after it in the batch is applied — the shipped copy never
// contains a corrupt record.
func TestStandbyTruncatedFrameMidShip(t *testing.T) {
	ss, err := OpenStandby(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	f1 := frameFor(t, 1, 1, acceptRec("aaa1"))
	f2 := frameFor(t, 1, 2, acceptRec("bbb2"))
	f2.Payload = f2.Payload[:len(f2.Payload)/2] // truncated mid-ship
	f3 := frameFor(t, 1, 3, acceptRec("ccc3"))

	applied, err := ss.ApplyFrames("shard1", []Frame{f1, f2, f3})
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1 (the valid prefix)", applied)
	}
	if gen, last := ss.State("shard1"); gen != 1 || last != 1 {
		t.Errorf("state = gen %d seq %d, want 1/1", gen, last)
	}
	// A CRC forged to match the truncated payload is still rejected:
	// the payload no longer decodes as a journal record.
	f2.CRC = crc32.Checksum(f2.Payload, castagnoli)
	if _, err := ss.ApplyFrames("shard1", []Frame{f2}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("forged-CRC truncated frame: err = %v, want ErrBadFrame", err)
	}
	// Recovery sees only the intact record.
	recovered, _, err := ss.Recover("shard1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != "aaa1" {
		t.Errorf("recovered %v, want exactly aaa1", recovered)
	}
}

// TestStandbyDuplicateReplayIdempotent: re-applying frames already
// applied (a shipper retrying a batch after a network timeout whose
// request actually landed) changes nothing and reports zero applied.
func TestStandbyDuplicateReplayIdempotent(t *testing.T) {
	ss, err := OpenStandby(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	batch := []Frame{
		frameFor(t, 1, 1, acceptRec("aaa1")),
		frameFor(t, 1, 2, acceptRec("bbb2")),
	}
	if n, err := ss.ApplyFrames("shard1", batch); err != nil || n != 2 {
		t.Fatalf("first apply = %d, %v", n, err)
	}
	// Full replay, then a partially-overlapping batch.
	if n, err := ss.ApplyFrames("shard1", batch); err != nil || n != 0 {
		t.Fatalf("duplicate replay = %d, %v; want 0, nil", n, err)
	}
	overlap := []Frame{batch[1], frameFor(t, 1, 3, acceptRec("ccc3"))}
	if n, err := ss.ApplyFrames("shard1", overlap); err != nil || n != 1 {
		t.Fatalf("overlapping batch = %d, %v; want 1, nil", n, err)
	}
	recovered, _, err := ss.Recover("shard1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 {
		t.Fatalf("recovered %d jobs, want 3 (no duplicates)", len(recovered))
	}
}

// TestStandbyGapForcesResync: skipping a sequence number is ErrGap;
// installing the snapshot a resync would ship repairs continuity and
// the stream continues from NextSeq.
func TestStandbyGapForcesResync(t *testing.T) {
	ss, err := OpenStandby(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := ss.ApplyFrames("s", []Frame{frameFor(t, 1, 1, acceptRec("aaa1"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.ApplyFrames("s", []Frame{frameFor(t, 1, 3, acceptRec("ccc3"))}); !errors.Is(err, ErrGap) {
		t.Fatalf("seq gap err = %v, want ErrGap", err)
	}
	if _, err := ss.ApplyFrames("s", []Frame{frameFor(t, 2, 2, acceptRec("ccc3"))}); !errors.Is(err, ErrGap) {
		t.Fatalf("gen change err = %v, want ErrGap", err)
	}
	// Resync: gen 2 snapshot with 3 records, next live seq 4.
	snap := []Record{acceptRec("aaa1"), acceptRec("bbb2"), acceptRec("ccc3")}
	for i := range snap {
		snap[i].Seq = uint64(i + 1)
	}
	if err := ss.InstallSnapshot("s", 2, snap, 4); err != nil {
		t.Fatal(err)
	}
	if n, err := ss.ApplyFrames("s", []Frame{frameFor(t, 2, 4, acceptRec("ddd4"))}); err != nil || n != 1 {
		t.Fatalf("post-snapshot frame = %d, %v", n, err)
	}
	recovered, _, err := ss.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 4 {
		t.Errorf("recovered %d jobs, want 4", len(recovered))
	}
}

// TestStandbyRestartDuringResync: the standby dies between a snapshot
// install and the stream catching up (and once more with a torn tail
// on disk). On reopen it recovers (gen, lastSeq) from the shipped
// copy, keeps accepting the stream where it left off, and flags
// anything discontiguous as a gap.
func TestStandbyRestartDuringResync(t *testing.T) {
	dir := t.TempDir()
	ss, err := OpenStandby(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := []Record{acceptRec("aaa1"), acceptRec("bbb2")}
	for i := range snap {
		snap[i].Seq = uint64(i + 1)
	}
	if err := ss.InstallSnapshot("s", 3, snap, 3); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart mid-resync: state must come back from disk.
	ss2, err := OpenStandby(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen, last := ss2.State("s"); gen != 3 || last != 2 {
		t.Fatalf("reopened state = gen %d seq %d, want 3/2", gen, last)
	}
	if n, err := ss2.ApplyFrames("s", []Frame{frameFor(t, 3, 3, acceptRec("ccc3"))}); err != nil || n != 1 {
		t.Fatalf("resumed stream = %d, %v", n, err)
	}
	ss2.Close()

	// Tear the tail (half a frame hits disk) and restart again: the
	// torn record is dropped, continuity rewinds to the valid prefix.
	path := filepath.Join(dir, "s", shippedName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	ss3, err := OpenStandby(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ss3.Close()
	if gen, last := ss3.State("s"); gen != 3 || last != 2 {
		t.Fatalf("post-tear state = gen %d seq %d, want 3/2", gen, last)
	}
	// The dropped record re-ships as seq 3 — accepted, not a duplicate.
	if n, err := ss3.ApplyFrames("s", []Frame{frameFor(t, 3, 3, acceptRec("ccc3"))}); err != nil || n != 1 {
		t.Fatalf("re-shipped torn record = %d, %v", n, err)
	}
	recovered, _, err := ss3.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 {
		t.Errorf("recovered %d jobs, want 3", len(recovered))
	}
}

// TestStandbyRecoverStates: done records (result marooned on the dead
// primary) re-run as pending; failed records stay failed; shipped
// checkpoints ride along for pending jobs.
func TestStandbyRecoverStates(t *testing.T) {
	ss, err := OpenStandby(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	frames := []Frame{
		frameFor(t, 1, 1, acceptRec("aaa1")),
		frameFor(t, 1, 2, acceptRec("bbb2")),
		frameFor(t, 1, 3, acceptRec("ccc3")),
		frameFor(t, 1, 4, Record{Op: OpDone, ID: "aaa1"}),
		frameFor(t, 1, 5, Record{Op: OpFailed, ID: "bbb2", Err: "deterministic"}),
	}
	if _, err := ss.ApplyFrames("s", frames); err != nil {
		t.Fatal(err)
	}
	if err := ss.SaveCheckpoint("s", "ccc3", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	recovered, ckpts, err := ss.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"aaa1": "pending", "bbb2": "failed", "ccc3": "pending"}
	if len(recovered) != len(want) {
		t.Fatalf("recovered %d jobs, want %d", len(recovered), len(want))
	}
	for _, rj := range recovered {
		if rj.State != want[rj.ID] {
			t.Errorf("job %s state %q, want %q", rj.ID, rj.State, want[rj.ID])
		}
	}
	if string(ckpts["ccc3"]) != "blob" {
		t.Errorf("checkpoint for ccc3 = %q, want blob", ckpts["ccc3"])
	}
	if _, ok := ckpts["aaa1"]; ok {
		t.Error("checkpoint map has aaa1, which never checkpointed")
	}
}
