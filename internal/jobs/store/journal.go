package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"regvirt/internal/jobs"
)

// The journal is a sequence of length-prefixed, checksummed frames:
//
//	[payload length, u32 LE][CRC-32C of payload, u32 LE][JSON payload]
//
// JSON (not gob) because the records are tiny, self-describing and
// greppable when debugging a data directory by hand; CRC-32C because a
// torn write at the tail — the one corruption an append-only log with
// fsync-on-accept can actually suffer — must be detectable per record,
// not per file. Replay accepts the longest valid prefix and discards
// the rest, so a crash mid-append loses at most the record being
// written, never the journal.

// Journal operations.
const (
	// OpAccept records a job admitted for execution. Its frame is
	// fsynced before the submission is acknowledged: an accepted job
	// survives any subsequent crash.
	OpAccept = "accept"
	// OpDone records that the job's result was persisted to the result
	// store (the result file is the durable artifact; the record only
	// closes the journal entry).
	OpDone = "done"
	// OpFailed records a deterministic failure — one that would repeat
	// on re-execution, so replay must not re-enqueue the job.
	OpFailed = "failed"
)

// Record is one journal entry.
type Record struct {
	// Seq is a monotonically increasing sequence number within one
	// journal generation (compaction restarts it).
	Seq uint64 `json:"seq"`
	// Op is one of OpAccept, OpDone, OpFailed.
	Op string `json:"op"`
	// ID is the job's content address (jobs.Job.Key).
	ID string `json:"id"`
	// Async records how the job was submitted (informational).
	Async bool `json:"async,omitempty"`
	// Job is the full spec, present on OpAccept so replay can re-run it.
	Job *jobs.Job `json:"job,omitempty"`
	// Err is the failure message, present on OpFailed.
	Err string `json:"err,omitempty"`
}

// maxRecordSize bounds one frame's payload. Real records are a few
// hundred bytes (the largest field is an inline kernel's assembly);
// the cap keeps a corrupt length prefix from allocating gigabytes
// during replay.
const maxRecordSize = 1 << 20

const frameHeaderSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameRecord encodes one record into its on-disk frame.
func frameRecord(rec Record) ([]byte, error) {
	payload, err := recordPayload(rec)
	if err != nil {
		return nil, err
	}
	return frameBytes(payload), nil
}

// recordPayload marshals one record's frame payload (the JSON body the
// CRC covers).
func recordPayload(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: marshal journal record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("store: journal record for %s is %d bytes (max %d)", rec.ID, len(payload), maxRecordSize)
	}
	return payload, nil
}

// putFrameHeader writes the length+CRC header for payload into buf.
func putFrameHeader(buf, payload []byte) {
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
}

// readJournal decodes the longest valid prefix of a journal stream. It
// never fails: any malformed frame — short header, oversized or zero
// length, checksum mismatch, non-JSON payload, semantically invalid
// record — ends the replay at the last good frame. The second return
// is the byte length of the valid prefix, which Open uses to discard a
// corrupt tail. FuzzJournalReplay holds this to "never panics, always
// a self-consistent prefix" on arbitrary bytes.
func readJournal(r io.Reader) ([]Record, int64) {
	br := bufio.NewReader(r)
	var (
		recs  []Record
		valid int64
		hdr   [frameHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return recs, valid
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordSize {
			return recs, valid
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, valid
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, valid
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid
		}
		if !validRecord(rec) {
			return recs, valid
		}
		recs = append(recs, rec)
		valid += int64(frameHeaderSize) + int64(n)
	}
}

// validRecord rejects frames that checksum correctly but make no sense
// as journal entries (a CRC protects against corruption, not against
// a foreign file being pointed at as a journal).
func validRecord(rec Record) bool {
	switch rec.Op {
	case OpAccept:
		return safeID(rec.ID) && rec.Job != nil
	case OpDone, OpFailed:
		return safeID(rec.ID)
	}
	return false
}

// safeID accepts the IDs this store files things under. Job keys are
// 32 lowercase-hex characters; the check is slightly wider (any short
// hex-ish token) but refuses anything that could traverse paths, since
// IDs become file names.
func safeID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}
