package store

import (
	"bytes"
	"reflect"
	"testing"

	"regvirt/internal/jobs"
)

// FuzzJournalReplay holds the replay contract on arbitrary bytes: it
// never panics, it accepts exactly the longest valid prefix (parsing
// the reported prefix again yields the same records and consumes all
// of it), and appending garbage after a valid journal never costs a
// record.
func FuzzJournalReplay(f *testing.F) {
	// Seed with realistic journals: empty, a full accept/done/failed
	// life, and their torn/corrupt variants.
	j := jobs.Job{Workload: "VectorAdd", PhysRegs: 512}
	var valid bytes.Buffer
	for _, rec := range []Record{
		{Seq: 1, Op: OpAccept, ID: "aaa1", Async: true, Job: &j},
		{Seq: 2, Op: OpAccept, ID: "bbb2", Job: &j},
		{Seq: 3, Op: OpDone, ID: "aaa1"},
		{Seq: 4, Op: OpFailed, ID: "bbb2", Err: "sim: deadlock at cycle 99"},
	} {
		frame, err := frameRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(frame)
	}
	full := valid.Bytes()
	f.Add([]byte{})
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	flipped := append([]byte(nil), full...)
	flipped[12] ^= 0x40 // corrupt first payload
	f.Add(flipped)
	f.Add(append(append([]byte(nil), full...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := readJournal(bytes.NewReader(data))
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0, %d]", n, len(data))
		}
		// Reparsing the accepted prefix must be a fixed point.
		recs2, n2 := readJournal(bytes.NewReader(data[:n]))
		if n2 != n {
			t.Fatalf("reparse consumed %d of a %d-byte valid prefix", n2, n)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("reparse yielded %d records, first pass %d", len(recs2), len(recs))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recs2[i]) {
				t.Fatalf("record %d differs on reparse", i)
			}
		}
		for _, rec := range recs {
			if !validRecord(rec) {
				t.Fatalf("replay surfaced invalid record %+v", rec)
			}
		}
	})
}

// TestFuzzSeedsReplay runs the seed corpus assertions as a plain test,
// so `go test` exercises them without -fuzz.
func TestFuzzSeedsReplay(t *testing.T) {
	j := jobs.Job{Workload: "VectorAdd"}
	frame := func(rec Record) []byte {
		b, err := frameRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := frame(Record{Seq: 1, Op: OpAccept, ID: "aaa1", Job: &j})
	d := frame(Record{Seq: 2, Op: OpDone, ID: "aaa1"})
	journal := append(append([]byte{}, a...), d...)

	recs, n := readJournal(bytes.NewReader(journal))
	if len(recs) != 2 || n != int64(len(journal)) {
		t.Fatalf("clean journal: %d records, %d bytes", len(recs), n)
	}
	recs, n = readJournal(bytes.NewReader(journal[:len(journal)-1]))
	if len(recs) != 1 || n != int64(len(a)) {
		t.Fatalf("torn tail: %d records, %d bytes (want 1, %d)", len(recs), n, len(a))
	}
	// A record that checksums but is semantically invalid (unknown op)
	// ends the replay too.
	bad := frame(Record{Seq: 3, Op: "explode", ID: "aaa1"})
	recs, _ = readJournal(bytes.NewReader(append(append([]byte{}, a...), bad...)))
	if len(recs) != 1 {
		t.Fatalf("invalid op accepted: %d records", len(recs))
	}
}
