package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Journal shipping: the primary's write-ahead journal is replicated,
// frame by frame, to a warm-standby peer so a dead shard's accepted
// jobs can resume somewhere else. The unit of shipment is the same
// CRC-framed record the journal itself stores, tagged with a
// (generation, sequence) pair:
//
//   - Seq is the journal's per-record counter, contiguous within one
//     generation. The standby accepts exactly Seq == last+1; anything
//     higher is a gap (a dropped or reordered shipment) and forces a
//     resync, anything at or below last is a duplicate replay and is
//     ignored idempotently.
//   - Gen increments every time the journal is rewritten — once per
//     Open and once per compaction — and is persisted in a sidecar
//     file so it is monotonic across restarts. A frame from a newer
//     generation than the standby holds also forces a resync: the
//     journal it extends is not the journal the standby has.
//
// A resync ships the whole current journal (ExportJournal) as a
// snapshot that atomically replaces the standby's copy for that shard.
// Loss anywhere in the pipe therefore degrades to "resync soon", never
// to silent divergence.

// Frame is one shipped journal record with its framing metadata. CRC
// is the CRC-32C of Payload (the JSON record), the same checksum the
// on-disk journal stores, so the standby verifies integrity end to end
// before trusting a byte of it.
type Frame struct {
	Gen     uint64 `json:"gen"`
	Seq     uint64 `json:"seq"`
	CRC     uint32 `json:"crc"`
	Payload []byte `json:"payload"`
}

// ErrBadFrame rejects a shipped frame whose checksum does not match
// its payload or whose payload is not a valid journal record — a
// truncated or corrupted shipment must never be appended to the
// standby's journal copy.
var ErrBadFrame = errors.New("store: shipped frame failed verification")

// Decode verifies the frame's checksum and decodes its record.
func (f Frame) Decode() (Record, error) {
	if len(f.Payload) == 0 || len(f.Payload) > maxRecordSize {
		return Record{}, fmt.Errorf("%w: payload %d bytes", ErrBadFrame, len(f.Payload))
	}
	if crc32.Checksum(f.Payload, castagnoli) != f.CRC {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	recs, _ := readJournal(bytes.NewReader(frameBytes(f.Payload)))
	if len(recs) != 1 {
		return Record{}, fmt.Errorf("%w: payload is not a journal record", ErrBadFrame)
	}
	return recs[0], nil
}

// frameBytes wraps a payload in the on-disk frame header.
func frameBytes(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	putFrameHeader(buf, payload)
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// Sink receives journal activity for replication. Implementations run
// inside Store methods (sometimes under the store lock) and must not
// call back into the Store synchronously; expensive work belongs on
// the implementation's own goroutine. internal/cluster.Shipper is the
// production implementation.
type Sink interface {
	// ShipFrame offers one appended journal frame. sync is set for
	// frames whose append was fsynced (accepts — the durability point):
	// the sink should attempt delivery before returning so the standby
	// is as durable as the local disk. A failed or skipped delivery is
	// not an error; the gap machinery resyncs later.
	ShipFrame(f Frame, sync bool)
	// JournalRewritten signals a new journal generation (Open or
	// compaction): whatever the sink shipped before is stale, and it
	// must resync the standby from ExportJournal.
	JournalRewritten(gen uint64)
	// ShipCheckpoint offers the latest checkpoint blob of an unfinished
	// job. Best-effort: a lost checkpoint only costs the standby a
	// fresh run instead of a resume.
	ShipCheckpoint(id string, data []byte)
}

// SetSink arms (or, with nil, disarms) journal shipping and returns
// the current generation. The caller should resync the standby
// immediately after: everything appended before the sink was set has
// never been shipped.
func (s *Store) SetSink(sink Sink) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
	return s.gen
}

// Generation returns the journal's current generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// ExportJournal reads the current journal generation back as records —
// the snapshot a resync ships. NextSeq is the sequence number the next
// appended frame will carry, so the standby knows where contiguity
// resumes even when the tail of the export is a non-accept record.
func (s *Store) ExportJournal() (gen uint64, recs []Record, nextSeq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, 0, ErrClosed
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, journalName))
	if err != nil {
		return 0, nil, 0, fmt.Errorf("store: export journal: %w", err)
	}
	recs, _ = readJournal(bytes.NewReader(raw))
	return s.gen, recs, s.seq + 1, nil
}

// genName is the sidecar file persisting the journal generation so it
// stays monotonic across restarts (the standby orders snapshots by it).
const genName = "journal.gen"

// loadGen reads the persisted generation (0 when absent or unreadable
// — the bump that follows makes the first real generation 1).
func loadGen(dir string) uint64 {
	raw, err := os.ReadFile(filepath.Join(dir, genName))
	if err != nil {
		return 0
	}
	g, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0
	}
	return g
}

// bumpGenLocked advances and persists the generation. The write is
// atomic but its loss is benign: a re-used generation after a crash is
// caught by the standby's seq continuity check and resolved by resync.
func (s *Store) bumpGenLocked() {
	s.gen++
	_ = writeAtomic(filepath.Join(s.dir, genName), []byte(strconv.FormatUint(s.gen, 10)), true)
}
