package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"regvirt/internal/jobs"
)

func openT(t *testing.T, dir string) (*Store, []jobs.RecoveredJob) {
	t.Helper()
	s, recovered, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, recovered
}

func fakeResult(id string) *jobs.Result {
	return &jobs.Result{ID: id, Kernel: "vecadd", Cycles: 1234, Instrs: 42, StoresDigest: "deadbeef"}
}

func TestAcceptReplayResume(t *testing.T) {
	dir := t.TempDir()
	s, recovered := openT(t, dir)
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d jobs", len(recovered))
	}
	jA := jobs.Job{Workload: "VectorAdd"}
	jB := jobs.Job{Workload: "VectorAdd", PhysRegs: 512}
	jC := jobs.Job{Workload: "MUM"}
	if err := s.Accept("aaa1", jA, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("aaa1", jA, true); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Accept("bbb2", jB, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("ccc3", jC, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Done("aaa1", fakeResult("aaa1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Failed("ccc3", "sim: invariant violation"); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened store must reconstruct all three fates in acceptance
	// order: done (with the persisted result), pending, failed.
	s2, recovered := openT(t, dir)
	defer s2.Close()
	if len(recovered) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(recovered))
	}
	byID := map[string]jobs.RecoveredJob{}
	for _, rj := range recovered {
		byID[rj.ID] = rj
	}
	if rj := byID["aaa1"]; rj.State != "done" || rj.Result == nil || rj.Result.Cycles != 1234 || !rj.Async {
		t.Fatalf("aaa1 = %+v, want done with persisted result", rj)
	}
	if rj := byID["bbb2"]; rj.State != "pending" || rj.Job.PhysRegs != 512 || rj.Async {
		t.Fatalf("bbb2 = %+v, want pending sync job", rj)
	}
	if rj := byID["ccc3"]; rj.State != "failed" || rj.Err != "sim: invariant violation" {
		t.Fatalf("ccc3 = %+v, want failed", rj)
	}
	if got := s2.PendingCount(); got != 1 {
		t.Fatalf("reopened pending = %d, want 1", got)
	}

	// Compaction on open keeps only the pending accept: a third open
	// sees just bbb2 in the journal, while aaa1's result stays
	// addressable through the result store.
	s2.Close()
	s3, recovered := openT(t, dir)
	defer s3.Close()
	if len(recovered) != 1 || recovered[0].ID != "bbb2" {
		t.Fatalf("post-compaction recovery = %+v, want only bbb2", recovered)
	}
	if res, ok := s3.LoadResult("aaa1"); !ok || res.Cycles != 1234 {
		t.Fatal("persisted result lost by compaction")
	}
}

func TestDoneWithoutResultFileReruns(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Accept("feed", jobs.Job{Workload: "VectorAdd"}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Done("feed", fakeResult("feed")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, resultsDir, "feed.json")); err != nil {
		t.Fatal(err)
	}
	s2, recovered := openT(t, dir)
	defer s2.Close()
	if len(recovered) != 1 || recovered[0].State != "pending" {
		t.Fatalf("recovery = %+v, want the done-but-resultless job downgraded to pending", recovered)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.Accept("aaa1", jobs.Job{Workload: "VectorAdd"}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("bbb2", jobs.Job{Workload: "MUM"}, false); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A torn append leaves garbage at the tail; replay must keep the
	// intact prefix.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	s2, recovered := openT(t, dir)
	defer s2.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs after torn tail, want 2", len(recovered))
	}
	// The compaction rewrite must have dropped the garbage: a third
	// open replays cleanly too.
	s2.Close()
	s3, recovered := openT(t, dir)
	defer s3.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs after rewrite, want 2", len(recovered))
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	s.Accept("aaa1", jobs.Job{Workload: "VectorAdd"}, false)
	s.Accept("bbb2", jobs.Job{Workload: "MUM"}, false)
	s.Close()

	// Flip a byte inside the SECOND record's payload: replay keeps the
	// first record (longest valid prefix), loses the second.
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := readJournal(bytes.NewReader(raw))
	if len(recs) != 2 {
		t.Fatalf("fixture journal has %d records, want 2", len(recs))
	}
	first, _ := frameRecord(recs[0])
	raw[len(first)+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recovered := openT(t, dir)
	defer s2.Close()
	if len(recovered) != 1 || recovered[0].ID != "aaa1" {
		t.Fatalf("recovery = %+v, want only the record before the corruption", recovered)
	}
}

func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	defer s.Close()
	blob := []byte("opaque gob bytes")
	if _, ok := s.LoadCheckpoint("aaa1"); ok {
		t.Fatal("checkpoint present before save")
	}
	if err := s.SaveCheckpoint("aaa1", blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadCheckpoint("aaa1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("LoadCheckpoint = %q, %v", got, ok)
	}
	// Done must clear the checkpoint: a finished job never resumes.
	s.Accept("aaa1", jobs.Job{Workload: "VectorAdd"}, false)
	s.Done("aaa1", fakeResult("aaa1"))
	if _, ok := s.LoadCheckpoint("aaa1"); ok {
		t.Fatal("checkpoint survived Done")
	}
	if err := s.DropCheckpoint("aaa1"); err != nil {
		t.Fatal("DropCheckpoint of absent checkpoint must be a no-op:", err)
	}
}

func TestRejectsUnsafeIDs(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	defer s.Close()
	for _, id := range []string{"", "../../etc/passwd", "a/b", "a.b", "x y"} {
		if err := s.Accept(id, jobs.Job{Workload: "VectorAdd"}, false); err == nil {
			t.Errorf("Accept(%q) succeeded, want error", id)
		}
		if _, ok := s.LoadResult(id); ok {
			t.Errorf("LoadResult(%q) hit", id)
		}
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	s.Close()
	if err := s.Accept("aaa1", jobs.Job{Workload: "VectorAdd"}, false); err == nil {
		t.Fatal("Accept on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close must be a no-op:", err)
	}
}

func TestCompactionTriggersOnSize(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	defer s.Close()
	// A kernel large enough that a few hundred accept/done pairs cross
	// the compaction threshold.
	big := jobs.Job{Kernel: string(bytes.Repeat([]byte("ADD R0, R0, R1\n"), 400))}
	res := fakeResult("x")
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("%08x", i)
		if err := s.Accept(id, big, false); err != nil {
			t.Fatal(err)
		}
		if err := s.Done(id, res); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > compactBytes {
		t.Fatalf("journal is %d bytes; compaction never fired", info.Size())
	}
}
