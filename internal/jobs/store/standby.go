package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"regvirt/internal/jobs"
)

// StandbyStore is the receiving half of journal shipping: it files
// journal copies shipped by primary shards so that, when a shard dies,
// its accepted-but-unfinished jobs can be adopted and resumed here.
// One directory per primary:
//
//	<dir>/<shard>/shipped.wal       — the shipped journal (same frame format)
//	<dir>/<shard>/journal.gen       — the shipped generation
//	<dir>/<shard>/checkpoints/<id>.ckpt — shipped checkpoint blobs
//
// Continuity discipline: a frame is appended only when its generation
// matches and its sequence number is exactly last+1. Duplicates (seq
// at or below last) are acknowledged and dropped — shippers retry
// batches after network errors, so replay idempotence is part of the
// contract. Anything else is ErrGap, which tells the shipper to send
// a full snapshot; InstallSnapshot replaces the shard's copy wholesale.
type StandbyStore struct {
	dir string

	mu     sync.Mutex
	shards map[string]*standbyShard
	closed bool
}

type standbyShard struct {
	f       *os.File // shipped.wal, opened for append
	gen     uint64
	lastSeq uint64
	pending int    // pending accepts per the last full replay (status only)
	fence   uint64 // minimum ownership epoch this copy accepts ships from
}

// ErrGap reports a shipped frame that does not extend the standby's
// copy contiguously — a generation change or a skipped sequence
// number. The shipper's answer is a full resync.
var ErrGap = errors.New("store: shipped frame does not extend the standby copy (resync needed)")

const shippedName = "shipped.wal"

// OpenStandby opens (creating if needed) a standby directory and
// reloads every shard copy already on disk, truncating any corrupt
// tail exactly like the primary journal's own replay does.
func OpenStandby(dir string) (*StandbyStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: standby: %w", err)
	}
	ss := &StandbyStore{dir: dir, shards: map[string]*standbyShard{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: standby: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !safeID(e.Name()) {
			continue
		}
		sh, err := ss.loadShard(e.Name())
		if err != nil {
			return nil, err
		}
		ss.shards[e.Name()] = sh
	}
	return ss, nil
}

// loadShard opens one shard's copy: replay the shipped journal,
// truncate the corrupt tail, recover (gen, lastSeq) and open for
// append. Also the "standby restart during resync" path — whatever
// valid prefix the interrupted shipment left is where continuity
// resumes, and the next frame either extends it or forces a resync.
func (ss *StandbyStore) loadShard(shard string) (*standbyShard, error) {
	sdir := filepath.Join(ss.dir, shard)
	for _, d := range []string{sdir, filepath.Join(sdir, checkpointsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: standby: %w", err)
		}
	}
	path := filepath.Join(sdir, shippedName)
	raw, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: standby: read %s: %w", shard, err)
	}
	recs, valid := readJournal(bytes.NewReader(raw))
	if int64(len(raw)) > valid {
		if err := os.Truncate(path, valid); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("store: standby: truncate %s: %w", shard, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: standby: open %s: %w", shard, err)
	}
	sh := &standbyShard{f: f, gen: loadGen(sdir), pending: countPending(recs), fence: loadFence(sdir)}
	if len(recs) > 0 {
		sh.lastSeq = recs[len(recs)-1].Seq
	}
	return sh, nil
}

// fenceName is the sidecar persisting a shard copy's fence epoch, so
// a restarted standby keeps refusing a deposed primary's ships.
const fenceName = "fence.epoch"

// loadFence reads the persisted fence (0 when absent: accept any epoch).
func loadFence(dir string) uint64 {
	raw, err := os.ReadFile(filepath.Join(dir, fenceName))
	if err != nil {
		return 0
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0
	}
	return e
}

// Fence raises (never lowers — the fence only ratchets forward) the
// minimum ownership epoch accepted for the shard's copy, persisting it
// durably before it takes effect. Called on adoption with the router's
// bumped epoch, and on ships that present a legitimately higher epoch.
func (ss *StandbyStore) Fence(shard string, epoch uint64) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrClosed
	}
	sh, err := ss.shardLocked(shard)
	if err != nil {
		return err
	}
	if epoch <= sh.fence {
		return nil
	}
	sdir := filepath.Join(ss.dir, shard)
	if err := writeAtomic(filepath.Join(sdir, fenceName), []byte(strconv.FormatUint(epoch, 10)), true); err != nil {
		return err
	}
	sh.fence = epoch
	return nil
}

// FenceEpoch returns the shard copy's current fence (0 = unfenced).
func (ss *StandbyStore) FenceEpoch(shard string) uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if sh, ok := ss.shards[shard]; ok {
		return sh.fence
	}
	return 0
}

// shard returns (creating if needed) the shard's state; ss.mu held.
func (ss *StandbyStore) shardLocked(shard string) (*standbyShard, error) {
	if !safeID(shard) {
		return nil, fmt.Errorf("store: standby: invalid shard name %q", shard)
	}
	if sh, ok := ss.shards[shard]; ok {
		return sh, nil
	}
	sh, err := ss.loadShard(shard)
	if err != nil {
		return nil, err
	}
	ss.shards[shard] = sh
	return sh, nil
}

// ApplyFrames appends shipped frames to the shard's copy in order,
// fsyncing once at the end, and returns how many were newly applied.
// Duplicates are skipped silently; the first gap or bad frame stops
// the batch with ErrGap/ErrBadFrame (everything before it is kept —
// it extended the copy validly).
func (ss *StandbyStore) ApplyFrames(shard string, frames []Frame) (applied int, err error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return 0, ErrClosed
	}
	sh, err := ss.shardLocked(shard)
	if err != nil {
		return 0, err
	}
	for _, f := range frames {
		rec, derr := f.Decode()
		if derr != nil {
			err = derr
			break
		}
		if f.Gen != sh.gen {
			// Bootstrap: an empty copy adopts the first generation it
			// sees, provided the stream starts at its beginning.
			if sh.gen == 0 && sh.lastSeq == 0 && f.Seq == 1 {
				sdir := filepath.Join(ss.dir, shard)
				if werr := writeAtomic(filepath.Join(sdir, genName), []byte(strconv.FormatUint(f.Gen, 10)), true); werr != nil {
					err = werr
					break
				}
				sh.gen = f.Gen
			} else {
				err = fmt.Errorf("%w: frame gen %d, have gen %d", ErrGap, f.Gen, sh.gen)
				break
			}
		}
		if f.Seq <= sh.lastSeq {
			continue // duplicate replay: idempotent
		}
		if f.Seq != sh.lastSeq+1 {
			err = fmt.Errorf("%w: frame seq %d, have seq %d", ErrGap, f.Seq, sh.lastSeq)
			break
		}
		if _, werr := sh.f.Write(frameBytes(f.Payload)); werr != nil {
			err = fmt.Errorf("store: standby: append %s: %w", shard, werr)
			break
		}
		sh.lastSeq = f.Seq
		switch rec.Op {
		case OpAccept:
			sh.pending++
		case OpDone, OpFailed:
			if sh.pending > 0 {
				sh.pending--
			}
		}
		applied++
	}
	if applied > 0 {
		if serr := sh.f.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("store: standby: sync %s: %w", shard, serr)
		}
	}
	return applied, err
}

// InstallSnapshot replaces the shard's copy wholesale with a shipped
// journal export: records re-framed into a fresh shipped.wal, the
// generation sidecar updated, continuity reset to nextSeq-1. This is
// the resync path — after it, ApplyFrames expects seq nextSeq.
func (ss *StandbyStore) InstallSnapshot(shard string, gen uint64, recs []Record, nextSeq uint64) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrClosed
	}
	sh, err := ss.shardLocked(shard)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		if !validRecord(rec) {
			return fmt.Errorf("%w: snapshot record for %q", ErrBadFrame, rec.ID)
		}
		frame, err := frameRecord(rec)
		if err != nil {
			return err
		}
		buf.Write(frame)
	}
	sdir := filepath.Join(ss.dir, shard)
	sh.f.Close()
	if err := writeAtomic(filepath.Join(sdir, shippedName), buf.Bytes(), true); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(sdir, genName), []byte(strconv.FormatUint(gen, 10)), true); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(sdir, shippedName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: standby: reopen %s: %w", shard, err)
	}
	sh.f = f
	sh.gen = gen
	if nextSeq == 0 {
		nextSeq = 1
	}
	sh.lastSeq = nextSeq - 1
	sh.pending = countPending(recs)
	return nil
}

// SaveCheckpoint files a shipped checkpoint blob for one of the
// shard's jobs.
func (ss *StandbyStore) SaveCheckpoint(shard, id string, data []byte) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrClosed
	}
	if _, err := ss.shardLocked(shard); err != nil {
		return err
	}
	if !safeID(id) {
		return fmt.Errorf("store: standby: invalid job id %q", id)
	}
	return writeAtomic(filepath.Join(ss.dir, shard, checkpointsDir, id+".ckpt"), data, true)
}

// Recover reconstructs the shard's jobs from its shipped copy, in
// acceptance order, plus the shipped checkpoints of unfinished ones.
// "done" entries come back as pending: the result file lives on the
// (dead) primary's disk, and re-running is byte-identical by the
// determinism contract, so adoption re-enqueues them. "failed" entries
// stay failed — the journal promises they fail deterministically.
func (ss *StandbyStore) Recover(shard string) ([]jobs.RecoveredJob, map[string][]byte, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, nil, ErrClosed
	}
	sh, err := ss.shardLocked(shard)
	if err != nil {
		return nil, nil, err
	}
	if err := sh.f.Sync(); err != nil {
		return nil, nil, fmt.Errorf("store: standby: sync %s: %w", shard, err)
	}
	raw, err := os.ReadFile(filepath.Join(ss.dir, shard, shippedName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: standby: read %s: %w", shard, err)
	}
	recs, _ := readJournal(bytes.NewReader(raw))

	type jstate struct {
		job    jobs.Job
		async  bool
		state  string
		errMsg string
	}
	states := map[string]*jstate{}
	var order []string
	for _, rec := range recs {
		switch rec.Op {
		case OpAccept:
			if st, ok := states[rec.ID]; ok {
				st.state, st.errMsg = "pending", ""
				st.job, st.async = *rec.Job, rec.Async || st.async
				continue
			}
			states[rec.ID] = &jstate{job: *rec.Job, async: rec.Async, state: "pending"}
			order = append(order, rec.ID)
		case OpDone:
			if st, ok := states[rec.ID]; ok {
				st.state = "pending" // result unreachable on the dead primary: re-run
			}
		case OpFailed:
			if st, ok := states[rec.ID]; ok {
				st.state, st.errMsg = "failed", rec.Err
			}
		}
	}
	var recovered []jobs.RecoveredJob
	ckpts := map[string][]byte{}
	for _, id := range order {
		st := states[id]
		recovered = append(recovered, jobs.RecoveredJob{
			ID: id, Job: st.job, Async: st.async, State: st.state, Err: st.errMsg,
		})
		if st.state == "pending" {
			if data, err := os.ReadFile(filepath.Join(ss.dir, shard, checkpointsDir, id+".ckpt")); err == nil && len(data) > 0 {
				ckpts[id] = data
			}
		}
	}
	return recovered, ckpts, nil
}

// ShardStatus is one shipped copy's point-in-time state.
type ShardStatus struct {
	Shard   string `json:"shard"`
	Gen     uint64 `json:"gen"`
	LastSeq uint64 `json:"last_seq"`
	Pending int    `json:"pending"`
	Fence   uint64 `json:"fence,omitempty"`
}

// State reports (gen, lastSeq) for one shard — what the ship protocol
// acknowledges so the shipper can detect divergence.
func (ss *StandbyStore) State(shard string) (gen, lastSeq uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if sh, ok := ss.shards[shard]; ok {
		return sh.gen, sh.lastSeq
	}
	return 0, 0
}

// Status lists every shard copy this standby holds.
func (ss *StandbyStore) Status() []ShardStatus {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var out []ShardStatus
	for name, sh := range ss.shards {
		out = append(out, ShardStatus{Shard: name, Gen: sh.gen, LastSeq: sh.lastSeq, Pending: sh.pending, Fence: sh.fence})
	}
	return out
}

// Close closes every shard copy's journal file.
func (ss *StandbyStore) Close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil
	}
	ss.closed = true
	var firstErr error
	for _, sh := range ss.shards {
		if err := sh.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := sh.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// countPending tallies accepts with no terminal record.
func countPending(recs []Record) int {
	state := map[string]bool{} // id -> pending?
	for _, rec := range recs {
		switch rec.Op {
		case OpAccept:
			state[rec.ID] = true
		case OpDone, OpFailed:
			if _, ok := state[rec.ID]; ok {
				state[rec.ID] = false
			}
		}
	}
	n := 0
	for _, p := range state {
		if p {
			n++
		}
	}
	return n
}
