// Package store is the durability layer behind the jobs pool: a
// write-ahead journal of accepted jobs, a content-addressed result
// store, and per-job simulation checkpoints, all under one data
// directory:
//
//	<dir>/journal.wal      — CRC-framed append-only journal (journal.go)
//	<dir>/results/<id>.json — persisted results, atomically renamed in
//	<dir>/checkpoints/<id>.ckpt — latest gob checkpoint of an unfinished job
//
// The contract regvd's crash-recovery test enforces: once Accept
// returns, the job survives a SIGKILL at any instant — a restart
// replays the journal, re-enqueues everything unfinished (resuming
// from the latest checkpoint when one exists) and serves everything
// finished from the result store, byte-identical to a daemon that was
// never killed.
//
// Crash-safety mechanics: Accept fsyncs its journal frame before
// returning; results and checkpoints are written to a temp file in the
// target directory, fsynced and renamed into place (readers never see
// a partial file); journal replay truncates to the longest valid
// prefix, so a torn append loses only the torn record; compaction
// rewrites the journal through the same temp-and-rename door. *Store
// satisfies jobs.Recorder.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"regvirt/internal/faultinject"
	"regvirt/internal/integrity"
	"regvirt/internal/jobs"
)

const (
	journalName    = "journal.wal"
	resultsDir     = "results"
	checkpointsDir = "checkpoints"
	// compactBytes is the journal size past which a Done/Failed append
	// triggers compaction. Completed entries dominate a long-lived
	// journal; rewriting just the live accepts caps replay time.
	compactBytes = 1 << 20
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

type pendingAccept struct {
	job   jobs.Job
	async bool
}

// Store is the on-disk journal + result + checkpoint store. All
// methods are safe for concurrent use; *Store implements jobs.Recorder.
type Store struct {
	dir string

	faults *faultinject.Injector // nil = no injection (nil receiver is inert)

	mu      sync.Mutex
	f       *os.File // journal, opened for append
	size    int64    // journal byte length
	seq     uint64
	gen     uint64 // journal generation (bumped per Open/compaction, persisted)
	sink    Sink   // journal-shipping sink, nil when shipping is off
	pending map[string]pendingAccept // accepted, neither done nor failed
	order   []string                 // pending IDs in acceptance order
	closed  bool
}

// SetFaults arms deterministic fault injection at the store's write
// sites (faultinject.SiteStoreAppend, SiteStorePersist). Call before
// the store is shared across goroutines.
func (s *Store) SetFaults(in *faultinject.Injector) { s.faults = in }

// diskAware converts an ENOSPC-rooted write failure into the typed
// *jobs.DiskFullError the HTTP layer maps to read-only 503s; every
// other error passes through unchanged.
func diskAware(op string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.ENOSPC) {
		return &jobs.DiskFullError{Op: op, Err: err}
	}
	return err
}

// Open creates or reopens the data directory, replays the journal
// (truncating any corrupt tail to the longest valid prefix), compacts
// it down to the still-unfinished accepts, and returns every job the
// journal knows about in acceptance order: State "done" entries carry
// their persisted Result, "failed" entries their recorded error, and
// "pending" entries are the ones the caller must re-enqueue. A "done"
// record whose result file has gone missing is downgraded to pending —
// the journal promises completion, so the job re-runs.
func Open(dir string) (*Store, []jobs.RecoveredJob, error) {
	for _, d := range []string{dir, filepath.Join(dir, resultsDir), filepath.Join(dir, checkpointsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: read journal: %w", err)
	}
	recs, _ := readJournal(bytes.NewReader(raw))

	type jstate struct {
		job    jobs.Job
		async  bool
		state  string
		errMsg string
	}
	states := map[string]*jstate{}
	var order []string
	for _, rec := range recs {
		switch rec.Op {
		case OpAccept:
			if st, ok := states[rec.ID]; ok {
				// Re-accepted (e.g. a failed job retried): back to pending.
				st.state, st.errMsg = "pending", ""
				st.job, st.async = *rec.Job, rec.Async || st.async
				continue
			}
			states[rec.ID] = &jstate{job: *rec.Job, async: rec.Async, state: "pending"}
			order = append(order, rec.ID)
		case OpDone:
			if st, ok := states[rec.ID]; ok {
				st.state = "done"
			}
		case OpFailed:
			if st, ok := states[rec.ID]; ok {
				st.state, st.errMsg = "failed", rec.Err
			}
		}
	}

	s := &Store{dir: dir, pending: map[string]pendingAccept{}, gen: loadGen(dir)}
	var recovered []jobs.RecoveredJob
	for _, id := range order {
		st := states[id]
		rj := jobs.RecoveredJob{ID: id, Job: st.job, Async: st.async, State: st.state, Err: st.errMsg}
		if st.state == "done" {
			if res, ok := s.LoadResult(id); ok {
				rj.Result = res
			} else {
				rj.State, rj.Err = "pending", ""
			}
		}
		if rj.State == "pending" {
			s.pending[id] = pendingAccept{job: st.job, async: st.async}
			s.order = append(s.order, id)
		}
		recovered = append(recovered, rj)
	}
	if err := s.compactLocked(); err != nil {
		return nil, nil, err
	}
	return s, recovered, nil
}

// Dir returns the data directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// PendingCount reports how many accepted jobs have no terminal record
// yet (what a crash right now would re-enqueue).
func (s *Store) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Close fsyncs and closes the journal. Result and checkpoint files are
// always complete on disk (temp-and-rename), so Close has nothing else
// to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: sync journal: %w", err)
	}
	return s.f.Close()
}

// Accept journals an admitted job and fsyncs before returning — the
// durability point of the whole subsystem. Accepting an ID that is
// already pending is a no-op (an async submission and the cache fill
// both announce the same job).
func (s *Store) Accept(id string, job jobs.Job, async bool) error {
	if !safeID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.pending[id]; ok {
		return nil
	}
	if err := s.appendLocked(Record{Op: OpAccept, ID: id, Async: async, Job: &job}, true); err != nil {
		return diskAware("journal append", err)
	}
	s.pending[id] = pendingAccept{job: job, async: async}
	s.order = append(s.order, id)
	return nil
}

// Done persists the result (atomic rename; the file is the durable
// artifact), closes the journal entry and drops the job's checkpoint.
// The journal frame is not fsynced: if it is lost, replay re-runs the
// job, finds the persisted result, and converges to the same state.
func (s *Store) Done(id string, res *jobs.Result) error {
	if !safeID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	data := res.JSON()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.faults.Fire(faultinject.SiteStorePersist); err != nil {
		return diskAware("result persist", fmt.Errorf("store: persist result: %w", err))
	}
	// The result is sealed in a checksummed envelope together with the
	// job spec that produced it: a scrubber that later finds the payload
	// rotted can re-simulate from the spec (the content address in the
	// filename is the oracle for whether the spec itself is intact).
	var spec []byte
	if pa, ok := s.pending[id]; ok {
		spec, _ = json.Marshal(pa.job)
	}
	if err := writeAtomic(s.resultPath(id), integrity.Seal(data, spec), true); err != nil {
		return diskAware("result persist", err)
	}
	if err := s.appendLocked(Record{Op: OpDone, ID: id}, false); err != nil {
		return diskAware("journal append", err)
	}
	delete(s.pending, id)
	s.dropCheckpointLocked(id)
	return s.maybeCompactLocked()
}

// Failed records a deterministic failure so replay does not re-enqueue
// a job that can only fail again. Transient failures (cancellation,
// shutdown, timeouts) must NOT be journaled — leaving them pending is
// what lets a restart resume them.
func (s *Store) Failed(id, msg string) error {
	if !safeID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendLocked(Record{Op: OpFailed, ID: id, Err: msg}, false); err != nil {
		return diskAware("journal append", err)
	}
	delete(s.pending, id)
	s.dropCheckpointLocked(id)
	return s.maybeCompactLocked()
}

// LoadResult reads a persisted result by job ID — the second tier
// behind the in-memory cache. A missing, corrupt (envelope checksum
// failure) or unparseable file is simply a miss: the job re-simulates
// and the scrubber heals the file in the background. Pre-envelope
// files (no RVI1 header) stay readable.
func (s *Store) LoadResult(id string) (*jobs.Result, bool) {
	if !safeID(id) {
		return nil, false
	}
	data, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return nil, false
	}
	return decodeResult(data)
}

// decodeResult unwraps and parses a result file's bytes. Split out of
// LoadResult so the corrupt-input fuzzer can hammer it without disk.
func decodeResult(data []byte) (*jobs.Result, bool) {
	env, err := integrity.Open(data)
	if err != nil {
		return nil, false
	}
	var res jobs.Result
	if err := json.Unmarshal(env.Payload, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// SaveCheckpoint atomically replaces the job's checkpoint. data is an
// opaque blob (the pool gob-encodes a sim.Checkpoint); the store only
// files it.
func (s *Store) SaveCheckpoint(id string, data []byte) error {
	if !safeID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	s.mu.Lock()
	closed, sink := s.closed, s.sink
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := writeAtomic(s.checkpointPath(id), integrity.Seal(data, nil), true); err != nil {
		return diskAware("checkpoint persist", err)
	}
	if sink != nil {
		// The standby receives the raw blob; its copy is sealed by the
		// store that eventually adopts it.
		sink.ShipCheckpoint(id, data)
	}
	return nil
}

// LoadCheckpoint returns the job's latest checkpoint, if any. A
// corrupt envelope is a miss — checkpoints are a pure optimization,
// and determinism makes restarting from cycle 0 reach the identical
// result.
func (s *Store) LoadCheckpoint(id string) ([]byte, bool) {
	if !safeID(id) {
		return nil, false
	}
	data, err := os.ReadFile(s.checkpointPath(id))
	if err != nil {
		return nil, false
	}
	return decodeCheckpoint(data)
}

// decodeCheckpoint unwraps a checkpoint file's bytes (fuzzed like
// decodeResult). Empty payloads are a miss: a zero-byte checkpoint
// restores nothing.
func decodeCheckpoint(data []byte) ([]byte, bool) {
	if len(data) == 0 {
		return nil, false
	}
	env, err := integrity.Open(data)
	if err != nil || len(env.Payload) == 0 {
		return nil, false
	}
	return env.Payload, true
}

// DropCheckpoint removes the job's checkpoint (used when a checkpoint
// turns out to be unusable; Done and Failed drop it themselves).
func (s *Store) DropCheckpoint(id string) error {
	if !safeID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropCheckpointLocked(id)
}

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, resultsDir, id+".json")
}

func (s *Store) checkpointPath(id string) string {
	return filepath.Join(s.dir, checkpointsDir, id+".ckpt")
}

func (s *Store) dropCheckpointLocked(id string) error {
	err := os.Remove(s.checkpointPath(id))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: drop checkpoint: %w", err)
	}
	return nil
}

// appendLocked frames and writes one record; sync makes it durable
// before returning. With a shipping sink armed, the frame is offered
// to it after the local write succeeds — synchronously for fsynced
// (accept) frames, so the standby's copy is as strong as the local
// one before the caller acknowledges anything.
func (s *Store) appendLocked(rec Record, sync bool) error {
	if err := s.faults.Fire(faultinject.SiteStoreAppend); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	s.seq++
	rec.Seq = s.seq
	payload, err := recordPayload(rec)
	if err != nil {
		return err
	}
	buf := frameBytes(payload)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	s.size += int64(len(buf))
	if sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync journal: %w", err)
		}
	}
	if s.sink != nil {
		s.sink.ShipFrame(Frame{
			Gen:     s.gen,
			Seq:     rec.Seq,
			CRC:     crc32.Checksum(payload, castagnoli),
			Payload: payload,
		}, sync)
	}
	return nil
}

func (s *Store) maybeCompactLocked() error {
	if s.size <= compactBytes {
		return nil
	}
	return s.compactLocked()
}

// compactLocked rewrites the journal to contain only the accepts still
// pending, through a temp file fsynced and renamed over the old
// journal — a crash at any point leaves either the old or the new
// generation, both valid. The generation counter bumps with the
// rewrite, and an armed shipping sink is told so it resyncs the
// standby onto the new generation.
func (s *Store) compactLocked() error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	// Drop IDs that left the pending set since their accept.
	live := s.order[:0]
	for _, id := range s.order {
		if _, ok := s.pending[id]; ok {
			live = append(live, id)
		}
	}
	s.order = live

	var buf bytes.Buffer
	s.seq = 0
	for _, id := range s.order {
		pa := s.pending[id]
		s.seq++
		frame, err := frameRecord(Record{Seq: s.seq, Op: OpAccept, ID: id, Async: pa.async, Job: &pa.job})
		if err != nil {
			return err
		}
		buf.Write(frame)
	}
	path := filepath.Join(s.dir, journalName)
	if err := writeAtomic(path, buf.Bytes(), true); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen journal: %w", err)
	}
	s.f = f
	s.size = int64(buf.Len())
	s.bumpGenLocked()
	if s.sink != nil {
		s.sink.JournalRewritten(s.gen)
	}
	return nil
}

// writeAtomic writes data to path via a temp file in the same
// directory: write, (optionally) fsync, rename, fsync the directory.
// Readers see the old content or the new, never a prefix.
func writeAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", filepath.Base(path), err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename %s: %w", filepath.Base(path), err)
	}
	if sync {
		syncDir(dir)
	}
	return nil
}

// syncDir makes a rename durable. Failure is ignored: some filesystems
// refuse directory fsync, and the fallback behaviour (rename durable at
// the filesystem's leisure) is the best available there.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
