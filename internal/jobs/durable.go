package jobs

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"time"

	"regvirt/internal/sim"
)

// Recorder is the pool's durability hook, implemented by
// internal/jobs/store. The pool journals every accepted job before
// acknowledging it, persists finished results, and checkpoints
// long-running simulations so a killed daemon resumes instead of
// re-simulating from scratch. A nil Recorder (Options.Store unset)
// keeps the pool fully in-memory.
type Recorder interface {
	// Accept journals an admitted job; it must be durable (fsynced)
	// before returning. Accepting an already-pending ID is a no-op.
	Accept(id string, job Job, async bool) error
	// Done persists the result and closes the job's journal entry.
	Done(id string, res *Result) error
	// Failed records a deterministic failure (one that would repeat on
	// re-execution) so replay does not re-enqueue the job.
	Failed(id, msg string) error
	// LoadResult reads a persisted result — the cache tier behind the
	// in-memory result cache.
	LoadResult(id string) (*Result, bool)
	// SaveCheckpoint atomically replaces the job's checkpoint blob.
	SaveCheckpoint(id string, data []byte) error
	// LoadCheckpoint returns the job's latest checkpoint, if any.
	LoadCheckpoint(id string) ([]byte, bool)
	// DropCheckpoint removes an unusable checkpoint.
	DropCheckpoint(id string) error
}

// RecoveredJob is one journal entry reconstructed at startup, in
// acceptance order. State is "pending" (unfinished — re-enqueue),
// "done" (Result carries the persisted result) or "failed" (Err
// carries the recorded deterministic failure).
type RecoveredJob struct {
	ID     string
	Job    Job
	Async  bool
	State  string
	Err    string
	Result *Result
}

// Interrupt begins a graceful drain: every in-flight durable
// simulation is cancelled, which makes it emit a final consistent
// checkpoint (sim.Config.CheckpointOnCancel) before aborting. Call it
// ahead of Close so the drain window is spent checkpointing rather
// than waiting out simulations; a later restart resumes each
// interrupted job from its shutdown checkpoint.
func (p *Pool) Interrupt() {
	p.stopOnce.Do(func() { close(p.stopping) })
}

// isStopping reports whether a graceful drain has begun.
func (p *Pool) isStopping() bool {
	select {
	case <-p.stopping:
		return true
	default:
		return false
	}
}

// Restore re-registers journal-recovered jobs on a fresh pool: done
// and failed jobs become addressable statuses again, pending jobs are
// re-enqueued in the background (resuming from their latest checkpoint
// when one exists). It returns the number of re-enqueued jobs.
func (p *Pool) Restore(recovered []RecoveredJob) int {
	now := time.Now()
	resumed := 0
	for _, rj := range recovered {
		p.m.journalReplayed.Add(1)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return resumed
		}
		if _, ok := p.status[rj.ID]; ok {
			p.mu.Unlock()
			continue
		}
		switch rj.State {
		case "done":
			p.status[rj.ID] = &JobStatus{ID: rj.ID, State: "done", Result: rj.Result, SubmittedAt: now, FinishedAt: now}
			p.mu.Unlock()
		case "failed":
			p.status[rj.ID] = &JobStatus{ID: rj.ID, State: "failed", Error: rj.Err, SubmittedAt: now, FinishedAt: now}
			p.mu.Unlock()
		default: // pending
			st := &JobStatus{ID: rj.ID, State: "running", SubmittedAt: now}
			p.status[rj.ID] = st
			p.mu.Unlock()
			go p.runAsync(st, rj.Job)
			resumed++
		}
	}
	return resumed
}

// runDurable executes one job under the durability contract: resume
// from the latest checkpoint if one exists, checkpoint periodically
// (and on drain or preemption cancellation), persist the result, and
// journal deterministic failures. Runs on a worker goroutine inside
// runJobContained's panic barrier. e, when non-nil, is the job's
// preemption handle: closing it cancels the run the same way a drain
// does, and the resulting cancellation is reported as errPreempted so
// the dispatch loop re-enqueues instead of failing the waiters.
func (p *Pool) runDurable(ctx context.Context, job Job, e *execution) (*Result, error) {
	id := job.Key()

	// A drain interrupt or a preemption must reach the simulation as a
	// cancellation so it emits its final checkpoint inside the window.
	parent := ctx
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	finished := make(chan struct{})
	defer close(finished)
	var preempt <-chan struct{}
	if e != nil {
		preempt = e.preempt
	}
	go func() {
		select {
		case <-p.stopping:
			cancel()
		case <-preempt:
			cancel()
		case <-finished:
		}
	}()

	// Checkpoint hooks are always armed with a store: ckptEvery paces
	// the periodic snapshots (0 = none), and the on-cancel snapshot —
	// what Restore and preemption resume from — is unconditional.
	hooks := runHooks{
		every:    p.ckptEvery,
		onCancel: true,
		checkpoint: func(ck *sim.Checkpoint) {
			_, sp := p.tracer.Start(ctx, "checkpoint.write")
			defer sp.End()
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
				sp.SetError(err)
				return
			}
			if err := p.store.SaveCheckpoint(id, buf.Bytes()); err == nil {
				p.m.checkpointsWritten.Add(1)
			} else {
				sp.SetError(err)
			}
		},
	}
	if data, ok := p.store.LoadCheckpoint(id); ok {
		var ck sim.Checkpoint
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err == nil {
			hooks.resume = &ck
			p.log.InfoContext(ctx, "resuming from checkpoint", "cycle", ck.Cycle)
		} else {
			// Undecodable blob: drop it and restart from scratch.
			p.store.DropCheckpoint(id)
			p.log.WarnContext(ctx, "dropped undecodable checkpoint", "err", err)
		}
	}

	res, err := execute(ctx, job, p.kernels, p.faults.Hook(), hooks)
	if err != nil {
		if e != nil && e.interrupted() && parent.Err() == nil && !p.isStopping() &&
			(errors.Is(err, sim.ErrCancelled) || errors.Is(err, context.Canceled)) {
			// Preempted, not failed: the final checkpoint is journaled
			// and the job stays pending; the dispatch loop re-enqueues
			// it to resume from that checkpoint.
			p.log.InfoContext(ctx, "job preempted; checkpointed and re-enqueued")
			return nil, errPreempted
		}
		if durableFailure(err) {
			p.store.Failed(id, err.Error())
		}
		// Transient failures (cancellation, drain, timeout) stay pending
		// in the journal: the next start resumes them.
		return nil, err
	}
	if p.store.Done(id, res) == nil {
		p.m.resultsPersisted.Add(1)
	}
	return res, nil
}

// durableFailure reports whether err is deterministic — re-running the
// same job can only fail the same way, so the journal should record it
// instead of re-enqueueing forever. Cancellation, timeouts, contained
// panics and shedding are all transient: a retry (or a restart) may
// succeed.
func durableFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, sim.ErrCancelled) || errors.Is(err, ErrClosed) {
		return false
	}
	var pe *PanicError
	var oe *OverloadError
	var de *DiskFullError
	if errors.As(err, &pe) || errors.As(err, &oe) || errors.As(err, &de) {
		// Disk-full is transient by definition: the job itself is fine,
		// the disk is not — re-running once space frees up succeeds.
		return false
	}
	return true
}
