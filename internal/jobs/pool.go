package jobs

import (
	"context"
	"errors"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"regvirt/internal/compiler"
	"regvirt/internal/faultinject"
	"regvirt/internal/jobs/sched"
	"regvirt/internal/obs"
)

// Pool executes jobs on a bounded set of worker goroutines with a
// shared content-addressed result cache. Identical jobs submitted
// concurrently run once (singleflight); identical jobs submitted later
// are cache hits. Only unique work occupies a worker: duplicate
// submissions wait on the in-flight computation without holding a
// slot, so a thundering herd of one hot configuration cannot starve
// the queue.
//
// Unique work is dispatched by a multi-tenant fair-share scheduler
// (internal/jobs/sched): each tenant owns a weighted queue, priorities
// order jobs within it, and per-tenant quotas refuse work with typed
// 403 errors before it costs anything. With a durability store armed,
// a higher-priority arrival may checkpoint-preempt the lowest-priority
// running job — the victim snapshots, frees its worker, re-enqueues,
// and later resumes byte-identically from the journaled checkpoint.
//
// The pool is also the fault-containment boundary of the service: a
// panicking simulation is recovered into a *PanicError (the flight is
// evicted, the daemon stays up), and admission control sheds unique
// work with *OverloadError once the queue reaches the shed depth
// instead of blocking callers indefinitely.
type Pool struct {
	workers   int
	shedDepth int
	asyncTTL  time.Duration
	asyncMax  int
	faults    *faultinject.Injector

	// sched replaces the old FIFO task channel: workers block in Next
	// and Release each task when done. preemptOn gates checkpoint
	// preemption (store armed, fair policy, not disabled).
	sched     *sched.Scheduler
	preemptOn bool

	wg sync.WaitGroup
	// submitWG tracks submissions past the closed-check; Close waits
	// for it before closing the scheduler, so an in-flight Submit can
	// never enqueue into a closed scheduler.
	submitWG sync.WaitGroup

	results *Cache[string, *Result]
	kernels *Cache[kernelKey, *compiler.Kernel]

	// store, when non-nil, is the durability layer (durable.go):
	// accepted jobs are journaled before acknowledgement, results
	// persist to disk as a second cache tier, and in-flight simulations
	// checkpoint every ckptEvery cycles and on drain.
	store     Recorder
	ckptEvery uint64
	// stopping is closed by Interrupt to begin a graceful drain.
	stopping chan struct{}
	stopOnce sync.Once
	started  time.Time

	mu     sync.Mutex
	status map[string]*JobStatus
	closed bool

	// tcs is the per-tenant counter table (metrics.go), bounded by
	// maxTrackedTenants.
	tmu sync.Mutex
	tcs map[string]*tenantCounters

	// execs tracks running durable simulations for victim selection.
	execMu  sync.Mutex
	execs   map[*execution]struct{}
	execSeq uint64

	// tracer records request spans (admission, queue wait, cache and
	// disk lookups, simulation); nil disables tracing at zero cost. log
	// is never nil — it defaults to obs.Nop().
	tracer *obs.Tracer
	log    *slog.Logger

	m metrics
}

// queueCap bounds how many tasks may wait unpicked; beyond it the
// scheduler refuses with ErrSaturated, which surfaces as an
// *OverloadError (429) — the backpressure the HTTP layer propagates.
const queueCap = 1024

// Defaults for Options zero values.
const (
	// defaultShedDepth sheds before the queue saturates, leaving
	// headroom so Exec and already-admitted work still enqueue.
	defaultShedDepth = queueCap * 3 / 4
	// defaultAsyncTTL is how long finished async job records stay
	// addressable in the registry (results stay cached far longer —
	// Status falls through to the result cache after eviction).
	defaultAsyncTTL = 10 * time.Minute
	// defaultAsyncMax bounds the async registry in a long-lived daemon.
	defaultAsyncMax = 4096
)

// Options configures a pool. The zero value of every field means "the
// default", mirroring Job's convention.
type Options struct {
	// Workers is the worker-goroutine count (minimum 1).
	Workers int
	// ShedDepth is the queued-task count at which unique submissions
	// are shed with *OverloadError instead of waiting (0 = default 768;
	// negative = never shed, the queue capacity alone bounds admission).
	ShedDepth int
	// AsyncTTL is how long finished async statuses are retained
	// (0 = 10 minutes; negative = evict as soon as capacity demands).
	AsyncTTL time.Duration
	// AsyncMax caps tracked async statuses (0 = 4096; negative =
	// unbounded, the pre-eviction behaviour).
	AsyncMax int
	// Sched configures the multi-tenant scheduler: dispatch policy,
	// the tenant table with weights and quotas, strict admission. A
	// Capacity of 0 keeps the pool default (1024); negative = unbounded.
	Sched sched.Config
	// DisablePreemption turns checkpoint preemption off: higher-priority
	// arrivals wait for a free worker instead of interrupting a running
	// lower-priority job. Preemption is automatically off without a
	// Store (there is nowhere durable for the victim's checkpoint) and
	// under PolicyFIFO (priorities do not order dispatch there).
	DisablePreemption bool
	// Faults arms fault injection at the jobs/sim sites (nil = off;
	// see internal/faultinject). Never set it in production configs.
	Faults *faultinject.Injector
	// Store arms the durability layer (nil = in-memory only): accepted
	// jobs are journaled before acknowledgement, results persist across
	// restarts, and unfinished jobs checkpoint and resume. See
	// internal/jobs/store for the on-disk format.
	Store Recorder
	// CheckpointEvery is the simulated-cycle interval between durable
	// checkpoints of in-flight jobs (0 = only cancellation checkpoints,
	// i.e. drain and preemption; meaningful only with Store set).
	CheckpointEvery uint64
	// Tracer, when non-nil, records a span tree per submission
	// (admission, queue wait, cache/disk lookup, simulation) into its
	// ring buffer, served by the server's GET /v1/trace/{id}. Nil turns
	// tracing off; instrumented paths pay one nil-check.
	Tracer *obs.Tracer
	// Logger receives the pool's structured log lines (job accepted,
	// completed, failed, preempted), each stamped with the trace ID,
	// tenant and job ID from the request context. Nil discards them.
	Logger *slog.Logger
}

// NewPool starts workers goroutines (minimum 1) with default limits.
func NewPool(workers int) *Pool {
	return NewPoolWith(Options{Workers: workers})
}

// NewPoolWith starts a pool with explicit admission-control settings.
func NewPoolWith(opts Options) *Pool {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	shed := opts.ShedDepth
	switch {
	case shed == 0:
		shed = defaultShedDepth
	case shed < 0:
		shed = 0 // disabled
	case shed > queueCap:
		shed = queueCap
	}
	ttl := opts.AsyncTTL
	if ttl == 0 {
		ttl = defaultAsyncTTL
	} else if ttl < 0 {
		ttl = 0 // evict finished entries whenever capacity demands
	}
	asyncMax := opts.AsyncMax
	if asyncMax == 0 {
		asyncMax = defaultAsyncMax
	} else if asyncMax < 0 {
		asyncMax = 0 // unbounded
	}
	scfg := opts.Sched
	switch {
	case scfg.Capacity == 0:
		scfg.Capacity = queueCap
	case scfg.Capacity < 0:
		scfg.Capacity = 0 // unbounded
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.Nop()
	}
	p := &Pool{
		workers:   workers,
		shedDepth: shed,
		asyncTTL:  ttl,
		asyncMax:  asyncMax,
		faults:    opts.Faults,
		store:     opts.Store,
		ckptEvery: opts.CheckpointEvery,
		stopping:  make(chan struct{}),
		started:   time.Now(),
		sched:     sched.New(scfg),
		results:   NewCache[string, *Result](),
		kernels:   NewCache[kernelKey, *compiler.Kernel](),
		status:    map[string]*JobStatus{},
		tcs:       map[string]*tenantCounters{},
		execs:     map[*execution]struct{}{},
		tracer:    opts.Tracer,
		log:       logger,
	}
	// Preemption needs a checkpoint destination (the store) and a
	// policy under which priorities mean something.
	p.preemptOn = opts.Store != nil && !opts.DisablePreemption &&
		p.sched.Policy() == sched.PolicyFair
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				task, ok := p.sched.Next()
				if !ok {
					return
				}
				p.m.queued.Add(-1)
				p.runTask(task.Do)
				p.sched.Release(task)
			}
		}()
	}
	return p
}

// Tracer returns the pool's tracer (nil when tracing is off) so the
// HTTP layer can serve GET /v1/trace/{id} and the Prometheus span
// histograms from the same ring the pool records into.
func (p *Pool) Tracer() *obs.Tracer { return p.tracer }

// runTask executes one dispatched task with a last-resort panic
// backstop: task bodies contain their own panics (so their waiters are
// always answered), and anything that still escapes must not kill the
// other workers' host process.
func (p *Pool) runTask(task func()) {
	defer func() {
		if v := recover(); v != nil {
			p.m.panicsRecovered.Add(1)
		}
	}()
	task()
}

// Close stops the workers after in-flight submissions and the queue
// drain. Submit/Exec on a closed pool return ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	// Wait out submissions that passed the closed-check before closing
	// the scheduler they may still be enqueueing into.
	p.submitWG.Wait()
	p.sched.Close()
	p.wg.Wait()
}

// enter registers a submission for graceful shutdown; it fails once
// Close has begun. Callers must defer p.submitWG.Done() on success.
func (p *Pool) enter() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.submitWG.Add(1)
	return nil
}

// admit applies admission policy — the strict tenant set, the tenant
// table bound, per-tenant priority caps — before anything else,
// including the cache lookup, so a disallowed request is refused even
// when its result is already cached. Failures are *sched.AdmissionError
// (403, never retry unchanged).
func (p *Pool) admit(job Job) error {
	if err := p.sched.Admit(job.schedTenant(), job.Priority); err != nil {
		p.m.quotaRejected.Add(1)
		p.tenantCounters(job.schedTenant()).quotaRejected.Add(1)
		return err
	}
	return nil
}

// Submit runs a job synchronously: it validates, applies the job's
// deadline (TimeoutMS, covering queue wait as well as simulation),
// dedups against identical in-flight or completed jobs, and returns
// the shared, immutable result. Failure modes callers should expect:
// *OverloadError (shed — retry after the hint), *sched.QuotaError and
// *sched.AdmissionError (tenant policy — do not retry unchanged),
// *PanicError (contained crash — safe to retry), *sim.InvariantError
// (deterministic simulator bug), ErrClosed, and context errors.
func (p *Pool) Submit(ctx context.Context, job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	tenant := job.schedTenant()
	// Correlation context first, so the submit span, every child span
	// and every log line below carry the tenant and job ID.
	ctx = obs.WithJobID(obs.WithTenant(ctx, tenant), job.Key())
	ctx, span := p.tracer.Start(ctx, "jobs.submit")
	defer span.End()
	_, asp := p.tracer.Start(ctx, "jobs.admit")
	aerr := p.admit(job)
	asp.SetError(aerr)
	asp.End()
	if aerr != nil {
		span.SetError(aerr)
		p.log.WarnContext(ctx, "job refused at admission", "err", aerr)
		return nil, aerr
	}
	if err := p.enter(); err != nil {
		span.SetError(err)
		return nil, err
	}
	defer p.submitWG.Done()
	tc := p.tenantCounters(tenant)
	p.m.submitted.Add(1)
	tc.submitted.Add(1)
	if job.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, outcome, err := p.submitContained(ctx, job)
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	p.m.lat.record(ms)
	tc.lat.record(ms)
	span.SetAttr("outcome", outcomeLabel(outcome))
	if err != nil {
		p.m.failed.Add(1)
		tc.failed.Add(1)
		span.SetError(err)
		p.log.WarnContext(ctx, "job failed", "outcome", outcomeLabel(outcome), "ms", ms, "err", err)
		return nil, err
	}
	p.m.completed.Add(1)
	tc.completed.Add(1)
	p.log.InfoContext(ctx, "job completed", "outcome", outcomeLabel(outcome), "ms", ms)
	return res, nil
}

// outcomeLabel names a cache outcome for span attributes and logs.
func outcomeLabel(o Outcome) string {
	switch o {
	case Hit:
		return "hit"
	case Deduped:
		return "dedup"
	default:
		return "miss"
	}
}

// submitContained is the Submit body behind the panic barrier: a panic
// escaping the cache layer (e.g. an injected fill fault) becomes a
// *PanicError instead of unwinding into net/http.
func (p *Pool) submitContained(ctx context.Context, job Job) (res *Result, outcome Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			p.m.panicsRecovered.Add(1)
			res, err = nil, toPanicError(v)
		}
	}()
	res, outcome, err = p.results.Do(ctx, job.Key(), func() (*Result, error) {
		// Counted at fill start (not on the Miss outcome) so the
		// submitted == executed+deduped+hits invariant holds even when
		// the fill panics out of Do.
		p.m.executed.Add(1)
		// Second cache tier: a result persisted by an earlier process
		// (or an earlier life of this one) is served from disk without
		// re-simulating.
		if p.store != nil {
			_, lsp := p.tracer.Start(ctx, "store.load")
			r, ok := p.store.LoadResult(job.Key())
			lsp.SetAttr("hit", strconv.FormatBool(ok))
			lsp.End()
			if ok {
				p.m.diskHits.Add(1)
				return r, nil
			}
		}
		if ferr := p.faults.Fire(faultinject.SiteCacheFill); ferr != nil {
			return nil, ferr
		}
		// Journal the admission before any work happens: from here on
		// the job survives a crash (no-op if an async submission of the
		// same job already journaled it).
		if p.store != nil {
			_, jsp := p.tracer.Start(ctx, "journal.accept")
			aerr := p.store.Accept(job.Key(), job, false)
			jsp.SetError(aerr)
			jsp.End()
			if aerr != nil {
				return nil, aerr
			}
		}
		return p.runOnWorker(ctx, job)
	})
	switch outcome {
	case Hit:
		p.m.cacheHits.Add(1)
	case Deduped:
		p.m.deduped.Add(1)
	}
	return res, outcome, err
}

// errPreempted is the internal signal that a running job was
// checkpoint-interrupted to free its worker for higher-priority work.
// It never escapes the pool: runOnWorker catches it and re-enqueues the
// job, so waiters (and the singleflight flight itself) only ever
// observe the final result.
var errPreempted = errors.New("jobs: preempted for higher-priority work")

// execution is one running durable simulation's preemption handle:
// maybePreempt closes preempt to ask the simulation to checkpoint and
// free its worker.
type execution struct {
	tenant   string
	priority int
	seq      uint64
	preempt  chan struct{}
	once     sync.Once
}

func (e *execution) interrupt() { e.once.Do(func() { close(e.preempt) }) }

func (e *execution) interrupted() bool {
	select {
	case <-e.preempt:
		return true
	default:
		return false
	}
}

func (p *Pool) registerExec(e *execution) {
	if !p.preemptOn {
		return
	}
	p.execMu.Lock()
	p.execSeq++
	e.seq = p.execSeq
	p.execs[e] = struct{}{}
	p.execMu.Unlock()
}

func (p *Pool) unregisterExec(e *execution) {
	if !p.preemptOn {
		return
	}
	p.execMu.Lock()
	delete(p.execs, e)
	p.execMu.Unlock()
}

// maybePreempt runs after a task is enqueued: with every worker busy,
// it interrupts the lowest-priority running job strictly below the
// arriving priority (oldest first on ties, so the victim choice is
// deterministic). The victim checkpoints via CheckpointOnCancel, frees
// its worker, and its dispatch loop re-enqueues it to resume later.
func (p *Pool) maybePreempt(priority int) {
	if !p.preemptOn {
		return
	}
	if p.m.running.Load() < int64(p.workers) {
		return // a worker is (or is about to be) free; no need for violence
	}
	p.execMu.Lock()
	var victim *execution
	for e := range p.execs {
		if e.priority >= priority || e.interrupted() {
			continue
		}
		if victim == nil || e.priority < victim.priority ||
			(e.priority == victim.priority && e.seq < victim.seq) {
			victim = e
		}
	}
	p.execMu.Unlock()
	if victim == nil {
		return
	}
	victim.interrupt()
	p.m.preemptions.Add(1)
	p.tenantCounters(victim.tenant).preemptions.Add(1)
}

// runOnWorker schedules the simulation onto a pool worker and waits.
// The caller's ctx bounds both the queue wait and, via
// sim.Config.Cancel, the simulation itself — an expired job aborts
// within a few thousand simulated cycles instead of wedging a worker.
// Only unique work reaches here (cache hits and dedups are answered
// upstream), so this is also where admission control shelters the
// queue: at or beyond the shed depth, new unique work is refused with
// a retry hint instead of waiting unboundedly. A preempted dispatch
// loops: the job re-enqueues exempt from quotas (its slot was admitted
// once already) and resumes from its journaled checkpoint.
func (p *Pool) runOnWorker(ctx context.Context, job Job) (*Result, error) {
	tenant := job.schedTenant()
	if p.shedDepth > 0 {
		if depth := p.m.queued.Load(); depth >= int64(p.shedDepth) {
			p.m.shed.Add(1)
			p.tenantCounters(tenant).shed.Add(1)
			return nil, &OverloadError{Tenant: tenant, QueueDepth: int(depth), RetryAfter: p.retryAfter(tenant)}
		}
	}
	exempt := false
	for {
		res, err := p.dispatch(ctx, job, exempt)
		if !errors.Is(err, errPreempted) {
			return res, err
		}
		exempt = true
		p.m.resumes.Add(1)
		p.tenantCounters(tenant).resumes.Add(1)
	}
}

// dispatch enqueues one attempt at the job and waits for its outcome.
func (p *Pool) dispatch(ctx context.Context, job Job, exempt bool) (*Result, error) {
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	e := &execution{tenant: job.schedTenant(), priority: job.Priority, preempt: make(chan struct{})}
	// The queue-wait span opens before the enqueue and closes when a
	// worker picks the task up — the gap a saturated pool shows up as.
	_, qspan := p.tracer.Start(ctx, "queue.wait")
	task := &sched.Task{
		Tenant:   job.schedTenant(),
		Priority: job.Priority,
		Exempt:   exempt,
		Do: func() {
			qspan.End()
			p.m.running.Add(1)
			defer p.m.running.Add(-1)
			if err := ctx.Err(); err != nil {
				ch <- out{nil, err} // expired while queued: don't simulate
				return
			}
			p.registerExec(e)
			res, err := p.runJobContained(ctx, job, e)
			p.unregisterExec(e)
			ch <- out{res, err}
		},
	}
	if err := p.enqueueTask(task); err != nil {
		qspan.SetError(err)
		qspan.End()
		return nil, err
	}
	p.maybePreempt(job.Priority)
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		// The worker observes the same ctx and aborts shortly; the
		// flight fails, is evicted, and later submissions retry.
		return nil, ctx.Err()
	}
}

// enqueueTask hands a task to the scheduler, translating its typed
// refusals: saturation becomes an *OverloadError (429), quota errors
// get their Retry-After hint filled from the tenant's own drain time,
// and a closed scheduler becomes ErrClosed.
func (p *Pool) enqueueTask(task *sched.Task) error {
	err := p.sched.Enqueue(task)
	if err == nil {
		p.m.queued.Add(1)
		return nil
	}
	switch {
	case errors.Is(err, sched.ErrClosed):
		return ErrClosed
	case errors.Is(err, sched.ErrSaturated):
		p.m.shed.Add(1)
		p.tenantCounters(task.Tenant).shed.Add(1)
		return &OverloadError{
			Tenant:     task.Tenant,
			QueueDepth: int(p.m.queued.Load()),
			RetryAfter: p.retryAfter(task.Tenant),
		}
	}
	var qe *sched.QuotaError
	if errors.As(err, &qe) {
		qe.RetryAfter = int64(p.retryAfter(task.Tenant) / time.Millisecond)
	}
	p.m.quotaRejected.Add(1)
	p.tenantCounters(task.Tenant).quotaRejected.Add(1)
	return err
}

// runJobContained executes one job on the worker goroutine with panic
// containment: a crash anywhere below (injected or organic — the sim
// invariants that used to panic now return errors, but defense stays
// in depth) becomes a *PanicError delivered to the submitter, the
// flight is evicted, and the worker survives.
func (p *Pool) runJobContained(ctx context.Context, job Job, e *execution) (res *Result, err error) {
	ctx, span := p.tracer.Start(ctx, "sim.run")
	// Registered before the recover defer (which runs first, LIFO) so a
	// contained panic lands on the span as its *PanicError.
	defer func() {
		span.SetError(err)
		span.End()
	}()
	defer func() {
		if v := recover(); v != nil {
			p.m.panicsRecovered.Add(1)
			res, err = nil, toPanicError(v)
		}
	}()
	if ferr := p.faults.Fire(faultinject.SitePoolTask); ferr != nil {
		return nil, ferr
	}
	if p.store != nil {
		return p.runDurable(ctx, job, e)
	}
	return execute(ctx, job, p.kernels, p.faults.Hook(), runHooks{})
}

// retryAfter estimates when a shed (or quota-refused) client should
// retry: the tenant's own queue drain time at the observed p50 service
// latency and the tenant's weighted share of the workers, clamped to
// [1s, 30s]. The estimate is deliberately per-tenant — a quiet tenant
// shed during another tenant's flood gets a short, honest hint, while
// the flooding tenant gets one scaled to its own backlog.
func (p *Pool) retryAfter(tenant string) time.Duration {
	queued, share := p.sched.Share(tenant)
	p50, _ := p.m.lat.percentiles()
	workers := float64(p.workers) * share
	if workers <= 0 {
		workers = 1
	}
	d := time.Duration(p50 * float64(queued+1) / workers * float64(time.Millisecond))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Overloaded reports whether the pool is currently shedding; /healthz
// degrades on it.
func (p *Pool) Overloaded() bool {
	return p.shedDepth > 0 && p.m.queued.Load() >= int64(p.shedDepth)
}

// Exec runs an arbitrary function on a pool worker and waits for it —
// the hook cmd/experiments -j uses to bound its figure-level
// parallelism with the same workers that serve jobs. Exec does not
// touch the job counters or caches, but a panicking fn is contained
// and returned as a *PanicError. Exec tasks ride the default tenant's
// queue exempt from quotas and capacity (pool-internal plumbing, not
// client traffic).
func (p *Pool) Exec(ctx context.Context, fn func() error) error {
	if err := p.enter(); err != nil {
		return err
	}
	defer p.submitWG.Done()
	done := make(chan error, 1)
	task := &sched.Task{
		Tenant: sched.DefaultTenant,
		Exempt: true,
		Do: func() {
			defer func() {
				if v := recover(); v != nil {
					p.m.panicsRecovered.Add(1)
					done <- toPanicError(v)
				}
			}()
			done <- fn()
		},
	}
	if err := p.sched.Enqueue(task); err != nil {
		if errors.Is(err, sched.ErrClosed) {
			return ErrClosed
		}
		return err
	}
	p.m.queued.Add(1)
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// JobStatus is the lifecycle record of an asynchronous submission.
type JobStatus struct {
	ID string `json:"id"`
	// State is "running", "done" or "failed" ("done" with a Result).
	State       string    `json:"state"`
	Result      *Result   `json:"result,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// SubmitAsync validates and registers the job, starts it in the
// background, and returns its content-addressed ID immediately.
// Submitting an identical job again returns the same ID (and, through
// the cache, the same result) while it is running or done; a *failed*
// record is retried — failures are never cached, so resubmission
// re-simulates, mirroring the sync retry contract. The registry is
// bounded: finished records past the TTL are evicted on insert (their
// results stay addressable through the result cache), and when every
// tracked job is still running at capacity, the submission is shed
// with *OverloadError.
func (p *Pool) SubmitAsync(job Job) (string, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	if err := p.admit(job); err != nil {
		return "", err
	}
	id := job.Key()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return "", ErrClosed
	}
	if st, ok := p.status[id]; ok {
		if st.State != "failed" {
			p.mu.Unlock()
			return id, nil // running or done; idempotent
		}
		st.State, st.Error = "running", ""
		st.SubmittedAt, st.FinishedAt = time.Now(), time.Time{}
		p.mu.Unlock()
		if err := p.acceptDurable(id, job); err != nil {
			p.mu.Lock()
			st.State, st.Error = "failed", err.Error()
			st.FinishedAt = time.Now()
			p.mu.Unlock()
			return "", err
		}
		go p.runAsync(st, job)
		return id, nil
	}
	p.evictAsyncLocked(time.Now())
	if p.asyncMax > 0 && len(p.status) >= p.asyncMax {
		p.mu.Unlock()
		tenant := job.schedTenant()
		p.m.shed.Add(1)
		p.tenantCounters(tenant).shed.Add(1)
		return "", &OverloadError{
			Tenant:     tenant,
			QueueDepth: int(p.m.queued.Load()),
			RetryAfter: p.retryAfter(tenant),
		}
	}
	st := &JobStatus{ID: id, State: "running", SubmittedAt: time.Now()}
	p.status[id] = st
	p.mu.Unlock()
	// The 202 the caller is about to send is a durability promise:
	// journal the acceptance (fsynced) before acknowledging, so the job
	// survives a crash between the response and its execution.
	if err := p.acceptDurable(id, job); err != nil {
		p.mu.Lock()
		delete(p.status, id)
		p.mu.Unlock()
		return "", err
	}
	go p.runAsync(st, job)
	return id, nil
}

// acceptDurable journals an async acceptance when a store is armed.
func (p *Pool) acceptDurable(id string, job Job) error {
	if p.store == nil {
		return nil
	}
	return p.store.Accept(id, job, true)
}

// runAsync executes an asynchronous submission and records its outcome.
func (p *Pool) runAsync(st *JobStatus, job Job) {
	res, err := p.Submit(context.Background(), job)
	p.mu.Lock()
	defer p.mu.Unlock()
	st.FinishedAt = time.Now()
	if err != nil {
		st.State, st.Error = "failed", err.Error()
		return
	}
	st.State, st.Result = "done", res
}

// evictAsyncLocked bounds the async registry (p.mu held): finished
// records older than the TTL go first; if the registry is still at
// capacity, the oldest finished records go next. Running jobs are
// never evicted — when they alone fill the registry, the caller sheds.
func (p *Pool) evictAsyncLocked(now time.Time) {
	if p.asyncTTL > 0 {
		for id, st := range p.status {
			if st.State != "running" && now.Sub(st.FinishedAt) > p.asyncTTL {
				delete(p.status, id)
				p.m.evicted.Add(1)
			}
		}
	}
	if p.asyncMax <= 0 {
		return
	}
	for len(p.status) >= p.asyncMax {
		oldestID := ""
		var oldest time.Time
		for id, st := range p.status {
			if st.State == "running" {
				continue
			}
			if oldestID == "" || st.FinishedAt.Before(oldest) {
				oldestID, oldest = id, st.FinishedAt
			}
		}
		if oldestID == "" {
			return // everything tracked is still running
		}
		delete(p.status, oldestID)
		p.m.evicted.Add(1)
	}
}

// Status looks a job up by ID: first among asynchronous submissions,
// then in the completed-result cache (so synchronously submitted and
// TTL-evicted jobs are addressable too), and finally in the durable
// result store — a job finished by a previous life of the daemon stays
// addressable after a restart. The returned value is a copy.
func (p *Pool) Status(id string) (JobStatus, bool) {
	p.mu.Lock()
	if st, ok := p.status[id]; ok {
		cp := *st
		p.mu.Unlock()
		return cp, true
	}
	p.mu.Unlock()
	if res, ok := p.results.Get(id); ok {
		return JobStatus{ID: id, State: "done", Result: res}, true
	}
	if p.store != nil {
		if res, ok := p.store.LoadResult(id); ok {
			return JobStatus{ID: id, State: "done", Result: res}, true
		}
	}
	return JobStatus{}, false
}
