package jobs

import (
	"context"
	"sync"
	"time"

	"regvirt/internal/compiler"
	"regvirt/internal/faultinject"
)

// Pool executes jobs on a bounded set of worker goroutines with a
// shared content-addressed result cache. Identical jobs submitted
// concurrently run once (singleflight); identical jobs submitted later
// are cache hits. Only unique work occupies a worker: duplicate
// submissions wait on the in-flight computation without holding a
// slot, so a thundering herd of one hot configuration cannot starve
// the queue.
//
// The pool is also the fault-containment boundary of the service: a
// panicking simulation is recovered into a *PanicError (the flight is
// evicted, the daemon stays up), and admission control sheds unique
// work with *OverloadError once the queue reaches the shed depth
// instead of blocking callers indefinitely.
type Pool struct {
	workers   int
	shedDepth int
	asyncTTL  time.Duration
	asyncMax  int
	faults    *faultinject.Injector

	tasks chan func()
	wg    sync.WaitGroup
	// submitWG tracks submissions past the closed-check; Close waits
	// for it before closing the task channel, so an in-flight Submit
	// can never send on a closed channel.
	submitWG sync.WaitGroup

	results *Cache[string, *Result]
	kernels *Cache[kernelKey, *compiler.Kernel]

	// store, when non-nil, is the durability layer (durable.go):
	// accepted jobs are journaled before acknowledgement, results
	// persist to disk as a second cache tier, and in-flight simulations
	// checkpoint every ckptEvery cycles and on drain.
	store     Recorder
	ckptEvery uint64
	// stopping is closed by Interrupt to begin a graceful drain.
	stopping chan struct{}
	stopOnce sync.Once
	started  time.Time

	mu     sync.Mutex
	status map[string]*JobStatus
	closed bool

	m metrics
}

// queueCap bounds how many tasks may wait unpicked; further
// submissions block in Submit, which is the backpressure the HTTP
// layer propagates to clients.
const queueCap = 1024

// Defaults for Options zero values.
const (
	// defaultShedDepth sheds before the queue saturates, leaving
	// headroom so Exec and already-admitted work still enqueue.
	defaultShedDepth = queueCap * 3 / 4
	// defaultAsyncTTL is how long finished async job records stay
	// addressable in the registry (results stay cached far longer —
	// Status falls through to the result cache after eviction).
	defaultAsyncTTL = 10 * time.Minute
	// defaultAsyncMax bounds the async registry in a long-lived daemon.
	defaultAsyncMax = 4096
)

// Options configures a pool. The zero value of every field means "the
// default", mirroring Job's convention.
type Options struct {
	// Workers is the worker-goroutine count (minimum 1).
	Workers int
	// ShedDepth is the queued-task count at which unique submissions
	// are shed with *OverloadError instead of waiting (0 = default 768;
	// negative = never shed, pre-shedding blocking behaviour).
	ShedDepth int
	// AsyncTTL is how long finished async statuses are retained
	// (0 = 10 minutes; negative = evict as soon as capacity demands).
	AsyncTTL time.Duration
	// AsyncMax caps tracked async statuses (0 = 4096; negative =
	// unbounded, the pre-eviction behaviour).
	AsyncMax int
	// Faults arms fault injection at the jobs/sim sites (nil = off;
	// see internal/faultinject). Never set it in production configs.
	Faults *faultinject.Injector
	// Store arms the durability layer (nil = in-memory only): accepted
	// jobs are journaled before acknowledgement, results persist across
	// restarts, and unfinished jobs checkpoint and resume. See
	// internal/jobs/store for the on-disk format.
	Store Recorder
	// CheckpointEvery is the simulated-cycle interval between durable
	// checkpoints of in-flight jobs (0 = only the drain checkpoint;
	// meaningful only with Store set).
	CheckpointEvery uint64
}

// NewPool starts workers goroutines (minimum 1) with default limits.
func NewPool(workers int) *Pool {
	return NewPoolWith(Options{Workers: workers})
}

// NewPoolWith starts a pool with explicit admission-control settings.
func NewPoolWith(opts Options) *Pool {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	shed := opts.ShedDepth
	switch {
	case shed == 0:
		shed = defaultShedDepth
	case shed < 0:
		shed = 0 // disabled
	case shed > queueCap:
		shed = queueCap
	}
	ttl := opts.AsyncTTL
	if ttl == 0 {
		ttl = defaultAsyncTTL
	} else if ttl < 0 {
		ttl = 0 // evict finished entries whenever capacity demands
	}
	asyncMax := opts.AsyncMax
	if asyncMax == 0 {
		asyncMax = defaultAsyncMax
	} else if asyncMax < 0 {
		asyncMax = 0 // unbounded
	}
	p := &Pool{
		workers:   workers,
		shedDepth: shed,
		asyncTTL:  ttl,
		asyncMax:  asyncMax,
		faults:    opts.Faults,
		store:     opts.Store,
		ckptEvery: opts.CheckpointEvery,
		stopping:  make(chan struct{}),
		started:   time.Now(),
		tasks:     make(chan func(), queueCap),
		results:   NewCache[string, *Result](),
		kernels:   NewCache[kernelKey, *compiler.Kernel](),
		status:    map[string]*JobStatus{},
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				p.m.queued.Add(-1)
				p.runTask(task)
			}
		}()
	}
	return p
}

// runTask executes one queued task with a last-resort panic backstop:
// task bodies contain their own panics (so their waiters are always
// answered), and anything that still escapes must not kill the other
// workers' host process.
func (p *Pool) runTask(task func()) {
	defer func() {
		if v := recover(); v != nil {
			p.m.panicsRecovered.Add(1)
		}
	}()
	task()
}

// Close stops the workers after in-flight submissions and the queue
// drain. Submit/Exec on a closed pool return ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	// Wait out submissions that passed the closed-check before closing
	// the task channel they may still be enqueueing into.
	p.submitWG.Wait()
	close(p.tasks)
	p.wg.Wait()
}

// enter registers a submission for graceful shutdown; it fails once
// Close has begun. Callers must defer p.submitWG.Done() on success.
func (p *Pool) enter() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.submitWG.Add(1)
	return nil
}

// Submit runs a job synchronously: it validates, applies the job's
// deadline (TimeoutMS, covering queue wait as well as simulation),
// dedups against identical in-flight or completed jobs, and returns
// the shared, immutable result. Failure modes callers should expect:
// *OverloadError (shed — retry after the hint), *PanicError (contained
// crash — safe to retry), *sim.InvariantError (deterministic simulator
// bug), ErrClosed, and context errors.
func (p *Pool) Submit(ctx context.Context, job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.submitWG.Done()
	p.m.submitted.Add(1)
	if job.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, err := p.submitContained(ctx, job)
	p.m.lat.record(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		p.m.failed.Add(1)
		return nil, err
	}
	p.m.completed.Add(1)
	return res, nil
}

// submitContained is the Submit body behind the panic barrier: a panic
// escaping the cache layer (e.g. an injected fill fault) becomes a
// *PanicError instead of unwinding into net/http.
func (p *Pool) submitContained(ctx context.Context, job Job) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			p.m.panicsRecovered.Add(1)
			res, err = nil, toPanicError(v)
		}
	}()
	var outcome Outcome
	res, outcome, err = p.results.Do(ctx, job.Key(), func() (*Result, error) {
		// Counted at fill start (not on the Miss outcome) so the
		// submitted == executed+deduped+hits invariant holds even when
		// the fill panics out of Do.
		p.m.executed.Add(1)
		// Second cache tier: a result persisted by an earlier process
		// (or an earlier life of this one) is served from disk without
		// re-simulating.
		if p.store != nil {
			if r, ok := p.store.LoadResult(job.Key()); ok {
				p.m.diskHits.Add(1)
				return r, nil
			}
		}
		if ferr := p.faults.Fire(faultinject.SiteCacheFill); ferr != nil {
			return nil, ferr
		}
		// Journal the admission before any work happens: from here on
		// the job survives a crash (no-op if an async submission of the
		// same job already journaled it).
		if p.store != nil {
			if aerr := p.store.Accept(job.Key(), job, false); aerr != nil {
				return nil, aerr
			}
		}
		return p.runOnWorker(ctx, job)
	})
	switch outcome {
	case Hit:
		p.m.cacheHits.Add(1)
	case Deduped:
		p.m.deduped.Add(1)
	}
	return res, err
}

// runOnWorker schedules the simulation onto a pool worker and waits.
// The caller's ctx bounds both the queue wait and, via
// sim.Config.Cancel, the simulation itself — an expired job aborts
// within a few thousand simulated cycles instead of wedging a worker.
// Only unique work reaches here (cache hits and dedups are answered
// upstream), so this is also where admission control shelters the
// queue: at or beyond the shed depth, new unique work is refused with
// a retry hint instead of waiting unboundedly.
func (p *Pool) runOnWorker(ctx context.Context, job Job) (*Result, error) {
	if p.shedDepth > 0 {
		if depth := p.m.queued.Load(); depth >= int64(p.shedDepth) {
			p.m.shed.Add(1)
			return nil, &OverloadError{QueueDepth: int(depth), RetryAfter: p.retryAfter(depth)}
		}
	}
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	task := func() {
		p.m.running.Add(1)
		defer p.m.running.Add(-1)
		if err := ctx.Err(); err != nil {
			ch <- out{nil, err} // expired while queued: don't simulate
			return
		}
		res, err := p.runJobContained(ctx, job)
		ch <- out{res, err}
	}
	select {
	case p.tasks <- task:
		p.m.queued.Add(1)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		// The worker observes the same ctx and aborts shortly; the
		// flight fails, is evicted, and later submissions retry.
		return nil, ctx.Err()
	}
}

// runJobContained executes one job on the worker goroutine with panic
// containment: a crash anywhere below (injected or organic — the sim
// invariants that used to panic now return errors, but defense stays
// in depth) becomes a *PanicError delivered to the submitter, the
// flight is evicted, and the worker survives.
func (p *Pool) runJobContained(ctx context.Context, job Job) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			p.m.panicsRecovered.Add(1)
			res, err = nil, toPanicError(v)
		}
	}()
	if ferr := p.faults.Fire(faultinject.SitePoolTask); ferr != nil {
		return nil, ferr
	}
	if p.store != nil {
		return p.runDurable(ctx, job)
	}
	return execute(ctx, job, p.kernels, p.faults.Hook(), runHooks{})
}

// retryAfter estimates when a shed client should retry: the queue's
// expected drain time at the observed p50 service latency, clamped to
// [1s, 30s].
func (p *Pool) retryAfter(depth int64) time.Duration {
	p50, _ := p.m.lat.percentiles()
	d := time.Duration(p50 * float64(depth) / float64(p.workers) * float64(time.Millisecond))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Overloaded reports whether the pool is currently shedding; /healthz
// degrades on it.
func (p *Pool) Overloaded() bool {
	return p.shedDepth > 0 && p.m.queued.Load() >= int64(p.shedDepth)
}

// Exec runs an arbitrary function on a pool worker and waits for it —
// the hook cmd/experiments -j uses to bound its figure-level
// parallelism with the same workers that serve jobs. Exec does not
// touch the job counters or caches, but a panicking fn is contained
// and returned as a *PanicError.
func (p *Pool) Exec(ctx context.Context, fn func() error) error {
	if err := p.enter(); err != nil {
		return err
	}
	defer p.submitWG.Done()
	done := make(chan error, 1)
	call := func() {
		defer func() {
			if v := recover(); v != nil {
				p.m.panicsRecovered.Add(1)
				done <- toPanicError(v)
			}
		}()
		done <- fn()
	}
	select {
	case p.tasks <- call:
		p.m.queued.Add(1)
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// JobStatus is the lifecycle record of an asynchronous submission.
type JobStatus struct {
	ID string `json:"id"`
	// State is "running", "done" or "failed" ("done" with a Result).
	State       string    `json:"state"`
	Result      *Result   `json:"result,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// SubmitAsync validates and registers the job, starts it in the
// background, and returns its content-addressed ID immediately.
// Submitting an identical job again returns the same ID (and, through
// the cache, the same result) while it is running or done; a *failed*
// record is retried — failures are never cached, so resubmission
// re-simulates, mirroring the sync retry contract. The registry is
// bounded: finished records past the TTL are evicted on insert (their
// results stay addressable through the result cache), and when every
// tracked job is still running at capacity, the submission is shed
// with *OverloadError.
func (p *Pool) SubmitAsync(job Job) (string, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	id := job.Key()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return "", ErrClosed
	}
	if st, ok := p.status[id]; ok {
		if st.State != "failed" {
			p.mu.Unlock()
			return id, nil // running or done; idempotent
		}
		st.State, st.Error = "running", ""
		st.SubmittedAt, st.FinishedAt = time.Now(), time.Time{}
		p.mu.Unlock()
		if err := p.acceptDurable(id, job); err != nil {
			p.mu.Lock()
			st.State, st.Error = "failed", err.Error()
			st.FinishedAt = time.Now()
			p.mu.Unlock()
			return "", err
		}
		go p.runAsync(st, job)
		return id, nil
	}
	p.evictAsyncLocked(time.Now())
	if p.asyncMax > 0 && len(p.status) >= p.asyncMax {
		p.mu.Unlock()
		p.m.shed.Add(1)
		depth := p.m.queued.Load()
		return "", &OverloadError{QueueDepth: int(depth), RetryAfter: p.retryAfter(depth)}
	}
	st := &JobStatus{ID: id, State: "running", SubmittedAt: time.Now()}
	p.status[id] = st
	p.mu.Unlock()
	// The 202 the caller is about to send is a durability promise:
	// journal the acceptance (fsynced) before acknowledging, so the job
	// survives a crash between the response and its execution.
	if err := p.acceptDurable(id, job); err != nil {
		p.mu.Lock()
		delete(p.status, id)
		p.mu.Unlock()
		return "", err
	}
	go p.runAsync(st, job)
	return id, nil
}

// acceptDurable journals an async acceptance when a store is armed.
func (p *Pool) acceptDurable(id string, job Job) error {
	if p.store == nil {
		return nil
	}
	return p.store.Accept(id, job, true)
}

// runAsync executes an asynchronous submission and records its outcome.
func (p *Pool) runAsync(st *JobStatus, job Job) {
	res, err := p.Submit(context.Background(), job)
	p.mu.Lock()
	defer p.mu.Unlock()
	st.FinishedAt = time.Now()
	if err != nil {
		st.State, st.Error = "failed", err.Error()
		return
	}
	st.State, st.Result = "done", res
}

// evictAsyncLocked bounds the async registry (p.mu held): finished
// records older than the TTL go first; if the registry is still at
// capacity, the oldest finished records go next. Running jobs are
// never evicted — when they alone fill the registry, the caller sheds.
func (p *Pool) evictAsyncLocked(now time.Time) {
	if p.asyncTTL > 0 {
		for id, st := range p.status {
			if st.State != "running" && now.Sub(st.FinishedAt) > p.asyncTTL {
				delete(p.status, id)
				p.m.evicted.Add(1)
			}
		}
	}
	if p.asyncMax <= 0 {
		return
	}
	for len(p.status) >= p.asyncMax {
		oldestID := ""
		var oldest time.Time
		for id, st := range p.status {
			if st.State == "running" {
				continue
			}
			if oldestID == "" || st.FinishedAt.Before(oldest) {
				oldestID, oldest = id, st.FinishedAt
			}
		}
		if oldestID == "" {
			return // everything tracked is still running
		}
		delete(p.status, oldestID)
		p.m.evicted.Add(1)
	}
}

// Status looks a job up by ID: first among asynchronous submissions,
// then in the completed-result cache (so synchronously submitted and
// TTL-evicted jobs are addressable too), and finally in the durable
// result store — a job finished by a previous life of the daemon stays
// addressable after a restart. The returned value is a copy.
func (p *Pool) Status(id string) (JobStatus, bool) {
	p.mu.Lock()
	if st, ok := p.status[id]; ok {
		cp := *st
		p.mu.Unlock()
		return cp, true
	}
	p.mu.Unlock()
	if res, ok := p.results.Get(id); ok {
		return JobStatus{ID: id, State: "done", Result: res}, true
	}
	if p.store != nil {
		if res, ok := p.store.LoadResult(id); ok {
			return JobStatus{ID: id, State: "done", Result: res}, true
		}
	}
	return JobStatus{}, false
}
