package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"regvirt/internal/compiler"
)

// Pool executes jobs on a bounded set of worker goroutines with a
// shared content-addressed result cache. Identical jobs submitted
// concurrently run once (singleflight); identical jobs submitted later
// are cache hits. Only unique work occupies a worker: duplicate
// submissions wait on the in-flight computation without holding a
// slot, so a thundering herd of one hot configuration cannot starve
// the queue.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup

	results *Cache[string, *Result]
	kernels *Cache[kernelKey, *compiler.Kernel]

	mu     sync.Mutex
	status map[string]*JobStatus
	closed bool

	m metrics
}

// queueCap bounds how many tasks may wait unpicked; further
// submissions block in Submit, which is the backpressure the HTTP
// layer propagates to clients.
const queueCap = 1024

// NewPool starts workers goroutines (minimum 1) and returns the pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), queueCap),
		results: NewCache[string, *Result](),
		kernels: NewCache[kernelKey, *compiler.Kernel](),
		status:  map[string]*JobStatus{},
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				p.m.queued.Add(-1)
				task()
			}
		}()
	}
	return p
}

// Close stops the workers after the queue drains. Submissions must
// have quiesced first; Submit on a closed pool returns an error.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.wg.Wait()
}

// Submit runs a job synchronously: it validates, applies the job's
// deadline (TimeoutMS, covering queue wait as well as simulation),
// dedups against identical in-flight or completed jobs, and returns
// the shared, immutable result.
func (p *Pool) Submit(ctx context.Context, job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("jobs: pool is closed")
	}
	p.mu.Unlock()
	p.m.submitted.Add(1)
	if job.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, outcome, err := p.results.Do(ctx, job.Key(), func() (*Result, error) {
		return p.runOnWorker(ctx, job)
	})
	switch outcome {
	case Hit:
		p.m.cacheHits.Add(1)
	case Deduped:
		p.m.deduped.Add(1)
	case Miss:
		p.m.executed.Add(1)
	}
	p.m.lat.record(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		p.m.failed.Add(1)
		return nil, err
	}
	p.m.completed.Add(1)
	return res, nil
}

// runOnWorker schedules the simulation onto a pool worker and waits.
// The caller's ctx bounds both the queue wait and, via
// sim.Config.Cancel, the simulation itself — an expired job aborts
// within a few thousand simulated cycles instead of wedging a worker.
func (p *Pool) runOnWorker(ctx context.Context, job Job) (*Result, error) {
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	task := func() {
		p.m.running.Add(1)
		defer p.m.running.Add(-1)
		if err := ctx.Err(); err != nil {
			ch <- out{nil, err} // expired while queued: don't simulate
			return
		}
		res, err := execute(ctx, job, p.kernels)
		ch <- out{res, err}
	}
	select {
	case p.tasks <- task:
		p.m.queued.Add(1)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		// The worker observes the same ctx and aborts shortly; the
		// flight fails, is evicted, and later submissions retry.
		return nil, ctx.Err()
	}
}

// Exec runs an arbitrary function on a pool worker and waits for it —
// the hook cmd/experiments -j uses to bound its figure-level
// parallelism with the same workers that serve jobs. Exec does not
// touch the job counters or caches.
func (p *Pool) Exec(ctx context.Context, fn func() error) error {
	done := make(chan error, 1)
	select {
	case p.tasks <- func() { done <- fn() }:
		p.m.queued.Add(1)
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// JobStatus is the lifecycle record of an asynchronous submission.
type JobStatus struct {
	ID string `json:"id"`
	// State is "running", "done" or "failed" ("done" with a Result).
	State       string    `json:"state"`
	Result      *Result   `json:"result,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// SubmitAsync validates and registers the job, starts it in the
// background, and returns its content-addressed ID immediately.
// Submitting an identical job again returns the same ID (and, through
// the cache, the same result).
func (p *Pool) SubmitAsync(job Job) (string, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	id := job.Key()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return "", fmt.Errorf("jobs: pool is closed")
	}
	if _, ok := p.status[id]; ok {
		p.mu.Unlock()
		return id, nil // already tracked; idempotent
	}
	st := &JobStatus{ID: id, State: "running", SubmittedAt: time.Now()}
	p.status[id] = st
	p.mu.Unlock()
	go func() {
		res, err := p.Submit(context.Background(), job)
		p.mu.Lock()
		defer p.mu.Unlock()
		st.FinishedAt = time.Now()
		if err != nil {
			st.State, st.Error = "failed", err.Error()
			return
		}
		st.State, st.Result = "done", res
	}()
	return id, nil
}

// Status looks a job up by ID: first among asynchronous submissions,
// then in the completed-result cache (so synchronously submitted jobs
// are addressable too). The returned value is a copy.
func (p *Pool) Status(id string) (JobStatus, bool) {
	p.mu.Lock()
	if st, ok := p.status[id]; ok {
		cp := *st
		p.mu.Unlock()
		return cp, true
	}
	p.mu.Unlock()
	if res, ok := p.results.Get(id); ok {
		return JobStatus{ID: id, State: "done", Result: res}, true
	}
	return JobStatus{}, false
}
