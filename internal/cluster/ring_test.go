package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s3", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("job-%d", i)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("ring is order-sensitive: %s vs %s for %s", a.Owner(id), b.Owner(id), id)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for shard, c := range counts {
		// Even-ish split: each shard within a factor of two of fair share.
		if c < n/6 || c > 2*n/3 {
			t.Errorf("shard %s owns %d of %d keys — ring badly skewed: %v", shard, c, n, counts)
		}
	}
}

func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	full, _ := NewRing([]string{"s1", "s2", "s3"}, 0)
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("key-%d", i)
		owner := full.Owner(id)
		alt, ok := full.OwnerAvoiding(id, map[string]bool{"s2": true})
		if !ok {
			t.Fatal("two shards remain but OwnerAvoiding found none")
		}
		if owner != "s2" && alt != owner {
			t.Fatalf("key %s moved from healthy %s to %s when only s2 died", id, owner, alt)
		}
		if alt == "s2" {
			t.Fatalf("key %s routed to the dead shard", id)
		}
	}
}

func TestRingAllDown(t *testing.T) {
	r, _ := NewRing([]string{"s1", "s2"}, 0)
	if _, ok := r.OwnerAvoiding("x", map[string]bool{"s1": true, "s2": true}); ok {
		t.Fatal("OwnerAvoiding returned a shard with every shard down")
	}
}

func TestRingRejectsBadConfigs(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty shard name accepted")
	}
}
